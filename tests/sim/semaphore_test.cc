#include "sim/semaphore.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::sim {
namespace {

TEST(SemaphoreTest, AcquireSucceedsImmediatelyWhenAvailable) {
  Environment env;
  Semaphore sem(&env, 2);
  std::vector<double> acquired_at;
  env.Spawn([](Environment* e, Semaphore* s,
               std::vector<double>* log) -> Process {
    co_await s->Acquire();
    log->push_back(e->now());
  }(&env, &sem, &acquired_at));
  env.Run();
  ASSERT_EQ(acquired_at.size(), 1u);
  EXPECT_DOUBLE_EQ(acquired_at[0], 0.0);
  EXPECT_EQ(sem.available(), 1);
}

Process HoldUnit(Environment* env, Semaphore* sem, double hold_time,
                 std::vector<std::pair<int, double>>* log, int id) {
  co_await sem->Acquire();
  log->push_back({id, env->now()});
  co_await env->Hold(hold_time);
  sem->Release();
}

TEST(SemaphoreTest, WaitersServedFifo) {
  Environment env;
  Semaphore sem(&env, 1);
  std::vector<std::pair<int, double>> log;
  for (int i = 0; i < 4; ++i) {
    env.Spawn(HoldUnit(&env, &sem, 1.0, &log, i));
  }
  env.Run();
  ASSERT_EQ(log.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(log[i].first, i);
    EXPECT_DOUBLE_EQ(log[i].second, static_cast<double>(i));
  }
}

TEST(SemaphoreTest, ReleaseWithoutWaitersIncrementsCount) {
  Environment env;
  Semaphore sem(&env, 0);
  sem.Release();
  sem.Release();
  EXPECT_EQ(sem.available(), 2);
}

TEST(SemaphoreTest, LateArrivalCannotStealFromWaiter) {
  // Process A waits on an empty semaphore. A release and a new Acquire
  // happen at the same instant: A must win.
  Environment env;
  Semaphore sem(&env, 0);
  std::vector<int> order;

  env.Spawn([](Environment* e, Semaphore* s, std::vector<int>* o) -> Process {
    co_await s->Acquire();
    o->push_back(1);  // the original waiter
    (void)e;
  }(&env, &sem, &order));

  env.Spawn([](Environment* e, Semaphore* s, std::vector<int>* o) -> Process {
    co_await e->Hold(1.0);
    s->Release();
    co_await s->Acquire();  // same instant as the release
    o->push_back(2);
  }(&env, &sem, &order));

  env.Spawn([](Environment* e, Semaphore* s, std::vector<int>*) -> Process {
    co_await e->Hold(2.0);
    s->Release();  // unblock the second acquirer so the run finishes
  }(&env, &sem, &order));

  env.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SemaphoreTest, CountsWaiters) {
  Environment env;
  Semaphore sem(&env, 0);
  std::vector<std::pair<int, double>> log;
  for (int i = 0; i < 3; ++i) env.Spawn(HoldUnit(&env, &sem, 0.0, &log, i));
  env.RunUntil(0.5);
  EXPECT_EQ(sem.waiters(), 3u);
  sem.Release();
  env.Run();
  EXPECT_EQ(sem.waiters(), 0u);  // chain of release->acquire drained all
  EXPECT_EQ(log.size(), 3u);
}

TEST(SemaphoreTest, MultiUnitMutualExclusion) {
  // With capacity 2, at most two holders may overlap.
  Environment env;
  Semaphore sem(&env, 2);
  int active = 0;
  int max_active = 0;
  for (int i = 0; i < 10; ++i) {
    env.Spawn([](Environment* e, Semaphore* s, int* act,
                 int* max_act) -> Process {
      co_await s->Acquire();
      ++*act;
      if (*act > *max_act) *max_act = *act;
      co_await e->Hold(1.0);
      --*act;
      s->Release();
    }(&env, &sem, &active, &max_active));
  }
  env.Run();
  EXPECT_EQ(max_active, 2);
  EXPECT_EQ(active, 0);
}

}  // namespace
}  // namespace spiffi::sim
