// Randomized differential test for the slot-indexed calendar.
//
// Replays a long random stream of Schedule / Cancel / FireNext / PeekTime
// operations simultaneously against the Calendar and a naive reference
// model (an unsorted vector scanned for its (time, seq) minimum), and
// checks that fire order, returned times, occupancy, and stale-cancel
// rejection agree after every step. Stale ids — already fired, doubly
// cancelled, never scheduled, or pointing at a recycled slot — are thrown
// at Cancel() deliberately and must all be no-ops.

#include "sim/calendar.h"

#include <cstdint>
#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "sim/random.h"

namespace spiffi::sim {
namespace {

class Recorder : public EventHandler {
 public:
  explicit Recorder(std::vector<std::uint64_t>* log) : log_(log) {}
  void OnEvent(std::uint64_t token) override { log_->push_back(token); }

 private:
  std::vector<std::uint64_t>* log_;
};

// Reference model: linear scan for the earliest (time, seq) live entry.
class ReferenceCalendar {
 public:
  // Returns a reference id (its own scheme, independent of EventId).
  std::uint64_t Schedule(SimTime time, std::uint64_t token) {
    entries_.push_back(Entry{time, next_seq_++, token, next_id_});
    return next_id_++;
  }

  // True if the id was live (mirrors Calendar::Cancel accepting it).
  bool Cancel(std::uint64_t id) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].id == id) {
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  // Pops the earliest entry; false when empty.
  bool FireNext(SimTime* time, std::uint64_t* token) {
    if (entries_.empty()) return false;
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].time < entries_[best].time ||
          (entries_[i].time == entries_[best].time &&
           entries_[i].seq < entries_[best].seq)) {
        best = i;
      }
    }
    *time = entries_[best].time;
    *token = entries_[best].token;
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
  }

  SimTime PeekTime() const {
    SimTime best = kSimTimeMax;
    std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
    for (const Entry& e : entries_) {
      if (e.time < best || (e.time == best && e.seq < best_seq)) {
        best = e.time;
        best_seq = e.seq;
      }
    }
    return best;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t token;
    std::uint64_t id;
  };
  std::vector<Entry> entries_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
};

void RunDifferential(std::uint64_t seed, int ops, bool reserve) {
  Calendar calendar;
  if (reserve) calendar.Reserve(512);
  ReferenceCalendar reference;
  Rng rng(seed);

  std::vector<std::uint64_t> fired;
  Recorder recorder(&fired);
  std::uint64_t next_token = 0;

  // Live entries in both models, plus a graveyard of EventIds that fired
  // or were cancelled — fodder for stale-cancel attempts.
  struct Live {
    EventId id;
    std::uint64_t ref_id;
    std::uint64_t token;
  };
  std::vector<Live> live;
  std::vector<EventId> stale;

  for (int op = 0; op < ops; ++op) {
    double dice = rng.NextDouble();
    if (dice < 0.45 || live.empty()) {
      // Schedule. Coarse times force (time, seq) FIFO ties often.
      auto time = static_cast<SimTime>(rng.UniformInt(40));
      std::uint64_t token = next_token++;
      EventId id = calendar.Schedule(time, &recorder, token);
      std::uint64_t ref_id = reference.Schedule(time, token);
      EXPECT_NE(id, 0u);  // 0 is the reserved "no event" sentinel
      live.push_back(Live{id, ref_id, token});
    } else if (dice < 0.60) {
      // Cancel a live entry.
      auto pick = static_cast<std::size_t>(rng.UniformInt(live.size()));
      Live victim = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      calendar.Cancel(victim.id);
      ASSERT_TRUE(reference.Cancel(victim.ref_id));
      stale.push_back(victim.id);
    } else if (dice < 0.70) {
      // Stale cancel: an id that fired or was already cancelled, a
      // never-issued id, and a double-cancel of the same stale id. All
      // must leave both models untouched.
      if (!stale.empty()) {
        auto pick = static_cast<std::size_t>(rng.UniformInt(stale.size()));
        calendar.Cancel(stale[pick]);
        calendar.Cancel(stale[pick]);
      }
      calendar.Cancel(0);  // the sentinel id
      calendar.Cancel((static_cast<EventId>(0x7fffffu) << 32) | 1u);
    } else {
      // Fire.
      SimTime ref_time = 0.0;
      std::uint64_t ref_token = 0;
      bool ref_fired = reference.FireNext(&ref_time, &ref_token);
      std::size_t fired_before = fired.size();
      SimTime time = calendar.FireNext();
      if (!ref_fired) {
        EXPECT_EQ(time, kSimTimeMax);
        EXPECT_EQ(fired.size(), fired_before);
      } else {
        ASSERT_EQ(fired.size(), fired_before + 1);
        EXPECT_EQ(time, ref_time);
        EXPECT_EQ(fired.back(), ref_token);
        // Retire the fired entry (tokens are unique); its EventId is now
        // stale and must be rejected by any later Cancel.
        for (std::size_t i = 0; i < live.size(); ++i) {
          if (live[i].token == ref_token) {
            stale.push_back(live[i].id);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
            break;
          }
        }
      }
    }
    ASSERT_EQ(calendar.size(), reference.size());
    ASSERT_EQ(calendar.PeekTime(), reference.PeekTime());
  }

  // Drain both and compare the tail in fire order.
  while (true) {
    SimTime ref_time = 0.0;
    std::uint64_t ref_token = 0;
    bool ref_fired = reference.FireNext(&ref_time, &ref_token);
    std::size_t fired_before = fired.size();
    SimTime time = calendar.FireNext();
    if (!ref_fired) {
      EXPECT_EQ(time, kSimTimeMax);
      EXPECT_TRUE(calendar.empty());
      break;
    }
    ASSERT_EQ(fired.size(), fired_before + 1);
    EXPECT_EQ(time, ref_time);
    EXPECT_EQ(fired.back(), ref_token);
  }
  EXPECT_EQ(calendar.cancelled_backlog(), 0u);
}

TEST(CalendarFuzzTest, DifferentialAgainstNaiveReference) {
  RunDifferential(/*seed=*/1, /*ops=*/10000, /*reserve=*/false);
}

TEST(CalendarFuzzTest, DifferentialWithReservedStorage) {
  RunDifferential(/*seed=*/2, /*ops=*/10000, /*reserve=*/true);
}

TEST(CalendarFuzzTest, DifferentialManySeeds) {
  for (std::uint64_t seed = 10; seed < 18; ++seed) {
    RunDifferential(seed, /*ops=*/2000, seed % 2 == 0);
  }
}

}  // namespace
}  // namespace spiffi::sim
