// Composition tests: the kernel primitives (processes, semaphores,
// mailboxes, resources, wait lists) cooperating in one simulation, plus
// event-trace-level determinism of the whole ensemble.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/environment.h"
#include "sim/mailbox.h"
#include "sim/process.h"
#include "sim/resource.h"
#include "sim/semaphore.h"
#include "sim/wait_list.h"

namespace spiffi::sim {
namespace {

// A tiny producer/consumer pipeline: producers acquire a token, "compute"
// on a shared CPU, and mail results to consumers.
struct Pipeline {
  explicit Pipeline(Environment* env)
      : tokens(env, 2), cpu(env, 1, "cpu"), results(env) {}
  Semaphore tokens;
  Resource cpu;
  Mailbox<int> results;
  std::vector<std::string> log;
};

Process Producer(Environment* env, Pipeline* p, int id, int items) {
  for (int i = 0; i < items; ++i) {
    co_await p->tokens.Acquire();
    co_await p->cpu.Use(0.01);
    p->results.Send(id * 100 + i);
    p->tokens.Release();
    co_await env->Hold(0.05);
  }
}

Process Consumer(Environment* env, Pipeline* p, int total) {
  for (int i = 0; i < total; ++i) {
    int value = co_await p->results.Receive();
    p->log.push_back(std::to_string(env->now()) + ":" +
                     std::to_string(value));
  }
  env->Stop();
}

TEST(CompositionTest, ProducerConsumerPipelineCompletes) {
  Environment env;
  Pipeline pipeline(&env);
  for (int id = 0; id < 4; ++id) {
    env.Spawn(Producer(&env, &pipeline, id, 10));
  }
  env.Spawn(Consumer(&env, &pipeline, 40));
  env.Run();
  EXPECT_EQ(pipeline.log.size(), 40u);
  EXPECT_TRUE(env.stopped());
}

TEST(CompositionTest, PipelineTraceIsDeterministic) {
  auto run = [] {
    Environment env;
    Pipeline pipeline(&env);
    for (int id = 0; id < 4; ++id) {
      env.Spawn(Producer(&env, &pipeline, id, 10));
    }
    env.Spawn(Consumer(&env, &pipeline, 40));
    env.Run();
    return pipeline.log;
  };
  EXPECT_EQ(run(), run());
}

// Mixed waiting: a process that races a wait-list notification against a
// timeout while other processes churn the calendar.
TEST(CompositionTest, WaitListRaceUnderChurn) {
  Environment env;
  WaitList list(&env);
  int notified = 0;
  int timed_out = 0;
  // 20 waiters with staggered deadlines; a notifier wakes one per 0.1 s.
  for (int i = 0; i < 20; ++i) {
    env.Spawn([](Environment* e, WaitList* l, int id, int* n,
                 int* t) -> Process {
      co_await e->Hold(0.0);
      bool ok = co_await l->WaitUntil(0.95 + 0.0 * id);
      if (ok) {
        ++*n;
      } else {
        ++*t;
      }
    }(&env, &list, i, &notified, &timed_out));
  }
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    for (int i = 0; i < 8; ++i) {
      co_await e->Hold(0.1);
      l->NotifyOne();
    }
  }(&env, &list));
  // Background churn.
  for (int i = 0; i < 10; ++i) {
    env.Spawn([](Environment* e) -> Process {
      for (int k = 0; k < 50; ++k) co_await e->Hold(0.02);
    }(&env));
  }
  env.Run();
  EXPECT_EQ(notified, 8);
  EXPECT_EQ(timed_out, 12);
}

// Stop() fired from deep inside a primitive chain stops the run loop
// without corrupting state; the run can be resumed.
TEST(CompositionTest, StopInsideResourceUseResumable) {
  Environment env;
  Resource cpu(&env, 1, "cpu");
  std::vector<int> done;
  for (int i = 0; i < 5; ++i) {
    env.Spawn([](Environment* e, Resource* r, std::vector<int>* log,
                 int id) -> Process {
      co_await r->Use(1.0);
      log->push_back(id);
      if (id == 1) e->Stop();
    }(&env, &cpu, &done, i));
  }
  env.Run();
  EXPECT_EQ(done, (std::vector<int>{0, 1}));
  env.Run();  // resume where we left off
  EXPECT_EQ(done, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Heavily contended semaphore with randomized hold times stays fair
// (FIFO) and conserves its count.
TEST(CompositionTest, SemaphoreConservesUnderContention) {
  Environment env;
  Semaphore sem(&env, 3);
  int active = 0;
  int max_active = 0;
  int completed = 0;
  for (int i = 0; i < 60; ++i) {
    env.Spawn([](Environment* e, Semaphore* s, int* act, int* max_act,
                 int* done, int id) -> Process {
      co_await e->Hold(0.001 * (id % 17));
      co_await s->Acquire();
      ++*act;
      if (*act > *max_act) *max_act = *act;
      co_await e->Hold(0.01 + 0.001 * (id % 5));
      --*act;
      s->Release();
      ++*done;
    }(&env, &sem, &active, &max_active, &completed, i));
  }
  env.Run();
  EXPECT_EQ(completed, 60);
  EXPECT_EQ(max_active, 3);
  EXPECT_EQ(active, 0);
  EXPECT_EQ(sem.available(), 3);
}

}  // namespace
}  // namespace spiffi::sim
