#include "sim/process.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/environment.h"

namespace spiffi::sim {
namespace {

Process Trivial(Environment* env, bool* ran) {
  *ran = true;
  co_await env->Hold(0.0);
}

TEST(ProcessTest, DoesNotRunUntilSpawned) {
  Environment env;
  bool ran = false;
  Process p = Trivial(&env, &ran);
  EXPECT_FALSE(ran);
  EXPECT_TRUE(p.valid());
  env.Spawn(std::move(p));
  EXPECT_FALSE(ran);  // spawn schedules; nothing runs until Run()
  env.Run();
  EXPECT_TRUE(ran);
}

TEST(ProcessTest, UnspawnedProcessIsDestroyedCleanly) {
  Environment env;
  bool ran = false;
  {
    Process p = Trivial(&env, &ran);
    // p destroyed without Spawn: frame must be freed, body never run.
  }
  env.Run();
  EXPECT_FALSE(ran);
}

TEST(ProcessTest, MoveTransfersOwnership) {
  Environment env;
  bool ran = false;
  Process a = Trivial(&env, &ran);
  Process b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  env.Spawn(std::move(b));
  env.Run();
  EXPECT_TRUE(ran);
}

TEST(ProcessTest, CompletedProcessIsDeregistered) {
  Environment env;
  bool ran = false;
  env.Spawn(Trivial(&env, &ran));
  EXPECT_EQ(env.live_processes(), 1u);
  env.Run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(env.live_processes(), 0u);
}

Process SpawnChild(Environment* env, std::vector<int>* log) {
  log->push_back(1);
  env->Spawn([](Environment* e, std::vector<int>* l) -> Process {
    l->push_back(2);
    co_await e->Hold(1.0);
    l->push_back(4);
  }(env, log));
  co_await env->Hold(0.5);
  log->push_back(3);
}

TEST(ProcessTest, ProcessesCanSpawnProcesses) {
  Environment env;
  std::vector<int> log;
  env.Spawn(SpawnChild(&env, &log));
  env.Run();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(env.live_processes(), 0u);
}

Process MultiHold(Environment* env, std::vector<double>* times, int n) {
  for (int i = 0; i < n; ++i) {
    co_await env->Hold(1.0);
    times->push_back(env->now());
  }
}

TEST(ProcessTest, SequentialHoldsAccumulate) {
  Environment env;
  std::vector<double> times;
  env.Spawn(MultiHold(&env, &times, 4));
  env.Run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(ProcessTest, ThousandsOfProcessesComplete) {
  Environment env;
  int completed = 0;
  for (int i = 0; i < 5000; ++i) {
    env.Spawn([](Environment* e, int* done, int id) -> Process {
      co_await e->Hold(0.001 * (id % 100));
      ++*done;
    }(&env, &completed, i));
  }
  env.Run();
  EXPECT_EQ(completed, 5000);
  EXPECT_EQ(env.live_processes(), 0u);
}

}  // namespace
}  // namespace spiffi::sim
