#include "sim/random.h"

#include <cmath>
#include <set>

#include "gtest/gtest.h"

namespace spiffi::sim {
namespace {

TEST(RandomTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, ChildStreamsAreIndependentOfConsumption) {
  // Deriving a child must depend only on the parent seed, not on how much
  // the parent has been consumed.
  Rng a(42);
  Rng child_before = a.Child(7);
  a.NextU64();
  a.NextU64();
  Rng child_after = a.Child(7);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(child_before.NextU64(), child_after.NextU64());
  }
}

TEST(RandomTest, DistinctChildStreamsDiffer) {
  Rng a(42);
  Rng c1 = a.Child(1);
  Rng c2 = a.Child(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.NextU64() == c2.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RandomTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.UniformInt(8);
    EXPECT_LT(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all values hit in 1000 draws
}

TEST(RandomTest, ExponentialMeanApproximately) {
  Rng rng(77);
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(RandomTest, ExponentialIsNonNegative) {
  Rng rng(77);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.Exponential(1.0), 0.0);
}

TEST(RandomTest, CounterModeIsStateless) {
  // Same (seed, index) -> same draw, regardless of call order.
  double a = ExponentialAt(5, 100, 2.0);
  double b = ExponentialAt(5, 7, 2.0);
  EXPECT_DOUBLE_EQ(ExponentialAt(5, 100, 2.0), a);
  EXPECT_DOUBLE_EQ(ExponentialAt(5, 7, 2.0), b);
  EXPECT_NE(a, b);
}

TEST(RandomTest, CounterModeMeanApproximately) {
  double sum = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += ExponentialAt(11, i, 4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.1);
}

TEST(RandomTest, Mix64AvalanchesLowBits) {
  // Adjacent inputs must produce wildly different outputs.
  int differing_bits = 0;
  std::uint64_t x = Mix64(1000);
  std::uint64_t y = Mix64(1001);
  differing_bits = __builtin_popcountll(x ^ y);
  EXPECT_GT(differing_bits, 16);
  EXPECT_LT(differing_bits, 48);
}

}  // namespace
}  // namespace spiffi::sim
