#include "sim/calendar.h"

#include <vector>

#include "gtest/gtest.h"

namespace spiffi::sim {
namespace {

// Records the token of every event fired into a shared log.
class Recorder : public EventHandler {
 public:
  explicit Recorder(std::vector<std::uint64_t>* log) : log_(log) {}
  void OnEvent(std::uint64_t token) override { log_->push_back(token); }

 private:
  std::vector<std::uint64_t>* log_;
};

TEST(CalendarTest, EmptyCalendarReportsMaxTime) {
  Calendar calendar;
  EXPECT_TRUE(calendar.empty());
  EXPECT_EQ(calendar.PeekTime(), kSimTimeMax);
  EXPECT_EQ(calendar.FireNext(), kSimTimeMax);
}

TEST(CalendarTest, FiresInTimeOrder) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  calendar.Schedule(3.0, &recorder, 3);
  calendar.Schedule(1.0, &recorder, 1);
  calendar.Schedule(2.0, &recorder, 2);
  EXPECT_DOUBLE_EQ(calendar.FireNext(), 1.0);
  EXPECT_DOUBLE_EQ(calendar.FireNext(), 2.0);
  EXPECT_DOUBLE_EQ(calendar.FireNext(), 3.0);
  EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(CalendarTest, SameTimeFiresInScheduleOrder) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  for (std::uint64_t i = 0; i < 100; ++i) {
    calendar.Schedule(5.0, &recorder, i);
  }
  while (!calendar.empty()) calendar.FireNext();
  ASSERT_EQ(log.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(log[i], i);
}

TEST(CalendarTest, CancelledEventDoesNotFire) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  calendar.Schedule(1.0, &recorder, 1);
  EventId id = calendar.Schedule(2.0, &recorder, 2);
  calendar.Schedule(3.0, &recorder, 3);
  calendar.Cancel(id);
  while (!calendar.empty()) calendar.FireNext();
  EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 3}));
}

TEST(CalendarTest, CancelHeadEntryAdjustsPeek) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  EventId id = calendar.Schedule(1.0, &recorder, 1);
  calendar.Schedule(2.0, &recorder, 2);
  calendar.Cancel(id);
  EXPECT_DOUBLE_EQ(calendar.PeekTime(), 2.0);
  EXPECT_EQ(calendar.size(), 1u);
}

TEST(CalendarTest, CancelAfterFireIsNoOp) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  EventId id = calendar.Schedule(1.0, &recorder, 1);
  calendar.FireNext();
  calendar.Cancel(id);  // stale id; must not disturb later events
  calendar.Schedule(2.0, &recorder, 2);
  calendar.FireNext();
  EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CalendarTest, HandlerMayScheduleDuringFire) {
  Calendar calendar;
  std::vector<std::uint64_t> log;

  class Chainer : public EventHandler {
   public:
    Chainer(Calendar* calendar, std::vector<std::uint64_t>* log)
        : calendar_(calendar), log_(log) {}
    void OnEvent(std::uint64_t token) override {
      log_->push_back(token);
      if (token < 5) calendar_->Schedule(token + 1.0, this, token + 1);
    }

   private:
    Calendar* calendar_;
    std::vector<std::uint64_t>* log_;
  };

  Chainer chainer(&calendar, &log);
  calendar.Schedule(1.0, &chainer, 1);
  while (!calendar.empty()) calendar.FireNext();
  EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
}

TEST(CalendarTest, StaleCancelsDoNotAccumulate) {
  // Regression: Cancel() used to insert the id into the cancelled set
  // unconditionally, so cancelling an already-fired (or never-scheduled)
  // event leaked the id for the rest of the run.
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  for (int round = 0; round < 100; ++round) {
    EventId id = calendar.Schedule(round, &recorder, round);
    calendar.FireNext();
    calendar.Cancel(id);                  // already fired
    calendar.Cancel(id + 1'000'000'000);  // never scheduled
    EXPECT_EQ(calendar.cancelled_backlog(), 0u);
  }
  EXPECT_EQ(log.size(), 100u);
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarTest, CancelledBacklogDrainsWhenEntriesDrop) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  EventId a = calendar.Schedule(1.0, &recorder, 1);
  EventId b = calendar.Schedule(2.0, &recorder, 2);
  calendar.Schedule(3.0, &recorder, 3);
  calendar.Cancel(a);
  calendar.Cancel(b);
  calendar.Cancel(b);  // double-cancel is a no-op
  EXPECT_EQ(calendar.cancelled_backlog(), 2u);
  EXPECT_EQ(calendar.size(), 1u);
  while (!calendar.empty()) calendar.FireNext();
  EXPECT_EQ(log, (std::vector<std::uint64_t>{3}));
  EXPECT_EQ(calendar.cancelled_backlog(), 0u);
}

TEST(CalendarTest, SizeCountsOnlyLiveEntries) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  EventId id = calendar.Schedule(1.0, &recorder, 1);
  calendar.Schedule(2.0, &recorder, 2);
  EXPECT_EQ(calendar.size(), 2u);
  calendar.Cancel(id);
  EXPECT_EQ(calendar.size(), 1u);
  calendar.FireNext();
  EXPECT_EQ(calendar.size(), 0u);
}

TEST(CalendarTest, ClearDropsAllEntries) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  calendar.Schedule(1.0, &recorder, 1);
  calendar.Schedule(2.0, &recorder, 2);
  calendar.Clear();
  EXPECT_TRUE(calendar.empty());
  EXPECT_TRUE(log.empty());
}

TEST(CalendarTest, ShrinkStartedStorageGrowTripsCounter) {
  // A calendar that starts below its working-set size must still report
  // the reallocation churn: every push into a full heap vector counts.
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  for (int i = 0; i < 1000; ++i) calendar.Schedule(i, &recorder, i);
  EXPECT_GT(calendar.storage_grows(), 0u);
  EXPECT_EQ(calendar.peak_size(), 1000u);
}

TEST(CalendarTest, ReservedStorageNeverGrows) {
  Calendar calendar;
  calendar.Reserve(1000);
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 1000; ++i) calendar.Schedule(i, &recorder, i);
    while (!calendar.empty()) calendar.FireNext();
  }
  EXPECT_EQ(calendar.storage_grows(), 0u);
}

TEST(CalendarTest, RecycledSlotRejectsStaleCancel) {
  // After an entry fires, its slot is recycled with a bumped generation:
  // cancelling the old id must not touch the slot's new occupant.
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  EventId old_id = calendar.Schedule(1.0, &recorder, 1);
  calendar.FireNext();
  // With one slot in the table, this reuses the fired entry's slot.
  calendar.Schedule(2.0, &recorder, 2);
  calendar.Cancel(old_id);  // stale generation; must be rejected
  EXPECT_EQ(calendar.size(), 1u);
  EXPECT_EQ(calendar.cancelled_backlog(), 0u);
  calendar.FireNext();
  EXPECT_EQ(log, (std::vector<std::uint64_t>{1, 2}));
}

TEST(CalendarTest, ClearInvalidatesOutstandingIds) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  EventId id = calendar.Schedule(1.0, &recorder, 1);
  calendar.Clear();
  // The slot was recycled by Clear; the stale id must not cancel the
  // slot's next occupant.
  calendar.Schedule(2.0, &recorder, 2);
  calendar.Cancel(id);
  EXPECT_EQ(calendar.size(), 1u);
  calendar.FireNext();
  EXPECT_EQ(log, (std::vector<std::uint64_t>{2}));
}

TEST(CalendarTest, CountsFiredEvents) {
  Calendar calendar;
  std::vector<std::uint64_t> log;
  Recorder recorder(&log);
  for (int i = 0; i < 10; ++i) calendar.Schedule(i, &recorder, i);
  while (!calendar.empty()) calendar.FireNext();
  EXPECT_EQ(calendar.fired_count(), 10u);
}

}  // namespace
}  // namespace spiffi::sim
