#include "sim/stats.h"

#include <cmath>

#include "gtest/gtest.h"

namespace spiffi::sim {
namespace {

TEST(TallyTest, EmptyTallyIsZero) {
  Tally t;
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
  EXPECT_DOUBLE_EQ(t.variance(), 0.0);
}

TEST(TallyTest, MeanAndVariance) {
  Tally t;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) t.Add(x);
  EXPECT_DOUBLE_EQ(t.mean(), 5.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(t.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(t.min(), 2.0);
  EXPECT_DOUBLE_EQ(t.max(), 9.0);
}

TEST(TallyTest, CiHalfWidthShrinksWithSamples) {
  Tally small, large;
  for (int i = 0; i < 10; ++i) small.Add(i % 5);
  for (int i = 0; i < 1000; ++i) large.Add(i % 5);
  EXPECT_GT(small.ci_half_width(), large.ci_half_width());
}

TEST(TallyTest, ResetClears) {
  Tally t;
  t.Add(5.0);
  t.Reset();
  EXPECT_EQ(t.count(), 0u);
  EXPECT_DOUBLE_EQ(t.sum(), 0.0);
}

TEST(TimeWeightedTest, ConstantValueAverage) {
  TimeWeighted w(3.0);
  EXPECT_DOUBLE_EQ(w.Average(10.0), 3.0);
}

TEST(TimeWeightedTest, StepFunctionAverage) {
  TimeWeighted w(0.0);
  w.Set(1.0, 2.0);   // 0 over [0,2), 1 over [2,...)
  w.Set(3.0, 6.0);   // 1 over [2,6), 3 over [6,...)
  // At t=10: integral = 0*2 + 1*4 + 3*4 = 16; avg = 1.6.
  EXPECT_DOUBLE_EQ(w.Average(10.0), 1.6);
  EXPECT_DOUBLE_EQ(w.max(), 3.0);
}

TEST(TimeWeightedTest, ResetStartsNewWindow) {
  TimeWeighted w(0.0);
  w.Set(10.0, 5.0);
  w.Reset(5.0);
  // After reset only the constant 10 over [5, 8) counts.
  EXPECT_DOUBLE_EQ(w.Average(8.0), 10.0);
}

TEST(TimeWeightedTest, ZeroWindowReturnsCurrentValue) {
  TimeWeighted w(4.0);
  w.Reset(2.0);
  EXPECT_DOUBLE_EQ(w.Average(2.0), 4.0);
}

TEST(UtilizationTest, FractionOfCapacity) {
  Utilization u(4);
  u.SetBusy(2, 0.0);
  // busy 2/4 over [0, 10)
  EXPECT_DOUBLE_EQ(u.Average(10.0), 0.5);
}

TEST(UtilizationTest, VaryingBusyCount) {
  Utilization u(2);
  u.SetBusy(1, 0.0);
  u.SetBusy(2, 5.0);
  // integral = 1*5 + 2*5 = 15 busy-seconds over 10 s of 2 servers -> 0.75
  EXPECT_DOUBLE_EQ(u.Average(10.0), 0.75);
}

}  // namespace
}  // namespace spiffi::sim
