#include "sim/wait_list.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::sim {
namespace {

TEST(WaitListTest, NotifyOneWakesOldestWaiter) {
  Environment env;
  WaitList list(&env);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    env.Spawn([](WaitList* l, std::vector<int>* log, int id) -> Process {
      bool notified = co_await l->Wait();
      EXPECT_TRUE(notified);
      log->push_back(id);
    }(&list, &woke, i));
  }
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyOne();
    co_await e->Hold(1.0);
    l->NotifyOne();
    l->NotifyOne();
  }(&env, &list));
  env.Run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitListTest, NotifyAllWakesEveryone) {
  Environment env;
  WaitList list(&env);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    env.Spawn([](WaitList* l, int* count) -> Process {
      (void)co_await l->Wait();
      ++*count;
    }(&list, &woke));
  }
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(2.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_EQ(woke, 5);
}

TEST(WaitListTest, WaitUntilTimesOut) {
  Environment env;
  WaitList list(&env);
  double resumed_at = -1.0;
  bool notified = true;
  env.Spawn([](Environment* e, WaitList* l, double* at,
               bool* n) -> Process {
    *n = co_await l->WaitUntil(3.0);
    *at = e->now();
  }(&env, &list, &resumed_at, &notified));
  env.Run();
  EXPECT_FALSE(notified);
  EXPECT_DOUBLE_EQ(resumed_at, 3.0);
  EXPECT_EQ(list.waiter_count(), 0u);
}

TEST(WaitListTest, NotifyBeforeDeadlineCancelsTimer) {
  Environment env;
  WaitList list(&env);
  double resumed_at = -1.0;
  bool notified = false;
  env.Spawn([](Environment* e, WaitList* l, double* at,
               bool* n) -> Process {
    *n = co_await l->WaitUntil(10.0);
    *at = e->now();
  }(&env, &list, &resumed_at, &notified));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(2.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_TRUE(notified);
  EXPECT_DOUBLE_EQ(resumed_at, 2.0);
}

TEST(WaitListTest, TimedOutWaiterNotNotifiedLater) {
  Environment env;
  WaitList list(&env);
  int notify_count = 0;
  env.Spawn([](WaitList* l, int* n) -> Process {
    if (co_await l->WaitUntil(1.0)) ++*n;
  }(&list, &notify_count));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(5.0);
    l->NotifyAll();  // nobody should be waiting by now
  }(&env, &list));
  env.Run();
  EXPECT_EQ(notify_count, 0);
}

TEST(WaitListTest, ReWaitAfterNotifyAllJoinsNextRound) {
  // A waiter that re-waits inside its resumption must not be woken by the
  // same NotifyAll round.
  Environment env;
  WaitList list(&env);
  int wakes = 0;
  env.Spawn([](WaitList* l, int* w) -> Process {
    (void)co_await l->Wait();
    ++*w;
    (void)co_await l->Wait();
    ++*w;
  }(&list, &wakes));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyAll();
    co_await e->Hold(1.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_EQ(wakes, 2);
}

TEST(WaitListTest, MixedTimeoutAndNotifyOrdering) {
  Environment env;
  WaitList list(&env);
  std::vector<std::pair<int, bool>> events;  // (id, notified)
  // Waiter 0 times out at t=1; waiter 1 is notified at t=2.
  env.Spawn([](WaitList* l, std::vector<std::pair<int, bool>>* log)
                -> Process {
    bool n = co_await l->WaitUntil(1.0);
    log->push_back({0, n});
  }(&list, &events));
  env.Spawn([](WaitList* l, std::vector<std::pair<int, bool>>* log)
                -> Process {
    bool n = co_await l->WaitUntil(10.0);
    log->push_back({1, n});
  }(&list, &events));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(2.0);
    l->NotifyOne();
  }(&env, &list));
  env.Run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<int, bool>{0, false}));
  EXPECT_EQ(events[1], (std::pair<int, bool>{1, true}));
}

}  // namespace
}  // namespace spiffi::sim
