#include "sim/wait_list.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::sim {
namespace {

TEST(WaitListTest, NotifyOneWakesOldestWaiter) {
  Environment env;
  WaitList list(&env);
  std::vector<int> woke;
  for (int i = 0; i < 3; ++i) {
    env.Spawn([](WaitList* l, std::vector<int>* log, int id) -> Process {
      bool notified = co_await l->Wait();
      EXPECT_TRUE(notified);
      log->push_back(id);
    }(&list, &woke, i));
  }
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyOne();
    co_await e->Hold(1.0);
    l->NotifyOne();
    l->NotifyOne();
  }(&env, &list));
  env.Run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1, 2}));
}

TEST(WaitListTest, NotifyAllWakesEveryone) {
  Environment env;
  WaitList list(&env);
  int woke = 0;
  for (int i = 0; i < 5; ++i) {
    env.Spawn([](WaitList* l, int* count) -> Process {
      (void)co_await l->Wait();
      ++*count;
    }(&list, &woke));
  }
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(2.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_EQ(woke, 5);
}

TEST(WaitListTest, WaitUntilTimesOut) {
  Environment env;
  WaitList list(&env);
  double resumed_at = -1.0;
  bool notified = true;
  env.Spawn([](Environment* e, WaitList* l, double* at,
               bool* n) -> Process {
    *n = co_await l->WaitUntil(3.0);
    *at = e->now();
  }(&env, &list, &resumed_at, &notified));
  env.Run();
  EXPECT_FALSE(notified);
  EXPECT_DOUBLE_EQ(resumed_at, 3.0);
  EXPECT_EQ(list.waiter_count(), 0u);
}

TEST(WaitListTest, NotifyBeforeDeadlineCancelsTimer) {
  Environment env;
  WaitList list(&env);
  double resumed_at = -1.0;
  bool notified = false;
  env.Spawn([](Environment* e, WaitList* l, double* at,
               bool* n) -> Process {
    *n = co_await l->WaitUntil(10.0);
    *at = e->now();
  }(&env, &list, &resumed_at, &notified));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(2.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_TRUE(notified);
  EXPECT_DOUBLE_EQ(resumed_at, 2.0);
}

TEST(WaitListTest, TimedOutWaiterNotNotifiedLater) {
  Environment env;
  WaitList list(&env);
  int notify_count = 0;
  env.Spawn([](WaitList* l, int* n) -> Process {
    if (co_await l->WaitUntil(1.0)) ++*n;
  }(&list, &notify_count));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(5.0);
    l->NotifyAll();  // nobody should be waiting by now
  }(&env, &list));
  env.Run();
  EXPECT_EQ(notify_count, 0);
}

TEST(WaitListTest, ReWaitAfterNotifyAllJoinsNextRound) {
  // A waiter that re-waits inside its resumption must not be woken by the
  // same NotifyAll round.
  Environment env;
  WaitList list(&env);
  int wakes = 0;
  env.Spawn([](WaitList* l, int* w) -> Process {
    (void)co_await l->Wait();
    ++*w;
    (void)co_await l->Wait();
    ++*w;
  }(&list, &wakes));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyAll();
    co_await e->Hold(1.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_EQ(wakes, 2);
}

TEST(WaitListTest, MixedTimeoutAndNotifyOrdering) {
  Environment env;
  WaitList list(&env);
  std::vector<std::pair<int, bool>> events;  // (id, notified)
  // Waiter 0 times out at t=1; waiter 1 is notified at t=2.
  env.Spawn([](WaitList* l, std::vector<std::pair<int, bool>>* log)
                -> Process {
    bool n = co_await l->WaitUntil(1.0);
    log->push_back({0, n});
  }(&list, &events));
  env.Spawn([](WaitList* l, std::vector<std::pair<int, bool>>* log)
                -> Process {
    bool n = co_await l->WaitUntil(10.0);
    log->push_back({1, n});
  }(&list, &events));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(2.0);
    l->NotifyOne();
  }(&env, &list));
  env.Run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<int, bool>{0, false}));
  EXPECT_EQ(events[1], (std::pair<int, bool>{1, true}));
}

TEST(WaitListTest, NotifyAtExactTimeoutTickLosesToEarlierTimer) {
  // The waiter suspends at t=0, scheduling its timeout for t=1; the
  // notifier's NotifyOne also lands at t=1 but its resumption event was
  // inserted after the timer. Calendar FIFO at equal timestamps: the
  // timeout fires first, unlinks the waiter, and the same-tick notify
  // finds an empty list instead of resuming the waiter twice.
  Environment env;
  WaitList list(&env);
  bool notified = true;
  int resumes = 0;
  env.Spawn([](WaitList* l, bool* n, int* r) -> Process {
    *n = co_await l->WaitUntil(1.0);
    ++*r;
  }(&list, &notified, &resumes));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyOne();
  }(&env, &list));
  env.Run();
  EXPECT_FALSE(notified);
  EXPECT_EQ(resumes, 1);
  EXPECT_EQ(list.waiter_count(), 0u);
}

TEST(WaitListTest, NotifyAtExactTimeoutTickWinsWhenScheduledFirst) {
  // Mirror image: the notifier spawns first, so its Hold-resume event
  // precedes the waiter's timeout in the t=1 FIFO. NotifyOne dispatches
  // the waiter (cancelling its timer); the already-fired timer slot must
  // not produce a second, timed-out resumption.
  Environment env;
  WaitList list(&env);
  bool notified = false;
  int resumes = 0;
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyOne();
  }(&env, &list));
  env.Spawn([](WaitList* l, bool* n, int* r) -> Process {
    *n = co_await l->WaitUntil(1.0);
    ++*r;
  }(&list, &notified, &resumes));
  env.Run();
  EXPECT_TRUE(notified);
  EXPECT_EQ(resumes, 1);
  EXPECT_EQ(list.waiter_count(), 0u);
}

TEST(WaitListTest, NotifyAllAfterSameTickTimeoutSkipsTheDeadFrame) {
  // Waiter 0's timeout fires at t=1 and its coroutine frame is destroyed
  // in the same tick. A NotifyAll landing later in that tick must only
  // reach waiter 1 — touching the timed-out awaiter would be a
  // use-after-free.
  Environment env;
  WaitList list(&env);
  bool timed_out_notified = true;
  bool survivor_notified = false;
  env.Spawn([](WaitList* l, bool* n) -> Process {
    *n = co_await l->WaitUntil(1.0);
  }(&list, &timed_out_notified));
  env.Spawn([](WaitList* l, bool* n) -> Process {
    *n = co_await l->WaitUntil(10.0);
  }(&list, &survivor_notified));
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyAll();
  }(&env, &list));
  env.Run();
  EXPECT_FALSE(timed_out_notified);
  EXPECT_TRUE(survivor_notified);
  EXPECT_EQ(list.waiter_count(), 0u);
}

TEST(WaitListTest, TimeoutWhileEarlierWaiterIsMidNotify) {
  // NotifyOne at t=1 dispatches waiter A, whose resumption is scheduled
  // for later in the same tick. Waiter B's timeout (also t=1) fires in
  // between, while A is "mid-notify". B must time out cleanly, and A's
  // resumption — which immediately re-notifies — must find nobody left.
  Environment env;
  WaitList list(&env);
  bool a_notified = false;
  bool b_notified = true;
  // Notifier spawns first so its t=1 resumption precedes B's timeout in
  // the same-tick FIFO.
  env.Spawn([](Environment* e, WaitList* l) -> Process {
    co_await e->Hold(1.0);
    l->NotifyOne();
  }(&env, &list));
  env.Spawn([](WaitList* l, bool* n) -> Process {
    *n = co_await l->Wait();  // A: oldest, no deadline
    l->NotifyOne();           // fires into an empty list
  }(&list, &a_notified));
  env.Spawn([](WaitList* l, bool* n) -> Process {
    *n = co_await l->WaitUntil(1.0);  // B
  }(&list, &b_notified));
  env.Run();
  EXPECT_TRUE(a_notified);
  EXPECT_FALSE(b_notified);
  EXPECT_EQ(list.waiter_count(), 0u);
}

}  // namespace
}  // namespace spiffi::sim
