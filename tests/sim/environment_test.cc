#include "sim/environment.h"

#include <limits>
#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::sim {
namespace {

Process AppendAt(Environment* env, std::vector<double>* log, double delay) {
  co_await env->Hold(delay);
  log->push_back(env->now());
}

TEST(EnvironmentTest, TimeStartsAtZero) {
  Environment env;
  EXPECT_DOUBLE_EQ(env.now(), 0.0);
}

TEST(EnvironmentTest, RunAdvancesTimeThroughEvents) {
  Environment env;
  std::vector<double> log;
  env.Spawn(AppendAt(&env, &log, 2.5));
  env.Spawn(AppendAt(&env, &log, 1.0));
  env.Run();
  EXPECT_EQ(log, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(env.now(), 2.5);
}

TEST(EnvironmentTest, RunUntilStopsAtBoundary) {
  Environment env;
  std::vector<double> log;
  env.Spawn(AppendAt(&env, &log, 1.0));
  env.Spawn(AppendAt(&env, &log, 5.0));
  env.RunUntil(3.0);
  EXPECT_EQ(log, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(env.now(), 3.0);
  // The later event is still pending and fires on the next Run.
  env.Run();
  EXPECT_EQ(log, (std::vector<double>{1.0, 5.0}));
}

TEST(EnvironmentTest, RunUntilIncludesEventsAtBoundary) {
  Environment env;
  std::vector<double> log;
  env.Spawn(AppendAt(&env, &log, 3.0));
  env.RunUntil(3.0);
  EXPECT_EQ(log, (std::vector<double>{3.0}));
}

Process Stopper(Environment* env, double at) {
  co_await env->Hold(at);
  env->Stop();
}

TEST(EnvironmentTest, StopHaltsRun) {
  Environment env;
  std::vector<double> log;
  env.Spawn(Stopper(&env, 2.0));
  env.Spawn(AppendAt(&env, &log, 1.0));
  env.Spawn(AppendAt(&env, &log, 10.0));
  env.Run();
  EXPECT_EQ(log, (std::vector<double>{1.0}));
  EXPECT_TRUE(env.stopped());
  EXPECT_DOUBLE_EQ(env.now(), 2.0);
}

Process Forever(Environment* env) {
  for (;;) co_await env->Hold(1.0);
}

TEST(EnvironmentTest, DestructionReclaimsLiveProcesses) {
  // A closed system stopped at a time limit leaves suspended coroutines
  // behind; the environment must destroy them (ASAN would flag leaks).
  Environment env;
  for (int i = 0; i < 10; ++i) env.Spawn(Forever(&env));
  env.RunUntil(5.0);
  EXPECT_EQ(env.live_processes(), 10u);
}

TEST(EnvironmentTest, ZeroDelayHoldYieldsToSameTimeEvents) {
  Environment env;
  std::vector<int> order;

  struct Tagger final : EventHandler {
    std::vector<int>* order;
    int tag;
    Tagger(std::vector<int>* o, int t) : order(o), tag(t) {}
    void OnEvent(std::uint64_t) override { order->push_back(tag); }
  };

  Tagger first(&order, 1);
  Tagger second(&order, 2);

  // A process that holds 0: it should resume after events already
  // scheduled at the same instant.
  env.Schedule(0.0, &first);
  env.Spawn([](Environment* e, std::vector<int>* o) -> Process {
    co_await e->Hold(0.0);
    o->push_back(3);
  }(&env, &order));
  env.Schedule(0.0, &second);
  env.Run();
  // first was scheduled before the spawn; the spawn's initial resume comes
  // next; the Hold(0) re-queues behind `second`.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EnvironmentTest, ScheduleAfterUsesRelativeDelay) {
  Environment env;
  std::vector<double> fired;

  struct Waker final : EventHandler {
    Environment* env;
    std::vector<double>* fired;
    Waker(Environment* e, std::vector<double>* f) : env(e), fired(f) {}
    void OnEvent(std::uint64_t) override { fired->push_back(env->now()); }
  };
  Waker waker(&env, &fired);

  env.ScheduleAfter(4.0, &waker);
  env.Run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 4.0);
}

TEST(EnvironmentTest, ScheduleAfterClampsNegativeDelayToNow) {
  // Regression: a negative delay used to schedule into the past (the
  // debug assertion compiled out in release builds), which breaks the
  // calendar's no-backwards-time invariant and, in sharded runs, the
  // conservative clocks. It now clamps to "fire at the current time".
  Environment env;
  std::vector<double> fired;
  struct Waker final : EventHandler {
    Environment* env;
    std::vector<double>* fired;
    void OnEvent(std::uint64_t) override { fired->push_back(env->now()); }
  };
  Waker waker;
  waker.env = &env;
  waker.fired = &fired;

  env.Spawn([](Environment* e) -> Process { co_await e->Hold(5.0); }(&env));
  env.Run();
  ASSERT_DOUBLE_EQ(env.now(), 5.0);

  env.ScheduleAfter(-3.0, &waker);
  env.Run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 5.0);  // now, not now - 3

  // NaN is not a meaningful delay either; it must also clamp, not poison
  // the calendar ordering.
  env.ScheduleAfter(std::numeric_limits<double>::quiet_NaN(), &waker);
  env.Run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[1], 5.0);
}

TEST(EnvironmentTest, CancelPreventsDelivery) {
  Environment env;
  std::vector<double> fired;
  struct Waker final : EventHandler {
    std::vector<double>* fired;
    Environment* env;
    Waker(std::vector<double>* f, Environment* e) : fired(f), env(e) {}
    void OnEvent(std::uint64_t) override { fired->push_back(env->now()); }
  };
  Waker waker(&fired, &env);
  EventId id = env.ScheduleAfter(1.0, &waker);
  env.ScheduleAfter(2.0, &waker);
  env.Cancel(id);
  env.Run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 2.0);
}

TEST(EnvironmentTest, ManyProcessesInterleaveDeterministically) {
  // Two identical runs must produce identical event counts and end times.
  auto run = [] {
    Environment env;
    std::vector<double> log;
    for (int i = 0; i < 50; ++i) {
      env.Spawn([](Environment* e, std::vector<double>* l,
                   int id) -> Process {
        for (int k = 0; k < 20; ++k) {
          co_await e->Hold(0.1 * ((id % 7) + 1));
          l->push_back(e->now() * 1000 + id);
        }
      }(&env, &log, i));
    }
    env.Run();
    return log;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace spiffi::sim
