#include "sim/histogram.h"

#include <cmath>

#include "gtest/gtest.h"
#include "sim/random.h"

namespace spiffi::sim {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, TracksExactExtremesAndMean) {
  Histogram h;
  for (double v : {0.010, 0.020, 0.030, 0.040}) h.Add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.040);
  EXPECT_NEAR(h.mean(), 0.025, 1e-12);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Uniform(0.0, 1.0));
  // Uniform on [0,1]: p50 ~ 0.5, p90 ~ 0.9, within ~19% bucket width.
  EXPECT_NEAR(h.Percentile(0.5), 0.5, 0.1);
  EXPECT_NEAR(h.Percentile(0.9), 0.9, 0.18);
  EXPECT_LE(h.Percentile(0.1), h.Percentile(0.5));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.99));
}

TEST(HistogramTest, PercentileZeroAndOneClampToExtremes) {
  Histogram h;
  h.Add(0.005);
  h.Add(0.500);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.005);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.500);
}

TEST(HistogramTest, OutOfRangeValuesClampToEndBuckets) {
  Histogram h;
  h.Add(1e-9);   // below the 1 us floor
  h.Add(1e9);    // way above an hour
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(HistogramTest, BucketBoundsGrowGeometrically) {
  double previous = Histogram::BucketBound(0);
  for (int b = 1; b < Histogram::kBuckets; ++b) {
    double bound = Histogram::BucketBound(b);
    EXPECT_NEAR(bound / previous, std::pow(2.0, 0.25), 1e-9);
    previous = bound;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, ExponentialTailPercentiles) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 200000; ++i) h.Add(rng.Exponential(0.1));
  // Exponential(0.1): p50 = 0.0693, p99 = 0.4605.
  EXPECT_NEAR(h.Percentile(0.5), 0.0693, 0.02);
  EXPECT_NEAR(h.Percentile(0.99), 0.4605, 0.1);
}

}  // namespace
}  // namespace spiffi::sim
