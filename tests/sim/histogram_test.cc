#include "sim/histogram.h"

#include <cmath>

#include "gtest/gtest.h"
#include "sim/random.h"

namespace spiffi::sim {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
}

TEST(HistogramTest, TracksExactExtremesAndMean) {
  Histogram h;
  for (double v : {0.010, 0.020, 0.030, 0.040}) h.Add(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.min(), 0.010);
  EXPECT_DOUBLE_EQ(h.max(), 0.040);
  EXPECT_NEAR(h.mean(), 0.025, 1e-12);
}

TEST(HistogramTest, PercentilesWithinBucketResolution) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) h.Add(rng.Uniform(0.0, 1.0));
  // Uniform on [0,1]: p50 ~ 0.5, p90 ~ 0.9, within ~19% bucket width.
  EXPECT_NEAR(h.Percentile(0.5), 0.5, 0.1);
  EXPECT_NEAR(h.Percentile(0.9), 0.9, 0.18);
  EXPECT_LE(h.Percentile(0.1), h.Percentile(0.5));
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.99));
}

TEST(HistogramTest, PercentileZeroAndOneClampToExtremes) {
  Histogram h;
  h.Add(0.005);
  h.Add(0.500);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 0.005);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 0.500);
}

TEST(HistogramTest, EmptyPercentileIsZeroForAllQuantiles) {
  Histogram h;
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 0.0) << "q=" << q;
  }
}

TEST(HistogramTest, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.Add(0.0371);
  // With one sample every quantile clamps to min == max == the sample,
  // regardless of where the bucket bound lands.
  for (double q : {0.0, 0.1, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_DOUBLE_EQ(h.Percentile(q), 0.0371) << "q=" << q;
  }
}

TEST(HistogramTest, OutOfRangeQuantilesClampToValidRange) {
  Histogram h;
  h.Add(0.010);
  h.Add(0.100);
  EXPECT_DOUBLE_EQ(h.Percentile(-0.5), 0.010);
  EXPECT_DOUBLE_EQ(h.Percentile(1.5), 0.100);
}

TEST(HistogramTest, PercentileAtBucketBoundaries) {
  // Two clusters in distinct buckets: the rank convention
  // rank = floor(q * (count - 1)) decides which bucket answers.
  Histogram h;
  for (int i = 0; i < 4; ++i) h.Add(0.010);
  for (int i = 0; i < 4; ++i) h.Add(0.320);
  // Ranks 0..3 live in the low bucket, 4..7 in the high one.
  // q = 3/7 - eps -> rank 2 (low); q = 4/7 -> rank 4 (high).
  double low = h.Percentile(0.42);
  double high = h.Percentile(0.58);
  EXPECT_LT(low, 0.020);   // low bucket bound, near 0.010
  EXPECT_GT(high, 0.100);  // high bucket, clamped <= max
  EXPECT_GE(low, h.min());
  EXPECT_LE(high, h.max());
  // Answers are bucket upper bounds clamped to observed extremes, so
  // they always stay inside [min, max].
  for (double q = 0.0; q <= 1.0; q += 0.05) {
    double v = h.Percentile(q);
    EXPECT_GE(v, h.min());
    EXPECT_LE(v, h.max());
  }
}

TEST(HistogramTest, AllSamplesInOneBucketAnswerWithinThatBucket) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Add(0.0500);
  for (double q : {0.01, 0.5, 0.99}) {
    // Everything is in one bucket whose upper bound exceeds the value,
    // so the clamp to max makes the answer exact.
    EXPECT_DOUBLE_EQ(h.Percentile(q), 0.0500) << "q=" << q;
  }
}

TEST(HistogramTest, OutOfRangeValuesClampToEndBuckets) {
  Histogram h;
  h.Add(1e-9);   // below the 1 us floor
  h.Add(1e9);    // way above an hour
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(Histogram::kBuckets - 1), 1u);
}

TEST(HistogramTest, BucketBoundsGrowGeometrically) {
  double previous = Histogram::BucketBound(0);
  for (int b = 1; b < Histogram::kBuckets; ++b) {
    double bound = Histogram::BucketBound(b);
    EXPECT_NEAR(bound / previous, std::pow(2.0, 0.25), 1e-9);
    previous = bound;
  }
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Add(1.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, ExponentialTailPercentiles) {
  Histogram h;
  Rng rng(9);
  for (int i = 0; i < 200000; ++i) h.Add(rng.Exponential(0.1));
  // Exponential(0.1): p50 = 0.0693, p99 = 0.4605.
  EXPECT_NEAR(h.Percentile(0.5), 0.0693, 0.02);
  EXPECT_NEAR(h.Percentile(0.99), 0.4605, 0.1);
}

}  // namespace
}  // namespace spiffi::sim
