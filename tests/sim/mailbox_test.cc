#include "sim/mailbox.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::sim {
namespace {

TEST(MailboxTest, ReceiveGetsQueuedMessage) {
  Environment env;
  Mailbox<int> box(&env);
  box.Send(42);
  int got = 0;
  env.Spawn([](Mailbox<int>* b, int* out) -> Process {
    *out = co_await b->Receive();
  }(&box, &got));
  env.Run();
  EXPECT_EQ(got, 42);
}

TEST(MailboxTest, ReceiverBlocksUntilSend) {
  Environment env;
  Mailbox<int> box(&env);
  std::vector<double> received_at;
  env.Spawn([](Environment* e, Mailbox<int>* b,
               std::vector<double>* log) -> Process {
    (void)co_await b->Receive();
    log->push_back(e->now());
  }(&env, &box, &received_at));
  env.Spawn([](Environment* e, Mailbox<int>* b) -> Process {
    co_await e->Hold(3.0);
    b->Send(7);
  }(&env, &box));
  env.Run();
  ASSERT_EQ(received_at.size(), 1u);
  EXPECT_DOUBLE_EQ(received_at[0], 3.0);
}

TEST(MailboxTest, MessagesDeliveredInFifoOrder) {
  Environment env;
  Mailbox<int> box(&env);
  for (int i = 0; i < 5; ++i) box.Send(i);
  std::vector<int> got;
  env.Spawn([](Mailbox<int>* b, std::vector<int>* out) -> Process {
    for (int i = 0; i < 5; ++i) out->push_back(co_await b->Receive());
  }(&box, &got));
  env.Run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(MailboxTest, MultipleReceiversServedFifo) {
  Environment env;
  Mailbox<int> box(&env);
  std::vector<std::pair<int, int>> got;  // (receiver id, value)
  for (int r = 0; r < 3; ++r) {
    env.Spawn([](Mailbox<int>* b, std::vector<std::pair<int, int>>* out,
                 int id) -> Process {
      int v = co_await b->Receive();
      out->push_back({id, v});
    }(&box, &got, r));
  }
  env.Spawn([](Environment* e, Mailbox<int>* b) -> Process {
    co_await e->Hold(1.0);
    b->Send(100);
    b->Send(200);
    b->Send(300);
  }(&env, &box));
  env.Run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], (std::pair<int, int>{0, 100}));
  EXPECT_EQ(got[1], (std::pair<int, int>{1, 200}));
  EXPECT_EQ(got[2], (std::pair<int, int>{2, 300}));
}

TEST(MailboxTest, MoveOnlyPayload) {
  Environment env;
  Mailbox<std::unique_ptr<std::string>> box(&env);
  box.Send(std::make_unique<std::string>("hello"));
  std::string got;
  env.Spawn(
      [](Mailbox<std::unique_ptr<std::string>>* b, std::string* out)
          -> Process {
        auto p = co_await b->Receive();
        *out = *p;
      }(&box, &got));
  env.Run();
  EXPECT_EQ(got, "hello");
}

TEST(MailboxTest, PendingCountTracksQueue) {
  Environment env;
  Mailbox<int> box(&env);
  EXPECT_EQ(box.pending(), 0u);
  box.Send(1);
  box.Send(2);
  EXPECT_EQ(box.pending(), 2u);
}

}  // namespace
}  // namespace spiffi::sim
