// ShardGroup tests: cross-shard delivery semantics, canonical merge
// order for same-time deliveries, phase boundaries, and a differential
// fuzz that runs the same random actor model on one Environment and on
// sharded groups of several sizes, expecting identical event logs and
// identical total event counts.

#include "sim/shard.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "sim/environment.h"
#include "sim/random.h"

namespace spiffi::sim {
namespace {

constexpr double kLookahead = 1e-3;

// --- Basic delivery -----------------------------------------------------

struct Received {
  SimTime time;
  int value;
};

struct ProbePayload {
  std::vector<Received>* log;
  Environment* expect_env;
  int value;
};

void ProbeDeliver(Environment* env, const void* payload) {
  ProbePayload p;
  std::memcpy(&p, payload, sizeof(p));
  EXPECT_EQ(env, p.expect_env);
  p.log->push_back({env->now(), p.value});
}

TEST(ShardGroupTest, CrossShardSendDeliversAtDeliverTime) {
  Environment env0;
  Environment env1;
  ShardGroup group({&env0, &env1}, kLookahead);

  std::vector<Received> log;
  ProbePayload p{&log, &env1, 42};
  const SimTime deliver = 4.0 * kLookahead;
  group.Send(0, 1, deliver, &ProbeDeliver, &p, sizeof(p));
  group.AdvanceTo(10.0 * kLookahead);

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].time, deliver);
  EXPECT_EQ(log[0].value, 42);
  // The phase ends with every shard's clock at the phase end.
  EXPECT_DOUBLE_EQ(env0.now(), 10.0 * kLookahead);
  EXPECT_DOUBLE_EQ(env1.now(), 10.0 * kLookahead);
}

struct BytesPayload {
  std::vector<unsigned char>* out;
  unsigned char bytes[kMaxRemotePayload - 2 * sizeof(void*)];
};

void BytesDeliver(Environment*, const void* payload) {
  BytesPayload p;
  std::memcpy(&p, payload, sizeof(p));
  p.out->assign(p.bytes, p.bytes + sizeof(p.bytes));
}

TEST(ShardGroupTest, PayloadBytesSurviveTheMailboxIntact) {
  Environment env0;
  Environment env1;
  ShardGroup group({&env0, &env1}, kLookahead);

  std::vector<unsigned char> received;
  BytesPayload p;
  p.out = &received;
  for (std::size_t i = 0; i < sizeof(p.bytes); ++i) {
    p.bytes[i] = static_cast<unsigned char>((i * 37 + 11) & 0xff);
  }
  static_assert(sizeof(p) <= kMaxRemotePayload);
  group.Send(0, 1, 2.0 * kLookahead, &BytesDeliver, &p, sizeof(p));
  group.AdvanceTo(4.0 * kLookahead);

  ASSERT_EQ(received.size(), sizeof(p.bytes));
  EXPECT_TRUE(std::equal(received.begin(), received.end(), p.bytes));
}

TEST(ShardGroupTest, SameTimeDeliveriesMergeBySourceThenSequence) {
  // Three shards; shards 1 and 2 each park two messages for shard 0, all
  // with the same deliver time. The canonical order is (time, source
  // shard, per-pair sequence), regardless of enqueue order.
  Environment env0;
  Environment env1;
  Environment env2;
  ShardGroup group({&env0, &env1, &env2}, kLookahead);

  std::vector<Received> log;
  const SimTime deliver = 5.0 * kLookahead;
  auto send = [&](int src, int value) {
    ProbePayload p{&log, &env0, value};
    group.Send(src, 0, deliver, &ProbeDeliver, &p, sizeof(p));
  };
  // Enqueue in an order deliberately at odds with the canonical one.
  send(2, 20);  // src 2, seq 0
  send(1, 10);  // src 1, seq 0
  send(2, 21);  // src 2, seq 1
  send(1, 11);  // src 1, seq 1
  group.AdvanceTo(8.0 * kLookahead);

  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].value, 10);
  EXPECT_EQ(log[1].value, 11);
  EXPECT_EQ(log[2].value, 20);
  EXPECT_EQ(log[3].value, 21);
  for (const Received& r : log) EXPECT_EQ(r.time, deliver);
}

TEST(ShardGroupTest, DeliveryBeyondPhaseEndWaitsForTheNextPhase) {
  Environment env0;
  Environment env1;
  ShardGroup group({&env0, &env1}, kLookahead);

  std::vector<Received> log;
  ProbePayload p{&log, &env1, 7};
  const SimTime deliver = 6.0 * kLookahead;
  group.Send(0, 1, deliver, &ProbeDeliver, &p, sizeof(p));

  group.AdvanceTo(3.0 * kLookahead);  // phase ends before the delivery
  EXPECT_TRUE(log.empty());
  EXPECT_DOUBLE_EQ(env1.now(), 3.0 * kLookahead);

  group.AdvanceTo(9.0 * kLookahead);  // next phase picks it up
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].time, deliver);
}

TEST(ShardGroupTest, EndpointDirectoryResolvesRegisteredPointers) {
  Environment env0;
  Environment env1;
  ShardGroup group({&env0, &env1}, kLookahead);
  int a = 0;
  int b = 0;
  group.RegisterEndpoint(&a, 0);
  group.RegisterEndpoint(&b, 1);
  EXPECT_EQ(group.ShardOf(&a), 0);
  EXPECT_EQ(group.ShardOf(&b), 1);
}

TEST(ShardGroupTest, SingleShardGroupRunsThePlainLoop) {
  Environment env;
  ShardGroup group({&env}, kLookahead);
  std::vector<double> fired;
  struct Waker final : EventHandler {
    std::vector<double>* fired;
    Environment* env;
    void OnEvent(std::uint64_t) override { fired->push_back(env->now()); }
  };
  Waker waker;
  waker.fired = &fired;
  waker.env = &env;
  env.ScheduleAfter(1.0, &waker);
  env.ScheduleAfter(5.0, &waker);
  group.AdvanceTo(3.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0}));
  EXPECT_DOUBLE_EQ(env.now(), 3.0);
  group.AdvanceTo(6.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 5.0}));
}

// --- Differential fuzz --------------------------------------------------
//
// A population of actors, each with its own RNG stream, runs self-event
// chains and fires randomly-addressed sends with continuous random
// delays (>= lookahead). The same model executes on one Environment and
// on sharded groups; because every timestamp is drawn from a continuous
// distribution, the merged (time, actor, value) logs must be identical
// — any synchronization bug shows up as a reordered, missing, or
// duplicated entry.

struct LogEntry {
  SimTime time;
  int actor;
  std::uint64_t value;

  bool operator==(const LogEntry&) const = default;
};

struct ActorWorld {
  std::vector<Environment*> env_of_actor;
  std::vector<int> shard_of_actor;
  ShardGroup* group = nullptr;  // null in the single-environment run
  std::vector<Rng> rng;
  std::vector<std::vector<LogEntry>> logs;
  double lookahead = kLookahead;
  int actors = 0;
  int steps = 0;
};

struct SendPayload {
  ActorWorld* world;
  int to;
  int from;
  int step;
};
static_assert(sizeof(SendPayload) <= kMaxRemotePayload);

void OnDeliver(const SendPayload& p) {
  ActorWorld* w = p.world;
  Environment* env = w->env_of_actor[p.to];
  const std::uint64_t value = 1000003ull * static_cast<std::uint64_t>(p.from) +
                              17ull * static_cast<std::uint64_t>(p.step);
  w->logs[p.to].push_back({env->now(), p.to, value});
}

void RemoteDeliver(Environment*, const void* payload) {
  SendPayload p;
  std::memcpy(&p, payload, sizeof(p));
  OnDeliver(p);
}

struct DeliverEvent final : EventHandler {
  SendPayload p;
  void OnEvent(std::uint64_t) override {
    SendPayload copy = p;
    delete this;
    OnDeliver(copy);
  }
};

void SendTo(ActorWorld* w, int from, int to, int step, double delay) {
  Environment* src = w->env_of_actor[from];
  const SimTime deliver = src->now() + delay;
  SendPayload p{w, to, from, step};
  if (w->group != nullptr &&
      w->shard_of_actor[to] != w->shard_of_actor[from]) {
    w->group->Send(w->shard_of_actor[from], w->shard_of_actor[to], deliver,
                   &RemoteDeliver, &p, sizeof(p));
    return;
  }
  auto* event = new DeliverEvent;
  event->p = p;
  w->env_of_actor[to]->Schedule(deliver, event);
}

void RunStep(ActorWorld* w, int actor, int step);

struct StepEvent final : EventHandler {
  ActorWorld* w;
  int actor;
  int step;
  void OnEvent(std::uint64_t) override {
    ActorWorld* world = w;
    const int a = actor;
    const int s = step;
    delete this;
    RunStep(world, a, s);
  }
};

void RunStep(ActorWorld* w, int actor, int step) {
  Environment* env = w->env_of_actor[actor];
  Rng& rng = w->rng[actor];
  w->logs[actor].push_back(
      {env->now(), actor, 7919ull * static_cast<std::uint64_t>(actor) +
                              static_cast<std::uint64_t>(step)});
  if (step >= w->steps) return;
  // Identical draws in every topology: the target and delay are consumed
  // unconditionally, and an actor's stream is only touched by its own
  // events, which fire in timestamp order everywhere.
  const int to = static_cast<int>(rng.UniformInt(
      static_cast<std::uint64_t>(w->actors)));
  const double send_delay = w->lookahead * (1.0 + 4.0 * rng.NextDouble());
  if (rng.NextDouble() < 0.7) SendTo(w, actor, to, step, send_delay);
  const double hold = w->lookahead * (0.5 + 3.0 * rng.NextDouble());
  auto* next = new StepEvent;
  next->w = w;
  next->actor = actor;
  next->step = step + 1;
  env->ScheduleAfter(hold, next);
}

// Runs the model over `shards` environments (1 = reference) and returns
// the merged log plus the total kernel event count.
std::pair<std::vector<LogEntry>, std::uint64_t> RunWorld(std::uint64_t seed,
                                                         int actors,
                                                         int steps,
                                                         int shards) {
  std::vector<std::unique_ptr<Environment>> envs;
  std::vector<Environment*> raw;
  for (int s = 0; s < shards; ++s) {
    envs.push_back(std::make_unique<Environment>());
    raw.push_back(envs.back().get());
  }
  std::unique_ptr<ShardGroup> group;
  if (shards > 1) group = std::make_unique<ShardGroup>(raw, kLookahead);

  ActorWorld world;
  world.group = group.get();
  world.actors = actors;
  world.steps = steps;
  for (int a = 0; a < actors; ++a) {
    const int shard = a % shards;
    world.shard_of_actor.push_back(shard);
    world.env_of_actor.push_back(raw[static_cast<std::size_t>(shard)]);
    world.rng.emplace_back(seed * 1000 + static_cast<std::uint64_t>(a));
    world.logs.emplace_back();
  }
  for (int a = 0; a < actors; ++a) {
    auto* first = new StepEvent;
    first->w = &world;
    first->actor = a;
    first->step = 0;
    world.env_of_actor[a]->Schedule(
        kLookahead * world.rng[a].NextDouble(), first);
  }

  // Several phases, so in-flight messages cross phase boundaries too.
  const double total = kLookahead * (4.5 * steps + 10.0);
  const std::vector<double> ends = {0.1 * total, 0.3 * total, total};
  for (double end : ends) {
    if (group != nullptr) {
      group->AdvanceTo(end);
    } else {
      raw[0]->RunUntil(end);
    }
  }

  std::vector<LogEntry> merged;
  for (const auto& log : world.logs) {
    merged.insert(merged.end(), log.begin(), log.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const LogEntry& a, const LogEntry& b) {
              return std::tie(a.time, a.actor, a.value) <
                     std::tie(b.time, b.actor, b.value);
            });
  std::uint64_t events = 0;
  for (Environment* env : raw) events += env->events_fired();
  return {merged, events};
}

TEST(ShardFuzzTest, ShardedRunsMatchSingleEnvironmentExactly) {
  const int kActors = 12;
  const int kSteps = 40;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto [reference, reference_events] = RunWorld(seed, kActors, kSteps, 1);
    // The model must actually have logged a full run's worth of entries
    // (steps + deliveries) for the comparison to mean anything.
    ASSERT_GT(reference.size(), static_cast<std::size_t>(kActors * kSteps));
    for (int shards : {2, 3, 4}) {
      auto [sharded, sharded_events] = RunWorld(seed, kActors, kSteps, shards);
      EXPECT_EQ(sharded, reference) << "shards=" << shards
                                    << " seed=" << seed;
      // Every delivery crosses exactly one calendar event in both
      // topologies, so even the kernel event counts line up.
      EXPECT_EQ(sharded_events, reference_events)
          << "shards=" << shards << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace spiffi::sim
