#include "sim/resource.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::sim {
namespace {

Process UseOnce(Environment* env, Resource* res, double service,
                std::vector<double>* done_at) {
  co_await res->Use(service);
  done_at->push_back(env->now());
}

TEST(ResourceTest, SingleServerSerializesRequests) {
  Environment env;
  Resource cpu(&env, 1, "cpu");
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) env.Spawn(UseOnce(&env, &cpu, 2.0, &done));
  env.Run();
  EXPECT_EQ(done, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(ResourceTest, MultiServerRunsInParallel) {
  Environment env;
  Resource res(&env, 2, "disk-pair");
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) env.Spawn(UseOnce(&env, &res, 2.0, &done));
  env.Run();
  EXPECT_EQ(done, (std::vector<double>{2.0, 2.0, 4.0, 4.0}));
}

TEST(ResourceTest, FcfsOrderPreserved) {
  Environment env;
  Resource res(&env, 1, "cpu");
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    env.Spawn([](Environment* e, Resource* r, std::vector<int>* log,
                 int id) -> Process {
      co_await e->Hold(0.1 * id);  // arrive staggered
      co_await r->Use(1.0);
      log->push_back(id);
    }(&env, &res, &order, i));
  }
  env.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, UtilizationFullWhenAlwaysBusy) {
  Environment env;
  Resource res(&env, 1, "cpu");
  std::vector<double> done;
  for (int i = 0; i < 10; ++i) env.Spawn(UseOnce(&env, &res, 1.0, &done));
  env.Run();
  EXPECT_NEAR(res.AverageUtilization(env.now()), 1.0, 1e-9);
}

TEST(ResourceTest, UtilizationHalfWhenBusyHalfTheTime) {
  Environment env;
  Resource res(&env, 1, "cpu");
  env.Spawn([](Environment* e, Resource* r) -> Process {
    co_await r->Use(5.0);  // busy [0, 5)
    co_await e->Hold(5.0);  // idle [5, 10)
  }(&env, &res));
  env.RunUntil(10.0);
  EXPECT_NEAR(res.AverageUtilization(env.now()), 0.5, 1e-9);
}

TEST(ResourceTest, ResetStatsOpensNewWindow) {
  Environment env;
  Resource res(&env, 1, "cpu");
  std::vector<double> done;
  env.Spawn(UseOnce(&env, &res, 4.0, &done));  // busy [0,4)
  env.Run();
  res.ResetStats(env.now());
  env.Spawn(UseOnce(&env, &res, 1.0, &done));  // busy [4,5)
  env.RunUntil(6.0);
  EXPECT_NEAR(res.AverageUtilization(env.now()), 0.5, 1e-9);
}

TEST(ResourceTest, ServiceTallyRecordsTimes) {
  Environment env;
  Resource res(&env, 1, "cpu");
  std::vector<double> done;
  env.Spawn(UseOnce(&env, &res, 1.0, &done));
  env.Spawn(UseOnce(&env, &res, 3.0, &done));
  env.Run();
  EXPECT_EQ(res.service_tally().count(), 2u);
  EXPECT_DOUBLE_EQ(res.service_tally().mean(), 2.0);
}

TEST(ResourceTest, QueueLengthVisibleMidRun) {
  Environment env;
  Resource res(&env, 1, "cpu");
  std::vector<double> done;
  for (int i = 0; i < 5; ++i) env.Spawn(UseOnce(&env, &res, 10.0, &done));
  env.RunUntil(1.0);
  EXPECT_EQ(res.busy(), 1);
  EXPECT_EQ(res.queue_length(), 4u);
}

}  // namespace
}  // namespace spiffi::sim
