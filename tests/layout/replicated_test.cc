#include "layout/replicated.h"

#include <set>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "layout/striping.h"

namespace spiffi::layout {
namespace {

constexpr std::int64_t kStripe = 512 * 1024;

std::vector<std::int64_t> Blocks(int videos, std::int64_t each) {
  return std::vector<std::int64_t>(static_cast<std::size_t>(videos), each);
}

TEST(ReplicatedLayoutTest, PrimaryMatchesPlainStriping) {
  StripedLayout striped(4, 2, kStripe, Blocks(8, 40));
  ReplicatedStripedLayout replicated(4, 2, kStripe, Blocks(8, 40), 2);
  for (int v = 0; v < 8; ++v) {
    for (std::int64_t b = 0; b < 40; ++b) {
      EXPECT_EQ(replicated.Locate(v, b), striped.Locate(v, b));
      EXPECT_EQ(replicated.NextBlockOnSameDisk(v, b),
                striped.NextBlockOnSameDisk(v, b));
    }
  }
  EXPECT_EQ(replicated.replica_count(), 2);
  EXPECT_EQ(striped.replica_count(), 1);  // base-class default
}

TEST(ReplicatedLayoutTest, CopiesChainAcrossNodesOnTheSameLocalDisk) {
  ReplicatedStripedLayout layout(4, 2, kStripe, Blocks(8, 40), 3);
  for (int v = 0; v < 8; ++v) {
    for (std::int64_t b = 0; b < 40; ++b) {
      BlockLocation primary = layout.Locate(v, b);
      for (int c = 1; c < 3; ++c) {
        BlockLocation copy = layout.LocateCopy(v, b, c);
        EXPECT_EQ(copy.node, (primary.node + c) % 4);
        EXPECT_EQ(copy.disk_local, primary.disk_local);
        EXPECT_EQ(copy.disk_global, copy.node * 2 + copy.disk_local);
      }
    }
  }
}

TEST(ReplicatedLayoutTest, ReplicasListsPrimaryFirstOnDistinctNodes) {
  ReplicatedStripedLayout layout(4, 2, kStripe, Blocks(8, 40), 3);
  for (int v = 0; v < 8; ++v) {
    for (std::int64_t b = 0; b < 40; b += 7) {
      std::vector<BlockLocation> copies = layout.Replicas(v, b);
      ASSERT_EQ(copies.size(), 3u);
      EXPECT_EQ(copies[0], layout.Locate(v, b));
      std::set<int> nodes;
      for (const BlockLocation& loc : copies) nodes.insert(loc.node);
      EXPECT_EQ(nodes.size(), 3u);  // all copies on distinct nodes
    }
  }
}

TEST(ReplicatedLayoutTest, CopyRegionsNeverCollide) {
  ReplicatedStripedLayout layout(2, 2, kStripe, Blocks(8, 40), 2);
  // Every (disk, offset) pair across all copies of all blocks is unique:
  // replica regions are stacked, not interleaved.
  std::set<std::pair<int, std::int64_t>> placed;
  for (int v = 0; v < 8; ++v) {
    for (std::int64_t b = 0; b < 40; ++b) {
      for (int c = 0; c < 2; ++c) {
        BlockLocation loc = layout.LocateCopy(v, b, c);
        EXPECT_TRUE(
            placed.insert({loc.disk_global, loc.offset}).second)
            << "copy " << c << " of video " << v << " block " << b
            << " collides";
      }
    }
  }
}

TEST(ReplicatedLayoutTest, PrefetchChainHoldsOnEveryReplica) {
  // If block b' is the next block after b on the primary disk, then on
  // every copy chain, copy c of b' sits on the same disk as copy c of b —
  // the prefetcher's "next block on this disk" rule survives failover.
  ReplicatedStripedLayout layout(4, 2, kStripe, Blocks(8, 40), 2);
  for (int v = 0; v < 8; ++v) {
    for (std::int64_t b = 0; b < 40; ++b) {
      std::int64_t next = layout.NextBlockOnSameDisk(v, b);
      if (next < 0) continue;
      for (int c = 0; c < 2; ++c) {
        EXPECT_EQ(layout.LocateCopy(v, next, c).disk_global,
                  layout.LocateCopy(v, b, c).disk_global);
      }
    }
  }
}

TEST(ReplicatedLayoutTest, MaxBytesScalesWithReplicaCount) {
  StripedLayout striped(4, 2, kStripe, Blocks(8, 40));
  ReplicatedStripedLayout x2(4, 2, kStripe, Blocks(8, 40), 2);
  ReplicatedStripedLayout x3(4, 2, kStripe, Blocks(8, 40), 3);
  EXPECT_EQ(x2.MaxBytesOnAnyDisk(), 2 * striped.MaxBytesOnAnyDisk());
  EXPECT_EQ(x3.MaxBytesOnAnyDisk(), 3 * striped.MaxBytesOnAnyDisk());
}

TEST(ReplicatedLayoutTest, FullChainWrapsAllNodes) {
  // replicas == num_nodes: every node holds a copy of every block.
  ReplicatedStripedLayout layout(3, 1, kStripe, Blocks(3, 30), 3);
  for (std::int64_t b = 0; b < 30; ++b) {
    std::set<int> nodes;
    for (const BlockLocation& loc : layout.Replicas(0, b)) {
      nodes.insert(loc.node);
    }
    EXPECT_EQ(nodes.size(), 3u);
  }
}

}  // namespace
}  // namespace spiffi::layout
