#include "layout/striping.h"

#include <map>
#include <set>
#include <vector>

#include "gtest/gtest.h"

namespace spiffi::layout {
namespace {

constexpr std::int64_t kStripe = 512 * 1024;

TEST(StripedLayoutTest, PaperFigureThreePattern) {
  // Fig 3: 2 nodes x 2 disks. Block 0 -> node 0 disk 0; block 1 -> node 1
  // disk 0; block 2 -> node 0 disk 1; block 3 -> node 1 disk 1; block 4
  // wraps to node 0 disk 0.
  StripedLayout layout(2, 2, kStripe, {16});
  EXPECT_EQ(layout.Locate(0, 0).node, 0);
  EXPECT_EQ(layout.Locate(0, 0).disk_local, 0);
  EXPECT_EQ(layout.Locate(0, 1).node, 1);
  EXPECT_EQ(layout.Locate(0, 1).disk_local, 0);
  EXPECT_EQ(layout.Locate(0, 2).node, 0);
  EXPECT_EQ(layout.Locate(0, 2).disk_local, 1);
  EXPECT_EQ(layout.Locate(0, 3).node, 1);
  EXPECT_EQ(layout.Locate(0, 3).disk_local, 1);
  EXPECT_EQ(layout.Locate(0, 4).node, 0);
  EXPECT_EQ(layout.Locate(0, 4).disk_local, 0);
}

TEST(StripedLayoutTest, FragmentIsContiguous) {
  // Blocks B.3, B.7, B.11... on one disk are laid out back to back.
  StripedLayout layout(2, 2, kStripe, {16});
  BlockLocation first = layout.Locate(0, 3);
  BlockLocation second = layout.Locate(0, 7);
  BlockLocation third = layout.Locate(0, 11);
  EXPECT_EQ(first.disk_global, second.disk_global);
  EXPECT_EQ(second.offset - first.offset, kStripe);
  EXPECT_EQ(third.offset - second.offset, kStripe);
}

TEST(StripedLayoutTest, SuccessiveVideosStackOnDisk) {
  StripedLayout layout(2, 2, kStripe, {16, 16});
  BlockLocation last_of_v0 = layout.Locate(0, 12);  // fragment index 3
  BlockLocation first_of_v1 = layout.Locate(1, 0);
  EXPECT_EQ(last_of_v0.disk_global, first_of_v1.disk_global);
  EXPECT_EQ(first_of_v1.offset, last_of_v0.offset + kStripe);
}

TEST(StripedLayoutTest, EveryBlockMapsToExactlyOneDisk) {
  StripedLayout layout(4, 4, kStripe, {100});
  std::map<int, int> per_disk;
  for (std::int64_t b = 0; b < 100; ++b) {
    BlockLocation loc = layout.Locate(0, b);
    EXPECT_EQ(loc.disk_global, loc.node * 4 + loc.disk_local);
    ++per_disk[loc.disk_global];
  }
  // 100 blocks over 16 disks: each disk gets 6 or 7.
  EXPECT_EQ(per_disk.size(), 16u);
  for (const auto& [disk, count] : per_disk) {
    EXPECT_GE(count, 6);
    EXPECT_LE(count, 7);
  }
}

TEST(StripedLayoutTest, NoOverlappingExtentsOnAnyDisk) {
  StripedLayout layout(2, 3, kStripe, {50, 47, 61});
  std::map<int, std::set<std::int64_t>> offsets;
  for (int v = 0; v < 3; ++v) {
    std::int64_t blocks = v == 0 ? 50 : (v == 1 ? 47 : 61);
    for (std::int64_t b = 0; b < blocks; ++b) {
      BlockLocation loc = layout.Locate(v, b);
      auto [it, inserted] = offsets[loc.disk_global].insert(loc.offset);
      EXPECT_TRUE(inserted) << "duplicate extent on disk "
                            << loc.disk_global << " at " << loc.offset;
    }
  }
}

TEST(StripedLayoutTest, NextBlockOnSameDiskSkipsWidth) {
  StripedLayout layout(4, 4, kStripe, {100});
  EXPECT_EQ(layout.NextBlockOnSameDisk(0, 3), 19);
  EXPECT_EQ(layout.Locate(0, 3).disk_global,
            layout.Locate(0, 19).disk_global);
  // Near the end of the video there is no next block.
  EXPECT_EQ(layout.NextBlockOnSameDisk(0, 95), -1);
}

TEST(StripedLayoutTest, MaxBytesOnAnyDiskBalanced) {
  // 113 blocks over 16 disks: the first 113 mod 16 = 1 disk in cycle
  // order gets ceil(113/16) = 8 blocks, the rest get 7. Every video is
  // balanced to within one block per disk.
  StripedLayout layout(4, 4, kStripe, std::vector<std::int64_t>(64, 113));
  EXPECT_EQ(layout.MaxBytesOnAnyDisk(), 64 * 8 * kStripe);
}

TEST(StripedLayoutTest, SingleNodeSingleDiskDegenerates) {
  StripedLayout layout(1, 1, kStripe, {10});
  for (std::int64_t b = 0; b < 10; ++b) {
    BlockLocation loc = layout.Locate(0, b);
    EXPECT_EQ(loc.disk_global, 0);
    EXPECT_EQ(loc.offset, b * kStripe);
  }
  EXPECT_EQ(layout.NextBlockOnSameDisk(0, 4), 5);
}

}  // namespace
}  // namespace spiffi::layout
