// Parameterized property tests over layout geometries: every (video,
// block) maps to exactly one non-overlapping extent, and the prefetch
// successor relation is consistent with Locate.

#include <map>
#include <memory>
#include <set>
#include <tuple>

#include "gtest/gtest.h"
#include "layout/nonstriped.h"
#include "layout/striping.h"

namespace spiffi::layout {
namespace {

constexpr std::int64_t kBlock = 512 * 1024;

// Parameter: (nodes, disks_per_node, blocks_per_video).
using Geometry = std::tuple<int, int, int>;

class LayoutPropertyTest : public ::testing::TestWithParam<Geometry> {
 protected:
  int nodes() const { return std::get<0>(GetParam()); }
  int disks_per_node() const { return std::get<1>(GetParam()); }
  int blocks_per_video() const { return std::get<2>(GetParam()); }
  int total_disks() const { return nodes() * disks_per_node(); }
  // Non-striped layouts need videos divisible by disks; use 2 per disk.
  int videos() const { return 2 * total_disks(); }

  void CheckInvariants(const Layout& layout, std::int64_t num_blocks) {
    std::map<int, std::set<std::int64_t>> extents;
    for (int v = 0; v < videos(); ++v) {
      for (std::int64_t b = 0; b < num_blocks; ++b) {
        BlockLocation loc = layout.Locate(v, b);
        // Valid coordinates.
        ASSERT_GE(loc.node, 0);
        ASSERT_LT(loc.node, nodes());
        ASSERT_GE(loc.disk_local, 0);
        ASSERT_LT(loc.disk_local, disks_per_node());
        ASSERT_EQ(loc.disk_global,
                  loc.node * disks_per_node() + loc.disk_local);
        ASSERT_GE(loc.offset, 0);
        ASSERT_EQ(loc.offset % kBlock, 0);
        // No two blocks share an extent.
        ASSERT_TRUE(extents[loc.disk_global].insert(loc.offset).second)
            << "overlap at disk " << loc.disk_global << " offset "
            << loc.offset;
        // Successor consistency.
        std::int64_t next = layout.NextBlockOnSameDisk(v, b);
        if (next >= 0) {
          ASSERT_LT(next, num_blocks);
          ASSERT_GT(next, b);
          ASSERT_EQ(layout.Locate(v, next).disk_global, loc.disk_global);
          // No intermediate block of this video on the same disk.
          for (std::int64_t mid = b + 1; mid < next; ++mid) {
            ASSERT_NE(layout.Locate(v, mid).disk_global, loc.disk_global);
          }
        } else {
          // None of the later blocks are on this disk.
          for (std::int64_t later = b + 1; later < num_blocks; ++later) {
            ASSERT_NE(layout.Locate(v, later).disk_global,
                      loc.disk_global);
          }
        }
      }
    }
  }
};

TEST_P(LayoutPropertyTest, StripedInvariants) {
  std::vector<std::int64_t> blocks(videos(), blocks_per_video());
  StripedLayout layout(nodes(), disks_per_node(), kBlock, blocks);
  CheckInvariants(layout, blocks_per_video());
}

TEST_P(LayoutPropertyTest, NonStripedInvariants) {
  std::vector<std::int64_t> bytes(videos(),
                                  blocks_per_video() * kBlock);
  NonStripedLayout layout(nodes(), disks_per_node(), kBlock, bytes, 17);
  CheckInvariants(layout, blocks_per_video());
}

TEST_P(LayoutPropertyTest, StripedBalancesWithinOneBlock) {
  std::vector<std::int64_t> blocks(videos(), blocks_per_video());
  StripedLayout layout(nodes(), disks_per_node(), kBlock, blocks);
  std::map<int, int> per_disk;
  for (int v = 0; v < videos(); ++v) {
    for (std::int64_t b = 0; b < blocks_per_video(); ++b) {
      ++per_disk[layout.Locate(v, b).disk_global];
    }
  }
  int min = blocks_per_video() * videos();
  int max = 0;
  for (int d = 0; d < total_disks(); ++d) {
    min = std::min(min, per_disk[d]);
    max = std::max(max, per_disk[d]);
  }
  // Each video spreads within one block per disk; totals within
  // videos() blocks of each other.
  EXPECT_LE(max - min, videos());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, LayoutPropertyTest,
    ::testing::Values(Geometry{1, 1, 7}, Geometry{1, 4, 13},
                      Geometry{2, 2, 16}, Geometry{4, 4, 33},
                      Geometry{3, 2, 10}, Geometry{4, 16, 65}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return std::to_string(std::get<0>(info.param)) + "n" +
             std::to_string(std::get<1>(info.param)) + "d" +
             std::to_string(std::get<2>(info.param)) + "b";
    });

}  // namespace
}  // namespace spiffi::layout
