// Layout interface conformance: invariants every Layout implementation
// must satisfy, run against striped, non-striped, and replicated-striped
// layouts through one parameterized suite. New layouts join by adding a
// factory to the instantiation list.

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "layout/layout.h"
#include "layout/nonstriped.h"
#include "layout/replicated.h"
#include "layout/routing.h"
#include "layout/striping.h"

namespace spiffi::layout {
namespace {

constexpr int kNodes = 2;
constexpr int kDisksPerNode = 2;
constexpr int kVideos = 8;  // divisible by total disks (non-striped)
constexpr std::int64_t kBlocksPerVideo = 40;
constexpr std::int64_t kStripe = 512 * 1024;

struct LayoutCase {
  std::string name;
  std::unique_ptr<Layout> (*make)();
};

std::unique_ptr<Layout> MakeStriped() {
  return std::make_unique<StripedLayout>(
      kNodes, kDisksPerNode, kStripe,
      std::vector<std::int64_t>(kVideos, kBlocksPerVideo));
}

std::unique_ptr<Layout> MakeNonStriped() {
  return std::make_unique<NonStripedLayout>(
      kNodes, kDisksPerNode, kStripe,
      std::vector<std::int64_t>(kVideos, kBlocksPerVideo * kStripe),
      /*seed=*/17);
}

std::unique_ptr<Layout> MakeReplicated() {
  return std::make_unique<ReplicatedStripedLayout>(
      kNodes, kDisksPerNode, kStripe,
      std::vector<std::int64_t>(kVideos, kBlocksPerVideo),
      /*replicas=*/2);
}

class LayoutConformanceTest : public testing::TestWithParam<LayoutCase> {
 protected:
  void SetUp() override { layout_ = GetParam().make(); }
  std::unique_ptr<Layout> layout_;
};

TEST_P(LayoutConformanceTest, ReportsTheConstructedTopology) {
  EXPECT_EQ(layout_->num_nodes(), kNodes);
  EXPECT_EQ(layout_->disks_per_node(), kDisksPerNode);
  EXPECT_EQ(layout_->total_disks(), kNodes * kDisksPerNode);
  EXPECT_GE(layout_->replica_count(), 1);
}

TEST_P(LayoutConformanceTest, LocationsAreInternallyConsistent) {
  for (int v = 0; v < kVideos; ++v) {
    for (std::int64_t b = 0; b < kBlocksPerVideo; ++b) {
      BlockLocation loc = layout_->Locate(v, b);
      EXPECT_GE(loc.node, 0);
      EXPECT_LT(loc.node, kNodes);
      EXPECT_GE(loc.disk_local, 0);
      EXPECT_LT(loc.disk_local, kDisksPerNode);
      EXPECT_EQ(loc.disk_global, loc.node * kDisksPerNode + loc.disk_local);
      EXPECT_GE(loc.offset, 0);
      EXPECT_EQ(loc.offset % kStripe, 0);  // block-aligned
    }
  }
}

TEST_P(LayoutConformanceTest, LocateIsAPureFunction) {
  for (int v = 0; v < kVideos; v += 3) {
    for (std::int64_t b = 0; b < kBlocksPerVideo; b += 7) {
      EXPECT_EQ(layout_->Locate(v, b), layout_->Locate(v, b));
    }
  }
}

TEST_P(LayoutConformanceTest, DistinctBlocksNeverShareDiskAndOffset) {
  std::set<std::pair<int, std::int64_t>> placed;
  for (int v = 0; v < kVideos; ++v) {
    for (std::int64_t b = 0; b < kBlocksPerVideo; ++b) {
      BlockLocation loc = layout_->Locate(v, b);
      EXPECT_TRUE(placed.insert({loc.disk_global, loc.offset}).second)
          << "video " << v << " block " << b << " overlaps another block";
    }
  }
}

TEST_P(LayoutConformanceTest, NextBlockOnSameDiskIsForwardAndOnThatDisk) {
  for (int v = 0; v < kVideos; ++v) {
    for (std::int64_t b = 0; b < kBlocksPerVideo; ++b) {
      std::int64_t next = layout_->NextBlockOnSameDisk(v, b);
      if (next < 0) continue;  // no successor: allowed
      EXPECT_GT(next, b);
      EXPECT_LT(next, kBlocksPerVideo);
      EXPECT_EQ(layout_->Locate(v, next).disk_global,
                layout_->Locate(v, b).disk_global);
      // ...and it is the NEXT one: nothing between them on that disk.
      for (std::int64_t between = b + 1; between < next; ++between) {
        EXPECT_NE(layout_->Locate(v, between).disk_global,
                  layout_->Locate(v, b).disk_global);
      }
    }
  }
}

TEST_P(LayoutConformanceTest, ReplicasListPrimaryFirstAndDistinctDisks) {
  for (int v = 0; v < kVideos; ++v) {
    for (std::int64_t b = 0; b < kBlocksPerVideo; b += 5) {
      std::vector<BlockLocation> copies = layout_->Replicas(v, b);
      ASSERT_EQ(copies.size(),
                static_cast<std::size_t>(layout_->replica_count()));
      EXPECT_EQ(copies[0], layout_->Locate(v, b));
      std::set<int> disks;
      for (const BlockLocation& loc : copies) {
        EXPECT_GE(loc.node, 0);
        EXPECT_LT(loc.node, kNodes);
        EXPECT_EQ(loc.disk_global,
                  loc.node * kDisksPerNode + loc.disk_local);
        disks.insert(loc.disk_global);
      }
      // Copies exist to survive a disk loss: they must not share one.
      EXPECT_EQ(disks.size(), copies.size());
    }
  }
}

// Multi-tier resolver conformance: for every layout and proxy count,
// TierRouter must preserve the flat topology's origin resolution
// (primary first, all replicas) and assign terminals to proxies
// statically and purely.
TEST_P(LayoutConformanceTest, TierRouterPreservesOriginResolution) {
  for (int proxies : {0, 1, 2, 3, 5}) {
    TierRouter router(layout_.get(), proxies);
    EXPECT_EQ(router.proxy_nodes(), proxies);
    for (int t = 0; t < 7; ++t) {
      for (int v = 0; v < kVideos; v += 3) {
        for (std::int64_t b = 0; b < kBlocksPerVideo; b += 7) {
          TierRoute route = router.RouteForBlock(t, v, b);
          // The origin hop is exactly Replicas(): primary first, every
          // copy, regardless of the proxy tier's size.
          ASSERT_EQ(route.origin.size(),
                    static_cast<std::size_t>(layout_->replica_count()));
          EXPECT_EQ(route.origin.front(), layout_->Locate(v, b));
          EXPECT_EQ(route.origin, layout_->Replicas(v, b));
          // The proxy hop is the static assignment (-1 when flat).
          EXPECT_EQ(route.proxy, proxies == 0 ? -1 : t % proxies);
          EXPECT_EQ(route.proxy, router.ProxyForTerminal(t));
          if (proxies > 0) {
            EXPECT_GE(route.proxy, 0);
            EXPECT_LT(route.proxy, proxies);
          }
        }
      }
    }
  }
}

TEST_P(LayoutConformanceTest, TierRouteIsAPureFunction) {
  TierRouter router(layout_.get(), 3);
  for (int t = 0; t < 5; ++t) {
    for (int v = 0; v < kVideos; v += 3) {
      TierRoute a = router.RouteForBlock(t, v, 11);
      TierRoute b = router.RouteForBlock(t, v, 11);
      EXPECT_EQ(a.proxy, b.proxy);
      EXPECT_EQ(a.origin, b.origin);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, LayoutConformanceTest,
    testing::Values(LayoutCase{"striped", MakeStriped},
                    LayoutCase{"nonstriped", MakeNonStriped},
                    LayoutCase{"replicated", MakeReplicated}),
    [](const testing::TestParamInfo<LayoutCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace spiffi::layout
