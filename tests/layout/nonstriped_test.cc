#include "layout/nonstriped.h"

#include <map>
#include <set>

#include "gtest/gtest.h"

namespace spiffi::layout {
namespace {

constexpr std::int64_t kRead = 512 * 1024;

std::vector<std::int64_t> SameSize(int videos, std::int64_t bytes) {
  return std::vector<std::int64_t>(videos, bytes);
}

TEST(NonStripedLayoutTest, ExactlyFourVideosPerDisk) {
  NonStripedLayout layout(4, 4, kRead, SameSize(64, 100 * kRead), 1);
  std::map<int, int> per_disk;
  for (int v = 0; v < 64; ++v) ++per_disk[layout.DiskOfVideo(v)];
  EXPECT_EQ(per_disk.size(), 16u);
  for (const auto& [disk, count] : per_disk) EXPECT_EQ(count, 4);
}

TEST(NonStripedLayoutTest, AllBlocksOfVideoOnOneDisk) {
  NonStripedLayout layout(2, 2, kRead, SameSize(8, 20 * kRead), 1);
  for (int v = 0; v < 8; ++v) {
    int disk = layout.Locate(v, 0).disk_global;
    for (std::int64_t b = 1; b < 20; ++b) {
      EXPECT_EQ(layout.Locate(v, b).disk_global, disk);
    }
  }
}

TEST(NonStripedLayoutTest, BlocksSequentialOnDisk) {
  NonStripedLayout layout(2, 2, kRead, SameSize(4, 20 * kRead), 1);
  for (std::int64_t b = 0; b + 1 < 20; ++b) {
    EXPECT_EQ(layout.Locate(0, b + 1).offset,
              layout.Locate(0, b).offset + kRead);
  }
}

TEST(NonStripedLayoutTest, NextBlockOnSameDiskIsSuccessor) {
  NonStripedLayout layout(2, 2, kRead, SameSize(4, 20 * kRead), 1);
  EXPECT_EQ(layout.NextBlockOnSameDisk(0, 5), 6);
  EXPECT_EQ(layout.NextBlockOnSameDisk(0, 19), -1);
}

TEST(NonStripedLayoutTest, NoOverlappingExtents) {
  NonStripedLayout layout(2, 2, kRead, SameSize(8, 13 * kRead + 5), 3);
  std::map<int, std::set<std::int64_t>> offsets;
  for (int v = 0; v < 8; ++v) {
    for (std::int64_t b = 0; b < 14; ++b) {  // 13*kRead+5 -> 14 blocks
      BlockLocation loc = layout.Locate(v, b);
      auto [it, inserted] = offsets[loc.disk_global].insert(loc.offset);
      EXPECT_TRUE(inserted);
    }
  }
}

TEST(NonStripedLayoutTest, SeedChangesAssignment) {
  auto sizes = SameSize(64, 100 * kRead);
  NonStripedLayout a(4, 4, kRead, sizes, 1);
  NonStripedLayout b(4, 4, kRead, sizes, 2);
  int differing = 0;
  for (int v = 0; v < 64; ++v) {
    if (a.DiskOfVideo(v) != b.DiskOfVideo(v)) ++differing;
  }
  EXPECT_GT(differing, 16);  // placement is genuinely random
}

TEST(NonStripedLayoutTest, SameSeedReproducesAssignment) {
  auto sizes = SameSize(64, 100 * kRead);
  NonStripedLayout a(4, 4, kRead, sizes, 9);
  NonStripedLayout b(4, 4, kRead, sizes, 9);
  for (int v = 0; v < 64; ++v) {
    EXPECT_EQ(a.DiskOfVideo(v), b.DiskOfVideo(v));
  }
}

TEST(NonStripedLayoutTest, NodeDerivedFromGlobalDisk) {
  NonStripedLayout layout(4, 4, kRead, SameSize(64, 10 * kRead), 1);
  for (int v = 0; v < 64; ++v) {
    BlockLocation loc = layout.Locate(v, 0);
    EXPECT_EQ(loc.node, loc.disk_global / 4);
    EXPECT_EQ(loc.disk_local, loc.disk_global % 4);
  }
}

}  // namespace
}  // namespace spiffi::layout
