// Parameterized property tests of the disk mechanism's timing model.

#include <deque>
#include <memory>

#include "gtest/gtest.h"
#include "hw/disk.h"
#include "sim/random.h"

namespace spiffi::hw {
namespace {

class SinkListener final : public DiskCompletionListener {
 public:
  void OnDiskComplete(DiskRequest*) override { ++completions; }
  int completions = 0;
};

class NullSched final : public DiskScheduler {
 public:
  void Push(DiskRequest* r) override { q_.push_back(r); }
  DiskRequest* Pop(std::int64_t, sim::SimTime) override {
    DiskRequest* r = q_.front();
    q_.pop_front();
    return r;
  }
  bool empty() const override { return q_.empty(); }
  std::size_t size() const override { return q_.size(); }
  std::string name() const override { return "null"; }

 private:
  std::deque<DiskRequest*> q_;
};

// Parameter: read size in KiB.
class DiskTimingProperty : public ::testing::TestWithParam<int> {
 protected:
  DiskTimingProperty()
      : listener_(),
        disk_(&env_, DiskParams(), std::make_unique<NullSched>(), 0,
              &listener_) {}

  std::int64_t bytes() const {
    return static_cast<std::int64_t>(GetParam()) * kKiB;
  }

  sim::Environment env_;
  SinkListener listener_;
  Disk disk_;
};

TEST_P(DiskTimingProperty, ServiceTimeAtLeastTransferTime) {
  const DiskParams& p = disk_.params();
  double transfer =
      static_cast<double>(bytes()) / p.transfer_rate_bytes_per_sec;
  sim::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    std::int64_t head = static_cast<std::int64_t>(rng.UniformInt(7000));
    std::int64_t offset = static_cast<std::int64_t>(
        rng.UniformInt(7000) * p.cylinder_bytes);
    double t = disk_.ServiceTimeFrom(head, rng.Uniform(0, 100), offset,
                                     bytes(), 0);
    EXPECT_GE(t, transfer);
  }
}

TEST_P(DiskTimingProperty, ServiceTimeBoundedByWorstCase) {
  const DiskParams& p = disk_.params();
  double transfer =
      static_cast<double>(bytes()) / p.transfer_rate_bytes_per_sec;
  double worst = p.SeekTimeSeconds(p.num_cylinders()) +
                 p.rotation_time_ms * 1e-3 + transfer +
                 // one settle per possibly-crossed cylinder
                 (static_cast<double>(bytes()) / p.cylinder_bytes + 1) *
                     p.settle_time_ms * 1e-3;
  sim::Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    std::int64_t head = static_cast<std::int64_t>(rng.UniformInt(7000));
    std::int64_t offset = static_cast<std::int64_t>(
        rng.UniformInt(7000) * p.cylinder_bytes);
    double t = disk_.ServiceTimeFrom(head, rng.Uniform(0, 100), offset,
                                     bytes(), 0);
    EXPECT_LE(t, worst + 1e-9);
  }
}

TEST_P(DiskTimingProperty, CacheCreditBoundedRegression) {
  // Skipping cached bytes shifts where the mechanical read begins, which
  // changes the rotational phase — so a small credit may cost up to one
  // extra revolution, but never more, and a full credit always wins.
  sim::Rng rng(3);
  const DiskParams& p = disk_.params();
  double rotation = p.rotation_time_ms * 1e-3;
  for (int i = 0; i < 100; ++i) {
    std::int64_t head = static_cast<std::int64_t>(rng.UniformInt(7000));
    std::int64_t offset = static_cast<std::int64_t>(
        rng.UniformInt(7000) * p.cylinder_bytes);
    std::int64_t cached = std::min<std::int64_t>(
        bytes(), static_cast<std::int64_t>(rng.UniformInt(128)) * kKiB);
    double without = disk_.ServiceTimeFrom(head, 0.25, offset, bytes(), 0);
    double with =
        disk_.ServiceTimeFrom(head, 0.25, offset, bytes(), cached);
    EXPECT_LE(with, without + rotation + 1e-9);
    double fully_cached =
        disk_.ServiceTimeFrom(head, 0.25, offset, bytes(), bytes());
    EXPECT_LE(fully_cached, without + 1e-9);
  }
}

TEST_P(DiskTimingProperty, LongerSeeksCostMore) {
  const DiskParams& p = disk_.params();
  std::int64_t offset = 3000 * p.cylinder_bytes;
  // Service time from heads progressively farther away, at the same
  // start time modulo rotation so the rotational term matches.
  double rotation = p.rotation_time_ms * 1e-3;
  double near = disk_.ServiceTimeFrom(2990, 0.0, offset, bytes(), 0);
  double far = disk_.ServiceTimeFrom(1000, 0.0, offset, bytes(), 0);
  // Rotational phase differs; allow one rotation of slack.
  EXPECT_GE(far + rotation, near);
  EXPECT_GE(p.SeekTimeSeconds(2000), p.SeekTimeSeconds(10));
}

INSTANTIATE_TEST_SUITE_P(ReadSizes, DiskTimingProperty,
                         ::testing::Values(64, 128, 256, 512, 1024, 2048),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "KiB";
                         });

// End-to-end mechanism property: total busy time equals the sum of
// per-request service times, and completions arrive in service order.
TEST(DiskMechanismProperty, BusyTimeAccountsEveryRequest) {
  sim::Environment env;
  SinkListener listener;
  Disk disk(&env, DiskParams(), std::make_unique<NullSched>(), 0,
            &listener);
  sim::Rng rng(7);
  std::vector<DiskRequest> requests(50);
  for (int i = 0; i < 50; ++i) {
    requests[i].video = static_cast<std::int64_t>(rng.UniformInt(4));
    requests[i].block = i;
    requests[i].disk_offset = static_cast<std::int64_t>(
        rng.UniformInt(5000)) * disk.params().cylinder_bytes;
    requests[i].bytes = 512 * kKiB;
    disk.Submit(&requests[i]);
  }
  env.Run();
  EXPECT_EQ(listener.completions, 50);
  EXPECT_EQ(disk.requests_served(), 50u);
  // The disk was busy the whole run (no think time between requests).
  EXPECT_NEAR(disk.AverageUtilization(env.now()), 1.0, 1e-9);
  EXPECT_NEAR(disk.service_tally().sum(), env.now(), 1e-9);
}

}  // namespace
}  // namespace spiffi::hw
