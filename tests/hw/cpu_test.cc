#include "hw/cpu.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::hw {
namespace {

TEST(CpuTest, ExecutionTimeMatchesMips) {
  sim::Environment env;
  Cpu cpu(&env, 40.0, "cpu0");
  double done_at = -1.0;
  env.Spawn([](sim::Environment* e, Cpu* c, double* t) -> sim::Process {
    co_await c->Execute(20000);  // start-an-I/O cost
    *t = e->now();
  }(&env, &cpu, &done_at));
  env.Run();
  // 20000 instructions at 40 MIPS = 0.5 ms.
  EXPECT_NEAR(done_at, 0.0005, 1e-12);
}

TEST(CpuTest, RequestsQueueFcfs) {
  sim::Environment env;
  Cpu cpu(&env, 40.0, "cpu0");
  std::vector<double> done;
  for (int i = 0; i < 3; ++i) {
    env.Spawn([](Cpu* c, sim::Environment* e,
                 std::vector<double>* log) -> sim::Process {
      co_await c->Execute(40'000'000);  // 1 second each
      log->push_back(e->now());
    }(&cpu, &env, &done));
  }
  env.Run();
  EXPECT_EQ(done, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CpuTest, UtilizationTracksLoad) {
  sim::Environment env;
  Cpu cpu(&env, 40.0, "cpu0");
  env.Spawn([](Cpu* c) -> sim::Process {
    co_await c->Execute(40'000'000);  // busy [0, 1)
  }(&cpu));
  env.RunUntil(4.0);
  EXPECT_NEAR(cpu.AverageUtilization(env.now()), 0.25, 1e-9);
}

TEST(CpuTest, DefaultTableOneCosts) {
  CpuCosts costs;
  EXPECT_EQ(costs.start_io_instructions, 20000);
  EXPECT_EQ(costs.send_message_instructions, 6800);
  EXPECT_EQ(costs.receive_message_instructions, 2200);
}

}  // namespace
}  // namespace spiffi::hw
