#include "hw/disk.h"

#include <deque>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "sim/environment.h"

namespace spiffi::hw {
namespace {

// Minimal FCFS policy for exercising the disk mechanism in isolation.
class FcfsPolicy final : public DiskScheduler {
 public:
  void Push(DiskRequest* request) override { queue_.push_back(request); }
  DiskRequest* Pop(std::int64_t, sim::SimTime) override {
    DiskRequest* r = queue_.front();
    queue_.pop_front();
    return r;
  }
  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }
  std::string name() const override { return "fcfs"; }

 private:
  std::deque<DiskRequest*> queue_;
};

class Collector final : public DiskCompletionListener {
 public:
  explicit Collector(sim::Environment* env) : env_(env) {}
  void OnDiskComplete(DiskRequest* request) override {
    completions.push_back({request, env_->now()});
  }
  std::vector<std::pair<DiskRequest*, double>> completions;

 private:
  sim::Environment* env_;
};

class DiskTest : public ::testing::Test {
 protected:
  void Build(DiskParams params = DiskParams()) {
    params_ = params;
    collector_ = std::make_unique<Collector>(&env_);
    disk_ = std::make_unique<Disk>(&env_, params_,
                                   std::make_unique<FcfsPolicy>(), 0,
                                   collector_.get());
  }

  DiskRequest MakeRequest(std::int64_t offset, std::int64_t bytes,
                          std::int64_t video = 0,
                          std::int64_t block = 0) {
    DiskRequest r;
    r.video = video;
    r.block = block;
    r.disk_offset = offset;
    r.bytes = bytes;
    return r;
  }

  // Keeps late-submitted requests alive for the whole test.
  DiskRequest* Own(DiskRequest request) {
    owned_.push_back(std::make_unique<DiskRequest>(request));
    return owned_.back().get();
  }

  sim::Environment env_;
  DiskParams params_;
  std::unique_ptr<Collector> collector_;
  std::unique_ptr<Disk> disk_;
  std::vector<std::unique_ptr<DiskRequest>> owned_;
};

TEST_F(DiskTest, ZeroSeekWhenSameCylinder) {
  Build();
  // Head starts at cylinder 0; a read at offset 0 needs no seek.
  double t = disk_->ServiceTimeFrom(0, 0.0, 0, 64 * kKiB, 0);
  double transfer = 64.0 * kKiB / params_.transfer_rate_bytes_per_sec;
  // Only rotation (at most one revolution) plus transfer.
  EXPECT_GE(t, transfer);
  EXPECT_LE(t, transfer + params_.rotation_time_ms * 1e-3 + 1e-12);
}

TEST_F(DiskTest, SeekTimeGrowsWithDistance) {
  Build();
  double near = params_.SeekTimeSeconds(10);
  double far = params_.SeekTimeSeconds(1000);
  EXPECT_GT(far, near);
  // sqrt model: quadrupling distance doubles the non-settle part.
  double base = params_.settle_time_ms * 1e-3;
  EXPECT_NEAR((far - base) / (near - base), 10.0, 1e-9);
}

TEST_F(DiskTest, FullStrokeSeekMatchesDataSheetOrder) {
  Build();
  // ~5600-cylinder stroke should be around 22 ms for the ST15150N.
  double t = params_.SeekTimeSeconds(5600);
  EXPECT_GT(t, 0.018);
  EXPECT_LT(t, 0.025);
}

TEST_F(DiskTest, CompletionDeliveredAfterServiceTime) {
  Build();
  DiskRequest r = MakeRequest(0, 512 * kKiB);
  disk_->Submit(&r);
  env_.Run();
  ASSERT_EQ(collector_->completions.size(), 1u);
  double done = collector_->completions[0].second;
  double transfer = 512.0 * kKiB / params_.transfer_rate_bytes_per_sec;
  EXPECT_GE(done, transfer);  // at least the media transfer time
  EXPECT_LT(done, transfer + 0.05);  // plus bounded positioning
}

TEST_F(DiskTest, RequestsServicedSequentially) {
  Build();
  DiskRequest a = MakeRequest(0, 512 * kKiB, 0, 0);
  DiskRequest b = MakeRequest(100 * params_.cylinder_bytes, 512 * kKiB, 1, 0);
  disk_->Submit(&a);
  disk_->Submit(&b);
  env_.Run();
  ASSERT_EQ(collector_->completions.size(), 2u);
  EXPECT_EQ(collector_->completions[0].first, &a);
  EXPECT_EQ(collector_->completions[1].first, &b);
  EXPECT_GT(collector_->completions[1].second,
            collector_->completions[0].second);
}

TEST_F(DiskTest, HeadPositionPersistsAcrossRequests) {
  Build();
  DiskRequest a = MakeRequest(500 * params_.cylinder_bytes, 128 * kKiB);
  disk_->Submit(&a);
  env_.Run();
  EXPECT_EQ(disk_->head_cylinder(), 500);
}

TEST_F(DiskTest, TransferSpanningCylindersAddsSettle) {
  Build();
  // 4 cylinders' worth of data starting at a cylinder boundary crosses
  // 3 boundaries.
  std::int64_t bytes = 4 * params_.cylinder_bytes;
  double t0 = disk_->ServiceTimeFrom(0, 0.0, 0, params_.cylinder_bytes, 0);
  double t1 = disk_->ServiceTimeFrom(0, 0.0, 0, bytes, 0);
  double extra_transfer = 3.0 * params_.cylinder_bytes /
                          params_.transfer_rate_bytes_per_sec;
  double extra_settle = 3.0 * params_.settle_time_ms * 1e-3;
  EXPECT_NEAR(t1 - t0, extra_transfer + extra_settle, 1e-9);
}

TEST_F(DiskTest, IdleDiskCreditsReadAheadForSequentialStream) {
  Build();
  DiskRequest a = MakeRequest(0, 512 * kKiB, /*video=*/7, /*block=*/0);
  disk_->Submit(&a);
  env_.Run();
  EXPECT_EQ(disk_->cache_hit_bytes(), 0u);

  // Long idle gap, then the sequential continuation: up to one cache
  // context (128 KB) should be credited.
  env_.Spawn([](sim::Environment* env, Disk* disk,
                DiskRequest* r) -> sim::Process {
    co_await env->Hold(1.0);
    disk->Submit(r);
  }(&env_, disk_.get(), Own(MakeRequest(512 * kKiB, 512 * kKiB, 7, 16))));
  env_.Run();
  EXPECT_EQ(disk_->cache_hit_bytes(),
            static_cast<std::uint64_t>(params_.cache_context_bytes));
}

TEST_F(DiskTest, BusyDiskGetsNoReadAhead) {
  Build();
  // Back-to-back sequential requests: no idle time, no cache credit.
  DiskRequest a = MakeRequest(0, 512 * kKiB, 7, 0);
  DiskRequest b = MakeRequest(512 * kKiB, 512 * kKiB, 7, 16);
  disk_->Submit(&a);
  disk_->Submit(&b);
  env_.Run();
  EXPECT_EQ(disk_->cache_hit_bytes(), 0u);
}

TEST_F(DiskTest, NonSequentialStreamGetsNoReadAhead) {
  Build();
  DiskRequest a = MakeRequest(0, 512 * kKiB, 7, 0);
  disk_->Submit(&a);
  env_.Run();
  env_.Spawn([](sim::Environment* env, Disk* disk,
                DiskRequest* r) -> sim::Process {
    co_await env->Hold(1.0);
    disk->Submit(r);
  }(&env_, disk_.get(),
        Own(MakeRequest(64 * kMiB, 512 * kKiB, 8, 3))));
  env_.Run();
  EXPECT_EQ(disk_->cache_hit_bytes(), 0u);
}

TEST_F(DiskTest, UtilizationReflectsBusyTime) {
  Build();
  DiskRequest a = MakeRequest(0, 512 * kKiB);
  disk_->Submit(&a);
  env_.Run();
  double service = collector_->completions[0].second;
  // Run further idle time, utilization halves.
  env_.RunUntil(2.0 * service);
  EXPECT_NEAR(disk_->AverageUtilization(env_.now()), 0.5, 1e-9);
}

TEST_F(DiskTest, RotationalDelayIsDeterministicAndBounded) {
  Build();
  double rotation = params_.rotation_time_ms * 1e-3;
  double t1 = disk_->ServiceTimeFrom(0, 0.123, 0, 64 * kKiB, 0);
  double t2 = disk_->ServiceTimeFrom(0, 0.123, 0, 64 * kKiB, 0);
  EXPECT_DOUBLE_EQ(t1, t2);  // pure function of inputs
  double transfer = 64.0 * kKiB / params_.transfer_rate_bytes_per_sec;
  EXPECT_LT(t1 - transfer, rotation + 1e-12);
}

TEST_F(DiskTest, CachedBytesSkipMechanicalPath) {
  Build();
  std::int64_t bytes = 512 * kKiB;
  double uncached = disk_->ServiceTimeFrom(100, 0.0, 200 * params_.cylinder_bytes,
                                           bytes, 0);
  double fully_cached = disk_->ServiceTimeFrom(
      100, 0.0, 200 * params_.cylinder_bytes, bytes, bytes);
  EXPECT_NEAR(fully_cached,
              static_cast<double>(bytes) / params_.transfer_rate_bytes_per_sec,
              1e-12);
  EXPECT_GT(uncached, fully_cached);
}

}  // namespace
}  // namespace spiffi::hw
