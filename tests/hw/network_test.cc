#include "hw/network.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::hw {
namespace {

class Receiver final : public sim::EventHandler {
 public:
  explicit Receiver(sim::Environment* env) : env_(env) {}
  void OnEvent(std::uint64_t token) override {
    deliveries.push_back({token, env_->now()});
  }
  std::vector<std::pair<std::uint64_t, double>> deliveries;

 private:
  sim::Environment* env_;
};

TEST(NetworkTest, WireDelayMatchesTableOne) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  // 5 us base + 0.04 us/byte: a 512 KiB block takes ~21 ms.
  EXPECT_NEAR(net.WireDelay(0), 5e-6, 1e-15);
  EXPECT_NEAR(net.WireDelay(524288), 5e-6 + 524288 * 0.04e-6, 1e-12);
}

TEST(NetworkTest, DeliversAfterWireDelay) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  Receiver receiver(&env);
  net.Send(1000, &receiver, 42);
  env.Run();
  ASSERT_EQ(receiver.deliveries.size(), 1u);
  EXPECT_EQ(receiver.deliveries[0].first, 42u);
  EXPECT_NEAR(receiver.deliveries[0].second, 5e-6 + 1000 * 0.04e-6, 1e-12);
}

TEST(NetworkTest, UnlimitedBandwidthMessagesOverlap) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  Receiver receiver(&env);
  // Two simultaneous sends arrive at the same time: no queueing.
  net.Send(1000, &receiver, 1);
  net.Send(1000, &receiver, 2);
  env.Run();
  ASSERT_EQ(receiver.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(receiver.deliveries[0].second,
                   receiver.deliveries[1].second);
}

TEST(NetworkTest, TracksTotals) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  Receiver receiver(&env);
  net.Send(100, &receiver, 1);
  net.Send(200, &receiver, 2);
  env.Run();
  EXPECT_EQ(net.total_bytes(), 300u);
  EXPECT_EQ(net.total_messages(), 2u);
}

TEST(NetworkTest, PeakBucketCapturesBurst) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  Receiver receiver(&env);
  env.Spawn([](sim::Environment* e, Network* n,
               Receiver* r) -> sim::Process {
    // 3 MB in second 0, 1 MB in second 5.
    n->Send(3'000'000, r, 1);
    co_await e->Hold(5.0);
    n->Send(1'000'000, r, 2);
  }(&env, &net, &receiver));
  env.Run();
  EXPECT_EQ(net.peak_bytes_per_bucket(), 3'000'000u);
}

TEST(NetworkTest, ResetStatsClearsCounters) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  Receiver receiver(&env);
  net.Send(100, &receiver, 1);
  env.Run();
  net.ResetStats();
  EXPECT_EQ(net.total_bytes(), 0u);
  EXPECT_EQ(net.peak_bytes_per_bucket(), 0u);
}

TEST(NetworkTest, AverageBandwidthOverWindow) {
  sim::Environment env;
  Network net(&env, NetworkParams());
  Receiver receiver(&env);
  env.Spawn([](sim::Environment* e, Network* n,
               Receiver* r) -> sim::Process {
    for (int i = 0; i < 10; ++i) {
      n->Send(1'000'000, r, i);
      co_await e->Hold(1.0);
    }
  }(&env, &net, &receiver));
  env.RunUntil(10.0);
  EXPECT_NEAR(net.AverageBandwidth(env.now()), 1'000'000.0, 1.0);
}

}  // namespace
}  // namespace spiffi::hw
