// Zero-allocation locks for the kernel hot paths.
//
// This binary replaces the global operator new/delete with counting
// versions, warms each hot path up to steady state, and then asserts
// that the operations the simulator performs per event — calendar
// Schedule/Cancel/FireNext, buffer-pool Touch and recycle, wait-list
// notify, and network message delivery — perform exactly zero heap
// allocations. Any future change that reintroduces a per-event
// allocation fails here rather than silently costing throughput.

#include <cstdint>
#include <cstdlib>
#include <new>

#include "gtest/gtest.h"
#include "server/buffer_pool.h"
#include "server/message.h"
#include "sim/calendar.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/wait_list.h"

namespace {

std::uint64_t g_allocations = 0;

}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                               (size + static_cast<std::size_t>(align) - 1) &
                                   ~(static_cast<std::size_t>(align) - 1));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace spiffi {
namespace {

class NullHandler final : public sim::EventHandler {
 public:
  void OnEvent(std::uint64_t) override {}
};

TEST(AllocationTest, CalendarScheduleFireSteadyStateAllocatesNothing) {
  sim::Calendar calendar;
  calendar.Reserve(1024);
  NullHandler handler;

  // Warmup: populate and drain once so every lazily-grown structure is
  // at its steady-state size.
  for (int i = 0; i < 512; ++i) {
    calendar.Schedule(static_cast<double>(i % 13), &handler, i);
  }
  while (!calendar.empty()) calendar.FireNext();

  std::uint64_t before = g_allocations;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 512; ++i) {
      calendar.Schedule(static_cast<double>(i % 13), &handler, i);
    }
    while (!calendar.empty()) calendar.FireNext();
  }
  std::uint64_t after = g_allocations;
  EXPECT_EQ(after - before, 0u);
}

TEST(AllocationTest, CalendarCancelAllocatesNothing) {
  sim::Calendar calendar;
  calendar.Reserve(256);
  NullHandler handler;
  std::uint64_t before = g_allocations;
  for (int round = 0; round < 100; ++round) {
    sim::EventId keep = calendar.Schedule(1.0, &handler, 1);
    sim::EventId drop = calendar.Schedule(2.0, &handler, 2);
    calendar.Cancel(drop);
    calendar.Cancel(drop);     // double cancel
    calendar.Cancel(0);        // sentinel
    calendar.Cancel(keep - 1); // stale generation
    while (!calendar.empty()) calendar.FireNext();
    calendar.Cancel(keep);     // already fired
  }
  std::uint64_t after = g_allocations;
  EXPECT_EQ(after - before, 0u);
}

TEST(AllocationTest, BufferPoolTouchAndRecycleAllocateNothing) {
  sim::Environment env;
  env.ReserveCalendar(256);
  server::BufferPool pool(&env, 256, server::ReplacementPolicy::kLovePrefetch);

  // Warmup: fill the pool completely.
  for (std::int64_t i = 0; i < 256; ++i) {
    auto* page = pool.Allocate(server::PageKey{0, i}, false);
    pool.Complete(page);
    pool.Touch(page, 1);
    pool.Unpin(page);
  }

  std::uint64_t before = g_allocations;
  // Touch: pure intrusive chain moves.
  for (int round = 0; round < 1000; ++round) {
    auto* page = pool.Lookup(server::PageKey{0, (round * 37) % 256});
    ASSERT_NE(page, nullptr);
    pool.Touch(page, round % 5);
  }
  std::uint64_t after = g_allocations;
  EXPECT_EQ(after - before, 0u);

  // Allocate/evict recycle. The LRU work itself is allocation-free; the
  // only remaining churn is the page table's hash node (one erase + one
  // emplace per recycled key), so the cycle is bounded at one allocation
  // per iteration — no hidden per-event growth beyond it.
  before = g_allocations;
  for (std::int64_t i = 256; i < 1256; ++i) {
    auto* page = pool.Allocate(server::PageKey{0, i}, i % 2 == 0);
    ASSERT_NE(page, nullptr);
    pool.Complete(page);
    pool.Touch(page, 2);
    pool.Unpin(page);
  }
  after = g_allocations;
  EXPECT_LE(after - before, 1000u);
}

sim::Process Waiter(sim::WaitList* list, int rounds) {
  for (int i = 0; i < rounds; ++i) (void)co_await list->Wait();
}

sim::Process Notifier(sim::Environment* env, sim::WaitList* list,
                      int rounds) {
  for (int i = 0; i < rounds; ++i) {
    co_await env->Hold(0.001);
    list->NotifyAll();
  }
}

TEST(AllocationTest, WaitListNotifyCycleSteadyStateAllocatesNothing) {
  sim::Environment env;
  env.ReserveCalendar(1024);
  sim::WaitList list(&env);
  constexpr int kRounds = 200;
  for (int w = 0; w < 8; ++w) env.Spawn(Waiter(&list, kRounds));
  env.Spawn(Notifier(&env, &list, kRounds + 1));

  // Run a few rounds so coroutine frames and resume slots exist.
  env.RunUntil(0.01);
  std::uint64_t before = g_allocations;
  env.RunUntil(0.15);
  std::uint64_t after = g_allocations;
  EXPECT_EQ(after - before, 0u);
  env.Run();  // drain
}

class CountingSink final : public server::MessageSink {
 public:
  void OnMessage(const server::Message&) override { ++received; }
  int received = 0;
};

TEST(AllocationTest, PooledMessageDeliverySteadyStateAllocatesNothing) {
  sim::Environment env;
  env.ReserveCalendar(1024);
  hw::Network network(&env, hw::NetworkParams{});
  CountingSink sink;
  server::Message message;
  message.kind = server::Message::Kind::kReadRequest;
  message.terminal = 7;

  // Warmup: the first messages grow the one-shot arena chunk.
  for (int i = 0; i < 64; ++i) {
    server::PostMessage(&env, &network, 64, &sink, message);
  }
  env.Run();
  int warm = sink.received;

  std::uint64_t before = g_allocations;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 32; ++i) {
      server::PostMessage(&env, &network, 64, &sink, message);
    }
    env.Run();
  }
  std::uint64_t after = g_allocations;
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(sink.received, warm + 50 * 32);
}

}  // namespace
}  // namespace spiffi
