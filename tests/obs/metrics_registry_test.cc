// MetricsRegistry unit tests: registration, duplicate-name rejection,
// reset-on-measurement-window semantics, and export shape. The last
// test drives a real Simulation to check that the registry mirrors
// ResetAllStats().

#include "obs/metrics_registry.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "sim/histogram.h"
#include "vod/simulation.h"

namespace spiffi::obs {
namespace {

TEST(MetricsRegistryTest, OwnedInstrumentsRoundTrip) {
  MetricsRegistry registry;
  auto* counter = registry.AddCounter("pool.hits");
  auto* gauge = registry.AddGauge("sim.measured_seconds");
  sim::Tally* tally = registry.AddTally("disk.service_ms");
  sim::Histogram* histogram = registry.AddHistogram("terminal.response_sec");

  *counter += 3;
  *gauge = 30.0;
  tally->Add(8.5);
  tally->Add(11.5);
  histogram->Add(0.25);

  EXPECT_EQ(registry.size(), 4u);
  EXPECT_TRUE(registry.Has("pool.hits"));
  EXPECT_FALSE(registry.Has("pool.misses"));
  EXPECT_DOUBLE_EQ(registry.Value("pool.hits"), 3.0);
  EXPECT_DOUBLE_EQ(registry.Value("sim.measured_seconds"), 30.0);
  EXPECT_DOUBLE_EQ(registry.GetTally("disk.service_ms").mean(), 10.0);
  EXPECT_EQ(registry.GetHistogram("terminal.response_sec").count(), 1u);
}

TEST(MetricsRegistryTest, ProbesReadLiveState) {
  MetricsRegistry registry;
  std::uint64_t backing = 0;
  registry.AddProbe("disk.reads",
                    [&backing] { return static_cast<double>(backing); });
  EXPECT_DOUBLE_EQ(registry.Value("disk.reads"), 0.0);
  backing = 42;  // probes poll at read time, no re-registration needed
  EXPECT_DOUBLE_EQ(registry.Value("disk.reads"), 42.0);

  sim::Histogram component;
  component.Add(1.0);
  registry.AddHistogramProbe("terminal.slack_sec",
                             [&component](sim::Histogram& accumulator) {
                               accumulator.Merge(component);
                             });
  EXPECT_EQ(registry.GetHistogram("terminal.slack_sec").count(), 1u);
  component.Add(2.0);
  EXPECT_EQ(registry.GetHistogram("terminal.slack_sec").count(), 2u);
}

TEST(MetricsRegistryDeathTest, DuplicateNameChecks) {
  MetricsRegistry registry;
  registry.AddCounter("pool.hits");
  EXPECT_DEATH(registry.AddCounter("pool.hits"), "CHECK failed");
  // The clash is on the name, not the kind.
  EXPECT_DEATH(registry.AddGauge("pool.hits"), "CHECK failed");
  EXPECT_DEATH(registry.AddProbe("pool.hits", [] { return 0.0; }),
               "CHECK failed");
}

TEST(MetricsRegistryDeathTest, ReadsCheckKindAndExistence) {
  MetricsRegistry registry;
  registry.AddTally("disk.service_ms");
  EXPECT_DEATH(registry.Value("no.such.metric"), "CHECK failed");
  EXPECT_DEATH(registry.Value("disk.service_ms"), "CHECK failed");
  EXPECT_DEATH(registry.GetTally("no.such.metric"), "CHECK failed");
}

// Reset() zeroes owned instruments (the measurement window opens) but
// leaves probe-backed state to the owning component, mirroring how
// Simulation::ResetAllStats() resets the components themselves.
TEST(MetricsRegistryTest, ResetZeroesOwnedInstrumentsOnly) {
  MetricsRegistry registry;
  auto* counter = registry.AddCounter("pool.hits");
  auto* gauge = registry.AddGauge("sim.measured_seconds");
  sim::Tally* tally = registry.AddTally("disk.service_ms");
  sim::Histogram* histogram = registry.AddHistogram("terminal.response_sec");
  double probe_backing = 7.0;
  registry.AddProbe("disk.reads", [&probe_backing] { return probe_backing; });

  *counter = 5;
  *gauge = 30.0;
  tally->Add(1.0);
  histogram->Add(0.5);

  registry.Reset();

  EXPECT_DOUBLE_EQ(registry.Value("pool.hits"), 0.0);
  EXPECT_DOUBLE_EQ(registry.Value("sim.measured_seconds"), 0.0);
  EXPECT_EQ(registry.GetTally("disk.service_ms").count(), 0u);
  EXPECT_EQ(registry.GetHistogram("terminal.response_sec").count(), 0u);
  // Probe untouched: its backing state belongs to the component.
  EXPECT_DOUBLE_EQ(registry.Value("disk.reads"), 7.0);
  // The returned pointers stay valid across Reset().
  *counter += 2;
  EXPECT_DOUBLE_EQ(registry.Value("pool.hits"), 2.0);
}

TEST(MetricsRegistryTest, ExportsJsonAndCsv) {
  MetricsRegistry registry;
  *registry.AddCounter("pool.hits") = 12;
  *registry.AddGauge("sim.measured_seconds") = 30.0;
  sim::Tally* tally = registry.AddTally("disk.service_ms");
  tally->Add(4.0);
  tally->Add(6.0);
  registry.AddProbe("disk.reads", [] { return 99.0; });

  std::ostringstream json;
  registry.WriteJson(json);
  const std::string j = json.str();
  EXPECT_NE(j.find("\"pool.hits\""), std::string::npos);
  EXPECT_NE(j.find("\"sim.measured_seconds\""), std::string::npos);
  EXPECT_NE(j.find("\"disk.service_ms\""), std::string::npos);
  EXPECT_NE(j.find("\"disk.reads\""), std::string::npos);

  std::ostringstream csv;
  registry.WriteCsv(csv);
  const std::string c = csv.str();
  EXPECT_NE(c.find("pool.hits,12"), std::string::npos);
  EXPECT_NE(c.find("disk.reads,99"), std::string::npos);
  // Tallies export per-facet scalar rows.
  EXPECT_NE(c.find("disk.service_ms"), std::string::npos);
}

// End to end: the simulation's registry matches the ResetAllStats()
// window. After warmup the probes show activity; opening the
// measurement window zeroes what they read.
TEST(MetricsRegistryTest, SimulationResetOpensMeasurementWindow) {
  vod::SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 20;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;

  vod::Simulation simulation(config);
  const MetricsRegistry& metrics = simulation.metrics();

  simulation.RunWarmup();
  EXPECT_GT(metrics.Value("terminal.blocks_received"), 0.0);
  EXPECT_GT(metrics.Value("disk.reads"), 0.0);
  EXPECT_GT(metrics.GetHistogram("terminal.response_sec").count(), 0u);

  simulation.ResetAllStats();
  EXPECT_DOUBLE_EQ(metrics.Value("terminal.blocks_received"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.Value("disk.reads"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.Value("pool.references"), 0.0);
  EXPECT_EQ(metrics.GetHistogram("terminal.response_sec").count(), 0u);

  simulation.RunMeasurement();
  EXPECT_GT(metrics.Value("terminal.blocks_received"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.Value("sim.measured_seconds"),
                   config.measure_seconds);
}

}  // namespace
}  // namespace spiffi::obs
