// Tracer unit tests: ring-buffer semantics, span recording, and a
// schema check of the Chrome trace_event JSON export (parsed with a
// minimal JSON reader below, no external dependency).

#include "obs/tracer.h"

#include <cctype>

#include "obs/trace.h"  // for the SPIFFI_TRACING default
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "vod/simulation.h"

namespace spiffi::obs {
namespace {

using Cat = TraceCategory;

// ---------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser, just enough to
// validate the exported trace. Numbers become double, everything else
// is structural.

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  bool Has(const std::string& key) const {
    return kind == kObject && object.count(key) > 0;
  }
  const JsonValue& At(const std::string& key) const {
    static const JsonValue kMissing;
    auto it = object.find(key);
    return it == object.end() ? kMissing : it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool Parse(JsonValue* out) {
    SkipSpace();
    if (!ParseValue(out)) return false;
    SkipSpace();
    return p_ == end_;  // no trailing garbage
  }

 private:
  void SkipSpace() {
    while (p_ != end_ &&
           std::isspace(static_cast<unsigned char>(*p_)) != 0) {
      ++p_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': out->kind = JsonValue::kString; return ParseString(&out->str);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return ConsumeWord("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return ConsumeWord("false");
      case 'n': out->kind = JsonValue::kNull; return ConsumeWord("null");
      default: return ParseNumber(out);
    }
  }
  bool ConsumeWord(const char* word) {
    for (; *word != '\0'; ++word, ++p_) {
      if (p_ == end_ || *p_ != *word) return false;
    }
    return true;
  }
  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'u':
            if (end_ - p_ < 5) return false;
            p_ += 4;  // keep structure; the code point itself is dropped
            out->push_back('?');
            break;
          default: return false;
        }
        ++p_;
      } else {
        out->push_back(*p_++);
      }
    }
    return Consume('"');
  }
  bool ParseNumber(JsonValue* out) {
    const char* start = p_;
    while (p_ != end_ &&
           (std::isdigit(static_cast<unsigned char>(*p_)) != 0 ||
            *p_ == '-' || *p_ == '+' || *p_ == '.' || *p_ == 'e' ||
            *p_ == 'E')) {
      ++p_;
    }
    if (p_ == start) return false;
    out->kind = JsonValue::kNumber;
    out->number = std::strtod(std::string(start, p_).c_str(), nullptr);
    return true;
  }
  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::kArray;
    SkipSpace();
    if (Consume(']')) return true;
    while (true) {
      JsonValue element;
      if (!ParseValue(&element)) return false;
      out->array.push_back(std::move(element));
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }
  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::kObject;
    SkipSpace();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipSpace();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object[std::move(key)] = std::move(value);
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  const char* p_;
  const char* end_;
};

// ---------------------------------------------------------------------
// Ring-buffer semantics.

TEST(TracerTest, RecordsInstantWithFields) {
  Tracer tracer(16);
  tracer.Instant(Cat::kTerminal, "glitch", 1, 7, 2.5,
                 {{"video", 3.0}, {"position_sec", 42.0}});
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent& e = tracer.event(0);
  EXPECT_STREQ(e.name, "glitch");
  EXPECT_EQ(e.category, Cat::kTerminal);
  EXPECT_EQ(e.phase, 'i');
  EXPECT_EQ(e.pid, 1);
  EXPECT_EQ(e.tid, 7);
  EXPECT_DOUBLE_EQ(e.ts, 2.5);
  EXPECT_GE(e.wall_us, 0.0);
  ASSERT_EQ(e.num_args, 2);
  EXPECT_STREQ(e.args[0].key, "video");
  EXPECT_DOUBLE_EQ(e.args[0].value, 3.0);
  EXPECT_STREQ(e.args[1].key, "position_sec");
  EXPECT_DOUBLE_EQ(e.args[1].value, 42.0);
}

TEST(TracerTest, RingKeepsMostRecentAndCountsDropped) {
  Tracer tracer(8);
  for (int i = 0; i < 20; ++i) {
    tracer.Instant(Cat::kKernel, "tick", 0, 0, static_cast<double>(i));
  }
  EXPECT_EQ(tracer.capacity(), 8u);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  // event(0) is the oldest retained event: the 13th recorded (ts = 12),
  // and retained timestamps run contiguously to the newest.
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    EXPECT_DOUBLE_EQ(tracer.event(i).ts, 12.0 + static_cast<double>(i));
  }
}

TEST(TracerTest, DisabledTracerRecordsNothing) {
  Tracer tracer(8);
  tracer.set_enabled(false);
  tracer.Instant(Cat::kDisk, "read_done", 10, 1, 1.0);
  tracer.Span(Cat::kDisk, "disk_read", 10, 1, 1.0, 2.0);
  tracer.Counter(Cat::kBuffer, "pool_pages", 10, 99, 1.0, 5.0);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  tracer.set_enabled(true);
  tracer.Instant(Cat::kDisk, "read_done", 10, 1, 3.0);
  EXPECT_EQ(tracer.size(), 1u);
}

// Spans on one serial track must nest; the recording order is inner
// first (RAII scopes close inside-out). Verify both are retained and
// that the inner interval is contained in the outer one.
TEST(TracerTest, NestedSpansOnOneTrack) {
  Tracer tracer(16);
  // outer [1, 6], inner [2, 3], second inner [4, 5].
  tracer.Span(Cat::kServer, "inner_a", 10, 0, 2.0, 3.0);
  tracer.Span(Cat::kServer, "inner_b", 10, 0, 4.0, 5.0);
  tracer.Span(Cat::kServer, "outer", 10, 0, 1.0, 6.0);
  ASSERT_EQ(tracer.size(), 3u);
  const TraceEvent& outer = tracer.event(2);
  EXPECT_STREQ(outer.name, "outer");
  for (std::size_t i = 0; i < 2; ++i) {
    const TraceEvent& inner = tracer.event(i);
    EXPECT_EQ(inner.phase, 'X');
    EXPECT_GE(inner.ts, outer.ts);
    EXPECT_LE(inner.end_ts, outer.end_ts);
  }
}

TEST(TracerTest, AsyncPairSharesFreshId) {
  Tracer tracer(16);
  std::uint64_t id = tracer.NextAsyncId();
  std::uint64_t other = tracer.NextAsyncId();
  EXPECT_NE(id, other);
  tracer.AsyncBegin(Cat::kNetwork, "wire", 2, id, 1.0);
  tracer.AsyncEnd(Cat::kNetwork, "wire", 2, id, 1.5);
  ASSERT_EQ(tracer.size(), 2u);
  EXPECT_EQ(tracer.event(0).phase, 'b');
  EXPECT_EQ(tracer.event(1).phase, 'e');
  EXPECT_EQ(tracer.event(0).id, tracer.event(1).id);
}

// ---------------------------------------------------------------------
// Chrome JSON schema. ValidateTrace checks every structural rule the
// trace_event format requires for the phases we emit.

void ValidateTrace(const JsonValue& root, std::set<std::string>* cats,
                   std::size_t* num_events) {
  ASSERT_EQ(root.kind, JsonValue::kObject);
  ASSERT_TRUE(root.Has("traceEvents"));
  ASSERT_TRUE(root.Has("otherData"));
  EXPECT_EQ(root.At("displayTimeUnit").str, "ms");
  EXPECT_EQ(root.At("otherData").At("clock").str, "simulated");
  EXPECT_EQ(root.At("otherData").At("dropped_events").kind,
            JsonValue::kNumber);

  const JsonValue& events = root.At("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::kArray);
  *num_events = 0;
  for (const JsonValue& e : events.array) {
    ASSERT_EQ(e.kind, JsonValue::kObject);
    ASSERT_EQ(e.At("ph").kind, JsonValue::kString);
    ASSERT_EQ(e.At("ph").str.size(), 1u);
    char ph = e.At("ph").str[0];
    ASSERT_EQ(e.At("name").kind, JsonValue::kString);
    EXPECT_FALSE(e.At("name").str.empty());
    ASSERT_EQ(e.At("pid").kind, JsonValue::kNumber);
    ASSERT_EQ(e.At("tid").kind, JsonValue::kNumber);
    ASSERT_EQ(e.At("args").kind, JsonValue::kObject);
    if (ph == 'M') {
      // Track-name metadata: no timestamp, args.name is the label.
      EXPECT_TRUE(e.At("name").str == "process_name" ||
                  e.At("name").str == "thread_name");
      EXPECT_EQ(e.At("args").At("name").kind, JsonValue::kString);
      continue;
    }
    ++*num_events;
    EXPECT_TRUE(ph == 'i' || ph == 'X' || ph == 'b' || ph == 'e' ||
                ph == 'C')
        << "unexpected phase " << ph;
    ASSERT_EQ(e.At("ts").kind, JsonValue::kNumber);
    EXPECT_GE(e.At("ts").number, 0.0);
    ASSERT_EQ(e.At("cat").kind, JsonValue::kString);
    static const std::set<std::string> kKnown = {
        "terminal", "server", "disk",  "network",
        "buffer",   "prefetch", "kernel"};
    EXPECT_TRUE(kKnown.count(e.At("cat").str) > 0)
        << "unknown category " << e.At("cat").str;
    cats->insert(e.At("cat").str);
    EXPECT_EQ(e.At("args").At("wall_us").kind, JsonValue::kNumber);
    if (ph == 'X') {
      ASSERT_EQ(e.At("dur").kind, JsonValue::kNumber);
      EXPECT_GE(e.At("dur").number, 0.0);
    }
    if (ph == 'b' || ph == 'e') {
      ASSERT_EQ(e.At("id").kind, JsonValue::kString);
      EXPECT_EQ(e.At("id").str.substr(0, 2), "0x");
    }
  }
}

TEST(TracerTest, ChromeJsonIsWellFormed) {
  Tracer tracer(64);
  tracer.SetProcessName(1, "terminals");
  tracer.SetThreadName(10, 1, "disk 0");
  tracer.Instant(Cat::kTerminal, "video_start", 1, 0, 0.5, {{"video", 2}});
  tracer.Span(Cat::kDisk, "disk_read", 10, 1, 1.0, 1.01);
  std::uint64_t id = tracer.NextAsyncId();
  tracer.AsyncBegin(Cat::kNetwork, "wire", 2, id, 1.0, {{"bytes", 512.0}});
  tracer.AsyncEnd(Cat::kNetwork, "wire", 2, id, 1.002);
  tracer.Counter(Cat::kBuffer, "pool_pages_in_use", 10, 99, 1.0, 17.0);
  // A name needing escapes must still yield valid JSON.
  tracer.Instant(Cat::kKernel, "weird \"name\"\\", 0, 0, 2.0);

  std::ostringstream out;
  tracer.WriteChromeJson(out);
  JsonValue root;
  ASSERT_TRUE(JsonParser(out.str()).Parse(&root)) << out.str();

  std::set<std::string> cats;
  std::size_t num_events = 0;
  ValidateTrace(root, &cats, &num_events);
  EXPECT_EQ(num_events, 6u);
  // The metadata events for the two named tracks came through.
  EXPECT_EQ(root.At("traceEvents").array.size(), 8u);
}

#if SPIFFI_TRACING
// Full-system check: a small traced simulation exports valid Chrome
// JSON whose events span the block-request lifecycle — at least the six
// categories terminal / server / disk / network / buffer / prefetch.
TEST(TracerTest, SimulationTraceCoversRequestLifecycle) {
  vod::SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 20;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;

  vod::Simulation simulation(config);
  Tracer& tracer = simulation.EnableTracing(64 * 1024);
  simulation.Run();
  ASSERT_GT(tracer.size(), 0u);

  std::ostringstream out;
  tracer.WriteChromeJson(out);
  JsonValue root;
  ASSERT_TRUE(JsonParser(out.str()).Parse(&root));

  std::set<std::string> cats;
  std::size_t num_events = 0;
  ValidateTrace(root, &cats, &num_events);
  EXPECT_GE(num_events, 1000u);
  EXPECT_GE(cats.size(), 6u) << "categories seen: " << cats.size();
  for (const char* expected :
       {"terminal", "server", "disk", "network", "buffer", "prefetch"}) {
    EXPECT_TRUE(cats.count(expected) > 0)
        << "missing category " << expected;
  }

  // Track naming made it into the metadata: the terminals process and
  // at least one per-node disk track.
  bool saw_terminals = false;
  bool saw_disk_track = false;
  for (const JsonValue& e : root.At("traceEvents").array) {
    if (e.At("ph").str != "M") continue;
    const std::string& label = e.At("args").At("name").str;
    if (label == "terminals") saw_terminals = true;
    if (label.rfind("disk ", 0) == 0) saw_disk_track = true;
  }
  EXPECT_TRUE(saw_terminals);
  EXPECT_TRUE(saw_disk_track);
}
#else
// With tracing compiled out, EnableTracing still works (the Tracer class
// itself always exists) but instrumentation sites record nothing.
TEST(TracerTest, CompiledOutInstrumentationRecordsNothing) {
  vod::SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 5;
  config.start_window_sec = 5.0;
  config.warmup_seconds = 5.0;
  config.measure_seconds = 10.0;
  vod::Simulation simulation(config);
  Tracer& tracer = simulation.EnableTracing(1024);
  simulation.Run();
  EXPECT_EQ(tracer.size(), 0u);
}
#endif

}  // namespace
}  // namespace spiffi::obs
