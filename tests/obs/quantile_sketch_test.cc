#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "gtest/gtest.h"
#include "sim/random.h"

namespace spiffi::obs {
namespace {

// Exact sorted-sample quantile with the sketch's (and sim::Histogram's)
// rank convention: rank = floor(q * (n - 1)).
double ExactQuantile(const std::vector<double>& sorted, double q) {
  auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1));
  return sorted[rank];
}

std::vector<double> LogUniformSamples(int n, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Magnitudes spread over 5 decades, like response times vs slack.
    values.push_back(std::exp(rng.Uniform(std::log(1e-4), std::log(10.0))));
  }
  return values;
}

TEST(QuantileSketchTest, EmptySketchReturnsZero) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.Quantile(0.0), 0.0);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  EXPECT_EQ(sketch.Quantile(1.0), 0.0);
  EXPECT_EQ(sketch.mean(), 0.0);
  EXPECT_EQ(sketch.min(), 0.0);
  EXPECT_EQ(sketch.max(), 0.0);
}

TEST(QuantileSketchTest, SingleSampleIsExactEverywhere) {
  QuantileSketch sketch;
  sketch.Add(0.0375);
  for (double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    // min == max == the sample, and answers are clamped to [min, max].
    EXPECT_DOUBLE_EQ(sketch.Quantile(q), 0.0375);
  }
}

TEST(QuantileSketchTest, ExtremesAreExact) {
  std::vector<double> values = LogUniformSamples(1000, 7);
  QuantileSketch sketch;
  for (double v : values) sketch.Add(v);
  std::sort(values.begin(), values.end());
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.0), values.front());
  EXPECT_DOUBLE_EQ(sketch.Quantile(1.0), values.back());
  EXPECT_DOUBLE_EQ(sketch.min(), values.front());
  EXPECT_DOUBLE_EQ(sketch.max(), values.back());
}

TEST(QuantileSketchTest, RelativeErrorWithinOnePercent) {
  std::vector<double> values = LogUniformSamples(20000, 42);
  QuantileSketch sketch;
  for (double v : values) sketch.Add(v);
  std::sort(values.begin(), values.end());
  for (double q = 0.01; q < 1.0; q += 0.01) {
    double exact = ExactQuantile(values, q);
    double estimate = sketch.Quantile(q);
    EXPECT_NEAR(estimate, exact,
                sketch.relative_accuracy() * std::abs(exact) + 1e-15)
        << "q=" << q;
  }
}

TEST(QuantileSketchTest, NegativeValuesHonourTheBound) {
  sim::Rng rng(99);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    double magnitude = std::exp(rng.Uniform(std::log(1e-3), std::log(5.0)));
    values.push_back(rng.Uniform(0.0, 1.0) < 0.5 ? -magnitude : magnitude);
  }
  QuantileSketch sketch;
  for (double v : values) sketch.Add(v);
  std::sort(values.begin(), values.end());
  for (double q = 0.05; q < 1.0; q += 0.05) {
    double exact = ExactQuantile(values, q);
    double estimate = sketch.Quantile(q);
    EXPECT_NEAR(estimate, exact,
                sketch.relative_accuracy() * std::abs(exact) + 1e-15)
        << "q=" << q;
  }
}

TEST(QuantileSketchTest, ZerosLandExactlyAtZero) {
  QuantileSketch sketch;
  for (int i = 0; i < 10; ++i) sketch.Add(0.0);
  for (int i = 0; i < 3; ++i) sketch.Add(1.0);
  for (int i = 0; i < 3; ++i) sketch.Add(-1.0);
  // Ranks 3..12 of the 16 samples are the zeros.
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
  // Sub-floor magnitudes count as zero too.
  sketch.Add(1e-12);
  EXPECT_EQ(sketch.count(), 17u);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 0.0);
}

TEST(QuantileSketchTest, MergeMatchesDirectFeed) {
  std::vector<double> values = LogUniformSamples(9000, 5);
  QuantileSketch direct;
  for (double v : values) direct.Add(v);

  QuantileSketch shards[3];
  for (std::size_t i = 0; i < values.size(); ++i) {
    shards[i % 3].Add(values[i]);
  }
  QuantileSketch merged;
  for (const QuantileSketch& shard : shards) merged.Merge(shard);

  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_EQ(merged.num_buckets(), direct.num_buckets());
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    // Merging bucket counts is exact: bit-identical answers, not just
    // within the error bound.
    EXPECT_EQ(merged.Quantile(q), direct.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, MergeIsAssociativeAndCommutative) {
  std::vector<double> values = LogUniformSamples(6000, 11);
  QuantileSketch a, b, c;
  for (std::size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(values[i]);
  }

  QuantileSketch left;   // (a + b) + c
  left.Merge(a);
  left.Merge(b);
  left.Merge(c);
  QuantileSketch right;  // c + (b + a)
  right.Merge(c);
  right.Merge(b);
  right.Merge(a);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_DOUBLE_EQ(left.sum(), right.sum());
  for (double q = 0.0; q <= 1.0; q += 0.005) {
    EXPECT_EQ(left.Quantile(q), right.Quantile(q)) << "q=" << q;
  }
}

TEST(QuantileSketchTest, DeterministicAcrossRebuilds) {
  std::vector<double> values = LogUniformSamples(4000, 23);
  QuantileSketch first, second;
  for (double v : values) first.Add(v);
  for (double v : values) second.Add(v);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(first.Quantile(q), second.Quantile(q));
  }
}

TEST(QuantileSketchTest, ResetClearsEverything) {
  QuantileSketch sketch;
  sketch.Add(1.0);
  sketch.Add(-2.0);
  sketch.Add(0.0);
  sketch.Reset();
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.num_buckets(), 0u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  sketch.Add(3.0);
  EXPECT_DOUBLE_EQ(sketch.Quantile(0.5), 3.0);
}

TEST(QuantileSketchTest, BucketCountStaysLogarithmic) {
  // 5 decades of magnitude at 1% accuracy needs on the order of
  // log(1e5)/log(gamma) ~ 600 buckets; verify the footprint stays there
  // even for many samples.
  std::vector<double> values = LogUniformSamples(50000, 3);
  QuantileSketch sketch;
  for (double v : values) sketch.Add(v);
  EXPECT_LT(sketch.num_buckets(), 800u);
}

}  // namespace
}  // namespace spiffi::obs
