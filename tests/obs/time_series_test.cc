#include "obs/time_series.h"

#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace spiffi::obs {
namespace {

TEST(TimeSeriesTest, ColumnsFollowRegistrationOrder) {
  TimeSeries series;
  double gauge = 0.0;
  double total = 0.0;
  series.AddGauge("queue", [&] { return gauge; });
  series.AddCounter("bytes", [&] { return total; });
  ASSERT_EQ(series.num_channels(), 2u);
  ASSERT_EQ(series.columns().size(), 3u);
  EXPECT_EQ(series.columns()[0], "queue");
  EXPECT_EQ(series.columns()[1], "bytes_total");
  EXPECT_EQ(series.columns()[2], "bytes_delta");
  EXPECT_EQ(series.ColumnIndex("bytes_delta"), 2u);
}

TEST(TimeSeriesTest, CounterEmitsTotalAndDelta) {
  TimeSeries series;
  double total = 0.0;
  series.AddCounter("bytes", [&] { return total; });
  total = 100.0;
  series.Sample(1.0);
  total = 250.0;
  series.Sample(2.0);
  total = 250.0;
  series.Sample(3.0);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_EQ(series.value(0, 0), 100.0);
  EXPECT_EQ(series.value(0, 1), 100.0);  // first delta re-bases on 0
  EXPECT_EQ(series.value(1, 0), 250.0);
  EXPECT_EQ(series.value(1, 1), 150.0);
  EXPECT_EQ(series.value(2, 1), 0.0);
}

TEST(TimeSeriesTest, CounterDeltaRebasesAfterReset) {
  TimeSeries series;
  double total = 0.0;
  series.AddCounter("glitches", [&] { return total; });
  total = 40.0;
  series.Sample(1.0);
  // The component's stats were reset (measurement window opened): the
  // cumulative total drops. The delta must re-base on the new total, not
  // wrap around to a huge unsigned value or go negative.
  total = 5.0;
  series.Sample(2.0);
  EXPECT_EQ(series.value(1, 0), 5.0);
  EXPECT_EQ(series.value(1, 1), 5.0);
  total = 12.0;
  series.Sample(3.0);
  EXPECT_EQ(series.value(2, 1), 7.0);
}

TEST(TimeSeriesTest, RetentionKeepsMostRecentRows) {
  TimeSeries series;
  double gauge = 0.0;
  series.AddGauge("g", [&] { return gauge; });
  series.set_retention(3);
  for (int i = 1; i <= 10; ++i) {
    gauge = i;
    series.Sample(i);
  }
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.total_samples(), 10u);
  EXPECT_EQ(series.time(0), 8.0);
  EXPECT_EQ(series.value(2, 0), 10.0);
}

TEST(TimeSeriesTest, CounterDeltasSurviveRingEviction) {
  TimeSeries series;
  double total = 0.0;
  series.AddCounter("c", [&] { return total; });
  series.set_retention(2);
  for (int i = 1; i <= 6; ++i) {
    total = 10.0 * i;
    series.Sample(i);
  }
  // Deltas are tracked per channel, not recomputed from retained rows,
  // so eviction never corrupts them.
  EXPECT_EQ(series.value(0, 0), 50.0);
  EXPECT_EQ(series.value(0, 1), 10.0);
  EXPECT_EQ(series.value(1, 0), 60.0);
  EXPECT_EQ(series.value(1, 1), 10.0);
}

TEST(TimeSeriesTest, JsonlStreamMatchesBatchExport) {
  std::ostringstream streamed;
  TimeSeries series;
  double gauge = 1.5;
  double total = 0.0;
  series.AddGauge("g", [&] { return gauge; });
  series.AddCounter("c", [&] { return total; });
  series.StreamTo(&streamed);
  for (int i = 1; i <= 4; ++i) {
    gauge = 1.5 * i;
    total = 100.0 * i;
    series.Sample(i);
  }
  std::ostringstream batch;
  series.WriteJsonl(batch);
  // No retention: the streamed lines and the batch export are the same
  // bytes (the single-format-path guarantee).
  EXPECT_EQ(streamed.str(), batch.str());
  EXPECT_NE(streamed.str().find("\"g\":"), std::string::npos);
  EXPECT_NE(streamed.str().find("\"c_total\":"), std::string::npos);
  EXPECT_NE(streamed.str().find("\"c_delta\":"), std::string::npos);
}

TEST(TimeSeriesTest, StreamingCoversEvictedRows) {
  std::ostringstream streamed;
  TimeSeries series;
  double gauge = 0.0;
  series.AddGauge("g", [&] { return gauge; });
  series.set_retention(1);
  series.StreamTo(&streamed);
  for (int i = 1; i <= 5; ++i) {
    gauge = i;
    series.Sample(i);
  }
  std::size_t lines = 0;
  for (char c : streamed.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5u);  // every snapshot, not just the retained one
  EXPECT_EQ(series.size(), 1u);
}

TEST(TimeSeriesTest, CsvHasHeaderAndAllColumns) {
  TimeSeries series;
  double gauge = 2.0;
  double total = 7.0;
  series.AddGauge("busy", [&] { return gauge; });
  series.AddCounter("reads", [&] { return total; });
  series.Sample(1.0);
  std::ostringstream out;
  series.WriteCsv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("time,busy,reads_total,reads_delta\n"),
            std::string::npos);
  EXPECT_NE(csv.find("1,2,7,7\n"), std::string::npos);
}

}  // namespace
}  // namespace spiffi::obs
