// Regression lock between the two SimMetrics collection paths.
//
// Collect() reads the metrics registry; CollectDirect() is the
// pre-registry path reading component stats straight. The registry
// probes replicate the direct computations loop-for-loop, so the two
// must agree bit-for-bit — any drift means a probe and its direct
// counterpart were edited apart. All comparisons below are exact
// (EXPECT_EQ on doubles), not EXPECT_NEAR.

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "vod/simulation.h"

namespace spiffi::vod {
namespace {

SimConfig SmallConfig() {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 20;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  return config;
}

void ExpectBitIdentical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.measured_seconds, b.measured_seconds);
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.terminals_with_glitches, b.terminals_with_glitches);
  EXPECT_EQ(a.avg_disk_utilization, b.avg_disk_utilization);
  EXPECT_EQ(a.min_disk_utilization, b.min_disk_utilization);
  EXPECT_EQ(a.max_disk_utilization, b.max_disk_utilization);
  EXPECT_EQ(a.avg_cpu_utilization, b.avg_cpu_utilization);
  EXPECT_EQ(a.peak_network_bytes_per_sec, b.peak_network_bytes_per_sec);
  EXPECT_EQ(a.avg_network_bytes_per_sec, b.avg_network_bytes_per_sec);
  EXPECT_EQ(a.buffer_references, b.buffer_references);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.buffer_attaches, b.buffer_attaches);
  EXPECT_EQ(a.buffer_misses, b.buffer_misses);
  EXPECT_EQ(a.shared_references, b.shared_references);
  EXPECT_EQ(a.wasted_prefetches, b.wasted_prefetches);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.avg_disk_service_ms, b.avg_disk_service_ms);
  EXPECT_EQ(a.avg_seek_cylinders, b.avg_seek_cylinders);
  EXPECT_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.frames_displayed, b.frames_displayed);
  EXPECT_EQ(a.videos_completed, b.videos_completed);
  EXPECT_EQ(a.events_simulated, b.events_simulated);
  EXPECT_EQ(a.share_groups, b.share_groups);
  EXPECT_EQ(a.share_followers, b.share_followers);
  EXPECT_EQ(a.share_patches, b.share_patches);
  EXPECT_EQ(a.share_patch_seconds, b.share_patch_seconds);
  EXPECT_EQ(a.share_handoffs, b.share_handoffs);
  EXPECT_EQ(a.prefix_hits, b.prefix_hits);
  EXPECT_EQ(a.prefix_pinned_pages, b.prefix_pinned_pages);
  EXPECT_EQ(a.proxy_references, b.proxy_references);
  EXPECT_EQ(a.proxy_hits, b.proxy_hits);
  EXPECT_EQ(a.proxy_attaches, b.proxy_attaches);
  EXPECT_EQ(a.proxy_forwards, b.proxy_forwards);
  EXPECT_EQ(a.proxy_bytes_from_cache, b.proxy_bytes_from_cache);
  EXPECT_EQ(a.avg_proxy_forward_ms, b.avg_proxy_forward_ms);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.repairs_completed, b.repairs_completed);
  EXPECT_EQ(a.mttr_sec, b.mttr_sec);
  EXPECT_EQ(a.fault_downtime_sec, b.fault_downtime_sec);
  EXPECT_EQ(a.rerouted_requests, b.rerouted_requests);
  EXPECT_EQ(a.degraded_waits, b.degraded_waits);
  EXPECT_EQ(a.prefetches_skipped_dead, b.prefetches_skipped_dead);
  EXPECT_EQ(a.requests_redirected, b.requests_redirected);
  EXPECT_EQ(a.blocks_rerouted, b.blocks_rerouted);
  EXPECT_EQ(a.admission_admits, b.admission_admits);
  EXPECT_EQ(a.admission_rejects, b.admission_rejects);
  EXPECT_EQ(a.admission_defers, b.admission_defers);
  EXPECT_EQ(a.failover_readmissions, b.failover_readmissions);
  EXPECT_EQ(a.request_retries, b.request_retries);
  EXPECT_EQ(a.retries_exhausted, b.retries_exhausted);
  EXPECT_EQ(a.session_failovers, b.session_failovers);
  EXPECT_EQ(a.duplicate_replies, b.duplicate_replies);
  EXPECT_EQ(a.proxy_forward_retries, b.proxy_forward_retries);
  EXPECT_EQ(a.proxy_stale_replies, b.proxy_stale_replies);
  EXPECT_EQ(a.rebuilds_completed, b.rebuilds_completed);
  EXPECT_EQ(a.rebuild_sec, b.rebuild_sec);
  EXPECT_EQ(a.rebuild_bytes, b.rebuild_bytes);
}

TEST(MetricsRegressionTest, RegistryCollectMatchesDirectLightLoad) {
  Simulation simulation(SmallConfig());
  simulation.Run();
  ExpectBitIdentical(simulation.Collect(), simulation.CollectDirect());
}

TEST(MetricsRegressionTest, RegistryCollectMatchesDirectOverload) {
  SimConfig config = SmallConfig();
  config.terminals = 120;  // oversubscribed: glitches, late blocks
  Simulation simulation(config);
  SimMetrics metrics = simulation.Run();
  EXPECT_GT(metrics.glitches, 0u);
  ExpectBitIdentical(simulation.Collect(), simulation.CollectDirect());
}

// The availability probes must track their direct computations too, on
// a run where they are actually non-zero.
TEST(MetricsRegressionTest, RegistryCollectMatchesDirectUnderFaults) {
  SimConfig config = SmallConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.fault_plan.script.push_back(
      {20.0, fault::FaultKind::kDiskFail, 0});
  config.fault_plan.script.push_back(
      {35.0, fault::FaultKind::kDiskRecover, 0});
  Simulation simulation(config);
  SimMetrics metrics = simulation.Run();
  EXPECT_EQ(metrics.faults_injected, 1u);
  ExpectBitIdentical(simulation.Collect(), simulation.CollectDirect());
}

// The proxy probes must track their direct computations on a run where
// the proxy tier is live and actually hitting.
TEST(MetricsRegressionTest, RegistryCollectMatchesDirectWithProxyTier) {
  SimConfig config = SmallConfig();
  config.proxy_nodes = 2;
  config.proxy_cache_pages = 64;
  Simulation simulation(config);
  SimMetrics metrics = simulation.Run();
  EXPECT_GT(metrics.proxy_references, 0u);
  ExpectBitIdentical(simulation.Collect(), simulation.CollectDirect());
}

// Feature-off regression: a proxy_nodes == 0 run must be bit-identical
// to the same config built before the proxy tier existed — same event
// count, same metrics — and every proxy metric must read zero.
TEST(MetricsRegressionTest, ZeroProxyRunIsBitIdenticalAndAllZero) {
  SimConfig config = SmallConfig();
  ASSERT_EQ(config.proxy_nodes, 0);
  Simulation a(config);
  SimMetrics ma = a.Run();
  Simulation b(config);
  SimMetrics mb = b.Run();
  ExpectBitIdentical(ma, mb);
  EXPECT_EQ(ma.proxy_references, 0u);
  EXPECT_EQ(ma.proxy_hits, 0u);
  EXPECT_EQ(ma.proxy_attaches, 0u);
  EXPECT_EQ(ma.proxy_forwards, 0u);
  EXPECT_EQ(ma.proxy_bytes_from_cache, 0u);
  EXPECT_EQ(ma.avg_proxy_forward_ms, 0.0);
  EXPECT_EQ(ma.proxy_offload_ratio(), 0.0);
  EXPECT_EQ(a.num_proxies(), 0);
  // The registry schema still carries the proxy keys, reading zero.
  EXPECT_EQ(a.metrics().Value("proxy.references"), 0.0);
  EXPECT_EQ(a.metrics().Value("proxy.pages_in_use"), 0.0);
}

// Feature-off regression: with admission, retry, and rebuild all off
// (the defaults), runs must stay bit-identical and every resilience
// metric must read zero.
TEST(MetricsRegressionTest, ResilienceOffRunIsBitIdenticalAndAllZero) {
  SimConfig config = SmallConfig();
  ASSERT_EQ(config.admission_policy, AdmissionPolicy::kOff);
  ASSERT_EQ(config.request_retry_budget, 0);
  ASSERT_EQ(config.rebuild_mbps, 0.0);
  Simulation a(config);
  SimMetrics ma = a.Run();
  Simulation b(config);
  SimMetrics mb = b.Run();
  ExpectBitIdentical(ma, mb);
  EXPECT_EQ(ma.admission_admits, 0u);
  EXPECT_EQ(ma.admission_rejects, 0u);
  EXPECT_EQ(ma.admission_defers, 0u);
  EXPECT_EQ(ma.failover_readmissions, 0u);
  EXPECT_EQ(ma.request_retries, 0u);
  EXPECT_EQ(ma.retries_exhausted, 0u);
  EXPECT_EQ(ma.session_failovers, 0u);
  EXPECT_EQ(ma.duplicate_replies, 0u);
  EXPECT_EQ(ma.proxy_forward_retries, 0u);
  EXPECT_EQ(ma.proxy_stale_replies, 0u);
  EXPECT_EQ(ma.rebuilds_completed, 0u);
  EXPECT_EQ(ma.rebuild_sec, 0.0);
  EXPECT_EQ(ma.rebuild_bytes, 0u);
  EXPECT_EQ(a.admission(), nullptr);
  // The registry schema still carries the resilience keys, reading zero.
  EXPECT_EQ(a.metrics().Value("admission.admits"), 0.0);
  EXPECT_EQ(a.metrics().Value("terminal.request_retries"), 0.0);
  EXPECT_EQ(a.metrics().Value("fault.rebuilds_completed"), 0.0);
}

// The resilience probes must track their direct computations on a run
// where admission, retry, and rebuild are all live and counting.
TEST(MetricsRegressionTest, RegistryCollectMatchesDirectWithResilience) {
  SimConfig config = SmallConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.admission_policy = AdmissionPolicy::kStaticReservation;
  config.request_retry_budget = 2;
  config.rebuild_mbps = 40.0;
  config.fault_plan.script.push_back(
      {20.0, fault::FaultKind::kDiskFail, 0});
  config.fault_plan.script.push_back(
      {25.0, fault::FaultKind::kDiskRecover, 0});
  Simulation simulation(config);
  SimMetrics metrics = simulation.Run();
  EXPECT_GT(metrics.admission_admits, 0u);
  ExpectBitIdentical(simulation.Collect(), simulation.CollectDirect());
}

// Collect() may be called repeatedly (harnesses sample mid-run); the
// probes are pure reads, so repetition cannot perturb the result.
TEST(MetricsRegressionTest, CollectIsIdempotent) {
  Simulation simulation(SmallConfig());
  simulation.Run();
  SimMetrics first = simulation.Collect();
  simulation.Collect();
  ExpectBitIdentical(first, simulation.Collect());
}

// The derived observability metrics — deadline slack and per-stage
// glitch attribution — exist only in the registry. An oversubscribed
// run must populate them and they must appear in the JSON export.
TEST(MetricsRegressionTest, OverloadExportsSlackAndAttribution) {
  SimConfig config = SmallConfig();
  config.terminals = 120;
  Simulation simulation(config);
  SimMetrics metrics = simulation.Run();
  ASSERT_GT(metrics.glitches, 0u);

  const obs::MetricsRegistry& registry = simulation.metrics();
  EXPECT_GT(registry.Value("terminal.late_blocks"), 0.0);
  EXPECT_GT(registry.GetHistogram("terminal.deadline_slack_sec").count(),
            0u);
  // Every late block is attributed to exactly one stage.
  double attributed =
      registry.Value("terminal.late_attrib.network") +
      registry.Value("terminal.late_attrib.server_cpu") +
      registry.Value("terminal.late_attrib.disk_queue") +
      registry.Value("terminal.late_attrib.disk_service") +
      registry.Value("terminal.late_attrib.fault");
  EXPECT_EQ(attributed, registry.Value("terminal.late_blocks"));
  // No FaultPlan: the fault stage never dominates, and the availability
  // metrics all read zero.
  EXPECT_EQ(registry.Value("terminal.late_attrib.fault"), 0.0);
  EXPECT_EQ(registry.Value("fault.faults_injected"), 0.0);
  EXPECT_EQ(registry.Value("fault.rerouted_requests"), 0.0);
  // Queue-wait vs service-time breakdown is populated.
  EXPECT_GT(registry.Value("disk.queue_wait_ms.avg"), 0.0);
  EXPECT_GT(registry.Value("disk.service_ms.avg"), 0.0);

  std::ostringstream out;
  registry.WriteJson(out);
  const std::string json = out.str();
  for (const char* key :
       {"terminal.deadline_slack_sec", "terminal.deadline_slack_ms.avg",
        "terminal.late_blocks", "terminal.late_attrib.network",
        "terminal.late_attrib.server_cpu",
        "terminal.late_attrib.disk_queue",
        "terminal.late_attrib.disk_service", "terminal.late_attrib.fault",
        "fault.faults_injected", "fault.rerouted_requests",
        "fault.mttr_sec", "disk.queue_wait_ms.avg"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""),
              std::string::npos)
        << "missing from JSON export: " << key;
  }
}

}  // namespace
}  // namespace spiffi::vod
