#include "vod/telemetry.h"

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "vod/runner.h"

namespace spiffi::vod {
namespace {

SimConfig SmallConfig(int terminals = 10) {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = terminals;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  return config;
}

// Telemetry attachment for runner-executed simulations: the stream and
// recorder live together so the worker's keepalive covers both.
struct Attachment {
  std::ostringstream jsonl;
  std::unique_ptr<TelemetryRecorder> telemetry;
};

std::pair<ParallelRunner::RunHandle, std::shared_ptr<Attachment>>
AttachTelemetry(ParallelRunner& runner, const SimConfig& config) {
  auto attachment = std::make_shared<Attachment>();
  ParallelRunner::RunHandle handle =
      runner.Submit(config, [attachment](Simulation& sim) {
        TelemetryOptions options;
        options.interval_sec = 1.0;
        options.jsonl = &attachment->jsonl;
        attachment->telemetry =
            std::make_unique<TelemetryRecorder>(&sim, options);
        return attachment;
      });
  return {std::move(handle), std::move(attachment)};
}

TEST(TelemetryTest, RegistersExpectedChannels) {
  Simulation sim(SmallConfig());
  TelemetryOptions options;
  TelemetryRecorder telemetry(&sim, options);
  const obs::TimeSeries& series = telemetry.series();
  for (const char* column :
       {"disks.busy", "disks.total", "disks.queue_avg", "cpus.busy",
        "pool.pages_in_use", "terminals.priming", "terminals.playing",
        "disks.reads_total", "disks.reads_delta", "pool.references_total",
        "pool.hits_total", "network.bytes_total", "network.bytes_delta",
        "terminals.glitches_total", "terminals.glitches_delta",
        "terminals.frames_total"}) {
    EXPECT_LT(series.ColumnIndex(column), series.columns().size())
        << column;
  }
}

TEST(TelemetryTest, FaultChannelsOnlyWithFaultPlan) {
  SimConfig healthy = SmallConfig();
  Simulation healthy_sim(healthy);
  TelemetryRecorder healthy_telemetry(&healthy_sim, TelemetryOptions());
  for (const std::string& column : healthy_telemetry.series().columns()) {
    EXPECT_EQ(column.find("fault."), std::string::npos) << column;
  }

  SimConfig faulty = SmallConfig();
  fault::FaultAction fail;
  fail.time = 20.0;
  fail.kind = fault::FaultKind::kDiskFail;
  fail.target = 0;
  fault::FaultAction repair;
  repair.time = 25.0;
  repair.kind = fault::FaultKind::kDiskRecover;
  repair.target = 0;
  faulty.placement = VideoPlacement::kReplicatedStriped;
  faulty.fault_plan.script = {fail, repair};
  Simulation faulty_sim(faulty);
  TelemetryRecorder faulty_telemetry(&faulty_sim, TelemetryOptions());
  const obs::TimeSeries& series = faulty_telemetry.series();
  EXPECT_LT(series.ColumnIndex("fault.disks_down"),
            series.columns().size());
  EXPECT_LT(series.ColumnIndex("fault.faults_injected_total"),
            series.columns().size());
}

TEST(TelemetryTest, SamplesAtFixedSimulatedInterval) {
  Simulation sim(SmallConfig());
  TelemetryOptions options;
  options.interval_sec = 1.0;
  TelemetryRecorder telemetry(&sim, options);
  sim.Run();
  // 45 simulated seconds at 1 s intervals.
  EXPECT_GE(telemetry.series().size(), 44u);
  EXPECT_LE(telemetry.series().size(), 46u);
}

TEST(TelemetryTest, RetentionBoundsMemoryWithoutLosingStream) {
  std::ostringstream jsonl;
  Simulation sim(SmallConfig());
  TelemetryOptions options;
  options.interval_sec = 1.0;
  options.retention = 5;
  options.jsonl = &jsonl;
  TelemetryRecorder telemetry(&sim, options);
  sim.Run();
  EXPECT_EQ(telemetry.series().size(), 5u);
  EXPECT_GE(telemetry.series().total_samples(), 44u);
  std::size_t lines = 0;
  for (char c : jsonl.str()) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, telemetry.series().total_samples());
}

TEST(TelemetryTest, JsonlBitIdenticalAcrossJobCounts) {
  const SimConfig config = SmallConfig();

  // Serial reference: recorder attached directly.
  std::ostringstream reference;
  {
    Simulation sim(config);
    TelemetryOptions options;
    options.interval_sec = 1.0;
    options.jsonl = &reference;
    TelemetryRecorder telemetry(&sim, options);
    sim.Run();
  }
  ASSERT_FALSE(reference.str().empty());

  // The same run executed by the parallel runner at several job counts,
  // alongside sibling runs competing for workers, must stream the same
  // bytes: sampling happens in simulated time, so thread scheduling
  // cannot perturb it.
  for (int jobs : {1, 2, 4}) {
    ParallelRunner runner(jobs);
    std::vector<std::pair<ParallelRunner::RunHandle,
                          std::shared_ptr<Attachment>>> runs;
    for (int i = 0; i < 3; ++i) {
      runs.push_back(AttachTelemetry(runner, config));
    }
    for (const auto& [handle, attachment] : runs) {
      ASSERT_TRUE(runner.Wait(handle, nullptr));
      EXPECT_EQ(attachment->jsonl.str(), reference.str())
          << "jobs=" << jobs;
    }
  }
}

TEST(TelemetryTest, RunnerExposesLiveRunProgress) {
  ParallelRunner runner(2);
  SimConfig config = SmallConfig();
  ParallelRunner::RunHandle run = runner.Submit(config);
  SimMetrics metrics;
  ASSERT_TRUE(runner.Wait(run, &metrics));

  ParallelRunner::RunSnapshot snapshot = runner.SnapshotRun(run);
  EXPECT_EQ(snapshot.state, ParallelRunner::Run::State::kDone);
  // The final slice boundary reports the exact end of the run.
  EXPECT_DOUBLE_EQ(snapshot.progress.sim_now_seconds,
                   config.warmup_seconds + config.measure_seconds);
  EXPECT_DOUBLE_EQ(snapshot.progress.sim_end_seconds,
                   config.warmup_seconds + config.measure_seconds);
  EXPECT_TRUE(snapshot.progress.in_measurement);
  // The run's total event count includes warmup, so it dominates the
  // measurement-window count SimMetrics reports.
  EXPECT_GE(snapshot.progress.events_fired, metrics.events_simulated);
  EXPECT_GT(metrics.events_simulated, 0u);

  ParallelRunner::FleetProgress fleet = runner.SnapshotProgress();
  EXPECT_EQ(fleet.submitted, 1u);
  EXPECT_EQ(fleet.completed, 1u);
  EXPECT_EQ(fleet.running, 0u);
  EXPECT_EQ(fleet.pending, 0u);
  EXPECT_DOUBLE_EQ(fleet.target_sim_seconds,
                   config.warmup_seconds + config.measure_seconds);
  EXPECT_DOUBLE_EQ(fleet.done_sim_seconds, fleet.target_sim_seconds);
  EXPECT_GE(fleet.events_fired, metrics.events_simulated);
}

TEST(TelemetryTest, FleetSnapshotAggregatesAllRunners) {
  SimConfig config = SmallConfig(5);
  ParallelRunner first(1);
  ParallelRunner second(1);
  first.RunAll({config, config});
  second.RunAll({config});
  ParallelRunner::FleetProgress fleet =
      ParallelRunner::SnapshotAllRunners();
  EXPECT_GE(fleet.submitted, 3u);
  EXPECT_GE(fleet.completed, 3u);
  EXPECT_DOUBLE_EQ(fleet.done_sim_seconds, fleet.target_sim_seconds);
}

TEST(TelemetryTest, CancelledRunLeavesTargetConsistent) {
  ParallelRunner runner(1);
  SimConfig config = SmallConfig();
  // First run occupies the single worker; the second is cancelled while
  // pending and must drop back out of the fleet's sim-time target.
  ParallelRunner::RunHandle busy = runner.Submit(config);
  ParallelRunner::RunHandle doomed = runner.Submit(config);
  runner.Cancel(doomed);
  EXPECT_FALSE(runner.Wait(doomed, nullptr));
  ASSERT_TRUE(runner.Wait(busy, nullptr));
  ParallelRunner::FleetProgress fleet = runner.SnapshotProgress();
  EXPECT_EQ(fleet.cancelled, 1u);
  EXPECT_DOUBLE_EQ(fleet.target_sim_seconds,
                   config.warmup_seconds + config.measure_seconds);
  EXPECT_DOUBLE_EQ(fleet.done_sim_seconds, fleet.target_sim_seconds);
}

}  // namespace
}  // namespace spiffi::vod
