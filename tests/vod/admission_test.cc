// Unit tests for the session admission controller (ISSUE 9): envelope
// arithmetic, defer/reject streaks, failover grandfathering, node
// up/down capacity tracking, and rebuild-load discounting. Integration
// with the Simulation (gate placement, bit-identity when off) is
// covered by metrics_regression_test.cc and the client retry tests.

#include "vod/admission.h"

#include <string>

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

using Decision = AdmissionController::Decision;

// Two nodes, each carrying 4 streams at full headroom: envelope of 8.
AdmissionParams SmallParams() {
  AdmissionParams params;
  params.policy = AdmissionPolicy::kStaticReservation;
  params.num_nodes = 2;
  params.node_bytes_per_sec = 4.0e6;
  params.stream_bytes_per_sec = 1.0e6;
  params.headroom_fraction = 1.0;
  params.max_defers_before_reject = 2;
  return params;
}

TEST(AdmissionTest, PolicyNamesAreDistinct) {
  const std::string off = AdmissionPolicyName(AdmissionPolicy::kOff);
  const std::string stat =
      AdmissionPolicyName(AdmissionPolicy::kStaticReservation);
  const std::string measured =
      AdmissionPolicyName(AdmissionPolicy::kMeasuredHeadroom);
  EXPECT_NE(off, stat);
  EXPECT_NE(off, measured);
  EXPECT_NE(stat, measured);
}

TEST(AdmissionTest, AdmitsUntilEnvelopeFullThenDefers) {
  AdmissionController controller(SmallParams());
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 8.0e6);
  for (int s = 0; s < 8; ++s) {
    EXPECT_EQ(controller.TryAdmit(s), Decision::kAdmit) << "session " << s;
  }
  EXPECT_EQ(controller.active_sessions(), 8);
  EXPECT_EQ(controller.reserved_bytes_per_sec(), 8.0e6);
  EXPECT_EQ(controller.TryAdmit(8), Decision::kDefer);
  EXPECT_EQ(controller.stats().admits, 8);
  EXPECT_EQ(controller.stats().defers, 1);
}

TEST(AdmissionTest, HeadroomFractionShrinksTheEnvelope) {
  AdmissionParams params = SmallParams();
  params.headroom_fraction = 0.5;  // envelope of 4 streams
  AdmissionController controller(params);
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(controller.TryAdmit(s), Decision::kAdmit);
  }
  EXPECT_EQ(controller.TryAdmit(4), Decision::kDefer);
}

TEST(AdmissionTest, TryAdmitIsIdempotentForAdmittedSessions) {
  AdmissionController controller(SmallParams());
  EXPECT_EQ(controller.TryAdmit(7), Decision::kAdmit);
  EXPECT_EQ(controller.TryAdmit(7), Decision::kAdmit);
  EXPECT_EQ(controller.active_sessions(), 1);
}

TEST(AdmissionTest, ConsecutiveDefersEscalateToReject) {
  AdmissionController controller(SmallParams());
  for (int s = 0; s < 8; ++s) controller.TryAdmit(s);
  // max_defers_before_reject = 2: two deferrals, then rejection.
  EXPECT_EQ(controller.TryAdmit(99), Decision::kDefer);
  EXPECT_EQ(controller.TryAdmit(99), Decision::kDefer);
  EXPECT_EQ(controller.TryAdmit(99), Decision::kReject);
  EXPECT_EQ(controller.stats().defers, 2);
  EXPECT_EQ(controller.stats().rejects, 1);
  // The streak resets after the rejection: the next attempt defers anew.
  EXPECT_EQ(controller.TryAdmit(99), Decision::kDefer);
}

TEST(AdmissionTest, AdmissionResetsTheDeferStreak) {
  AdmissionController controller(SmallParams());
  for (int s = 0; s < 8; ++s) controller.TryAdmit(s);
  EXPECT_EQ(controller.TryAdmit(99), Decision::kDefer);
  controller.Release(0);
  EXPECT_EQ(controller.TryAdmit(99), Decision::kAdmit);
  // Full again; a fresh streak starts from zero deferrals.
  EXPECT_EQ(controller.TryAdmit(100), Decision::kDefer);
  EXPECT_EQ(controller.TryAdmit(100), Decision::kDefer);
  EXPECT_EQ(controller.TryAdmit(100), Decision::kReject);
}

TEST(AdmissionTest, ReleaseFreesCapacity) {
  AdmissionController controller(SmallParams());
  for (int s = 0; s < 8; ++s) controller.TryAdmit(s);
  EXPECT_EQ(controller.TryAdmit(8), Decision::kDefer);
  controller.Release(3);
  EXPECT_EQ(controller.stats().releases, 1);
  EXPECT_EQ(controller.active_sessions(), 7);
  EXPECT_EQ(controller.TryAdmit(8), Decision::kAdmit);
  // Releasing a session that holds no reservation is a no-op.
  controller.Release(42);
  EXPECT_EQ(controller.stats().releases, 1);
}

TEST(AdmissionTest, NodeDownShrinksEnvelopeForFutureAdmissions) {
  AdmissionController controller(SmallParams());
  for (int s = 0; s < 6; ++s) controller.TryAdmit(s);
  controller.OnNodeDown(1);
  // Envelope is now 4 streams but 6 are admitted: over-committed, so
  // new sessions defer while the existing six are grandfathered.
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 4.0e6);
  EXPECT_EQ(controller.active_sessions(), 6);
  EXPECT_EQ(controller.TryAdmit(6), Decision::kDefer);
  controller.OnNodeUp(1);
  EXPECT_EQ(controller.TryAdmit(6), Decision::kAdmit);
}

TEST(AdmissionTest, ReadmitGrandfathersAdmittedSessions) {
  AdmissionController controller(SmallParams());
  for (int s = 0; s < 8; ++s) controller.TryAdmit(s);
  controller.OnNodeDown(0);
  // Even with the envelope halved and full, the failed-over session
  // keeps its slot.
  EXPECT_EQ(controller.Readmit(5), Decision::kAdmit);
  EXPECT_EQ(controller.stats().failover_readmissions, 1);
  EXPECT_EQ(controller.active_sessions(), 8);
  // A session with no reservation goes through the normal (full) gate.
  EXPECT_EQ(controller.Readmit(99), Decision::kDefer);
}

TEST(AdmissionTest, RebuildLoadDiscountsCapacity) {
  AdmissionController controller(SmallParams());
  controller.SetRebuildLoad(0, 2.0e6);
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 6.0e6);
  for (int s = 0; s < 6; ++s) {
    EXPECT_EQ(controller.TryAdmit(s), Decision::kAdmit);
  }
  EXPECT_EQ(controller.TryAdmit(6), Decision::kDefer);
  // Updating the same key's load replaces, not accumulates.
  controller.SetRebuildLoad(0, 1.0e6);
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 7.0e6);
  controller.SetRebuildLoad(0, 0.0);
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 8.0e6);
  EXPECT_EQ(controller.TryAdmit(6), Decision::kAdmit);
}

TEST(AdmissionTest, ConcurrentRebuildKeysAccumulateAndClearIndependently) {
  // A recovered node rebuilds every one of its disks at once; each
  // rebuild reports under its own disk key. The discounts must add up,
  // and the first rebuild to finish must clear only its own share —
  // not zero the whole node's discount while siblings still run.
  AdmissionController controller(SmallParams());
  controller.SetRebuildLoad(/*key=*/0, 1.0e6);
  controller.SetRebuildLoad(/*key=*/1, 1.0e6);
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 6.0e6);
  controller.SetRebuildLoad(0, 0.0);  // disk 0 done, disk 1 still going
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 7.0e6);
  controller.SetRebuildLoad(1, 0.0);
  EXPECT_EQ(controller.capacity_bytes_per_sec(), 8.0e6);
}

TEST(AdmissionTest, MeasuredHeadroomConsultsTheProbe) {
  AdmissionParams params = SmallParams();
  params.policy = AdmissionPolicy::kMeasuredHeadroom;
  params.headroom_fraction = 0.8;
  AdmissionController controller(params);
  double utilization = 0.2;
  controller.set_utilization_probe([&utilization] { return utilization; });
  EXPECT_EQ(controller.TryAdmit(0), Decision::kAdmit);
  // Static books say there is room, but the measured load is at the
  // cap: defer.
  utilization = 0.9;
  EXPECT_EQ(controller.TryAdmit(1), Decision::kDefer);
  utilization = 0.3;
  EXPECT_EQ(controller.TryAdmit(1), Decision::kAdmit);
}

TEST(AdmissionTest, ResetStatsKeepsReservations) {
  AdmissionController controller(SmallParams());
  for (int s = 0; s < 8; ++s) controller.TryAdmit(s);
  controller.TryAdmit(8);  // defer
  controller.ResetStats();
  EXPECT_EQ(controller.stats().admits, 0);
  EXPECT_EQ(controller.stats().defers, 0);
  // The reservation book survives the stats window reset.
  EXPECT_EQ(controller.active_sessions(), 8);
  EXPECT_EQ(controller.TryAdmit(9), Decision::kDefer);
}

}  // namespace
}  // namespace spiffi::vod
