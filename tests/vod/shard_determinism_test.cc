// Determinism suite for the sharded simulation kernel: the shard count
// may change only wall-clock time, never results. Same config + seed
// must yield bit-identical SimMetrics and byte-identical telemetry at
// any shard count, alone or stacked under ParallelRunner at any job
// count.

#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "vod/report.h"
#include "vod/runner.h"
#include "vod/simulation.h"
#include "vod/telemetry.h"

namespace spiffi::vod {
namespace {

// Small multi-node configuration so every interesting shard count
// (up to 8) gets at least one server node, while a run still takes a
// fraction of a second.
SimConfig TinyShardedConfig() {
  SimConfig config;
  config.num_nodes = 8;
  config.disks_per_node = 1;
  config.video_seconds = 120.0;
  config.videos_per_disk = 4;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 20.0;
  config.terminals = 40;
  // The base wire delay is the conservative lookahead; the default 5us
  // forces fine-grained clock creep that is pure overhead on the small
  // test machines. A fatter (but still frame-period-dwarfed) delay keeps
  // these tests fast without touching what they prove — every run in a
  // comparison uses the same config.
  config.network.wire_delay_base_sec = 2e-4;
  return config;
}

// Every field compared with exact equality, doubles included — the
// whole point is that the shard count must not perturb a single bit.
void ExpectBitIdentical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.measured_seconds, b.measured_seconds);
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.terminals_with_glitches, b.terminals_with_glitches);
  EXPECT_EQ(a.avg_disk_utilization, b.avg_disk_utilization);
  EXPECT_EQ(a.min_disk_utilization, b.min_disk_utilization);
  EXPECT_EQ(a.max_disk_utilization, b.max_disk_utilization);
  EXPECT_EQ(a.avg_cpu_utilization, b.avg_cpu_utilization);
  EXPECT_EQ(a.peak_network_bytes_per_sec, b.peak_network_bytes_per_sec);
  EXPECT_EQ(a.avg_network_bytes_per_sec, b.avg_network_bytes_per_sec);
  EXPECT_EQ(a.buffer_references, b.buffer_references);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.buffer_attaches, b.buffer_attaches);
  EXPECT_EQ(a.buffer_misses, b.buffer_misses);
  EXPECT_EQ(a.shared_references, b.shared_references);
  EXPECT_EQ(a.wasted_prefetches, b.wasted_prefetches);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.avg_disk_service_ms, b.avg_disk_service_ms);
  EXPECT_EQ(a.avg_seek_cylinders, b.avg_seek_cylinders);
  EXPECT_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.frames_displayed, b.frames_displayed);
  EXPECT_EQ(a.videos_completed, b.videos_completed);
  EXPECT_EQ(a.events_simulated, b.events_simulated);
  EXPECT_EQ(a.proxy_references, b.proxy_references);
  EXPECT_EQ(a.proxy_hits, b.proxy_hits);
  EXPECT_EQ(a.proxy_attaches, b.proxy_attaches);
  EXPECT_EQ(a.proxy_forwards, b.proxy_forwards);
  EXPECT_EQ(a.proxy_bytes_from_cache, b.proxy_bytes_from_cache);
  EXPECT_EQ(a.avg_proxy_forward_ms, b.avg_proxy_forward_ms);
}

TEST(ShardDeterminismTest, MetricsBitIdenticalAcrossShardCounts) {
  SimConfig config = TinyShardedConfig();
  config.seed = 11;
  SimMetrics reference = RunSimulation(config);
  EXPECT_GT(reference.frames_displayed, 0u);
  for (int shards : {2, 4, 8}) {
    SimConfig sharded = config;
    sharded.shards = shards;
    ASSERT_TRUE(sharded.Validate().empty());
    SimMetrics metrics = RunSimulation(sharded);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ExpectBitIdentical(reference, metrics);
  }
}

TEST(ShardDeterminismTest, ShardsTimesJobsGridAllBitIdentical) {
  // Sharded runs stacked on the parallel runner: worker threads each
  // drive a shard group of their own. Every (shards, jobs) cell must
  // reproduce the serial unsharded metrics exactly.
  std::vector<SimConfig> batch;
  for (int i = 0; i < 3; ++i) {
    SimConfig config = TinyShardedConfig();
    config.seed = 500 + static_cast<std::uint64_t>(i);
    config.terminals = 30 + 10 * i;
    batch.push_back(config);
  }
  ParallelRunner serial(1);
  std::vector<SimMetrics> reference = serial.RunAll(batch);

  for (int shards : {2, 4, 8}) {
    std::vector<SimConfig> sharded = batch;
    for (SimConfig& config : sharded) config.shards = shards;
    for (int jobs : {1, 4}) {
      ParallelRunner runner(jobs);
      std::vector<SimMetrics> metrics = runner.RunAll(sharded);
      ASSERT_EQ(metrics.size(), reference.size());
      for (std::size_t i = 0; i < reference.size(); ++i) {
        SCOPED_TRACE("shards=" + std::to_string(shards) +
                     " jobs=" + std::to_string(jobs) +
                     " run=" + std::to_string(i));
        ExpectBitIdentical(reference[i], metrics[i]);
      }
    }
  }
}

TEST(ShardDeterminismTest, TelemetryJsonlByteIdenticalAcrossShardCounts) {
  // The barrier sampler must observe exactly the state the single-shard
  // sampler process sees. The interval is deliberately incommensurate
  // with the model's periods so ticks never collide with model events.
  auto record = [](int shards) {
    SimConfig config = TinyShardedConfig();
    config.seed = 23;
    config.shards = shards;
    std::ostringstream jsonl;
    Simulation sim(config);
    TelemetryOptions options;
    options.interval_sec = 0.9973;
    options.jsonl = &jsonl;
    TelemetryRecorder telemetry(&sim, options);
    sim.Run();
    return jsonl.str();
  };
  const std::string reference = record(1);
  EXPECT_GT(reference.size(), 0u);
  for (int shards : {2, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(record(shards), reference);
  }
}

TEST(ShardDeterminismTest, ProxiedTopologyBitIdenticalAcrossShardCounts) {
  // Proxies partition like nodes and their terminals co-locate with
  // them, so proxy->origin traffic is the only cross-shard leg. LRU
  // keeps the proxies timer-free.
  SimConfig config = TinyShardedConfig();
  config.seed = 31;
  config.proxy_nodes = 4;
  config.proxy_cache_pages = 64;
  config.proxy_policy = proxy::ProxyPolicy::kLru;
  SimMetrics reference = RunSimulation(config);
  EXPECT_GT(reference.proxy_hits + reference.proxy_forwards, 0u);
  for (int shards : {2, 4}) {
    SimConfig sharded = config;
    sharded.shards = shards;
    ASSERT_TRUE(sharded.Validate().empty());
    SimMetrics metrics = RunSimulation(sharded);
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ExpectBitIdentical(reference, metrics);
  }
}

TEST(ShardDeterminismTest, ShardCountIsPartOfTheConfigDigest) {
  SimConfig a = TinyShardedConfig();
  SimConfig b = a;
  b.shards = 4;
  EXPECT_NE(ConfigDigest(a), ConfigDigest(b));
}

TEST(ShardDeterminismTest, BudgetedJobsDividesTheWorkerPoolByShards) {
  EXPECT_EQ(BudgetedJobs(8, 1), 8);
  EXPECT_EQ(BudgetedJobs(8, 2), 4);
  EXPECT_EQ(BudgetedJobs(8, 3), 2);
  EXPECT_EQ(BudgetedJobs(4, 8), 1);   // never below one worker
  EXPECT_EQ(BudgetedJobs(1, 4), 1);
  EXPECT_GE(BudgetedJobs(0, 1), 1);   // default jobs, whatever the host has
}

}  // namespace
}  // namespace spiffi::vod
