#include "vod/config.h"

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

TEST(SimConfigTest, DefaultsMatchPaperBaseConfiguration) {
  SimConfig config;
  EXPECT_EQ(config.num_nodes, 4);
  EXPECT_EQ(config.disks_per_node, 4);
  EXPECT_EQ(config.total_disks(), 16);
  EXPECT_EQ(config.num_videos(), 64);
  EXPECT_EQ(config.stripe_bytes, 512 * 1024);
  EXPECT_EQ(config.server_memory_bytes, 4LL * 1024 * 1024 * 1024);
  EXPECT_EQ(config.terminal_memory_bytes, 2 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(config.video_seconds, 3600.0);
  EXPECT_DOUBLE_EQ(config.zipf_z, 1.0);
  EXPECT_DOUBLE_EQ(config.cpu_mips, 40.0);
  EXPECT_TRUE(config.Validate().empty());
}

TEST(SimConfigTest, PoolPagesPerNode) {
  SimConfig config;
  // 4 GB / 4 nodes / 512 KB = 2048 pages per node.
  EXPECT_EQ(config.pool_pages_per_node(), 2048);
}

TEST(SimConfigTest, RejectsBadValues) {
  {
    SimConfig c;
    c.num_nodes = 0;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.terminal_memory_bytes = c.stripe_bytes - 1;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.server_memory_bytes = c.stripe_bytes;  // < 2 pages per node
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.warmup_seconds = c.start_window_sec - 1.0;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.videos_per_disk = 0;
    EXPECT_FALSE(c.Validate().empty());
  }
}

TEST(SimConfigTest, RejectsNonPositiveCounts) {
  for (int bad : {0, -1, -100}) {
    {
      SimConfig c;
      c.num_nodes = bad;
      EXPECT_FALSE(c.Validate().empty()) << "num_nodes=" << bad;
    }
    {
      SimConfig c;
      c.disks_per_node = bad;
      EXPECT_FALSE(c.Validate().empty()) << "disks_per_node=" << bad;
    }
    {
      SimConfig c;
      c.terminals = bad;
      EXPECT_FALSE(c.Validate().empty()) << "terminals=" << bad;
    }
  }
}

TEST(SimConfigTest, ValidatesReplicatedPlacement) {
  SimConfig c;
  c.placement = VideoPlacement::kReplicatedStriped;
  c.replica_count = 2;
  EXPECT_TRUE(c.Validate().empty());
  c.replica_count = 1;  // "replicated" with one copy is plain striping
  EXPECT_FALSE(c.Validate().empty());
  c.replica_count = c.num_nodes + 1;  // copies must land on distinct nodes
  EXPECT_FALSE(c.Validate().empty());
  c.replica_count = c.num_nodes;
  EXPECT_TRUE(c.Validate().empty());
}

TEST(SimConfigTest, ValidatesFaultPlan) {
  {
    SimConfig c;
    c.fault_plan.script.push_back(
        {10.0, fault::FaultKind::kDiskFail, c.total_disks()});
    EXPECT_FALSE(c.Validate().empty());  // disk index out of range
  }
  {
    SimConfig c;
    c.fault_plan.script.push_back({-1.0, fault::FaultKind::kDiskFail, 0});
    EXPECT_FALSE(c.Validate().empty());  // negative time
  }
  {
    SimConfig c;
    c.fault_plan.disk_mtbf_sec = 100.0;
    c.fault_plan.disk_repair_mean_sec = 0.0;
    EXPECT_FALSE(c.Validate().empty());  // repair mean must be positive
  }
  {
    SimConfig c;
    c.fault_plan.script.push_back({10.0, fault::FaultKind::kNodeFail, 1});
    c.fault_plan.disk_mtbf_sec = 500.0;
    EXPECT_TRUE(c.Validate().empty());  // scripted + stochastic is fine
  }
}

TEST(SimConfigTest, ValidatesShardCount) {
  {
    SimConfig c;  // default num_nodes = 4
    c.shards = 2;
    EXPECT_TRUE(c.Validate().empty());
    c.shards = 4;
    EXPECT_TRUE(c.Validate().empty());
  }
  for (int bad : {0, -1}) {
    SimConfig c;
    c.shards = bad;
    EXPECT_FALSE(c.Validate().empty()) << "shards=" << bad;
  }
  {
    SimConfig c;
    c.shards = c.num_nodes + 1;  // a shard would own no server node
    EXPECT_FALSE(c.Validate().empty());
  }
}

TEST(SimConfigTest, ShardingExcludesSingleCalendarFeatures) {
  // Stream sharing, admission, and fault injection coordinate through
  // process-wide managers that assume one calendar; they require
  // shards == 1 until they are partitioned too.
  {
    SimConfig c;
    c.shards = 2;
    c.piggyback_window_sec = 5.0;
    EXPECT_FALSE(c.Validate().empty());
    c.shards = 1;
    EXPECT_TRUE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.shards = 2;
    c.admission_policy = AdmissionPolicy::kStaticReservation;
    EXPECT_FALSE(c.Validate().empty());
    c.shards = 1;
    EXPECT_TRUE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.shards = 2;
    c.fault_plan.disk_mtbf_sec = 500.0;
    EXPECT_FALSE(c.Validate().empty());
    c.shards = 1;
    EXPECT_TRUE(c.Validate().empty());
  }
}

TEST(SimConfigTest, DescribeMentionsShardsOnlyWhenSharded) {
  SimConfig c;
  EXPECT_EQ(c.Describe().find("shards"), std::string::npos);
  c.shards = 2;
  EXPECT_NE(c.Describe().find("shards 2"), std::string::npos);
}

TEST(SimConfigTest, DescribeMentionsFaultsOnlyWhenEnabled) {
  SimConfig c;
  EXPECT_EQ(c.Describe().find("faults"), std::string::npos);
  c.fault_plan.disk_mtbf_sec = 500.0;
  EXPECT_NE(c.Describe().find("faults"), std::string::npos);
  c.placement = VideoPlacement::kReplicatedStriped;
  EXPECT_NE(c.Describe().find("replicated(x2)"), std::string::npos);
}

TEST(SimConfigTest, PrefetchWorkerDefaultsPerScheduler) {
  SimConfig config;
  config.disk_sched = server::DiskSchedPolicy::kElevator;
  EXPECT_EQ(config.effective_prefetch_workers(), 1);
  config.disk_sched = server::DiskSchedPolicy::kRealTime;
  EXPECT_EQ(config.effective_prefetch_workers(), 64);
  config.prefetch_workers = 2;  // explicit override wins
  EXPECT_EQ(config.effective_prefetch_workers(), 2);
}

TEST(SimConfigTest, PrefetchTriggerDefaultsPerScheduler) {
  SimConfig config;
  config.disk_sched = server::DiskSchedPolicy::kElevator;
  EXPECT_EQ(config.effective_prefetch_trigger(),
            server::PrefetchTrigger::kOnMiss);
  config.disk_sched = server::DiskSchedPolicy::kRealTime;
  EXPECT_EQ(config.effective_prefetch_trigger(),
            server::PrefetchTrigger::kOnReference);
  config.prefetch_trigger = SimConfig::TriggerMode::kOnMiss;
  EXPECT_EQ(config.effective_prefetch_trigger(),
            server::PrefetchTrigger::kOnMiss);
}

TEST(SimConfigTest, DescribeMentionsKeyChoices) {
  SimConfig config;
  std::string description = config.Describe();
  EXPECT_NE(description.find("16 disks"), std::string::npos);
  EXPECT_NE(description.find("elevator"), std::string::npos);
  EXPECT_NE(description.find("striped"), std::string::npos);
  EXPECT_NE(description.find("z=1"), std::string::npos);
}

TEST(SimConfigTest, ValidatesStreamSharingKnobs) {
  {
    SimConfig c;
    c.patch_window_sec = -1.0;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.patch_window_sec = c.video_seconds;  // must be < the video
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.prefix_cache_fraction = 0.6;  // must leave eviction headroom
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.prefix_cache_fraction = 0.25;
    c.prefix_recompute_sec = 0.0;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.piggyback_window_sec = 60.0;
    c.patch_window_sec = 45.0;
    c.prefix_cache_fraction = 0.25;
    EXPECT_TRUE(c.Validate().empty());
    EXPECT_TRUE(c.stream_sharing_enabled());
  }
}

TEST(SimConfigTest, DescribeMentionsSharingOnlyWhenEnabled) {
  SimConfig c;
  EXPECT_EQ(c.Describe().find("batch"), std::string::npos);
  EXPECT_EQ(c.Describe().find("patch"), std::string::npos);
  EXPECT_EQ(c.Describe().find("prefix"), std::string::npos);
  EXPECT_FALSE(c.stream_sharing_enabled());
  c.piggyback_window_sec = 60.0;
  c.patch_window_sec = 45.0;
  c.prefix_cache_fraction = 0.25;
  std::string description = c.Describe();
  EXPECT_NE(description.find("batch 60 s"), std::string::npos);
  EXPECT_NE(description.find("patch 45 s"), std::string::npos);
  EXPECT_NE(description.find("prefix 0.25"), std::string::npos);
}

TEST(SimConfigTest, ValidatesResilienceKnobs) {
  {
    SimConfig c;
    c.admission_policy = AdmissionPolicy::kStaticReservation;
    c.admission_headroom = 0.0;  // must be in (0, 1]
    EXPECT_FALSE(c.Validate().empty());
    c.admission_headroom = 1.5;
    EXPECT_FALSE(c.Validate().empty());
    c.admission_headroom = 1.0;
    EXPECT_TRUE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.admission_policy = AdmissionPolicy::kMeasuredHeadroom;
    c.admission_defer_sec = 0.0;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.admission_policy = AdmissionPolicy::kStaticReservation;
    c.admission_max_defers = -1;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    // With admission off, the admission sub-knobs are not interpreted.
    SimConfig c;
    c.admission_headroom = 7.0;
    EXPECT_TRUE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.request_retry_budget = -1;
    EXPECT_FALSE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.request_retry_budget = 2;
    c.retry_min_timeout_sec = 0.0;
    EXPECT_FALSE(c.Validate().empty());
    c.retry_min_timeout_sec = 0.25;
    c.retry_backoff_base_sec = 0.0;
    EXPECT_FALSE(c.Validate().empty());
    c.retry_backoff_base_sec = 0.25;
    EXPECT_TRUE(c.Validate().empty());
  }
  {
    SimConfig c;
    c.rebuild_mbps = -1.0;
    EXPECT_FALSE(c.Validate().empty());
  }
}

TEST(SimConfigTest, DescribeMentionsResilienceOnlyWhenEnabled) {
  SimConfig c;
  EXPECT_EQ(c.Describe().find("admission"), std::string::npos);
  EXPECT_EQ(c.Describe().find("retry"), std::string::npos);
  EXPECT_EQ(c.Describe().find("rebuild"), std::string::npos);
  c.admission_policy = AdmissionPolicy::kStaticReservation;
  c.request_retry_budget = 3;
  c.rebuild_mbps = 40.0;
  std::string description = c.Describe();
  EXPECT_NE(description.find("admission"), std::string::npos);
  EXPECT_NE(description.find("retry x3"), std::string::npos);
  EXPECT_NE(description.find("rebuild"), std::string::npos);
}

TEST(SimConfigTest, ScaleupPreservesVideosPerDisk) {
  SimConfig config;
  config.disks_per_node = 16;  // x4 scaleup keeps 4 CPUs
  EXPECT_EQ(config.total_disks(), 64);
  EXPECT_EQ(config.num_videos(), 256);
}

}  // namespace
}  // namespace spiffi::vod
