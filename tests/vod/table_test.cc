#include "vod/table.h"

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "22"});
  std::string out = table.ToString();
  // Every line has the same position for the second column.
  auto first_line_end = out.find('\n');
  std::string header = out.substr(0, first_line_end);
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTableTest, HeaderUnderlineSpansColumns) {
  TextTable table({"a", "b"});
  table.AddRow({"xxxx", "yyyy"});
  std::string out = table.ToString();
  // underline length = widths (4 + 4) + separator 2 = 10
  EXPECT_NE(out.find(std::string(10, '-')), std::string::npos);
}

TEST(FmtTest, FmtInt) { EXPECT_EQ(FmtInt(1234), "1234"); }

TEST(FmtTest, FmtDoublePrecision) {
  EXPECT_EQ(FmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FmtDouble(3.0, 0), "3");
}

TEST(FmtTest, FmtPercent) {
  EXPECT_EQ(FmtPercent(0.953, 1), "95.3%");
  EXPECT_EQ(FmtPercent(1.0, 0), "100%");
}

TEST(FmtTest, FmtBytesPerSec) {
  EXPECT_EQ(FmtBytesPerSec(10.0 * 1024 * 1024), "10.0 MB/s");
}

TEST(FmtTest, FmtMiB) {
  EXPECT_EQ(FmtMiB(512LL * 1024 * 1024), "512 MB");
}

}  // namespace
}  // namespace spiffi::vod
