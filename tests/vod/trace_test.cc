#include "vod/trace.h"

#include <sstream>

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

SimConfig TraceConfig(int terminals) {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = terminals;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  return config;
}

TEST(TraceTest, SamplesAtRequestedInterval) {
  Simulation sim(TraceConfig(10));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  // 45 simulated seconds at 1 s intervals.
  ASSERT_GE(trace.samples().size(), 44u);
  ASSERT_LE(trace.samples().size(), 46u);
  EXPECT_NEAR(trace.samples()[0].time, 1.0, 1e-9);
  EXPECT_NEAR(trace.samples()[1].time - trace.samples()[0].time, 1.0,
              1e-9);
}

TEST(TraceTest, CapturesSteadyStatePlayback) {
  Simulation sim(TraceConfig(10));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  const TraceSample& late = trace.samples().back();
  EXPECT_EQ(late.terminals_playing, 10);
  EXPECT_EQ(late.terminals_priming, 0);
  EXPECT_EQ(late.glitches, 0u);
  EXPECT_EQ(late.total_disks, 4);
  EXPECT_GT(late.pool_pages_in_use, 0);
}

TEST(TraceTest, NetworkBytesAreDeltas) {
  Simulation sim(TraceConfig(10));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  // Steady state: ~10 terminals x 0.5 MB/s per one-second bucket.
  const auto& samples = trace.samples();
  double sum = 0.0;
  int counted = 0;
  for (std::size_t i = 20; i < samples.size(); ++i) {
    sum += static_cast<double>(samples[i].network_bytes);
    ++counted;
  }
  double avg = sum / counted;
  EXPECT_NEAR(avg, 10 * 512.0 * 1024.0, 10 * 512.0 * 1024.0 * 0.3);
}

TEST(TraceTest, GlitchesAppearInOverloadTrace) {
  Simulation sim(TraceConfig(140));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  EXPECT_GT(trace.samples().back().glitches, 0u);
  // Glitch counters are cumulative within the measurement phase (they
  // reset once when the warmup window closes at t=15).
  std::uint64_t prev = 0;
  for (const TraceSample& s : trace.samples()) {
    if (s.time <= 16.0) continue;
    EXPECT_GE(s.glitches, prev);
    prev = s.glitches;
  }
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  Simulation sim(TraceConfig(5));
  TraceRecorder trace(&sim, 5.0);
  sim.Run();
  std::ostringstream out;
  trace.WriteCsv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("time,disks_busy"), std::string::npos);
  // header + one line per sample
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, trace.samples().size() + 1);
}

}  // namespace
}  // namespace spiffi::vod
