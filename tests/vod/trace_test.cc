#include "vod/trace.h"

#include <sstream>

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

SimConfig TraceConfig(int terminals) {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = terminals;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  return config;
}

TEST(TraceTest, SamplesAtRequestedInterval) {
  Simulation sim(TraceConfig(10));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  // 45 simulated seconds at 1 s intervals.
  ASSERT_GE(trace.samples().size(), 44u);
  ASSERT_LE(trace.samples().size(), 46u);
  EXPECT_NEAR(trace.samples()[0].time, 1.0, 1e-9);
  EXPECT_NEAR(trace.samples()[1].time - trace.samples()[0].time, 1.0,
              1e-9);
}

TEST(TraceTest, CapturesSteadyStatePlayback) {
  Simulation sim(TraceConfig(10));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  const TraceSample& late = trace.samples().back();
  EXPECT_EQ(late.terminals_playing, 10);
  EXPECT_EQ(late.terminals_priming, 0);
  EXPECT_EQ(late.glitches_total, 0u);
  EXPECT_EQ(late.total_disks, 4);
  EXPECT_GT(late.pool_pages_in_use, 0);
}

TEST(TraceTest, NetworkBytesDeltaIsPerInterval) {
  Simulation sim(TraceConfig(10));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  // Steady state: ~10 terminals x 0.5 MB/s per one-second bucket.
  const auto& samples = trace.samples();
  double sum = 0.0;
  int counted = 0;
  for (std::size_t i = 20; i < samples.size(); ++i) {
    sum += static_cast<double>(samples[i].network_bytes_delta);
    ++counted;
  }
  double avg = sum / counted;
  EXPECT_NEAR(avg, 10 * 512.0 * 1024.0, 10 * 512.0 * 1024.0 * 0.3);
}

TEST(TraceTest, TotalAndDeltaColumnsAreConsistent) {
  Simulation sim(TraceConfig(140));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  const auto& samples = trace.samples();
  ASSERT_FALSE(samples.empty());
  // *_total is non-decreasing within a stats window and *_delta is the
  // difference between consecutive totals — for both counters, including
  // across the reset at the end of warmup (t=15), where the delta
  // re-bases instead of wrapping.
  std::uint64_t prev_glitches = 0;
  std::uint64_t prev_bytes = 0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const TraceSample& s = samples[i];
    if (s.time > 16.0) {
      EXPECT_GE(s.glitches_total, prev_glitches);
      EXPECT_EQ(s.glitches_delta, s.glitches_total - prev_glitches);
      EXPECT_GE(s.network_bytes_total, prev_bytes);
      EXPECT_EQ(s.network_bytes_delta, s.network_bytes_total - prev_bytes);
    } else {
      // Around the reset the total may drop below the previous total;
      // the delta must re-base to the new total, never wrap.
      EXPECT_LE(s.glitches_delta, s.glitches_total);
      EXPECT_LE(s.network_bytes_delta, s.network_bytes_total);
    }
    prev_glitches = s.glitches_total;
    prev_bytes = s.network_bytes_total;
  }
}

TEST(TraceTest, GlitchesAppearInOverloadTrace) {
  Simulation sim(TraceConfig(140));
  TraceRecorder trace(&sim, 1.0);
  sim.Run();
  EXPECT_GT(trace.samples().back().glitches_total, 0u);
  // Glitch totals are cumulative within the measurement phase (they
  // reset once when the warmup window closes at t=15).
  std::uint64_t prev = 0;
  for (const TraceSample& s : trace.samples()) {
    if (s.time <= 16.0) continue;
    EXPECT_GE(s.glitches_total, prev);
    prev = s.glitches_total;
  }
}

TEST(TraceTest, CsvHasHeaderAndRows) {
  Simulation sim(TraceConfig(5));
  TraceRecorder trace(&sim, 5.0);
  sim.Run();
  std::ostringstream out;
  trace.WriteCsv(out);
  std::string csv = out.str();
  EXPECT_NE(csv.find("time,disks_busy"), std::string::npos);
  // header + one line per sample
  std::size_t lines = 0;
  for (char c : csv) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, trace.samples().size() + 1);
}

}  // namespace
}  // namespace spiffi::vod
