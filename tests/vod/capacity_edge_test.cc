// Edge-case behaviour of the capacity search.

#include "gtest/gtest.h"
#include "vod/capacity.h"

namespace spiffi::vod {
namespace {

SimConfig TinyConfig() {
  SimConfig config;
  config.num_nodes = 1;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.videos_per_disk = 4;
  config.server_memory_bytes = 128LL * 1024 * 1024;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 20.0;
  return config;
}

TEST(CapacityEdgeTest, EverythingGlitchesReportsZeroCapacity) {
  // A configuration that glitches even at the minimum probe: one disk
  // cannot feed 30+ terminals, and we forbid probing below 30.
  SimConfig config = TinyConfig();
  config.disks_per_node = 1;
  config.videos_per_disk = 8;  // keep 8 videos on the single disk
  CapacitySearchOptions options;
  options.min_terminals = 30;
  options.max_terminals = 100;
  options.start_guess = 60;
  options.step = 10;
  CapacityResult result = FindMaxTerminals(config, options);
  // Depending on luck the single disk may or may not carry exactly 30;
  // the contract is that the result is below the first failing probe and
  // that a failing probe exists.
  bool any_failure = false;
  for (const auto& [terminals, glitches] : result.probes) {
    if (glitches > 0) any_failure = true;
  }
  EXPECT_TRUE(any_failure);
  EXPECT_LT(result.max_terminals, 60);
}

TEST(CapacityEdgeTest, StartGuessClampedIntoRange) {
  SimConfig config = TinyConfig();
  CapacitySearchOptions options;
  options.min_terminals = 5;
  options.max_terminals = 20;  // guess of 100 must be clamped to 20
  options.start_guess = 100;
  options.step = 5;
  CapacityResult result = FindMaxTerminals(config, options);
  for (const auto& [terminals, glitches] : result.probes) {
    EXPECT_LE(terminals, 20);
    EXPECT_GE(terminals, 5);
  }
  EXPECT_EQ(result.max_terminals, 20);  // 2 disks carry 20 easily
}

TEST(CapacityEdgeTest, CoarseStepStillBracketsBoundary) {
  SimConfig config = TinyConfig();
  CapacitySearchOptions fine;
  fine.start_guess = 16;
  fine.step = 2;
  fine.max_terminals = 150;
  CapacitySearchOptions coarse = fine;
  coarse.step = 20;
  CapacityResult fine_result = FindMaxTerminals(config, fine);
  CapacityResult coarse_result = FindMaxTerminals(config, coarse);
  // Coarse search lands within one coarse step of the fine result.
  EXPECT_NEAR(coarse_result.max_terminals, fine_result.max_terminals, 25);
  // Fine search needed at least as many probes.
  EXPECT_GE(fine_result.probes.size(), coarse_result.probes.size());
}

TEST(CapacityEdgeTest, ProbesAreReproducible) {
  SimConfig config = TinyConfig();
  CapacitySearchOptions options;
  options.start_guess = 24;
  options.step = 8;
  options.max_terminals = 150;
  CapacityResult a = FindMaxTerminals(config, options);
  CapacityResult b = FindMaxTerminals(config, options);
  EXPECT_EQ(a.max_terminals, b.max_terminals);
  ASSERT_EQ(a.probes.size(), b.probes.size());
  for (std::size_t i = 0; i < a.probes.size(); ++i) {
    EXPECT_EQ(a.probes[i], b.probes[i]);
  }
}

}  // namespace
}  // namespace spiffi::vod
