#include "vod/capacity.h"

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

// Tiny configuration so capacity searches run in well under a second per
// probe: 1 node, 2 disks, 2-minute videos, short windows.
SimConfig TinyConfig() {
  SimConfig config;
  config.num_nodes = 1;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.videos_per_disk = 4;
  config.server_memory_bytes = 128LL * 1024 * 1024;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 20.0;
  return config;
}

TEST(CapacityTest, GlitchesAtMonotoneAtExtremes) {
  SimConfig config = TinyConfig();
  EXPECT_EQ(GlitchesAt(config, 5, 1), 0u);
  EXPECT_GT(GlitchesAt(config, 80, 1), 0u);
}

TEST(CapacityTest, FindMaxTerminalsBracketsTheBoundary) {
  SimConfig config = TinyConfig();
  CapacitySearchOptions options;
  options.min_terminals = 2;
  options.max_terminals = 120;
  options.start_guess = 16;
  options.step = 4;
  CapacityResult result = FindMaxTerminals(config, options);
  // The boundary for 2 disks is somewhere in the tens of terminals.
  EXPECT_GT(result.max_terminals, 10);
  EXPECT_LT(result.max_terminals, 80);
  // The reported capacity was actually probed glitch-free...
  bool found = false;
  for (const auto& [terminals, glitches] : result.probes) {
    if (terminals == result.max_terminals) {
      EXPECT_EQ(glitches, 0u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  // ...and something above it glitched.
  bool failure_seen = false;
  for (const auto& [terminals, glitches] : result.probes) {
    if (terminals > result.max_terminals && glitches > 0) {
      failure_seen = true;
    }
  }
  EXPECT_TRUE(failure_seen);
}

TEST(CapacityTest, ResultCarriesMetricsAtCapacity) {
  SimConfig config = TinyConfig();
  CapacitySearchOptions options;
  options.min_terminals = 2;
  options.max_terminals = 120;
  options.start_guess = 16;
  options.step = 8;
  CapacityResult result = FindMaxTerminals(config, options);
  EXPECT_EQ(result.at_capacity.glitches, 0u);
  EXPECT_GT(result.at_capacity.frames_displayed, 0u);
}

TEST(CapacityTest, SearchRespectsMaxBound) {
  SimConfig config = TinyConfig();
  config.terminals = 1;
  CapacitySearchOptions options;
  options.min_terminals = 2;
  options.max_terminals = 8;  // far below true capacity
  options.start_guess = 4;
  options.step = 2;
  CapacityResult result = FindMaxTerminals(config, options);
  EXPECT_EQ(result.max_terminals, 8);
}

TEST(CapacityTest, ReplicationsSumGlitches) {
  SimConfig config = TinyConfig();
  std::uint64_t one = GlitchesAt(config, 80, 1);
  std::uint64_t three = GlitchesAt(config, 80, 3);
  EXPECT_GE(three, one);  // more seeds, at least as many glitches
}

TEST(CapacityTest, GlitchCurveMatchesDirectProbes) {
  SimConfig config = TinyConfig();
  auto curve = GlitchCurve(config, {10, 90});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve[0].first, 10);
  EXPECT_EQ(curve[0].second, 0u);
  EXPECT_GT(curve[1].second, 0u);
  EXPECT_EQ(curve[1].second, GlitchesAt(config, 90, 1));
}

}  // namespace
}  // namespace spiffi::vod
