// Determinism suite for the parallel experiment runner: the job count
// may change only wall-clock time, never results. Same config + seed
// must yield bit-identical SimMetrics through ParallelRunner at any job
// count, and the capacity search must return the same answer serial and
// parallel.

#include "vod/runner.h"

#include <vector>

#include "gtest/gtest.h"
#include "vod/capacity.h"
#include "vod/simulation.h"

namespace spiffi::vod {
namespace {

// Tiny configuration so each run takes a fraction of a second: 1 node,
// 2 disks, 2-minute videos, short windows (mirrors capacity_test).
SimConfig TinyConfig() {
  SimConfig config;
  config.num_nodes = 1;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.videos_per_disk = 4;
  config.server_memory_bytes = 128LL * 1024 * 1024;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 20.0;
  config.terminals = 30;
  return config;
}

// Bit-identical: every field compared with exact equality, doubles
// included — the whole point is that thread count must not perturb a
// single bit of any metric.
void ExpectBitIdentical(const SimMetrics& a, const SimMetrics& b) {
  EXPECT_EQ(a.terminals, b.terminals);
  EXPECT_EQ(a.measured_seconds, b.measured_seconds);
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.terminals_with_glitches, b.terminals_with_glitches);
  EXPECT_EQ(a.avg_disk_utilization, b.avg_disk_utilization);
  EXPECT_EQ(a.min_disk_utilization, b.min_disk_utilization);
  EXPECT_EQ(a.max_disk_utilization, b.max_disk_utilization);
  EXPECT_EQ(a.avg_cpu_utilization, b.avg_cpu_utilization);
  EXPECT_EQ(a.peak_network_bytes_per_sec, b.peak_network_bytes_per_sec);
  EXPECT_EQ(a.avg_network_bytes_per_sec, b.avg_network_bytes_per_sec);
  EXPECT_EQ(a.buffer_references, b.buffer_references);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.buffer_attaches, b.buffer_attaches);
  EXPECT_EQ(a.buffer_misses, b.buffer_misses);
  EXPECT_EQ(a.shared_references, b.shared_references);
  EXPECT_EQ(a.wasted_prefetches, b.wasted_prefetches);
  EXPECT_EQ(a.prefetches_issued, b.prefetches_issued);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.avg_disk_service_ms, b.avg_disk_service_ms);
  EXPECT_EQ(a.avg_seek_cylinders, b.avg_seek_cylinders);
  EXPECT_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.p50_response_ms, b.p50_response_ms);
  EXPECT_EQ(a.p99_response_ms, b.p99_response_ms);
  EXPECT_EQ(a.frames_displayed, b.frames_displayed);
  EXPECT_EQ(a.videos_completed, b.videos_completed);
  EXPECT_EQ(a.events_simulated, b.events_simulated);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.repairs_completed, b.repairs_completed);
  EXPECT_EQ(a.mttr_sec, b.mttr_sec);
  EXPECT_EQ(a.fault_downtime_sec, b.fault_downtime_sec);
  EXPECT_EQ(a.rerouted_requests, b.rerouted_requests);
  EXPECT_EQ(a.degraded_waits, b.degraded_waits);
  EXPECT_EQ(a.prefetches_skipped_dead, b.prefetches_skipped_dead);
  EXPECT_EQ(a.requests_redirected, b.requests_redirected);
  EXPECT_EQ(a.blocks_rerouted, b.blocks_rerouted);
}

// A tiny replicated configuration with live stochastic faults: disks
// fail roughly once per window and repair within it.
SimConfig TinyFaultyConfig() {
  SimConfig config = TinyConfig();
  config.num_nodes = 2;
  config.disks_per_node = 1;
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.fault_plan.disk_mtbf_sec = 60.0;
  config.fault_plan.disk_repair_mean_sec = 5.0;
  return config;
}

TEST(RunnerTest, ResolveJobsHonoursExplicitCount) {
  EXPECT_EQ(ResolveJobs(1), 1);
  EXPECT_EQ(ResolveJobs(5), 5);
  EXPECT_GE(ResolveJobs(0), 1);   // default, whatever the machine has
  EXPECT_GE(ResolveJobs(-3), 1);
}

TEST(RunnerTest, SameSeedBitIdenticalAcrossJobCounts) {
  std::vector<SimConfig> batch;
  for (int i = 0; i < 6; ++i) {
    SimConfig config = TinyConfig();
    config.seed = 100 + i;
    config.terminals = 20 + 5 * i;
    batch.push_back(config);
  }

  ParallelRunner serial(1);
  ParallelRunner parallel(8);
  std::vector<SimMetrics> at_one = serial.RunAll(batch);
  std::vector<SimMetrics> at_eight = parallel.RunAll(batch);

  ASSERT_EQ(at_one.size(), batch.size());
  ASSERT_EQ(at_eight.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(at_one[i], at_eight[i]);
  }
  EXPECT_EQ(serial.stats().completed, batch.size());
  EXPECT_EQ(parallel.stats().completed, batch.size());
}

TEST(RunnerTest, RunnerMatchesDirectRunSimulation) {
  SimConfig config = TinyConfig();
  config.seed = 7;
  SimMetrics direct = RunSimulation(config);
  ParallelRunner runner(4);
  std::vector<SimMetrics> pooled = runner.RunAll({config});
  ASSERT_EQ(pooled.size(), 1u);
  ExpectBitIdentical(direct, pooled[0]);
}

TEST(RunnerTest, CancelledPendingRunNeverExecutes) {
  ParallelRunner runner(1);
  // Occupy the single worker, then cancel a queued run before it starts.
  ParallelRunner::RunHandle busy = runner.Submit(TinyConfig());
  ParallelRunner::RunHandle doomed = runner.Submit(TinyConfig());
  runner.Cancel(doomed);
  SimMetrics metrics;
  EXPECT_FALSE(runner.Wait(doomed, &metrics));
  EXPECT_TRUE(runner.Wait(busy, &metrics));
  EXPECT_EQ(runner.stats().completed, 1u);
  EXPECT_EQ(runner.stats().cancelled, 1u);
}

TEST(RunnerTest, CancelledRunningRunStopsEarly) {
  ParallelRunner runner(1);
  ParallelRunner::RunHandle run = runner.Submit(TinyConfig());
  runner.Cancel(run);  // may catch it pending or mid-run; both must stop
  SimMetrics metrics;
  EXPECT_FALSE(runner.Wait(run, &metrics));
}

TEST(RunnerTest, GlitchesAtAggregatesAcrossReplications) {
  // Regression: out_aggregate used to carry only the last replication,
  // so at_capacity reflected one seed instead of the replication set.
  SimConfig config = TinyConfig();
  const int kTerminals = 80;  // overloaded: glitches expected
  const int kReps = 3;

  std::uint64_t sum_direct = 0;
  std::uint64_t frames_direct = 0;
  std::vector<SimMetrics> singles;
  for (int r = 0; r < kReps; ++r) {
    SimConfig rep = config;
    rep.seed = config.seed + static_cast<std::uint64_t>(r);
    SimMetrics m;
    GlitchesAt(rep, kTerminals, 1, &m);
    sum_direct += m.glitches;
    frames_direct += m.frames_displayed;
    singles.push_back(m);
  }

  SimMetrics aggregate;
  std::uint64_t total = GlitchesAt(config, kTerminals, kReps, &aggregate);
  EXPECT_EQ(total, sum_direct);
  EXPECT_EQ(aggregate.glitches, sum_direct);
  EXPECT_EQ(aggregate.frames_displayed, frames_direct);
  // ...and not just the last replication's view.
  EXPECT_NE(aggregate.glitches, singles.back().glitches);

  // The parallel path aggregates identically.
  ParallelRunner runner(4);
  SimMetrics parallel_aggregate;
  std::uint64_t parallel_total =
      GlitchesAt(config, kTerminals, kReps, &parallel_aggregate, &runner);
  EXPECT_EQ(parallel_total, total);
  ExpectBitIdentical(aggregate, parallel_aggregate);
}

TEST(RunnerTest, AggregateReplicationsOfOneIsIdentity) {
  SimConfig config = TinyConfig();
  SimMetrics single = RunSimulation(config);
  SimMetrics aggregate = AggregateReplications({single});
  ExpectBitIdentical(single, aggregate);
}

TEST(RunnerTest, FaultPlanBitIdenticalAcrossJobCounts) {
  std::vector<SimConfig> batch;
  for (int i = 0; i < 4; ++i) {
    SimConfig config = TinyFaultyConfig();
    config.seed = 300 + i;
    config.terminals = 10 + 5 * i;
    batch.push_back(config);
  }

  ParallelRunner serial(1);
  ParallelRunner parallel(8);
  std::vector<SimMetrics> at_one = serial.RunAll(batch);
  std::vector<SimMetrics> at_eight = parallel.RunAll(batch);

  ASSERT_EQ(at_one.size(), batch.size());
  ASSERT_EQ(at_eight.size(), batch.size());
  bool saw_faults = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectBitIdentical(at_one[i], at_eight[i]);
    saw_faults = saw_faults || at_one[i].faults_injected > 0;
  }
  // The plan must actually have exercised the fault machinery for the
  // comparison to mean anything.
  EXPECT_TRUE(saw_faults);
}

TEST(RunnerTest, CapacitySearchUnderFaultPlanIdenticalSerialVsParallel) {
  SimConfig config = TinyFaultyConfig();
  CapacitySearchOptions options;
  options.min_terminals = 2;
  options.max_terminals = 80;
  options.start_guess = 12;
  options.step = 8;
  options.replications = 2;

  options.jobs = 1;
  CapacityResult serial = FindMaxTerminals(config, options);
  options.jobs = 8;
  CapacityResult parallel = FindMaxTerminals(config, options);

  EXPECT_EQ(serial.max_terminals, parallel.max_terminals);
  EXPECT_EQ(serial.probes, parallel.probes);
  ExpectBitIdentical(serial.at_capacity, parallel.at_capacity);
}

TEST(RunnerTest, CapacitySearchIdenticalSerialVsParallel) {
  SimConfig config = TinyConfig();
  CapacitySearchOptions options;
  options.min_terminals = 2;
  options.max_terminals = 120;
  options.start_guess = 16;
  options.step = 8;
  options.replications = 2;

  options.jobs = 1;
  CapacityResult serial = FindMaxTerminals(config, options);
  options.jobs = 8;
  CapacityResult parallel = FindMaxTerminals(config, options);

  EXPECT_EQ(serial.max_terminals, parallel.max_terminals);
  // The speculative search walks the serial decision path: same probes,
  // same order, same verdicts.
  EXPECT_EQ(serial.probes, parallel.probes);
  ExpectBitIdentical(serial.at_capacity, parallel.at_capacity);
}

TEST(RunnerTest, GlitchCurveIdenticalSerialVsParallel) {
  SimConfig config = TinyConfig();
  std::vector<int> counts = {10, 40, 90};
  auto serial = GlitchCurve(config, counts, /*replications=*/2, /*jobs=*/1);
  auto parallel =
      GlitchCurve(config, counts, /*replications=*/2, /*jobs=*/8);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace spiffi::vod
