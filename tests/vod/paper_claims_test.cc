// Targeted regression tests for the paper's headline claims, at fixed
// terminal counts (no capacity searches, so they stay fast enough for
// the unit-test suite). Each test pins one qualitative result from §7-§8
// so a regression in any algorithm is caught immediately.

#include "gtest/gtest.h"
#include "vod/simulation.h"

namespace spiffi::vod {
namespace {

SimConfig PaperBase() {
  SimConfig config;  // 4 nodes x 4 disks, 64 videos, 512 KB stripe
  config.start_window_sec = 40.0;
  config.warmup_seconds = 60.0;
  config.measure_seconds = 60.0;
  return config;
}

// §7.4 / Fig 13: at a load the striped layout handles easily, the
// non-striped layout glitches heavily under Zipfian access.
TEST(PaperClaimsTest, StripingBeatsNonStriped) {
  SimConfig config = PaperBase();
  config.replacement = server::ReplacementPolicy::kLovePrefetch;
  config.terminals = 120;
  SimMetrics striped = RunSimulation(config);
  config.placement = VideoPlacement::kNonStriped;
  SimMetrics nonstriped = RunSimulation(config);
  EXPECT_EQ(striped.glitches, 0u);
  EXPECT_GT(nonstriped.glitches, 100u);
  // And the non-striped disks are unevenly loaded (Fig 14).
  EXPECT_GT(nonstriped.max_disk_utilization -
                nonstriped.min_disk_utilization,
            0.4);
  EXPECT_LT(striped.max_disk_utilization - striped.min_disk_utilization,
            0.2);
}

// §7.2 / Fig 10: at a 128 KB stripe, round-robin cannot carry a load the
// elevator carries comfortably (seek optimization matters when the
// transfer is short).
TEST(PaperClaimsTest, RoundRobinWorseThanElevatorAtSmallStripes) {
  SimConfig config = PaperBase();
  config.stripe_bytes = 128 * hw::kKiB;
  config.terminals = 185;
  SimMetrics elevator = RunSimulation(config);
  config.disk_sched = server::DiskSchedPolicy::kRoundRobin;
  SimMetrics round_robin = RunSimulation(config);
  EXPECT_EQ(elevator.glitches, 0u);
  EXPECT_GT(round_robin.glitches, 50u);
}

// §7.3 / Fig 12: with unconstrained real-time prefetching and only
// 512 MB of server memory, global LRU melts down in a wasted-prefetch
// storm; love prefetch + delayed prefetching (8 s) runs glitch-free.
TEST(PaperClaimsTest, DelayedPrefetchingRescuesSmallMemory) {
  SimConfig config = PaperBase();
  config.disk_sched = server::DiskSchedPolicy::kRealTime;
  config.server_memory_bytes = 512 * hw::kMiB;
  config.terminals = 180;
  config.prefetch = server::PrefetchPolicy::kRealTime;
  config.replacement = server::ReplacementPolicy::kGlobalLru;
  SimMetrics lru = RunSimulation(config);
  config.replacement = server::ReplacementPolicy::kLovePrefetch;
  config.prefetch = server::PrefetchPolicy::kDelayed;
  config.max_advance_prefetch_sec = 8.0;
  SimMetrics delayed = RunSimulation(config);
  EXPECT_GT(lru.glitches, 500u);
  EXPECT_GT(lru.wasted_prefetches, 1000u);
  EXPECT_EQ(delayed.glitches, 0u);
  EXPECT_LT(delayed.wasted_prefetches, 100u);
}

// §7.2: elevator and real-time scheduling perform nearly identically in
// the 16-disk base configuration (both glitch-free at the same load).
TEST(PaperClaimsTest, RealTimeMatchesElevatorAtBaseScale) {
  SimConfig config = PaperBase();
  config.terminals = 200;
  SimMetrics elevator = RunSimulation(config);
  config.disk_sched = server::DiskSchedPolicy::kRealTime;
  config.prefetch = server::PrefetchPolicy::kRealTime;
  SimMetrics realtime = RunSimulation(config);
  EXPECT_EQ(elevator.glitches, 0u);
  EXPECT_EQ(realtime.glitches, 0u);
}

// §7.6 / Fig 17: the server is I/O bound — CPUs stay cold even at a load
// that saturates the disks.
TEST(PaperClaimsTest, CpuIsNeverTheBottleneck) {
  SimConfig config = PaperBase();
  config.terminals = 220;
  SimMetrics m = RunSimulation(config);
  EXPECT_GT(m.avg_disk_utilization, 0.8);
  EXPECT_LT(m.avg_cpu_utilization, 0.15);
}

// §7.6 / Fig 18: network demand is about one compressed bit rate
// (4 Mbit/s = 0.5 MB/s) per active terminal.
TEST(PaperClaimsTest, NetworkDemandTracksBitRate) {
  SimConfig config = PaperBase();
  config.terminals = 150;
  SimMetrics m = RunSimulation(config);
  double per_terminal = m.avg_network_bytes_per_sec / 150.0;
  EXPECT_NEAR(per_terminal, config.mpeg.bytes_per_second(),
              config.mpeg.bytes_per_second() * 0.2);
}

// §8.1 / Fig 19: pausing subscribers do not cost capacity.
TEST(PaperClaimsTest, PausingIsCapacityNeutral) {
  SimConfig config = PaperBase();
  config.replacement = server::ReplacementPolicy::kLovePrefetch;
  config.server_memory_bytes = 512 * hw::kMiB;
  config.terminals = 190;
  SimMetrics plain = RunSimulation(config);
  config.pause_enabled = true;
  SimMetrics paused = RunSimulation(config);
  EXPECT_EQ(plain.glitches, 0u);
  EXPECT_EQ(paused.glitches, 0u);
}

// §2/§6.1: a Zipfian workload's most popular video really dominates what
// the server streams (sanity of the workload generator end to end).
TEST(PaperClaimsTest, PopularVideosDominateReferences) {
  SimConfig config = PaperBase();
  config.terminals = 100;
  config.zipf_z = 1.5;
  Simulation sim(config);
  sim.Run();
  int watching_top8 = 0;
  for (int t = 0; t < sim.num_terminals(); ++t) {
    if (sim.terminal(t).current_video() >= 0 &&
        sim.terminal(t).current_video() < 8) {
      ++watching_top8;
    }
  }
  // z=1.5 over 64 videos puts ~82% of starts in the top 8.
  EXPECT_GT(watching_top8, 55);
}

}  // namespace
}  // namespace spiffi::vod
