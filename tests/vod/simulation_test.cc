// Whole-system integration tests on small configurations.

#include "vod/simulation.h"

#include "gtest/gtest.h"

namespace spiffi::vod {
namespace {

// A small, fast configuration: 2 nodes x 2 disks, 2-minute videos.
SimConfig SmallConfig() {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 20;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  return config;
}

TEST(SimulationTest, LightLoadIsGlitchFree) {
  SimMetrics m = RunSimulation(SmallConfig());
  EXPECT_EQ(m.glitches, 0u);
  EXPECT_TRUE(m.glitch_free());
  // Every terminal displays ~30 fps over the 30 s window.
  EXPECT_NEAR(static_cast<double>(m.frames_displayed),
              20 * 30.0 * 30.0, 20 * 30.0 * 30.0 * 0.1);
}

TEST(SimulationTest, OverloadGlitches) {
  SimConfig config = SmallConfig();
  config.terminals = 120;  // 4 disks cannot feed 120 streams
  SimMetrics m = RunSimulation(config);
  EXPECT_GT(m.glitches, 0u);
  EXPECT_GT(m.terminals_with_glitches, 0);
  EXPECT_GT(m.avg_disk_utilization, 0.95);
}

TEST(SimulationTest, SameSeedIsFullyReproducible) {
  SimConfig config = SmallConfig();
  config.terminals = 60;
  SimMetrics a = RunSimulation(config);
  SimMetrics b = RunSimulation(config);
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.frames_displayed, b.frames_displayed);
  EXPECT_EQ(a.events_simulated, b.events_simulated);
  EXPECT_DOUBLE_EQ(a.avg_disk_utilization, b.avg_disk_utilization);
  EXPECT_EQ(a.buffer_references, b.buffer_references);
}

TEST(SimulationTest, DifferentSeedsDiffer) {
  SimConfig config = SmallConfig();
  config.terminals = 60;
  SimMetrics a = RunSimulation(config);
  config.seed = 99;
  SimMetrics b = RunSimulation(config);
  EXPECT_NE(a.events_simulated, b.events_simulated);
}

TEST(SimulationTest, CalendarPreSizedFromConfigNeverReallocates) {
  // The calendar heap is reserved from SimConfig::expected_peak_events()
  // at construction, so a steady-state run — here the fig09 smoke
  // configuration (paper defaults, smoke windows) — must never grow it.
  SimConfig config;  // paper defaults: 4 nodes x 4 disks, 200 terminals
  config.start_window_sec = 20.0;
  config.warmup_seconds = 30.0;
  config.measure_seconds = 30.0;
  Simulation simulation(config);
  simulation.RunWarmup();
  EXPECT_EQ(simulation.env().calendar_storage_grows(), 0u);
  simulation.RunMeasurement();
  EXPECT_EQ(simulation.env().calendar_storage_grows(), 0u);
  EXPECT_LE(simulation.env().peak_calendar_size(),
            config.expected_peak_events());
}

TEST(SimulationTest, MeasurementWindowRespected) {
  SimConfig config = SmallConfig();
  SimMetrics m = RunSimulation(config);
  EXPECT_DOUBLE_EQ(m.measured_seconds, config.measure_seconds);
  EXPECT_EQ(m.terminals, config.terminals);
}

TEST(SimulationTest, UtilizationScalesWithLoad) {
  SimConfig config = SmallConfig();
  config.terminals = 10;
  SimMetrics light = RunSimulation(config);
  config.terminals = 40;
  SimMetrics heavy = RunSimulation(config);
  EXPECT_GT(heavy.avg_disk_utilization, light.avg_disk_utilization);
  EXPECT_GT(heavy.avg_network_bytes_per_sec,
            light.avg_network_bytes_per_sec);
}

TEST(SimulationTest, NetworkCarriesRoughlyBitRatePerTerminal) {
  SimConfig config = SmallConfig();
  config.terminals = 20;
  SimMetrics m = RunSimulation(config);
  // 20 terminals at 4 Mbit/s = 0.5 MB/s each ~ 10 MB/s + request
  // overhead; allow generous tolerance for block granularity.
  double expected = 20 * config.mpeg.bytes_per_second();
  EXPECT_NEAR(m.avg_network_bytes_per_sec, expected, expected * 0.25);
}

TEST(SimulationTest, NonStripedLayoutRuns) {
  SimConfig config = SmallConfig();
  config.placement = VideoPlacement::kNonStriped;
  config.terminals = 8;
  SimMetrics m = RunSimulation(config);
  EXPECT_GT(m.frames_displayed, 0u);
}

TEST(SimulationTest, NonStripedSkewedLoadImbalancesDisks) {
  SimConfig config = SmallConfig();
  config.terminals = 40;
  config.zipf_z = 1.5;
  config.placement = VideoPlacement::kNonStriped;
  SimMetrics nonstriped = RunSimulation(config);
  config.placement = VideoPlacement::kStriped;
  SimMetrics striped = RunSimulation(config);
  // Striping balances: the min/max utilization spread is much tighter.
  double striped_spread =
      striped.max_disk_utilization - striped.min_disk_utilization;
  double nonstriped_spread = nonstriped.max_disk_utilization -
                             nonstriped.min_disk_utilization;
  EXPECT_GT(nonstriped_spread, striped_spread + 0.1);
}

TEST(SimulationTest, RealTimeSchedulerRuns) {
  SimConfig config = SmallConfig();
  config.disk_sched = server::DiskSchedPolicy::kRealTime;
  config.prefetch = server::PrefetchPolicy::kRealTime;
  SimMetrics m = RunSimulation(config);
  EXPECT_EQ(m.glitches, 0u);
  EXPECT_GT(m.prefetches_issued, 0u);
}

TEST(SimulationTest, DelayedPrefetchRuns) {
  SimConfig config = SmallConfig();
  config.disk_sched = server::DiskSchedPolicy::kRealTime;
  config.prefetch = server::PrefetchPolicy::kDelayed;
  config.replacement = server::ReplacementPolicy::kLovePrefetch;
  config.max_advance_prefetch_sec = 8.0;
  SimMetrics m = RunSimulation(config);
  EXPECT_EQ(m.glitches, 0u);
}

TEST(SimulationTest, GssSchedulerRuns) {
  SimConfig config = SmallConfig();
  config.disk_sched = server::DiskSchedPolicy::kGss;
  config.gss_groups = 3;
  SimMetrics m = RunSimulation(config);
  EXPECT_EQ(m.glitches, 0u);
}

TEST(SimulationTest, PausesDoNotHurtLightLoad) {
  SimConfig config = SmallConfig();
  config.pause_enabled = true;
  SimMetrics m = RunSimulation(config);
  EXPECT_EQ(m.glitches, 0u);
}

TEST(SimulationTest, PiggybackReducesServerLoad) {
  SimConfig config = SmallConfig();
  config.terminals = 40;
  config.videos_per_disk = 1;  // few videos -> groups form often
  config.zipf_z = 1.5;
  // Small enough that the library does not just sit in the buffer pool.
  config.server_memory_bytes = 64LL * 1024 * 1024;
  config.warmup_seconds = 150.0;  // cover the batching delay
  SimMetrics solo = RunSimulation(config);
  config.piggyback_window_sec = 60.0;
  SimMetrics grouped = RunSimulation(config);
  EXPECT_LT(grouped.avg_disk_utilization, solo.avg_disk_utilization);
}

TEST(SimulationTest, SharedReferencesGrowWithSkew) {
  SimConfig config = SmallConfig();
  config.terminals = 40;
  config.server_memory_bytes = 1024LL * 1024 * 1024;
  config.zipf_z = 0.0;
  SimMetrics uniform = RunSimulation(config);
  config.zipf_z = 1.5;
  SimMetrics skewed = RunSimulation(config);
  EXPECT_GT(skewed.shared_reference_ratio(),
            uniform.shared_reference_ratio());
}

TEST(SimulationTest, ComponentAccessorsWork) {
  Simulation simulation(SmallConfig());
  EXPECT_EQ(simulation.num_terminals(), 20);
  EXPECT_EQ(simulation.server().num_nodes(), 2);
  EXPECT_EQ(simulation.library().count(), 16);
  EXPECT_EQ(simulation.layout().total_disks(), 4);
}

}  // namespace
}  // namespace spiffi::vod
