// Whole-system property sweeps, parameterized over the algorithm grid:
// every combination of disk scheduler and page-replacement policy must
// satisfy the same basic invariants.

#include <string>

#include "gtest/gtest.h"
#include "vod/simulation.h"

namespace spiffi::vod {
namespace {

struct GridCase {
  server::DiskSchedPolicy sched;
  server::ReplacementPolicy replacement;
  server::PrefetchPolicy prefetch;
  const char* name;
};

class SystemPropertyTest : public ::testing::TestWithParam<GridCase> {
 protected:
  SimConfig Config(int terminals) const {
    SimConfig config;
    config.num_nodes = 2;
    config.disks_per_node = 2;
    config.video_seconds = 120.0;
    config.server_memory_bytes = 128LL * 1024 * 1024;
    config.terminals = terminals;
    config.start_window_sec = 10.0;
    config.warmup_seconds = 15.0;
    config.measure_seconds = 30.0;
    config.disk_sched = GetParam().sched;
    config.replacement = GetParam().replacement;
    config.prefetch = GetParam().prefetch;
    config.gss_groups = 4;
    return config;
  }
};

// Light load is glitch-free under every algorithm combination.
TEST_P(SystemPropertyTest, LightLoadGlitchFree) {
  SimMetrics m = RunSimulation(Config(12));
  EXPECT_EQ(m.glitches, 0u) << GetParam().name;
}

// Frame conservation: active terminals display at the nominal frame rate
// (30 fps) whenever the run is glitch-free.
TEST_P(SystemPropertyTest, FrameRateConservation) {
  SimConfig config = Config(12);
  SimMetrics m = RunSimulation(config);
  ASSERT_EQ(m.glitches, 0u);
  double expected = 12 * config.mpeg.frames_per_second *
                    config.measure_seconds;
  // Brief priming gaps at video changes cost a few percent.
  EXPECT_GT(static_cast<double>(m.frames_displayed), expected * 0.90);
  EXPECT_LE(static_cast<double>(m.frames_displayed), expected * 1.001);
}

// Determinism: identical configurations produce identical runs.
TEST_P(SystemPropertyTest, Deterministic) {
  SimMetrics a = RunSimulation(Config(25));
  SimMetrics b = RunSimulation(Config(25));
  EXPECT_EQ(a.events_simulated, b.events_simulated) << GetParam().name;
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.buffer_references, b.buffer_references);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
}

// The buffer pool never reports more hits+attaches+misses than
// references, and reference counts match terminal request counts.
TEST_P(SystemPropertyTest, BufferPoolAccountingConsistent) {
  SimMetrics m = RunSimulation(Config(25));
  EXPECT_EQ(m.buffer_hits + m.buffer_attaches + m.buffer_misses,
            m.buffer_references);
}

// Overload produces glitches but never deadlocks (the run completes and
// terminals keep displaying something).
TEST_P(SystemPropertyTest, OverloadDegradesGracefully) {
  SimMetrics m = RunSimulation(Config(150));
  EXPECT_GT(m.glitches, 0u) << GetParam().name;
  EXPECT_GT(m.frames_displayed, 0u);
  EXPECT_GT(m.avg_disk_utilization, 0.9);
}

// Utilizations are sane fractions.
TEST_P(SystemPropertyTest, UtilizationsWithinBounds) {
  SimMetrics m = RunSimulation(Config(40));
  EXPECT_GE(m.avg_disk_utilization, 0.0);
  EXPECT_LE(m.avg_disk_utilization, 1.0 + 1e-9);
  EXPECT_GE(m.min_disk_utilization, 0.0);
  EXPECT_LE(m.max_disk_utilization, 1.0 + 1e-9);
  EXPECT_LE(m.min_disk_utilization, m.max_disk_utilization + 1e-12);
  EXPECT_GE(m.avg_cpu_utilization, 0.0);
  EXPECT_LE(m.avg_cpu_utilization, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmGrid, SystemPropertyTest,
    ::testing::Values(
        GridCase{server::DiskSchedPolicy::kFcfs,
                 server::ReplacementPolicy::kGlobalLru,
                 server::PrefetchPolicy::kNone, "fcfs_lru_none"},
        GridCase{server::DiskSchedPolicy::kElevator,
                 server::ReplacementPolicy::kGlobalLru,
                 server::PrefetchPolicy::kFifo, "elevator_lru_fifo"},
        GridCase{server::DiskSchedPolicy::kElevator,
                 server::ReplacementPolicy::kLovePrefetch,
                 server::PrefetchPolicy::kFifo, "elevator_love_fifo"},
        GridCase{server::DiskSchedPolicy::kRoundRobin,
                 server::ReplacementPolicy::kLovePrefetch,
                 server::PrefetchPolicy::kFifo, "rr_love_fifo"},
        GridCase{server::DiskSchedPolicy::kGss,
                 server::ReplacementPolicy::kLovePrefetch,
                 server::PrefetchPolicy::kFifo, "gss_love_fifo"},
        GridCase{server::DiskSchedPolicy::kRealTime,
                 server::ReplacementPolicy::kGlobalLru,
                 server::PrefetchPolicy::kRealTime, "rt_lru_rt"},
        GridCase{server::DiskSchedPolicy::kRealTime,
                 server::ReplacementPolicy::kLovePrefetch,
                 server::PrefetchPolicy::kRealTime, "rt_love_rt"},
        GridCase{server::DiskSchedPolicy::kRealTime,
                 server::ReplacementPolicy::kLovePrefetch,
                 server::PrefetchPolicy::kDelayed, "rt_love_delayed"}),
    [](const ::testing::TestParamInfo<GridCase>& info) {
      return info.param.name;
    });

// Stripe-size sweep: the system stays correct (glitch-free at light
// load, deterministic) at every stripe size the paper tests.
class StripePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(StripePropertyTest, LightLoadGlitchFreeAtEveryStripeSize) {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 10;
  config.stripe_bytes = static_cast<std::int64_t>(GetParam()) * 1024;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  ASSERT_EQ(config.Validate(), "");
  SimMetrics m = RunSimulation(config);
  EXPECT_EQ(m.glitches, 0u);
  EXPECT_GT(m.frames_displayed, 0u);
}

INSTANTIATE_TEST_SUITE_P(StripeSizes, StripePropertyTest,
                         ::testing::Values(128, 256, 512, 1024),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::to_string(info.param) + "KB";
                         });

// Seed sweep: different seeds all satisfy the light-load invariant and
// produce distinct event streams.
class SeedPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SeedPropertyTest, LightLoadInvariantAcrossSeeds) {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 15;
  config.seed = static_cast<std::uint64_t>(GetParam());
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  SimMetrics m = RunSimulation(config);
  EXPECT_EQ(m.glitches, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedPropertyTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace spiffi::vod
