#include "client/stream_share.h"

#include "gtest/gtest.h"
#include "sim/process.h"

namespace spiffi::client {
namespace {

TEST(PiggybackTest, ZeroWindowAlwaysLeadsImmediately) {
  sim::Environment env;
  StreamShareManager manager(&env, 0.0);
  auto a = manager.Arrange(1);
  auto b = manager.Arrange(1);
  EXPECT_EQ(a.role, StreamShareManager::Role::kLeader);
  EXPECT_EQ(b.role, StreamShareManager::Role::kLeader);
  EXPECT_DOUBLE_EQ(a.start_time, 0.0);
}

TEST(PiggybackTest, SecondRequestInWindowFollows) {
  sim::Environment env;
  StreamShareManager manager(&env, 300.0);
  auto leader = manager.Arrange(5);
  EXPECT_EQ(leader.role, StreamShareManager::Role::kLeader);
  EXPECT_DOUBLE_EQ(leader.start_time, 300.0);
  auto follower = manager.Arrange(5);
  EXPECT_EQ(follower.role, StreamShareManager::Role::kFollower);
  EXPECT_DOUBLE_EQ(follower.start_time, 300.0);  // same group start
  EXPECT_EQ(manager.groups_formed(), 1u);
  EXPECT_EQ(manager.followers_attached(), 1u);
}

TEST(PiggybackTest, DifferentVideosFormSeparateGroups) {
  sim::Environment env;
  StreamShareManager manager(&env, 300.0);
  auto a = manager.Arrange(1);
  auto b = manager.Arrange(2);
  EXPECT_EQ(a.role, StreamShareManager::Role::kLeader);
  EXPECT_EQ(b.role, StreamShareManager::Role::kLeader);
  EXPECT_EQ(manager.groups_formed(), 2u);
}

TEST(PiggybackTest, GroupClosesAfterWindow) {
  sim::Environment env;
  StreamShareManager manager(&env, 10.0);
  manager.Arrange(3);  // group starts at t=10
  bool checked = false;
  env.Spawn([](sim::Environment* e, StreamShareManager* m,
               bool* done) -> sim::Process {
    co_await e->Hold(11.0);  // past the group's start time
    auto late = m->Arrange(3);
    EXPECT_EQ(late.role, StreamShareManager::Role::kLeader);
    EXPECT_DOUBLE_EQ(late.start_time, 21.0);  // now (11) + window (10)
    *done = true;
  }(&env, &manager, &checked));
  env.Run();
  EXPECT_TRUE(checked);
}

TEST(PiggybackTest, JoinAtExactStartTimeStillFollows) {
  sim::Environment env;
  StreamShareManager manager(&env, 10.0);
  manager.Arrange(3);
  bool checked = false;
  env.Spawn([](sim::Environment* e, StreamShareManager* m,
               bool* done) -> sim::Process {
    co_await e->Hold(10.0);
    auto join = m->Arrange(3);
    EXPECT_EQ(join.role, StreamShareManager::Role::kFollower);
    *done = true;
  }(&env, &manager, &checked));
  env.Run();
  EXPECT_TRUE(checked);
}

TEST(PiggybackTest, ManyFollowersOneGroup) {
  sim::Environment env;
  StreamShareManager manager(&env, 300.0);
  manager.Arrange(7);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(manager.Arrange(7).role, StreamShareManager::Role::kFollower);
  }
  EXPECT_EQ(manager.groups_formed(), 1u);
  EXPECT_EQ(manager.followers_attached(), 20u);
}

}  // namespace
}  // namespace spiffi::client
