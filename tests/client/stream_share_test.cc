// Stream-sharing manager: group lifecycle (expiry/pruning), role
// assignment, patch-length math at the window boundaries, leader
// handoff, and bit-identity of full shared-mode runs across job counts.

#include "client/stream_share.h"

#include <vector>

#include "gtest/gtest.h"
#include "sim/process.h"
#include "vod/capacity.h"
#include "vod/runner.h"
#include "vod/simulation.h"

namespace spiffi::client {
namespace {

using Role = StreamShareManager::Role;

// Records the callbacks a terminal would receive.
class RecordingMember : public StreamShareMember {
 public:
  void OnPromotedToLeader(int video) override {
    promotions.push_back(video);
  }
  void OnShareGroupDisbanded(int video) override {
    disbands.push_back(video);
  }
  std::vector<int> promotions;
  std::vector<int> disbands;
};

// Runs `body` at sim time `at` and drives the environment to completion.
template <typename Fn>
void RunAt(sim::Environment* env, double at, Fn body) {
  env->Spawn([](sim::Environment* e, double when,
                Fn fn) -> sim::Process {
    co_await e->Hold(when - e->now());
    fn();
  }(env, at, std::move(body)));
  env->Run();
}

TEST(StreamShareTest, FollowerAtExactStartPatcherAfterwards) {
  sim::Environment env;
  StreamShareManager manager(&env, /*window_sec=*/10.0,
                             /*patch_window_sec=*/30.0);
  RecordingMember leader, mirror, patcher;
  auto lead = manager.Arrange(4, 0, 600.0, &leader);
  EXPECT_EQ(lead.role, Role::kLeader);
  EXPECT_DOUBLE_EQ(lead.start_time, 10.0);

  RunAt(&env, 10.0, [&] {
    // t == start: still a zero-offset follower, not a patcher.
    auto join = manager.Arrange(4, 1, 600.0, &mirror);
    EXPECT_EQ(join.role, Role::kFollower);
    EXPECT_DOUBLE_EQ(join.patch_seconds, 0.0);
    EXPECT_EQ(join.group_id, lead.group_id);
  });
  RunAt(&env, 25.0, [&] {
    auto join = manager.Arrange(4, 2, 600.0, &patcher);
    EXPECT_EQ(join.role, Role::kPatcher);
    EXPECT_DOUBLE_EQ(join.patch_seconds, 15.0);  // now - group start
    EXPECT_DOUBLE_EQ(join.start_time, 10.0);
  });
  EXPECT_EQ(manager.stats().followers_attached, 1u);
  EXPECT_EQ(manager.stats().patchers_attached, 1u);
  EXPECT_DOUBLE_EQ(manager.stats().patch_seconds_total, 15.0);
}

TEST(StreamShareTest, PatchLengthAtWindowBoundaries) {
  sim::Environment env;
  StreamShareManager manager(&env, /*window_sec=*/0.0,
                             /*patch_window_sec=*/20.0);
  RecordingMember m0, m1, m2, m3;
  // No batching window: the group starts immediately at t=0.
  auto lead = manager.Arrange(7, 0, 600.0, &m0);
  EXPECT_EQ(lead.role, Role::kLeader);
  EXPECT_DOUBLE_EQ(lead.start_time, 0.0);

  const double eps = 1e-6;
  RunAt(&env, 20.0 - eps, [&] {
    auto join = manager.Arrange(7, 1, 600.0, &m1);
    EXPECT_EQ(join.role, Role::kPatcher);
    EXPECT_DOUBLE_EQ(join.patch_seconds, 20.0 - eps);
  });
  RunAt(&env, 20.0, [&] {
    // Exactly at the patch horizon: still inside (offset <= window).
    auto join = manager.Arrange(7, 2, 600.0, &m2);
    EXPECT_EQ(join.role, Role::kPatcher);
    EXPECT_DOUBLE_EQ(join.patch_seconds, 20.0);
  });
  RunAt(&env, 20.5, [&] {
    // Past the horizon: a fresh group forms (and starts immediately).
    auto join = manager.Arrange(7, 3, 600.0, &m3);
    EXPECT_EQ(join.role, Role::kLeader);
    EXPECT_DOUBLE_EQ(join.start_time, 20.5);
    EXPECT_NE(join.group_id, lead.group_id);
  });
}

TEST(StreamShareTest, LeaderHandoffPromotesFirstMirrorNotPatcher) {
  sim::Environment env;
  StreamShareManager manager(&env, 10.0, 30.0);
  RecordingMember early_patcher, mirror_a, mirror_b;
  auto lead = manager.Arrange(3, 0, 600.0, nullptr);
  RunAt(&env, 5.0, [&] {
    manager.Arrange(3, 1, 600.0, &mirror_a);
    manager.Arrange(3, 2, 600.0, &mirror_b);
  });
  RunAt(&env, 15.0, [&] {
    manager.Arrange(3, 4, 600.0, &early_patcher);
    manager.LeaderDeparting(3, lead.group_id, 0);
  });
  // Join order decides; the patcher is never promoted.
  EXPECT_EQ(manager.stats().leader_handoffs, 1u);
  EXPECT_EQ(mirror_a.promotions, std::vector<int>{3});
  EXPECT_TRUE(mirror_b.promotions.empty());
  EXPECT_TRUE(early_patcher.promotions.empty());

  // Second departure (the promoted mirror): the next mirror takes over.
  RunAt(&env, 16.0, [&] { manager.LeaderDeparting(3, lead.group_id, 1); });
  EXPECT_EQ(mirror_b.promotions, std::vector<int>{3});

  // Third departure: only the patcher remains -> disband, patcher told.
  RunAt(&env, 17.0, [&] { manager.LeaderDeparting(3, lead.group_id, 2); });
  EXPECT_EQ(manager.stats().groups_disbanded, 1u);
  EXPECT_EQ(early_patcher.disbands, std::vector<int>{3});
  EXPECT_EQ(manager.open_group_count(), 0u);
}

TEST(StreamShareTest, StaleGroupIdDepartureIsNoOp) {
  sim::Environment env;
  StreamShareManager manager(&env, 5.0, 0.0);
  auto first = manager.Arrange(9, 0, 600.0, nullptr);
  RunAt(&env, 50.0, [&] {
    // The first group expired; a new one takes the slot.
    auto second = manager.Arrange(9, 1, 600.0, nullptr);
    EXPECT_NE(second.group_id, first.group_id);
    // The displaced leader's departure must not touch the new group.
    manager.LeaderDeparting(9, first.group_id, 0);
  });
  EXPECT_EQ(manager.stats().leader_handoffs, 0u);
  EXPECT_EQ(manager.stats().groups_disbanded, 0u);
  EXPECT_EQ(manager.open_group_count(), 1u);
}

TEST(StreamShareTest, MemberDepartureRemovesOnlyThatTerminal) {
  sim::Environment env;
  StreamShareManager manager(&env, 10.0, 0.0);
  RecordingMember a, b;
  auto lead = manager.Arrange(2, 0, 600.0, nullptr);
  manager.Arrange(2, 1, 600.0, &a);
  manager.Arrange(2, 2, 600.0, &b);
  manager.MemberDeparting(2, lead.group_id, 1);
  RunAt(&env, 1.0, [&] { manager.LeaderDeparting(2, lead.group_id, 0); });
  EXPECT_TRUE(a.promotions.empty());  // departed before the handoff
  EXPECT_EQ(b.promotions, std::vector<int>{2});
}

TEST(StreamShareTest, ExpiredGroupsArePruned) {
  sim::Environment env;
  StreamShareManager manager(&env, 5.0, 0.0);
  // Anonymous groups (legacy piggyback callers) expire at start_time.
  for (int v = 0; v < 8; ++v) manager.Arrange(v);
  EXPECT_EQ(manager.open_group_count(), 8u);
  RunAt(&env, 100.0, [&] {
    EXPECT_EQ(manager.PruneExpired(), 8u);
    EXPECT_EQ(manager.open_group_count(), 0u);
  });
  EXPECT_EQ(manager.stats().groups_pruned, 8u);
}

TEST(StreamShareTest, AmortizedSweepBoundsOpenGroups) {
  // Regression for the unbounded open_groups_ growth of the retired
  // piggyback stub: arranging many distinct videos over a long run
  // must not accumulate one dead entry per video ever requested.
  sim::Environment env;
  StreamShareManager manager(&env, 5.0, 0.0);
  env.Spawn([](sim::Environment* e,
               StreamShareManager* m) -> sim::Process {
    for (int v = 0; v < 1000; ++v) {
      m->Arrange(v);
      co_await e->Hold(10.0);  // each group is long expired by the next
    }
  }(&env, &manager));
  env.Run();
  // The periodic sweep (every 64 arranges) keeps the table near-empty;
  // without it this would sit at 1000.
  EXPECT_LE(manager.open_group_count(), 64u);
  EXPECT_GE(manager.stats().groups_pruned, 936u);
}

TEST(StreamShareTest, GroupWithLiveMembersSurvivesUntilStreamEnd) {
  sim::Environment env;
  StreamShareManager manager(&env, 5.0, 0.0);
  RecordingMember follower;
  manager.Arrange(1, 0, /*duration_sec=*/100.0, &follower);
  manager.Arrange(1, 1, 100.0, &follower);
  RunAt(&env, 50.0, [&] {
    // Past joinability but the stream (ends at 105) still needs handoff
    // bookkeeping for its follower.
    EXPECT_EQ(manager.PruneExpired(), 0u);
    EXPECT_EQ(manager.open_group_count(), 1u);
  });
  RunAt(&env, 106.0, [&] { EXPECT_EQ(manager.PruneExpired(), 1u); });
}

// --- End-to-end determinism of shared-mode runs ---

vod::SimConfig SharedTinyConfig() {
  vod::SimConfig config;
  config.num_nodes = 1;
  config.disks_per_node = 2;
  // Videos short enough that terminals re-request during the
  // measurement window, so groups actually form after the stats reset.
  config.video_seconds = 30.0;
  config.videos_per_disk = 4;
  config.server_memory_bytes = 128LL * 1024 * 1024;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 40.0;
  config.terminals = 30;
  config.piggyback_window_sec = 8.0;
  config.patch_window_sec = 10.0;
  config.prefix_cache_fraction = 0.25;
  config.prefix_recompute_sec = 5.0;
  return config;
}

void ExpectShareBitIdentical(const vod::SimMetrics& a,
                             const vod::SimMetrics& b) {
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.frames_displayed, b.frames_displayed);
  EXPECT_EQ(a.videos_completed, b.videos_completed);
  EXPECT_EQ(a.events_simulated, b.events_simulated);
  EXPECT_EQ(a.buffer_references, b.buffer_references);
  EXPECT_EQ(a.buffer_hits, b.buffer_hits);
  EXPECT_EQ(a.disk_reads, b.disk_reads);
  EXPECT_EQ(a.avg_response_ms, b.avg_response_ms);
  EXPECT_EQ(a.avg_disk_utilization, b.avg_disk_utilization);
  EXPECT_EQ(a.share_groups, b.share_groups);
  EXPECT_EQ(a.share_followers, b.share_followers);
  EXPECT_EQ(a.share_patches, b.share_patches);
  EXPECT_EQ(a.share_patch_seconds, b.share_patch_seconds);
  EXPECT_EQ(a.share_handoffs, b.share_handoffs);
  EXPECT_EQ(a.prefix_hits, b.prefix_hits);
  EXPECT_EQ(a.prefix_pinned_pages, b.prefix_pinned_pages);
}

TEST(StreamShareTest, SharedRunsBitIdenticalAcrossJobCounts) {
  std::vector<vod::SimConfig> batch;
  for (int i = 0; i < 4; ++i) {
    vod::SimConfig config = SharedTinyConfig();
    config.seed = 40 + i;
    config.terminals = 20 + 5 * i;
    batch.push_back(config);
  }
  vod::ParallelRunner serial(1);
  vod::ParallelRunner parallel(4);
  std::vector<vod::SimMetrics> at_one = serial.RunAll(batch);
  std::vector<vod::SimMetrics> at_four = parallel.RunAll(batch);
  ASSERT_EQ(at_one.size(), batch.size());
  ASSERT_EQ(at_four.size(), batch.size());
  bool saw_sharing = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    ExpectShareBitIdentical(at_one[i], at_four[i]);
    saw_sharing = saw_sharing || at_one[i].share_groups > 0;
  }
  // The comparison only means something if sharing actually engaged.
  EXPECT_TRUE(saw_sharing);
}

TEST(StreamShareTest, SharedRunEngagesAllThreeMechanisms) {
  vod::SimConfig config = SharedTinyConfig();
  config.terminals = 40;
  vod::SimMetrics metrics = vod::RunSimulation(config);
  EXPECT_GT(metrics.share_groups, 0u);
  EXPECT_GT(metrics.share_followers + metrics.share_patches, 0u);
  EXPECT_GT(metrics.prefix_pinned_pages, 0);
}

}  // namespace
}  // namespace spiffi::client
