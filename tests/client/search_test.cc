// Tests for the §8.1 interactive features: in-video jumps (rewind /
// fast-forward by seek) and skip-based visual search.

#include <memory>
#include <vector>

#include "client/terminal.h"
#include "gtest/gtest.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"

namespace spiffi::client {
namespace {

using server::Message;

// Instant-ish fake server: replies after a fixed delay.
class EchoServer final : public server::NodeDirectory,
                         public server::MessageSink {
 public:
  explicit EchoServer(sim::Environment* env) : env_(env) {}
  server::MessageSink* node_sink(int) override { return this; }
  class Deliver final : public sim::EventHandler {
   public:
    Deliver(Message m, server::MessageSink* sink) : m_(m), sink_(sink) {}
    void OnEvent(std::uint64_t) override { sink_->OnMessage(m_); }

   private:
    Message m_;
    server::MessageSink* sink_;
  };

  void OnMessage(const Message& request) override {
    requests.push_back(request);
    Message reply = request;
    reply.kind = Message::Kind::kReadReply;
    deliveries_.push_back(
        std::make_unique<Deliver>(reply, request.reply_to));
    env_->ScheduleAfter(0.01, deliveries_.back().get());
  }
  std::vector<Message> requests;

 private:
  sim::Environment* env_;
  std::vector<std::unique_ptr<Deliver>> deliveries_;
};

class SearchTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBlock = 512 * 1024;

  void Build(TerminalParams params = TerminalParams(),
             double video_seconds = 120.0) {
    mpeg::ZipfDistribution popularity(1, 0.0);
    library_ = std::make_unique<mpeg::VideoLibrary>(
        1, video_seconds, mpeg::MpegParams(), popularity, 1);
    layout_ = std::make_unique<layout::StripedLayout>(
        1, 1, kBlock,
        std::vector<std::int64_t>{library_->NumBlocks(0, kBlock)});
    network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
    fake_ = std::make_unique<EchoServer>(&env_);
    params.random_initial_position = false;
    terminal_ = std::make_unique<Terminal>(
        &env_, 0, params, network_.get(), fake_.get(), library_.get(),
        layout_.get(), sim::Rng(7), 0.0);
  }

  sim::Environment env_;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::StripedLayout> layout_;
  std::unique_ptr<hw::Network> network_;
  std::unique_ptr<EchoServer> fake_;
  std::unique_ptr<Terminal> terminal_;
};

TEST_F(SearchTest, JumpForwardMovesPosition) {
  Build();
  env_.RunUntil(5.0);
  ASSERT_EQ(terminal_->state(), Terminal::State::kPlaying);
  terminal_->JumpTo(60.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPriming);
  env_.RunUntil(6.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_NEAR(terminal_->PositionSeconds(), 60.0, 2.0);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
}

TEST_F(SearchTest, JumpBackwardRewinds) {
  Build();
  env_.RunUntil(30.0);
  terminal_->JumpTo(5.0);
  env_.RunUntil(31.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_NEAR(terminal_->PositionSeconds(), 5.0 + 0.5, 1.5);
}

TEST_F(SearchTest, StaleRepliesAfterJumpAreDiscarded) {
  Build();
  // Jump while the prime requests are still in flight.
  env_.RunUntil(0.005);
  ASSERT_GT(terminal_->inflight_bytes(), 0);
  std::uint64_t before = terminal_->stats().stale_replies;
  terminal_->JumpTo(90.0);  // abandons in-flight requests
  env_.RunUntil(2.0);
  // The abandoned stream had data in flight; its replies were dropped.
  EXPECT_GT(terminal_->stats().stale_replies, before);
  // And the byte accounting stayed consistent: buffer refilled cleanly.
  EXPECT_EQ(terminal_->stats().glitches, 0u);
  EXPECT_GE(terminal_->occupied_bytes(), 0);
  EXPECT_LE(terminal_->occupied_bytes() + terminal_->inflight_bytes(),
            2 * 1024 * 1024);
}

TEST_F(SearchTest, VisualSearchAdvancesFasterThanPlayback) {
  Build();
  env_.RunUntil(5.0);
  double position = terminal_->PositionSeconds();
  terminal_->BeginVisualSearch(/*forward=*/true, /*show=*/1.0,
                               /*skip=*/7.0, /*duration=*/10.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kSearching);
  env_.RunUntil(20.0);
  // After the search the terminal resumed normal playback well ahead of
  // where 15 s of normal playback would have reached (8x speed-ish).
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_GT(terminal_->PositionSeconds(), position + 30.0);
  EXPECT_GT(terminal_->stats().search_segments, 3u);
  EXPECT_GT(terminal_->stats().search_frames, 3u * 25u);
}

TEST_F(SearchTest, VisualSearchReadsOnlyShownSegments) {
  Build();
  env_.RunUntil(5.0);
  std::size_t before = fake_->requests.size();
  terminal_->BeginVisualSearch(true, 1.0, 7.0, 8.0);
  env_.RunUntil(13.5);
  std::size_t during = fake_->requests.size() - before;
  // ~8 s of search at 1-in-8 skip shows ~8 segments of ~1 s => roughly
  // 8-16 block requests; 8 s of normal playback with re-prime would be
  // comparable, but the search covered ~64 s of movie. The key check:
  // far fewer blocks than the covered span (64 blocks).
  EXPECT_LT(during, 30u);
  EXPECT_GE(during, 6u);
}

TEST_F(SearchTest, BackwardSearchRewinds) {
  Build();
  env_.RunUntil(60.0);
  double position = terminal_->PositionSeconds();
  terminal_->BeginVisualSearch(/*forward=*/false, 1.0, 7.0, 10.0);
  env_.RunUntil(75.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_LT(terminal_->PositionSeconds(), position - 20.0);
}

TEST_F(SearchTest, ForwardSearchOffTheEndFinishesVideo) {
  Build(TerminalParams(), /*video_seconds=*/30.0);
  env_.RunUntil(20.0);
  std::uint64_t completed = terminal_->stats().videos_completed;
  terminal_->BeginVisualSearch(true, 1.0, 7.0, 60.0);
  env_.RunUntil(28.0);
  // The search hit the end of the 30 s video and the terminal moved on
  // (the library has one video, so it restarted it).
  EXPECT_GT(terminal_->stats().videos_completed, completed);
}

TEST_F(SearchTest, BackwardSearchClampsAtStart) {
  Build();
  env_.RunUntil(10.0);
  terminal_->BeginVisualSearch(false, 1.0, 7.0, 60.0);
  // The rewind runs off the front of the movie after two segments
  // (10 -> 2 -> -6) and resumes normal playback near the beginning.
  env_.RunUntil(14.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_LT(terminal_->PositionSeconds(), 6.0);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
}

TEST_F(SearchTest, RandomSearchesViaParamsRun) {
  TerminalParams params;
  params.search_enabled = true;
  params.searches_per_video_mean = 5.0;
  params.search_duration_mean_sec = 5.0;
  Build(params, /*video_seconds=*/60.0);
  env_.RunUntil(120.0);
  EXPECT_GT(terminal_->stats().searches, 0u);
  EXPECT_GT(terminal_->stats().videos_completed, 0u);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
}

}  // namespace
}  // namespace spiffi::client
