// Terminal state-machine tests against a controllable fake server.

#include "client/terminal.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "vod/admission.h"

namespace spiffi::client {
namespace {

using server::Message;

// A fake server node that replies after a configurable delay, with an
// optional per-block hold to create gaps/glitches.
class FakeServer final : public server::NodeDirectory,
                         public server::MessageSink {
 public:
  FakeServer(sim::Environment* env, hw::Network* network)
      : env_(env), network_(network) {}

  server::MessageSink* node_sink(int) override { return this; }

  void OnMessage(const Message& request) override {
    requests.push_back(request);
    if (held_blocks.count(request.block) > 0) {
      held.push_back(request);
      return;
    }
    Reply(request);
  }

  // Deliver after the configured service delay; delivery objects are
  // owned by the fake (freed at fixture teardown).
  class Deliver final : public sim::EventHandler {
   public:
    Deliver(Message m, server::MessageSink* sink) : m_(m), sink_(sink) {}
    void OnEvent(std::uint64_t) override { sink_->OnMessage(m_); }

   private:
    Message m_;
    server::MessageSink* sink_;
  };

  void Reply(const Message& request) {
    Message reply = request;
    reply.kind = Message::Kind::kReadReply;
    deliveries_.push_back(
        std::make_unique<Deliver>(reply, request.reply_to));
    env_->ScheduleAfter(reply_delay, deliveries_.back().get());
  }

  void ReleaseHeld() {
    for (const Message& request : held) Reply(request);
    held.clear();
    held_blocks.clear();
  }

  double reply_delay = 0.01;
  std::set<std::int64_t> held_blocks;
  std::vector<Message> requests;
  std::vector<Message> held;

 private:
  sim::Environment* env_;
  hw::Network* network_;
  std::vector<std::unique_ptr<Deliver>> deliveries_;
};

class TerminalTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBlock = 512 * 1024;

  void Build(TerminalParams params = TerminalParams(),
             double video_seconds = 30.0,
             StreamShareManager* share = nullptr) {
    mpeg::ZipfDistribution popularity(2, 0.0);
    library_ = std::make_unique<mpeg::VideoLibrary>(
        2, video_seconds, mpeg::MpegParams(), popularity, 1);
    std::vector<std::int64_t> blocks;
    for (int v = 0; v < 2; ++v) {
      blocks.push_back(library_->NumBlocks(v, kBlock));
    }
    layout_ = std::make_unique<layout::StripedLayout>(1, 1, kBlock,
                                                      std::move(blocks));
    network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
    fake_ = std::make_unique<FakeServer>(&env_, network_.get());
    params.random_initial_position = false;  // deterministic tests
    terminal_ = std::make_unique<Terminal>(
        &env_, 0, params, network_.get(), fake_.get(), library_.get(),
        layout_.get(), sim::Rng(7), /*start_time=*/0.0, share);
  }

  sim::Environment env_;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::StripedLayout> layout_;
  std::unique_ptr<hw::Network> network_;
  std::unique_ptr<FakeServer> fake_;
  std::unique_ptr<Terminal> terminal_;
};

TEST_F(TerminalTest, PrimesBuffersBeforeDisplay) {
  Build();
  // 2 MB memory / 512 KB blocks -> primes with 4 blocks.
  env_.RunUntil(0.005);  // requests sent, replies not yet arrived
  EXPECT_EQ(terminal_->state(), Terminal::State::kPriming);
  EXPECT_EQ(fake_->requests.size(), 4u);
  env_.RunUntil(0.5);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_GT(terminal_->stats().frames_displayed, 0u);
}

TEST_F(TerminalTest, RequestsCarryIncreasingDeadlines) {
  Build();
  env_.RunUntil(0.005);
  ASSERT_GE(fake_->requests.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(fake_->requests[i].deadline, fake_->requests[i - 1].deadline);
  }
  // Block k's deadline is about k seconds out (512 KB ~ 1 s of video).
  EXPECT_NEAR(fake_->requests[3].deadline - fake_->requests[0].deadline,
              3.0, 1.0);
}

TEST_F(TerminalTest, SteadyStateKeepsBufferNearlyFull) {
  Build();
  env_.RunUntil(10.0);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
  // Occupied + in-flight stays within a block of the 2 MB budget.
  EXPECT_GE(terminal_->occupied_bytes() + terminal_->inflight_bytes(),
            2 * 1024 * 1024 - kBlock);
  // ~30 fps of frames displayed over ~9.5 s of playback.
  EXPECT_NEAR(static_cast<double>(terminal_->stats().frames_displayed),
              9.7 * 30.0, 30.0);
}

TEST_F(TerminalTest, GlitchWhenBlockWithheld) {
  Build();
  fake_->held_blocks.insert(6);  // block 6 never arrives (for a while)
  env_.RunUntil(10.0);
  EXPECT_GE(terminal_->stats().glitches, 1u);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPriming);
  // Display stopped at the boundary of block 6.
  std::uint64_t frames_at_glitch = terminal_->stats().frames_displayed;
  // Release the block: the terminal re-primes and resumes.
  fake_->ReleaseHeld();
  env_.RunUntil(12.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_GT(terminal_->stats().frames_displayed, frames_at_glitch);
  EXPECT_EQ(terminal_->stats().glitches, 1u);  // no repeat glitch
}

TEST_F(TerminalTest, ReprimeFillsWholeBufferBeforeRestart) {
  Build();
  fake_->held_blocks.insert(6);
  env_.RunUntil(10.0);
  ASSERT_GE(terminal_->stats().glitches, 1u);
  fake_->ReleaseHeld();
  env_.RunUntil(10.5);
  // After restart the buffer is full again (4 blocks).
  EXPECT_GE(terminal_->occupied_bytes() + terminal_->inflight_bytes(),
            2 * 1024 * 1024 - kBlock);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
}

TEST_F(TerminalTest, FinishesVideoAndStartsNext) {
  Build(TerminalParams(), /*video_seconds=*/10.0);
  env_.RunUntil(25.0);
  EXPECT_GE(terminal_->stats().videos_completed, 2u);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
}

TEST_F(TerminalTest, OutOfOrderArrivalsHandled) {
  Build();
  // Hold block 1 so block 2 and 3 arrive first, then release.
  fake_->held_blocks.insert(1);
  env_.RunUntil(0.2);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPriming);
  fake_->ReleaseHeld();
  env_.RunUntil(1.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
}

TEST_F(TerminalTest, SlowServerCausesGlitchThenRecovery) {
  Build();
  env_.RunUntil(5.0);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
  fake_->reply_delay = 3.0;  // every block now takes 3 s
  env_.RunUntil(20.0);
  EXPECT_GE(terminal_->stats().glitches, 1u);
  fake_->reply_delay = 0.01;
  std::uint64_t glitches = terminal_->stats().glitches;
  env_.RunUntil(29.0);
  EXPECT_GT(terminal_->stats().frames_displayed, 0u);
  // Fast server again: glitch count stabilizes.
  EXPECT_LE(terminal_->stats().glitches, glitches + 1);
}

TEST_F(TerminalTest, PauseStopsDisplayWithoutGlitch) {
  TerminalParams params;
  params.pause_enabled = true;
  params.pauses_per_video_mean = 10.0;  // make pausing near-certain
  params.pause_duration_mean_sec = 0.5;
  Build(params, /*video_seconds=*/20.0);
  env_.RunUntil(60.0);
  EXPECT_GT(terminal_->stats().pauses, 0u);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
  EXPECT_GT(terminal_->stats().videos_completed, 0u);
}

TEST_F(TerminalTest, MemoryLimitsOutstandingRequests) {
  TerminalParams params;
  params.memory_bytes = 1024 * 1024;  // only 2 blocks
  Build(params);
  env_.RunUntil(0.005);
  EXPECT_EQ(fake_->requests.size(), 2u);
}

TEST_F(TerminalTest, ResponseTimeRecorded) {
  Build();
  env_.RunUntil(2.0);
  EXPECT_GT(terminal_->stats().response_time.count(), 0u);
  // The fake server replies after reply_delay (10 ms) plus the request's
  // small wire delay.
  EXPECT_NEAR(terminal_->stats().response_time.mean(), 0.010, 0.002);
}

TEST_F(TerminalTest, ResetStatsClearsCounters) {
  Build();
  env_.RunUntil(2.0);
  terminal_->ResetStats();
  EXPECT_EQ(terminal_->stats().frames_displayed, 0u);
  EXPECT_EQ(terminal_->stats().requests_sent, 0u);
}

TEST(TerminalDeathTest, ZeroTimeGlitchLoopFailsFast) {
  // Regression for the fail-fast check in HandleGlitch: a terminal whose
  // buffer is full of arrived blocks but still too small to hold one
  // displayable frame would glitch forever in zero simulated time. The
  // check must abort instead of looping.
  auto run = [] {
    sim::Environment env;
    mpeg::ZipfDistribution popularity(1, 0.0);
    mpeg::VideoLibrary library(1, 10.0, mpeg::MpegParams(), popularity, 1);
    constexpr std::int64_t kTinyBlock = 4096;
    layout::StripedLayout layout(
        1, 1, kTinyBlock,
        std::vector<std::int64_t>{library.NumBlocks(0, kTinyBlock)});
    hw::Network network(&env, hw::NetworkParams());
    FakeServer fake(&env, &network);
    TerminalParams params;
    params.block_bytes = kTinyBlock;
    params.memory_bytes = 2 * kTinyBlock;  // far below one I-frame
    params.random_initial_position = false;
    Terminal terminal(&env, 0, params, &network, &fake, &library, &layout,
                      sim::Rng(7), /*start_time=*/0.0);
    env.RunUntil(5.0);
  };
  EXPECT_DEATH(run(), "inflight_bytes_");
}

TEST_F(TerminalTest, PiggybackFollowerSendsNoRequests) {
  // Two terminals, one manager with a 5 s window: the second terminal
  // must follow the first and never touch the server.
  mpeg::ZipfDistribution popularity(1, 0.0);  // one video: guaranteed match
  library_ = std::make_unique<mpeg::VideoLibrary>(
      1, 20.0, mpeg::MpegParams(), popularity, 1);
  layout_ = std::make_unique<layout::StripedLayout>(
      1, 1, kBlock,
      std::vector<std::int64_t>{library_->NumBlocks(0, kBlock)});
  network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
  fake_ = std::make_unique<FakeServer>(&env_, network_.get());
  StreamShareManager manager(&env_, 5.0);
  TerminalParams params;
  params.random_initial_position = false;
  Terminal leader(&env_, 0, params, network_.get(), fake_.get(),
                  library_.get(), layout_.get(), sim::Rng(1), 0.0,
                  &manager);
  Terminal follower(&env_, 1, params, network_.get(), fake_.get(),
                    library_.get(), layout_.get(), sim::Rng(2), 1.0,
                    &manager);
  env_.RunUntil(10.0);
  EXPECT_EQ(leader.state(), Terminal::State::kPlaying);
  EXPECT_EQ(follower.state(), Terminal::State::kFollowing);
  EXPECT_EQ(follower.stats().requests_sent, 0u);
  EXPECT_GT(leader.stats().requests_sent, 0u);
  EXPECT_EQ(manager.followers_attached(), 1u);
  // The follower finishes its video at leader start + duration.
  env_.RunUntil(26.0);
  EXPECT_GE(follower.stats().videos_completed, 1u);
}

TEST_F(TerminalTest, DeferredAdmissionAfterFollowEndReentersTheGate) {
  // Regression: a pure follower never calls StartVideo, so its
  // pending_video_ used to survive the follow end — and a deferred
  // admission retry (which reused kStartToken) then replayed the
  // just-finished video directly, bypassing TryAdmit entirely. The
  // deferred retry must instead go back through ChooseNextVideo.
  mpeg::ZipfDistribution popularity(1, 0.0);  // one video: guaranteed match
  library_ = std::make_unique<mpeg::VideoLibrary>(
      1, 20.0, mpeg::MpegParams(), popularity, 1);
  layout_ = std::make_unique<layout::StripedLayout>(
      1, 1, kBlock,
      std::vector<std::int64_t>{library_->NumBlocks(0, kBlock)});
  network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
  fake_ = std::make_unique<FakeServer>(&env_, network_.get());
  StreamShareManager manager(&env_, 5.0);
  vod::AdmissionParams admission_params;
  admission_params.policy = vod::AdmissionPolicy::kStaticReservation;
  admission_params.num_nodes = 1;
  admission_params.node_bytes_per_sec = 2.0e6;  // room for both sessions
  admission_params.stream_bytes_per_sec = 1.0e6;
  admission_params.headroom_fraction = 1.0;
  vod::AdmissionController admission(admission_params);
  TerminalParams params;
  params.random_initial_position = false;
  Terminal leader(&env_, 0, params, network_.get(), fake_.get(),
                  library_.get(), layout_.get(), sim::Rng(1), 0.0,
                  &manager, nullptr, nullptr, &admission);
  Terminal follower(&env_, 1, params, network_.get(), fake_.get(),
                    library_.get(), layout_.get(), sim::Rng(2), 1.0,
                    &manager, nullptr, nullptr, &admission);
  env_.RunUntil(2.0);
  EXPECT_EQ(follower.state(), Terminal::State::kFollowing);
  EXPECT_EQ(admission.active_sessions(), 2);
  // The envelope collapses mid-run; the grandfathered streams play on,
  // but nothing new may be admitted.
  admission.OnNodeDown(0);
  // The follow ends at t=25 (group start 5 + 20 s video): the follower
  // releases its slot, is deferred at the gate, and must stay idle — a
  // replay of the finished video would show up as sent requests.
  env_.RunUntil(40.0);
  EXPECT_EQ(follower.stats().videos_completed, 1u);
  EXPECT_EQ(follower.state(), Terminal::State::kIdle);
  EXPECT_EQ(follower.stats().requests_sent, 0u);
  EXPECT_EQ(admission.active_sessions(), 0);
  EXPECT_GT(admission.stats().defers, 0);
}

}  // namespace
}  // namespace spiffi::client
