// Block-request timeout/retry and session failover (ISSUE 9).
//
// Unit-level: a terminal with a retry budget re-issues a block whose
// reply is overdue, late duplicates of retried blocks are dropped
// exactly once, and an exhausted budget degrades to the old
// wait-until-glitch behaviour. Integration-level: killing a node under
// a retry-enabled Simulation migrates whole sessions to the surviving
// replica chain instead of rerouting block by block.

#include <memory>
#include <set>
#include <vector>

#include "client/terminal.h"
#include "gtest/gtest.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "vod/simulation.h"

namespace spiffi::client {
namespace {

using server::Message;

// A fake origin that replies after a fixed delay and can withhold
// blocks: `held_blocks` holds every request for the block until
// ReleaseHeld(); `hold_once_blocks` swallows only the first request, so
// a retry of the same block gets through.
class FakeNode final : public server::NodeDirectory,
                       public server::MessageSink {
 public:
  explicit FakeNode(sim::Environment* env) : env_(env) {}

  server::MessageSink* node_sink(int) override { return this; }

  void OnMessage(const Message& request) override {
    requests.push_back(request);
    if (held_blocks.count(request.block) > 0) {
      held.push_back(request);
      return;
    }
    if (hold_once_blocks.count(request.block) > 0) {
      hold_once_blocks.erase(request.block);
      held.push_back(request);
      return;
    }
    Reply(request);
  }

  class Deliver final : public sim::EventHandler {
   public:
    Deliver(Message m, server::MessageSink* sink) : m_(m), sink_(sink) {}
    void OnEvent(std::uint64_t) override { sink_->OnMessage(m_); }

   private:
    Message m_;
    server::MessageSink* sink_;
  };

  void Reply(const Message& request) {
    Message reply = request;
    reply.kind = Message::Kind::kReadReply;
    deliveries_.push_back(
        std::make_unique<Deliver>(reply, request.reply_to));
    env_->ScheduleAfter(reply_delay, deliveries_.back().get());
  }

  void ReleaseHeld() {
    for (const Message& request : held) Reply(request);
    held.clear();
    held_blocks.clear();
  }

  int RequestCountFor(std::int64_t block) const {
    int count = 0;
    for (const Message& request : requests) {
      if (request.block == block) ++count;
    }
    return count;
  }

  double reply_delay = 0.01;
  std::set<std::int64_t> held_blocks;
  std::set<std::int64_t> hold_once_blocks;
  std::vector<Message> requests;
  std::vector<Message> held;

 private:
  sim::Environment* env_;
  std::vector<std::unique_ptr<Deliver>> deliveries_;
};

class RetryTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBlock = 512 * 1024;

  void Build(TerminalParams params) {
    mpeg::ZipfDistribution popularity(2, 0.0);
    library_ = std::make_unique<mpeg::VideoLibrary>(
        2, /*video_seconds=*/30.0, mpeg::MpegParams(), popularity, 1);
    std::vector<std::int64_t> blocks;
    for (int v = 0; v < 2; ++v) {
      blocks.push_back(library_->NumBlocks(v, kBlock));
    }
    layout_ = std::make_unique<layout::StripedLayout>(1, 1, kBlock,
                                                      std::move(blocks));
    network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
    fake_ = std::make_unique<FakeNode>(&env_);
    params.random_initial_position = false;
    terminal_ = std::make_unique<Terminal>(
        &env_, 0, params, network_.get(), fake_.get(), library_.get(),
        layout_.get(), sim::Rng(7), /*start_time=*/0.0);
  }

  sim::Environment env_;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::StripedLayout> layout_;
  std::unique_ptr<hw::Network> network_;
  std::unique_ptr<FakeNode> fake_;
  std::unique_ptr<Terminal> terminal_;
};

TEST_F(RetryTest, RetryReissuesOverdueBlockWithoutGlitch) {
  TerminalParams params;
  params.retry_budget = 2;
  params.retry_min_timeout_sec = 1.0;
  Build(params);
  // The first request for block 6 is swallowed; only the retry answers.
  fake_->hold_once_blocks.insert(6);
  env_.RunUntil(10.0);
  EXPECT_GE(fake_->RequestCountFor(6), 2);
  EXPECT_GE(terminal_->stats().request_retries, 1u);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
  // Retries are duplicate sends, not new requests.
  EXPECT_EQ(terminal_->stats().requests_sent +
                terminal_->stats().request_retries,
            fake_->requests.size());
}

TEST_F(RetryTest, DuplicateLateRepliesDroppedExactlyOnce) {
  TerminalParams params;
  params.retry_budget = 2;
  params.retry_min_timeout_sec = 1.0;
  params.retry_backoff_base_sec = 1.0;
  Build(params);
  // Withhold every copy of block 6 until just before its deadline
  // (~6 s), after the retry (~5 s) has issued a duplicate: both replies
  // then arrive, the first is consumed, the rest must be dropped.
  fake_->held_blocks.insert(6);
  env_.RunUntil(5.5);
  ASSERT_GE(fake_->held.size(), 2u);
  fake_->ReleaseHeld();
  env_.RunUntil(10.0);
  EXPECT_GE(terminal_->stats().request_retries, 1u);
  EXPECT_GE(terminal_->stats().duplicate_replies, 1u);
  EXPECT_EQ(terminal_->stats().glitches, 0u);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
}

TEST_F(RetryTest, ExhaustedBudgetFallsBackToGlitch) {
  TerminalParams params;
  params.retry_budget = 1;
  params.retry_min_timeout_sec = 1.0;
  Build(params);
  fake_->held_blocks.insert(6);  // every copy withheld: retries futile
  env_.RunUntil(10.0);
  EXPECT_GE(terminal_->stats().request_retries, 1u);
  EXPECT_GE(terminal_->stats().retries_exhausted, 1u);
  EXPECT_GE(terminal_->stats().glitches, 1u);
  // The old recovery path still works once the block shows up.
  fake_->ReleaseHeld();
  env_.RunUntil(13.0);
  EXPECT_EQ(terminal_->state(), Terminal::State::kPlaying);
}

TEST_F(RetryTest, NoRetriesWithoutBudget) {
  TerminalParams params;  // retry_budget = 0 (default)
  Build(params);
  fake_->hold_once_blocks.insert(6);
  env_.RunUntil(10.0);
  EXPECT_EQ(terminal_->stats().request_retries, 0u);
  EXPECT_EQ(fake_->RequestCountFor(6), 1);
  // Without a retry the withheld block costs a glitch.
  EXPECT_GE(terminal_->stats().glitches, 1u);
}

// --- Session failover under a node outage (full Simulation) ---

vod::SimConfig FailoverConfig() {
  vod::SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  // Short videos so completions (and hence fresh admissions) land
  // inside the measurement window.
  config.video_seconds = 25.0;
  // Small enough that the library does not fit in the buffer cache:
  // reads must hit the disks, so the disk queues carry real load.
  config.server_memory_bytes = 32LL * 1024 * 1024;
  // Moderate load (~2/3 of the disk envelope): node 1's queue is
  // non-empty when it dies, so some stream always has a request parked
  // there whose retry timer then fires into a dead node — but replies
  // are otherwise fast enough that retry budgets never burn out ahead
  // of the failure.
  config.terminals = 40;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  config.placement = vod::VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.request_retry_budget = 2;
  config.admission_policy = vod::AdmissionPolicy::kStaticReservation;
  config.admission_headroom = 1.0;
  // No in-flight reroute: requests caught on the dead node park until
  // the terminal's timeout fires, exercising the failover path.
  config.fault_plan.reroute_hop_budget = 0;
  config.fault_plan.script.push_back(
      {20.0, fault::FaultKind::kNodeFail, 1});
  config.fault_plan.script.push_back(
      {40.0, fault::FaultKind::kNodeRecover, 1});
  return config;
}

TEST_F(RetryTest, SessionFailoverMigratesStreamsOffDeadNode) {
  vod::Simulation simulation(FailoverConfig());
  vod::SimMetrics metrics = simulation.Run();
  EXPECT_GT(metrics.admission_admits, 0u);
  EXPECT_GT(metrics.request_retries, 0u);
  // Streams caught with requests pending on the dead node migrate whole
  // and re-admit, rather than rerouting block by block forever.
  EXPECT_GE(metrics.session_failovers, 1u);
  EXPECT_GE(metrics.failover_readmissions, 1u);
}

TEST_F(RetryTest, FailoverRunsAreDeterministic) {
  vod::Simulation a(FailoverConfig());
  vod::SimMetrics ma = a.Run();
  vod::Simulation b(FailoverConfig());
  vod::SimMetrics mb = b.Run();
  EXPECT_EQ(ma.events_simulated, mb.events_simulated);
  EXPECT_EQ(ma.session_failovers, mb.session_failovers);
  EXPECT_EQ(ma.request_retries, mb.request_retries);
  EXPECT_EQ(ma.duplicate_replies, mb.duplicate_replies);
  EXPECT_EQ(ma.glitches, mb.glitches);
}

}  // namespace
}  // namespace spiffi::client
