// Integration tests for a single server node: buffer pool, disk path,
// prefetching, and the reply protocol, driven by a fake terminal.

#include "server/node.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "server/message.h"

namespace spiffi::server {
namespace {

class FakeTerminal final : public MessageSink {
 public:
  explicit FakeTerminal(sim::Environment* env) : env_(env) {}
  void OnMessage(const Message& message) override {
    replies.push_back({message, env_->now()});
  }
  std::vector<std::pair<Message, double>> replies;

 private:
  sim::Environment* env_;
};

class NodeTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBlock = 512 * 1024;

  void Build(NodeConfig config = NodeConfig()) {
    mpeg::ZipfDistribution popularity(4, 1.0);
    library_ = std::make_unique<mpeg::VideoLibrary>(
        4, /*duration=*/120.0, mpeg::MpegParams(), popularity, 1);
    std::vector<std::int64_t> blocks;
    for (int v = 0; v < 4; ++v) {
      blocks.push_back(library_->NumBlocks(v, kBlock));
    }
    // One node, two disks.
    layout_ = std::make_unique<layout::StripedLayout>(1, 2, kBlock,
                                                      std::move(blocks));
    network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
    config.id = 0;
    config.disks_per_node = 2;
    config.block_bytes = kBlock;
    node_ = std::make_unique<Node>(&env_, config, network_.get(),
                                   library_.get(), layout_.get());
    terminal_ = std::make_unique<FakeTerminal>(&env_);
  }

  void SendRead(int video, std::int64_t block, double deadline = 100.0,
                int terminal_id = 1) {
    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = terminal_id;
    request.video = video;
    request.block = block;
    request.deadline = deadline;
    request.reply_to = terminal_.get();
    PostMessage(&env_, network_.get(), kControlMessageBytes, node_.get(),
                request);
  }

  sim::Environment env_;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::StripedLayout> layout_;
  std::unique_ptr<hw::Network> network_;
  std::unique_ptr<Node> node_;
  std::unique_ptr<FakeTerminal> terminal_;
};

TEST_F(NodeTest, MissReadsFromDiskAndReplies) {
  Build();
  SendRead(0, 0);
  env_.Run();
  ASSERT_EQ(terminal_->replies.size(), 1u);
  const Message& reply = terminal_->replies[0].first;
  EXPECT_EQ(reply.kind, Message::Kind::kReadReply);
  EXPECT_EQ(reply.video, 0);
  EXPECT_EQ(reply.block, 0);
  EXPECT_EQ(reply.bytes, kBlock);
  EXPECT_EQ(node_->pool().stats().misses, 1u);
  // The reply took at least one disk transfer.
  EXPECT_GT(terminal_->replies[0].second,
            static_cast<double>(kBlock) /
                node_->disk(0).params().transfer_rate_bytes_per_sec);
}

TEST_F(NodeTest, SecondReferenceHitsBufferPool) {
  Build();
  SendRead(0, 0, 100.0, /*terminal=*/1);
  env_.Run();  // runs until idle (including the chained prefetch)
  double second_sent_at = env_.now();
  SendRead(0, 0, 100.0, /*terminal=*/2);
  env_.Run();
  ASSERT_EQ(terminal_->replies.size(), 2u);
  EXPECT_EQ(node_->pool().stats().hits, 1u);
  EXPECT_EQ(node_->pool().stats().shared_refs, 1u);
  // The hit is served without a second disk read: much faster.
  double hit_latency = terminal_->replies[1].second - second_sent_at;
  EXPECT_LT(hit_latency, 0.05);
}

TEST_F(NodeTest, ConcurrentRequestsForSameBlockShareOneDiskRead) {
  Build();
  SendRead(0, 0, 100.0, 1);
  SendRead(0, 0, 100.0, 2);
  SendRead(0, 0, 100.0, 3);
  env_.Run();
  EXPECT_EQ(terminal_->replies.size(), 3u);
  const auto& stats = node_->pool().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.attaches, 2u);
  // Only one demand read hit the disk (plus possibly a prefetch).
  std::uint64_t served =
      node_->disk(0).requests_served() + node_->disk(1).requests_served();
  EXPECT_LE(served, 2u);
}

TEST_F(NodeTest, AttachBoostsInflightDeadline) {
  NodeConfig config;
  config.sched.policy = DiskSchedPolicy::kRealTime;
  config.prefetch = PrefetchPolicy::kNone;
  Build(config);
  SendRead(0, 0, /*deadline=*/100.0, 1);
  SendRead(0, 0, /*deadline=*/0.5, 2);  // urgent attach
  // Run just far enough for both to be processed; inspect the in-flight
  // request's deadline via the pool.
  env_.RunUntil(0.02);
  BufferPool::Page* page =
      node_->pool().Lookup(PageKey{0, 0});
  ASSERT_NE(page, nullptr);
  if (page->io_in_flight && page->inflight_request != nullptr) {
    EXPECT_DOUBLE_EQ(page->inflight_request->deadline, 0.5);
  }
  env_.Run();
  EXPECT_EQ(terminal_->replies.size(), 2u);
}

TEST_F(NodeTest, OnMissTriggerPrefetchesNextBlockOnSameDisk) {
  NodeConfig config;
  config.prefetch = PrefetchPolicy::kFifo;
  config.prefetch_trigger = PrefetchTrigger::kOnMiss;
  Build(config);
  SendRead(0, 0);
  env_.Run();
  // Next block on the same disk is block 2 (1 node x 2 disks -> width 2).
  BufferPool::Page* prefetched = node_->pool().Lookup(PageKey{0, 2});
  ASSERT_NE(prefetched, nullptr);
  EXPECT_TRUE(prefetched->valid);
  EXPECT_TRUE(prefetched->prefetched);
  // And block 1 (other disk) was not prefetched.
  EXPECT_EQ(node_->pool().Lookup(PageKey{0, 1}), nullptr);
}

TEST_F(NodeTest, OnReferenceTriggerPrefetchesOnHitsToo) {
  NodeConfig config;
  config.prefetch = PrefetchPolicy::kFifo;
  config.prefetch_trigger = PrefetchTrigger::kOnReference;
  Build(config);
  SendRead(0, 0);
  env_.Run();
  ASSERT_NE(node_->pool().Lookup(PageKey{0, 2}), nullptr);
  // A later hit on block 2 chains a prefetch of block 4.
  SendRead(0, 2);
  env_.Run();
  EXPECT_NE(node_->pool().Lookup(PageKey{0, 4}), nullptr);
}

TEST_F(NodeTest, OnMissTriggerDoesNotChainFromHits) {
  NodeConfig config;
  config.prefetch = PrefetchPolicy::kFifo;
  config.prefetch_trigger = PrefetchTrigger::kOnMiss;
  Build(config);
  SendRead(0, 0);
  env_.Run();
  SendRead(0, 2);  // hits the prefetched page
  env_.Run();
  EXPECT_EQ(node_->pool().Lookup(PageKey{0, 4}), nullptr);
}

TEST_F(NodeTest, NoPrefetchPastEndOfVideo) {
  NodeConfig config;
  config.prefetch = PrefetchPolicy::kFifo;
  Build(config);
  std::int64_t last = library_->NumBlocks(0, kBlock) - 1;
  SendRead(0, last);
  env_.Run();
  EXPECT_EQ(terminal_->replies.size(), 1u);
  // Nothing beyond the video was prefetched (no crash either).
}

TEST_F(NodeTest, LastBlockReplyIsShort) {
  Build();
  std::int64_t last = library_->NumBlocks(0, kBlock) - 1;
  SendRead(0, last);
  env_.Run();
  ASSERT_EQ(terminal_->replies.size(), 1u);
  std::int64_t expected =
      library_->video(0).total_bytes() - last * kBlock;
  EXPECT_EQ(terminal_->replies[0].first.bytes, expected);
}

TEST_F(NodeTest, CpuCostsAreCharged) {
  NodeConfig config;
  config.prefetch = PrefetchPolicy::kNone;
  Build(config);
  SendRead(0, 0);
  env_.Run();
  // receive + start I/O + send = 2200 + 20000 + 6800 instructions at
  // 40 MIPS = 0.725 ms of CPU busy time.
  double busy = node_->cpu().resource().service_tally().sum();
  EXPECT_NEAR(busy, 29000.0 / 40e6, 1e-9);
}

TEST_F(NodeTest, RequestsSpreadAcrossDisks) {
  NodeConfig config;
  config.prefetch = PrefetchPolicy::kNone;
  Build(config);
  SendRead(0, 0);  // disk 0
  SendRead(0, 1);  // disk 1
  SendRead(0, 2);  // disk 0
  env_.Run();
  EXPECT_EQ(node_->disk(0).requests_served(), 2u);
  EXPECT_EQ(node_->disk(1).requests_served(), 1u);
}

TEST_F(NodeTest, ResetStatsClearsCounters) {
  Build();
  SendRead(0, 0);
  env_.Run();
  node_->ResetStats(env_.now());
  EXPECT_EQ(node_->pool().stats().references, 0u);
  EXPECT_EQ(node_->disk(0).requests_served(), 0u);
}

}  // namespace
}  // namespace spiffi::server
