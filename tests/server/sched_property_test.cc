// Property tests that every disk scheduling policy must satisfy,
// parameterized over the policy and a randomized workload.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "server/disk_sched.h"
#include "sim/random.h"

namespace spiffi::server {
namespace {

constexpr std::int64_t kCylBytes = 1280 * 1024;

struct SchedCase {
  DiskSchedPolicy policy;
  int gss_groups;
  const char* name;
};

class SchedPropertyTest : public ::testing::TestWithParam<SchedCase> {
 protected:
  std::unique_ptr<hw::DiskScheduler> Make() {
    DiskSchedParams params;
    params.policy = GetParam().policy;
    params.cylinder_bytes = kCylBytes;
    params.gss_groups = GetParam().gss_groups;
    params.realtime_classes = 3;
    params.realtime_spacing_sec = 4.0;
    return MakeDiskScheduler(params);
  }

  std::vector<hw::DiskRequest> RandomRequests(int n, std::uint64_t seed) {
    sim::Rng rng(seed);
    std::vector<hw::DiskRequest> requests(n);
    for (int i = 0; i < n; ++i) {
      requests[i].disk_offset =
          static_cast<std::int64_t>(rng.UniformInt(5000)) * kCylBytes;
      requests[i].bytes = 512 * 1024;
      requests[i].terminal = static_cast<int>(rng.UniformInt(40));
      requests[i].deadline = rng.Uniform(0.0, 20.0);
      requests[i].is_prefetch = rng.NextDouble() < 0.3;
      requests[i].seq = static_cast<std::uint64_t>(i);
      requests[i].video = static_cast<std::int64_t>(rng.UniformInt(8));
      requests[i].block = i;
    }
    return requests;
  }
};

// Conservation: everything pushed is popped exactly once, regardless of
// how pushes and pops interleave.
TEST_P(SchedPropertyTest, EveryRequestPoppedExactlyOnce) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto sched = Make();
    auto requests = RandomRequests(200, seed);
    sim::Rng rng(seed * 977);
    std::set<const hw::DiskRequest*> popped;
    std::size_t pushed = 0;
    std::int64_t head = 0;
    double now = 0.0;
    while (popped.size() < requests.size()) {
      bool can_push = pushed < requests.size();
      bool do_push = can_push && (sched->empty() || rng.NextDouble() < 0.5);
      if (do_push) {
        sched->Push(&requests[pushed++]);
      } else {
        ASSERT_FALSE(sched->empty());
        hw::DiskRequest* r = sched->Pop(head, now);
        ASSERT_NE(r, nullptr);
        EXPECT_TRUE(popped.insert(r).second)
            << GetParam().name << " popped a request twice";
        head = r->disk_offset / kCylBytes;
        now += 0.05;
      }
    }
    EXPECT_TRUE(sched->empty());
    EXPECT_EQ(sched->size(), 0u);
  }
}

// Size bookkeeping stays consistent with pushes and pops.
TEST_P(SchedPropertyTest, SizeTracksPushPop) {
  auto sched = Make();
  auto requests = RandomRequests(50, 3);
  for (int i = 0; i < 50; ++i) {
    sched->Push(&requests[i]);
    EXPECT_EQ(sched->size(), static_cast<std::size_t>(i + 1));
  }
  for (int i = 49; i >= 0; --i) {
    sched->Pop(0, 1.0);
    EXPECT_EQ(sched->size(), static_cast<std::size_t>(i));
  }
}

// Pop never invents requests: the returned pointer is one we pushed.
TEST_P(SchedPropertyTest, PopReturnsPushedRequests) {
  auto sched = Make();
  auto requests = RandomRequests(64, 9);
  std::set<const hw::DiskRequest*> pushed_set;
  for (auto& r : requests) {
    sched->Push(&r);
    pushed_set.insert(&r);
  }
  while (!sched->empty()) {
    EXPECT_EQ(pushed_set.count(sched->Pop(100, 2.0)), 1u);
  }
}

// A drained scheduler can be reused.
TEST_P(SchedPropertyTest, ReusableAfterDrain) {
  auto sched = Make();
  auto first = RandomRequests(20, 11);
  for (auto& r : first) sched->Push(&r);
  while (!sched->empty()) sched->Pop(0, 0.0);
  auto second = RandomRequests(20, 13);
  for (auto& r : second) sched->Push(&r);
  int popped = 0;
  while (!sched->empty()) {
    sched->Pop(0, 0.0);
    ++popped;
  }
  EXPECT_EQ(popped, 20);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, SchedPropertyTest,
    ::testing::Values(
        SchedCase{DiskSchedPolicy::kFcfs, 1, "fcfs"},
        SchedCase{DiskSchedPolicy::kElevator, 1, "elevator"},
        SchedCase{DiskSchedPolicy::kRoundRobin, 1, "round_robin"},
        SchedCase{DiskSchedPolicy::kGss, 1, "gss1"},
        SchedCase{DiskSchedPolicy::kGss, 4, "gss4"},
        SchedCase{DiskSchedPolicy::kGss, 16, "gss16"},
        SchedCase{DiskSchedPolicy::kRealTime, 1, "real_time"}),
    [](const ::testing::TestParamInfo<SchedCase>& info) {
      return info.param.name;
    });

// Seek-optimization ordering: over a random batch, the elevator's total
// head travel never exceeds FCFS's (that is its whole point).
TEST(SchedComparisonTest, ElevatorTravelsNoMoreThanFcfs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Rng rng(seed);
    std::vector<hw::DiskRequest> requests(64);
    for (int i = 0; i < 64; ++i) {
      requests[i].disk_offset =
          static_cast<std::int64_t>(rng.UniformInt(5000)) * kCylBytes;
      requests[i].bytes = 1;
      requests[i].terminal = i % 16;
      requests[i].seq = static_cast<std::uint64_t>(i);
    }
    auto travel = [&](hw::DiskScheduler* sched) {
      for (auto& r : requests) sched->Push(&r);
      std::int64_t head = 2500;
      std::int64_t total = 0;
      while (!sched->empty()) {
        hw::DiskRequest* r = sched->Pop(head, 0.0);
        std::int64_t cyl = r->disk_offset / kCylBytes;
        total += std::llabs(cyl - head);
        head = cyl;
      }
      return total;
    };
    FcfsScheduler fcfs;
    ElevatorScheduler elevator(kCylBytes);
    EXPECT_LE(travel(&elevator), travel(&fcfs)) << "seed " << seed;
  }
}

// With everything in one priority class, the real-time scheduler behaves
// like an elevator: total travel well below FCFS.
TEST(SchedComparisonTest, RealTimeDegeneratesToElevatorOrder) {
  sim::Rng rng(5);
  std::vector<hw::DiskRequest> requests(64);
  for (int i = 0; i < 64; ++i) {
    requests[i].disk_offset =
        static_cast<std::int64_t>(rng.UniformInt(5000)) * kCylBytes;
    requests[i].bytes = 1;
    requests[i].deadline = 100.0;  // all in the same (lowest) class
    requests[i].seq = static_cast<std::uint64_t>(i);
  }
  RealTimeScheduler rt(3, 4.0, kCylBytes);
  ElevatorScheduler elevator(kCylBytes);
  auto travel = [&](hw::DiskScheduler* sched) {
    for (auto& r : requests) sched->Push(&r);
    std::int64_t head = 0;
    std::int64_t total = 0;
    while (!sched->empty()) {
      hw::DiskRequest* r = sched->Pop(head, 0.0);
      std::int64_t cyl = r->disk_offset / kCylBytes;
      total += std::llabs(cyl - head);
      head = cyl;
    }
    return total;
  };
  EXPECT_EQ(travel(&rt), travel(&elevator));
}

// Deadline dominance: whenever the real-time scheduler pops, no pending
// request belongs to a strictly more urgent priority class.
TEST(SchedComparisonTest, RealTimeNeverSkipsMoreUrgentClass) {
  sim::Rng rng(17);
  RealTimeScheduler sched(3, 4.0, kCylBytes);
  std::vector<hw::DiskRequest> requests(128);
  std::vector<hw::DiskRequest*> pending;
  for (int i = 0; i < 128; ++i) {
    requests[i].disk_offset =
        static_cast<std::int64_t>(rng.UniformInt(5000)) * kCylBytes;
    requests[i].bytes = 1;
    requests[i].deadline = rng.Uniform(0.0, 20.0);
    requests[i].seq = static_cast<std::uint64_t>(i);
    sched.Push(&requests[i]);
    pending.push_back(&requests[i]);
  }
  double now = 0.0;
  std::int64_t head = 0;
  while (!sched.empty()) {
    hw::DiskRequest* r = sched.Pop(head, now);
    int popped_class = sched.PriorityClass(r->deadline, now);
    for (hw::DiskRequest* p : pending) {
      if (p == r) continue;
      EXPECT_GE(sched.PriorityClass(p->deadline, now), popped_class);
    }
    pending.erase(std::find(pending.begin(), pending.end(), r));
    head = r->disk_offset / kCylBytes;
    now += 0.08;
  }
}

}  // namespace
}  // namespace spiffi::server
