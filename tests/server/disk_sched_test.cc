#include "server/disk_sched.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"

namespace spiffi::server {
namespace {

constexpr std::int64_t kCyl = 1024;  // 1 KB cylinders for easy math

// Builds a request at the given cylinder for a terminal.
hw::DiskRequest Req(std::int64_t cylinder, int terminal = 0,
                    double deadline = sim::kSimTimeMax,
                    std::uint64_t seq = 0) {
  hw::DiskRequest r;
  r.disk_offset = cylinder * kCyl;
  r.bytes = 1;
  r.terminal = terminal;
  r.deadline = deadline;
  r.seq = seq;
  return r;
}

TEST(FcfsSchedulerTest, ServesInArrivalOrder) {
  FcfsScheduler sched;
  hw::DiskRequest a = Req(50), b = Req(10), c = Req(90);
  sched.Push(&a);
  sched.Push(&b);
  sched.Push(&c);
  EXPECT_EQ(sched.Pop(0, 0.0), &a);
  EXPECT_EQ(sched.Pop(0, 0.0), &b);
  EXPECT_EQ(sched.Pop(0, 0.0), &c);
  EXPECT_TRUE(sched.empty());
}

TEST(ElevatorSchedulerTest, SweepsUpThenDown) {
  ElevatorScheduler sched(kCyl);
  hw::DiskRequest a = Req(30), b = Req(10), c = Req(70);
  sched.Push(&a);
  sched.Push(&b);
  sched.Push(&c);
  // Head at 20 sweeping up: 30, then 70, then reverse to 10.
  EXPECT_EQ(sched.Pop(20, 0.0), &a);
  EXPECT_EQ(sched.Pop(30, 0.0), &c);
  EXPECT_EQ(sched.Pop(70, 0.0), &b);
}

TEST(ElevatorSchedulerTest, ReversesAtEndOfSweep) {
  ElevatorScheduler sched(kCyl);
  hw::DiskRequest a = Req(10), b = Req(5);
  sched.Push(&a);
  sched.Push(&b);
  // Head at 50 going up: nothing above, reverse: 10 then 5.
  EXPECT_EQ(sched.Pop(50, 0.0), &a);
  EXPECT_FALSE(sched.sweeping_up());
  EXPECT_EQ(sched.Pop(10, 0.0), &b);
}

TEST(ElevatorSchedulerTest, ServicesRequestAtHeadCylinder) {
  ElevatorScheduler sched(kCyl);
  hw::DiskRequest a = Req(42);
  sched.Push(&a);
  EXPECT_EQ(sched.Pop(42, 0.0), &a);
}

TEST(ElevatorSchedulerTest, EqualCylindersFifo) {
  ElevatorScheduler sched(kCyl);
  hw::DiskRequest a = Req(42), b = Req(42), c = Req(42);
  sched.Push(&a);
  sched.Push(&b);
  sched.Push(&c);
  EXPECT_EQ(sched.Pop(0, 0.0), &a);
  EXPECT_EQ(sched.Pop(42, 0.0), &b);
  EXPECT_EQ(sched.Pop(42, 0.0), &c);
}

TEST(ElevatorSchedulerTest, LateArrivalAheadOfHeadJoinsSweep) {
  ElevatorScheduler sched(kCyl);
  hw::DiskRequest a = Req(30), late = Req(40), behind = Req(5);
  sched.Push(&a);
  sched.Push(&behind);
  EXPECT_EQ(sched.Pop(10, 0.0), &a);
  sched.Push(&late);  // arrives while head at 30 sweeping up
  EXPECT_EQ(sched.Pop(30, 0.0), &late);
  EXPECT_EQ(sched.Pop(40, 0.0), &behind);
}

TEST(RoundRobinSchedulerTest, CyclesThroughTerminals) {
  RoundRobinScheduler sched;
  hw::DiskRequest a0 = Req(10, 0), a1 = Req(20, 0);
  hw::DiskRequest b0 = Req(90, 1);
  hw::DiskRequest c0 = Req(50, 2);
  sched.Push(&a0);
  sched.Push(&a1);
  sched.Push(&b0);
  sched.Push(&c0);
  EXPECT_EQ(sched.Pop(0, 0.0), &a0);  // terminal 0
  EXPECT_EQ(sched.Pop(0, 0.0), &b0);  // terminal 1
  EXPECT_EQ(sched.Pop(0, 0.0), &c0);  // terminal 2
  EXPECT_EQ(sched.Pop(0, 0.0), &a1);  // wraps to terminal 0
}

TEST(RoundRobinSchedulerTest, FifoWithinTerminal) {
  RoundRobinScheduler sched;
  hw::DiskRequest first = Req(90, 7), second = Req(10, 7);
  sched.Push(&first);
  sched.Push(&second);
  EXPECT_EQ(sched.Pop(0, 0.0), &first);  // arrival order, not cylinder
  EXPECT_EQ(sched.Pop(0, 0.0), &second);
}

TEST(GssSchedulerTest, OneGroupTakesOneRequestPerTerminalPerPass) {
  GssScheduler sched(1, kCyl);
  hw::DiskRequest a0 = Req(10, 0), a1 = Req(20, 0), b0 = Req(30, 1);
  sched.Push(&a0);
  sched.Push(&a1);
  sched.Push(&b0);
  // First pass: one request from each terminal (a0, b0), elevator order.
  hw::DiskRequest* first = sched.Pop(0, 0.0);
  hw::DiskRequest* second = sched.Pop(0, 0.0);
  EXPECT_TRUE((first == &a0 && second == &b0) ||
              (first == &b0 && second == &a0));
  // a1 only comes in the next pass.
  EXPECT_EQ(sched.Pop(0, 0.0), &a1);
}

TEST(GssSchedulerTest, GroupsProcessedRoundRobin) {
  GssScheduler sched(2, kCyl);  // terminal % 2 -> group
  hw::DiskRequest g0 = Req(10, 0), g1 = Req(20, 1), g0b = Req(30, 2);
  sched.Push(&g0);
  sched.Push(&g1);
  sched.Push(&g0b);
  // Group 0 first (terminals 0 and 2), then group 1.
  hw::DiskRequest* first = sched.Pop(0, 0.0);
  hw::DiskRequest* second = sched.Pop(0, 0.0);
  EXPECT_TRUE((first == &g0 || first == &g0b) &&
              (second == &g0 || second == &g0b));
  EXPECT_EQ(sched.Pop(0, 0.0), &g1);
}

TEST(GssSchedulerTest, EmptyGroupsSkipped) {
  GssScheduler sched(4, kCyl);
  hw::DiskRequest only = Req(10, 3);  // group 3
  sched.Push(&only);
  EXPECT_EQ(sched.Pop(0, 0.0), &only);
  EXPECT_TRUE(sched.empty());
}

TEST(GssSchedulerTest, SweepUsesElevatorOrder) {
  GssScheduler sched(1, kCyl);
  hw::DiskRequest a = Req(50, 0), b = Req(10, 1), c = Req(90, 2);
  sched.Push(&a);
  sched.Push(&b);
  sched.Push(&c);
  std::vector<std::int64_t> cylinders;
  for (int i = 0; i < 3; ++i) {
    cylinders.push_back(sched.Pop(0, 0.0)->disk_offset / kCyl);
  }
  // One monotone sweep (ascending or descending).
  bool ascending = cylinders[0] <= cylinders[1] &&
                   cylinders[1] <= cylinders[2];
  bool descending = cylinders[0] >= cylinders[1] &&
                    cylinders[1] >= cylinders[2];
  EXPECT_TRUE(ascending || descending);
}

TEST(RealTimeSchedulerTest, PriorityClassMapping) {
  // Fig 5: 3 classes, 2 s spacing -> cutoffs at 2 s and 4 s.
  RealTimeScheduler sched(3, 2.0, kCyl);
  EXPECT_EQ(sched.PriorityClass(1.0, 0.0), 0);   // within 2 s
  EXPECT_EQ(sched.PriorityClass(3.0, 0.0), 1);   // 2-4 s out
  EXPECT_EQ(sched.PriorityClass(10.0, 0.0), 2);  // beyond 4 s
  EXPECT_EQ(sched.PriorityClass(-5.0, 0.0), 0);  // past due
  EXPECT_EQ(sched.PriorityClass(sim::kSimTimeMax, 0.0), 2);  // none
}

TEST(RealTimeSchedulerTest, UrgentRequestOvertakesElevatorOrder) {
  // Fig 6: request 2 (priority 1) is serviced before request 1
  // (priority 2) even though the head must seek past request 1.
  RealTimeScheduler sched(3, 2.0, kCyl);
  hw::DiskRequest r1 = Req(10, 0, /*deadline=*/3.0);   // priority 1
  hw::DiskRequest r2 = Req(40, 1, /*deadline=*/1.5);   // priority 0
  sched.Push(&r1);
  sched.Push(&r2);
  EXPECT_EQ(sched.Pop(0, 0.0), &r2);
}

TEST(RealTimeSchedulerTest, PrioritiesRecomputedEachPop) {
  // Continuing Fig 6: after servicing request 2, request 1 is now within
  // 2 s of its deadline and is promoted.
  RealTimeScheduler sched(3, 2.0, kCyl);
  hw::DiskRequest r1 = Req(10, 0, /*deadline=*/3.0);
  hw::DiskRequest lazy = Req(12, 1, /*deadline=*/100.0);
  sched.Push(&r1);
  sched.Push(&lazy);
  // At t=2, r1 has 1 s of slack -> class 0; lazy stays class 2.
  EXPECT_EQ(sched.Pop(40, 2.0), &r1);
  EXPECT_EQ(sched.Pop(10, 2.0), &lazy);
}

TEST(RealTimeSchedulerTest, ElevatorOrderWithinClass) {
  RealTimeScheduler sched(2, 4.0, kCyl);
  hw::DiskRequest a = Req(30, 0, 1.0), b = Req(10, 1, 1.2),
                  c = Req(70, 2, 0.9);
  sched.Push(&a);
  sched.Push(&b);
  sched.Push(&c);
  // All in class 0; head at 20 going up: 30, 70, then down to 10.
  EXPECT_EQ(sched.Pop(20, 0.0), &a);
  EXPECT_EQ(sched.Pop(30, 0.0), &c);
  EXPECT_EQ(sched.Pop(70, 0.0), &b);
}

TEST(RealTimeSchedulerTest, PrefetchWithoutDeadlineIsLowestPriority) {
  RealTimeScheduler sched(3, 2.0, kCyl);
  hw::DiskRequest prefetch = Req(10, 0);
  prefetch.is_prefetch = true;  // deadline stays kSimTimeMax -> class 2
  hw::DiskRequest real = Req(90, 1, /*deadline=*/3.0);  // class 1
  sched.Push(&prefetch);
  sched.Push(&real);
  EXPECT_EQ(sched.Pop(0, 0.0), &real);
  EXPECT_EQ(sched.Pop(90, 0.0), &prefetch);
}

TEST(RealTimeSchedulerTest, UrgentPrefetchOvertakesLazyRealRequest) {
  // Real-time prefetching: a prefetch with an urgent estimated deadline
  // beats a non-urgent true request (§5.2.3).
  RealTimeScheduler sched(3, 2.0, kCyl);
  hw::DiskRequest prefetch = Req(80, 0, /*deadline=*/0.5);
  prefetch.is_prefetch = true;
  hw::DiskRequest real = Req(10, 1, /*deadline=*/30.0);
  sched.Push(&prefetch);
  sched.Push(&real);
  EXPECT_EQ(sched.Pop(0, 0.0), &prefetch);
}

TEST(MakeDiskSchedulerTest, BuildsEveryPolicy) {
  for (DiskSchedPolicy policy :
       {DiskSchedPolicy::kFcfs, DiskSchedPolicy::kElevator,
        DiskSchedPolicy::kRoundRobin, DiskSchedPolicy::kGss,
        DiskSchedPolicy::kRealTime}) {
    DiskSchedParams params;
    params.policy = policy;
    params.cylinder_bytes = kCyl;
    std::unique_ptr<hw::DiskScheduler> sched = MakeDiskScheduler(params);
    ASSERT_NE(sched, nullptr);
    EXPECT_TRUE(sched->empty());
    hw::DiskRequest r = Req(5, 0, 1.0);
    sched->Push(&r);
    EXPECT_EQ(sched->size(), 1u);
    EXPECT_EQ(sched->Pop(0, 0.0), &r);
  }
}

}  // namespace
}  // namespace spiffi::server
