#include "server/prefetch.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "server/disk_sched.h"

namespace spiffi::server {
namespace {

// Completion listener that finishes buffer-pool pages like a Node does.
class PoolCompleter final : public hw::DiskCompletionListener {
 public:
  explicit PoolCompleter(BufferPool* pool) : pool_(pool) {}
  void OnDiskComplete(hw::DiskRequest* request) override {
    ++completions;
    last_deadline = request->deadline;
    order.push_back(request->block);
    pool_->Complete(static_cast<BufferPool::Page*>(request->context));
  }
  int completions = 0;
  sim::SimTime last_deadline = 0.0;
  std::vector<std::int64_t> order;  // blocks in completion order

 private:
  BufferPool* pool_;
};

class PrefetchTest : public ::testing::Test {
 protected:
  void Build(PrefetchPolicy policy, int workers = 1,
             double max_advance = 8.0, std::int64_t pool_pages = 16) {
    pool_ = std::make_unique<BufferPool>(&env_, pool_pages,
                                         ReplacementPolicy::kLovePrefetch);
    cpu_ = std::make_unique<hw::Cpu>(&env_, 40.0, "cpu");
    completer_ = std::make_unique<PoolCompleter>(pool_.get());
    DiskSchedParams sched;
    sched.policy = DiskSchedPolicy::kFcfs;
    disk_ = std::make_unique<hw::Disk>(&env_, hw::DiskParams(),
                                       MakeDiskScheduler(sched), 0,
                                       completer_.get());
    prefetcher_ = std::make_unique<Prefetcher>(
        &env_, policy, workers, max_advance, pool_.get(), cpu_.get(),
        disk_.get(), hw::CpuCosts());
  }

  PrefetchTask Task(int video, std::int64_t block,
                    sim::SimTime deadline = sim::kSimTimeMax) {
    PrefetchTask task;
    task.key = PageKey{video, block};
    task.disk_offset = block * 512 * 1024;
    task.bytes = 512 * 1024;
    task.est_deadline = deadline;
    task.terminal = 1;
    return task;
  }

  sim::Environment env_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<hw::Cpu> cpu_;
  std::unique_ptr<PoolCompleter> completer_;
  std::unique_ptr<hw::Disk> disk_;
  std::unique_ptr<Prefetcher> prefetcher_;
};

TEST_F(PrefetchTest, FifoIssuesQueuedTask) {
  Build(PrefetchPolicy::kFifo);
  prefetcher_->Enqueue(Task(0, 5));
  env_.Run();
  EXPECT_EQ(completer_->completions, 1);
  BufferPool::Page* page = pool_->Lookup(PageKey{0, 5});
  ASSERT_NE(page, nullptr);
  EXPECT_TRUE(page->valid);
  EXPECT_TRUE(page->prefetched);
  EXPECT_EQ(page->pin_count, 0);  // worker unpinned after completion
}

TEST_F(PrefetchTest, NonePolicyDropsEverything) {
  Build(PrefetchPolicy::kNone);
  prefetcher_->Enqueue(Task(0, 5));
  env_.Run();
  EXPECT_EQ(completer_->completions, 0);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 5}), nullptr);
}

TEST_F(PrefetchTest, DuplicateTasksDropped) {
  Build(PrefetchPolicy::kFifo);
  prefetcher_->Enqueue(Task(0, 5));
  prefetcher_->Enqueue(Task(0, 5));
  env_.Run();
  EXPECT_EQ(prefetcher_->stats().duplicates_dropped, 1u);
  EXPECT_EQ(completer_->completions, 1);
}

TEST_F(PrefetchTest, AlreadyCachedTaskSkipped) {
  Build(PrefetchPolicy::kFifo);
  BufferPool::Page* page = pool_->Allocate(PageKey{0, 5}, false);
  pool_->Complete(page);
  pool_->Unpin(page);
  prefetcher_->Enqueue(Task(0, 5));
  env_.Run();
  EXPECT_EQ(completer_->completions, 0);
  EXPECT_EQ(prefetcher_->stats().already_cached, 1u);
}

TEST_F(PrefetchTest, FifoServesInArrivalOrderIgnoringDeadlines) {
  Build(PrefetchPolicy::kFifo, /*workers=*/1);
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/100.0));
  prefetcher_->Enqueue(Task(0, 2, /*deadline=*/1.0));  // more urgent
  env_.Run();
  EXPECT_EQ(completer_->completions, 2);
  // FIFO prefetches carry no deadline on the disk request.
  EXPECT_EQ(completer_->last_deadline, sim::kSimTimeMax);
}

TEST_F(PrefetchTest, RealTimePicksMostUrgentFirst) {
  Build(PrefetchPolicy::kRealTime, /*workers=*/1);
  bool first_done = false;
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/100.0));
  prefetcher_->Enqueue(Task(0, 2, /*deadline=*/1.0));
  // Let the single worker pick one task; the urgent one must go first
  // (the first enqueue wakes the worker, but it re-checks the queue at
  // the same instant after both arrive... run a tiny slice).
  env_.RunUntil(0.2);
  BufferPool::Page* urgent = pool_->Lookup(PageKey{0, 2});
  BufferPool::Page* lazy = pool_->Lookup(PageKey{0, 1});
  ASSERT_NE(urgent, nullptr);
  EXPECT_TRUE(urgent->valid || urgent->io_in_flight);
  // The lazy one must not have been issued before the urgent one
  // completed (single worker).
  if (lazy != nullptr) {
    EXPECT_TRUE(urgent->valid);
  }
  (void)first_done;
  env_.Run();
  EXPECT_EQ(completer_->completions, 2);
}

TEST_F(PrefetchTest, RealTimeRequestCarriesDeadline) {
  Build(PrefetchPolicy::kRealTime);
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/42.0));
  env_.Run();
  EXPECT_EQ(completer_->last_deadline, 42.0);
}

TEST_F(PrefetchTest, DelayedWaitsUntilWithinMaxAdvance) {
  Build(PrefetchPolicy::kDelayed, /*workers=*/1, /*max_advance=*/8.0);
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/20.0));
  // Eligible at t = 12; before that nothing may be issued.
  env_.RunUntil(11.0);
  EXPECT_EQ(prefetcher_->stats().issued, 0u);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 1}), nullptr);
  env_.RunUntil(13.0);
  EXPECT_EQ(prefetcher_->stats().issued, 1u);
  env_.Run();
  EXPECT_EQ(completer_->completions, 1);
}

TEST_F(PrefetchTest, DelayedIssuesImmediatelyWhenUrgent) {
  Build(PrefetchPolicy::kDelayed, /*workers=*/1, /*max_advance=*/8.0);
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/2.0));  // already within 8 s
  env_.RunUntil(0.5);
  EXPECT_EQ(prefetcher_->stats().issued, 1u);
}

TEST_F(PrefetchTest, DelayedWakesForMoreUrgentArrival) {
  Build(PrefetchPolicy::kDelayed, /*workers=*/1, /*max_advance=*/8.0);
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/100.0));  // eligible at 92
  env_.RunUntil(1.0);
  EXPECT_EQ(prefetcher_->stats().issued, 0u);
  prefetcher_->Enqueue(Task(0, 2, /*deadline=*/5.0));  // urgent now
  env_.RunUntil(2.0);
  EXPECT_EQ(prefetcher_->stats().issued, 1u);
  ASSERT_NE(pool_->Lookup(PageKey{0, 2}), nullptr);  // the urgent one
  EXPECT_EQ(pool_->Lookup(PageKey{0, 1}), nullptr);
}

TEST_F(PrefetchTest, RealTimePopsInDeadlineOrderStableOnTies) {
  // One worker + FCFS disk: completion order is exactly PopNext order.
  Build(PrefetchPolicy::kRealTime, /*workers=*/1);
  prefetcher_->Enqueue(Task(0, 1, /*deadline=*/50.0));
  prefetcher_->Enqueue(Task(0, 2, /*deadline=*/10.0));
  prefetcher_->Enqueue(Task(0, 3, /*deadline=*/50.0));
  prefetcher_->Enqueue(Task(0, 4, /*deadline=*/10.0));
  prefetcher_->Enqueue(Task(0, 5, /*deadline=*/30.0));
  env_.Run();
  // Earliest deadline first; equal deadlines keep arrival order.
  EXPECT_EQ(completer_->order,
            (std::vector<std::int64_t>{2, 4, 5, 1, 3}));
}

TEST_F(PrefetchTest, DeadlineHeapDrainMatchesStableSort) {
  // Larger drain: the heap must pop the same sequence the old
  // first-minimum linear scan produced, i.e. a stable sort by deadline.
  Build(PrefetchPolicy::kRealTime, /*workers=*/1, 8.0,
        /*pool_pages=*/256);
  struct Item {
    std::int64_t block;
    double deadline;
  };
  std::vector<Item> items;
  for (int i = 0; i < 60; ++i) {
    items.push_back({i, static_cast<double>((i * 37) % 7 + 100)});
  }
  for (const Item& item : items) {
    prefetcher_->Enqueue(Task(0, item.block, item.deadline));
  }
  env_.Run();
  std::stable_sort(items.begin(), items.end(),
                   [](const Item& a, const Item& b) {
                     return a.deadline < b.deadline;
                   });
  std::vector<std::int64_t> expected;
  for (const Item& item : items) expected.push_back(item.block);
  EXPECT_EQ(completer_->order, expected);
}

TEST_F(PrefetchTest, WorkerCountBoundsConcurrentPrefetches) {
  Build(PrefetchPolicy::kFifo, /*workers=*/2);
  for (int b = 0; b < 6; ++b) prefetcher_->Enqueue(Task(0, b));
  // Shortly after start at most 2 reads can be in flight.
  env_.RunUntil(0.01);
  int in_flight = 0;
  for (int b = 0; b < 6; ++b) {
    BufferPool::Page* page = pool_->Lookup(PageKey{0, b});
    if (page != nullptr && page->io_in_flight) ++in_flight;
  }
  EXPECT_LE(in_flight, 2);
  EXPECT_GT(in_flight, 0);
  env_.Run();
  EXPECT_EQ(completer_->completions, 6);
}

TEST_F(PrefetchTest, SaturatedPoolStallsPrefetchWithoutDeadlock) {
  Build(PrefetchPolicy::kFifo, /*workers=*/1, 8.0, /*pool_pages=*/2);
  // Fill and pin both pages, then enqueue a prefetch: it must wait.
  BufferPool::Page* a = pool_->Allocate(PageKey{9, 0}, false);
  pool_->Complete(a);
  BufferPool::Page* b = pool_->Allocate(PageKey{9, 1}, false);
  pool_->Complete(b);
  prefetcher_->Enqueue(Task(0, 5));
  env_.RunUntil(1.0);
  EXPECT_EQ(prefetcher_->stats().issued, 0u);
  // Release one page; the prefetch proceeds.
  pool_->Unpin(a);
  env_.Run();
  EXPECT_EQ(prefetcher_->stats().issued, 1u);
  EXPECT_EQ(completer_->completions, 1);
  pool_->Unpin(b);
}

}  // namespace
}  // namespace spiffi::server
