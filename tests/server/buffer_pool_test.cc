#include "server/buffer_pool.h"

#include "gtest/gtest.h"

namespace spiffi::server {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void Build(std::int64_t pages, ReplacementPolicy policy) {
    pool_ = std::make_unique<BufferPool>(&env_, pages, policy);
  }

  // Allocates, completes, and unpins a page: the state of a block that
  // was read and fully delivered.
  BufferPool::Page* FillPage(int video, std::int64_t block,
                             bool prefetch = false) {
    BufferPool::Page* page =
        pool_->Allocate(PageKey{video, block}, prefetch);
    EXPECT_NE(page, nullptr);
    pool_->Complete(page);
    pool_->Unpin(page);
    return page;
  }

  sim::Environment env_;
  std::unique_ptr<BufferPool> pool_;
};

TEST_F(BufferPoolTest, LookupMissesOnEmptyPool) {
  Build(4, ReplacementPolicy::kGlobalLru);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 0}), nullptr);
}

TEST_F(BufferPoolTest, AllocateThenLookupFinds) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* page = pool_->Allocate(PageKey{1, 7}, false);
  ASSERT_NE(page, nullptr);
  EXPECT_TRUE(page->io_in_flight);
  EXPECT_FALSE(page->valid);
  EXPECT_EQ(page->pin_count, 1);
  EXPECT_EQ(pool_->Lookup(PageKey{1, 7}), page);
}

TEST_F(BufferPoolTest, CompleteMakesPageValid) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* page = pool_->Allocate(PageKey{1, 7}, false);
  pool_->Complete(page);
  EXPECT_TRUE(page->valid);
  EXPECT_FALSE(page->io_in_flight);
}

TEST_F(BufferPoolTest, ExhaustedPoolReturnsNull) {
  Build(2, ReplacementPolicy::kGlobalLru);
  // Both pages pinned in flight: no allocation possible.
  ASSERT_NE(pool_->Allocate(PageKey{0, 0}, false), nullptr);
  ASSERT_NE(pool_->Allocate(PageKey{0, 1}, false), nullptr);
  EXPECT_EQ(pool_->Allocate(PageKey{0, 2}, false), nullptr);
  EXPECT_EQ(pool_->stats().allocation_stalls, 1u);
}

TEST_F(BufferPoolTest, GlobalLruEvictsOldestUnpinned) {
  Build(2, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* a = FillPage(0, 0);
  FillPage(0, 1);
  // Pool full; a is LRU and unpinned -> recycled for the new key.
  BufferPool::Page* c = pool_->Allocate(PageKey{0, 2}, false);
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 0}), nullptr);
  EXPECT_NE(pool_->Lookup(PageKey{0, 1}), nullptr);
  EXPECT_EQ(pool_->stats().evictions, 1u);
}

TEST_F(BufferPoolTest, TouchMovesPageToMruEnd) {
  Build(2, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* a = FillPage(0, 0);
  BufferPool::Page* b = FillPage(0, 1);
  pool_->Touch(a, /*terminal=*/3);  // a becomes MRU; b is now LRU
  BufferPool::Page* c = pool_->Allocate(PageKey{0, 2}, false);
  EXPECT_EQ(c, b);
  EXPECT_NE(pool_->Lookup(PageKey{0, 0}), nullptr);
}

TEST_F(BufferPoolTest, PinnedPageNotEvicted) {
  Build(2, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* a = FillPage(0, 0);
  BufferPool::Page* b = FillPage(0, 1);
  pool_->Pin(a);
  BufferPool::Page* c = pool_->Allocate(PageKey{0, 2}, false);
  EXPECT_EQ(c, b);  // skipped pinned a even though a was LRU
  pool_->Unpin(a);
}

TEST_F(BufferPoolTest, LovePrefetchEvictsReferencedBeforePrefetched) {
  Build(2, ReplacementPolicy::kLovePrefetch);
  BufferPool::Page* prefetched = FillPage(0, 0, /*prefetch=*/true);
  BufferPool::Page* referenced = FillPage(0, 1, /*prefetch=*/false);
  pool_->Touch(referenced, 1);
  // Under love prefetch the referenced page goes first even though the
  // prefetched page is older.
  BufferPool::Page* c = pool_->Allocate(PageKey{0, 2}, false);
  EXPECT_EQ(c, referenced);
  EXPECT_NE(pool_->Lookup(PageKey{0, 0}), nullptr);
  (void)prefetched;
}

TEST_F(BufferPoolTest, LovePrefetchFallsBackToPrefetchedChain) {
  Build(2, ReplacementPolicy::kLovePrefetch);
  BufferPool::Page* p0 = FillPage(0, 0, true);
  BufferPool::Page* p1 = FillPage(0, 1, true);
  // No referenced pages at all: must take the LRU prefetched page.
  BufferPool::Page* c = pool_->Allocate(PageKey{0, 2}, false);
  EXPECT_EQ(c, p0);
  EXPECT_EQ(pool_->stats().wasted_prefetches, 1u);
  (void)p1;
}

TEST_F(BufferPoolTest, GlobalLruIgnoresPrefetchDistinction) {
  Build(2, ReplacementPolicy::kGlobalLru);
  FillPage(0, 0, /*prefetch=*/true);   // older
  BufferPool::Page* r = FillPage(0, 1, /*prefetch=*/false);
  pool_->Touch(r, 1);
  // Global LRU evicts by age only: the prefetched page goes first.
  BufferPool::Page* c = pool_->Allocate(PageKey{0, 2}, false);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 0}), nullptr);
  EXPECT_NE(pool_->Lookup(PageKey{0, 1}), nullptr);
  (void)c;
}

TEST_F(BufferPoolTest, TouchPullsPrefetchedPageOffPrefetchChain) {
  Build(4, ReplacementPolicy::kLovePrefetch);
  BufferPool::Page* page = FillPage(0, 0, /*prefetch=*/true);
  EXPECT_EQ(pool_->chain_size(BufferPool::kPrefetchedChain), 1u);
  pool_->Touch(page, 2);
  EXPECT_EQ(pool_->chain_size(BufferPool::kPrefetchedChain), 0u);
  EXPECT_EQ(pool_->chain_size(BufferPool::kReferencedChain), 1u);
  EXPECT_FALSE(page->prefetched);
}

TEST_F(BufferPoolTest, SharedReferenceDetection) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* page = FillPage(0, 0);
  pool_->RecordReference(page, 1);
  pool_->Touch(page, 1);
  EXPECT_EQ(pool_->stats().shared_refs, 0u);
  pool_->RecordReference(page, 2);  // different terminal -> shared
  pool_->Touch(page, 2);
  pool_->RecordReference(page, 2);  // same terminal again -> not shared
  EXPECT_EQ(pool_->stats().shared_refs, 1u);
  EXPECT_EQ(pool_->stats().references, 3u);
}

TEST_F(BufferPoolTest, HitAttachMissClassification) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* inflight = pool_->Allocate(PageKey{0, 0}, false);
  pool_->RecordReference(inflight, 1);  // in flight -> attach
  pool_->Complete(inflight);
  pool_->RecordReference(inflight, 2);  // valid -> hit
  pool_->RecordMiss();
  const auto& stats = pool_->stats();
  EXPECT_EQ(stats.attaches, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.references, 3u);
  pool_->Unpin(inflight);
}

TEST_F(BufferPoolTest, ReadyWaitersNotifiedOnComplete) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* page = pool_->Allocate(PageKey{0, 0}, false);
  int woken = 0;
  env_.Spawn([](BufferPool* pool, BufferPool::Page* page,
                int* woken) -> sim::Process {
    pool->Pin(page);
    (void)co_await pool->Ready(page).Wait();
    EXPECT_TRUE(page->valid);
    ++*woken;
    pool->Unpin(page);
  }(pool_.get(), page, &woken));
  env_.Spawn([](sim::Environment* env, BufferPool* pool,
                BufferPool::Page* page) -> sim::Process {
    co_await env->Hold(1.0);
    pool->Complete(page);
    pool->Unpin(page);
  }(&env_, pool_.get(), page));
  env_.Run();
  EXPECT_EQ(woken, 1);
}

TEST_F(BufferPoolTest, UnpinWakesAllocationStalledProcess) {
  Build(1, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* only = pool_->Allocate(PageKey{0, 0}, false);
  pool_->Complete(only);  // valid but still pinned by allocator
  bool allocated = false;
  env_.Spawn([](BufferPool* pool, bool* done) -> sim::Process {
    BufferPool::Page* page = nullptr;
    while ((page = pool->Allocate(PageKey{0, 1}, false)) == nullptr) {
      (void)co_await pool->free_pages().Wait();
    }
    *done = true;
    pool->Complete(page);
    pool->Unpin(page);
  }(pool_.get(), &allocated));
  env_.Spawn([](sim::Environment* env, BufferPool* pool,
                BufferPool::Page* page) -> sim::Process {
    co_await env->Hold(2.0);
    pool->Unpin(page);  // page becomes evictable; waiter proceeds
  }(&env_, pool_.get(), only));
  env_.Run();
  EXPECT_TRUE(allocated);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 0}), nullptr);  // evicted
  EXPECT_NE(pool_->Lookup(PageKey{0, 1}), nullptr);
}

TEST_F(BufferPoolTest, WastedPrefetchOnlyWhenNeverReferenced) {
  Build(1, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* page = FillPage(0, 0, /*prefetch=*/true);
  pool_->Touch(page, 1);  // referenced before eviction
  pool_->Allocate(PageKey{0, 1}, false);
  EXPECT_EQ(pool_->stats().wasted_prefetches, 0u);
  EXPECT_EQ(pool_->stats().evictions, 1u);
}

TEST_F(BufferPoolTest, PinnedPrefixPageSurvivesEvictionPressure) {
  Build(2, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* prefix = FillPage(0, 0);
  FillPage(0, 1);
  pool_->PinPrefix(prefix);
  EXPECT_EQ(pool_->pinned_pages(), 1);
  // Repeated allocation pressure must always recycle the other slot;
  // the pinned prefix page never leaves the table.
  for (int i = 2; i < 8; ++i) {
    BufferPool::Page* page = pool_->Allocate(PageKey{0, i}, false);
    ASSERT_NE(page, nullptr);
    EXPECT_NE(page, prefix);
    pool_->Complete(page);
    pool_->Unpin(page);
  }
  EXPECT_EQ(pool_->Lookup(PageKey{0, 0}), prefix);
  EXPECT_TRUE(prefix->pinned_prefix);
}

TEST_F(BufferPoolTest, PinnedPrefixSurvivesUnderLovePrefetch) {
  Build(2, ReplacementPolicy::kLovePrefetch);
  BufferPool::Page* prefix = FillPage(0, 0, /*prefetch=*/true);
  FillPage(0, 1, /*prefetch=*/true);
  pool_->PinPrefix(prefix);
  // Both eviction chains are scanned before giving up; neither may
  // yield the pinned page.
  BufferPool::Page* page = pool_->Allocate(PageKey{0, 2}, false);
  ASSERT_NE(page, nullptr);
  EXPECT_NE(page, prefix);
  EXPECT_EQ(pool_->Lookup(PageKey{0, 0}), prefix);
}

TEST_F(BufferPoolTest, PinnedPrefetchedPageNeverCountsWasted) {
  Build(1, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* page = FillPage(0, 0, /*prefetch=*/true);
  pool_->PinPrefix(page);   // pinning clears the prefetched mark
  pool_->UnpinPrefix(page); // back on the LRU, evictable again
  pool_->Allocate(PageKey{0, 1}, false);
  EXPECT_EQ(pool_->stats().evictions, 1u);
  EXPECT_EQ(pool_->stats().wasted_prefetches, 0u);
}

TEST_F(BufferPoolTest, PrefixHitCountsReferencesToPinnedPages) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* prefix = FillPage(0, 0);
  BufferPool::Page* plain = FillPage(0, 1);
  pool_->PinPrefix(prefix);
  pool_->RecordReference(prefix, 1);
  pool_->Touch(prefix, 1);
  pool_->RecordReference(plain, 1);
  pool_->Touch(plain, 1);
  EXPECT_EQ(pool_->stats().prefix_hits, 1u);
  EXPECT_EQ(pool_->stats().hits, 2u);
}

TEST_F(BufferPoolTest, TouchLeavesPinnedPageOnPinnedChain) {
  Build(4, ReplacementPolicy::kGlobalLru);
  BufferPool::Page* prefix = FillPage(0, 0);
  pool_->PinPrefix(prefix);
  pool_->Touch(prefix, 2);
  EXPECT_EQ(pool_->chain_size(BufferPool::kPinnedChain), 1u);
  EXPECT_EQ(pool_->pinned_pages(), 1);
  pool_->UnpinPrefix(prefix);
  EXPECT_EQ(pool_->chain_size(BufferPool::kPinnedChain), 0u);
  EXPECT_EQ(pool_->chain_size(BufferPool::kReferencedChain), 1u);
}

TEST_F(BufferPoolTest, PagesInUseTracksFreeList) {
  Build(4, ReplacementPolicy::kGlobalLru);
  EXPECT_EQ(pool_->pages_in_use(), 0);
  FillPage(0, 0);
  FillPage(0, 1);
  EXPECT_EQ(pool_->pages_in_use(), 2);
}

}  // namespace
}  // namespace spiffi::server
