// Node behaviour when the buffer pool is nearly exhausted: requests must
// stall on page allocation and drain without deadlock, and the stall
// statistics must record it.

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "server/node.h"

namespace spiffi::server {
namespace {

class CountingSink final : public MessageSink {
 public:
  void OnMessage(const Message&) override { ++replies; }
  int replies = 0;
};

class MemoryPressureTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBlock = 512 * 1024;

  void Build(std::int64_t pool_pages, PrefetchPolicy prefetch) {
    mpeg::ZipfDistribution popularity(4, 0.0);
    library_ = std::make_unique<mpeg::VideoLibrary>(
        4, 120.0, mpeg::MpegParams(), popularity, 1);
    std::vector<std::int64_t> blocks;
    for (int v = 0; v < 4; ++v) {
      blocks.push_back(library_->NumBlocks(v, kBlock));
    }
    layout_ = std::make_unique<layout::StripedLayout>(1, 2, kBlock,
                                                      std::move(blocks));
    network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
    NodeConfig config;
    config.disks_per_node = 2;
    config.block_bytes = kBlock;
    config.pool_pages = pool_pages;
    config.prefetch = prefetch;
    config.prefetch_workers = 4;
    node_ = std::make_unique<Node>(&env_, config, network_.get(),
                                   library_.get(), layout_.get());
  }

  void SendRead(int video, std::int64_t block, int terminal) {
    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = terminal;
    request.video = video;
    request.block = block;
    request.deadline = 100.0;
    request.reply_to = &sink_;
    PostMessage(&env_, network_.get(), kControlMessageBytes, node_.get(),
                request);
  }

  sim::Environment env_;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::StripedLayout> layout_;
  std::unique_ptr<hw::Network> network_;
  std::unique_ptr<Node> node_;
  CountingSink sink_;
};

TEST_F(MemoryPressureTest, BurstLargerThanPoolDrainsCompletely) {
  Build(/*pool_pages=*/4, PrefetchPolicy::kNone);
  // 32 distinct blocks, only 4 pages: most requests must wait for pages.
  for (int i = 0; i < 32; ++i) {
    SendRead(i % 4, (i / 4) * 2, /*terminal=*/i);
  }
  env_.Run();
  EXPECT_EQ(sink_.replies, 32);
  EXPECT_GT(node_->pool().stats().allocation_stalls, 0u);
  EXPECT_GT(node_->pool().stats().evictions, 0u);
}

TEST_F(MemoryPressureTest, PrefetchDoesNotDeadlockTinyPool) {
  Build(/*pool_pages=*/3, PrefetchPolicy::kFifo);
  for (int i = 0; i < 16; ++i) {
    SendRead(i % 4, 0, i);
    SendRead(i % 4, 1, i);
  }
  env_.Run();
  EXPECT_EQ(sink_.replies, 32);
}

TEST_F(MemoryPressureTest, SharingStillWorksUnderPressure) {
  Build(/*pool_pages=*/4, PrefetchPolicy::kNone);
  // Many terminals hammer the same block: one disk read, many replies.
  for (int t = 0; t < 20; ++t) SendRead(0, 0, t);
  env_.Run();
  EXPECT_EQ(sink_.replies, 20);
  EXPECT_EQ(node_->pool().stats().misses, 1u);
  EXPECT_EQ(node_->pool().stats().attaches + node_->pool().stats().hits,
            19u);
}

TEST_F(MemoryPressureTest, StallsClearOnceLoadPasses) {
  Build(/*pool_pages=*/4, PrefetchPolicy::kNone);
  for (int i = 0; i < 16; ++i) SendRead(i % 4, i % 3, i);
  env_.Run();
  int first_wave = sink_.replies;
  EXPECT_EQ(first_wave, 16);
  // A later request proceeds normally.
  SendRead(0, 4, 99);
  env_.Run();
  EXPECT_EQ(sink_.replies, 17);
}

}  // namespace
}  // namespace spiffi::server
