#include "server/message.h"

#include <vector>

#include "gtest/gtest.h"

namespace spiffi::server {
namespace {

class SinkRecorder final : public MessageSink {
 public:
  explicit SinkRecorder(sim::Environment* env) : env_(env) {}
  void OnMessage(const Message& message) override {
    received.push_back({message, env_->now()});
  }
  std::vector<std::pair<Message, double>> received;

 private:
  sim::Environment* env_;
};

TEST(MessageTest, DeliveredAfterWireDelay) {
  sim::Environment env;
  hw::Network network(&env, hw::NetworkParams());
  SinkRecorder sink(&env);
  Message message;
  message.kind = Message::Kind::kReadRequest;
  message.terminal = 7;
  message.video = 3;
  message.block = 11;
  message.deadline = 42.0;
  PostMessage(&env, &network, kControlMessageBytes, &sink, message);
  env.Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].first.terminal, 7);
  EXPECT_EQ(sink.received[0].first.video, 3);
  EXPECT_EQ(sink.received[0].first.block, 11);
  EXPECT_DOUBLE_EQ(sink.received[0].first.deadline, 42.0);
  EXPECT_NEAR(sink.received[0].second,
              network.WireDelay(kControlMessageBytes), 1e-12);
}

TEST(MessageTest, LargePayloadTakesLonger) {
  sim::Environment env;
  hw::Network network(&env, hw::NetworkParams());
  SinkRecorder sink(&env);
  Message small, large;
  PostMessage(&env, &network, 64, &sink, small);
  PostMessage(&env, &network, 512 * 1024, &sink, large);
  env.Run();
  ASSERT_EQ(sink.received.size(), 2u);
  EXPECT_LT(sink.received[0].second, sink.received[1].second);
}

TEST(MessageTest, ManyMessagesAllDelivered) {
  sim::Environment env;
  hw::Network network(&env, hw::NetworkParams());
  SinkRecorder sink(&env);
  for (int i = 0; i < 1000; ++i) {
    Message m;
    m.block = i;
    PostMessage(&env, &network, 64, &sink, m);
  }
  env.Run();
  EXPECT_EQ(sink.received.size(), 1000u);
  // FIFO for equal-size messages sent at the same instant.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sink.received[i].first.block, i);
  }
}

}  // namespace
}  // namespace spiffi::server
