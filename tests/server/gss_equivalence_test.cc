// The paper's limit claims about GSS (§5.2.2): with one group it is
// nearly the elevator (at most one request per terminal per pass), and
// with one group per terminal it is round-robin.

#include <algorithm>
#include <vector>

#include "gtest/gtest.h"
#include "server/disk_sched.h"
#include "sim/random.h"

namespace spiffi::server {
namespace {

constexpr std::int64_t kCyl = 1280 * 1024;

std::vector<hw::DiskRequest> OnePerTerminal(int terminals,
                                            std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<hw::DiskRequest> requests(terminals);
  for (int i = 0; i < terminals; ++i) {
    requests[i].disk_offset =
        static_cast<std::int64_t>(rng.UniformInt(5000)) * kCyl;
    requests[i].bytes = 1;
    requests[i].terminal = i;
    requests[i].seq = static_cast<std::uint64_t>(i);
  }
  return requests;
}

// GSS with groups == terminals pops in the same terminal-cyclic order as
// round-robin when each terminal has one pending request.
TEST(GssEquivalenceTest, ManyGroupsActsLikeRoundRobin) {
  constexpr int kTerminals = 24;
  auto requests = OnePerTerminal(kTerminals, 5);
  GssScheduler gss(kTerminals, kCyl);
  RoundRobinScheduler rr;
  for (auto& r : requests) {
    gss.Push(&r);
    rr.Push(&r);
  }
  // Each GSS group holds one terminal; groups are processed round-robin
  // by group id == terminal id, so the terminal order matches
  // round-robin's cyclic id order.
  for (int i = 0; i < kTerminals; ++i) {
    hw::DiskRequest* from_gss = gss.Pop(0, 0.0);
    hw::DiskRequest* from_rr = rr.Pop(0, 0.0);
    EXPECT_EQ(from_gss->terminal, from_rr->terminal) << "pop " << i;
  }
}

// GSS with one group serves a one-request-per-terminal batch in a single
// monotone sweep, exactly like the elevator would for that batch.
TEST(GssEquivalenceTest, OneGroupSweepsLikeElevator) {
  auto requests = OnePerTerminal(16, 9);
  GssScheduler gss(1, kCyl);
  for (auto& r : requests) gss.Push(&r);
  std::vector<std::int64_t> cylinders;
  for (int i = 0; i < 16; ++i) {
    cylinders.push_back(gss.Pop(0, 0.0)->disk_offset / kCyl);
  }
  bool ascending = true;
  bool descending = true;
  for (std::size_t i = 1; i < cylinders.size(); ++i) {
    if (cylinders[i] < cylinders[i - 1]) ascending = false;
    if (cylinders[i] > cylinders[i - 1]) descending = false;
  }
  EXPECT_TRUE(ascending || descending);
}

// The difference from a true elevator: a terminal with many queued
// requests gets exactly one serviced per pass under GSS-1.
TEST(GssEquivalenceTest, OneGroupLimitsTerminalToOnePerPass) {
  GssScheduler gss(1, kCyl);
  std::vector<hw::DiskRequest> hog(5);
  hw::DiskRequest other;
  for (int i = 0; i < 5; ++i) {
    hog[i].disk_offset = i * kCyl;
    hog[i].bytes = 1;
    hog[i].terminal = 0;
    hog[i].seq = static_cast<std::uint64_t>(i);
    gss.Push(&hog[i]);
  }
  other.disk_offset = 100 * kCyl;
  other.bytes = 1;
  other.terminal = 1;
  other.seq = 99;
  gss.Push(&other);
  // First pass: one request from terminal 0 and the one from terminal 1.
  std::vector<int> first_pass = {gss.Pop(0, 0.0)->terminal,
                                 gss.Pop(0, 0.0)->terminal};
  std::sort(first_pass.begin(), first_pass.end());
  EXPECT_EQ(first_pass, (std::vector<int>{0, 1}));
  // Remaining passes drain terminal 0's queue one per pass.
  for (int pass = 0; pass < 4; ++pass) {
    EXPECT_EQ(gss.Pop(0, 0.0)->terminal, 0);
  }
  EXPECT_TRUE(gss.empty());
}

}  // namespace
}  // namespace spiffi::server
