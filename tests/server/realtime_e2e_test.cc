// End-to-end behaviour of deadline-driven scheduling through a whole
// node: urgent requests overtake lazy ones on the disk, and deadline
// boosts from attaching requests take effect.

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "server/node.h"

namespace spiffi::server {
namespace {

class ReplyLog final : public MessageSink {
 public:
  explicit ReplyLog(sim::Environment* env) : env_(env) {}
  void OnMessage(const Message& message) override {
    replies.push_back({message.block, env_->now()});
  }
  std::vector<std::pair<std::int64_t, double>> replies;

 private:
  sim::Environment* env_;
};

class RealTimeE2eTest : public ::testing::Test {
 protected:
  static constexpr std::int64_t kBlock = 512 * 1024;

  void Build(DiskSchedPolicy policy) {
    mpeg::ZipfDistribution popularity(2, 0.0);
    library_ = std::make_unique<mpeg::VideoLibrary>(
        2, 120.0, mpeg::MpegParams(), popularity, 1);
    std::vector<std::int64_t> blocks;
    for (int v = 0; v < 2; ++v) {
      blocks.push_back(library_->NumBlocks(v, kBlock));
    }
    // One node, ONE disk so everything contends on one arm.
    layout_ = std::make_unique<layout::StripedLayout>(1, 1, kBlock,
                                                      std::move(blocks));
    network_ = std::make_unique<hw::Network>(&env_, hw::NetworkParams());
    NodeConfig config;
    config.disks_per_node = 1;
    config.block_bytes = kBlock;
    config.sched.policy = policy;
    config.sched.realtime_classes = 3;
    config.sched.realtime_spacing_sec = 2.0;
    config.prefetch = PrefetchPolicy::kNone;
    node_ = std::make_unique<Node>(&env_, config, network_.get(),
                                   library_.get(), layout_.get());
    log_ = std::make_unique<ReplyLog>(&env_);
  }

  void SendRead(std::int64_t block, double deadline, int terminal) {
    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = terminal;
    request.video = 0;
    request.block = block;
    request.deadline = deadline;
    request.reply_to = log_.get();
    PostMessage(&env_, network_.get(), kControlMessageBytes, node_.get(),
                request);
  }

  sim::Environment env_;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::StripedLayout> layout_;
  std::unique_ptr<hw::Network> network_;
  std::unique_ptr<Node> node_;
  std::unique_ptr<ReplyLog> log_;
};

TEST_F(RealTimeE2eTest, UrgentRequestOvertakesLazyOnes) {
  Build(DiskSchedPolicy::kRealTime);
  // Ten lazy requests spread over the disk, then one urgent request to a
  // far cylinder. With real-time scheduling the urgent one is serviced
  // as soon as the in-progress read finishes.
  for (int i = 0; i < 10; ++i) {
    SendRead(/*block=*/i * 10, /*deadline=*/60.0, /*terminal=*/i);
  }
  SendRead(/*block=*/95, /*deadline=*/0.3, /*terminal=*/99);
  env_.Run();
  ASSERT_EQ(log_->replies.size(), 11u);
  // The urgent block (95) is among the first two replies (it may just
  // miss the head of the first service).
  bool urgent_early = log_->replies[0].first == 95 ||
                      log_->replies[1].first == 95;
  EXPECT_TRUE(urgent_early);
}

TEST_F(RealTimeE2eTest, FcfsDoesNotReorderForDeadlines) {
  Build(DiskSchedPolicy::kFcfs);
  for (int i = 0; i < 10; ++i) {
    SendRead(i * 10, 60.0, i);
  }
  SendRead(95, 0.3, 99);
  env_.Run();
  ASSERT_EQ(log_->replies.size(), 11u);
  // FCFS serves in arrival order: the urgent request is last.
  EXPECT_EQ(log_->replies.back().first, 95);
}

TEST_F(RealTimeE2eTest, AttachBoostAcceleratesSharedRead) {
  Build(DiskSchedPolicy::kRealTime);
  // Fill the disk queue with lazy work, then request block 90 lazily and
  // attach to it urgently: the shared read must jump the queue.
  for (int i = 0; i < 10; ++i) {
    SendRead(i * 10 + 1, 60.0, i);
  }
  SendRead(90, 60.0, 50);   // lazy original
  SendRead(90, 0.3, 51);    // urgent attacher boosts the pending read
  env_.Run();
  ASSERT_EQ(log_->replies.size(), 12u);
  // Block 90 replies (two of them) appear within the first four replies.
  int position_of_shared = 0;
  for (std::size_t i = 0; i < log_->replies.size(); ++i) {
    if (log_->replies[i].first == 90) {
      position_of_shared = static_cast<int>(i);
      break;
    }
  }
  EXPECT_LT(position_of_shared, 4);
}

TEST_F(RealTimeE2eTest, PastDueRequestsAreMostUrgent) {
  Build(DiskSchedPolicy::kRealTime);
  for (int i = 0; i < 6; ++i) {
    SendRead(i * 10, 3.0, i);  // class 1 at t=0
  }
  SendRead(77, -1.0, 9);  // already past due -> class 0
  env_.Run();
  ASSERT_EQ(log_->replies.size(), 7u);
  bool past_due_early =
      log_->replies[0].first == 77 || log_->replies[1].first == 77;
  EXPECT_TRUE(past_due_early);
}

}  // namespace
}  // namespace spiffi::server
