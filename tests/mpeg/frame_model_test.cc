#include "mpeg/frame_model.h"

#include "gtest/gtest.h"

namespace spiffi::mpeg {
namespace {

TEST(FrameModelTest, GopPatternMatchesFrequencyRatio) {
  FrameModel model{MpegParams()};
  int i = 0, p = 0, b = 0;
  for (std::int64_t f = 0; f < 15; ++f) {
    switch (model.TypeOf(f)) {
      case FrameType::kI: ++i; break;
      case FrameType::kP: ++p; break;
      case FrameType::kB: ++b; break;
    }
  }
  EXPECT_EQ(i, 1);
  EXPECT_EQ(p, 4);
  EXPECT_EQ(b, 10);
}

TEST(FrameModelTest, PatternRepeatsEveryGop) {
  FrameModel model{MpegParams()};
  for (std::int64_t f = 0; f < 15; ++f) {
    EXPECT_EQ(model.TypeOf(f), model.TypeOf(f + 15));
    EXPECT_EQ(model.TypeOf(f), model.TypeOf(f + 150));
  }
}

TEST(FrameModelTest, MeanSizesFollowSizeRatio) {
  FrameModel model{MpegParams()};
  double i = model.MeanBytes(FrameType::kI);
  double p = model.MeanBytes(FrameType::kP);
  double b = model.MeanBytes(FrameType::kB);
  EXPECT_NEAR(i / p, 2.0, 1e-12);   // 10:5
  EXPECT_NEAR(p / b, 2.5, 1e-12);   // 5:2
}

TEST(FrameModelTest, LongRunRateMatchesBitRate) {
  MpegParams params;
  FrameModel model{params};
  // Expected bytes per GOP from mean sizes.
  double gop_bytes = model.MeanBytes(FrameType::kI) +
                     4 * model.MeanBytes(FrameType::kP) +
                     10 * model.MeanBytes(FrameType::kB);
  double secs_per_gop = 15.0 / params.frames_per_second;
  EXPECT_NEAR(gop_bytes / secs_per_gop, params.bytes_per_second(), 1e-6);
}

TEST(FrameModelTest, FrameBytesDeterministicPerSeed) {
  FrameModel model{MpegParams()};
  for (std::int64_t f = 0; f < 100; ++f) {
    EXPECT_EQ(model.FrameBytes(11, f), model.FrameBytes(11, f));
  }
  // Different seeds give different streams.
  int diffs = 0;
  for (std::int64_t f = 0; f < 100; ++f) {
    if (model.FrameBytes(11, f) != model.FrameBytes(12, f)) ++diffs;
  }
  EXPECT_GT(diffs, 90);
}

TEST(FrameModelTest, EmpiricalMeanNearNominal) {
  MpegParams params;
  FrameModel model{params};
  double sum = 0.0;
  constexpr std::int64_t kFrames = 150000;
  for (std::int64_t f = 0; f < kFrames; ++f) {
    sum += static_cast<double>(model.FrameBytes(99, f));
  }
  double empirical = sum / kFrames;
  EXPECT_NEAR(empirical / params.mean_frame_bytes(), 1.0, 0.02);
}

TEST(FrameModelTest, SizesAreAtLeastOneByte) {
  FrameModel model{MpegParams()};
  for (std::int64_t f = 0; f < 10000; ++f) {
    EXPECT_GE(model.FrameBytes(3, f), 1);
  }
}

TEST(FrameModelTest, IFramesLargerOnAverageThanBFrames) {
  FrameModel model{MpegParams()};
  double i_sum = 0, b_sum = 0;
  int i_n = 0, b_n = 0;
  for (std::int64_t f = 0; f < 30000; ++f) {
    if (model.TypeOf(f) == FrameType::kI) {
      i_sum += static_cast<double>(model.FrameBytes(5, f));
      ++i_n;
    } else if (model.TypeOf(f) == FrameType::kB) {
      b_sum += static_cast<double>(model.FrameBytes(5, f));
      ++b_n;
    }
  }
  EXPECT_NEAR((i_sum / i_n) / (b_sum / b_n), 5.0, 0.8);
}

}  // namespace
}  // namespace spiffi::mpeg
