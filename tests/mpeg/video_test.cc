#include "mpeg/video.h"

#include <memory>

#include "gtest/gtest.h"

namespace spiffi::mpeg {
namespace {

class VideoTest : public ::testing::Test {
 protected:
  VideoTest() : model_(MpegParams()) {}
  FrameModel model_;
};

TEST_F(VideoTest, FrameCountMatchesDuration) {
  Video v(0, 1, &model_, 60.0);
  EXPECT_EQ(v.frame_count(), 1800);  // 60 s at 30 fps
}

TEST_F(VideoTest, TotalBytesNearNominalRate) {
  Video v(0, 1, &model_, 600.0);
  double nominal = 600.0 * model_.params().bytes_per_second();
  EXPECT_NEAR(static_cast<double>(v.total_bytes()) / nominal, 1.0, 0.05);
}

TEST_F(VideoTest, CumulativeBytesMonotone) {
  Video v(0, 1, &model_, 30.0);
  std::int64_t prev = 0;
  for (std::int64_t f = 0; f <= v.frame_count(); f += 97) {
    std::int64_t cum = v.CumulativeBytesAtFrame(f);
    EXPECT_GE(cum, prev);
    prev = cum;
  }
  EXPECT_EQ(v.CumulativeBytesAtFrame(v.frame_count()), v.total_bytes());
}

TEST_F(VideoTest, CumulativeBytesMatchesManualSum) {
  Video v(0, 7, &model_, 10.0);
  std::int64_t sum = 0;
  for (std::int64_t f = 0; f < 45; ++f) sum += v.FrameBytes(f);
  EXPECT_EQ(v.CumulativeBytesAtFrame(45), sum);
}

TEST_F(VideoTest, FrameOfByteInverseOfCumulative) {
  Video v(0, 3, &model_, 30.0);
  for (std::int64_t f = 0; f < v.frame_count(); f += 13) {
    std::int64_t start = v.CumulativeBytesAtFrame(f);
    EXPECT_EQ(v.FrameOfByte(start), f);
    EXPECT_EQ(v.FrameOfByte(start + v.FrameBytes(f) - 1), f);
  }
}

TEST_F(VideoTest, PlaybackTimeMonotoneInByte) {
  Video v(0, 3, &model_, 60.0);
  double prev = -1.0;
  for (std::int64_t b = 0; b < v.total_bytes(); b += v.total_bytes() / 50) {
    double t = v.PlaybackTimeOfByte(b);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST_F(VideoTest, PlaybackTimeOfEndIsDuration) {
  Video v(0, 3, &model_, 60.0);
  EXPECT_DOUBLE_EQ(v.PlaybackTimeOfByte(v.total_bytes()), 60.0);
  EXPECT_DOUBLE_EQ(v.PlaybackTimeOfByte(v.total_bytes() + 1000), 60.0);
}

TEST_F(VideoTest, FirstByteNeededAtTimeZero) {
  Video v(0, 3, &model_, 60.0);
  EXPECT_DOUBLE_EQ(v.PlaybackTimeOfByte(0), 0.0);
}

TEST_F(VideoTest, SameSeedReproducesStream) {
  Video a(0, 42, &model_, 30.0);
  Video b(1, 42, &model_, 30.0);
  for (std::int64_t f = 0; f < a.frame_count(); f += 7) {
    EXPECT_EQ(a.FrameBytes(f), b.FrameBytes(f));
  }
}

TEST(VideoLibraryTest, BuildsRequestedCount) {
  ZipfDistribution zipf(64, 1.0);
  VideoLibrary lib(64, 60.0, MpegParams(), zipf, 1);
  EXPECT_EQ(lib.count(), 64);
  // Distinct videos have distinct streams.
  EXPECT_NE(lib.video(0).total_bytes(), lib.video(1).total_bytes());
}

TEST(VideoLibraryTest, NumBlocksCoversVideo) {
  ZipfDistribution zipf(4, 1.0);
  VideoLibrary lib(4, 60.0, MpegParams(), zipf, 1);
  std::int64_t block_bytes = 512 * 1024;
  std::int64_t blocks = lib.NumBlocks(0, block_bytes);
  EXPECT_GE(blocks * block_bytes, lib.video(0).total_bytes());
  EXPECT_LT((blocks - 1) * block_bytes, lib.video(0).total_bytes());
}

TEST(VideoLibraryTest, BlockPlaybackTimesSpreadOverDuration) {
  ZipfDistribution zipf(2, 1.0);
  VideoLibrary lib(2, 60.0, MpegParams(), zipf, 1);
  std::int64_t block_bytes = 512 * 1024;
  std::int64_t blocks = lib.NumBlocks(0, block_bytes);
  EXPECT_DOUBLE_EQ(lib.BlockPlaybackTime(0, 0, block_bytes), 0.0);
  double late = lib.BlockPlaybackTime(0, blocks - 1, block_bytes);
  EXPECT_GT(late, 55.0);
  EXPECT_LE(late, 60.0);
  // Consecutive blocks are roughly one second of video apart (512 KiB at
  // 4 Mbit/s ~ 1 s).
  double t10 = lib.BlockPlaybackTime(0, 10, block_bytes);
  double t11 = lib.BlockPlaybackTime(0, 11, block_bytes);
  EXPECT_GT(t11 - t10, 0.3);
  EXPECT_LT(t11 - t10, 3.0);
}

TEST(VideoLibraryTest, SelectionFollowsPopularity) {
  ZipfDistribution zipf(16, 1.0);
  VideoLibrary lib(16, 60.0, MpegParams(), zipf, 1);
  sim::Rng rng(5);
  std::vector<int> counts(16, 0);
  for (int i = 0; i < 20000; ++i) ++counts[lib.Select(&rng)];
  EXPECT_GT(counts[0], counts[8]);
  EXPECT_GT(counts[0], 3 * counts[15]);
}

}  // namespace
}  // namespace spiffi::mpeg
