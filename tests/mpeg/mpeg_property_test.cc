// Parameterized property tests for the MPEG video substrate.

#include <cmath>

#include "gtest/gtest.h"
#include "mpeg/video.h"
#include "mpeg/zipf.h"

namespace spiffi::mpeg {
namespace {

// --- Zipf properties over the z range ---

class ZipfPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfPropertyTest, ProbabilitiesDecreaseWithRank) {
  ZipfDistribution zipf(64, GetParam());
  for (int r = 1; r < 64; ++r) {
    EXPECT_LE(zipf.Probability(r), zipf.Probability(r - 1) + 1e-15);
  }
}

TEST_P(ZipfPropertyTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(64, GetParam());
  double sum = 0.0;
  for (int r = 0; r < 64; ++r) sum += zipf.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST_P(ZipfPropertyTest, EmpiricalFrequenciesMatch) {
  ZipfDistribution zipf(16, GetParam());
  sim::Rng rng(42);
  std::vector<int> counts(16, 0);
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (int r = 0; r < 16; ++r) {
    double expected = zipf.Probability(r) * kDraws;
    EXPECT_NEAR(counts[r], expected,
                6.0 * std::sqrt(expected + 1.0) + 12.0);
  }
}

INSTANTIATE_TEST_SUITE_P(ZRange, ZipfPropertyTest,
                         ::testing::Values(0.0, 0.25, 0.5, 1.0, 1.5, 2.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "z" + std::to_string(static_cast<int>(
                                            info.param * 100));
                         });

// --- Video timeline properties over durations ---

class VideoPropertyTest : public ::testing::TestWithParam<double> {
 protected:
  VideoPropertyTest() : model_(MpegParams()) {}
  FrameModel model_;
};

TEST_P(VideoPropertyTest, ByteToFrameMappingIsMonotoneAndConsistent) {
  Video video(0, 99, &model_, GetParam());
  std::int64_t total = video.total_bytes();
  std::int64_t step = std::max<std::int64_t>(1, total / 200);
  std::int64_t prev_frame = 0;
  for (std::int64_t byte = 0; byte < total; byte += step) {
    std::int64_t frame = video.FrameOfByte(byte);
    EXPECT_GE(frame, prev_frame);
    // The byte lies inside the frame's extent.
    EXPECT_LE(video.CumulativeBytesAtFrame(frame), byte);
    EXPECT_GT(video.CumulativeBytesAtFrame(frame + 1), byte);
    prev_frame = frame;
  }
}

TEST_P(VideoPropertyTest, PlaybackTimeCoversDuration) {
  Video video(0, 7, &model_, GetParam());
  EXPECT_DOUBLE_EQ(video.PlaybackTimeOfByte(0), 0.0);
  double at_end = video.PlaybackTimeOfByte(video.total_bytes());
  EXPECT_DOUBLE_EQ(at_end, video.duration_seconds());
  // One second of playback is about bytes_per_second() of data.
  double rate = model_.params().bytes_per_second();
  std::int64_t half = video.total_bytes() / 2;
  double t_half = video.PlaybackTimeOfByte(half);
  EXPECT_NEAR(t_half, static_cast<double>(half) / rate,
              video.duration_seconds() * 0.1);
}

TEST_P(VideoPropertyTest, TotalBytesMatchSumOfFrames) {
  Video video(0, 13, &model_, GetParam());
  std::int64_t sum = 0;
  for (std::int64_t f = 0; f < video.frame_count(); ++f) {
    sum += video.FrameBytes(f);
  }
  EXPECT_EQ(sum, video.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Durations, VideoPropertyTest,
                         ::testing::Values(10.0, 60.0, 300.0, 1800.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return std::to_string(
                                      static_cast<int>(info.param)) + "s";
                         });

}  // namespace
}  // namespace spiffi::mpeg
