#include "mpeg/zipf.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "gtest/gtest.h"

namespace spiffi::mpeg {
namespace {

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfDistribution zipf(64, 1.0);
  double sum = 0.0;
  for (int r = 0; r < 64; ++r) sum += zipf.Probability(r);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfTest, ZipfOneFollowsHarmonicLaw) {
  ZipfDistribution zipf(64, 1.0);
  // P(rank r) / P(rank 2r) == 2 for z = 1.
  EXPECT_NEAR(zipf.Probability(0) / zipf.Probability(1), 2.0, 1e-9);
  EXPECT_NEAR(zipf.Probability(4) / zipf.Probability(9), 2.0, 1e-9);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (int r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Probability(r), 0.1, 1e-12);
  }
}

TEST(ZipfTest, HigherSkewConcentratesMass) {
  ZipfDistribution mild(64, 0.5);
  ZipfDistribution strong(64, 1.5);
  EXPECT_GT(strong.Probability(0), mild.Probability(0));
  EXPECT_LT(strong.Probability(63), mild.Probability(63));
}

TEST(ZipfTest, SampleMatchesProbabilities) {
  ZipfDistribution zipf(8, 1.0);
  sim::Rng rng(3);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(&rng)];
  for (int r = 0; r < 8; ++r) {
    double expected = zipf.Probability(r) * kDraws;
    EXPECT_NEAR(counts[r], expected, 5.0 * std::sqrt(expected) + 10.0);
  }
}

TEST(ZipfTest, SampleAlwaysInRange) {
  ZipfDistribution zipf(5, 1.5);
  sim::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    int r = zipf.Sample(&rng);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 5);
  }
}

TEST(ZipfTest, SingleItemAlwaysSelected) {
  ZipfDistribution zipf(1, 1.0);
  sim::Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0);
}

// Paper Fig 8 sanity: with 64 videos and z=1, the most popular video draws
// about 21% of requests ("a small set of movies account for a substantial
// percentage of all rentals").
TEST(ZipfTest, FigureEightHeadMass) {
  ZipfDistribution zipf(64, 1.0);
  EXPECT_NEAR(zipf.Probability(0), 0.21, 0.02);
  double top5 = 0.0;
  for (int r = 0; r < 5; ++r) top5 += zipf.Probability(r);
  EXPECT_GT(top5, 0.45);
}

}  // namespace
}  // namespace spiffi::mpeg
