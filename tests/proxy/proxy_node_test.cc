// End-to-end behaviour of the proxy tier inside a full simulation:
// requests flow terminal -> proxy -> origin, hits are served locally,
// and runs are deterministic. Plus unit-level coverage of the forward
// watchdog against a fake origin.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "gtest/gtest.h"
#include "layout/routing.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "proxy/proxy_node.h"
#include "sim/process.h"
#include "vod/simulation.h"

namespace spiffi::proxy {
namespace {

vod::SimConfig ProxyConfig(ProxyPolicy policy = ProxyPolicy::kLru) {
  vod::SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 20;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  config.proxy_nodes = 2;
  config.proxy_cache_pages = 128;
  config.proxy_policy = policy;
  return config;
}

TEST(ProxyNodeTest, AllTrafficFlowsThroughTheProxyTier) {
  vod::Simulation simulation(ProxyConfig());
  vod::SimMetrics metrics = simulation.Run();
  ASSERT_EQ(simulation.num_proxies(), 2);

  // Every block a terminal received came through a proxy: the tier saw
  // at least as many requests as there were measurement-window blocks.
  EXPECT_GT(metrics.proxy_references, 0u);
  EXPECT_EQ(metrics.proxy_references,
            metrics.proxy_hits + metrics.proxy_attaches +
                metrics.proxy_forwards);
  // The origin only ever hears from proxies, so its pool reference count
  // can't meaningfully exceed what the proxies forwarded over the same
  // window (a small allowance covers forwards in flight across the
  // measurement-window edges).
  EXPECT_LE(metrics.buffer_references,
            metrics.proxy_forwards +
                static_cast<std::uint64_t>(metrics.terminals) * 8);
  // Playback still works end to end.
  EXPECT_GT(metrics.frames_displayed, 0u);
}

TEST(ProxyNodeTest, CacheHitsOffloadTheOrigin) {
  vod::Simulation simulation(ProxyConfig());
  vod::SimMetrics metrics = simulation.Run();
  // 20 terminals over a small Zipf library re-reference the same blocks:
  // the proxy caches must convert some of that into local hits.
  EXPECT_GT(metrics.proxy_hits, 0u);
  EXPECT_GT(metrics.proxy_bytes_from_cache, 0u);
  EXPECT_GT(metrics.proxy_offload_ratio(), 0.0);
  EXPECT_GT(metrics.avg_proxy_forward_ms, 0.0);
}

TEST(ProxyNodeTest, RunsAreBitIdenticalAcrossRepeats) {
  for (ProxyPolicy policy :
       {ProxyPolicy::kLru, ProxyPolicy::kRankZipf,
        ProxyPolicy::kAdaptivePrefix}) {
    vod::SimMetrics a = vod::RunSimulation(ProxyConfig(policy));
    vod::SimMetrics b = vod::RunSimulation(ProxyConfig(policy));
    EXPECT_EQ(a.events_simulated, b.events_simulated);
    EXPECT_EQ(a.proxy_references, b.proxy_references);
    EXPECT_EQ(a.proxy_hits, b.proxy_hits);
    EXPECT_EQ(a.proxy_attaches, b.proxy_attaches);
    EXPECT_EQ(a.proxy_forwards, b.proxy_forwards);
    EXPECT_EQ(a.avg_proxy_forward_ms, b.avg_proxy_forward_ms);
    EXPECT_EQ(a.glitches, b.glitches);
    EXPECT_EQ(a.avg_response_ms, b.avg_response_ms);
  }
}

TEST(ProxyNodeTest, PopularityPoliciesDigestMeasuredReferences) {
  vod::Simulation simulation(ProxyConfig(ProxyPolicy::kRankZipf));
  simulation.Run();
  // The recompute loop ran (45 s of sim time, 30 s period), so ranks
  // reflect measured demand: some video was referenced and rank 0 went
  // to a video with the maximum reference count.
  const ProxyCache& cache = simulation.proxy_node(0).cache();
  std::uint64_t best_refs = 0;
  int videos = simulation.config().num_videos();
  for (int v = 0; v < videos; ++v) {
    best_refs = std::max(best_refs, cache.video_refs(v));
  }
  ASSERT_GT(best_refs, 0u);
  for (int v = 0; v < videos; ++v) {
    if (cache.video_rank(v) == 0) {
      EXPECT_EQ(cache.video_refs(v), best_refs);
    }
  }
}

TEST(ProxyNodeTest, AdaptivePolicyAssignsQuotas) {
  vod::Simulation simulation(ProxyConfig(ProxyPolicy::kAdaptivePrefix));
  simulation.Run();
  const ProxyCache& cache = simulation.proxy_node(0).cache();
  std::int64_t total_quota = 0;
  for (int v = 0; v < simulation.config().num_videos(); ++v) {
    total_quota += cache.prefix_quota(v);
  }
  EXPECT_GT(total_quota, 0);
  EXPECT_LE(total_quota, simulation.config().proxy_cache_pages);
}

TEST(ProxyNodeTest, ResetStatsClearsCountersButKeepsPopularity) {
  vod::Simulation simulation(ProxyConfig());
  simulation.Run();
  ProxyNode& proxy = simulation.proxy_node(0);
  ASSERT_GT(proxy.stats().references, 0u);
  std::uint64_t refs_before = 0;
  for (int v = 0; v < simulation.config().num_videos(); ++v) {
    refs_before += proxy.cache().video_refs(v);
  }
  proxy.ResetStats();
  EXPECT_EQ(proxy.stats().references, 0u);
  EXPECT_EQ(proxy.stats().hits, 0u);
  EXPECT_EQ(proxy.stats().forward_latency.count(), 0u);
  std::uint64_t refs_after = 0;
  for (int v = 0; v < simulation.config().num_videos(); ++v) {
    refs_after += proxy.cache().video_refs(v);
  }
  EXPECT_EQ(refs_after, refs_before);
}

// --- Forward watchdog (unit-level, fake origin) ---

// A fake origin node that replies after a fixed delay; blocks listed in
// `held_blocks` are withheld until ReleaseHeld().
class FakeOrigin final : public server::NodeDirectory,
                         public server::MessageSink {
 public:
  explicit FakeOrigin(sim::Environment* env) : env_(env) {}

  server::MessageSink* node_sink(int) override { return this; }

  void OnMessage(const server::Message& request) override {
    requests.push_back(request);
    if (held_blocks.count(request.block) > 0) {
      held.push_back(request);
      return;
    }
    Reply(request);
  }

  class Deliver final : public sim::EventHandler {
   public:
    Deliver(server::Message m, server::MessageSink* sink)
        : m_(m), sink_(sink) {}
    void OnEvent(std::uint64_t) override { sink_->OnMessage(m_); }

   private:
    server::Message m_;
    server::MessageSink* sink_;
  };

  void Reply(const server::Message& request) {
    server::Message reply = request;
    reply.kind = server::Message::Kind::kReadReply;
    deliveries_.push_back(
        std::make_unique<Deliver>(reply, request.reply_to));
    env_->ScheduleAfter(reply_delay, deliveries_.back().get());
  }

  void ReleaseHeld() {
    for (const server::Message& request : held) Reply(request);
    held.clear();
    held_blocks.clear();
  }

  double reply_delay = 0.02;
  std::set<std::int64_t> held_blocks;
  std::vector<server::Message> requests;
  std::vector<server::Message> held;

 private:
  sim::Environment* env_;
  std::vector<std::unique_ptr<Deliver>> deliveries_;
};

class CountingSink final : public server::MessageSink {
 public:
  void OnMessage(const server::Message&) override { ++replies; }
  int replies = 0;
};

TEST(ProxyNodeTest, StaleWatchdogDoesNotRetryANewerForwardOfTheSameBlock) {
  // Regression: a watchdog used to identify its forward only by
  // PageKey. If its forward resolved and the same block missed again
  // (cache eviction in between) before the old watchdog's next wake,
  // the old coroutine found the new PendingForward and retried it
  // prematurely, alongside the new forward's own watchdog. The
  // generation guard must make the stale watchdog exit instead.
  sim::Environment env;
  hw::Network network(&env, hw::NetworkParams());
  mpeg::ZipfDistribution popularity(1, 0.0);
  mpeg::VideoLibrary library(1, 30.0, mpeg::MpegParams(), popularity, 1);
  constexpr std::int64_t kBlock = 512 * 1024;
  layout::StripedLayout layout(
      1, 1, kBlock,
      std::vector<std::int64_t>{library.NumBlocks(0, kBlock)});
  layout::TierRouter router(&layout, 1);
  FakeOrigin origin(&env);
  CountingSink terminal;

  ProxyParams params;
  params.cache_pages = 1;  // one page: the second miss evicts the first
  params.block_bytes = kBlock;
  params.retry_budget = 2;
  params.retry_min_timeout_sec = 1.0;
  params.retry_backoff_base_sec = 1.0;
  ProxyNode proxy(&env, params, &network, &origin, &router, &library);

  bool finished = false;
  env.Spawn([](sim::Environment* e, ProxyNode* p, FakeOrigin* o,
               CountingSink* t, bool* done) -> sim::Process {
    auto send = [&](std::int64_t block) {
      server::Message m;
      m.kind = server::Message::Kind::kReadRequest;
      m.terminal = 0;
      m.video = 0;
      m.block = block;
      m.bytes = 1024;
      m.reply_to = t;
      p->OnMessage(m);
    };
    send(0);                // t=0: miss; its watchdog wakes at t=1
    co_await e->Hold(0.3);  // the origin reply resolved the forward
    send(1);                // t=0.3: its reply evicts block 0
    co_await e->Hold(0.3);
    o->held_blocks.insert(0);  // withhold the re-miss of block 0
    send(0);                   // t=0.6: new forward, watchdog at t=1.6
    co_await e->Hold(0.8);     // t=1.4: past the stale watchdog's wake
    EXPECT_EQ(p->stats().forward_retries, 0u)
        << "stale watchdog retried the new forward";
    co_await e->Hold(0.6);  // t=2.0: past the new watchdog's own wake
    EXPECT_GE(p->stats().forward_retries, 1u);
    o->ReleaseHeld();
    *done = true;
  }(&env, &proxy, &origin, &terminal, &finished));
  env.Run();
  EXPECT_TRUE(finished);
  // Block 0, block 1, block 0 again; the straggling retry reply is
  // dropped as stale and never fans out to the terminal.
  EXPECT_EQ(terminal.replies, 3);
  EXPECT_EQ(proxy.stats().stale_replies, 1u);
}

TEST(ProxyNodeTest, ProxyTierSurvivesOriginFaults) {
  vod::SimConfig config = ProxyConfig();
  config.placement = vod::VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.fault_plan.script.push_back({20.0, fault::FaultKind::kDiskFail, 0});
  config.fault_plan.script.push_back(
      {35.0, fault::FaultKind::kDiskRecover, 0});
  vod::Simulation simulation(config);
  vod::SimMetrics metrics = simulation.Run();
  EXPECT_EQ(metrics.faults_injected, 1u);
  EXPECT_GT(metrics.proxy_references, 0u);
  EXPECT_GT(metrics.frames_displayed, 0u);
}

}  // namespace
}  // namespace spiffi::proxy
