// Replacement-policy behaviour of the proxy block cache: eviction order
// under known reference sequences for all three policy families.

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "proxy/proxy_cache.h"

namespace spiffi::proxy {
namespace {

std::vector<std::int64_t> UniformLibrary(int videos,
                                         std::int64_t blocks = 100) {
  return std::vector<std::int64_t>(videos, blocks);
}

TEST(ProxyCacheLruTest, EvictsLeastRecentlyUsed) {
  ProxyCache cache(3, ProxyPolicy::kLru, UniformLibrary(2));
  cache.Insert(0, 0);
  cache.Insert(0, 1);
  cache.Insert(1, 0);
  EXPECT_EQ(cache.pages_in_use(), 3);

  // Touch (0,0): now (0,1) is the LRU victim.
  cache.Touch(0, 0);
  cache.Insert(1, 1);
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_FALSE(cache.Contains(0, 1));
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(1, 1));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ProxyCacheLruTest, InsertOfResidentBlockIsANoOp) {
  ProxyCache cache(2, ProxyPolicy::kLru, UniformLibrary(1));
  cache.Insert(0, 0);
  cache.Insert(0, 0);
  EXPECT_EQ(cache.pages_in_use(), 1);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(ProxyCacheRankTest, BeforeRecomputeRankIsLibraryOrder) {
  ProxyCache cache(4, ProxyPolicy::kRankZipf, UniformLibrary(3));
  EXPECT_EQ(cache.video_rank(0), 0);
  EXPECT_EQ(cache.video_rank(1), 1);
  EXPECT_EQ(cache.video_rank(2), 2);
  // Victim comes from the worst-ranked cached video (2), LRU within it.
  cache.Insert(0, 0);
  cache.Insert(2, 0);
  cache.Insert(2, 1);
  cache.Insert(1, 0);
  cache.Insert(1, 1);  // full: evicts (2,0), video 2's LRU block
  EXPECT_FALSE(cache.Contains(2, 0));
  EXPECT_TRUE(cache.Contains(2, 1));
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_TRUE(cache.Contains(1, 0));
}

TEST(ProxyCacheRankTest, RecomputeReordersEvictionByMeasuredRefs) {
  // Known reference sequence: video 2 becomes the most popular, video 0
  // the least. After Recompute() evictions must drain video 0 first.
  ProxyCache cache(4, ProxyPolicy::kRankZipf, UniformLibrary(3));
  for (int i = 0; i < 9; ++i) cache.RecordReference(2);
  for (int i = 0; i < 5; ++i) cache.RecordReference(1);
  cache.RecordReference(0);
  cache.Recompute();
  EXPECT_EQ(cache.video_rank(2), 0);
  EXPECT_EQ(cache.video_rank(1), 1);
  EXPECT_EQ(cache.video_rank(0), 2);

  cache.Insert(0, 0);
  cache.Insert(0, 1);
  cache.Insert(2, 0);
  cache.Insert(1, 0);
  cache.Insert(2, 1);  // evicts from video 0 (worst rank): its LRU (0,0)
  EXPECT_FALSE(cache.Contains(0, 0));
  EXPECT_TRUE(cache.Contains(0, 1));
  cache.Insert(2, 2);  // video 0 again: (0,1)
  EXPECT_FALSE(cache.Contains(0, 1));
  // Video 0 fully drained; next victim is video 1's LRU block.
  cache.Insert(2, 3);
  EXPECT_FALSE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(2, 0));
  EXPECT_TRUE(cache.Contains(2, 1));
  EXPECT_TRUE(cache.Contains(2, 2));
  EXPECT_TRUE(cache.Contains(2, 3));
}

TEST(ProxyCacheRankTest, TiesBreakByVideoIdDeterministically) {
  ProxyCache cache(4, ProxyPolicy::kRankZipf, UniformLibrary(3));
  // All refs equal: rank must be the id order, run after run.
  for (int v = 0; v < 3; ++v) cache.RecordReference(v);
  cache.Recompute();
  EXPECT_EQ(cache.video_rank(0), 0);
  EXPECT_EQ(cache.video_rank(1), 1);
  EXPECT_EQ(cache.video_rank(2), 2);
}

TEST(ProxyCacheAdaptiveTest, PlainLruBeforeFirstRecompute) {
  ProxyCache cache(2, ProxyPolicy::kAdaptivePrefix, UniformLibrary(2));
  cache.Insert(0, 0);
  cache.Insert(1, 0);
  cache.Insert(0, 1);  // no quotas yet: evicts the global LRU (0,0)
  EXPECT_FALSE(cache.Contains(0, 0));
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(0, 1));
}

TEST(ProxyCacheAdaptiveTest, QuotasTrackReferenceShares) {
  ProxyCache cache(100, ProxyPolicy::kAdaptivePrefix, UniformLibrary(4));
  for (int i = 0; i < 60; ++i) cache.RecordReference(0);
  for (int i = 0; i < 30; ++i) cache.RecordReference(1);
  for (int i = 0; i < 10; ++i) cache.RecordReference(2);
  cache.Recompute();
  EXPECT_EQ(cache.prefix_quota(0), 60);
  EXPECT_EQ(cache.prefix_quota(1), 30);
  EXPECT_EQ(cache.prefix_quota(2), 10);
  EXPECT_EQ(cache.prefix_quota(3), 0);
}

TEST(ProxyCacheAdaptiveTest, QuotaIsClampedToVideoLength) {
  ProxyCache cache(100, ProxyPolicy::kAdaptivePrefix,
                   {/*video 0*/ 8, /*video 1*/ 100});
  for (int i = 0; i < 90; ++i) cache.RecordReference(0);
  for (int i = 0; i < 10; ++i) cache.RecordReference(1);
  cache.Recompute();
  EXPECT_EQ(cache.prefix_quota(0), 8);  // 90 pages of share, 8 blocks long
  EXPECT_EQ(cache.prefix_quota(1), 10);
}

TEST(ProxyCacheAdaptiveTest, ProtectedPrefixSurvivesUnprotectedChurn) {
  ProxyCache cache(4, ProxyPolicy::kAdaptivePrefix, UniformLibrary(2));
  // Video 0 owns half the cache as protected prefix.
  for (int i = 0; i < 50; ++i) cache.RecordReference(0);
  for (int i = 0; i < 50; ++i) cache.RecordReference(1);
  cache.Recompute();
  EXPECT_EQ(cache.prefix_quota(0), 2);
  EXPECT_EQ(cache.prefix_quota(1), 2);

  cache.Insert(0, 0);  // in quota: protected
  cache.Insert(0, 1);  // in quota: protected
  // Churn far past video 1's quota: blocks 10.. are unprotected and
  // must evict each other while video 0's prefix stays resident.
  for (std::int64_t b = 10; b < 20; ++b) cache.Insert(1, b);
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_TRUE(cache.Contains(0, 1));
  EXPECT_EQ(cache.pages_in_use(), 4);
}

TEST(ProxyCacheAdaptiveTest, RecomputeConvergesQuotaResizing) {
  // Re-sizing convergence: after the popularity flips, successive
  // Recompute() calls re-protect the new favourite's prefix and demote
  // the old one — and a second Recompute with unchanged refs is stable.
  ProxyCache cache(4, ProxyPolicy::kAdaptivePrefix, UniformLibrary(2));
  for (int i = 0; i < 100; ++i) cache.RecordReference(0);
  cache.Recompute();
  EXPECT_EQ(cache.prefix_quota(0), 4);
  cache.Insert(0, 0);
  cache.Insert(0, 1);

  // Flip: video 1 takes over (300 more refs vs video 0's 100).
  for (int i = 0; i < 300; ++i) cache.RecordReference(1);
  cache.Recompute();
  EXPECT_EQ(cache.prefix_quota(0), 1);
  EXPECT_EQ(cache.prefix_quota(1), 3);
  // (0,1) was demoted out of quota: churn evicts it, not (0,0).
  cache.Insert(1, 0);
  cache.Insert(1, 1);
  cache.Insert(1, 2);  // full; victims come from the unprotected chain
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_FALSE(cache.Contains(0, 1));

  std::int64_t q0 = cache.prefix_quota(0);
  std::int64_t q1 = cache.prefix_quota(1);
  cache.Recompute();  // unchanged refs: quotas are a fixed point
  EXPECT_EQ(cache.prefix_quota(0), q0);
  EXPECT_EQ(cache.prefix_quota(1), q1);
}

TEST(ProxyCacheTest, ResetStatsKeepsPopularityAndContents) {
  ProxyCache cache(4, ProxyPolicy::kRankZipf, UniformLibrary(2));
  cache.RecordReference(1);
  cache.Insert(1, 0);
  cache.ResetStats();
  EXPECT_EQ(cache.stats().inserts, 0u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.video_refs(1), 1u);   // measurement survives
  EXPECT_TRUE(cache.Contains(1, 0));    // contents survive
}

}  // namespace
}  // namespace spiffi::proxy
