#include "fault/plan.h"

#include <string>

#include "gtest/gtest.h"

namespace spiffi::fault {
namespace {

TEST(FaultPlanTest, DefaultPlanIsDisabledAndValid) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_TRUE(plan.Validate(4, 16).empty());
}

TEST(FaultPlanTest, ScriptOrStochasticRatesEnable) {
  {
    FaultPlan plan;
    plan.script.push_back({5.0, FaultKind::kDiskFail, 0});
    EXPECT_TRUE(plan.enabled());
  }
  {
    FaultPlan plan;
    plan.disk_mtbf_sec = 100.0;
    EXPECT_TRUE(plan.enabled());
  }
  {
    FaultPlan plan;
    plan.node_mtbf_sec = 100.0;
    EXPECT_TRUE(plan.enabled());
  }
  {
    FaultPlan plan;
    plan.limp_mtbf_sec = 100.0;
    EXPECT_TRUE(plan.enabled());
  }
}

TEST(FaultPlanTest, ValidateRejectsOutOfRangeTargets) {
  FaultPlan plan;
  plan.script.push_back({5.0, FaultKind::kDiskFail, 16});
  EXPECT_FALSE(plan.Validate(4, 16).empty());
  plan.script[0] = {5.0, FaultKind::kDiskFail, -1};
  EXPECT_FALSE(plan.Validate(4, 16).empty());
  plan.script[0] = {5.0, FaultKind::kNodeFail, 4};
  EXPECT_FALSE(plan.Validate(4, 16).empty());
  plan.script[0] = {5.0, FaultKind::kNodeFail, 3};
  EXPECT_TRUE(plan.Validate(4, 16).empty());
  // Node targets are checked against nodes, not disks: node 5 of 4 is
  // invalid even though disk 5 of 16 would be fine.
  plan.script[0] = {5.0, FaultKind::kNodeRecover, 5};
  EXPECT_FALSE(plan.Validate(4, 16).empty());
}

TEST(FaultPlanTest, ValidateRejectsBadTimesAndFactors) {
  {
    FaultPlan plan;
    plan.script.push_back({-0.5, FaultKind::kDiskFail, 0});
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
  {
    FaultPlan plan;
    plan.script.push_back({5.0, FaultKind::kDiskLimpBegin, 0, 0.5});
    EXPECT_FALSE(plan.Validate(4, 16).empty());  // limp must slow, not speed
  }
  {
    FaultPlan plan;
    plan.limp_mtbf_sec = 50.0;
    plan.limp_factor = 0.9;
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
}

TEST(FaultPlanTest, ValidateRejectsBadStochasticParameters) {
  {
    FaultPlan plan;
    plan.disk_mtbf_sec = -1.0;
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
  {
    FaultPlan plan;
    plan.disk_mtbf_sec = 100.0;
    plan.disk_repair_mean_sec = 0.0;
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
  {
    FaultPlan plan;
    plan.node_mtbf_sec = 100.0;
    plan.node_repair_mean_sec = -2.0;
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
}

TEST(FaultPlanTest, ValidateRejectsBadDegradedReadTuning) {
  {
    FaultPlan plan;
    plan.disk_mtbf_sec = 100.0;
    plan.reroute_hop_budget = -1;
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
  {
    FaultPlan plan;
    plan.disk_mtbf_sec = 100.0;
    plan.recheck_sec = 0.0;
    EXPECT_FALSE(plan.Validate(4, 16).empty());
  }
}

TEST(FaultPlanTest, DescribeSummarizesTheScenario) {
  FaultPlan plan;
  plan.script.push_back({5.0, FaultKind::kDiskFail, 0});
  plan.script.push_back({9.0, FaultKind::kDiskRecover, 0});
  plan.disk_mtbf_sec = 300.0;
  std::string description = plan.Describe();
  EXPECT_NE(description.find("2"), std::string::npos);
  EXPECT_NE(description.find("300"), std::string::npos);
}

TEST(FaultPlanTest, KindNamesAreDistinct) {
  EXPECT_STRNE(FaultKindName(FaultKind::kDiskFail),
               FaultKindName(FaultKind::kDiskRecover));
  EXPECT_STRNE(FaultKindName(FaultKind::kNodeFail),
               FaultKindName(FaultKind::kDiskFail));
  EXPECT_STRNE(FaultKindName(FaultKind::kDiskLimpBegin),
               FaultKindName(FaultKind::kDiskLimpEnd));
}

}  // namespace
}  // namespace spiffi::fault
