// End-to-end degraded-mode service: scripted outages against the whole
// simulation, comparing chained-declustered replication with plain
// striping. These tests lock the subsystem's headline behaviour — a
// replicated system keeps every stream moving through a disk outage by
// re-routing reads to the surviving copy, while plain striping takes a
// glitch burst on every stream that crosses the dead disk — and the
// accounting invariant that every late block is attributed to exactly
// one pipeline stage (none vanish unattributed).

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "vod/simulation.h"

namespace spiffi::vod {
namespace {

// 2 nodes x 2 disks, 2-minute videos, measurement window [15, 45).
SimConfig BaseFaultConfig() {
  SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 64LL * 1024 * 1024;  // small pool: misses
  config.terminals = 12;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  return config;
}

// Global disk 0 (node 0, local 0) is down for [20, 35): the middle half
// of the measurement window.
void ScriptDiskOutage(SimConfig* config) {
  config->fault_plan.script.push_back(
      {20.0, fault::FaultKind::kDiskFail, 0});
  config->fault_plan.script.push_back(
      {35.0, fault::FaultKind::kDiskRecover, 0});
}

TEST(DegradedReadTest, ReplicatedServesThroughDiskOutage) {
  SimConfig config = BaseFaultConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  ScriptDiskOutage(&config);

  Simulation simulation(config);
  SimMetrics m = simulation.Run();

  // The outage was seen and repaired inside the window.
  EXPECT_EQ(m.faults_injected, 1u);
  EXPECT_EQ(m.repairs_completed, 1u);
  EXPECT_DOUBLE_EQ(m.mttr_sec, 15.0);
  EXPECT_DOUBLE_EQ(m.fault_downtime_sec, 15.0);

  // Reads that would have hit the dead disk reached the surviving copy:
  // redirected at issue by fault-aware terminals, or re-routed between
  // nodes for requests already in flight.
  EXPECT_GT(m.requests_redirected + m.rerouted_requests, 0u);

  // Every stream keeps playing: ~12 terminals x 30 fps x 30 s.
  double expected_frames = 12 * 30.0 * 30.0;
  EXPECT_GT(static_cast<double>(m.frames_displayed),
            expected_frames * 0.9);

  // The headline: the surviving copy absorbs the outage.
  EXPECT_EQ(m.glitches, 0u);
}

TEST(DegradedReadTest, StripedTakesAGlitchBurstUnderTheSameOutage) {
  SimConfig config = BaseFaultConfig();
  config.placement = VideoPlacement::kStriped;
  ScriptDiskOutage(&config);

  Simulation simulation(config);
  SimMetrics m = simulation.Run();

  // No copies to fall back on: streams crossing disk 0 stall until the
  // repair and glitch.
  EXPECT_GT(m.glitches, 0u);
  EXPECT_GT(m.terminals_with_glitches, 0);
  EXPECT_EQ(m.requests_redirected, 0u);  // nowhere to redirect to
  EXPECT_EQ(m.rerouted_requests, 0u);
  EXPECT_GT(m.degraded_waits, 0u);  // requests parked awaiting repair

  // Zero unattributed glitches: every late block lands in exactly one
  // attribution bucket, and the stalls show up as fault time.
  const obs::MetricsRegistry& registry = simulation.metrics();
  double attributed =
      registry.Value("terminal.late_attrib.network") +
      registry.Value("terminal.late_attrib.server_cpu") +
      registry.Value("terminal.late_attrib.disk_queue") +
      registry.Value("terminal.late_attrib.disk_service") +
      registry.Value("terminal.late_attrib.fault");
  EXPECT_EQ(attributed, registry.Value("terminal.late_blocks"));
  EXPECT_GT(registry.Value("terminal.late_attrib.fault"), 0.0);
}

TEST(DegradedReadTest, ReplicatedBeatsStripedUnderTheSameOutage) {
  SimConfig striped = BaseFaultConfig();
  striped.placement = VideoPlacement::kStriped;
  ScriptDiskOutage(&striped);
  SimConfig replicated = BaseFaultConfig();
  replicated.placement = VideoPlacement::kReplicatedStriped;
  replicated.replica_count = 2;
  ScriptDiskOutage(&replicated);

  SimMetrics s = RunSimulation(striped);
  SimMetrics r = RunSimulation(replicated);
  EXPECT_LT(r.glitches, s.glitches);
  EXPECT_GT(r.frames_displayed, s.frames_displayed);
}

TEST(DegradedReadTest, NodeCrashReroutesToChainSuccessor) {
  SimConfig config = BaseFaultConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.fault_plan.script.push_back(
      {20.0, fault::FaultKind::kNodeFail, 1});
  config.fault_plan.script.push_back(
      {30.0, fault::FaultKind::kNodeRecover, 1});

  Simulation simulation(config);
  SimMetrics m = simulation.Run();
  EXPECT_EQ(m.faults_injected, 1u);
  EXPECT_EQ(m.repairs_completed, 1u);
  EXPECT_GT(m.requests_redirected + m.rerouted_requests, 0u);
  double expected_frames = 12 * 30.0 * 30.0;
  EXPECT_GT(static_cast<double>(m.frames_displayed),
            expected_frames * 0.9);
}

TEST(DegradedReadTest, LimpingDiskSlowsServiceWithoutStoppingIt) {
  SimConfig healthy = BaseFaultConfig();
  SimConfig limping = BaseFaultConfig();
  // Every disk limps at 3x for the whole measurement window.
  for (int d = 0; d < 4; ++d) {
    limping.fault_plan.script.push_back(
        {16.0, fault::FaultKind::kDiskLimpBegin, d, 3.0});
  }

  SimMetrics h = RunSimulation(healthy);
  SimMetrics l = RunSimulation(limping);
  EXPECT_GT(l.avg_disk_service_ms, h.avg_disk_service_ms * 2.0);
  // Light load: 3x slower disks still feed every stream.
  EXPECT_GT(l.frames_displayed, h.frames_displayed / 2);
}

TEST(DegradedReadTest, SameFaultPlanAndSeedIsReproducible) {
  SimConfig config = BaseFaultConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  ScriptDiskOutage(&config);
  config.fault_plan.disk_mtbf_sec = 200.0;  // stochastic on top
  config.fault_plan.disk_repair_mean_sec = 5.0;

  SimMetrics a = RunSimulation(config);
  SimMetrics b = RunSimulation(config);
  EXPECT_EQ(a.glitches, b.glitches);
  EXPECT_EQ(a.events_simulated, b.events_simulated);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.rerouted_requests, b.rerouted_requests);
  EXPECT_EQ(a.requests_redirected, b.requests_redirected);
  EXPECT_EQ(a.fault_downtime_sec, b.fault_downtime_sec);
  EXPECT_EQ(a.mttr_sec, b.mttr_sec);
}

TEST(DegradedReadTest, FaultMetricsAreZeroWithoutAPlan) {
  SimConfig config = BaseFaultConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  Simulation simulation(config);
  SimMetrics m = simulation.Run();
  EXPECT_EQ(simulation.fault_state(), nullptr);
  EXPECT_EQ(m.faults_injected, 0u);
  EXPECT_EQ(m.rerouted_requests, 0u);
  EXPECT_EQ(m.requests_redirected, 0u);
  EXPECT_EQ(m.degraded_waits, 0u);
  EXPECT_DOUBLE_EQ(m.mttr_sec, 0.0);
  EXPECT_EQ(m.glitches, 0u);
}

#if SPIFFI_TRACING
TEST(DegradedReadTest, FaultEventsAppearOnTheFaultTrack) {
  SimConfig config = BaseFaultConfig();
  config.placement = VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  ScriptDiskOutage(&config);

  Simulation simulation(config);
  obs::Tracer& tracer = simulation.EnableTracing(512 * 1024);
  simulation.Run();

  int fault_events = 0;
  bool saw_outage_span = false;
  bool saw_reroute_or_skip = false;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const obs::TraceEvent& event = tracer.event(i);
    if (event.category != obs::TraceCategory::kFault) continue;
    ++fault_events;
    if (event.phase == 'X' && std::string(event.name) == "disk_down") {
      saw_outage_span = true;
      EXPECT_EQ(event.pid, obs::Tracer::kFaultPid);
      EXPECT_EQ(event.tid, 0);  // disk 0's row
    }
    if (std::string(event.name) == "reroute" ||
        std::string(event.name) == "prefetch_skip_dead_disk" ||
        std::string(event.name) == "prefetch_drop_disk_down") {
      saw_reroute_or_skip = true;
    }
  }
  EXPECT_GE(fault_events, 2);  // at least the fail + recover instants
  EXPECT_TRUE(saw_outage_span);
  (void)saw_reroute_or_skip;  // populated under server-side rerouting

  std::ostringstream out;
  tracer.WriteChromeJson(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
  EXPECT_NE(json.find("disk_fail"), std::string::npos);
}
#endif  // SPIFFI_TRACING

}  // namespace
}  // namespace spiffi::vod
