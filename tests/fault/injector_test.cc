#include "fault/injector.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/tracer.h"
#include "sim/environment.h"
#include "sim/random.h"

namespace spiffi::fault {
namespace {

// Records every effect-handler callback for assertions.
struct EventLog {
  std::vector<FaultEvent> events;
  FaultInjector::EffectHandler Handler() {
    return [this](const FaultEvent& event) { events.push_back(event); };
  }
};

TEST(FaultInjectorTest, ScriptedActionsFireAtTheirTimes) {
  sim::Environment env;
  FaultState state(2, 2);
  FaultPlan plan;
  plan.script.push_back({10.0, FaultKind::kDiskFail, 1});
  plan.script.push_back({25.0, FaultKind::kDiskRecover, 1});
  plan.script.push_back({30.0, FaultKind::kNodeFail, 0});
  FaultInjector injector(&env, plan, &state, sim::Rng(7).Child(3));
  EventLog log;
  injector.set_effect_handler(log.Handler());
  injector.Start();

  env.RunUntil(12.0);
  EXPECT_FALSE(state.disk_up(1));
  env.RunUntil(26.0);
  EXPECT_TRUE(state.disk_up(1));
  EXPECT_TRUE(state.node_up(0));
  env.RunUntil(31.0);
  EXPECT_FALSE(state.node_up(0));

  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_DOUBLE_EQ(log.events[0].time, 10.0);
  EXPECT_EQ(log.events[0].kind, FaultKind::kDiskFail);
  EXPECT_EQ(log.events[0].target, 1);
  EXPECT_TRUE(log.events[0].applied);
  EXPECT_DOUBLE_EQ(log.events[1].time, 25.0);
  EXPECT_EQ(log.events[1].kind, FaultKind::kDiskRecover);
  EXPECT_DOUBLE_EQ(log.events[2].time, 30.0);
  EXPECT_EQ(injector.events_fired(), 3u);
}

TEST(FaultInjectorTest, OverlappingScriptedFaultsAreIdempotent) {
  sim::Environment env;
  FaultState state(1, 2);
  FaultPlan plan;
  plan.script.push_back({5.0, FaultKind::kDiskFail, 0});
  plan.script.push_back({6.0, FaultKind::kDiskFail, 0});  // already down
  plan.script.push_back({8.0, FaultKind::kDiskRecover, 0});
  FaultInjector injector(&env, plan, &state, sim::Rng(7).Child(3));
  EventLog log;
  injector.set_effect_handler(log.Handler());
  injector.Start();
  env.RunUntil(10.0);

  ASSERT_EQ(log.events.size(), 3u);
  EXPECT_TRUE(log.events[0].applied);
  EXPECT_FALSE(log.events[1].applied);  // duplicate fail: no state change
  EXPECT_TRUE(log.events[2].applied);
  // The outage is charged from the FIRST fail, and counted once.
  FaultState::Stats stats = state.StatsAt(10.0);
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_DOUBLE_EQ(stats.downtime_sec, 3.0);
}

TEST(FaultInjectorTest, StochasticProcessCyclesFailAndRepair) {
  sim::Environment env;
  FaultState state(2, 2);
  FaultPlan plan;
  plan.disk_mtbf_sec = 20.0;
  plan.disk_repair_mean_sec = 5.0;
  FaultInjector injector(&env, plan, &state, sim::Rng(11).Child(3));
  EventLog log;
  injector.set_effect_handler(log.Handler());
  injector.Start();
  env.RunUntil(500.0);

  // Over 25 expected MTBFs per disk, each disk must both fail and
  // recover at least once, alternating.
  FaultState::Stats stats = state.StatsAt(500.0);
  EXPECT_GT(stats.faults_injected, 4u);
  EXPECT_GT(stats.repairs_completed, 4u);
  EXPECT_GT(stats.downtime_sec, 0.0);
  EXPECT_GT(state.MttrSec(), 0.0);
  bool saw_fail = false;
  bool saw_recover = false;
  for (const FaultEvent& event : log.events) {
    EXPECT_TRUE(event.applied);  // a private process never overlaps itself
    saw_fail = saw_fail || event.kind == FaultKind::kDiskFail;
    saw_recover = saw_recover || event.kind == FaultKind::kDiskRecover;
  }
  EXPECT_TRUE(saw_fail);
  EXPECT_TRUE(saw_recover);
}

TEST(FaultInjectorTest, StochasticLimpEpisodesScaleServiceTimes) {
  sim::Environment env;
  FaultState state(1, 1);
  FaultPlan plan;
  plan.limp_mtbf_sec = 10.0;
  plan.limp_duration_mean_sec = 5.0;
  plan.limp_factor = 3.0;
  FaultInjector injector(&env, plan, &state, sim::Rng(5).Child(3));
  EventLog log;
  injector.set_effect_handler(log.Handler());
  injector.Start();
  env.RunUntil(200.0);

  EXPECT_GT(state.StatsAt(200.0).limp_episodes, 1u);
  bool saw_scaled = false;
  for (const FaultEvent& event : log.events) {
    if (event.kind == FaultKind::kDiskLimpBegin) {
      EXPECT_DOUBLE_EQ(event.factor, 3.0);
      saw_scaled = true;
    }
  }
  EXPECT_TRUE(saw_scaled);
}

// The determinism contract: the same plan, topology, and seed produce
// the exact same event sequence, independent of anything else in the
// simulation (per-component child streams).
TEST(FaultInjectorTest, SameSeedReplaysBitIdentically) {
  auto run = [] {
    sim::Environment env;
    FaultState state(2, 4);
    FaultPlan plan;
    plan.script.push_back({3.0, FaultKind::kNodeFail, 1});
    plan.script.push_back({8.0, FaultKind::kNodeRecover, 1});
    plan.disk_mtbf_sec = 30.0;
    plan.disk_repair_mean_sec = 4.0;
    plan.limp_mtbf_sec = 50.0;
    FaultInjector injector(&env, plan, &state, sim::Rng(42).Child(3));
    EventLog log;
    injector.set_effect_handler(log.Handler());
    injector.Start();
    env.RunUntil(300.0);
    return log.events;
  };
  std::vector<FaultEvent> a = run();
  std::vector<FaultEvent> b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 4u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_EQ(a[i].time, b[i].time);  // bit-exact, not NEAR
    EXPECT_EQ(a[i].applied, b[i].applied);
  }
}

#if SPIFFI_TRACING
TEST(FaultInjectorTest, EmitsFaultTrackTraceEvents) {
  sim::Environment env;
  obs::Tracer& tracer = env.EnableTracing(4096);
  FaultState state(2, 2);
  FaultPlan plan;
  plan.script.push_back({5.0, FaultKind::kDiskFail, 2});
  plan.script.push_back({9.0, FaultKind::kDiskRecover, 2});
  plan.script.push_back({12.0, FaultKind::kNodeFail, 0});
  plan.script.push_back({14.0, FaultKind::kNodeRecover, 0});
  FaultInjector injector(&env, plan, &state, sim::Rng(1).Child(3));
  injector.Start();
  env.RunUntil(20.0);

  bool saw_disk_instant = false;
  bool saw_disk_down_span = false;
  bool saw_node_down_span = false;
  for (std::size_t i = 0; i < tracer.size(); ++i) {
    const obs::TraceEvent& event = tracer.event(i);
    if (event.category != obs::TraceCategory::kFault) continue;
    EXPECT_EQ(event.pid, obs::Tracer::kFaultPid);
    if (event.phase == 'i' && event.tid == 2) {
      // Disk events ride the disk's own row and carry its ids.
      saw_disk_instant = true;
      ASSERT_GE(event.num_args, 1);
      EXPECT_STREQ(event.args[0].key, "disk");
      EXPECT_DOUBLE_EQ(event.args[0].value, 2.0);
    }
    if (event.phase == 'X' && std::string(event.name) == "disk_down") {
      saw_disk_down_span = true;
      EXPECT_DOUBLE_EQ(event.ts, 5.0);
      EXPECT_DOUBLE_EQ(event.end_ts, 9.0);
    }
    if (event.phase == 'X' && std::string(event.name) == "node_down") {
      saw_node_down_span = true;
      // Node rows sit above the disk rows: tid = total_disks + node.
      EXPECT_EQ(event.tid, state.total_disks() + 0);
      EXPECT_DOUBLE_EQ(event.ts, 12.0);
      EXPECT_DOUBLE_EQ(event.end_ts, 14.0);
    }
  }
  EXPECT_TRUE(saw_disk_instant);
  EXPECT_TRUE(saw_disk_down_span);
  EXPECT_TRUE(saw_node_down_span);
}
#endif  // SPIFFI_TRACING

}  // namespace
}  // namespace spiffi::fault
