#include "fault/state.h"

#include "gtest/gtest.h"

namespace spiffi::fault {
namespace {

layout::BlockLocation Loc(int node, int disk_local, int disks_per_node) {
  layout::BlockLocation loc;
  loc.node = node;
  loc.disk_local = disk_local;
  loc.disk_global = node * disks_per_node + disk_local;
  return loc;
}

TEST(FaultStateTest, EverythingStartsUp) {
  FaultState state(2, 2);
  EXPECT_EQ(state.total_disks(), 4);
  for (int n = 0; n < 2; ++n) EXPECT_TRUE(state.node_up(n));
  for (int d = 0; d < 4; ++d) {
    EXPECT_TRUE(state.disk_up(d));
    EXPECT_DOUBLE_EQ(state.disk_slow_factor(d), 1.0);
  }
  EXPECT_TRUE(state.LocationUp(Loc(1, 1, 2)));
}

TEST(FaultStateTest, DiskFailAndRecover) {
  FaultState state(2, 2);
  EXPECT_TRUE(state.FailDisk(3, 10.0));
  EXPECT_FALSE(state.disk_up(3));
  EXPECT_FALSE(state.LocationUp(Loc(1, 1, 2)));
  EXPECT_TRUE(state.LocationUp(Loc(1, 0, 2)));  // sibling disk unaffected
  EXPECT_DOUBLE_EQ(state.disk_down_since(3), 10.0);
  EXPECT_TRUE(state.RecoverDisk(3, 25.0));
  EXPECT_TRUE(state.LocationUp(Loc(1, 1, 2)));
}

TEST(FaultStateTest, TransitionsAreIdempotent) {
  FaultState state(2, 2);
  EXPECT_TRUE(state.FailDisk(0, 1.0));
  EXPECT_FALSE(state.FailDisk(0, 2.0));  // already down: no-op
  EXPECT_DOUBLE_EQ(state.disk_down_since(0), 1.0);
  EXPECT_TRUE(state.RecoverDisk(0, 3.0));
  EXPECT_FALSE(state.RecoverDisk(0, 4.0));
  EXPECT_FALSE(state.FailNode(1, 5.0) && state.FailNode(1, 6.0));
  EXPECT_TRUE(state.RecoverNode(1, 7.0));
  EXPECT_TRUE(state.BeginLimp(2, 4.0, 8.0));
  EXPECT_FALSE(state.BeginLimp(2, 8.0, 9.0));  // already limping
  EXPECT_DOUBLE_EQ(state.disk_slow_factor(2), 4.0);
  EXPECT_TRUE(state.EndLimp(2, 10.0));
  EXPECT_FALSE(state.EndLimp(2, 11.0));
}

TEST(FaultStateTest, NodeCrashMasksItsDisks) {
  FaultState state(2, 2);
  state.FailNode(0, 5.0);
  // The disks themselves still report up — they did not fail — but no
  // location on the node can serve.
  EXPECT_TRUE(state.disk_up(0));
  EXPECT_FALSE(state.LocationUp(Loc(0, 0, 2)));
  EXPECT_FALSE(state.LocationUp(Loc(0, 1, 2)));
  EXPECT_TRUE(state.LocationUp(Loc(1, 0, 2)));
  state.RecoverNode(0, 9.0);
  EXPECT_TRUE(state.LocationUp(Loc(0, 0, 2)));
}

TEST(FaultStateTest, OverlappingDiskAndNodeOutages) {
  FaultState state(2, 2);
  state.FailDisk(0, 1.0);
  state.FailNode(0, 2.0);
  state.RecoverNode(0, 3.0);
  // Node repaired, but the disk fault is still open.
  EXPECT_FALSE(state.LocationUp(Loc(0, 0, 2)));
  state.RecoverDisk(0, 4.0);
  EXPECT_TRUE(state.LocationUp(Loc(0, 0, 2)));
}

TEST(FaultStateTest, StatsAccumulateDowntimeAndMttr) {
  FaultState state(2, 2);
  state.FailDisk(0, 10.0);
  state.RecoverDisk(0, 16.0);  // 6 s outage
  state.FailNode(1, 20.0);
  state.RecoverNode(1, 22.0);  // 2 s outage
  FaultState::Stats stats = state.StatsAt(30.0);
  EXPECT_EQ(stats.faults_injected, 2u);
  EXPECT_EQ(stats.repairs_completed, 2u);
  EXPECT_DOUBLE_EQ(stats.downtime_sec, 8.0);
  EXPECT_DOUBLE_EQ(state.MttrSec(), 4.0);
}

TEST(FaultStateTest, StatsAtChargesOpenOutages) {
  FaultState state(1, 2);
  state.FailDisk(1, 10.0);
  FaultState::Stats stats = state.StatsAt(17.0);
  EXPECT_EQ(stats.faults_injected, 1u);
  EXPECT_EQ(stats.repairs_completed, 0u);
  EXPECT_DOUBLE_EQ(stats.downtime_sec, 7.0);
  EXPECT_DOUBLE_EQ(state.MttrSec(), 0.0);  // nothing completed yet
}

TEST(FaultStateTest, ResetStatsRebasesOpenOutages) {
  FaultState state(1, 2);
  state.FailDisk(0, 5.0);
  state.ResetStats(20.0);  // measurement window opens mid-outage
  FaultState::Stats stats = state.StatsAt(23.0);
  EXPECT_EQ(stats.faults_injected, 0u);  // the fault predates the window
  EXPECT_DOUBLE_EQ(stats.downtime_sec, 3.0);  // but its downtime accrues
  state.RecoverDisk(0, 26.0);
  stats = state.StatsAt(30.0);
  EXPECT_EQ(stats.repairs_completed, 1u);
  EXPECT_DOUBLE_EQ(stats.downtime_sec, 6.0);
}

TEST(FaultStateTest, LimpEpisodesCountSeparately) {
  FaultState state(1, 2);
  state.BeginLimp(0, 3.0, 1.0);
  state.EndLimp(0, 2.0);
  state.BeginLimp(1, 2.0, 3.0);
  state.EndLimp(1, 4.0);
  FaultState::Stats stats = state.StatsAt(5.0);
  EXPECT_EQ(stats.limp_episodes, 2u);
  // Limping is degraded, not down: no downtime, no repairs.
  EXPECT_EQ(stats.faults_injected, 0u);
  EXPECT_DOUBLE_EQ(stats.downtime_sec, 0.0);
}

}  // namespace
}  // namespace spiffi::fault
