// Post-repair rebuild (ISSUE 9): FaultState rebuild-window accounting,
// and the Simulation's throttled resync process that re-reads a
// repaired disk's stripe regions from replica peers.

#include "fault/state.h"
#include "gtest/gtest.h"
#include "vod/simulation.h"

namespace spiffi {
namespace {

TEST(RebuildTest, FaultStateTracksRebuildWindows) {
  fault::FaultState state(2, 2);
  EXPECT_FALSE(state.disk_rebuilding(0));
  EXPECT_EQ(state.disks_rebuilding(), 0);

  EXPECT_TRUE(state.BeginRebuild(0, 10.0));
  EXPECT_FALSE(state.BeginRebuild(0, 11.0));  // idempotent
  EXPECT_TRUE(state.disk_rebuilding(0));
  EXPECT_EQ(state.disks_rebuilding(), 1);

  // Open windows are charged up to the query time.
  EXPECT_DOUBLE_EQ(state.StatsAt(14.0).rebuild_sec, 4.0);
  EXPECT_EQ(state.StatsAt(14.0).rebuilds_completed, 0u);

  EXPECT_TRUE(state.EndRebuild(0, 16.0, 1024, /*completed=*/true));
  EXPECT_FALSE(state.disk_rebuilding(0));
  EXPECT_FALSE(state.EndRebuild(0, 17.0, 0, true));  // already closed
  EXPECT_DOUBLE_EQ(state.StatsAt(20.0).rebuild_sec, 6.0);
  EXPECT_EQ(state.StatsAt(20.0).rebuild_bytes, 1024u);
  EXPECT_EQ(state.StatsAt(20.0).rebuilds_completed, 1u);

  // An aborted rebuild closes its window without counting a completion.
  EXPECT_TRUE(state.BeginRebuild(1, 20.0));
  EXPECT_TRUE(state.EndRebuild(1, 22.0, 512, /*completed=*/false));
  EXPECT_DOUBLE_EQ(state.StatsAt(22.0).rebuild_sec, 8.0);
  EXPECT_EQ(state.StatsAt(22.0).rebuilds_completed, 1u);
}

TEST(RebuildTest, ResetStatsRebasesOpenRebuildWindows) {
  fault::FaultState state(1, 2);
  state.BeginRebuild(0, 5.0);
  state.ResetStats(20.0);
  // Pre-window rebuild time is not charged to the new window.
  EXPECT_DOUBLE_EQ(state.StatsAt(23.0).rebuild_sec, 3.0);
}

vod::SimConfig RebuildConfig() {
  vod::SimConfig config;
  config.num_nodes = 2;
  config.disks_per_node = 2;
  config.video_seconds = 120.0;
  config.server_memory_bytes = 256LL * 1024 * 1024;
  config.terminals = 10;
  config.start_window_sec = 10.0;
  config.warmup_seconds = 15.0;
  config.measure_seconds = 30.0;
  config.placement = vod::VideoPlacement::kReplicatedStriped;
  config.replica_count = 2;
  config.fault_plan.script.push_back(
      {20.0, fault::FaultKind::kDiskFail, 0});
  config.fault_plan.script.push_back(
      {25.0, fault::FaultKind::kDiskRecover, 0});
  // Fast enough that the sweep of disk 0's stripe regions finishes well
  // inside the measurement window.
  config.rebuild_mbps = 2000.0;
  return config;
}

TEST(RebuildTest, RepairTriggersThrottledRebuild) {
  vod::Simulation simulation(RebuildConfig());
  vod::SimMetrics metrics = simulation.Run();
  EXPECT_EQ(metrics.repairs_completed, 1u);
  EXPECT_EQ(metrics.rebuilds_completed, 1u);
  EXPECT_GT(metrics.rebuild_sec, 0.0);
  EXPECT_GT(metrics.rebuild_bytes, 0u);
  ASSERT_NE(simulation.fault_state(), nullptr);
  // The sweep finished: no rebuild is still open at run end.
  EXPECT_EQ(simulation.fault_state()->disks_rebuilding(), 0);
}

TEST(RebuildTest, RebuildRunsAreDeterministic) {
  vod::Simulation a(RebuildConfig());
  vod::SimMetrics ma = a.Run();
  vod::Simulation b(RebuildConfig());
  vod::SimMetrics mb = b.Run();
  EXPECT_EQ(ma.events_simulated, mb.events_simulated);
  EXPECT_EQ(ma.rebuild_sec, mb.rebuild_sec);
  EXPECT_EQ(ma.rebuild_bytes, mb.rebuild_bytes);
  EXPECT_EQ(ma.glitches, mb.glitches);
  EXPECT_EQ(ma.disk_reads, mb.disk_reads);
  EXPECT_EQ(ma.avg_network_bytes_per_sec, mb.avg_network_bytes_per_sec);
}

TEST(RebuildTest, NoRebuildWithoutReplicaPeers) {
  vod::SimConfig config = RebuildConfig();
  config.placement = vod::VideoPlacement::kStriped;
  vod::Simulation simulation(config);
  vod::SimMetrics metrics = simulation.Run();
  // A single-copy layout has no peers to resync from: the repair lands
  // but no rebuild starts.
  EXPECT_EQ(metrics.repairs_completed, 1u);
  EXPECT_EQ(metrics.rebuilds_completed, 0u);
  EXPECT_EQ(metrics.rebuild_sec, 0.0);
  EXPECT_EQ(metrics.rebuild_bytes, 0u);
}

TEST(RebuildTest, NoRebuildWhenDisabled) {
  vod::SimConfig config = RebuildConfig();
  config.rebuild_mbps = 0.0;
  vod::Simulation simulation(config);
  vod::SimMetrics metrics = simulation.Run();
  EXPECT_EQ(metrics.rebuilds_completed, 0u);
  EXPECT_EQ(metrics.rebuild_sec, 0.0);
  EXPECT_EQ(metrics.rebuild_bytes, 0u);
}

}  // namespace
}  // namespace spiffi
