#include "server/disk_sched.h"

#include <algorithm>

#include "sim/check.h"

namespace spiffi::server {

const char* DiskSchedPolicyName(DiskSchedPolicy policy) {
  switch (policy) {
    case DiskSchedPolicy::kFcfs: return "fcfs";
    case DiskSchedPolicy::kElevator: return "elevator";
    case DiskSchedPolicy::kRoundRobin: return "round-robin";
    case DiskSchedPolicy::kGss: return "gss";
    case DiskSchedPolicy::kRealTime: return "real-time";
  }
  return "unknown";
}

std::unique_ptr<hw::DiskScheduler> MakeDiskScheduler(
    const DiskSchedParams& params) {
  switch (params.policy) {
    case DiskSchedPolicy::kFcfs:
      return std::make_unique<FcfsScheduler>();
    case DiskSchedPolicy::kElevator:
      return std::make_unique<ElevatorScheduler>(params.cylinder_bytes);
    case DiskSchedPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case DiskSchedPolicy::kGss:
      return std::make_unique<GssScheduler>(params.gss_groups,
                                            params.cylinder_bytes);
    case DiskSchedPolicy::kRealTime:
      return std::make_unique<RealTimeScheduler>(
          params.realtime_classes, params.realtime_spacing_sec,
          params.cylinder_bytes);
  }
  return nullptr;
}

// --- FCFS ---

void FcfsScheduler::Push(hw::DiskRequest* request) {
  queue_.push_back(request);
}

hw::DiskRequest* FcfsScheduler::Pop(std::int64_t, sim::SimTime) {
  SPIFFI_DCHECK(!queue_.empty());
  hw::DiskRequest* request = queue_.front();
  queue_.pop_front();
  return request;
}

// --- Elevator ---

void ElevatorScheduler::Push(hw::DiskRequest* request) {
  by_cylinder_.emplace(request->start_cylinder(cylinder_bytes_), request);
}

hw::DiskRequest* ElevatorScheduler::Pop(std::int64_t head_cylinder,
                                        sim::SimTime) {
  SPIFFI_DCHECK(!by_cylinder_.empty());
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (up_) {
      auto it = by_cylinder_.lower_bound(head_cylinder);
      if (it != by_cylinder_.end()) {
        hw::DiskRequest* request = it->second;
        by_cylinder_.erase(it);
        return request;
      }
      up_ = false;  // nothing ahead; reverse
    } else {
      auto it = by_cylinder_.upper_bound(head_cylinder);
      if (it != by_cylinder_.begin()) {
        --it;
        hw::DiskRequest* request = it->second;
        by_cylinder_.erase(it);
        return request;
      }
      up_ = true;
    }
  }
  SPIFFI_CHECK(false);  // non-empty queue must yield a request
  return nullptr;
}

// --- Round-robin ---

void RoundRobinScheduler::Push(hw::DiskRequest* request) {
  per_terminal_[request->terminal].push_back(request);
  ++total_;
}

hw::DiskRequest* RoundRobinScheduler::Pop(std::int64_t, sim::SimTime) {
  SPIFFI_DCHECK(total_ > 0);
  // The next terminal in cyclic id order after the last one serviced.
  auto it = per_terminal_.upper_bound(last_terminal_);
  if (it == per_terminal_.end()) it = per_terminal_.begin();
  hw::DiskRequest* request = it->second.front();
  it->second.pop_front();
  last_terminal_ = it->first;
  if (it->second.empty()) per_terminal_.erase(it);
  --total_;
  return request;
}

// --- GSS ---

std::string GssScheduler::name() const {
  return "gss-" + std::to_string(groups_);
}

void GssScheduler::Push(hw::DiskRequest* request) {
  per_terminal_[request->terminal].push_back(request);
  ++total_;
}

void GssScheduler::BuildSweep() {
  SPIFFI_DCHECK(sweep_.empty());
  // Advance to the next group (round-robin) that has pending requests and
  // select at most one request per terminal of that group.
  for (int step = 0; step < groups_; ++step) {
    int group = (current_group_ + step) % groups_;
    for (auto it = per_terminal_.begin(); it != per_terminal_.end();) {
      if (it->first % groups_ == group) {
        sweep_.push_back(it->second.front());
        it->second.pop_front();
        --total_;
        if (it->second.empty()) {
          it = per_terminal_.erase(it);
          continue;
        }
      }
      ++it;
    }
    if (!sweep_.empty()) {
      current_group_ = (group + 1) % groups_;
      break;
    }
  }
  // Elevator order within the pass: sort by cylinder and alternate the
  // sweep direction pass to pass. Requests are consumed from the back.
  std::sort(sweep_.begin(), sweep_.end(),
            [this](const hw::DiskRequest* a, const hw::DiskRequest* b) {
              std::int64_t ca = a->start_cylinder(cylinder_bytes_);
              std::int64_t cb = b->start_cylinder(cylinder_bytes_);
              if (ca != cb) return up_ ? ca > cb : ca < cb;
              return a->seq > b->seq;  // FIFO among equal cylinders
            });
  up_ = !up_;
}

hw::DiskRequest* GssScheduler::Pop(std::int64_t, sim::SimTime) {
  if (sweep_.empty()) BuildSweep();
  SPIFFI_DCHECK(!sweep_.empty());
  hw::DiskRequest* request = sweep_.back();
  sweep_.pop_back();
  return request;
}

// --- Real-time ---

std::string RealTimeScheduler::name() const {
  return "real-time-" + std::to_string(classes_) + "x" +
         std::to_string(static_cast<int>(spacing_sec_)) + "s";
}

void RealTimeScheduler::Push(hw::DiskRequest* request) {
  requests_.push_back(request);
}

int RealTimeScheduler::PriorityClass(sim::SimTime deadline,
                                     sim::SimTime now) const {
  if (deadline >= sim::kSimTimeMax) return classes_ - 1;
  double slack = deadline - now;
  if (slack <= 0.0) return 0;
  auto cls = static_cast<int>(slack / spacing_sec_);
  return std::min(cls, classes_ - 1);
}

hw::DiskRequest* RealTimeScheduler::Pop(std::int64_t head_cylinder,
                                        sim::SimTime now) {
  SPIFFI_DCHECK(!requests_.empty());
  // Priorities are recomputed from the current clock on every pop.
  int best_class = classes_;
  for (const hw::DiskRequest* r : requests_) {
    best_class = std::min(best_class, PriorityClass(r->deadline, now));
    if (best_class == 0) break;
  }

  // Elevator selection within the most urgent class. Prefer the nearest
  // request in the sweep direction; if the class has none that way,
  // reverse the sweep.
  auto pick = [&](bool up) -> std::size_t {
    std::size_t best = requests_.size();
    std::int64_t best_cyl = 0;
    for (std::size_t i = 0; i < requests_.size(); ++i) {
      const hw::DiskRequest* r = requests_[i];
      if (PriorityClass(r->deadline, now) != best_class) continue;
      std::int64_t cyl = r->start_cylinder(cylinder_bytes_);
      bool in_direction = up ? cyl >= head_cylinder : cyl <= head_cylinder;
      if (!in_direction) continue;
      bool better;
      if (best == requests_.size()) {
        better = true;
      } else if (cyl != best_cyl) {
        better = up ? cyl < best_cyl : cyl > best_cyl;
      } else {
        better = r->seq < requests_[best]->seq;  // FIFO tie-break
      }
      if (better) {
        best = i;
        best_cyl = cyl;
      }
    }
    return best;
  };

  std::size_t chosen = pick(up_);
  if (chosen == requests_.size()) {
    up_ = !up_;
    chosen = pick(up_);
  }
  SPIFFI_CHECK(chosen < requests_.size());
  hw::DiskRequest* request = requests_[chosen];
  requests_[chosen] = requests_.back();
  requests_.pop_back();
  return request;
}

}  // namespace spiffi::server
