// The whole video server: a shared-nothing collection of nodes on one
// interconnection network (paper Fig 1).

#ifndef SPIFFI_SERVER_SERVER_H_
#define SPIFFI_SERVER_SERVER_H_

#include <memory>
#include <vector>

#include "server/node.h"

namespace spiffi::server {

// Minimal view of a server that clients need: where to send a request
// destined for a given node. Lets tests drive terminals against fakes.
class NodeDirectory {
 public:
  virtual ~NodeDirectory() = default;
  virtual MessageSink* node_sink(int id) = 0;
};

class VideoServer final : public NodeDirectory {
 public:
  // `node_config` is cloned per node with the id filled in. The buffer
  // pool pages in node_config are per node. `fault`, when given, arms
  // the degraded-read path on every node (the server itself acts as the
  // peer directory for re-routed requests).
  VideoServer(sim::Environment* env, int num_nodes,
              const NodeConfig& node_config, hw::Network* network,
              const mpeg::VideoLibrary* library,
              const layout::Layout* layout,
              const fault::FaultState* fault = nullptr);

  // Sharded form: node i lives on node_envs[i] / node_networks[i] (the
  // vectors must be the same length; repeated pointers are fine — the
  // single-environment constructor delegates here with every entry
  // equal). Nodes only reach each other through PostMessage, which
  // routes across shards when the endpoints' environments differ.
  VideoServer(const std::vector<sim::Environment*>& node_envs,
              const std::vector<hw::Network*>& node_networks,
              const NodeConfig& node_config,
              const mpeg::VideoLibrary* library, const layout::Layout* layout,
              const fault::FaultState* fault = nullptr);

  VideoServer(const VideoServer&) = delete;
  VideoServer& operator=(const VideoServer&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int id) { return *nodes_[id]; }
  const Node& node(int id) const { return *nodes_[id]; }
  MessageSink* node_sink(int id) override { return nodes_[id].get(); }

  void ResetStats(sim::SimTime now);

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_SERVER_H_
