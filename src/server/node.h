// A server node: one CPU, a buffer pool, and a set of disks with their
// schedulers and prefetchers (paper Fig 1).
//
// Read path for a terminal request (§5.2):
//   network -> receive CPU cost -> buffer pool lookup
//     hit       reply immediately from memory
//     in flight pin the page, boost the pending disk request's deadline,
//               wait for the I/O (the paper's inter-terminal sharing)
//     miss      claim a page (waiting for a free one if necessary),
//               start-I/O CPU cost, queue the read at the proper disk,
//               wait for completion
//   every real reference also triggers a background prefetch of the next
//   stripe block on the same disk, carrying an estimated deadline.
//   send CPU cost -> reply (block payload) over the network.

#ifndef SPIFFI_SERVER_NODE_H_
#define SPIFFI_SERVER_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/cpu.h"
#include "hw/disk.h"
#include "hw/network.h"
#include "layout/layout.h"
#include "mpeg/video.h"
#include "server/buffer_pool.h"
#include "server/disk_sched.h"
#include "server/message.h"
#include "server/prefetch.h"
#include "sim/environment.h"
#include "sim/process.h"

namespace spiffi::fault {
class FaultState;
}  // namespace spiffi::fault

namespace spiffi::server {

class NodeDirectory;  // server.h; needed to forward degraded reads

struct NodeConfig {
  int id = 0;
  int disks_per_node = 4;
  double cpu_mips = 40.0;
  hw::CpuCosts costs;
  hw::DiskParams disk;
  DiskSchedParams sched;
  std::int64_t pool_pages = 2048;
  ReplacementPolicy replacement = ReplacementPolicy::kGlobalLru;
  PrefetchPolicy prefetch = PrefetchPolicy::kFifo;
  PrefetchTrigger prefetch_trigger = PrefetchTrigger::kOnMiss;
  int prefetch_workers = 1;
  double max_advance_prefetch_sec = 8.0;
  std::int64_t block_bytes = 512 * 1024;
  // Degraded-read tuning (mirrors fault::FaultPlan; only consulted when
  // a fault state is attached): maximum re-route forwards per request,
  // and the recovery re-check period while no replica is alive.
  int fault_hop_budget = 2;
  double fault_recheck_sec = 0.25;
  // Pinned prefix cache: the node dedicates up to
  // pool_pages * prefix_cache_fraction pages to the first blocks of
  // popular videos, re-sizing per-video quotas from measured demand
  // every prefix_recompute_sec (0 fraction disables the machinery
  // entirely). num_nodes scales local page budget to global prefix
  // blocks under striping.
  double prefix_cache_fraction = 0.0;
  double prefix_recompute_sec = 30.0;
  int num_nodes = 1;
};

class Node final : public MessageSink, public hw::DiskCompletionListener {
 public:
  // `peers` (usually the owning VideoServer) and `fault` are optional:
  // without them the degraded-read machinery is compiled in but never
  // entered, so healthy runs are untouched.
  Node(sim::Environment* env, const NodeConfig& config,
       hw::Network* network, const mpeg::VideoLibrary* library,
       const layout::Layout* layout, NodeDirectory* peers = nullptr,
       const fault::FaultState* fault = nullptr);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Terminal read requests arrive here from the network.
  void OnMessage(const Message& message) override;
  // Disk reads complete here.
  void OnDiskComplete(hw::DiskRequest* request) override;

  int id() const { return config_.id; }
  hw::Cpu& cpu() { return cpu_; }
  const hw::Cpu& cpu() const { return cpu_; }
  BufferPool& pool() { return pool_; }
  const BufferPool& pool() const { return pool_; }
  hw::Disk& disk(int local) { return *disks_[local]; }
  const hw::Disk& disk(int local) const { return *disks_[local]; }
  Prefetcher& prefetcher(int local) { return *prefetchers_[local]; }
  const Prefetcher& prefetcher(int local) const {
    return *prefetchers_[local];
  }
  int num_disks() const { return static_cast<int>(disks_.size()); }

  // Degraded-mode counters (all zero when no faults are injected).
  struct FaultStats {
    std::uint64_t rerouted_requests = 0;   // forwarded to a live replica
    std::uint64_t degraded_waits = 0;      // parked awaiting a repair
    std::uint64_t prefetches_skipped_dead = 0;
  };
  const FaultStats& fault_stats() const { return fault_stats_; }

  // Pinned-prefix introspection (for tests and telemetry).
  std::int64_t prefix_budget_pages() const { return prefix_budget_pages_; }
  std::int64_t prefix_quota(int video) const {
    return prefix_quota_.empty() ? 0 : prefix_quota_[video];
  }
  // Recomputes quotas from the demand measured so far and reconciles
  // the pinned set (normally driven by the periodic PrefixManager).
  void RecomputePrefixQuotas();

  void ResetStats(sim::SimTime now);

 private:
  sim::Process HandleRead(Message message);
  // Periodic popularity -> quota recomputation.
  sim::Process PrefixManager();
  // Pins `page` if it is an in-quota prefix block and budget remains.
  void MaybePinPrefix(BufferPool::Page* page);

  // The copy of (video, block) this node serves: the primary if it is
  // ours, else the local replica. Falls back to the primary location
  // when no copy lives here (the caller must not submit it).
  layout::BlockLocation LocalReplica(int video, std::int64_t block) const;

  // First live replica of the block on another node, in chain order.
  bool FindLiveReplica(int video, std::int64_t block,
                       layout::BlockLocation* out) const;

  // Issues a prefetch for the next block of `video` on the same disk as
  // `block` (the basic SPIFFI rule), tagging it with the deadline the
  // true request is expected to carry.
  void TriggerPrefetch(int video, std::int64_t block,
                       sim::SimTime reference_deadline, int terminal);

  // Actual bytes of a read block (the last block of a video is short).
  std::int64_t BlockBytes(int video, std::int64_t block) const;

  sim::Environment* env_;
  NodeConfig config_;
  hw::Network* network_;
  const mpeg::VideoLibrary* library_;
  const layout::Layout* layout_;
  NodeDirectory* peers_;
  const fault::FaultState* fault_;
  FaultStats fault_stats_;

  hw::Cpu cpu_;
  BufferPool pool_;
  std::vector<std::unique_ptr<hw::Disk>> disks_;
  std::vector<std::unique_ptr<Prefetcher>> prefetchers_;

  // Pinned prefix cache state (empty / zero when disabled). Demand
  // counts accumulate over the whole run — popularity is a measurement,
  // not a windowed statistic, so ResetStats leaves it alone.
  std::int64_t prefix_budget_pages_ = 0;
  std::vector<std::uint64_t> video_refs_;
  std::vector<std::int64_t> prefix_quota_;  // pin blocks [0, quota)
};

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_NODE_H_
