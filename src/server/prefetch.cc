#include "server/prefetch.h"

#include <algorithm>

#include "obs/trace.h"
#include "sim/check.h"

namespace spiffi::server {

const char* PrefetchPolicyName(PrefetchPolicy policy) {
  switch (policy) {
    case PrefetchPolicy::kNone: return "none";
    case PrefetchPolicy::kFifo: return "fifo";
    case PrefetchPolicy::kRealTime: return "real-time";
    case PrefetchPolicy::kDelayed: return "delayed";
  }
  return "unknown";
}

Prefetcher::Prefetcher(sim::Environment* env, PrefetchPolicy policy,
                       int num_workers, double max_advance_sec,
                       BufferPool* pool, hw::Cpu* cpu, hw::Disk* disk,
                       const hw::CpuCosts& costs)
    : env_(env),
      policy_(policy),
      max_advance_sec_(max_advance_sec),
      pool_(pool),
      cpu_(cpu),
      disk_(disk),
      costs_(costs),
      arrivals_(env) {
  SPIFFI_CHECK(env != nullptr);
  if (policy == PrefetchPolicy::kNone) return;
  SPIFFI_CHECK(num_workers > 0);
  for (int i = 0; i < num_workers; ++i) env_->Spawn(Worker());
}

void Prefetcher::Enqueue(const PrefetchTask& task) {
  if (policy_ == PrefetchPolicy::kNone) return;
  if (!pending_.insert(task.key).second) {
    ++stats_.duplicates_dropped;
    obs::TraceInstant(env_, obs::TraceCategory::kPrefetch,
                      "prefetch_duplicate", trace_pid_,
                      trace_tid_,
                      {{"block", static_cast<double>(task.key.block)}});
    return;
  }
  ++stats_.enqueued;
  queue_.push_back(QueuedTask{task, next_seq_++});
  std::push_heap(queue_.begin(), queue_.end(),
                 [this](const QueuedTask& a, const QueuedTask& b) {
                   return LaterTask(a, b);
                 });
  obs::TraceInstant(env_, obs::TraceCategory::kPrefetch, "prefetch_enqueue",
                    trace_pid_, trace_tid_,
                    {{"block", static_cast<double>(task.key.block)},
                     {"queue_len", static_cast<double>(queue_.size())}});
  arrivals_.NotifyOne();
}

bool Prefetcher::LaterTask(const QueuedTask& a, const QueuedTask& b) const {
  if (policy_ != PrefetchPolicy::kFifo &&
      a.task.est_deadline != b.task.est_deadline) {
    return a.task.est_deadline > b.task.est_deadline;
  }
  return a.seq > b.seq;
}

PrefetchTask Prefetcher::PopNext() {
  SPIFFI_DCHECK(!queue_.empty());
  std::pop_heap(queue_.begin(), queue_.end(),
                [this](const QueuedTask& a, const QueuedTask& b) {
                  return LaterTask(a, b);
                });
  PrefetchTask task = queue_.back().task;
  queue_.pop_back();
  return task;
}

sim::SimTime Prefetcher::MinDeadline() const {
  SPIFFI_DCHECK(policy_ != PrefetchPolicy::kFifo);  // heap is seq-ordered
  return queue_.empty() ? sim::kSimTimeMax : queue_.front().task.est_deadline;
}

sim::Process Prefetcher::Worker() {
  for (;;) {
    if (queue_.empty()) {
      (void)co_await arrivals_.Wait();
      continue;  // re-check; another worker may have taken the task
    }
    if (policy_ == PrefetchPolicy::kDelayed) {
      // Delay issuing until within max_advance of the estimated deadline
      // (Fig 7). Wake early if a more urgent task arrives.
      sim::SimTime eligible_at = MinDeadline() - max_advance_sec_;
      if (env_->now() < eligible_at) {
        (void)co_await arrivals_.WaitUntil(eligible_at);
        continue;  // re-evaluate from scratch
      }
    }
    PrefetchTask task = PopNext();

    if (disk_->failed()) {
      // The disk died after this task was enqueued. Background reads are
      // speculative — drop rather than park a worker on a dead drive
      // (the true request will re-route through a replica instead).
      pending_.erase(task.key);
      ++stats_.dropped_disk_down;
      obs::TraceInstant(env_, obs::TraceCategory::kPrefetch,
                        "prefetch_drop_disk_down", trace_pid_, trace_tid_,
                        {{"block", static_cast<double>(task.key.block)}});
      continue;
    }

    if (pool_->Lookup(task.key) != nullptr) {
      // A real request (or another worker) got there first.
      pending_.erase(task.key);
      ++stats_.already_cached;
      obs::TraceInstant(env_, obs::TraceCategory::kPrefetch,
                        "prefetch_cancel_cached", trace_pid_, trace_tid_,
                        {{"block", static_cast<double>(task.key.block)}});
      continue;
    }

    // Claim a buffer page, waiting for one if the pool is saturated.
    BufferPool::Page* page = nullptr;
    for (;;) {
      page = pool_->Allocate(task.key, /*for_prefetch=*/true);
      if (page != nullptr) break;
      (void)co_await pool_->free_pages().Wait();
      if (pool_->Lookup(task.key) != nullptr) break;  // raced; drop
    }
    if (page == nullptr) {
      pending_.erase(task.key);
      ++stats_.already_cached;
      continue;
    }

    co_await cpu_->Execute(costs_.start_io_instructions);

    hw::DiskRequest request;
    request.video = task.key.video;
    request.block = task.key.block;
    request.disk_offset = task.disk_offset;
    request.bytes = task.bytes;
    request.is_prefetch = true;
    request.terminal = task.terminal;
    // FIFO prefetches carry no deadline: the real-time disk scheduler
    // parks them in the lowest class; elevator ignores deadlines anyway.
    request.deadline = policy_ == PrefetchPolicy::kFifo
                           ? sim::kSimTimeMax
                           : task.est_deadline;
    // An attacher may have raised the urgency while we queued for the CPU.
    request.deadline = std::min(request.deadline, page->urgent_deadline);
    request.context = page;
    page->inflight_request = &request;
    ++stats_.issued;
    obs::TraceInstant(env_, obs::TraceCategory::kPrefetch, "prefetch_issue",
                      trace_pid_, trace_tid_,
                      {{"block", static_cast<double>(task.key.block)},
                       {"bytes", static_cast<double>(task.bytes)}});
    disk_->Submit(&request);

    (void)co_await pool_->Ready(page).Wait();
    pool_->Unpin(page);
    pending_.erase(task.key);
  }
}

}  // namespace spiffi::server
