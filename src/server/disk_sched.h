// Disk scheduling policies (paper §5.2.2).
//
//  * FCFS        — first come, first served (baseline from related work).
//  * Elevator    — SCAN: sweep the cylinders in one direction servicing
//                  requests as they are passed, reverse at the last one.
//  * Round-robin — service terminals in cyclic terminal order, FIFO
//                  within a terminal (== GSS with one group per terminal).
//  * GSS         — grouped sweeping scheme [Yu92]: terminals are hashed
//                  into k groups processed round-robin; each group pass
//                  services at most one request per terminal, in elevator
//                  order.
//  * Real-time   — deadline-to-priority-class extension of the elevator
//                  [Care89]: requests map to one of `classes` priority
//                  classes by remaining slack with uniform `spacing`
//                  between cutoffs (Fig 5); the most urgent non-empty
//                  class is serviced in elevator order, and priorities
//                  are recomputed from the clock at every pop (Fig 6).
//                  Requests with no deadline (plain prefetches) take the
//                  lowest priority.

#ifndef SPIFFI_SERVER_DISK_SCHED_H_
#define SPIFFI_SERVER_DISK_SCHED_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk.h"

namespace spiffi::server {

enum class DiskSchedPolicy {
  kFcfs,
  kElevator,
  kRoundRobin,
  kGss,
  kRealTime,
};

const char* DiskSchedPolicyName(DiskSchedPolicy policy);

struct DiskSchedParams {
  DiskSchedPolicy policy = DiskSchedPolicy::kElevator;
  std::int64_t cylinder_bytes = 1;  // for cylinder math
  int gss_groups = 1;               // GSS only
  int realtime_classes = 3;         // real-time only
  double realtime_spacing_sec = 4.0;
};

// Builds a scheduler instance for one disk.
std::unique_ptr<hw::DiskScheduler> MakeDiskScheduler(
    const DiskSchedParams& params);

// --- Individual policies (exposed for unit tests) ---

class FcfsScheduler final : public hw::DiskScheduler {
 public:
  void Push(hw::DiskRequest* request) override;
  hw::DiskRequest* Pop(std::int64_t head_cylinder,
                       sim::SimTime now) override;
  bool empty() const override { return queue_.empty(); }
  std::size_t size() const override { return queue_.size(); }
  std::string name() const override { return "fcfs"; }

 private:
  std::deque<hw::DiskRequest*> queue_;
};

class ElevatorScheduler final : public hw::DiskScheduler {
 public:
  explicit ElevatorScheduler(std::int64_t cylinder_bytes)
      : cylinder_bytes_(cylinder_bytes) {}

  void Push(hw::DiskRequest* request) override;
  hw::DiskRequest* Pop(std::int64_t head_cylinder,
                       sim::SimTime now) override;
  bool empty() const override { return by_cylinder_.empty(); }
  std::size_t size() const override { return by_cylinder_.size(); }
  std::string name() const override { return "elevator"; }

  bool sweeping_up() const { return up_; }

 private:
  std::int64_t cylinder_bytes_;
  // Equal keys keep insertion (FIFO) order, per the multimap guarantee.
  std::multimap<std::int64_t, hw::DiskRequest*> by_cylinder_;
  bool up_ = true;
};

class RoundRobinScheduler final : public hw::DiskScheduler {
 public:
  void Push(hw::DiskRequest* request) override;
  hw::DiskRequest* Pop(std::int64_t head_cylinder,
                       sim::SimTime now) override;
  bool empty() const override { return total_ == 0; }
  std::size_t size() const override { return total_; }
  std::string name() const override { return "round-robin"; }

 private:
  std::map<int, std::deque<hw::DiskRequest*>> per_terminal_;
  int last_terminal_ = -1;
  std::size_t total_ = 0;
};

class GssScheduler final : public hw::DiskScheduler {
 public:
  GssScheduler(int groups, std::int64_t cylinder_bytes)
      : groups_(groups), cylinder_bytes_(cylinder_bytes) {}

  void Push(hw::DiskRequest* request) override;
  hw::DiskRequest* Pop(std::int64_t head_cylinder,
                       sim::SimTime now) override;
  bool empty() const override { return total_ == 0 && sweep_.empty(); }
  std::size_t size() const override { return total_ + sweep_.size(); }
  std::string name() const override;

  int current_group() const { return current_group_; }

 private:
  void BuildSweep();

  int groups_;
  std::int64_t cylinder_bytes_;
  std::map<int, std::deque<hw::DiskRequest*>> per_terminal_;
  std::size_t total_ = 0;  // requests in per_terminal_ (not in sweep_)
  std::vector<hw::DiskRequest*> sweep_;  // current group pass, served
                                         // back-to-front
  int current_group_ = 0;
  bool up_ = true;  // alternate sweep direction like an elevator
};

class RealTimeScheduler final : public hw::DiskScheduler {
 public:
  RealTimeScheduler(int classes, double spacing_sec,
                    std::int64_t cylinder_bytes)
      : classes_(classes),
        spacing_sec_(spacing_sec),
        cylinder_bytes_(cylinder_bytes) {}

  void Push(hw::DiskRequest* request) override;
  hw::DiskRequest* Pop(std::int64_t head_cylinder,
                       sim::SimTime now) override;
  bool empty() const override { return requests_.empty(); }
  std::size_t size() const override { return requests_.size(); }
  std::string name() const override;

  // Priority class (0 = most urgent) for a request with the given
  // deadline at time `now`; exposed for tests.
  int PriorityClass(sim::SimTime deadline, sim::SimTime now) const;

 private:
  int classes_;
  double spacing_sec_;
  std::int64_t cylinder_bytes_;
  std::vector<hw::DiskRequest*> requests_;
  bool up_ = true;
};

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_DISK_SCHED_H_
