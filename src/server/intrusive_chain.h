// Intrusive doubly-linked LRU chain, extracted from the buffer pool so
// every bounded cache in the system (origin buffer pools, proxy caches)
// shares one chain implementation.
//
// The prev/next links live inside the element itself (`T::lru_prev` /
// `T::lru_next`), so moving an element between chains — the
// per-reference hot path — is a handful of pointer writes with no node
// allocation. Convention throughout: head = LRU (eviction) end,
// tail = MRU end.
//
// The chain does not own its elements and performs no bookkeeping
// beyond the links and a size counter; callers track which chain an
// element is on (e.g. BufferPool::Page::chain).

#ifndef SPIFFI_SERVER_INTRUSIVE_CHAIN_H_
#define SPIFFI_SERVER_INTRUSIVE_CHAIN_H_

#include <cstddef>

namespace spiffi::server {

template <typename T>
class IntrusiveChain {
 public:
  T* head() const { return head_; }
  T* tail() const { return tail_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Unlinks `item`, which must currently be on this chain.
  void Remove(T* item) {
    if (item->lru_prev != nullptr) {
      item->lru_prev->lru_next = item->lru_next;
    } else {
      head_ = item->lru_next;
    }
    if (item->lru_next != nullptr) {
      item->lru_next->lru_prev = item->lru_prev;
    } else {
      tail_ = item->lru_prev;
    }
    item->lru_prev = item->lru_next = nullptr;
    --size_;
  }

  // Links `item`, which must not be on any chain, at the MRU end.
  void Append(T* item) {
    item->lru_prev = tail_;
    item->lru_next = nullptr;
    if (tail_ != nullptr) {
      tail_->lru_next = item;
    } else {
      head_ = item;
    }
    tail_ = item;
    ++size_;
  }

 private:
  T* head_ = nullptr;
  T* tail_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_INTRUSIVE_CHAIN_H_
