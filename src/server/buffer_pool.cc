#include "server/buffer_pool.h"

#include "obs/trace.h"
#include "sim/check.h"

namespace spiffi::server {

BufferPool::BufferPool(sim::Environment* env, std::int64_t num_pages,
                       ReplacementPolicy policy)
    : env_(env), policy_(policy), free_waiters_(env) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(num_pages > 0);
  free_.reserve(static_cast<std::size_t>(num_pages));
  for (std::int64_t i = 0; i < num_pages; ++i) {
    free_.push_back(&pages_.emplace_back(env));
  }
  table_.reserve(static_cast<std::size_t>(num_pages) * 2);
}

BufferPool::Page* BufferPool::Lookup(const PageKey& key) {
  auto it = table_.find(key);
  return it == table_.end() ? nullptr : it->second;
}

void BufferPool::RecordReference(Page* page, int terminal) {
  ++stats_.references;
  if (page->ever_referenced && page->last_terminal != terminal) {
    ++stats_.shared_refs;
  }
  if (page->pinned_prefix) ++stats_.prefix_hits;
  if (page->io_in_flight) {
    ++stats_.attaches;
    obs::TraceInstant(env_, obs::TraceCategory::kBuffer, "pool_attach",
                      trace_pid_, obs::Tracer::kPoolTid,
                      {{"terminal", static_cast<double>(terminal)},
                       {"block", static_cast<double>(page->key.block)}});
  } else {
    ++stats_.hits;
    obs::TraceInstant(env_, obs::TraceCategory::kBuffer, "pool_hit",
                      trace_pid_, obs::Tracer::kPoolTid,
                      {{"terminal", static_cast<double>(terminal)},
                       {"block", static_cast<double>(page->key.block)}});
  }
}

void BufferPool::RecordMiss() {
  ++stats_.references;
  ++stats_.misses;
  obs::TraceInstant(env_, obs::TraceCategory::kBuffer, "pool_miss",
                    trace_pid_, obs::Tracer::kPoolTid);
}

void BufferPool::RemoveFromChain(Page* page) {
  if (page->chain < 0) return;
  chains_[page->chain].Remove(page);
  page->chain = -1;
}

void BufferPool::AppendToChain(Page* page, int chain) {
  RemoveFromChain(page);
  // Under global LRU everything evictable lives on one queue; the
  // pinned chain stays separate under both policies.
  if (policy_ == ReplacementPolicy::kGlobalLru &&
      chain == kPrefetchedChain) {
    chain = kReferencedChain;
  }
  chains_[chain].Append(page);
  page->chain = chain;
}

void BufferPool::Touch(Page* page, int terminal) {
  SPIFFI_DCHECK(page->valid);
  page->ever_referenced = true;
  page->last_terminal = terminal;
  page->prefetched = false;
  // Pinned prefix pages stay put: eviction ordering is moot for them.
  if (page->pinned_prefix) return;
  AppendToChain(page, kReferencedChain);
}

void BufferPool::PinPrefix(Page* page) {
  SPIFFI_DCHECK(page->valid && !page->io_in_flight);
  if (page->pinned_prefix) return;
  page->pinned_prefix = true;
  page->prefetched = false;
  AppendToChain(page, kPinnedChain);
  obs::TraceCounter(env_, obs::TraceCategory::kBuffer, "pool_pinned_pages",
                    trace_pid_, obs::Tracer::kPoolTid,
                    static_cast<double>(pinned_pages()));
}

void BufferPool::UnpinPrefix(Page* page) {
  if (!page->pinned_prefix) return;
  page->pinned_prefix = false;
  AppendToChain(page, kReferencedChain);
  if (page->pin_count == 0) free_waiters_.NotifyOne();
}

BufferPool::Page* BufferPool::EvictFrom(int chain) {
  for (Page* page = chains_[chain].head(); page != nullptr;
       page = page->lru_next) {
    if (page->pin_count == 0 && !page->io_in_flight) {
      RemoveFromChain(page);
      table_.erase(page->key);
      ++stats_.evictions;
      bool wasted = page->prefetched && !page->ever_referenced;
      if (wasted) ++stats_.wasted_prefetches;
      obs::TraceInstant(env_, obs::TraceCategory::kBuffer, "pool_evict",
                        trace_pid_, obs::Tracer::kPoolTid,
                        {{"block", static_cast<double>(page->key.block)},
                         {"wasted_prefetch", wasted ? 1.0 : 0.0}});
      return page;
    }
  }
  return nullptr;
}

BufferPool::Page* BufferPool::Allocate(const PageKey& key,
                                       bool for_prefetch) {
  SPIFFI_DCHECK(Lookup(key) == nullptr);
  Page* page = nullptr;
  if (!free_.empty()) {
    page = free_.back();
    free_.pop_back();
  } else {
    page = EvictFrom(kReferencedChain);
    if (page == nullptr && policy_ == ReplacementPolicy::kLovePrefetch) {
      page = EvictFrom(kPrefetchedChain);
    }
  }
  if (page == nullptr) {
    ++stats_.allocation_stalls;
    return nullptr;
  }
  page->key = key;
  page->valid = false;
  page->io_in_flight = true;
  page->prefetched = for_prefetch;
  page->pinned_prefix = false;
  page->pin_count = 1;  // caller's pin
  page->last_terminal = -1;
  page->ever_referenced = false;
  page->inflight_request = nullptr;
  page->urgent_deadline = sim::kSimTimeMax;
  table_.emplace(key, page);
  obs::TraceCounter(env_, obs::TraceCategory::kBuffer, "pool_pages_in_use",
                    trace_pid_, obs::Tracer::kPoolTid,
                    static_cast<double>(pages_in_use()));
  return page;
}

void BufferPool::Complete(Page* page) {
  SPIFFI_DCHECK(page->io_in_flight);
  page->io_in_flight = false;
  page->valid = true;
  page->inflight_request = nullptr;
  AppendToChain(page,
                page->prefetched ? kPrefetchedChain : kReferencedChain);
  page->ready.NotifyAll();
}

void BufferPool::Unpin(Page* page) {
  SPIFFI_DCHECK(page->pin_count > 0);
  --page->pin_count;
  if (page->pin_count == 0 && !page->io_in_flight) {
    // The page just became evictable; wake one allocation-stalled process.
    free_waiters_.NotifyOne();
  }
}

}  // namespace spiffi::server
