// Server buffer pool with pluggable page replacement (paper §5.2.1).
//
// Pages are stripe blocks. Two replacement policies are provided:
//
//  * Global LRU — a single LRU queue that does not distinguish prefetched
//    from referenced pages. A new page takes the first unpinned,
//    not-in-flight page from the head of the queue.
//  * Love prefetch — two LRU chains (Fig 4). A freshly prefetched page
//    goes on the prefetched-pages chain; when a terminal references it,
//    it moves to the referenced-pages chain. Replacement takes from the
//    referenced chain first and only then from the prefetched chain, so
//    pages that were read ahead but not yet consumed are protected.
//
// A third chain holds pinned prefix pages: the first blocks of popular
// videos, pinned by the owning node so that new share groups and patch
// streams start from memory. Pinned pages are exempt from eviction
// under BOTH policies (the chain is never scanned) and never count as
// wasted prefetches; the node sizes and reconciles the pinned set from
// measured popularity (see server/node.h).
//
// The LRU chains are intrusive (server/intrusive_chain.h): the
// prev/next links live in the Page itself, so moving a page between
// chains (the per-reference hot path) is a handful of pointer writes
// with no node allocation. Each page also embeds its I/O-completion
// WaitList directly.
//
// Concurrency protocol (single-threaded simulation, coroutine processes):
//  * Lookup finds a page that is valid or still being filled by an I/O.
//  * A process waiting for an in-flight page must Pin it before
//    co_await-ing Ready(page) so the page cannot be recycled under it.
//  * Allocate returns a pinned page in the io-in-flight state, or nullptr
//    when every page is pinned or in flight; the caller then waits on
//    free_pages() and retries (re-checking Lookup, since another process
//    may have started the same block meanwhile).

#ifndef SPIFFI_SERVER_BUFFER_POOL_H_
#define SPIFFI_SERVER_BUFFER_POOL_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "hw/disk.h"
#include "server/intrusive_chain.h"
#include "sim/environment.h"
#include "sim/random.h"
#include "sim/wait_list.h"

namespace spiffi::server {

enum class ReplacementPolicy { kGlobalLru, kLovePrefetch };

struct PageKey {
  int video = -1;
  std::int64_t block = -1;
  bool operator==(const PageKey&) const = default;
};

struct PageKeyHash {
  std::size_t operator()(const PageKey& key) const {
    return static_cast<std::size_t>(
        sim::Hash64(static_cast<std::uint64_t>(key.video),
                    static_cast<std::uint64_t>(key.block)));
  }
};

class BufferPool {
 public:
  struct Page {
    explicit Page(sim::Environment* env) : ready(env) {}

    Page(const Page&) = delete;
    Page& operator=(const Page&) = delete;

    PageKey key;
    bool valid = false;         // data present
    bool io_in_flight = false;  // a disk read is filling this page
    bool prefetched = false;    // filled by prefetch, not yet referenced
    bool pinned_prefix = false; // resident on the pinned prefix chain
    int pin_count = 0;
    int last_terminal = -1;     // last terminal to really reference it
    bool ever_referenced = false;
    hw::DiskRequest* inflight_request = nullptr;  // for deadline boosting
    // Most urgent deadline requested by attachers so far. Attachers may
    // arrive between Allocate and the disk Submit (while
    // inflight_request is still null); the issuer folds this in before
    // submitting.
    sim::SimTime urgent_deadline = sim::kSimTimeMax;

    // Intrusive LRU bookkeeping (managed by the pool).
    int chain = -1;  // -1: not on any chain
    Page* lru_prev = nullptr;
    Page* lru_next = nullptr;

    sim::WaitList ready;  // I/O-completion waiters
  };

  struct Stats {
    std::uint64_t references = 0;   // real terminal references
    std::uint64_t hits = 0;         // page valid at lookup
    std::uint64_t attaches = 0;     // page in flight at lookup
    std::uint64_t misses = 0;       // page absent; disk read required
    std::uint64_t shared_refs = 0;  // page previously referenced by
                                    // another terminal (Fig 16)
    std::uint64_t evictions = 0;
    std::uint64_t wasted_prefetches = 0;  // prefetched page evicted
                                          // before ever being referenced
    std::uint64_t allocation_stalls = 0;  // Allocate returned nullptr
    std::uint64_t prefix_hits = 0;        // references served by a
                                          // pinned prefix page
  };

  BufferPool(sim::Environment* env, std::int64_t num_pages,
             ReplacementPolicy policy);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Finds the page holding `key` (valid or in flight), else nullptr.
  Page* Lookup(const PageKey& key);

  // Classifies and counts a real terminal reference that found `page`
  // (valid or in flight) — call once per reference, before waiting.
  void RecordReference(Page* page, int terminal);
  // Counts a real reference that missed entirely.
  void RecordMiss();

  // Marks a real reference for replacement purposes: moves the page to
  // the MRU end of the referenced chain (love prefetch pulls it off the
  // prefetched chain). Requires page->valid.
  void Touch(Page* page, int terminal);

  // Takes a free or evictable page for `key` and returns it pinned, in
  // the io-in-flight state, not yet on any chain. Returns nullptr if no
  // page can be recycled right now. `for_prefetch` tags the page for
  // love-prefetch chain placement at completion.
  Page* Allocate(const PageKey& key, bool for_prefetch);

  // I/O completion: page becomes valid and is placed on the appropriate
  // LRU chain; all Ready(page) waiters are notified.
  void Complete(Page* page);

  void Pin(Page* page) { ++page->pin_count; }
  void Unpin(Page* page);

  // Moves a valid page onto the pinned prefix chain, exempting it from
  // eviction until UnpinPrefix. Clears the prefetched tag: a prefix
  // page later unpinned and evicted is not a wasted prefetch.
  void PinPrefix(Page* page);
  // Returns a pinned prefix page to the referenced chain (normal
  // eviction rules apply again).
  void UnpinPrefix(Page* page);
  // Unpins every pinned prefix page for which `keep` returns false —
  // the reconcile step after popularity shifts shrink a video's quota.
  template <typename Keep>
  void ReconcilePinned(Keep&& keep) {
    Page* page = chains_[kPinnedChain].head();
    while (page != nullptr) {
      Page* next = page->lru_next;
      if (!keep(page->key)) UnpinPrefix(page);
      page = next;
    }
  }

  sim::WaitList& Ready(Page* page) { return page->ready; }
  // Notified whenever a page may have become evictable.
  sim::WaitList& free_pages() { return free_waiters_; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  // Perfetto track pool events render on (set by the owning node).
  void SetTraceTrack(std::int32_t pid) { trace_pid_ = pid; }

  std::int64_t num_pages() const {
    return static_cast<std::int64_t>(pages_.size());
  }
  std::int64_t pages_in_use() const {
    return num_pages() - static_cast<std::int64_t>(free_.size());
  }
  std::size_t chain_size(int chain) const { return chains_[chain].size(); }
  std::int64_t pinned_pages() const {
    return static_cast<std::int64_t>(chains_[kPinnedChain].size());
  }
  ReplacementPolicy policy() const { return policy_; }

  // Chain indices.
  static constexpr int kReferencedChain = 0;
  static constexpr int kPrefetchedChain = 1;
  static constexpr int kPinnedChain = 2;

 private:
  // Pops the first evictable page from `chain` (head = LRU end);
  // nullptr if none.
  Page* EvictFrom(int chain);
  void RemoveFromChain(Page* page);
  void AppendToChain(Page* page, int chain);

  sim::Environment* env_;
  ReplacementPolicy policy_;
  // deque: stable addresses without per-page heap indirection (Page is
  // pinned in place by its intrusive links and embedded WaitList).
  std::deque<Page> pages_;
  std::vector<Page*> free_;
  std::unordered_map<PageKey, Page*, PageKeyHash> table_;
  // Intrusive chains: head = LRU (eviction) end, tail = MRU.
  IntrusiveChain<Page> chains_[3];
  sim::WaitList free_waiters_;
  Stats stats_;
  std::int32_t trace_pid_ = 0;
};

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_BUFFER_POOL_H_
