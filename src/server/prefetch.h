// Prefetching engines (paper §5.2.3).
//
// One Prefetcher serves one disk. Real references enqueue a task for the
// next stripe block on the same disk; a fixed set of prefetch worker
// processes drain the queue — the worker count is the prefetching
// "aggressiveness", bounding how many prefetch reads can sit in the disk
// queue at once.
//
// Policies:
//  * kFifo     — the basic SPIFFI mechanism: a FIFO queue; issued
//                prefetch requests carry no deadline (lowest priority
//                under real-time scheduling, indistinguishable from real
//                work under elevator).
//  * kRealTime — tasks carry the estimated deadline of the anticipated
//                true request and are issued most-urgent-first; the disk
//                request inherits the deadline so an urgent prefetch can
//                overtake a non-urgent true request.
//  * kDelayed  — real-time prefetching, but a task may not be issued
//                earlier than max_advance before its estimated deadline
//                (Fig 7), bounding the memory a prefetched page occupies
//                before it is consumed.

#ifndef SPIFFI_SERVER_PREFETCH_H_
#define SPIFFI_SERVER_PREFETCH_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "hw/cpu.h"
#include "hw/disk.h"
#include "server/buffer_pool.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/wait_list.h"

namespace spiffi::server {

enum class PrefetchPolicy { kNone, kFifo, kRealTime, kDelayed };

// How aggressively prefetches are generated (§5.2.3: "the prefetching
// mechanism was configured to maximize the performance of the disk
// scheduling algorithm in use").
//  * kOnMiss      — limited: only a demand read that actually went to
//                   disk triggers a prefetch of the next block, keeping
//                   prefetch traffic from interfering with real requests
//                   (the paper's elevator/GSS/round-robin setting).
//  * kOnReference — aggressive: every real reference triggers a prefetch,
//                   so a sequential stream stays continuously covered
//                   (the paper's real-time scheduling setting, viable
//                   because urgent real requests can overtake prefetches).
enum class PrefetchTrigger { kOnMiss, kOnReference };

const char* PrefetchPolicyName(PrefetchPolicy policy);

struct PrefetchTask {
  PageKey key;
  std::int64_t disk_offset = 0;
  std::int64_t bytes = 0;
  sim::SimTime est_deadline = sim::kSimTimeMax;
  int terminal = -1;
};

class Prefetcher {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t issued = 0;       // disk reads actually started
    std::uint64_t already_cached = 0;  // dropped at issue time
    std::uint64_t dropped_disk_down = 0;  // disk failed after enqueue
  };

  Prefetcher(sim::Environment* env, PrefetchPolicy policy, int num_workers,
             double max_advance_sec, BufferPool* pool, hw::Cpu* cpu,
             hw::Disk* disk, const hw::CpuCosts& costs);

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // Queues a prefetch; duplicates of already-pending tasks are dropped.
  void Enqueue(const PrefetchTask& task);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }
  std::size_t queue_length() const { return queue_.size(); }
  PrefetchPolicy policy() const { return policy_; }

  // Perfetto track prefetch events render on — the owning node points it
  // at the serviced disk's track.
  void SetTraceTrack(std::int32_t pid, std::int32_t tid) {
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

 private:
  // One queued task plus its arrival sequence number. The queue is a
  // binary min-heap ordered by (est_deadline, seq) for the deadline
  // policies and by seq alone for kFifo; the seq tie-break keeps the heap
  // stable, so pop order is identical to the former first-minimum linear
  // scan while each pop costs O(log n) instead of O(n).
  struct QueuedTask {
    PrefetchTask task;
    std::uint64_t seq = 0;
  };

  sim::Process Worker();

  // Heap ordering predicate ("a fires after b").
  bool LaterTask(const QueuedTask& a, const QueuedTask& b) const;

  // Removes and returns the next task: FIFO order for kFifo, earliest
  // estimated deadline (stable on ties) otherwise. O(log n).
  PrefetchTask PopNext();
  // Earliest estimated deadline among queued tasks; only meaningful for
  // the deadline-ordered policies. O(1).
  sim::SimTime MinDeadline() const;

  sim::Environment* env_;
  PrefetchPolicy policy_;
  double max_advance_sec_;
  BufferPool* pool_;
  hw::Cpu* cpu_;
  hw::Disk* disk_;
  hw::CpuCosts costs_;

  std::vector<QueuedTask> queue_;  // heap (see QueuedTask)
  std::uint64_t next_seq_ = 0;
  std::unordered_set<PageKey, PageKeyHash> pending_;
  sim::WaitList arrivals_;
  Stats stats_;
  std::int32_t trace_pid_ = 0;
  std::int32_t trace_tid_ = 0;
};

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_PREFETCH_H_
