#include "server/node.h"

#include <algorithm>

#include "fault/state.h"
#include "obs/trace.h"
#include "server/server.h"
#include "sim/check.h"

namespace spiffi::server {

Node::Node(sim::Environment* env, const NodeConfig& config,
           hw::Network* network, const mpeg::VideoLibrary* library,
           const layout::Layout* layout, NodeDirectory* peers,
           const fault::FaultState* fault)
    : env_(env),
      config_(config),
      network_(network),
      library_(library),
      layout_(layout),
      peers_(peers),
      fault_(fault),
      cpu_(env, config.cpu_mips, "cpu-" + std::to_string(config.id)),
      pool_(env, config.pool_pages, config.replacement) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(network != nullptr);
  SPIFFI_CHECK(library != nullptr);
  SPIFFI_CHECK(layout != nullptr);
  const std::int32_t pid = obs::Tracer::kNodePidBase + config.id;
  pool_.SetTraceTrack(pid);
  disks_.reserve(config.disks_per_node);
  prefetchers_.reserve(config.disks_per_node);
  for (int d = 0; d < config.disks_per_node; ++d) {
    int global = config.id * config.disks_per_node + d;
    disks_.push_back(std::make_unique<hw::Disk>(
        env, config.disk, MakeDiskScheduler(config.sched), global, this));
    disks_.back()->SetTraceTrack(pid, obs::Tracer::kDiskTidBase + d);
    prefetchers_.push_back(std::make_unique<Prefetcher>(
        env, config.prefetch, config.prefetch_workers,
        config.max_advance_prefetch_sec, &pool_, &cpu_, disks_[d].get(),
        config.costs));
    prefetchers_.back()->SetTraceTrack(pid, obs::Tracer::kDiskTidBase + d);
  }
  if (config.prefix_cache_fraction > 0.0) {
    prefix_budget_pages_ = static_cast<std::int64_t>(
        static_cast<double>(config.pool_pages) *
        config.prefix_cache_fraction);
    // Pinned pages are exempt from eviction; leave Allocate at least
    // half the pool no matter what the caller asked for.
    prefix_budget_pages_ =
        std::min(prefix_budget_pages_, config.pool_pages / 2);
    video_refs_.assign(library->count(), 0);
    prefix_quota_.assign(library->count(), 0);
    if (prefix_budget_pages_ > 0) env->Spawn(PrefixManager());
  }
}

sim::Process Node::PrefixManager() {
  for (;;) {
    co_await env_->Hold(config_.prefix_recompute_sec);
    RecomputePrefixQuotas();
  }
}

void Node::MaybePinPrefix(BufferPool::Page* page) {
  if (prefix_budget_pages_ <= 0 || page->pinned_prefix || !page->valid) {
    return;
  }
  if (page->key.block >= prefix_quota_[page->key.video]) return;
  if (pool_.pinned_pages() >= prefix_budget_pages_) return;
  pool_.PinPrefix(page);
}

void Node::RecomputePrefixQuotas() {
  if (prefix_budget_pages_ <= 0) return;
  std::uint64_t total = 0;
  for (std::uint64_t refs : video_refs_) total += refs;
  if (total == 0) return;  // no demand measured yet; keep current quotas

  // Popularity-proportional prefix sizing (arXiv:1003.4049): each video
  // earns a prefix share of the budget equal to its measured share of
  // demand. Quotas are global block indexes; striping spreads a global
  // prefix range evenly across nodes, so a budget of B local pages
  // supports roughly B * num_nodes global prefix blocks. The pin-time
  // budget check in MaybePinPrefix bounds the error for other layouts.
  const int videos = library_->count();
  const double budget_blocks = static_cast<double>(prefix_budget_pages_) *
                               std::max(config_.num_nodes, 1);
  for (int v = 0; v < videos; ++v) {
    double share =
        static_cast<double>(video_refs_[v]) / static_cast<double>(total);
    prefix_quota_[v] =
        std::min(static_cast<std::int64_t>(share * budget_blocks),
                 library_->NumBlocks(v, config_.block_bytes));
  }

  // Shrunk quotas release their pages back to normal eviction...
  pool_.ReconcilePinned([this](const PageKey& key) {
    return key.block < prefix_quota_[key.video];
  });

  // ...and grown quotas warm their missing local blocks through the
  // regular prefetch path, most popular video first, while pin budget
  // remains. Deadlines are lazy: resident by about the next recompute.
  std::vector<int> order(videos);
  for (int v = 0; v < videos; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [this](int a, int b) {
    if (video_refs_[a] != video_refs_[b]) {
      return video_refs_[a] > video_refs_[b];
    }
    return a < b;
  });
  std::int64_t room = prefix_budget_pages_ - pool_.pinned_pages();
  for (int v : order) {
    if (room <= 0) break;
    for (std::int64_t b = 0; b < prefix_quota_[v] && room > 0; ++b) {
      layout::BlockLocation loc = LocalReplica(v, b);
      if (loc.node != config_.id) continue;
      if (pool_.Lookup(PageKey{v, b}) != nullptr) continue;
      if (fault_ != nullptr && !fault_->LocationUp(loc)) continue;
      PrefetchTask task;
      task.key = PageKey{v, b};
      task.disk_offset = loc.offset;
      task.bytes = BlockBytes(v, b);
      task.terminal = -1;
      task.est_deadline = env_->now() + config_.prefix_recompute_sec;
      prefetchers_[loc.disk_local]->Enqueue(task);
      --room;
    }
  }
}

std::int64_t Node::BlockBytes(int video, std::int64_t block) const {
  std::int64_t total = library_->video(video).total_bytes();
  std::int64_t start = block * config_.block_bytes;
  SPIFFI_DCHECK(start < total);
  return std::min(config_.block_bytes, total - start);
}

void Node::OnMessage(const Message& message) {
  SPIFFI_DCHECK(message.kind == Message::Kind::kReadRequest);
  env_->Spawn(HandleRead(message));
}

void Node::OnDiskComplete(hw::DiskRequest* request) {
  auto* page = static_cast<BufferPool::Page*>(request->context);
  SPIFFI_DCHECK(page != nullptr);
  pool_.Complete(page);
  // Freshly landed in-quota prefix blocks (demand or prefetch, which
  // includes the warming reads) pin immediately.
  MaybePinPrefix(page);
}

layout::BlockLocation Node::LocalReplica(int video,
                                         std::int64_t block) const {
  layout::BlockLocation loc = layout_->Locate(video, block);
  if (loc.node == config_.id || fault_ == nullptr) return loc;
  for (const layout::BlockLocation& copy :
       layout_->Replicas(video, block)) {
    if (copy.node == config_.id) return copy;
  }
  return loc;
}

bool Node::FindLiveReplica(int video, std::int64_t block,
                           layout::BlockLocation* out) const {
  SPIFFI_DCHECK(fault_ != nullptr);
  for (const layout::BlockLocation& copy :
       layout_->Replicas(video, block)) {
    if (copy.node != config_.id && fault_->LocationUp(copy)) {
      *out = copy;
      return true;
    }
  }
  return false;
}

void Node::TriggerPrefetch(int video, std::int64_t block,
                           sim::SimTime reference_deadline, int terminal) {
  if (config_.prefetch == PrefetchPolicy::kNone) return;
  std::int64_t next = layout_->NextBlockOnSameDisk(video, block);
  if (next < 0) return;
  PageKey key{video, next};
  if (pool_.Lookup(key) != nullptr) return;  // already cached / in flight

  // Chained declustering keeps replica chains disk-aligned, so the copy
  // of `next` this node holds is on the same local disk as the copy of
  // `block` just referenced — the same-disk prefetch rule survives
  // re-routing unchanged.
  layout::BlockLocation loc = LocalReplica(video, next);
  SPIFFI_DCHECK(loc.node == config_.id);
  if (fault_ != nullptr && !fault_->LocationUp(loc)) {
    ++fault_stats_.prefetches_skipped_dead;
    obs::TraceInstant(env_, obs::TraceCategory::kPrefetch,
                      "prefetch_skip_dead_disk",
                      obs::Tracer::kNodePidBase + config_.id,
                      obs::Tracer::kDiskTidBase + loc.disk_local,
                      {{"block", static_cast<double>(next)}});
    return;
  }

  PrefetchTask task;
  task.key = key;
  task.disk_offset = loc.offset;
  task.bytes = BlockBytes(video, next);
  task.terminal = terminal;
  // Estimate the deadline the anticipated true request will carry: the
  // reference's deadline shifted by the playback time between the blocks.
  if (reference_deadline < sim::kSimTimeMax) {
    double gap =
        library_->BlockPlaybackTime(video, next, config_.block_bytes) -
        library_->BlockPlaybackTime(video, block, config_.block_bytes);
    task.est_deadline = reference_deadline + gap;
  }
  prefetchers_[loc.disk_local]->Enqueue(task);
}

sim::Process Node::HandleRead(Message message) {
  const std::int32_t trace_pid = obs::Tracer::kNodePidBase + config_.id;
  const sim::SimTime hop_arrival = env_->now();
  ReadTiming timing;
  // A re-routed request keeps the receive time of its first hop, so
  // ServerSeconds() covers the whole degraded journey; the residence
  // time of earlier hops arrives pre-charged in fault_wait_sec.
  timing.node_received =
      message.hops > 0 ? message.timing.node_received : hop_arrival;
  timing.fault_wait_sec = message.timing.fault_wait_sec;
  std::uint64_t span = obs::TraceAsyncBegin(
      env_, obs::TraceCategory::kServer, "server_read", trace_pid,
      {{"terminal", static_cast<double>(message.terminal)},
       {"block", static_cast<double>(message.block)},
       {"hops", static_cast<double>(message.hops)}});

  co_await cpu_.Execute(config_.costs.receive_message_instructions);

  PageKey key{message.video, message.block};
  if (prefix_budget_pages_ > 0) {
    // Demand popularity for prefix sizing: every locally served
    // reference counts toward its video.
    ++video_refs_[message.video];
  }

  if (config_.prefetch_trigger == PrefetchTrigger::kOnReference) {
    // Aggressive: every real reference drives the prefetcher.
    TriggerPrefetch(message.video, message.block, message.deadline,
                    message.terminal);
  }

  BufferPool::Page* page = nullptr;
  for (;;) {
    page = pool_.Lookup(key);
    if (page != nullptr) {
      pool_.RecordReference(page, message.terminal);
      pool_.Pin(page);
      if (page->io_in_flight) {
        timing.path = ReadTiming::Path::kAttach;
        // Attach to the outstanding read; make sure it is scheduled at
        // least as urgently as this reference requires. The read may not
        // have reached the disk yet (its issuer is still queued on the
        // CPU) — urgent_deadline covers that window.
        if (message.deadline < page->urgent_deadline) {
          page->urgent_deadline = message.deadline;
        }
        if (page->inflight_request != nullptr &&
            message.deadline < page->inflight_request->deadline) {
          page->inflight_request->deadline = message.deadline;
        }
        (void)co_await pool_.Ready(page).Wait();
      }
      if (timing.path == ReadTiming::Path::kUnknown) {
        timing.path = ReadTiming::Path::kHit;
      }
      pool_.Touch(page, message.terminal);
      MaybePinPrefix(page);
      break;
    }

    // Miss: the read must touch a disk. If our copy of the block is
    // down, re-route to a surviving replica (within the hop budget) or
    // park until a repair, re-checking sooner as the deadline nears.
    if (fault_ != nullptr) {
      layout::BlockLocation local =
          LocalReplica(message.video, message.block);
      if (!fault_->LocationUp(local)) {
        sim::SimTime wait_start = env_->now();
        bool waited = false;
        for (;;) {
          layout::BlockLocation alt;
          if (message.hops < config_.fault_hop_budget &&
              peers_ != nullptr &&
              FindLiveReplica(message.video, message.block, &alt)) {
            ++fault_stats_.rerouted_requests;
            if (waited) ++fault_stats_.degraded_waits;
            Message forward = message;
            ++forward.hops;
            // Charge this hop's whole residence (receive CPU + parked
            // time) to the fault stage.
            forward.timing.node_received = timing.node_received;
            forward.timing.fault_wait_sec =
                message.timing.fault_wait_sec + (env_->now() - hop_arrival);
            obs::TraceAsyncEnd(
                env_, obs::TraceCategory::kServer, "server_read",
                trace_pid, span,
                {{"rerouted_to", static_cast<double>(alt.node)}});
            obs::TraceInstant(env_, obs::TraceCategory::kFault, "reroute",
                              obs::Tracer::kFaultPid, local.disk_global,
                              {{"disk", static_cast<double>(
                                            local.disk_global)},
                               {"to_node", static_cast<double>(alt.node)},
                               {"block", static_cast<double>(
                                             message.block)}});
            PostMessage(env_, network_, kControlMessageBytes,
                        peers_->node_sink(alt.node), forward);
            co_return;
          }
          waited = true;
          double delay = config_.fault_recheck_sec;
          double until_deadline = message.deadline - env_->now();
          if (until_deadline > 0.0 && until_deadline < delay) {
            delay = std::max(until_deadline, delay * 0.125);
          }
          co_await env_->Hold(delay);
          if (fault_->LocationUp(local)) break;
        }
        ++fault_stats_.degraded_waits;
        timing.fault_wait_sec += env_->now() - wait_start;
        continue;  // re-run the lookup: the block may have landed meanwhile
      }
    }

    page = pool_.Allocate(key, /*for_prefetch=*/false);
    if (page == nullptr) {
      (void)co_await pool_.free_pages().Wait();
      continue;  // re-check Lookup: someone may have started this block
    }
    pool_.RecordMiss();

    if (config_.prefetch_trigger == PrefetchTrigger::kOnMiss) {
      // Limited: only demand reads that reach the disk spawn prefetches.
      TriggerPrefetch(message.video, message.block, message.deadline,
                      message.terminal);
    }

    layout::BlockLocation loc = LocalReplica(message.video, message.block);
    SPIFFI_DCHECK(loc.node == config_.id);

    co_await cpu_.Execute(config_.costs.start_io_instructions);

    hw::DiskRequest request;
    request.video = message.video;
    request.block = message.block;
    request.disk_offset = loc.offset;
    request.bytes = BlockBytes(message.video, message.block);
    request.deadline = std::min(message.deadline, page->urgent_deadline);
    request.terminal = message.terminal;
    request.context = page;
    page->inflight_request = &request;
    disks_[loc.disk_local]->Submit(&request);

    (void)co_await pool_.Ready(page).Wait();
    timing.path = ReadTiming::Path::kMiss;
    timing.disk_queue_sec = request.queue_wait_sec;
    timing.disk_service_sec = request.service_sec;
    pool_.Touch(page, message.terminal);
    break;
  }

  // Reply with the block payload.
  co_await cpu_.Execute(config_.costs.send_message_instructions);
  Message reply;
  reply.kind = Message::Kind::kReadReply;
  reply.terminal = message.terminal;
  reply.video = message.video;
  reply.block = message.block;
  reply.bytes = BlockBytes(message.video, message.block);
  reply.cookie = message.cookie;
  reply.hops = message.hops;
  timing.reply_sent = env_->now();
  reply.timing = timing;
  obs::TraceAsyncEnd(env_, obs::TraceCategory::kServer, "server_read",
                     trace_pid, span,
                     {{"path", static_cast<double>(
                                   static_cast<int>(timing.path))},
                      {"disk_queue_ms", timing.disk_queue_sec * 1e3},
                      {"disk_service_ms", timing.disk_service_sec * 1e3}});
  PostMessage(env_, network_, reply.bytes, message.reply_to, reply);
  pool_.Unpin(page);
}

void Node::ResetStats(sim::SimTime now) {
  cpu_.ResetStats(now);
  pool_.ResetStats();
  for (auto& disk : disks_) disk->ResetStats(now);
  for (auto& prefetcher : prefetchers_) prefetcher->ResetStats();
  fault_stats_ = FaultStats{};
}

}  // namespace spiffi::server
