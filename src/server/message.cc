#include "server/message.h"

#include "sim/check.h"

namespace spiffi::server {

namespace {

// One in-flight network delivery; owned by the network until it fires.
class Delivery final : public sim::EventHandler {
 public:
  Delivery(MessageSink* sink, const Message& message)
      : sink_(sink), message_(message) {}

  void OnEvent(std::uint64_t) override { sink_->OnMessage(message_); }

 private:
  MessageSink* sink_;
  Message message_;
};

}  // namespace

void PostMessage(sim::Environment* env, hw::Network* network,
                 std::int64_t wire_bytes, MessageSink* sink,
                 const Message& message) {
  SPIFFI_DCHECK(sink != nullptr);
  (void)env;
  network->SendOwned(wire_bytes,
                     std::make_unique<Delivery>(sink, message));
}

}  // namespace spiffi::server
