#include "server/message.h"

#include <cstring>
#include <type_traits>

#include "obs/trace.h"
#include "sim/check.h"
#include "sim/shard.h"

namespace spiffi::server {

namespace {

// One in-flight network delivery. Lives in the environment's one-shot
// arena (not the heap): PostMessage pops a slot, the wire-delay event
// fires OnEvent, and the slot is returned to the arena before the sink
// runs — so a steady message flow reuses the same few slots with zero
// allocation. Trivially destructible by design: deliveries still on the
// wire at teardown are reclaimed wholesale with the arena.
class Delivery final : public sim::EventHandler {
 public:
  Delivery(sim::Environment* env, MessageSink* sink, const Message& message,
           std::uint64_t trace_id)
      : env_(env), sink_(sink), message_(message), trace_id_(trace_id) {}

  void OnEvent(std::uint64_t) override {
    sim::Environment* env = env_;
    MessageSink* sink = sink_;
    Message message = message_;
    std::uint64_t trace_id = trace_id_;
    // Release the slot first: the sink may post further messages, and
    // they should find this slot already free.
    env->DeleteOneShot(this);
    obs::TraceAsyncEnd(env, obs::TraceCategory::kNetwork, "wire",
                       obs::Tracer::kNetworkPid, trace_id);
    sink->OnMessage(message);
  }

 private:
  sim::Environment* env_;
  MessageSink* sink_;
  Message message_;
  std::uint64_t trace_id_;
};

// Cross-shard wire format: the sink pointer plus the message by value.
// Everything a Message carries is trivially copyable (MessageSink* for
// reply_to included), so a byte copy through the shard mailbox is the
// same message the local path would have delivered.
struct RemoteMessage {
  MessageSink* sink;
  Message message;
};
static_assert(std::is_trivially_copyable_v<RemoteMessage>);
static_assert(sizeof(RemoteMessage) <= sim::kMaxRemotePayload);

void DeliverRemoteMessage(sim::Environment*, const void* payload) {
  RemoteMessage remote;
  std::memcpy(&remote, payload, sizeof(remote));
  remote.sink->OnMessage(remote.message);
}

}  // namespace

void PostMessage(sim::Environment* env, hw::Network* network,
                 std::int64_t wire_bytes, MessageSink* sink,
                 const Message& message) {
  SPIFFI_DCHECK(sink != nullptr);
  if (sim::ShardGroup* group = network->shard_group()) {
    const int dst = group->ShardOf(sink);
    if (dst != network->shard_index()) {
      // Cross-shard: charge the wire here (where the local path charges
      // it) and hand the message to the destination shard's mailbox.
      // Trace spans live in per-environment ring buffers and cannot
      // pair across shards, so the remote path records no wire span.
      network->AccountMessage(wire_bytes);
      RemoteMessage remote{sink, message};
      group->Send(network->shard_index(), dst,
                  env->now() + network->WireDelay(wire_bytes),
                  &DeliverRemoteMessage, &remote, sizeof(remote));
      return;
    }
  }
  std::uint64_t trace_id = obs::TraceAsyncBegin(
      env, obs::TraceCategory::kNetwork, "wire", obs::Tracer::kNetworkPid,
      {{"bytes", static_cast<double>(wire_bytes)},
       {"terminal", static_cast<double>(message.terminal)},
       {"reply", message.kind == Message::Kind::kReadReply ? 1.0 : 0.0}});
  network->Send(wire_bytes,
                env->NewOneShot<Delivery>(env, sink, message, trace_id), 0);
}

}  // namespace spiffi::server
