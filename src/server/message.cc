#include "server/message.h"

#include "obs/trace.h"
#include "sim/check.h"

namespace spiffi::server {

namespace {

// One in-flight network delivery; owned by the network until it fires.
class Delivery final : public sim::EventHandler {
 public:
  Delivery(sim::Environment* env, MessageSink* sink, const Message& message,
           std::uint64_t trace_id)
      : env_(env), sink_(sink), message_(message), trace_id_(trace_id) {}

  void OnEvent(std::uint64_t) override {
    obs::TraceAsyncEnd(env_, obs::TraceCategory::kNetwork, "wire",
                       obs::Tracer::kNetworkPid, trace_id_);
    sink_->OnMessage(message_);
  }

 private:
  sim::Environment* env_;
  MessageSink* sink_;
  Message message_;
  std::uint64_t trace_id_;
};

}  // namespace

void PostMessage(sim::Environment* env, hw::Network* network,
                 std::int64_t wire_bytes, MessageSink* sink,
                 const Message& message) {
  SPIFFI_DCHECK(sink != nullptr);
  std::uint64_t trace_id = obs::TraceAsyncBegin(
      env, obs::TraceCategory::kNetwork, "wire", obs::Tracer::kNetworkPid,
      {{"bytes", static_cast<double>(wire_bytes)},
       {"terminal", static_cast<double>(message.terminal)},
       {"reply", message.kind == Message::Kind::kReadReply ? 1.0 : 0.0}});
  network->SendOwned(wire_bytes,
                     std::make_unique<Delivery>(env, sink, message,
                                                trace_id));
}

}  // namespace spiffi::server
