// Messages exchanged between video terminals and server nodes.
//
// Requests and replies travel over hw::Network; a Message is delivered to
// the recipient's MessageSink after the wire delay. CPU costs for sends
// and receives are charged by server nodes (terminals use dedicated
// decompression/network hardware and charge nothing, per §5.1).

#ifndef SPIFFI_SERVER_MESSAGE_H_
#define SPIFFI_SERVER_MESSAGE_H_

#include <cstdint>

#include "hw/network.h"
#include "sim/time.h"

namespace spiffi::server {

class MessageSink;

// Per-request stage timings, filled in by the server node and carried on
// the reply. Terminals use the breakdown for deadline-slack accounting
// and glitch attribution (which stage consumed a late block's budget).
struct ReadTiming {
  enum class Path : std::uint8_t { kUnknown, kHit, kAttach, kMiss };

  sim::SimTime node_received = 0.0;  // reply: when the node saw the request
  sim::SimTime reply_sent = 0.0;     // reply: when the node posted the reply
  double disk_queue_sec = 0.0;       // miss only: wait for the disk head
  double disk_service_sec = 0.0;     // miss only: mechanical service time
  Path path = Path::kUnknown;

  // Time spent inside the server node, wire transit excluded.
  double ServerSeconds() const { return reply_sent - node_received; }
  // Node time that was neither disk queueing nor disk service: CPU
  // queueing/execution and buffer-pool stalls.
  double ServerOverheadSeconds() const {
    return ServerSeconds() - disk_queue_sec - disk_service_sec;
  }
};

struct Message {
  enum class Kind { kReadRequest, kReadReply };

  Kind kind = Kind::kReadRequest;
  int terminal = -1;      // requesting terminal id
  int video = -1;         // video id
  std::int64_t block = -1;  // read-block index within the video
  std::int64_t bytes = 0;   // payload size (the block size for replies)
  sim::SimTime deadline = sim::kSimTimeMax;  // when the data is needed
  MessageSink* reply_to = nullptr;           // where the reply should go
  // Opaque client token echoed in the reply. Terminals use it as a
  // stream epoch so replies belonging to an abandoned stream (after a
  // seek or visual search) can be discarded on arrival.
  std::uint64_t cookie = 0;
  // Stage timing breakdown (replies only).
  ReadTiming timing;
};

class MessageSink {
 public:
  virtual void OnMessage(const Message& message) = 0;

 protected:
  ~MessageSink() = default;
};

// Control-message size on the wire (a read request); replies add the
// video payload on top of this.
inline constexpr std::int64_t kControlMessageBytes = 64;

// Sends `message` to `sink` across `network`, modelling a wire message of
// `wire_bytes` bytes.
void PostMessage(sim::Environment* env, hw::Network* network,
                 std::int64_t wire_bytes, MessageSink* sink,
                 const Message& message);

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_MESSAGE_H_
