// Messages exchanged between video terminals and server nodes.
//
// Requests and replies travel over hw::Network; a Message is delivered to
// the recipient's MessageSink after the wire delay. CPU costs for sends
// and receives are charged by server nodes (terminals use dedicated
// decompression/network hardware and charge nothing, per §5.1).

#ifndef SPIFFI_SERVER_MESSAGE_H_
#define SPIFFI_SERVER_MESSAGE_H_

#include <cstdint>

#include "hw/network.h"
#include "sim/time.h"

namespace spiffi::server {

class MessageSink;

// Per-request stage timings, filled in by the server node and carried on
// the reply. Terminals use the breakdown for deadline-slack accounting
// and glitch attribution (which stage consumed a late block's budget).
struct ReadTiming {
  enum class Path : std::uint8_t { kUnknown, kHit, kAttach, kMiss };

  sim::SimTime node_received = 0.0;  // reply: when the node saw the request
  sim::SimTime reply_sent = 0.0;     // reply: when the node posted the reply
  double disk_queue_sec = 0.0;       // miss only: wait for the disk head
  double disk_service_sec = 0.0;     // miss only: mechanical service time
  // Degraded-mode delay: time the request spent parked on nodes whose
  // copy of the block was down, plus re-route forwarding hops.
  // Accumulated across hops; 0.0 on every healthy path.
  double fault_wait_sec = 0.0;
  Path path = Path::kUnknown;

  // Time spent inside the server node, wire transit excluded. For a
  // re-routed request this covers first receive to final reply (the
  // inter-node forwarding wire time is inside, charged to fault).
  double ServerSeconds() const { return reply_sent - node_received; }
  // Node time that was neither disk queueing, disk service, nor
  // degraded-mode waiting: CPU queueing/execution and buffer-pool
  // stalls.
  double ServerOverheadSeconds() const {
    return ServerSeconds() - disk_queue_sec - disk_service_sec -
           fault_wait_sec;
  }
};

struct Message {
  enum class Kind { kReadRequest, kReadReply };

  Kind kind = Kind::kReadRequest;
  int terminal = -1;      // requesting terminal id
  int video = -1;         // video id
  std::int64_t block = -1;  // read-block index within the video
  std::int64_t bytes = 0;   // payload size (the block size for replies)
  sim::SimTime deadline = sim::kSimTimeMax;  // when the data is needed
  MessageSink* reply_to = nullptr;           // where the reply should go
  // Opaque client token echoed in the reply. Terminals use it as a
  // stream epoch so replies belonging to an abandoned stream (after a
  // seek or visual search) can be discarded on arrival.
  std::uint64_t cookie = 0;
  // Degraded-mode re-route count: how many times this request was
  // forwarded to another node because the targeted copy was down.
  // Echoed on the reply; 0 on every healthy path.
  std::uint8_t hops = 0;
  // Stage timing breakdown (replies only; fault_wait_sec also
  // accumulates on re-routed requests in flight).
  ReadTiming timing;
};

class MessageSink {
 public:
  virtual void OnMessage(const Message& message) = 0;

 protected:
  ~MessageSink() = default;
};

// Control-message size on the wire (a read request); replies add the
// video payload on top of this.
inline constexpr std::int64_t kControlMessageBytes = 64;

// Sends `message` to `sink` across `network`, modelling a wire message of
// `wire_bytes` bytes.
void PostMessage(sim::Environment* env, hw::Network* network,
                 std::int64_t wire_bytes, MessageSink* sink,
                 const Message& message);

}  // namespace spiffi::server

#endif  // SPIFFI_SERVER_MESSAGE_H_
