#include "server/server.h"

#include "sim/check.h"

namespace spiffi::server {

VideoServer::VideoServer(sim::Environment* env, int num_nodes,
                         const NodeConfig& node_config,
                         hw::Network* network,
                         const mpeg::VideoLibrary* library,
                         const layout::Layout* layout,
                         const fault::FaultState* fault) {
  SPIFFI_CHECK(num_nodes > 0);
  nodes_.reserve(num_nodes);
  for (int id = 0; id < num_nodes; ++id) {
    NodeConfig config = node_config;
    config.id = id;
    nodes_.push_back(std::make_unique<Node>(env, config, network, library,
                                            layout, this, fault));
  }
}

void VideoServer::ResetStats(sim::SimTime now) {
  for (auto& node : nodes_) node->ResetStats(now);
}

}  // namespace spiffi::server
