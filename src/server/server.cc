#include "server/server.h"

#include "sim/check.h"

namespace spiffi::server {

VideoServer::VideoServer(sim::Environment* env, int num_nodes,
                         const NodeConfig& node_config,
                         hw::Network* network,
                         const mpeg::VideoLibrary* library,
                         const layout::Layout* layout,
                         const fault::FaultState* fault)
    : VideoServer(
          std::vector<sim::Environment*>(static_cast<std::size_t>(num_nodes),
                                         env),
          std::vector<hw::Network*>(static_cast<std::size_t>(num_nodes),
                                    network),
          node_config, library, layout, fault) {}

VideoServer::VideoServer(const std::vector<sim::Environment*>& node_envs,
                         const std::vector<hw::Network*>& node_networks,
                         const NodeConfig& node_config,
                         const mpeg::VideoLibrary* library,
                         const layout::Layout* layout,
                         const fault::FaultState* fault) {
  SPIFFI_CHECK(!node_envs.empty());
  SPIFFI_CHECK(node_envs.size() == node_networks.size());
  const int num_nodes = static_cast<int>(node_envs.size());
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int id = 0; id < num_nodes; ++id) {
    NodeConfig config = node_config;
    config.id = id;
    nodes_.push_back(std::make_unique<Node>(node_envs[id], config,
                                            node_networks[id], library,
                                            layout, this, fault));
  }
}

void VideoServer::ResetStats(sim::SimTime now) {
  for (auto& node : nodes_) node->ResetStats(now);
}

}  // namespace spiffi::server
