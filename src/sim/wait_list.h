// Condition-variable-like wait list for coroutine processes.
//
//   bool notified = co_await list.Wait();                 // wait forever
//   bool notified = co_await list.WaitUntil(deadline);    // with timeout
//
// Wait() resumes when NotifyOne/NotifyAll is called (await returns true).
// WaitUntil additionally resumes at `deadline` if no notification arrived
// (await returns false). Waiters are notified FIFO, and all resumptions go
// through the calendar for determinism.

#ifndef SPIFFI_SIM_WAIT_LIST_H_
#define SPIFFI_SIM_WAIT_LIST_H_

#include <algorithm>
#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/calendar.h"
#include "sim/check.h"
#include "sim/environment.h"

namespace spiffi::sim {

class WaitList {
 public:
  explicit WaitList(Environment* env) : env_(env) {
    SPIFFI_CHECK(env != nullptr);
  }

  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  class Awaiter final : public EventHandler {
   public:
    Awaiter(WaitList* list, SimTime deadline, bool has_deadline)
        : list_(list), deadline_(deadline), has_deadline_(has_deadline) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      handle_ = handle;
      list_->waiters_.push_back(this);
      if (has_deadline_) {
        timer_ = list_->env_->Schedule(deadline_, this, kTimeoutToken);
      }
    }
    // True if notified, false if the deadline expired first.
    bool await_resume() const noexcept { return notified_; }

    void OnEvent(std::uint64_t token) override {
      if (token == kTimeoutToken) {
        // Timed out: leave the wait list so a later notify skips us.
        list_->Remove(this);
        notified_ = false;
      }
      // (On the notify path we were already removed and the timer
      // cancelled by Notify.)
      handle_.resume();
    }

   private:
    friend class WaitList;
    static constexpr std::uint64_t kTimeoutToken = 1;

    WaitList* list_;
    SimTime deadline_;
    bool has_deadline_;
    bool notified_ = false;
    EventId timer_ = 0;
    std::coroutine_handle<> handle_;
  };

  Awaiter Wait() { return Awaiter(this, 0.0, false); }
  Awaiter WaitUntil(SimTime deadline) { return Awaiter(this, deadline, true); }

  // Wakes the oldest waiter (no-op when empty).
  void NotifyOne() {
    if (waiters_.empty()) return;
    Dispatch(waiters_.front());
    waiters_.pop_front();
  }

  // Wakes every waiter currently in the list.
  void NotifyAll() {
    // Waiters added by resumed coroutines belong to the next round; swap
    // the list out first.
    std::deque<Awaiter*> current;
    current.swap(waiters_);
    for (Awaiter* waiter : current) Dispatch(waiter);
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  void Dispatch(Awaiter* waiter) {
    waiter->notified_ = true;
    if (waiter->has_deadline_) env_->Cancel(waiter->timer_);
    env_->Schedule(env_->now(), waiter, 0);
  }

  void Remove(Awaiter* waiter) {
    auto it = std::find(waiters_.begin(), waiters_.end(), waiter);
    if (it != waiters_.end()) waiters_.erase(it);
  }

  Environment* env_;
  std::deque<Awaiter*> waiters_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_WAIT_LIST_H_
