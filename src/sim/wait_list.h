// Condition-variable-like wait list for coroutine processes.
//
//   bool notified = co_await list.Wait();                 // wait forever
//   bool notified = co_await list.WaitUntil(deadline);    // with timeout
//
// Wait() resumes when NotifyOne/NotifyAll is called (await returns true).
// WaitUntil additionally resumes at `deadline` if no notification arrived
// (await returns false). Waiters are notified FIFO, and all resumptions go
// through the calendar for determinism.
//
// The wait queue is intrusive: each Awaiter lives in its coroutine frame
// (which stays alive while suspended) and links itself into a doubly
// linked list, so waiting, notifying, and timing out never touch the
// heap.

#ifndef SPIFFI_SIM_WAIT_LIST_H_
#define SPIFFI_SIM_WAIT_LIST_H_

#include <coroutine>
#include <cstdint>

#include "sim/calendar.h"
#include "sim/check.h"
#include "sim/environment.h"

namespace spiffi::sim {

class WaitList {
 public:
  explicit WaitList(Environment* env) : env_(env) {
    SPIFFI_CHECK(env != nullptr);
  }

  WaitList(const WaitList&) = delete;
  WaitList& operator=(const WaitList&) = delete;

  class Awaiter final : public EventHandler {
   public:
    Awaiter(WaitList* list, SimTime deadline, bool has_deadline)
        : list_(list), deadline_(deadline), has_deadline_(has_deadline) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle) {
      handle_ = handle;
      list_->PushBack(this);
      if (has_deadline_) {
        timer_ = list_->env_->Schedule(deadline_, this, kTimeoutToken);
      }
    }
    // True if notified, false if the deadline expired first.
    bool await_resume() const noexcept { return notified_; }

    void OnEvent(std::uint64_t token) override {
      if (token == kTimeoutToken) {
        // Timed out: leave the wait list so a later notify skips us.
        list_->Unlink(this);
        notified_ = false;
      }
      // (On the notify path we were already removed and the timer
      // cancelled by Notify.)
      handle_.resume();
    }

   private:
    friend class WaitList;
    static constexpr std::uint64_t kTimeoutToken = 1;

    WaitList* list_;
    SimTime deadline_;
    bool has_deadline_;
    bool notified_ = false;
    EventId timer_ = 0;
    std::coroutine_handle<> handle_;
    // Intrusive FIFO links (managed by the owning WaitList).
    Awaiter* prev_ = nullptr;
    Awaiter* next_ = nullptr;
    bool linked_ = false;
  };

  Awaiter Wait() { return Awaiter(this, 0.0, false); }
  Awaiter WaitUntil(SimTime deadline) { return Awaiter(this, deadline, true); }

  // Wakes the oldest waiter (no-op when empty).
  void NotifyOne() {
    Awaiter* waiter = head_;
    if (waiter == nullptr) return;
    Unlink(waiter);
    Dispatch(waiter);
  }

  // Wakes every waiter currently in the list.
  void NotifyAll() {
    // Waiters added by resumed coroutines belong to the next round;
    // detach the whole chain first.
    Awaiter* waiter = head_;
    head_ = tail_ = nullptr;
    count_ = 0;
    while (waiter != nullptr) {
      Awaiter* next = waiter->next_;
      waiter->prev_ = waiter->next_ = nullptr;
      waiter->linked_ = false;
      Dispatch(waiter);
      waiter = next;
    }
  }

  std::size_t waiter_count() const { return count_; }

 private:
  void Dispatch(Awaiter* waiter) {
    waiter->notified_ = true;
    if (waiter->has_deadline_) env_->Cancel(waiter->timer_);
    env_->Schedule(env_->now(), waiter, 0);
  }

  void PushBack(Awaiter* waiter) {
    waiter->prev_ = tail_;
    waiter->next_ = nullptr;
    waiter->linked_ = true;
    if (tail_ != nullptr) {
      tail_->next_ = waiter;
    } else {
      head_ = waiter;
    }
    tail_ = waiter;
    ++count_;
  }

  void Unlink(Awaiter* waiter) {
    if (!waiter->linked_) return;
    if (waiter->prev_ != nullptr) {
      waiter->prev_->next_ = waiter->next_;
    } else {
      head_ = waiter->next_;
    }
    if (waiter->next_ != nullptr) {
      waiter->next_->prev_ = waiter->prev_;
    } else {
      tail_ = waiter->prev_;
    }
    waiter->prev_ = waiter->next_ = nullptr;
    waiter->linked_ = false;
    --count_;
  }

  Environment* env_;
  Awaiter* head_ = nullptr;
  Awaiter* tail_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_WAIT_LIST_H_
