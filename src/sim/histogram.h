// Fixed-bucket logarithmic histogram for latency-style observations.
//
// Buckets are powers of 2^(1/4) (about 19% wide), spanning ~1 us to ~1 h
// for time-valued inputs; out-of-range values clamp to the end buckets.
// Supports approximate percentile queries, which the Tally's
// mean/variance cannot provide.

#ifndef SPIFFI_SIM_HISTOGRAM_H_
#define SPIFFI_SIM_HISTOGRAM_H_

#include <array>
#include <cstdint>

namespace spiffi::sim {

class Histogram {
 public:
  static constexpr int kBuckets = 128;

  void Add(double value);
  // Accumulates another histogram into this one.
  void Merge(const Histogram& other);
  void Reset() { *this = Histogram(); }

  std::uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  // Approximate value at quantile q in [0, 1] (bucket upper bound);
  // exact for min/max within bucket resolution (~19%).
  double Percentile(double q) const;

  std::uint64_t bucket(int index) const { return buckets_[index]; }

  // Upper bound of bucket `index`.
  static double BucketBound(int index);

 private:
  static int BucketFor(double value);

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_HISTOGRAM_H_
