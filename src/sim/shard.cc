#include "sim/shard.h"

#include <algorithm>
#include <cstring>

#include "sim/check.h"

namespace spiffi::sim {

namespace {

// Calendar event that delivers one staged cross-shard record. Lives in
// the destination environment's one-shot arena; the payload is copied
// to the stack and the slot released before the deliver function runs,
// mirroring server::Delivery, so the function may schedule freely.
struct RemoteDelivery final : EventHandler {
  Environment* env;
  RemoteDeliverFn fn;
  unsigned char payload[kMaxRemotePayload];

  void OnEvent(std::uint64_t) override {
    Environment* e = env;
    RemoteDeliverFn f = fn;
    alignas(std::max_align_t) unsigned char copy[kMaxRemotePayload];
    std::memcpy(copy, payload, sizeof(copy));
    e->DeleteOneShot(this);
    f(e, copy);
  }
};
static_assert(sizeof(RemoteDelivery) <= Environment::kOneShotSlotBytes);
static_assert(std::is_trivially_destructible_v<RemoteDelivery>);

}  // namespace

ShardGroup::ShardGroup(std::vector<Environment*> envs, double lookahead)
    : envs_(std::move(envs)), lookahead_(lookahead) {
  SPIFFI_CHECK(!envs_.empty());
  SPIFFI_CHECK(lookahead_ > 0.0);
  const int n = shards();
  state_.reserve(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    SPIFFI_CHECK(envs_[s] != nullptr);
    state_.push_back(std::make_unique<ShardState>());
  }
  mail_.resize(static_cast<std::size_t>(n) * n);
  for (auto& box : mail_) box = std::make_unique<Mailbox>();
  workers_.reserve(static_cast<std::size_t>(n > 0 ? n - 1 : 0));
  for (int s = 1; s < n; ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
}

ShardGroup::~ShardGroup() {
  {
    std::lock_guard<std::mutex> lock(cmd_mu_);
    shutdown_ = true;
  }
  cmd_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ShardGroup::RegisterEndpoint(const void* endpoint, int shard) {
  SPIFFI_CHECK(endpoint != nullptr);
  SPIFFI_CHECK(shard >= 0 && shard < shards());
  endpoints_[endpoint] = shard;
}

int ShardGroup::ShardOf(const void* endpoint) const {
  auto it = endpoints_.find(endpoint);
  SPIFFI_CHECK(it != endpoints_.end());  // unregistered cross-shard target
  return it->second;
}

void ShardGroup::Send(int src, int dst, SimTime deliver_time,
                      RemoteDeliverFn fn, const void* payload,
                      std::size_t payload_bytes) {
  SPIFFI_DCHECK(src != dst);
  SPIFFI_CHECK(payload_bytes <= kMaxRemotePayload);
  // Conservative sync is only sound if every remote delivery lands at
  // least `lookahead` past the sender's announced clock; the sender's
  // clock never exceeds its current event time, so this suffices.
  SPIFFI_DCHECK(deliver_time >= envs_[src]->now() + lookahead_);
  Mailbox& box = *mail_[static_cast<std::size_t>(src) * shards() + dst];
  Record r;
  r.time = deliver_time;
  r.src = src;
  r.size = static_cast<std::uint32_t>(payload_bytes);
  r.fn = fn;
  std::memcpy(r.payload, payload, payload_bytes);
  {
    std::lock_guard<std::mutex> lock(box.mu);
    r.seq = box.next_seq++;
    box.queue.push_back(r);
  }
}

void ShardGroup::DrainInboxes(int shard) {
  ShardState& st = *state_[shard];
  const int n = shards();
  for (int src = 0; src < n; ++src) {
    if (src == shard) continue;
    Mailbox& box = *mail_[static_cast<std::size_t>(src) * n + shard];
    {
      std::lock_guard<std::mutex> lock(box.mu);
      if (box.queue.empty()) continue;
      box.queue.swap(st.scratch);
    }
    for (const Record& r : st.scratch) st.staging.push(r);
    st.scratch.clear();
  }
}

void ShardGroup::ScheduleRecord(Environment* env, const Record& record) {
  auto* delivery = env->NewOneShot<RemoteDelivery>();
  delivery->env = env;
  delivery->fn = record.fn;
  std::memcpy(delivery->payload, record.payload, sizeof(delivery->payload));
  env->Schedule(record.time, delivery);
}

void ShardGroup::RunShard(int shard, SimTime end) {
  Environment* env = envs_[shard];
  ShardState& st = *state_[shard];
  const int n = shards();
  for (;;) {
    // Snapshot the other shards' clocks BEFORE draining: the release
    // store on a clock orders after that shard's sends, so any message
    // it sent before reaching the observed clock is visible below, and
    // anything it sends later arrives at >= clock + lookahead = safe.
    SimTime others = kSimTimeMax;
    for (int i = 0; i < n; ++i) {
      if (i == shard) continue;
      others = std::min(others,
                        state_[i]->clock.load(std::memory_order_acquire));
    }
    const SimTime safe =
        others >= kSimTimeMax ? kSimTimeMax : others + lookahead_;
    DrainInboxes(shard);

    // Fire everything provably safe, interleaving local events with
    // staged arrivals in timestamp order. A staged record is moved onto
    // the calendar exactly when it precedes the next local event — a
    // deterministic point, so its position among same-time events does
    // not depend on when it happened to arrive.
    bool progressed = false;
    for (;;) {
      const SimTime tstage =
          st.staging.empty() ? kSimTimeMax : st.staging.top().time;
      const SimTime tcal = env->PeekNextTime();
      if (tcal < std::min(safe, tstage) && tcal <= end) {
        env->RunBounded(std::min(safe, tstage), end);
        progressed = true;
        continue;
      }
      if (tstage < safe && tstage <= end && tstage <= tcal) {
        ScheduleRecord(env, st.staging.top());
        st.staging.pop();
        progressed = true;
        continue;
      }
      break;
    }

    // Publish our lower bound: nothing this shard does can now happen
    // before its next pending activity, and conservatively no earlier
    // than the horizon we just respected. Monotone because fired events
    // were >= the previous announcement and `safe` only grows.
    const SimTime tstage =
        st.staging.empty() ? kSimTimeMax : st.staging.top().time;
    const SimTime next = std::min(env->PeekNextTime(), tstage);
    st.clock.store(std::min(next, safe), std::memory_order_release);

    // Done with this phase once no local work remains at or before
    // `end` AND every other shard provably cannot send any. Stragglers
    // still park messages for us — they land beyond `end` (their clocks
    // already passed end - lookahead) and wait for the next phase.
    if (next > end && safe > end) break;
    // Single-core friendliness: when blocked on other shards' clocks,
    // yield instead of spinning the horizon loop.
    if (!progressed) std::this_thread::yield();
  }
  env->AdvanceNowTo(end);
}

void ShardGroup::WorkerLoop(int shard) {
  std::uint64_t seen = 0;
  for (;;) {
    SimTime end;
    {
      std::unique_lock<std::mutex> lock(cmd_mu_);
      cmd_cv_.wait(lock, [&] { return shutdown_ || cmd_gen_ != seen; });
      if (shutdown_) return;
      seen = cmd_gen_;
      end = cmd_end_;
    }
    RunShard(shard, end);
    {
      std::lock_guard<std::mutex> lock(cmd_mu_);
      if (++done_count_ == shards()) done_cv_.notify_all();
    }
  }
}

void ShardGroup::AdvanceTo(SimTime end) {
  if (shards() == 1) {
    // Degenerate group: the plain single-calendar loop, bit-identical
    // to an unsharded run by construction.
    envs_[0]->RunUntil(end);
    return;
  }
  SPIFFI_DCHECK(end >= envs_[0]->now());
  // All shards are parked at the previous phase end; restart the clocks
  // from that common time. The values left over from the previous phase
  // are not valid lower bounds here — the model may have scheduled new
  // work between phases (e.g. at the current instant), and an empty
  // calendar would have published kSimTimeMax.
  for (auto& st : state_) {
    st->clock.store(envs_[0]->now(), std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(cmd_mu_);
    done_count_ = 0;
    cmd_end_ = end;
    ++cmd_gen_;
  }
  cmd_cv_.notify_all();
  RunShard(0, end);
  {
    std::unique_lock<std::mutex> lock(cmd_mu_);
    ++done_count_;
    done_cv_.wait(lock, [&] { return done_count_ == shards(); });
  }
}

}  // namespace spiffi::sim
