#include "sim/calendar.h"

#include <algorithm>

#include "sim/check.h"

namespace spiffi::sim {

EventId Calendar::Schedule(SimTime time, EventHandler* handler,
                           std::uint64_t token) {
  SPIFFI_DCHECK(handler != nullptr);
  EventId id = next_id_++;
  if (heap_.size() == heap_.capacity()) ++storage_grows_;
  heap_.push_back(Entry{time, next_seq_++, handler, token, id});
  std::push_heap(heap_.begin(), heap_.end(), Later);
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
  pending_.insert(id);
  return id;
}

void Calendar::Cancel(EventId id) {
  // Only entries still in the heap may be marked; a stale id (already
  // fired, or never scheduled) would otherwise sit in cancelled_ forever
  // because FireNext only purges ids it actually finds at the head.
  if (pending_.erase(id) == 1) cancelled_.insert(id);
}

void Calendar::DropCancelledHead() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.front().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    std::pop_heap(heap_.begin(), heap_.end(), Later);
    heap_.pop_back();
  }
}

SimTime Calendar::FireNext() {
  DropCancelledHead();
  if (heap_.empty()) return kSimTimeMax;
  Entry entry = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), Later);
  heap_.pop_back();
  pending_.erase(entry.id);
  ++fired_;
  entry.handler->OnEvent(entry.token);
  return entry.time;
}

SimTime Calendar::PeekTime() {
  DropCancelledHead();
  return heap_.empty() ? kSimTimeMax : heap_.front().time;
}

bool Calendar::empty() {
  DropCancelledHead();
  return heap_.empty();
}

void Calendar::Clear() {
  heap_.clear();
  pending_.clear();
  cancelled_.clear();
}

}  // namespace spiffi::sim
