#include "sim/calendar.h"

#include <algorithm>

#include "sim/check.h"

namespace spiffi::sim {

void Calendar::Reserve(std::size_t expected_entries) {
  heap_.reserve(expected_entries);
  slots_.reserve(expected_entries);
}

std::uint32_t Calendar::TakeSlot() {
  if (free_head_ != kNoSlot) {
    std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].state = SlotState::kPending;
    return slot;
  }
  auto slot = static_cast<std::uint32_t>(slots_.size());
  SPIFFI_CHECK(slot <= kSlotMask);  // < 2^24 simultaneously pending
  slots_.push_back(Slot{});
  slots_.back().state = SlotState::kPending;
  return slot;
}

void Calendar::FreeSlot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  // Bump the generation so every id handed out for this slot so far is
  // now stale; skip 0 on wrap so EventId 0 stays forever invalid.
  if (++s.generation == 0) s.generation = 1;
  s.state = SlotState::kFree;
  s.next_free = free_head_;
  free_head_ = slot;
}

void Calendar::SiftUp(std::size_t index, HeapEntry entry) {
  while (index > 0) {
    std::size_t parent = (index - 1) >> 2;
    if (entry >= heap_[parent]) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void Calendar::SiftDown(std::size_t index, HeapEntry entry) {
  const std::size_t size = heap_.size();
  for (;;) {
    std::size_t child = 4 * index + 1;
    if (child + 3 < size) {
      // Full node: branchless min-of-4 (ternaries compile to cmov; a
      // scan with data-dependent branches mispredicts ~3 times per
      // level on random keys, which dominates sift cost).
      HeapEntry c0 = heap_[child], c1 = heap_[child + 1];
      HeapEntry c2 = heap_[child + 2], c3 = heap_[child + 3];
      std::size_t b01 = c1 < c0 ? child + 1 : child;
      HeapEntry e01 = c1 < c0 ? c1 : c0;
      std::size_t b23 = c3 < c2 ? child + 3 : child + 2;
      HeapEntry e23 = c3 < c2 ? c3 : c2;
      std::size_t best = e23 < e01 ? b23 : b01;
      HeapEntry eb = e23 < e01 ? e23 : e01;
      if (eb >= entry) break;
      heap_[index] = eb;
      index = best;
    } else {
      // Ragged last node (1-3 children).
      if (child >= size) break;
      const std::size_t last = std::min(child + 4, size);
      std::size_t best = child;
      for (std::size_t c = child + 1; c < last; ++c) {
        if (heap_[c] < heap_[best]) best = c;
      }
      if (heap_[best] >= entry) break;
      heap_[index] = heap_[best];
      index = best;
    }
  }
  heap_[index] = entry;
}

void Calendar::PopRoot() {
  HeapEntry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) SiftDown(0, last);
}

EventId Calendar::Schedule(SimTime time, EventHandler* handler,
                           std::uint64_t token) {
  SPIFFI_DCHECK(handler != nullptr);
  SPIFFI_DCHECK(next_seq_ < (1ull << (64 - kSlotBits)));
  std::uint32_t slot = TakeSlot();
  Slot& s = slots_[slot];
  s.handler = handler;
  s.token = token;
  if (heap_.size() == heap_.capacity()) ++storage_grows_;
  heap_.push_back(HeapEntry{});  // placeholder; SiftUp fills the hole
  HeapEntry entry = (static_cast<HeapEntry>(TimeKey(time)) << 64) |
                    ((next_seq_++ << kSlotBits) | slot);
  SiftUp(heap_.size() - 1, entry);
  if (heap_.size() > peak_size_) peak_size_ = heap_.size();
  return Pack(slot, s.generation);
}

void Calendar::Cancel(EventId id) {
  auto slot = static_cast<std::uint32_t>(id >> 32);
  auto generation = static_cast<std::uint32_t>(id);
  // Stale ids (already fired, never scheduled, or a recycled slot) fail
  // the generation compare; double-cancels fail the state check.
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (s.state != SlotState::kPending || s.generation != generation) return;
  s.state = SlotState::kCancelled;
  ++cancelled_;
}

void Calendar::DropCancelledHead() {
  if (cancelled_ == 0) return;  // nothing cancelled anywhere in the heap
  while (!heap_.empty()) {
    auto slot = static_cast<std::uint32_t>(heap_.front() & kSlotMask);
    if (slots_[slot].state != SlotState::kCancelled) break;
    FreeSlot(slot);
    --cancelled_;
    PopRoot();
  }
}

SimTime Calendar::FireNext() {
  DropCancelledHead();
  if (heap_.empty()) return kSimTimeMax;
  HeapEntry head = heap_.front();
  PopRoot();
  auto slot = static_cast<std::uint32_t>(head & kSlotMask);
  Slot& s = slots_[slot];
  EventHandler* handler = s.handler;
  std::uint64_t token = s.token;
  FreeSlot(slot);
  ++fired_;
  handler->OnEvent(token);
  return KeyTime(static_cast<std::uint64_t>(head >> 64));
}

SimTime Calendar::PeekTime() {
  DropCancelledHead();
  if (heap_.empty()) return kSimTimeMax;
  return KeyTime(static_cast<std::uint64_t>(heap_.front() >> 64));
}

bool Calendar::empty() {
  DropCancelledHead();
  return heap_.empty();
}

void Calendar::Clear() {
  for (const HeapEntry& entry : heap_) {
    FreeSlot(static_cast<std::uint32_t>(entry & kSlotMask));
  }
  heap_.clear();
  cancelled_ = 0;
}

}  // namespace spiffi::sim
