#include "sim/random.h"

#include <cmath>

#include "sim/check.h"

namespace spiffi::sim {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double ToUnitDouble(std::uint64_t bits) {
  // 53 high bits -> [0, 1) with full double precision.
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

double ExponentialAt(std::uint64_t seed, std::uint64_t index, double mean) {
  double u = ToUnitDouble(Hash64(seed, index));
  // Guard against log(0); 1-u is in (0, 1].
  return -mean * std::log(1.0 - u);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  // Seed the four xoshiro words with successive SplitMix64 outputs.
  std::uint64_t s = seed;
  for (auto& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = Mix64(s);
  }
}

Rng Rng::Child(std::uint64_t stream) const {
  return Rng(Hash64(seed_, stream));
}

std::uint64_t Rng::NextU64() {
  // xoshiro256**
  std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() { return ToUnitDouble(NextU64()); }

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  SPIFFI_DCHECK(n > 0);
  // Rejection-free for our purposes: modulo bias is negligible for the
  // small ranges (dozens to thousands) used in this simulator, but use
  // Lemire's multiply-shift to avoid it anyway.
  unsigned __int128 product =
      static_cast<unsigned __int128>(NextU64()) * n;
  return static_cast<std::uint64_t>(product >> 64);
}

double Rng::Exponential(double mean) {
  SPIFFI_DCHECK(mean > 0.0);
  return -mean * std::log(1.0 - NextDouble());
}

}  // namespace spiffi::sim
