// Conservative parallel-simulation shard group.
//
// A ShardGroup runs N Environments — one per shard, each on its own
// thread — as a single logical simulation. Shards exchange timestamped
// messages through per-(source, destination) mailboxes and synchronize
// with an asynchronous Chandy–Misra–Bryant-style protocol: every shard
// continuously publishes a clock that lower-bounds all of its future
// activity, and a shard may fire an event at time t only once
// t < min(other clocks) + lookahead, because any message another shard
// has yet to send must arrive at least `lookahead` after that shard's
// clock. The lookahead is the model's minimum cross-shard latency (for
// SPIFFI, the network's base wire delay).
//
// Determinism is the design requirement, not a best effort. Same-time
// cross-shard deliveries are merged in a canonical order keyed by
// (deliver time, source shard, per-pair send sequence), and each
// delivery passes through the destination calendar as one ordinary
// event, so results — including kernel event counts — are bit-identical
// at any shard count whenever event timestamps are distinct (which the
// continuous-time model guarantees in practice and the shard
// determinism suite locks).

#ifndef SPIFFI_SIM_SHARD_H_
#define SPIFFI_SIM_SHARD_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/environment.h"
#include "sim/time.h"

namespace spiffi::sim {

// Delivers one cross-shard payload on the destination shard's thread,
// at the message's deliver time, inside an ordinary calendar event.
using RemoteDeliverFn = void (*)(Environment* env, const void* payload);

// Payloads are copied by value through the mailboxes; they must be
// trivially copyable and fit this bound.
inline constexpr std::size_t kMaxRemotePayload = 160;

class ShardGroup {
 public:
  // `envs[s]` is shard s's environment; the group does not own them.
  // `lookahead` is the guaranteed minimum delay between a send on one
  // shard and its delivery on another (must be > 0).
  ShardGroup(std::vector<Environment*> envs, double lookahead);
  ~ShardGroup();

  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  int shards() const { return static_cast<int>(envs_.size()); }
  double lookahead() const { return lookahead_; }
  Environment* env(int shard) const { return envs_[shard]; }

  // Endpoint directory: model objects that receive cross-shard traffic
  // register the pointer value senders will address them by.
  void RegisterEndpoint(const void* endpoint, int shard);
  // Shard owning `endpoint`; CHECK-fails for unregistered pointers
  // (sending to an unpartitioned object is a wiring bug, not a
  // recoverable condition).
  int ShardOf(const void* endpoint) const;

  // Enqueues a payload from shard `src` (must be the calling shard) for
  // delivery on shard `dst` at `deliver_time`. The deliver time must be
  // at least the sender's clock plus the lookahead; PostMessage
  // guarantees this because every wire delay >= the base wire delay.
  void Send(int src, int dst, SimTime deliver_time, RemoteDeliverFn fn,
            const void* payload, std::size_t payload_bytes);

  // Runs every shard until all events with time <= end have fired,
  // then sets every environment's clock to `end`. The calling thread
  // drives shard 0; shards 1..N-1 run on the group's worker threads.
  // Messages sent near the end of the phase whose deliver time falls
  // beyond `end` stay queued and are delivered by the next AdvanceTo.
  void AdvanceTo(SimTime end);

 private:
  struct Record {
    SimTime time;
    std::uint64_t seq;  // per-(src,dst) send sequence
    std::int32_t src;
    std::uint32_t size;
    RemoteDeliverFn fn;
    unsigned char payload[kMaxRemotePayload];
  };

  // Min-heap on (time, source shard, sequence) — the canonical merge
  // order for same-time cross-shard deliveries.
  struct RecordAfter {
    bool operator()(const Record& a, const Record& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };

  // One per (src, dst) pair: src's thread appends, dst's thread swaps
  // the batch out. Unbounded on purpose — a bounded queue could make a
  // producer block mid-event while the consumer blocks on the reverse
  // pair, and memory stays small because consumers drain continuously.
  struct Mailbox {
    std::mutex mu;
    std::vector<Record> queue;
    std::uint64_t next_seq = 0;
  };

  struct alignas(64) ShardState {
    // Lower bound on all future sends from this shard. Monotone
    // non-decreasing; published with release so a consumer that reads
    // clock c also observes every send made before the clock reached c.
    std::atomic<SimTime> clock{0.0};
    // Consumer-side staging of drained records (destination thread
    // only): holds arrivals until they are provably safe to schedule.
    std::priority_queue<Record, std::vector<Record>, RecordAfter> staging;
    std::vector<Record> scratch;
  };

  void WorkerLoop(int shard);
  void RunShard(int shard, SimTime end);
  void DrainInboxes(int shard);
  static void ScheduleRecord(Environment* env, const Record& record);

  std::vector<Environment*> envs_;
  double lookahead_;
  std::vector<std::unique_ptr<ShardState>> state_;
  std::vector<std::unique_ptr<Mailbox>> mail_;  // index src * shards + dst
  std::unordered_map<const void*, int> endpoints_;

  // Phase orchestration: AdvanceTo publishes (generation, end), workers
  // run one RunShard per generation and count themselves done.
  std::mutex cmd_mu_;
  std::condition_variable cmd_cv_;
  std::condition_variable done_cv_;
  std::uint64_t cmd_gen_ = 0;
  SimTime cmd_end_ = 0.0;
  int done_count_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_SHARD_H_
