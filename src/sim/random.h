// Deterministic random number generation.
//
// Two facilities:
//  * Rng — a sequential xoshiro256** stream for workload randomness (video
//    selection, start times, pause times). Child streams are derived from a
//    master seed with a name/index so each stochastic subsystem has its own
//    stream and adding consumers never perturbs other streams.
//  * Hash-based "counter mode" sampling — stateless draws addressed by
//    (seed, index), used for per-frame MPEG sizes so that "each time the
//    same video is played, the same sequence of frames and frame sizes is
//    repeated" (paper §6.1) without storing the frames.

#ifndef SPIFFI_SIM_RANDOM_H_
#define SPIFFI_SIM_RANDOM_H_

#include <cstdint>

namespace spiffi::sim {

// SplitMix64 finalizer: a high-quality 64-bit mixing function.
std::uint64_t Mix64(std::uint64_t x);

// Combines two 64-bit values into one well-mixed value.
inline std::uint64_t Hash64(std::uint64_t a, std::uint64_t b) {
  return Mix64(a + 0x9e3779b97f4a7c15ULL * (b + 1));
}

// Maps a 64-bit value to a double uniform in [0, 1).
double ToUnitDouble(std::uint64_t bits);

// Stateless exponential draw with the given mean, addressed by (seed, i).
double ExponentialAt(std::uint64_t seed, std::uint64_t index, double mean);

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Derives an independent child stream; `stream` identifies the consumer.
  Rng Child(std::uint64_t stream) const;

  std::uint64_t NextU64();
  // Uniform in [0, 1).
  double NextDouble();
  // Uniform in [lo, hi).
  double Uniform(double lo, double hi);
  // Uniform integer in [0, n).
  std::uint64_t UniformInt(std::uint64_t n);
  // Exponential with the given mean (> 0).
  double Exponential(double mean);

 private:
  std::uint64_t state_[4];
  std::uint64_t seed_;  // retained for Child derivation
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_RANDOM_H_
