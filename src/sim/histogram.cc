#include "sim/histogram.h"

#include <algorithm>
#include <cmath>

namespace spiffi::sim {

namespace {
// Smallest representable value: 1 microsecond.
constexpr double kBase = 1e-6;
// Bucket width factor: 2^(1/4).
const double kFactor = std::pow(2.0, 0.25);
const double kLogFactor = std::log(kFactor);
}  // namespace

double Histogram::BucketBound(int index) {
  return kBase * std::pow(kFactor, index + 1);
}

int Histogram::BucketFor(double value) {
  if (value <= kBase) return 0;
  int bucket = static_cast<int>(std::log(value / kBase) / kLogFactor);
  return std::clamp(bucket, 0, kBuckets - 1);
}

void Histogram::Add(double value) {
  ++buckets_[BucketFor(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      // Clamp to observed extremes for tighter tails.
      return std::clamp(BucketBound(b), min_, max_);
    }
  }
  return max_;
}

}  // namespace spiffi::sim
