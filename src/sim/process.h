// Coroutine process type for process-oriented simulation.
//
// A simulation process is a C++20 coroutine returning sim::Process. It
// describes the sequential behaviour of one simulated entity (a terminal,
// a prefetch daemon, a disk service loop) and advances simulated time by
// co_await-ing environment primitives:
//
//   sim::Process Terminal::Run() {
//     co_await env_->Hold(1.5);          // sleep 1.5 simulated seconds
//     co_await cpu_->Use(0.0005);        // queue for and consume the CPU
//     Message m = co_await inbox_.Receive();
//     ...
//   }
//
// Lifecycle: a Process handle owns the suspended coroutine frame until it
// is passed to Environment::Spawn, which takes ownership, registers the
// frame, and schedules its first resumption at the current simulated time.
// When the coroutine runs to completion the frame deregisters itself and is
// destroyed. Frames still alive when the Environment is destroyed (the
// normal case for a closed system stopped at a time limit) are destroyed by
// the Environment.

#ifndef SPIFFI_SIM_PROCESS_H_
#define SPIFFI_SIM_PROCESS_H_

#include <coroutine>
#include <exception>
#include <utility>

namespace spiffi::sim {

class Environment;

namespace internal {
// Called by the final awaiter; defined in environment.cc to avoid a
// circular include.
void ProcessFinished(Environment* env, std::coroutine_handle<> handle);
}  // namespace internal

class Process {
 public:
  struct promise_type {
    // Set by Environment::Spawn before the first resumption.
    Environment* env = nullptr;

    Process get_return_object() {
      return Process(
          std::coroutine_handle<promise_type>::from_promise(*this));
    }

    // Processes start suspended; Spawn schedules the first step.
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        // Deregisters and destroys the frame. After this call the
        // coroutine no longer exists; control returns to the run loop.
        internal::ProcessFinished(h.promise().env, h);
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() noexcept { std::terminate(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  Process() = default;
  explicit Process(Handle handle) : handle_(handle) {}

  Process(Process&& other) noexcept
      : handle_(std::exchange(other.handle_, {})) {}
  Process& operator=(Process&& other) noexcept {
    if (this != &other) {
      DestroyIfOwned();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ~Process() { DestroyIfOwned(); }

  // Transfers ownership of the frame (used by Environment::Spawn).
  Handle Release() { return std::exchange(handle_, {}); }

  bool valid() const { return static_cast<bool>(handle_); }

 private:
  void DestroyIfOwned() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_PROCESS_H_
