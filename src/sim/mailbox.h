// Typed FIFO mailbox with blocking receive (CSIM-style message port).
//
// Senders never block (the queue is unbounded); receivers suspend until a
// message is available. Multiple receivers are served FIFO. Like every
// other primitive, wakeups pass through the calendar for determinism.

#ifndef SPIFFI_SIM_MAILBOX_H_
#define SPIFFI_SIM_MAILBOX_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <utility>

#include "sim/calendar.h"
#include "sim/check.h"
#include "sim/environment.h"

namespace spiffi::sim {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Environment* env) : env_(env) {
    SPIFFI_CHECK(env != nullptr);
  }

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  class ReceiveAwaiter final : public EventHandler {
   public:
    explicit ReceiveAwaiter(Mailbox* box) : box_(box) {}

    bool await_ready() {
      if (!box_->queue_.empty() && box_->receivers_.empty()) {
        value_ = std::move(box_->queue_.front());
        box_->queue_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> handle) {
      handle_ = handle;
      box_->receivers_.push_back(this);
    }
    T await_resume() {
      SPIFFI_DCHECK(value_.has_value());
      return std::move(*value_);
    }
    void OnEvent(std::uint64_t) override { handle_.resume(); }

   private:
    friend class Mailbox;
    Mailbox* box_;
    std::coroutine_handle<> handle_;
    std::optional<T> value_;
  };

  // co_await box.Receive(): pops the oldest message, suspending while the
  // mailbox is empty.
  ReceiveAwaiter Receive() { return ReceiveAwaiter(this); }

  // Enqueues a message; wakes the oldest waiting receiver if any.
  void Send(T value) {
    if (!receivers_.empty()) {
      ReceiveAwaiter* receiver = receivers_.front();
      receivers_.pop_front();
      receiver->value_ = std::move(value);
      env_->Schedule(env_->now(), receiver);
    } else {
      queue_.push_back(std::move(value));
    }
  }

  std::size_t pending() const { return queue_.size(); }
  std::size_t waiting_receivers() const { return receivers_.size(); }

 private:
  Environment* env_;
  std::deque<T> queue_;
  std::deque<ReceiveAwaiter*> receivers_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_MAILBOX_H_
