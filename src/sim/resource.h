// FCFS multi-server resource (CSIM "facility").
//
// Models a server such as a CPU: requests queue first-come-first-served,
// occupy one of `servers` units for a caller-supplied service time, and
// resume the requesting process when service completes.
//
//   co_await cpu.Use(instructions / mips / 1e6);
//
// Busy-unit and queue-length statistics are collected automatically.

#ifndef SPIFFI_SIM_RESOURCE_H_
#define SPIFFI_SIM_RESOURCE_H_

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>

#include "sim/calendar.h"
#include "sim/environment.h"
#include "sim/stats.h"

namespace spiffi::sim {

class Resource {
 public:
  Resource(Environment* env, int servers, std::string name);

  Resource(const Resource&) = delete;
  Resource& operator=(const Resource&) = delete;

  class UseAwaiter final : public EventHandler {
   public:
    UseAwaiter(Resource* resource, SimTime service_time)
        : resource_(resource), service_time_(service_time) {}

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() const noexcept {}
    // Fires when service completes: frees the server, dispatches the next
    // queued request, then resumes the caller.
    void OnEvent(std::uint64_t) override;

   private:
    friend class Resource;
    Resource* resource_;
    SimTime service_time_;
    std::coroutine_handle<> handle_;
  };

  // co_await resource.Use(t): queues FCFS, holds one server for t seconds.
  UseAwaiter Use(SimTime service_time) {
    return UseAwaiter(this, service_time);
  }

  // Resets measurement windows (after warmup).
  void ResetStats(SimTime now);

  const std::string& name() const { return name_; }
  int servers() const { return servers_; }
  int busy() const { return busy_; }
  std::size_t queue_length() const { return queue_.size(); }
  double AverageUtilization(SimTime now) const {
    return utilization_.Average(now);
  }
  const TimeWeighted& queue_stats() const { return queue_weighted_; }
  const Tally& service_tally() const { return service_tally_; }

 private:
  void Dispatch();  // starts service for queued requests while idle servers

  Environment* env_;
  int servers_;
  std::string name_;
  int busy_ = 0;
  std::deque<UseAwaiter*> queue_;
  Utilization utilization_;
  TimeWeighted queue_weighted_;
  Tally service_tally_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_RESOURCE_H_
