#include "sim/semaphore.h"

#include "sim/check.h"

namespace spiffi::sim {

Semaphore::Semaphore(Environment* env, std::int64_t initial_count)
    : env_(env), count_(initial_count) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(initial_count >= 0);
}

bool Semaphore::AcquireAwaiter::await_ready() {
  // Even when units are available, queued waiters go first (FIFO).
  if (sem_->count_ > 0 && sem_->waiters_.empty()) {
    --sem_->count_;
    return true;
  }
  return false;
}

void Semaphore::AcquireAwaiter::await_suspend(std::coroutine_handle<> handle) {
  handle_ = handle;
  sem_->waiters_.push_back(this);
}

void Semaphore::Release() {
  if (!waiters_.empty()) {
    // Hand the unit directly to the oldest waiter; the count is not
    // incremented, so a racing Acquire at the same instant cannot steal it.
    AcquireAwaiter* waiter = waiters_.front();
    waiters_.pop_front();
    env_->Schedule(env_->now(), waiter);
  } else {
    ++count_;
  }
}

}  // namespace spiffi::sim
