// Statistics collectors used by the simulator and the experiment layer.

#ifndef SPIFFI_SIM_STATS_H_
#define SPIFFI_SIM_STATS_H_

#include <cstdint>
#include <limits>

#include "sim/time.h"

namespace spiffi::sim {

// Accumulates point observations: count, mean, variance, min, max.
class Tally {
 public:
  void Add(double x);
  void Reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const;
  // Sample variance / standard deviation (n-1 denominator).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  // Half-width of a confidence interval on the mean using a normal
  // approximation; z defaults to the 90% two-sided quantile (1.645).
  double ci_half_width(double z = 1.645) const;

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;  // running mean (Welford)
  double m2_ = 0.0;    // running sum of squared deviations
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Integrates a piecewise-constant value over simulated time; used for
// utilizations and queue lengths. Call Set(new_value, now) on every change
// and Average(now) to read the time-weighted mean since the last Reset.
class TimeWeighted {
 public:
  explicit TimeWeighted(double initial_value = 0.0)
      : value_(initial_value) {}

  void Set(double value, SimTime now);
  void Add(double delta, SimTime now) { Set(value_ + delta, now); }
  // Restarts integration at `now`, keeping the current value. Used when a
  // measurement window opens after warmup.
  void Reset(SimTime now);

  double value() const { return value_; }
  double Average(SimTime now) const;
  double max() const { return max_; }

 private:
  double value_;
  double integral_ = 0.0;
  SimTime start_ = 0.0;
  SimTime last_ = 0.0;
  double max_ = 0.0;
};

// Tracks the busy fraction of a server with a known capacity: a
// TimeWeighted over busy units, normalized by capacity.
class Utilization {
 public:
  explicit Utilization(int capacity = 1) : capacity_(capacity) {}

  void SetBusy(int busy, SimTime now) {
    busy_ = busy;
    weighted_.Set(static_cast<double>(busy), now);
  }
  void Reset(SimTime now) { weighted_.Reset(now); }

  int busy() const { return busy_; }
  int capacity() const { return capacity_; }
  // Mean fraction of capacity in use over the measurement window.
  double Average(SimTime now) const {
    return capacity_ == 0 ? 0.0 : weighted_.Average(now) / capacity_;
  }

 private:
  int capacity_;
  int busy_ = 0;
  TimeWeighted weighted_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_STATS_H_
