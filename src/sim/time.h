// Simulated-time type and unit helpers.
//
// Simulated time is a double, measured in seconds, starting at 0 when an
// Environment is constructed. Doubles give ~microsecond resolution over
// multi-hour simulations, which comfortably covers the finest event
// granularity in this model (network wire delays of a few microseconds).

#ifndef SPIFFI_SIM_TIME_H_
#define SPIFFI_SIM_TIME_H_

namespace spiffi::sim {

using SimTime = double;

inline constexpr SimTime kMicrosecond = 1e-6;
inline constexpr SimTime kMillisecond = 1e-3;
inline constexpr SimTime kSecond = 1.0;
inline constexpr SimTime kMinute = 60.0;
inline constexpr SimTime kHour = 3600.0;

// A time later than any event a simulation will ever schedule.
inline constexpr SimTime kSimTimeMax = 1e300;

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_TIME_H_
