// Simulation environment: clock, calendar, and process registry.
//
// One Environment owns one independent simulation run. All model objects
// (disks, CPUs, terminals, ...) hold a pointer to their Environment and
// schedule activity through it. The Environment is strictly
// single-threaded.

#ifndef SPIFFI_SIM_ENVIRONMENT_H_
#define SPIFFI_SIM_ENVIRONMENT_H_

#include <coroutine>
#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "sim/calendar.h"
#include "sim/process.h"
#include "sim/time.h"

namespace spiffi::sim {

class Environment {
 public:
  Environment() = default;
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Current simulated time in seconds.
  SimTime now() const { return now_; }

  // Takes ownership of a suspended process coroutine and schedules its
  // first step at the current time (after already-pending same-time
  // events, preserving FIFO determinism).
  void Spawn(Process process);

  // Schedules handler->OnEvent(token) at absolute time `time` (>= now).
  EventId Schedule(SimTime time, EventHandler* handler,
                   std::uint64_t token = 0);
  // Convenience: relative delay.
  EventId ScheduleAfter(SimTime delay, EventHandler* handler,
                        std::uint64_t token = 0);
  void Cancel(EventId id) { calendar_.Cancel(id); }

  // Schedules a coroutine resumption at absolute time `time`. The slot is
  // owned by the environment (small pool); used by awaiters that do not
  // want to be EventHandlers themselves.
  void ScheduleResume(std::coroutine_handle<> handle, SimTime time);

  // Awaitable: suspends the calling process for `delay` seconds. A zero
  // delay still passes through the calendar, yielding to other events
  // scheduled at the current instant.
  struct HoldAwaiter final : EventHandler {
    HoldAwaiter(Environment* e, SimTime t) : env(e), wake_time(t) {}

    Environment* env;
    SimTime wake_time;
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      env->Schedule(wake_time, this);
    }
    void await_resume() const noexcept {}
    void OnEvent(std::uint64_t) override { handle.resume(); }
  };
  HoldAwaiter Hold(SimTime delay) { return HoldAwaiter(this, now_ + delay); }
  HoldAwaiter HoldUntil(SimTime time) { return HoldAwaiter(this, time); }

  // Runs until the calendar is empty or Stop() is called.
  void Run();

  // Runs all events with time <= end, then sets now() = end.
  void RunUntil(SimTime end);

  // Stops the run loop after the event currently being fired.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t events_fired() const { return calendar_.fired_count(); }
  std::size_t live_processes() const { return processes_.size(); }

 private:
  friend void internal::ProcessFinished(Environment* env,
                                        std::coroutine_handle<> handle);

  // Calendar slot that resumes a coroutine and returns itself to a free
  // list. Enables ScheduleResume without a dedicated awaiter object.
  struct ResumeSlot final : EventHandler {
    Environment* env = nullptr;
    std::coroutine_handle<> handle;
    ResumeSlot* next_free = nullptr;
    void OnEvent(std::uint64_t) override;
  };

  void DestroyLiveProcesses();

  Calendar calendar_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::unordered_set<void*> processes_;  // live coroutine frame addresses
  // All slots ever created (owned here, so slots still sitting in the
  // calendar at teardown are reclaimed); free_slots_ chains the idle ones.
  std::vector<std::unique_ptr<ResumeSlot>> all_slots_;
  ResumeSlot* free_slots_ = nullptr;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_ENVIRONMENT_H_
