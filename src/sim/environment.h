// Simulation environment: clock, calendar, and process registry.
//
// One Environment owns one independent simulation run. All model objects
// (disks, CPUs, terminals, ...) hold a pointer to their Environment and
// schedule activity through it. The Environment is strictly
// single-threaded.

#ifndef SPIFFI_SIM_ENVIRONMENT_H_
#define SPIFFI_SIM_ENVIRONMENT_H_

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/calendar.h"
#include "sim/process.h"
#include "sim/time.h"

namespace spiffi::obs {
class Tracer;
}  // namespace spiffi::obs

namespace spiffi::sim {

class Environment {
 public:
  // Out of line: members reference the forward-declared obs::Tracer.
  Environment();
  ~Environment();

  Environment(const Environment&) = delete;
  Environment& operator=(const Environment&) = delete;

  // Current simulated time in seconds.
  SimTime now() const { return now_; }

  // Pre-sizes the calendar for `expected_entries` simultaneously pending
  // events (see Calendar::Reserve). Model builders call this once from
  // the configured load so the event heap never reallocates mid-run.
  void ReserveCalendar(std::size_t expected_entries) {
    calendar_.Reserve(expected_entries);
  }

  // Takes ownership of a suspended process coroutine and schedules its
  // first step at the current time (after already-pending same-time
  // events, preserving FIFO determinism).
  void Spawn(Process process);

  // Schedules handler->OnEvent(token) at absolute time `time` (>= now).
  EventId Schedule(SimTime time, EventHandler* handler,
                   std::uint64_t token = 0);
  // Convenience: relative delay.
  EventId ScheduleAfter(SimTime delay, EventHandler* handler,
                        std::uint64_t token = 0);
  void Cancel(EventId id) { calendar_.Cancel(id); }

  // Schedules a coroutine resumption at absolute time `time`. The slot is
  // owned by the environment (small pool); used by awaiters that do not
  // want to be EventHandlers themselves.
  void ScheduleResume(std::coroutine_handle<> handle, SimTime time);

  // Awaitable: suspends the calling process for `delay` seconds. A zero
  // delay still passes through the calendar, yielding to other events
  // scheduled at the current instant.
  struct HoldAwaiter final : EventHandler {
    HoldAwaiter(Environment* e, SimTime t) : env(e), wake_time(t) {}

    Environment* env;
    SimTime wake_time;
    std::coroutine_handle<> handle;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      env->Schedule(wake_time, this);
    }
    void await_resume() const noexcept {}
    void OnEvent(std::uint64_t) override { handle.resume(); }
  };
  HoldAwaiter Hold(SimTime delay) { return HoldAwaiter(this, now_ + delay); }
  HoldAwaiter HoldUntil(SimTime time) { return HoldAwaiter(this, time); }

  // Runs until the calendar is empty or Stop() is called.
  void Run();

  // Runs all events with time <= end, then sets now() = end.
  void RunUntil(SimTime end);

  // --- Sharded-run support (see sim/shard.h) ---

  // Time of the next pending event; kSimTimeMax when the calendar is
  // empty. Non-const because peeking discards cancelled heads.
  SimTime PeekNextTime() { return calendar_.PeekTime(); }

  // Fires every pending event with time < bound and time <= end, in
  // order, leaving now() at the last fired event. Unlike RunUntil this
  // never advances now() to `end`: a shard may only move its clock as
  // far as the group's conservative horizon allows. The bounds differ
  // in inclusivity on purpose — `bound` is an exclusive safety horizon
  // (an event exactly at the horizon could still be preceded by a
  // cross-shard arrival), while `end` is the inclusive phase end that
  // RunUntil also uses.
  void RunBounded(SimTime bound, SimTime end);

  // Sets now() = end when the clock is behind it; fires nothing. The
  // shard loop calls this once the whole group has drained phase `end`.
  void AdvanceNowTo(SimTime end) {
    if (now_ < end) now_ = end;
  }

  // Stops the run loop after the event currently being fired.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

  std::uint64_t events_fired() const { return calendar_.fired_count(); }
  std::size_t live_processes() const { return processes_.size(); }

  // --- Observability ---

  // Installs (or returns the already-installed) event tracer. Until this
  // is called, tracer() is null and instrumentation costs one pointer
  // test per call site (nothing at all when SPIFFI_TRACING is off).
  obs::Tracer& EnableTracing(std::size_t ring_capacity = 256 * 1024);
  obs::Tracer* tracer() const { return tracer_.get(); }

  // Kernel self-profiling counters (see obs/kernel_profile.h).
  std::size_t calendar_size() const { return calendar_.size(); }
  std::size_t peak_calendar_size() const { return calendar_.peak_size(); }
  std::uint64_t calendar_storage_grows() const {
    return calendar_.storage_grows();
  }
  std::size_t peak_processes() const { return peak_processes_; }
  std::size_t resume_slots() const { return all_slots_.size(); }
  std::size_t one_shot_slots() const { return one_shot_slot_count_; }

  // --- One-shot handler arena ---
  //
  // Fixed-size free-list arena for short-lived EventHandlers (network
  // deliveries and the like) that are created per message and die inside
  // their own OnEvent. NewOneShot replaces make_unique on the hot path:
  // after warmup every allocation is a free-list pop. The environment
  // owns the backing chunks, so objects still in flight at teardown are
  // reclaimed wholesale — which is why T must be trivially destructible
  // (DeleteOneShot and teardown run no destructors).
  static constexpr std::size_t kOneShotSlotBytes = 256;

  template <typename T, typename... Args>
  T* NewOneShot(Args&&... args) {
    static_assert(sizeof(T) <= kOneShotSlotBytes,
                  "one-shot handler exceeds the arena slot size");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    static_assert(std::is_trivially_destructible_v<T>,
                  "one-shot handlers are reclaimed without running "
                  "destructors");
    return ::new (AllocOneShotRaw()) T(std::forward<Args>(args)...);
  }

  template <typename T>
  void DeleteOneShot(T* object) {
    static_assert(std::is_trivially_destructible_v<T>);
    FreeOneShotRaw(object);
  }

 private:
  friend void internal::ProcessFinished(Environment* env,
                                        std::coroutine_handle<> handle);

  // Calendar slot that resumes a coroutine and returns itself to a free
  // list. Enables ScheduleResume without a dedicated awaiter object.
  struct ResumeSlot final : EventHandler {
    Environment* env = nullptr;
    std::coroutine_handle<> handle;
    ResumeSlot* next_free = nullptr;
    void OnEvent(std::uint64_t) override;
  };

  // Arena slot: raw storage while live, free-list node while idle.
  struct alignas(std::max_align_t) OneShotSlot {
    unsigned char bytes[kOneShotSlotBytes];
  };

  void* AllocOneShotRaw();
  void FreeOneShotRaw(void* storage);

  void DestroyLiveProcesses();

  Calendar calendar_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::unique_ptr<obs::Tracer> tracer_;
  std::size_t peak_processes_ = 0;
  std::unordered_set<void*> processes_;  // live coroutine frame addresses
  // All slots ever created (owned here, so slots still sitting in the
  // calendar at teardown are reclaimed); free_slots_ chains the idle ones.
  std::vector<std::unique_ptr<ResumeSlot>> all_slots_;
  ResumeSlot* free_slots_ = nullptr;
  // One-shot arena backing store (chunked) and its free list, linked
  // through the first pointer-sized bytes of each idle slot.
  std::vector<std::unique_ptr<OneShotSlot[]>> one_shot_chunks_;
  void* one_shot_free_ = nullptr;
  std::size_t one_shot_slot_count_ = 0;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_ENVIRONMENT_H_
