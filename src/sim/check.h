// Lightweight CHECK macros for invariant enforcement.
//
// The simulator is deterministic and single-threaded; an invariant violation
// means a programming error, so we fail fast and loud rather than attempting
// recovery. Configuration errors (user input) are reported via return values
// in vod/config.h, not via these macros.

#ifndef SPIFFI_SIM_CHECK_H_
#define SPIFFI_SIM_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace spiffi::sim::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace spiffi::sim::internal

#define SPIFFI_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::spiffi::sim::internal::CheckFailed(__FILE__, __LINE__,     \
                                           #expr);                 \
    }                                                              \
  } while (0)

// Checks that are cheap enough to keep in release builds stay as
// SPIFFI_CHECK; use SPIFFI_DCHECK for hot-path checks.
#ifdef NDEBUG
#define SPIFFI_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define SPIFFI_DCHECK(expr) SPIFFI_CHECK(expr)
#endif

#endif  // SPIFFI_SIM_CHECK_H_
