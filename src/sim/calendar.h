// Event calendar: the priority queue at the heart of the simulator.
//
// The calendar holds (time, sequence, handler, token) entries in a binary
// min-heap. Sequence numbers break ties so that events scheduled for the
// same instant fire in the order they were scheduled (FIFO), which makes
// every simulation run fully deterministic.
//
// Handlers are raw pointers to objects implementing EventHandler. The
// calendar does not own handlers; schedulers must guarantee the handler
// outlives the entry (coroutine awaiters do, because the frame is suspended
// until the event fires). Entries can be cancelled lazily via Cancel(),
// which marks the entry id; cancelled entries are skipped when popped.

#ifndef SPIFFI_SIM_CALENDAR_H_
#define SPIFFI_SIM_CALENDAR_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace spiffi::sim {

// Interface fired by the calendar when an event comes due. The token is
// whatever value was passed to Schedule, letting one handler multiplex
// several pending events.
class EventHandler {
 public:
  virtual void OnEvent(std::uint64_t token) = 0;
  // Virtual: one-shot handlers (e.g. network deliveries) are owned and
  // destroyed polymorphically.
  virtual ~EventHandler() = default;
};

// Identifies one scheduled entry; used only for cancellation.
using EventId = std::uint64_t;

class Calendar {
 public:
  Calendar() = default;
  Calendar(const Calendar&) = delete;
  Calendar& operator=(const Calendar&) = delete;

  // Adds an entry; returns an id usable with Cancel().
  EventId Schedule(SimTime time, EventHandler* handler,
                   std::uint64_t token = 0);

  // Marks the entry as cancelled. Ids of events that already fired (or
  // were never scheduled) are ignored outright, so stale cancels cannot
  // accumulate state. O(1) amortized; the entry is dropped lazily.
  void Cancel(EventId id);

  // Fires the earliest non-cancelled entry and returns its time, or
  // returns kSimTimeMax if the calendar is empty.
  // The handler may schedule further events from within OnEvent.
  SimTime FireNext();

  // Time of the earliest pending entry, or kSimTimeMax when empty.
  SimTime PeekTime();

  bool empty();

  // Drops every pending entry without firing it.
  void Clear();

  // Number of live (non-cancelled) entries.
  std::size_t size() const { return pending_.size(); }

  // Total events fired since construction.
  std::uint64_t fired_count() const { return fired_; }

  // Entries marked cancelled but not yet lazily dropped from the heap.
  // Bounded by size(); stale cancels never land here.
  std::size_t cancelled_backlog() const { return cancelled_.size(); }

  // Kernel self-profiling: high-water mark of pending entries, and the
  // number of times the heap storage had to grow to admit one.
  std::size_t peak_size() const { return peak_size_; }
  std::uint64_t storage_grows() const { return storage_grows_; }

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    EventHandler* handler;
    std::uint64_t token;
    EventId id;
  };

  // Min-heap ordering: earliest time first, then lowest sequence number.
  static bool Later(const Entry& a, const Entry& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }

  void DropCancelledHead();

  std::vector<Entry> heap_;
  // Ids currently in the heap and not cancelled. Lets Cancel() reject
  // stale ids (already fired / never scheduled) instead of leaking them
  // into cancelled_ for the rest of the run.
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t fired_ = 0;
  std::size_t peak_size_ = 0;
  std::uint64_t storage_grows_ = 0;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_CALENDAR_H_
