// Event calendar: the priority queue at the heart of the simulator.
//
// The calendar holds (time, sequence) entries in a 4-ary min-heap.
// Sequence numbers break ties so that events scheduled for the same
// instant fire in the order they were scheduled (FIFO), which makes
// every simulation run fully deterministic.
//
// Handlers are raw pointers to objects implementing EventHandler. The
// calendar does not own handlers; schedulers must guarantee the handler
// outlives the entry (coroutine awaiters do, because the frame is suspended
// until the event fires). Entries can be cancelled lazily via Cancel(),
// which marks the entry's slot; cancelled entries are skipped when popped.
//
// EventId is a packed (slot, generation) pair into a slot-indexed entry
// table: Schedule takes a slot off a free list, Cancel is a bounds check
// plus a generation compare, and FireNext frees the slot with a
// generation bump so stale ids (already fired, never scheduled, or from
// a recycled slot) are rejected in O(1) with no hashing and no heap
// allocation in steady state.

#ifndef SPIFFI_SIM_CALENDAR_H_
#define SPIFFI_SIM_CALENDAR_H_

#include <bit>
#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace spiffi::sim {

// Interface fired by the calendar when an event comes due. The token is
// whatever value was passed to Schedule, letting one handler multiplex
// several pending events.
//
// The destructor is intentionally protected and non-virtual: the calendar
// never owns or destroys handlers, and one-shot handlers (pooled network
// deliveries) must stay trivially destructible so their storage can be
// reclaimed in bulk by the arena that owns them.
class EventHandler {
 public:
  virtual void OnEvent(std::uint64_t token) = 0;

 protected:
  ~EventHandler() = default;
};

// Identifies one scheduled entry; used only for cancellation. Packed
// (slot << 32) | generation; generations start at 1, so 0 is never a
// valid id and may be used as a "no event" sentinel.
using EventId = std::uint64_t;

class Calendar {
 public:
  Calendar() = default;
  Calendar(const Calendar&) = delete;
  Calendar& operator=(const Calendar&) = delete;

  // Pre-sizes the heap and the slot table for `expected_entries`
  // simultaneously pending entries, so steady-state operation below that
  // occupancy never reallocates (storage_grows() stays 0).
  void Reserve(std::size_t expected_entries);

  // Adds an entry; returns an id usable with Cancel().
  EventId Schedule(SimTime time, EventHandler* handler,
                   std::uint64_t token = 0);

  // Marks the entry as cancelled. Ids of events that already fired (or
  // were never scheduled) are rejected by the generation check, so stale
  // cancels cannot accumulate state. O(1); the entry is dropped lazily.
  void Cancel(EventId id);

  // Fires the earliest non-cancelled entry and returns its time, or
  // returns kSimTimeMax if the calendar is empty.
  // The handler may schedule further events from within OnEvent.
  SimTime FireNext();

  // Time of the earliest pending entry, or kSimTimeMax when empty.
  SimTime PeekTime();

  bool empty();

  // Drops every pending entry without firing it. Outstanding ids are
  // invalidated (their slots' generations are bumped), so cancelling one
  // afterwards is a rejected stale cancel, never a collision.
  void Clear();

  // Number of live (non-cancelled) entries.
  std::size_t size() const { return heap_.size() - cancelled_; }

  // Total events fired since construction.
  std::uint64_t fired_count() const { return fired_; }

  // Entries marked cancelled but not yet lazily dropped from the heap.
  // Bounded by heap occupancy; stale cancels never land here.
  std::size_t cancelled_backlog() const { return cancelled_; }

  // Kernel self-profiling: high-water mark of heap entries, and the
  // number of times the heap storage had to grow to admit one.
  std::size_t peak_size() const { return peak_size_; }
  std::uint64_t storage_grows() const { return storage_grows_; }

 private:
  // One heap entry is a single 128-bit key — (time | seq | slot) packed
  // high-to-low — so the sift loops compare and move entries with plain
  // unsigned arithmetic: no two-field comparator branches, 16 bytes per
  // entry, four children per cache line. Ordering is exactly (time,
  // seq): the time occupies the top 64 bits via an order-preserving
  // encoding, seq is unique so it always decides ties, and the slot
  // bits below it can never influence a comparison.
  // Limits (checked): < 2^40 events per calendar lifetime, < 2^24
  // simultaneously pending entries.
  using HeapEntry = unsigned __int128;

  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1u << kSlotBits) - 1;

  // Order-preserving map from double to uint64: flip all bits of
  // negatives, just the sign bit of non-negatives — the standard IEEE-754
  // total-order trick. `t + 0.0` first normalizes -0.0 to +0.0 so equal
  // times always produce equal keys. KeyTime inverts it exactly.
  static std::uint64_t TimeKey(SimTime t) {
    std::uint64_t bits = std::bit_cast<std::uint64_t>(t + 0.0);
    return bits ^ ((bits >> 63) != 0 ? ~std::uint64_t{0}
                                     : (std::uint64_t{1} << 63));
  }
  static SimTime KeyTime(std::uint64_t key) {
    std::uint64_t bits =
        (key >> 63) != 0 ? key ^ (std::uint64_t{1} << 63) : ~key;
    return std::bit_cast<SimTime>(bits);
  }

  enum class SlotState : std::uint8_t { kFree, kPending, kCancelled };

  // The handler and token live here, not in the heap: the slot never
  // moves, so sifts shuffle only the 16-byte keys.
  struct Slot {
    EventHandler* handler = nullptr;  // valid while kPending
    std::uint64_t token = 0;
    std::uint32_t generation = 1;  // never 0: EventId 0 stays invalid
    std::uint32_t next_free = 0;   // free-list link (valid when kFree)
    SlotState state = SlotState::kFree;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static EventId Pack(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  std::uint32_t TakeSlot();
  void FreeSlot(std::uint32_t slot);
  void DropCancelledHead();
  // 4-ary heap primitives: half the depth of a binary heap and the four
  // children of a node share a cache line, which cuts sift misses on
  // big calendars. `entry` is the value being placed; the hole at
  // `index` is moved until the heap property holds, then filled.
  void SiftUp(std::size_t index, HeapEntry entry);
  void SiftDown(std::size_t index, HeapEntry entry);
  void PopRoot();

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t cancelled_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  std::size_t peak_size_ = 0;
  std::uint64_t storage_grows_ = 0;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_CALENDAR_H_
