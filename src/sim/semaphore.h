// Counting semaphore with strict FIFO wakeup order.
//
// Wakeups pass through the calendar (a released waiter resumes as a
// distinct event at the current simulated time) so that interleavings are
// deterministic and recursion depth stays bounded.

#ifndef SPIFFI_SIM_SEMAPHORE_H_
#define SPIFFI_SIM_SEMAPHORE_H_

#include <coroutine>
#include <cstdint>
#include <deque>

#include "sim/calendar.h"
#include "sim/environment.h"

namespace spiffi::sim {

class Semaphore {
 public:
  Semaphore(Environment* env, std::int64_t initial_count);

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  class AcquireAwaiter final : public EventHandler {
   public:
    explicit AcquireAwaiter(Semaphore* sem) : sem_(sem) {}
    bool await_ready();
    void await_suspend(std::coroutine_handle<> handle);
    void await_resume() const noexcept {}
    void OnEvent(std::uint64_t) override { handle_.resume(); }

   private:
    Semaphore* sem_;
    std::coroutine_handle<> handle_;
  };

  // co_await sem.Acquire(): decrements the count, suspending while it is
  // zero. Waiters are served FIFO; a Release hands its unit directly to
  // the oldest waiter, so waiters cannot be starved by late arrivals.
  AcquireAwaiter Acquire() { return AcquireAwaiter(this); }

  // Returns one unit; wakes the oldest waiter if any.
  void Release();

  std::int64_t available() const { return count_; }
  std::size_t waiters() const { return waiters_.size(); }

 private:
  friend class AcquireAwaiter;

  Environment* env_;
  std::int64_t count_;
  std::deque<AcquireAwaiter*> waiters_;
};

}  // namespace spiffi::sim

#endif  // SPIFFI_SIM_SEMAPHORE_H_
