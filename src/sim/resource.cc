#include "sim/resource.h"

#include <utility>

#include "sim/check.h"

namespace spiffi::sim {

Resource::Resource(Environment* env, int servers, std::string name)
    : env_(env),
      servers_(servers),
      name_(std::move(name)),
      utilization_(servers) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(servers > 0);
}

void Resource::UseAwaiter::await_suspend(std::coroutine_handle<> handle) {
  handle_ = handle;
  resource_->queue_.push_back(this);
  resource_->queue_weighted_.Set(
      static_cast<double>(resource_->queue_.size()), resource_->env_->now());
  resource_->Dispatch();
}

void Resource::Dispatch() {
  while (busy_ < servers_ && !queue_.empty()) {
    UseAwaiter* request = queue_.front();
    queue_.pop_front();
    queue_weighted_.Set(static_cast<double>(queue_.size()), env_->now());
    ++busy_;
    utilization_.SetBusy(busy_, env_->now());
    service_tally_.Add(request->service_time_);
    env_->ScheduleAfter(request->service_time_, request);
  }
}

void Resource::UseAwaiter::OnEvent(std::uint64_t) {
  Resource* resource = resource_;
  --resource->busy_;
  resource->utilization_.SetBusy(resource->busy_, resource->env_->now());
  resource->Dispatch();
  handle_.resume();
}

void Resource::ResetStats(SimTime now) {
  utilization_.Reset(now);
  queue_weighted_.Reset(now);
  service_tally_.Reset();
}

}  // namespace spiffi::sim
