#include "sim/environment.h"

#include "obs/tracer.h"
#include "sim/check.h"

namespace spiffi::sim {

namespace internal {

void ProcessFinished(Environment* env, std::coroutine_handle<> handle) {
  SPIFFI_CHECK(env != nullptr);  // every process must be Spawn-ed
  env->processes_.erase(handle.address());
  handle.destroy();
}

}  // namespace internal

Environment::Environment() = default;

Environment::~Environment() {
  // Pending events may reference awaiters living inside coroutine frames;
  // drop them before destroying the frames. (ResumeSlots — including any
  // still scheduled — are owned by all_slots_ and freed with it.)
  calendar_.Clear();
  DestroyLiveProcesses();
}

void Environment::DestroyLiveProcesses() {
  // Frames may spawn no further work while being destroyed (destructors
  // only); copy the set because erase during iteration is not allowed.
  auto frames = processes_;
  processes_.clear();
  for (void* address : frames) {
    std::coroutine_handle<>::from_address(address).destroy();
  }
}

void Environment::Spawn(Process process) {
  SPIFFI_CHECK(process.valid());
  Process::Handle handle = process.Release();
  handle.promise().env = this;
  processes_.insert(handle.address());
  if (processes_.size() > peak_processes_) {
    peak_processes_ = processes_.size();
  }
  ScheduleResume(handle, now_);
}

obs::Tracer& Environment::EnableTracing(std::size_t ring_capacity) {
  if (tracer_ == nullptr) {
    tracer_ = std::make_unique<obs::Tracer>(ring_capacity);
  }
  return *tracer_;
}

EventId Environment::Schedule(SimTime time, EventHandler* handler,
                              std::uint64_t token) {
  SPIFFI_DCHECK(time >= now_);
  return calendar_.Schedule(time, handler, token);
}

EventId Environment::ScheduleAfter(SimTime delay, EventHandler* handler,
                                   std::uint64_t token) {
  // Clamp rather than DCHECK: a negative (or NaN) delay would schedule
  // into the past, and release builds used to compile the check out —
  // harmless for a single calendar, but a sharded run must never fire
  // an event below a clock bound it already announced to other shards.
  if (!(delay >= 0.0)) delay = 0.0;
  return calendar_.Schedule(now_ + delay, handler, token);
}

void Environment::ResumeSlot::OnEvent(std::uint64_t) {
  std::coroutine_handle<> h = handle;
  handle = {};
  next_free = env->free_slots_;
  env->free_slots_ = this;
  h.resume();
}

void* Environment::AllocOneShotRaw() {
  if (one_shot_free_ != nullptr) {
    void* storage = one_shot_free_;
    one_shot_free_ = *static_cast<void**>(storage);
    return storage;
  }
  // Grow by a chunk and thread every new slot onto the free list.
  constexpr std::size_t kChunkSlots = 64;
  one_shot_chunks_.push_back(std::make_unique<OneShotSlot[]>(kChunkSlots));
  OneShotSlot* chunk = one_shot_chunks_.back().get();
  one_shot_slot_count_ += kChunkSlots;
  for (std::size_t i = 1; i < kChunkSlots; ++i) {
    FreeOneShotRaw(&chunk[i]);
  }
  return &chunk[0];
}

void Environment::FreeOneShotRaw(void* storage) {
  *static_cast<void**>(storage) = one_shot_free_;
  one_shot_free_ = storage;
}

void Environment::ScheduleResume(std::coroutine_handle<> handle,
                                 SimTime time) {
  ResumeSlot* slot = free_slots_;
  if (slot != nullptr) {
    free_slots_ = slot->next_free;
  } else {
    all_slots_.push_back(std::make_unique<ResumeSlot>());
    slot = all_slots_.back().get();
    slot->env = this;
  }
  slot->handle = handle;
  calendar_.Schedule(time, slot);
}

void Environment::Run() {
  stopped_ = false;
  while (!stopped_ && !calendar_.empty()) {
    SimTime t = calendar_.PeekTime();
    SPIFFI_DCHECK(t >= now_);
    now_ = t;
    calendar_.FireNext();
  }
}

void Environment::RunBounded(SimTime bound, SimTime end) {
  stopped_ = false;
  while (!stopped_) {
    SimTime t = calendar_.PeekTime();
    if (!(t < bound) || t > end) break;
    now_ = t;
    calendar_.FireNext();
  }
}

void Environment::RunUntil(SimTime end) {
  stopped_ = false;
  while (!stopped_) {
    SimTime t = calendar_.PeekTime();
    if (t > end) break;
    now_ = t;
    calendar_.FireNext();
  }
  if (!stopped_ && now_ < end) now_ = end;
}

}  // namespace spiffi::sim
