#include "sim/stats.h"

#include <cmath>

namespace spiffi::sim {

void Tally::Add(double x) {
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
}

void Tally::Reset() { *this = Tally(); }

double Tally::mean() const { return count_ == 0 ? 0.0 : mean_; }

double Tally::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Tally::stddev() const { return std::sqrt(variance()); }

double Tally::ci_half_width(double z) const {
  if (count_ < 2) return 0.0;
  return z * stddev() / std::sqrt(static_cast<double>(count_));
}

void TimeWeighted::Set(double value, SimTime now) {
  integral_ += value_ * (now - last_);
  last_ = now;
  value_ = value;
  if (value > max_) max_ = value;
}

void TimeWeighted::Reset(SimTime now) {
  integral_ = 0.0;
  start_ = now;
  last_ = now;
  max_ = value_;
}

double TimeWeighted::Average(SimTime now) const {
  double window = now - start_;
  if (window <= 0.0) return value_;
  double integral = integral_ + value_ * (now - last_);
  return integral / window;
}

}  // namespace spiffi::sim
