// Builds and runs one complete video-on-demand simulation.
//
// The Simulation object wires together the full system — video library,
// layout, network, server nodes, terminals, optional stream-share
// manager and proxy-cache tier —
// from a SimConfig, runs the warmup, opens the measurement window, and
// collects SimMetrics. RunSimulation() is the one-call convenience used
// by the benchmark harnesses.

#ifndef SPIFFI_VOD_SIMULATION_H_
#define SPIFFI_VOD_SIMULATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "client/stream_share.h"
#include "client/terminal.h"
#include "fault/injector.h"
#include "fault/state.h"
#include "hw/network.h"
#include "layout/layout.h"
#include "layout/routing.h"
#include "mpeg/video.h"
#include "obs/kernel_profile.h"
#include "obs/metrics_registry.h"
#include "obs/tracer.h"
#include "proxy/proxy_node.h"
#include "server/message.h"
#include "server/server.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/shard.h"
#include "vod/admission.h"
#include "vod/config.h"
#include "vod/metrics.h"

namespace spiffi::vod {

// Kernel self-profile of one completed Run(), delivered to the run
// observer. Benchmark harnesses install an observer (SetRunObserver) to
// implement their --profile and --report modes without touching
// experiment code.
struct RunProfile {
  double wall_seconds = 0.0;  // warmup + measurement, wall clock
  int terminals = 0;
  double sim_seconds = 0.0;   // warmup + measurement, simulated
  std::uint64_t seed = 0;
  std::uint64_t config_digest = 0;  // ConfigDigest(config), see report.h
  std::string config_summary;       // SimConfig::Describe()
  SimMetrics metrics;               // what Run() returned
  obs::KernelProfile kernel;
};
using RunObserver = std::function<void(const RunProfile&)>;

// Mid-run progress snapshot, delivered to the optional progress callback
// at every slice boundary of Run() (roughly 100 times per run). All
// fields describe the run so far; `sim_end_seconds` is the known target,
// so sim_now / sim_end is a faithful completion fraction.
struct RunProgress {
  double sim_now_seconds = 0.0;
  double sim_end_seconds = 0.0;  // warmup + measurement
  std::uint64_t events_fired = 0;
  double wall_seconds = 0.0;     // since Run() started
  bool in_measurement = false;   // false during warmup
};
using ProgressFn = std::function<void(const RunProgress&)>;

// Installs a process-wide observer called at the end of every
// Simulation::Run(); pass nullptr to clear. The registry is
// mutex-guarded, so installing and invoking are thread-safe — but the
// observer itself runs on whichever thread finished the simulation
// (ParallelRunner workers included) and must synchronize its own state.
void SetRunObserver(RunObserver observer);

class Simulation {
 public:
  // Aborts (CHECK) if config.Validate() reports a problem; validate first
  // when the configuration is user input.
  explicit Simulation(const SimConfig& config);
  ~Simulation();

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Runs warmup + measurement and returns the collected metrics.
  SimMetrics Run();

  // Cooperatively-cancellable Run() for off-thread execution: the event
  // loop is driven in fixed time slices and `cancel` is checked between
  // slices. Returns true and fills `out` when the run completed; returns
  // false (leaving `out` untouched, observer not notified) when
  // cancelled. Slicing is observationally identical to Run() — the same
  // events fire in the same order — so a completed run's metrics are
  // bit-identical to Run()'s (Run() itself is this method with a
  // never-set flag).
  bool Run(const std::atomic<bool>& cancel, SimMetrics* out);

  // As above, additionally invoking `progress` (may be empty) at every
  // slice boundary. The callback runs on the simulating thread and must
  // not re-enter the simulation; it exists so harnesses can publish
  // sim-time / events-fired snapshots for live introspection.
  bool Run(const std::atomic<bool>& cancel, SimMetrics* out,
           const ProgressFn& progress);

  // Component access (for tests and custom experiment loops). env() and
  // network() are shard 0's instances — the only ones when shards == 1.
  sim::Environment& env() { return *env_; }
  // Sharded kernel (config.shards > 1): each shard owns one environment
  // and one network instance; AdvanceTo drives them together.
  bool sharded() const { return group_ != nullptr; }
  int num_shards() const { return static_cast<int>(envs_.size()); }
  sim::Environment& shard_env(int shard) { return *envs_[shard]; }
  hw::Network& shard_network(int shard) const { return *networks_[shard]; }
  // Runs every shard to `end` (plain RunUntil when shards == 1),
  // stopping at barrier-sampler ticks along the way. RunWarmup /
  // RunMeasurement / Run all advance time through here.
  void AdvanceTo(sim::SimTime end);
  // Registers a callback sampled at now + interval, now + 2*interval,
  // ... at global barriers: when it fires, every shard has fired all
  // events up to exactly that instant. TelemetryRecorder uses this in
  // sharded runs, where a free-running sampler process on one shard
  // would observe other shards mid-flight.
  void AddBarrierSampler(double interval_sec,
                         std::function<void(sim::SimTime)> sample);
  // Cross-shard aggregates; with one shard these equal the plain
  // single-instance reads bit-for-bit.
  std::uint64_t total_events_fired() const;
  std::uint64_t total_network_bytes() const;
  server::VideoServer& server() { return *server_; }
  const mpeg::VideoLibrary& library() const { return *library_; }
  const layout::Layout& layout() const { return *layout_; }
  client::Terminal& terminal(int id) { return *terminals_[id]; }
  int num_terminals() const { return static_cast<int>(terminals_.size()); }
  hw::Network& network() { return *network_; }
  // Null unless the config carries an enabled FaultPlan.
  const fault::FaultState* fault_state() const { return fault_state_.get(); }
  const fault::FaultInjector* fault_injector() const {
    return fault_injector_.get();
  }
  // Null unless config.stream_sharing_enabled().
  const client::StreamShareManager* stream_share() const {
    return share_.get();
  }
  // Proxy tier: empty when config.proxy_nodes == 0 (flat topology).
  int num_proxies() const { return static_cast<int>(proxies_.size()); }
  proxy::ProxyNode& proxy_node(int id) { return *proxies_[id]; }
  const proxy::ProxyNode& proxy_node(int id) const { return *proxies_[id]; }
  // Always valid; resolves both hops (proxy == -1 when the tier is off).
  const layout::TierRouter& tier_router() const { return *router_; }
  // Null unless config.admission_policy != AdmissionPolicy::kOff.
  const AdmissionController* admission() const { return admission_.get(); }
  const SimConfig& config() const { return config_; }

  // Manual phase control used by Run(); exposed for experiments that
  // sample mid-run (e.g. utilization traces).
  void RunWarmup();
  void ResetAllStats();
  void RunMeasurement();
  // Builds SimMetrics by reading the metrics registry.
  SimMetrics Collect() const;
  // Builds SimMetrics straight from component stats, bypassing the
  // registry — the pre-registry collection path, kept as the regression
  // reference: Collect() must reproduce it bit-for-bit.
  SimMetrics CollectDirect() const;

  // The registry holding every metric this simulation exposes —
  // per-component probes plus derived metrics (queue-wait vs service
  // breakdown, deadline slack, glitch attribution). Export with
  // metrics().WriteJson(...) / WriteCsv(...).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // Turns on event tracing and labels the Perfetto tracks (terminals,
  // network, per-node cpu/disks/pool). Returns the environment's tracer.
  obs::Tracer& EnableTracing(std::size_t ring_capacity = 256 * 1024);

 private:
  void RegisterMetrics();
  // Static partition rule: server node n -> shard n % shards, proxy
  // p -> shard p % shards, terminal t -> its ingress proxy's shard (or
  // t % shards in a flat topology), so a terminal and its proxy always
  // share a calendar and only proxy->origin (or terminal->origin)
  // traffic crosses shards.
  int ShardOfNode(int node) const { return node % config_.shards; }
  int ShardOfProxy(int proxy) const { return proxy % config_.shards; }
  int ShardOfTerminal(int terminal) const;
  // Exact merged network stats (see hw::Network bucket history).
  std::uint64_t MergedPeakBucketBytes() const;
  double MergedAverageBandwidth(sim::SimTime now) const;
  // Throttled post-repair resync of one disk from replica peers; spawned
  // by the fault effect handler when rebuild_mbps > 0 on a replicated
  // layout. Holds the FaultState `rebuilding` flag for its lifetime.
  sim::Process RebuildDisk(int disk_global);

  // Terminus for rebuild read replies: the payload is a resync, not a
  // stream, so the reply is only counted, never buffered.
  struct RebuildSink final : server::MessageSink {
    void OnMessage(const server::Message& message) override;
    std::uint64_t replies = 0;
  };

  SimConfig config_;
  // One environment + network per shard; envs_[0] / networks_[0] are
  // the primary instances env_ / network_ alias (declared first so they
  // are destroyed last, after everything scheduled on them).
  std::vector<std::unique_ptr<sim::Environment>> envs_;
  sim::Environment* env_ = nullptr;
  std::unique_ptr<mpeg::VideoLibrary> library_;
  std::unique_ptr<layout::Layout> layout_;
  std::vector<std::unique_ptr<hw::Network>> networks_;
  hw::Network* network_ = nullptr;
  std::unique_ptr<fault::FaultState> fault_state_;
  std::unique_ptr<fault::FaultInjector> fault_injector_;
  std::unique_ptr<AdmissionController> admission_;
  RebuildSink rebuild_sink_;
  std::unique_ptr<server::VideoServer> server_;
  std::unique_ptr<client::StreamShareManager> share_;
  std::unique_ptr<layout::TierRouter> router_;
  std::vector<std::unique_ptr<proxy::ProxyNode>> proxies_;
  std::vector<std::unique_ptr<client::Terminal>> terminals_;
  obs::MetricsRegistry metrics_;
  sim::SimTime measure_start_ = 0.0;
  struct BarrierSampler {
    double interval = 0.0;
    sim::SimTime next = 0.0;
    std::function<void(sim::SimTime)> sample;
  };
  std::vector<BarrierSampler> samplers_;
  // Declared last: destroyed first, joining the worker threads before
  // any component they touch goes away. Null when shards == 1.
  std::unique_ptr<sim::ShardGroup> group_;
};

// Convenience: construct, run, and return the metrics.
SimMetrics RunSimulation(const SimConfig& config);

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_SIMULATION_H_
