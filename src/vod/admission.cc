#include "vod/admission.h"

#include <algorithm>

namespace spiffi::vod {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kOff: return "off";
    case AdmissionPolicy::kStaticReservation: return "static-reservation";
    case AdmissionPolicy::kMeasuredHeadroom: return "measured-headroom";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const AdmissionParams& params)
    : params_(params), live_nodes_(params.num_nodes) {}

double AdmissionController::capacity_bytes_per_sec() const {
  double envelope = static_cast<double>(live_nodes_) *
                    params_.node_bytes_per_sec *
                    params_.headroom_fraction;
  return std::max(0.0, envelope - rebuild_load_total_);
}

bool AdmissionController::Fits() const {
  if (reserved_bytes_per_sec() + params_.stream_bytes_per_sec >
      capacity_bytes_per_sec()) {
    return false;
  }
  if (params_.policy == AdmissionPolicy::kMeasuredHeadroom && probe_) {
    if (probe_() >= params_.headroom_fraction) return false;
  }
  return true;
}

AdmissionController::Decision AdmissionController::TryAdmit(int session) {
  if (admitted_.contains(session)) return Decision::kAdmit;
  if (Fits()) {
    admitted_.insert(session);
    defer_streak_.erase(session);
    ++stats_.admits;
    return Decision::kAdmit;
  }
  int streak = ++defer_streak_[session];
  if (streak > params_.max_defers_before_reject) {
    defer_streak_.erase(session);
    ++stats_.rejects;
    return Decision::kReject;
  }
  ++stats_.defers;
  return Decision::kDefer;
}

void AdmissionController::Release(int session) {
  if (admitted_.erase(session) > 0) ++stats_.releases;
}

AdmissionController::Decision AdmissionController::Readmit(int session) {
  if (admitted_.contains(session)) {
    ++stats_.failover_readmissions;
    return Decision::kAdmit;
  }
  Decision decision = TryAdmit(session);
  if (decision == Decision::kAdmit) ++stats_.failover_readmissions;
  return decision;
}

void AdmissionController::OnNodeDown(int node) {
  (void)node;
  live_nodes_ = std::max(0, live_nodes_ - 1);
}

void AdmissionController::OnNodeUp(int node) {
  (void)node;
  live_nodes_ = std::min(params_.num_nodes, live_nodes_ + 1);
}

void AdmissionController::SetRebuildLoad(int key, double bytes_per_sec) {
  double& slot = rebuild_load_[key];
  rebuild_load_total_ += bytes_per_sec - slot;
  slot = bytes_per_sec;
  if (bytes_per_sec == 0.0) rebuild_load_.erase(key);
  if (rebuild_load_total_ < 0.0) rebuild_load_total_ = 0.0;
}

}  // namespace spiffi::vod
