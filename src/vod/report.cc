#include "vod/report.h"

#include <cmath>
#include <cstdio>

namespace spiffi::vod {

namespace {

// FNV-1a, 64-bit.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

class Digest {
 public:
  void Bytes(const char* data, std::size_t len) {
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= static_cast<unsigned char>(data[i]);
      hash_ *= kFnvPrime;
    }
  }
  // Every field goes through one of these, each terminated by '|' so
  // adjacent fields can never alias ("1","23" vs "12","3").
  void I64(std::int64_t v) {
    char buf[32];
    int n = std::snprintf(buf, sizeof(buf), "%lld|",
                          static_cast<long long>(v));
    Bytes(buf, static_cast<std::size_t>(n));
  }
  void U64(std::uint64_t v) {
    char buf[32];
    int n = std::snprintf(buf, sizeof(buf), "%llu|",
                          static_cast<unsigned long long>(v));
    Bytes(buf, static_cast<std::size_t>(n));
  }
  void F64(double v) {
    char buf[40];
    int n = std::snprintf(buf, sizeof(buf), "%.17g|", v);
    Bytes(buf, static_cast<std::size_t>(n));
  }
  std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = kFnvOffset;
};

void WriteNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

void WriteString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::uint64_t ConfigDigest(const SimConfig& c) {
  Digest d;
  // Hardware.
  d.I64(c.num_nodes);
  d.I64(c.disks_per_node);
  d.F64(c.cpu_mips);
  d.I64(c.cpu_costs.start_io_instructions);
  d.I64(c.cpu_costs.send_message_instructions);
  d.I64(c.cpu_costs.receive_message_instructions);
  d.F64(c.disk.seek_factor_ms);
  d.F64(c.disk.settle_time_ms);
  d.F64(c.disk.rotation_time_ms);
  d.F64(c.disk.transfer_rate_bytes_per_sec);
  d.I64(c.disk.cylinder_bytes);
  d.I64(c.disk.cache_context_bytes);
  d.I64(c.disk.cache_contexts);
  d.I64(c.disk.capacity_bytes);
  d.F64(c.network.wire_delay_base_sec);
  d.F64(c.network.wire_delay_per_byte_sec);
  d.F64(c.network.bandwidth_bucket_sec);
  // Videos.
  d.F64(c.mpeg.frames_per_second);
  d.F64(c.mpeg.bits_per_second);
  d.I64(c.mpeg.i_per_gop);
  d.I64(c.mpeg.p_per_gop);
  d.I64(c.mpeg.b_per_gop);
  d.I64(c.mpeg.i_size_weight);
  d.I64(c.mpeg.p_size_weight);
  d.I64(c.mpeg.b_size_weight);
  d.F64(c.video_seconds);
  d.I64(c.videos_per_disk);
  d.F64(c.zipf_z);
  // Layout.
  d.I64(static_cast<int>(c.placement));
  d.I64(c.stripe_bytes);
  d.I64(c.replica_count);
  // Faults.
  d.I64(static_cast<std::int64_t>(c.fault_plan.script.size()));
  for (const fault::FaultAction& a : c.fault_plan.script) {
    d.F64(a.time);
    d.I64(static_cast<int>(a.kind));
    d.I64(a.target);
    d.F64(a.factor);
  }
  d.F64(c.fault_plan.disk_mtbf_sec);
  d.F64(c.fault_plan.disk_repair_mean_sec);
  d.F64(c.fault_plan.node_mtbf_sec);
  d.F64(c.fault_plan.node_repair_mean_sec);
  d.F64(c.fault_plan.limp_mtbf_sec);
  d.F64(c.fault_plan.limp_duration_mean_sec);
  d.F64(c.fault_plan.limp_factor);
  d.I64(c.fault_plan.reroute_hop_budget);
  d.F64(c.fault_plan.recheck_sec);
  // Server memory & algorithms.
  d.I64(c.server_memory_bytes);
  d.I64(static_cast<int>(c.replacement));
  d.I64(static_cast<int>(c.disk_sched));
  d.I64(c.gss_groups);
  d.I64(c.realtime_classes);
  d.F64(c.realtime_spacing_sec);
  d.I64(static_cast<int>(c.prefetch));
  d.I64(c.prefetch_workers);
  d.I64(static_cast<int>(c.prefetch_trigger));
  d.F64(c.max_advance_prefetch_sec);
  // Terminals.
  d.I64(c.terminals);
  d.I64(c.terminal_memory_bytes);
  d.I64(c.pause_enabled ? 1 : 0);
  d.F64(c.pauses_per_video_mean);
  d.F64(c.pause_duration_mean_sec);
  d.I64(c.search_enabled ? 1 : 0);
  d.F64(c.searches_per_video_mean);
  d.F64(c.search_duration_mean_sec);
  d.F64(c.search_show_sec);
  d.F64(c.search_skip_sec);
  d.F64(c.piggyback_window_sec);
  d.F64(c.patch_window_sec);
  d.F64(c.prefix_cache_fraction);
  d.F64(c.prefix_recompute_sec);
  d.I64(c.proxy_nodes);
  d.I64(c.proxy_cache_pages);
  d.I64(static_cast<int>(c.proxy_policy));
  d.F64(c.proxy_recompute_sec);
  d.I64(c.random_initial_position ? 1 : 0);
  // Resilience.
  d.I64(static_cast<int>(c.admission_policy));
  d.F64(c.admission_headroom);
  d.F64(c.admission_defer_sec);
  d.I64(c.admission_max_defers);
  d.I64(c.request_retry_budget);
  d.F64(c.retry_min_timeout_sec);
  d.F64(c.retry_backoff_base_sec);
  d.F64(c.rebuild_mbps);
  // Sharded kernel.
  d.I64(c.shards);
  // Run control.
  d.F64(c.start_window_sec);
  d.F64(c.warmup_seconds);
  d.F64(c.measure_seconds);
  d.U64(c.seed);
  return d.value();
}

void WriteRunReportJson(std::ostream& out, const RunReport& r) {
  const SimMetrics& m = r.metrics;
  out << "{\"label\":";
  WriteString(out, r.label);
  out << ",\"config\":";
  WriteString(out, r.config_summary);
  char digest[32];
  std::snprintf(digest, sizeof(digest), "%016llx",
                static_cast<unsigned long long>(r.config_digest));
  out << ",\"config_digest\":\"" << digest << '"';
  out << ",\"seed\":" << r.seed;
  out << ",\"terminals\":" << r.terminals;
  out << ",\"sim_seconds\":";
  WriteNumber(out, r.sim_seconds);
  out << ",\"wall_seconds\":";
  WriteNumber(out, r.wall_seconds);
  out << ",\"events_per_sec\":";
  WriteNumber(out, r.events_per_sec);
  out << ",\"metrics\":{";
  out << "\"measured_seconds\":";
  WriteNumber(out, m.measured_seconds);
  out << ",\"glitches\":" << m.glitches;
  out << ",\"terminals_with_glitches\":" << m.terminals_with_glitches;
  out << ",\"avg_response_ms\":";
  WriteNumber(out, m.avg_response_ms);
  out << ",\"p50_response_ms\":";
  WriteNumber(out, m.p50_response_ms);
  out << ",\"p99_response_ms\":";
  WriteNumber(out, m.p99_response_ms);
  out << ",\"avg_disk_utilization\":";
  WriteNumber(out, m.avg_disk_utilization);
  out << ",\"max_disk_utilization\":";
  WriteNumber(out, m.max_disk_utilization);
  out << ",\"avg_cpu_utilization\":";
  WriteNumber(out, m.avg_cpu_utilization);
  out << ",\"buffer_hit_ratio\":";
  WriteNumber(out, m.hit_ratio());
  out << ",\"disk_reads\":" << m.disk_reads;
  out << ",\"frames_displayed\":" << m.frames_displayed;
  out << ",\"videos_completed\":" << m.videos_completed;
  out << ",\"avg_network_bytes_per_sec\":";
  WriteNumber(out, m.avg_network_bytes_per_sec);
  out << ",\"peak_network_bytes_per_sec\":";
  WriteNumber(out, m.peak_network_bytes_per_sec);
  out << ",\"events_simulated\":" << m.events_simulated;
  out << ",\"faults_injected\":" << m.faults_injected;
  out << ",\"proxy_hits\":" << m.proxy_hits;
  out << ",\"proxy_forwards\":" << m.proxy_forwards;
  out << ",\"proxy_offload_ratio\":";
  WriteNumber(out, m.proxy_offload_ratio());
  out << ",\"admission_admits\":" << m.admission_admits;
  out << ",\"admission_rejects\":" << m.admission_rejects;
  out << ",\"admission_defers\":" << m.admission_defers;
  out << ",\"failover_readmissions\":" << m.failover_readmissions;
  out << ",\"request_retries\":" << m.request_retries;
  out << ",\"session_failovers\":" << m.session_failovers;
  out << ",\"rebuilds_completed\":" << m.rebuilds_completed;
  out << ",\"rebuild_sec\":";
  WriteNumber(out, m.rebuild_sec);
  out << ",\"rebuild_bytes\":" << m.rebuild_bytes;
  out << "}";
  out << ",\"telemetry_path\":";
  WriteString(out, r.telemetry_path);
  out << "}\n";
}

}  // namespace spiffi::vod
