// Capacity search: "the maximum number of terminals that a configuration
// can support without glitches" (paper §7.1, Fig 9).
//
// The search evaluates the glitch-free predicate at increasing terminal
// counts (exponential bracketing from a starting guess), then bisects to
// the requested granularity. Replications rerun a point with different
// seeds; a point passes only if every replication is glitch-free.
//
// With jobs > 1 the search runs its probes through a ParallelRunner:
// replications of one point fan out across workers, and the bisection is
// speculative — both possible next probe points of the search's decision
// tree are launched before the current probe resolves, and probes made
// moot by a finished sibling are cancelled. Because each probe is a
// deterministic function of (config, terminals, seed), the speculative
// search walks exactly the serial decision path and returns identical
// results for every job count (locked by tests/vod/runner_test.cc).

#ifndef SPIFFI_VOD_CAPACITY_H_
#define SPIFFI_VOD_CAPACITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "vod/config.h"
#include "vod/metrics.h"

namespace spiffi::vod {

class ParallelRunner;

struct CapacitySearchOptions {
  int min_terminals = 10;
  int max_terminals = 2000;
  int step = 5;          // result granularity
  int start_guess = 100; // first point probed
  int replications = 1;  // seeds per point
  bool verbose = false;  // print each probe to stderr
  // Worker threads for probes and replications: 1 = serial in the
  // calling thread, 0 = DefaultJobs() (SPIFFI_JOBS / hardware
  // concurrency), n > 1 = that many workers with speculative bisection.
  // The result is identical for every value.
  int jobs = 1;
};

struct CapacityResult {
  int max_terminals = 0;  // largest count found glitch-free
  // Every probe on the realized search path, in probe order:
  // (terminal count, total glitches over replications). Speculative
  // probes whose outcome never entered the search are not recorded.
  std::vector<std::pair<int, std::uint64_t>> probes;
  // Replication-aggregated metrics of the final glitch-free probe (at
  // max_terminals); see AggregateReplications().
  SimMetrics at_capacity;
};

// Aggregate of a replication set, computed in replication order (so it
// is deterministic and independent of execution interleaving): counters
// and durations are summed, extremes (min/max/peak utilization and
// bandwidth) take the min/max over the set, and averaged rates are the
// arithmetic mean over replications (all replications run the same
// measurement window). The aggregate of a single replication is that
// replication, bit for bit.
SimMetrics AggregateReplications(const std::vector<SimMetrics>& reps);

// Total glitches at `terminals`, summed over `replications` seeds
// (config.seed, config.seed+1, ...). `out_aggregate` (optional)
// receives the aggregate of all replications — not just the last one.
// `runner` (optional) fans the replications across its workers; the
// result is identical either way.
std::uint64_t GlitchesAt(SimConfig config, int terminals, int replications,
                         SimMetrics* out_aggregate = nullptr,
                         ParallelRunner* runner = nullptr);

CapacityResult FindMaxTerminals(const SimConfig& base,
                                const CapacitySearchOptions& options);

// Glitch counts over a range of terminal counts (paper Fig 9's curve).
// jobs as in CapacitySearchOptions: every (point, replication) pair runs
// concurrently, results are assembled in point order.
std::vector<std::pair<int, std::uint64_t>> GlitchCurve(
    const SimConfig& base, const std::vector<int>& terminal_counts,
    int replications = 1, int jobs = 1);

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_CAPACITY_H_
