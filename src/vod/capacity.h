// Capacity search: "the maximum number of terminals that a configuration
// can support without glitches" (paper §7.1, Fig 9).
//
// The search evaluates the glitch-free predicate at increasing terminal
// counts (exponential bracketing from a starting guess), then bisects to
// the requested granularity. Replications rerun a point with different
// seeds; a point passes only if every replication is glitch-free.

#ifndef SPIFFI_VOD_CAPACITY_H_
#define SPIFFI_VOD_CAPACITY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "vod/config.h"
#include "vod/metrics.h"

namespace spiffi::vod {

struct CapacitySearchOptions {
  int min_terminals = 10;
  int max_terminals = 2000;
  int step = 5;          // result granularity
  int start_guess = 100; // first point probed
  int replications = 1;  // seeds per point
  bool verbose = false;  // print each probe to stderr
};

struct CapacityResult {
  int max_terminals = 0;  // largest count found glitch-free
  // Every probe made: (terminal count, total glitches over replications).
  std::vector<std::pair<int, std::uint64_t>> probes;
  // Metrics of the final glitch-free run (at max_terminals).
  SimMetrics at_capacity;
};

// Total glitches at `terminals`, summed over `replications` seeds
// (config.seed, config.seed+1, ...). `out_last` (optional) receives the
// metrics of the last replication.
std::uint64_t GlitchesAt(SimConfig config, int terminals, int replications,
                         SimMetrics* out_last = nullptr);

CapacityResult FindMaxTerminals(const SimConfig& base,
                                const CapacitySearchOptions& options);

// Glitch counts over a range of terminal counts (paper Fig 9's curve).
std::vector<std::pair<int, std::uint64_t>> GlitchCurve(
    const SimConfig& base, const std::vector<int>& terminal_counts,
    int replications = 1);

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_CAPACITY_H_
