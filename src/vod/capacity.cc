#include "vod/capacity.h"

#include <algorithm>
#include <cstdio>

#include "sim/check.h"
#include "vod/simulation.h"

namespace spiffi::vod {

std::uint64_t GlitchesAt(SimConfig config, int terminals, int replications,
                         SimMetrics* out_last) {
  std::uint64_t total = 0;
  std::uint64_t base_seed = config.seed;
  config.terminals = terminals;
  for (int r = 0; r < replications; ++r) {
    config.seed = base_seed + static_cast<std::uint64_t>(r);
    SimMetrics metrics = RunSimulation(config);
    total += metrics.glitches;
    if (out_last != nullptr) *out_last = metrics;
  }
  return total;
}

CapacityResult FindMaxTerminals(const SimConfig& base,
                                const CapacitySearchOptions& options) {
  SPIFFI_CHECK(options.step > 0);
  SPIFFI_CHECK(options.min_terminals > 0);
  SPIFFI_CHECK(options.max_terminals >= options.min_terminals);

  CapacityResult result;
  auto probe = [&](int terminals, SimMetrics* out) -> std::uint64_t {
    std::uint64_t glitches =
        GlitchesAt(base, terminals, options.replications, out);
    result.probes.emplace_back(terminals, glitches);
    if (options.verbose) {
      std::fprintf(stderr, "  probe %4d terminals: %llu glitches\n",
                   terminals, static_cast<unsigned long long>(glitches));
    }
    return glitches;
  };

  // Exponential bracketing from the starting guess.
  int guess = std::clamp(options.start_guess, options.min_terminals,
                         options.max_terminals);
  int known_good = 0;
  int known_bad = 0;  // 0 = none found yet
  SimMetrics good_metrics;

  int current = guess;
  for (;;) {
    SimMetrics metrics;
    std::uint64_t glitches = probe(current, &metrics);
    if (glitches == 0) {
      known_good = current;
      good_metrics = metrics;
      if (current >= options.max_terminals) break;
      if (known_bad != 0) break;
      current = std::min(current * 2, options.max_terminals);
    } else {
      known_bad = current;
      if (current <= options.min_terminals) break;
      if (known_good != 0) break;
      current = std::max(current / 2, options.min_terminals);
    }
  }

  // Bisect (known_good, known_bad) to the step granularity.
  if (known_good != 0 && known_bad != 0) {
    int lo = known_good;
    int hi = known_bad;
    while (hi - lo > options.step) {
      int mid = lo + (hi - lo) / 2;
      SimMetrics metrics;
      if (probe(mid, &metrics) == 0) {
        lo = mid;
        good_metrics = metrics;
      } else {
        hi = mid;
      }
    }
    known_good = lo;
  }

  result.max_terminals = known_good;
  result.at_capacity = good_metrics;
  return result;
}

std::vector<std::pair<int, std::uint64_t>> GlitchCurve(
    const SimConfig& base, const std::vector<int>& terminal_counts,
    int replications) {
  std::vector<std::pair<int, std::uint64_t>> curve;
  curve.reserve(terminal_counts.size());
  for (int terminals : terminal_counts) {
    curve.emplace_back(terminals,
                       GlitchesAt(base, terminals, replications));
  }
  return curve;
}

}  // namespace spiffi::vod
