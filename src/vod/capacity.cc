#include "vod/capacity.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "sim/check.h"
#include "vod/runner.h"
#include "vod/simulation.h"

namespace spiffi::vod {

namespace {

// The capacity search as an explicit decision machine: NextProbe() names
// the terminal count the search must evaluate next, Advance() folds in
// the glitch-free verdict. The serial driver and the speculative
// parallel driver both walk exactly this machine, so they probe the same
// realized path and return identical results.
struct SearchState {
  enum class Phase { kBracket, kBisect, kDone };

  explicit SearchState(const CapacitySearchOptions& opts) : options(&opts) {
    current = std::clamp(opts.start_guess, opts.min_terminals,
                         opts.max_terminals);
  }

  // Terminal count of the next probe; -1 once the search is finished.
  int NextProbe() const {
    switch (phase) {
      case Phase::kBracket:
        return current;
      case Phase::kBisect:
        return lo + (hi - lo) / 2;
      case Phase::kDone:
        return -1;
    }
    return -1;
  }

  void Advance(bool glitch_free) {
    int probed = NextProbe();
    SPIFFI_DCHECK(probed > 0);
    if (phase == Phase::kBracket) {
      if (glitch_free) {
        known_good = probed;
        if (probed >= options->max_terminals) {
          phase = Phase::kDone;
        } else if (known_bad != 0) {
          BeginBisect();
        } else {
          current = std::min(probed * 2, options->max_terminals);
        }
      } else {
        known_bad = probed;
        if (probed <= options->min_terminals) {
          phase = Phase::kDone;
        } else if (known_good != 0) {
          BeginBisect();
        } else {
          current = std::max(probed / 2, options->min_terminals);
        }
      }
    } else {  // Phase::kBisect
      if (glitch_free) {
        known_good = probed;
        lo = probed;
      } else {
        hi = probed;
      }
      if (hi - lo <= options->step) phase = Phase::kDone;
    }
  }

  void BeginBisect() {
    lo = known_good;
    hi = known_bad;
    phase = hi - lo <= options->step ? Phase::kDone : Phase::kBisect;
  }

  Phase phase = Phase::kBracket;
  int current = 0;     // next probe point while bracketing
  int known_good = 0;  // largest count probed glitch-free (0 = none)
  int known_bad = 0;   // a count that glitched (0 = none)
  int lo = 0, hi = 0;  // bisection bracket
  const CapacitySearchOptions* options;
};

// Breadth-first expansion of the search's decision tree from `state`:
// returns up to `budget` distinct probe points, nearest-to-realization
// first. The first entry is the state's own NextProbe(); deeper entries
// are the points the search would need under either verdict of the
// shallower ones — the speculation frontier.
std::vector<int> SpeculativePoints(const SearchState& state, int budget) {
  std::vector<int> points;
  std::set<int> seen;
  std::vector<SearchState> frontier = {state};
  while (!frontier.empty() &&
         static_cast<int>(points.size()) < budget) {
    std::vector<SearchState> next;
    for (const SearchState& s : frontier) {
      int t = s.NextProbe();
      if (t < 0) continue;
      if (seen.insert(t).second) {
        points.push_back(t);
        if (static_cast<int>(points.size()) >= budget) return points;
      }
      SearchState on_good = s;
      on_good.Advance(true);
      next.push_back(on_good);
      SearchState on_bad = s;
      on_bad.Advance(false);
      next.push_back(on_bad);
    }
    frontier = std::move(next);
  }
  return points;
}

// Replication configs for one probe point, in replication order.
std::vector<SimConfig> ReplicationConfigs(SimConfig config, int terminals,
                                          int replications) {
  std::uint64_t base_seed = config.seed;
  config.terminals = terminals;
  std::vector<SimConfig> configs;
  configs.reserve(replications);
  for (int r = 0; r < replications; ++r) {
    config.seed = base_seed + static_cast<std::uint64_t>(r);
    configs.push_back(config);
  }
  return configs;
}

std::uint64_t SumGlitches(const std::vector<SimMetrics>& reps) {
  std::uint64_t total = 0;
  for (const SimMetrics& m : reps) total += m.glitches;
  return total;
}

struct ProbeOutcome {
  std::uint64_t glitches = 0;
  SimMetrics aggregate;
};

// Speculative parallel search: keeps the runner fed with the probes the
// search may need next, cancels the ones a resolved sibling made moot,
// and consumes outcomes strictly along the realized decision path.
CapacityResult FindMaxTerminalsParallel(const SimConfig& base,
                                        const CapacitySearchOptions& options,
                                        int jobs) {
  ParallelRunner runner(jobs);
  SearchState state(options);
  CapacityResult result;
  SimMetrics good_metrics;

  // Outstanding probe budget: enough points to occupy every worker with
  // `replications` runs each, and always at least one speculative probe
  // beyond the realized one.
  int budget =
      std::max(2, (jobs + options.replications - 1) / options.replications);

  std::map<int, std::vector<ParallelRunner::RunHandle>> inflight;

  while (state.phase != SearchState::Phase::kDone) {
    std::vector<int> wanted = SpeculativePoints(state, budget);
    SPIFFI_CHECK(!wanted.empty());
    SPIFFI_CHECK(wanted.front() == state.NextProbe());

    for (int t : wanted) {
      if (inflight.count(t) != 0) continue;
      std::vector<ParallelRunner::RunHandle>& runs = inflight[t];
      for (const SimConfig& config :
           ReplicationConfigs(base, t, options.replications)) {
        runs.push_back(runner.Submit(config));
      }
    }
    // Anything inflight the (re)expanded tree no longer contains was made
    // moot by the last verdict: stop it.
    std::set<int> wanted_set(wanted.begin(), wanted.end());
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (wanted_set.count(it->first) == 0) {
        for (const ParallelRunner::RunHandle& run : it->second) {
          runner.Cancel(run);
        }
        it = inflight.erase(it);
      } else {
        ++it;
      }
    }

    int t = wanted.front();
    std::vector<SimMetrics> reps;
    reps.reserve(options.replications);
    for (const ParallelRunner::RunHandle& run : inflight.at(t)) {
      SimMetrics metrics;
      bool completed = runner.Wait(run, &metrics);
      SPIFFI_CHECK(completed);  // realized probes are never cancelled
      reps.push_back(metrics);
    }
    inflight.erase(t);

    ProbeOutcome outcome;
    outcome.glitches = SumGlitches(reps);
    outcome.aggregate = AggregateReplications(reps);
    result.probes.emplace_back(t, outcome.glitches);
    if (options.verbose) {
      std::fprintf(stderr, "  probe %4d terminals: %llu glitches\n", t,
                   static_cast<unsigned long long>(outcome.glitches));
    }
    if (outcome.glitches == 0) good_metrics = outcome.aggregate;
    state.Advance(outcome.glitches == 0);
  }
  // Leftover speculative probes are cancelled by the runner's destructor.

  result.max_terminals = state.known_good;
  result.at_capacity = good_metrics;
  return result;
}

}  // namespace

SimMetrics AggregateReplications(const std::vector<SimMetrics>& reps) {
  SPIFFI_CHECK(!reps.empty());
  SimMetrics a = reps.front();
  double n = static_cast<double>(reps.size());
  for (std::size_t i = 1; i < reps.size(); ++i) {
    const SimMetrics& m = reps[i];
    // Counters and durations: sum.
    a.measured_seconds += m.measured_seconds;
    a.glitches += m.glitches;
    a.terminals_with_glitches += m.terminals_with_glitches;
    a.buffer_references += m.buffer_references;
    a.buffer_hits += m.buffer_hits;
    a.buffer_attaches += m.buffer_attaches;
    a.buffer_misses += m.buffer_misses;
    a.shared_references += m.shared_references;
    a.wasted_prefetches += m.wasted_prefetches;
    a.prefetches_issued += m.prefetches_issued;
    a.disk_reads += m.disk_reads;
    a.frames_displayed += m.frames_displayed;
    a.videos_completed += m.videos_completed;
    a.events_simulated += m.events_simulated;
    a.faults_injected += m.faults_injected;
    a.repairs_completed += m.repairs_completed;
    a.fault_downtime_sec += m.fault_downtime_sec;
    a.rerouted_requests += m.rerouted_requests;
    a.degraded_waits += m.degraded_waits;
    a.prefetches_skipped_dead += m.prefetches_skipped_dead;
    a.requests_redirected += m.requests_redirected;
    a.blocks_rerouted += m.blocks_rerouted;
    // Averaged rates: accumulate, normalized below.
    a.avg_disk_utilization += m.avg_disk_utilization;
    a.avg_cpu_utilization += m.avg_cpu_utilization;
    a.avg_network_bytes_per_sec += m.avg_network_bytes_per_sec;
    a.avg_disk_service_ms += m.avg_disk_service_ms;
    a.avg_seek_cylinders += m.avg_seek_cylinders;
    a.avg_response_ms += m.avg_response_ms;
    a.p50_response_ms += m.p50_response_ms;
    a.p99_response_ms += m.p99_response_ms;
    a.mttr_sec += m.mttr_sec;
    // Extremes: min/max over the set.
    a.min_disk_utilization =
        std::min(a.min_disk_utilization, m.min_disk_utilization);
    a.max_disk_utilization =
        std::max(a.max_disk_utilization, m.max_disk_utilization);
    a.peak_network_bytes_per_sec =
        std::max(a.peak_network_bytes_per_sec, m.peak_network_bytes_per_sec);
  }
  a.avg_disk_utilization /= n;
  a.avg_cpu_utilization /= n;
  a.avg_network_bytes_per_sec /= n;
  a.avg_disk_service_ms /= n;
  a.avg_seek_cylinders /= n;
  a.avg_response_ms /= n;
  a.p50_response_ms /= n;
  a.p99_response_ms /= n;
  a.mttr_sec /= n;
  return a;
}

std::uint64_t GlitchesAt(SimConfig config, int terminals, int replications,
                         SimMetrics* out_aggregate, ParallelRunner* runner) {
  SPIFFI_CHECK(replications > 0);
  std::vector<SimConfig> configs =
      ReplicationConfigs(config, terminals, replications);
  std::vector<SimMetrics> reps;
  reps.reserve(replications);
  if (runner != nullptr) {
    reps = runner->RunAll(configs);
  } else {
    for (const SimConfig& replication : configs) {
      reps.push_back(RunSimulation(replication));
    }
  }
  if (out_aggregate != nullptr) *out_aggregate = AggregateReplications(reps);
  return SumGlitches(reps);
}

CapacityResult FindMaxTerminals(const SimConfig& base,
                                const CapacitySearchOptions& options) {
  SPIFFI_CHECK(options.step > 0);
  SPIFFI_CHECK(options.min_terminals > 0);
  SPIFFI_CHECK(options.max_terminals >= options.min_terminals);
  SPIFFI_CHECK(options.replications > 0);

  int jobs = options.jobs == 1 ? 1 : ResolveJobs(options.jobs);
  if (jobs > 1) return FindMaxTerminalsParallel(base, options, jobs);

  SearchState state(options);
  CapacityResult result;
  SimMetrics good_metrics;
  while (state.phase != SearchState::Phase::kDone) {
    int t = state.NextProbe();
    SimMetrics aggregate;
    std::uint64_t glitches =
        GlitchesAt(base, t, options.replications, &aggregate);
    result.probes.emplace_back(t, glitches);
    if (options.verbose) {
      std::fprintf(stderr, "  probe %4d terminals: %llu glitches\n", t,
                   static_cast<unsigned long long>(glitches));
    }
    if (glitches == 0) good_metrics = aggregate;
    state.Advance(glitches == 0);
  }
  result.max_terminals = state.known_good;
  result.at_capacity = good_metrics;
  return result;
}

std::vector<std::pair<int, std::uint64_t>> GlitchCurve(
    const SimConfig& base, const std::vector<int>& terminal_counts,
    int replications, int jobs) {
  std::vector<std::pair<int, std::uint64_t>> curve;
  curve.reserve(terminal_counts.size());
  int resolved = jobs == 1 ? 1 : ResolveJobs(jobs);
  if (resolved > 1 && terminal_counts.size() * replications > 1) {
    // Every (point, replication) pair is independent: fan the whole grid
    // out at once and assemble per-point sums in submission order.
    ParallelRunner runner(resolved);
    std::vector<SimConfig> configs;
    configs.reserve(terminal_counts.size() * replications);
    for (int terminals : terminal_counts) {
      for (const SimConfig& config :
           ReplicationConfigs(base, terminals, replications)) {
        configs.push_back(config);
      }
    }
    std::vector<SimMetrics> all = runner.RunAll(configs);
    std::size_t index = 0;
    for (int terminals : terminal_counts) {
      std::uint64_t total = 0;
      for (int r = 0; r < replications; ++r) total += all[index++].glitches;
      curve.emplace_back(terminals, total);
    }
    return curve;
  }
  for (int terminals : terminal_counts) {
    curve.emplace_back(terminals,
                       GlitchesAt(base, terminals, replications));
  }
  return curve;
}

}  // namespace spiffi::vod
