// Session admission control: the service-envelope gate in front of the
// terminals (ISSUE 9, after the INRIA bounds framing in PAPERS.md).
//
// A stream that is admitted is promised glitch-free service, so the
// controller reserves the stream's steady-state disk bandwidth against
// the cluster's aggregate envelope at session start and releases it when
// the video finishes. When the reservation does not fit — because the
// cluster is full, nodes are down, or a post-repair rebuild is eating
// bandwidth — the session is deferred (retry later) and, after too many
// consecutive deferrals, rejected outright so the terminal backs off for
// a long cooldown instead of hammering the gate.
//
// Two active policies share the bookkeeping:
//   * static-reservation — admit while reserved + new <= headroom *
//     capacity, pure arithmetic over configured rates.
//   * measured-headroom  — additionally consult a live utilization probe
//     (mean disk utilization installed by the Simulation) and defer when
//     the measured load is already at the headroom cap, even if the
//     static books say there is room. Catches envelope violations the
//     static model cannot see (degraded-mode reroutes, rebuild traffic,
//     VCR churn).
//
// Sessions admitted before a node failure are grandfathered: the
// capacity shrink applies to future admissions only, and a failover
// re-admission of an already-admitted session always succeeds (the
// bandwidth is already reserved; only the serving node changed).
//
// The controller is pure deterministic bookkeeping — no events, no
// randomness — so runs stay bit-identical at any --jobs N. This header
// is a leaf (std headers only): client/terminal.h and vod/config.h both
// reach it without cycles.

#ifndef SPIFFI_VOD_ADMISSION_H_
#define SPIFFI_VOD_ADMISSION_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>

namespace spiffi::vod {

enum class AdmissionPolicy { kOff, kStaticReservation, kMeasuredHeadroom };

const char* AdmissionPolicyName(AdmissionPolicy policy);

struct AdmissionParams {
  AdmissionPolicy policy = AdmissionPolicy::kOff;
  int num_nodes = 0;
  // Aggregate sustainable disk read bandwidth of one healthy node
  // (bytes/sec); the cluster envelope is the sum over live nodes.
  double node_bytes_per_sec = 0.0;
  // Steady-state delivery rate one admitted stream reserves (bytes/sec).
  double stream_bytes_per_sec = 0.0;
  // Fraction of the envelope admissions may fill; the rest absorbs seek
  // overhead, prefetch, and degraded-mode reroutes.
  double headroom_fraction = 0.85;
  // Consecutive deferrals of one session before it is rejected.
  int max_defers_before_reject = 8;
};

class AdmissionController {
 public:
  enum class Decision { kAdmit, kDefer, kReject };

  explicit AdmissionController(const AdmissionParams& params);

  // Asks for a session slot. Admitting is idempotent: a session already
  // holding a reservation is re-confirmed without reserving twice.
  Decision TryAdmit(int session);

  // Returns the session's reservation to the pool (no-op if absent).
  void Release(int session);

  // Failover re-admission: the session keeps its reservation and is
  // re-confirmed against the surviving nodes. Always admits sessions
  // that were already admitted (grandfathering); a session that somehow
  // lost its slot goes through the normal gate.
  Decision Readmit(int session);

  // Capacity tracking driven by the fault effect handler.
  void OnNodeDown(int node);
  void OnNodeUp(int node);
  // Bandwidth one post-repair rebuild is currently consuming (0 clears
  // it); the total over all keys is subtracted from the envelope. Keyed
  // by the rebuilding disk (any distinct int works) so concurrent
  // rebuilds — e.g. every disk of a recovered node — accumulate instead
  // of overwriting each other.
  void SetRebuildLoad(int key, double bytes_per_sec);

  // measured-headroom only: returns current utilization in [0, 1];
  // admissions defer while probe() >= headroom_fraction.
  void set_utilization_probe(std::function<double()> probe) {
    probe_ = std::move(probe);
  }

  struct Stats {
    std::int64_t admits = 0;
    std::int64_t rejects = 0;
    std::int64_t defers = 0;
    std::int64_t releases = 0;
    std::int64_t failover_readmissions = 0;
  };
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats{}; }

  int active_sessions() const {
    return static_cast<int>(admitted_.size());
  }
  double reserved_bytes_per_sec() const {
    return static_cast<double>(admitted_.size()) *
           params_.stream_bytes_per_sec;
  }
  // Current envelope: live nodes x per-node bandwidth x headroom, minus
  // rebuild traffic. Never negative.
  double capacity_bytes_per_sec() const;

 private:
  bool Fits() const;

  AdmissionParams params_;
  int live_nodes_;
  double rebuild_load_total_ = 0.0;
  std::unordered_map<int, double> rebuild_load_;  // disk -> bytes/sec
  std::unordered_set<int> admitted_;
  std::unordered_map<int, int> defer_streak_;  // session -> consecutive
  std::function<double()> probe_;
  Stats stats_;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_ADMISSION_H_
