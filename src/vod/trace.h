// Time-series tracing: samples system state at a fixed simulated-time
// interval while a Simulation runs, for plotting transient behaviour
// (warmup, saturation onset, glitch storms).
//
//   vod::Simulation sim(config);
//   vod::TraceRecorder trace(&sim, /*interval=*/1.0);
//   sim.Run();
//   trace.WriteCsv(std::cout);
//
// The recorder must be constructed before the simulation runs; it spawns
// a sampling process into the simulation's environment.

#ifndef SPIFFI_VOD_TRACE_H_
#define SPIFFI_VOD_TRACE_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/process.h"
#include "vod/simulation.h"

namespace spiffi::vod {

struct TraceSample {
  double time = 0.0;
  int disks_busy = 0;          // disks servicing a request right now
  int total_disks = 0;
  double disk_queue_avg = 0.0; // mean disk queue length
  int cpus_busy = 0;
  std::uint64_t glitches = 0;  // cumulative terminal glitches
  int terminals_priming = 0;   // terminals (re)filling buffers
  int terminals_playing = 0;
  std::int64_t pool_pages_in_use = 0;  // summed over nodes
  std::uint64_t network_bytes = 0;     // since the previous sample
};

class TraceRecorder {
 public:
  // Samples every `interval_sec` of simulated time until the simulation
  // stops. Construct after the Simulation, before running it.
  TraceRecorder(Simulation* simulation, double interval_sec);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const std::vector<TraceSample>& samples() const { return samples_; }

  // Writes a CSV with a header row.
  void WriteCsv(std::ostream& out) const;

 private:
  sim::Process Sampler(double interval_sec);
  TraceSample Capture();

  Simulation* simulation_;
  std::vector<TraceSample> samples_;
  std::uint64_t last_network_bytes_ = 0;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_TRACE_H_
