// Legacy time-series tracing view, kept for compatibility: samples
// system state at a fixed simulated-time interval while a Simulation
// runs, for plotting transient behaviour (warmup, saturation onset,
// glitch storms).
//
//   vod::Simulation sim(config);
//   vod::TraceRecorder trace(&sim, /*interval=*/1.0);
//   sim.Run();
//   trace.WriteCsv(std::cout);
//
// TraceRecorder is now a thin adapter over the streaming telemetry
// subsystem (vod/telemetry.h): the channels it reads are registered in
// an obs::TimeSeries and sampled by TelemetryRecorder's sim-process
// sampler; this class only re-shapes the retained snapshots into the
// historical CSV layout. New code should use TelemetryRecorder
// directly — it exposes more channels, JSONL streaming, and bounded
// ring retention.
//
// Counter semantics are explicit: cumulative readings carry a `_total`
// suffix and per-interval changes a `_delta` suffix, both in the sample
// struct and the CSV header (the pre-telemetry recorder mixed a
// cumulative `glitches` with a per-interval `network_bytes`).
//
// The recorder must be constructed before the simulation runs; it spawns
// a sampling process into the simulation's environment.

#ifndef SPIFFI_VOD_TRACE_H_
#define SPIFFI_VOD_TRACE_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "vod/telemetry.h"

namespace spiffi::vod {

struct TraceSample {
  double time = 0.0;
  int disks_busy = 0;          // disks servicing a request right now
  int total_disks = 0;
  double disk_queue_avg = 0.0; // mean disk queue length
  int cpus_busy = 0;
  std::uint64_t glitches_total = 0;  // cumulative terminal glitches
  std::uint64_t glitches_delta = 0;  // glitches since the previous sample
  int terminals_priming = 0;   // terminals (re)filling buffers
  int terminals_playing = 0;
  std::int64_t pool_pages_in_use = 0;      // summed over nodes
  std::uint64_t network_bytes_total = 0;   // cumulative network traffic
  std::uint64_t network_bytes_delta = 0;   // since the previous sample
};

class TraceRecorder {
 public:
  // Samples every `interval_sec` of simulated time until the simulation
  // stops. Construct after the Simulation, before running it.
  TraceRecorder(Simulation* simulation, double interval_sec);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Snapshots re-shaped into the legacy sample struct (built on demand
  // from the underlying time series).
  std::vector<TraceSample> samples() const;

  // The backing telemetry channels (JSONL export, extra channels).
  const obs::TimeSeries& series() const { return telemetry_.series(); }

  // Writes a CSV with a header row.
  void WriteCsv(std::ostream& out) const;

 private:
  TelemetryRecorder telemetry_;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_TRACE_H_
