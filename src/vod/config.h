// Simulation configuration: every Table-1 parameter plus the algorithm
// selections compared in §7.

#ifndef SPIFFI_VOD_CONFIG_H_
#define SPIFFI_VOD_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "client/terminal.h"
#include "fault/plan.h"
#include "vod/admission.h"
#include "hw/cpu.h"
#include "hw/disk_params.h"
#include "hw/network.h"
#include "mpeg/frame_model.h"
#include "proxy/proxy_cache.h"
#include "server/buffer_pool.h"
#include "server/disk_sched.h"
#include "server/prefetch.h"

namespace spiffi::vod {

// kReplicatedStriped stores `replica_count` chained-declustered copies
// of every stripe block (layout::ReplicatedStripedLayout); the extra
// copies only matter when a FaultPlan takes disks or nodes down.
enum class VideoPlacement { kStriped, kNonStriped, kReplicatedStriped };

struct SimConfig {
  // --- Hardware (Table 1 defaults) ---
  int num_nodes = 4;
  int disks_per_node = 4;
  double cpu_mips = 40.0;
  hw::CpuCosts cpu_costs;
  hw::DiskParams disk;
  hw::NetworkParams network;

  // --- Videos ---
  mpeg::MpegParams mpeg;
  double video_seconds = 3600.0;  // one-hour videos
  int videos_per_disk = 4;        // library size = 4 x total disks
  double zipf_z = 1.0;            // 0 => uniform popularity

  // --- Layout ---
  VideoPlacement placement = VideoPlacement::kStriped;
  std::int64_t stripe_bytes = 512 * hw::kKiB;  // also the read size
  int replica_count = 2;  // kReplicatedStriped only; 2 <= ... <= nodes

  // --- Faults ---
  // Empty (the default) runs with the fault subsystem disabled and is
  // bit-identical to a configuration predating it.
  fault::FaultPlan fault_plan;

  // --- Server memory & algorithms ---
  std::int64_t server_memory_bytes = 4LL * hw::kGiB;  // aggregate
  server::ReplacementPolicy replacement =
      server::ReplacementPolicy::kGlobalLru;
  server::DiskSchedPolicy disk_sched = server::DiskSchedPolicy::kElevator;
  int gss_groups = 1;
  int realtime_classes = 3;
  double realtime_spacing_sec = 4.0;
  server::PrefetchPolicy prefetch = server::PrefetchPolicy::kFifo;
  // <= 0 selects the per-policy default: 1 worker per disk for the
  // non-real-time schedulers (prefetching "severely limited" so it does
  // not interfere with real requests) and 64 for real-time scheduling
  // (aggressive, effectively unconstrained prefetching — the real-time
  // scheduler can park prefetches at low priority), per §7.3.
  int prefetch_workers = 0;
  // kAuto mirrors the paper's per-scheduler prefetch configuration:
  // on-miss (limited) for elevator/GSS/round-robin, on-reference
  // (aggressive) for real-time scheduling.
  enum class TriggerMode { kAuto, kOnMiss, kOnReference };
  TriggerMode prefetch_trigger = TriggerMode::kAuto;
  double max_advance_prefetch_sec = 8.0;

  // --- Terminals ---
  int terminals = 200;
  std::int64_t terminal_memory_bytes = 2 * hw::kMiB;
  bool pause_enabled = false;
  double pauses_per_video_mean = 2.0;
  double pause_duration_mean_sec = 120.0;
  // Visual search (§8.1): skip-based fast-forward/rewind.
  bool search_enabled = false;
  double searches_per_video_mean = 1.0;
  double search_duration_mean_sec = 30.0;
  double search_show_sec = 1.0;
  double search_skip_sec = 7.0;
  double piggyback_window_sec = 0.0;  // batching window; 0 => disabled
  // Stream sharing (client/stream_share.h): terminals arriving up to
  // patch_window_sec after a shared stream started join it anyway,
  // fetching only the missed prefix over a short unicast catch-up
  // stream. 0 disables patching; batching and patching are independent.
  double patch_window_sec = 0.0;
  // Pinned prefix cache: each node pins up to this fraction of its
  // buffer pool on the first blocks of popular videos (sized by
  // measured demand, refreshed every prefix_recompute_sec), so patch
  // streams and new groups start from memory. 0 disables.
  double prefix_cache_fraction = 0.0;
  double prefix_recompute_sec = 30.0;
  // --- Proxy tier (proxy/proxy_node.h) ---
  // Proxy-cache nodes between the terminals and the origin cluster.
  // Terminals route every request to their assigned proxy (terminal %
  // proxy_nodes); hits are served there, misses forwarded to the origin.
  // 0 disables the tier (flat topology, bit-identical to before).
  int proxy_nodes = 0;
  std::int64_t proxy_cache_pages = 256;  // per proxy, in stripe blocks
  proxy::ProxyPolicy proxy_policy = proxy::ProxyPolicy::kLru;
  double proxy_recompute_sec = 30.0;  // popularity re-rank/re-quota period
  // First videos start at random playback positions (steady-state
  // initialization); disabled automatically when stream sharing is on.
  bool random_initial_position = true;
  bool stream_sharing_enabled() const {
    return piggyback_window_sec > 0.0 || patch_window_sec > 0.0;
  }

  // --- Resilience (vod/admission.h, ISSUE 9) ---
  // Session admission control: kOff (default) admits everyone and stays
  // bit-identical to configurations predating it; static-reservation
  // reserves each stream's steady rate against the live-node envelope;
  // measured-headroom additionally defers while measured mean disk
  // utilization is at the headroom cap.
  AdmissionPolicy admission_policy = AdmissionPolicy::kOff;
  // Fraction of the aggregate disk envelope admissions may fill.
  double admission_headroom = 0.85;
  // A deferred session retries after this delay (doubling per
  // consecutive deferral, capped at 16x; a rejection waits the full
  // 16x cooldown before trying again).
  double admission_defer_sec = 2.0;
  // Consecutive deferrals of one session before it is rejected.
  int admission_max_defers = 8;
  // Block-request timeout/retry: when > 0, each outstanding block
  // request arms a deadline-derived timeout and is retried against the
  // next live replica up to this many times with bounded exponential
  // backoff. 0 (default) keeps today's wait-until-glitch behaviour and
  // is bit-identical to it.
  int request_retry_budget = 0;
  double retry_min_timeout_sec = 0.25;   // floor on the first timeout
  double retry_backoff_base_sec = 0.25;  // doubled per retry attempt
  // Post-repair rebuild: a repaired disk re-reads its stripe regions
  // from replica peers at this throttled rate (competing with service
  // I/O) before it counts as fully restored. 0 disables; only
  // replicated layouts have peers to rebuild from.
  double rebuild_mbps = 0.0;

  // --- Sharded kernel (sim/shard.h) ---
  // Number of per-core event-loop shards one run is partitioned into.
  // 1 (the default) is the proven single-calendar path. N > 1 assigns
  // server node n to shard n % shards, proxy p to shard p % shards, and
  // each terminal to its ingress proxy's shard (or terminal % shards in
  // a flat topology); cross-shard messages synchronize conservatively
  // on the network's base wire delay, and results are bit-identical at
  // any shard count. Subsystems that reach across nodes outside the
  // message layer (stream sharing, admission control, fault injection)
  // require shards = 1 — Validate enforces this.
  int shards = 1;

  // --- Run control ---
  // Terminals start at uniform random times in [0, start_window_sec);
  // statistics collection begins at warmup_seconds (>= start window) and
  // runs for measure_seconds.
  double start_window_sec = 60.0;
  double warmup_seconds = 100.0;
  double measure_seconds = 120.0;
  std::uint64_t seed = 1;

  // --- Derived ---
  int total_disks() const { return num_nodes * disks_per_node; }
  int num_videos() const { return videos_per_disk * total_disks(); }
  // Expected peak of simultaneously pending calendar events, used to
  // pre-size the kernel's event heap (Environment::ReserveCalendar) so a
  // steady-state run never reallocates it. Each terminal keeps a handful
  // of events in flight (frame timer, outstanding request, wait-list
  // timer + its pending notification); disks, prefetch workers, and the
  // per-node machinery add a few each. Generously rounded up — entries
  // are ~40 bytes, so over-reserving is cheap and under-reserving costs
  // mid-run reallocation.
  std::size_t expected_peak_events() const {
    return static_cast<std::size_t>(terminals) * 8 +
           static_cast<std::size_t>(total_disks()) * 16 +
           static_cast<std::size_t>(num_nodes) *
               (static_cast<std::size_t>(effective_prefetch_workers()) + 8) +
           1024;
  }
  std::int64_t pool_pages_per_node() const {
    return server_memory_bytes / num_nodes / stripe_bytes;
  }
  int effective_prefetch_workers() const {
    if (prefetch_workers > 0) return prefetch_workers;
    return disk_sched == server::DiskSchedPolicy::kRealTime ? 64 : 1;
  }
  server::PrefetchTrigger effective_prefetch_trigger() const {
    switch (prefetch_trigger) {
      case TriggerMode::kOnMiss:
        return server::PrefetchTrigger::kOnMiss;
      case TriggerMode::kOnReference:
        return server::PrefetchTrigger::kOnReference;
      case TriggerMode::kAuto:
        break;
    }
    return disk_sched == server::DiskSchedPolicy::kRealTime
               ? server::PrefetchTrigger::kOnReference
               : server::PrefetchTrigger::kOnMiss;
  }

  // Returns an empty string when the configuration is usable, else a
  // human-readable description of the first problem found.
  std::string Validate() const;

  // One-line summary of the algorithm selections (for reports).
  std::string Describe() const;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_CONFIG_H_
