#include "vod/runner.h"

#include <chrono>
#include <cstdlib>
#include <utility>

#include "sim/check.h"
#include "vod/simulation.h"

namespace spiffi::vod {

int DefaultJobs() {
  const char* env = std::getenv("SPIFFI_JOBS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ResolveJobs(int jobs) { return jobs >= 1 ? jobs : DefaultJobs(); }

ParallelRunner::ParallelRunner(int jobs) : jobs_(ResolveJobs(jobs)) {
  workers_.reserve(jobs_);
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    // Pending runs never start; running ones see their cancel flag at the
    // next slice boundary.
    for (const RunHandle& run : queue_) {
      run->cancel.store(true, std::memory_order_relaxed);
    }
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers are gone: mark whatever they never picked up as cancelled so
  // stray Wait() calls cannot block forever.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RunHandle& run : queue_) {
      if (run->state == Run::State::kPending) {
        run->state = Run::State::kCancelled;
        ++stats_.cancelled;
      }
    }
    queue_.clear();
  }
  run_finished_.notify_all();
}

ParallelRunner::RunHandle ParallelRunner::Submit(const SimConfig& config) {
  RunHandle run = std::make_shared<Run>();
  run->config = config;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SPIFFI_CHECK(!shutdown_);
    queue_.push_back(run);
  }
  work_available_.notify_one();
  return run;
}

void ParallelRunner::Cancel(const RunHandle& run) {
  SPIFFI_CHECK(run != nullptr);
  run->cancel.store(true, std::memory_order_relaxed);
  bool retired = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (run->state == Run::State::kPending) {
      // Retire it right away rather than making a worker pop-and-skip it.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == run) {
          queue_.erase(it);
          break;
        }
      }
      run->state = Run::State::kCancelled;
      ++stats_.cancelled;
      retired = true;
    }
    // A running run stops at its next slice; its worker notifies waiters.
  }
  if (retired) run_finished_.notify_all();
}

bool ParallelRunner::Wait(const RunHandle& run, SimMetrics* out,
                          double* wall_seconds) {
  SPIFFI_CHECK(run != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  run_finished_.wait(lock, [&] {
    return run->state == Run::State::kDone ||
           run->state == Run::State::kCancelled;
  });
  if (run->state != Run::State::kDone) return false;
  if (out != nullptr) *out = run->metrics;
  if (wall_seconds != nullptr) *wall_seconds = run->wall_seconds;
  return true;
}

std::vector<SimMetrics> ParallelRunner::RunAll(
    const std::vector<SimConfig>& configs) {
  std::vector<RunHandle> handles;
  handles.reserve(configs.size());
  for (const SimConfig& config : configs) handles.push_back(Submit(config));
  std::vector<SimMetrics> results;
  results.reserve(handles.size());
  for (const RunHandle& handle : handles) {
    SimMetrics metrics;
    bool completed = Wait(handle, &metrics);
    SPIFFI_CHECK(completed);  // RunAll batches are never cancelled
    results.push_back(metrics);
  }
  return results;
}

ParallelRunner::Stats ParallelRunner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void ParallelRunner::WorkerLoop() {
  for (;;) {
    RunHandle run;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      run = queue_.front();
      queue_.pop_front();
      if (run->cancel.load(std::memory_order_relaxed)) {
        run->state = Run::State::kCancelled;
        ++stats_.cancelled;
        run_finished_.notify_all();
        continue;
      }
      run->state = Run::State::kRunning;
    }

    auto start = std::chrono::steady_clock::now();
    // The simulation's whole world is local to this call; the only state
    // shared with other threads is the cancel flag and, on completion,
    // the fields written back under the lock below.
    Simulation simulation(run->config);
    SimMetrics metrics;
    bool completed = simulation.Run(run->cancel, &metrics);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    {
      std::lock_guard<std::mutex> lock(mutex_);
      run->wall_seconds = wall;
      if (completed) {
        run->metrics = metrics;
        run->state = Run::State::kDone;
        ++stats_.completed;
        stats_.run_wall_seconds += wall;
      } else {
        run->state = Run::State::kCancelled;
        ++stats_.cancelled;
      }
    }
    run_finished_.notify_all();
  }
}

}  // namespace spiffi::vod
