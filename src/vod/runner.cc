#include "vod/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <utility>

#include "sim/check.h"
#include "vod/simulation.h"

namespace spiffi::vod {

namespace {

// Process-wide registry of live runners, so a --progress printer thread
// can aggregate fleet status without threading runner pointers through
// every experiment. Runners register on construction and deregister as
// the first step of destruction.
std::mutex& RunnerRegistryMutex() {
  static std::mutex mutex;
  return mutex;
}

std::vector<ParallelRunner*>& RunnerRegistry() {
  static std::vector<ParallelRunner*> runners;
  return runners;
}

}  // namespace

int DefaultJobs() {
  const char* env = std::getenv("SPIFFI_JOBS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed >= 1) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

int ResolveJobs(int jobs) { return jobs >= 1 ? jobs : DefaultJobs(); }

int BudgetedJobs(int jobs, int shards) {
  return std::max(1, ResolveJobs(jobs) / std::max(1, shards));
}

ParallelRunner::ParallelRunner(int jobs) : jobs_(ResolveJobs(jobs)) {
  {
    std::lock_guard<std::mutex> lock(RunnerRegistryMutex());
    RunnerRegistry().push_back(this);
  }
  workers_.reserve(jobs_);
  for (int i = 0; i < jobs_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ParallelRunner::~ParallelRunner() {
  {
    std::lock_guard<std::mutex> lock(RunnerRegistryMutex());
    std::vector<ParallelRunner*>& runners = RunnerRegistry();
    runners.erase(std::find(runners.begin(), runners.end(), this));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    // Pending runs never start; running ones see their cancel flag at the
    // next slice boundary.
    for (const RunHandle& run : queue_) {
      run->cancel.store(true, std::memory_order_relaxed);
    }
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Workers are gone: mark whatever they never picked up as cancelled so
  // stray Wait() calls cannot block forever.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const RunHandle& run : queue_) {
      if (run->state == Run::State::kPending) {
        run->state = Run::State::kCancelled;
        ++stats_.cancelled;
      }
    }
    queue_.clear();
  }
  run_finished_.notify_all();
}

ParallelRunner::RunHandle ParallelRunner::Submit(const SimConfig& config,
                                                 SetupFn setup) {
  RunHandle run = std::make_shared<Run>();
  run->config = config;
  run->setup = std::move(setup);
  run->sim_end_seconds = config.warmup_seconds + config.measure_seconds;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SPIFFI_CHECK(!shutdown_);
    queue_.push_back(run);
    ++submitted_;
    target_sim_seconds_ += run->sim_end_seconds;
  }
  work_available_.notify_one();
  return run;
}

void ParallelRunner::Cancel(const RunHandle& run) {
  SPIFFI_CHECK(run != nullptr);
  run->cancel.store(true, std::memory_order_relaxed);
  bool retired = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (run->state == Run::State::kPending) {
      // Retire it right away rather than making a worker pop-and-skip it.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == run) {
          queue_.erase(it);
          break;
        }
      }
      run->state = Run::State::kCancelled;
      ++stats_.cancelled;
      target_sim_seconds_ -= run->sim_end_seconds;
      retired = true;
    }
    // A running run stops at its next slice; its worker notifies waiters.
  }
  if (retired) run_finished_.notify_all();
}

bool ParallelRunner::Wait(const RunHandle& run, SimMetrics* out,
                          double* wall_seconds) {
  SPIFFI_CHECK(run != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  run_finished_.wait(lock, [&] {
    return run->state == Run::State::kDone ||
           run->state == Run::State::kCancelled;
  });
  if (run->state != Run::State::kDone) return false;
  if (out != nullptr) *out = run->metrics;
  if (wall_seconds != nullptr) *wall_seconds = run->wall_seconds;
  return true;
}

std::vector<SimMetrics> ParallelRunner::RunAll(
    const std::vector<SimConfig>& configs) {
  std::vector<RunHandle> handles;
  handles.reserve(configs.size());
  for (const SimConfig& config : configs) handles.push_back(Submit(config));
  std::vector<SimMetrics> results;
  results.reserve(handles.size());
  for (const RunHandle& handle : handles) {
    SimMetrics metrics;
    bool completed = Wait(handle, &metrics);
    SPIFFI_CHECK(completed);  // RunAll batches are never cancelled
    results.push_back(metrics);
  }
  return results;
}

ParallelRunner::Stats ParallelRunner::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

ParallelRunner::RunSnapshot ParallelRunner::SnapshotRun(
    const RunHandle& run) const {
  SPIFFI_CHECK(run != nullptr);
  RunSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.state = run->state;
  }
  {
    std::lock_guard<std::mutex> lock(run->progress_mutex);
    snapshot.progress = run->progress;
  }
  return snapshot;
}

ParallelRunner::FleetProgress ParallelRunner::SnapshotProgress() const {
  FleetProgress fleet;
  std::lock_guard<std::mutex> lock(mutex_);
  fleet.submitted = submitted_;
  fleet.pending = queue_.size();
  fleet.running = active_.size();
  fleet.completed = stats_.completed;
  fleet.cancelled = stats_.cancelled;
  fleet.target_sim_seconds = target_sim_seconds_;
  fleet.done_sim_seconds = done_sim_seconds_;
  fleet.events_fired = events_completed_;
  for (const RunHandle& run : active_) {
    std::lock_guard<std::mutex> progress_lock(run->progress_mutex);
    fleet.done_sim_seconds += run->progress.sim_now_seconds;
    fleet.events_fired += run->progress.events_fired;
  }
  return fleet;
}

ParallelRunner::FleetProgress ParallelRunner::SnapshotAllRunners() {
  FleetProgress fleet;
  std::lock_guard<std::mutex> lock(RunnerRegistryMutex());
  for (const ParallelRunner* runner : RunnerRegistry()) {
    FleetProgress one = runner->SnapshotProgress();
    fleet.submitted += one.submitted;
    fleet.pending += one.pending;
    fleet.running += one.running;
    fleet.completed += one.completed;
    fleet.cancelled += one.cancelled;
    fleet.target_sim_seconds += one.target_sim_seconds;
    fleet.done_sim_seconds += one.done_sim_seconds;
    fleet.events_fired += one.events_fired;
  }
  return fleet;
}

void ParallelRunner::WorkerLoop() {
  for (;;) {
    RunHandle run;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [&] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      run = queue_.front();
      queue_.pop_front();
      if (run->cancel.load(std::memory_order_relaxed)) {
        run->state = Run::State::kCancelled;
        ++stats_.cancelled;
        target_sim_seconds_ -= run->sim_end_seconds;
        run_finished_.notify_all();
        continue;
      }
      run->state = Run::State::kRunning;
      active_.push_back(run);
    }

    auto start = std::chrono::steady_clock::now();
    // The simulation's whole world is local to this call; the only state
    // shared with other threads is the cancel flag, the progress
    // snapshot (own mutex), and the fields written back under the lock
    // below on completion.
    Simulation simulation(run->config);
    std::shared_ptr<void> keepalive;
    if (run->setup) keepalive = run->setup(simulation);
    SimMetrics metrics;
    Run* raw = run.get();
    bool completed =
        simulation.Run(run->cancel, &metrics, [raw](const RunProgress& p) {
          std::lock_guard<std::mutex> lock(raw->progress_mutex);
          raw->progress = p;
        });
    // Destroy per-run attachments (flushing/closing their outputs)
    // before waiters are released.
    keepalive.reset();
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    {
      std::lock_guard<std::mutex> lock(mutex_);
      active_.erase(std::find(active_.begin(), active_.end(), run));
      run->wall_seconds = wall;
      if (completed) {
        run->metrics = metrics;
        run->state = Run::State::kDone;
        ++stats_.completed;
        stats_.run_wall_seconds += wall;
        done_sim_seconds_ += run->sim_end_seconds;
        // The final slice boundary is the exact phase end, so the last
        // progress snapshot carries the run's total event count.
        std::lock_guard<std::mutex> progress_lock(run->progress_mutex);
        events_completed_ += run->progress.events_fired;
      } else {
        run->state = Run::State::kCancelled;
        ++stats_.cancelled;
        target_sim_seconds_ -= run->sim_end_seconds;
      }
    }
    run_finished_.notify_all();
  }
}

}  // namespace spiffi::vod
