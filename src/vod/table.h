// Tiny fixed-width text-table printer for the benchmark harnesses.

#ifndef SPIFFI_VOD_TABLE_H_
#define SPIFFI_VOD_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spiffi::vod {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  // Renders with column alignment, a header underline, and two-space
  // separators.
  std::string ToString() const;
  void Print() const;  // to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formatting helpers.
std::string FmtInt(std::int64_t v);
std::string FmtDouble(double v, int precision = 2);
std::string FmtPercent(double fraction, int precision = 1);
std::string FmtBytesPerSec(double bytes_per_sec);
std::string FmtMiB(std::int64_t bytes);

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_TABLE_H_
