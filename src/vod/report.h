// Machine-readable run reports (observability layer).
//
// A RunReport is the final self-description a run leaves behind: which
// configuration ran (as a stable digest plus the human Describe() line),
// how long it took in simulated and wall time, the collected SimMetrics,
// and where the streamed telemetry (if any) went. Harnesses append one
// JSON object per run to a JSONL file; tools/run_report.py renders them.

#ifndef SPIFFI_VOD_REPORT_H_
#define SPIFFI_VOD_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "vod/config.h"
#include "vod/metrics.h"

namespace spiffi::vod {

// FNV-1a digest over a canonical serialization of every SimConfig field
// that affects simulation behaviour (seed included). Equal digests =>
// bit-identical runs; any parameter change perturbs the digest. The
// canonical form is platform-independent ("%.17g" for doubles), so
// digests are comparable across machines.
std::uint64_t ConfigDigest(const SimConfig& config);

struct RunReport {
  std::string label;              // harness-assigned ("fig09/t=200", ...)
  std::string config_summary;     // SimConfig::Describe() one-liner
  std::uint64_t config_digest = 0;
  std::uint64_t seed = 0;
  int terminals = 0;
  double sim_seconds = 0.0;       // warmup + measurement simulated
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;    // events fired / wall second
  SimMetrics metrics;
  std::string telemetry_path;     // streamed JSONL telemetry, "" if none
};

// One-line JSON object terminated by '\n' (JSONL-friendly), fields in a
// fixed order, numbers formatted with the registry's "%.17g" convention.
void WriteRunReportJson(std::ostream& out, const RunReport& report);

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_REPORT_H_
