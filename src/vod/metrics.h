// Aggregated results of one simulation run (measurement window only).

#ifndef SPIFFI_VOD_METRICS_H_
#define SPIFFI_VOD_METRICS_H_

#include <cstdint>

namespace spiffi::vod {

struct SimMetrics {
  int terminals = 0;
  double measured_seconds = 0.0;

  // Primary metric inputs.
  std::uint64_t glitches = 0;
  int terminals_with_glitches = 0;

  // Utilizations (fractions in [0, 1]).
  double avg_disk_utilization = 0.0;
  double min_disk_utilization = 0.0;
  double max_disk_utilization = 0.0;
  double avg_cpu_utilization = 0.0;

  // Network demand.
  double peak_network_bytes_per_sec = 0.0;
  double avg_network_bytes_per_sec = 0.0;

  // Buffer pool behaviour (summed over nodes).
  std::uint64_t buffer_references = 0;
  std::uint64_t buffer_hits = 0;       // valid page found
  std::uint64_t buffer_attaches = 0;   // joined an in-flight read
  std::uint64_t buffer_misses = 0;
  std::uint64_t shared_references = 0; // page previously referenced by
                                       // another terminal (Fig 16)
  std::uint64_t wasted_prefetches = 0;
  std::uint64_t prefetches_issued = 0;

  // Disk activity.
  std::uint64_t disk_reads = 0;
  double avg_disk_service_ms = 0.0;
  double avg_seek_cylinders = 0.0;

  // Terminal experience.
  double avg_response_ms = 0.0;  // block request -> arrival
  double p50_response_ms = 0.0;
  double p99_response_ms = 0.0;
  std::uint64_t frames_displayed = 0;
  std::uint64_t videos_completed = 0;

  std::uint64_t events_simulated = 0;

  // Stream sharing (all zero when batching and patching are disabled).
  std::uint64_t share_groups = 0;       // delivery groups formed
  std::uint64_t share_followers = 0;    // terminals that joined at start
  std::uint64_t share_patches = 0;      // late joiners via patch streams
  double share_patch_seconds = 0.0;     // total unicast catch-up footage
  std::uint64_t share_handoffs = 0;     // leader promotions
  std::uint64_t prefix_hits = 0;        // references served by pinned pages
  std::int64_t prefix_pinned_pages = 0; // pinned pages at collection time

  // Proxy tier (all zero when proxy_nodes == 0). Summed over proxies.
  std::uint64_t proxy_references = 0;      // terminal requests at proxies
  std::uint64_t proxy_hits = 0;            // served from a proxy cache
  std::uint64_t proxy_attaches = 0;        // joined an in-flight forward
  std::uint64_t proxy_forwards = 0;        // misses forwarded to origin
  std::uint64_t proxy_bytes_from_cache = 0;  // payload bytes hits saved
  double avg_proxy_forward_ms = 0.0;       // forward -> origin reply

  // Availability (all zero when no FaultPlan is active).
  std::uint64_t faults_injected = 0;    // disk + node fail transitions
  std::uint64_t repairs_completed = 0;
  double mttr_sec = 0.0;                // mean time to repair
  double fault_downtime_sec = 0.0;      // component-seconds down
  std::uint64_t rerouted_requests = 0;  // node-to-node forwards
  std::uint64_t degraded_waits = 0;     // requests parked on dead disks
  std::uint64_t prefetches_skipped_dead = 0;
  std::uint64_t requests_redirected = 0;  // client-side failover sends
  std::uint64_t blocks_rerouted = 0;      // replies that hopped nodes

  // Resilience layer (all zero when admission control, request retry,
  // and rebuild are off).
  std::uint64_t admission_admits = 0;
  std::uint64_t admission_rejects = 0;
  std::uint64_t admission_defers = 0;
  std::uint64_t failover_readmissions = 0;
  std::uint64_t request_retries = 0;      // duplicate block re-sends
  std::uint64_t retries_exhausted = 0;    // budget ran out, left waiting
  std::uint64_t session_failovers = 0;    // whole-stream migrations
  std::uint64_t duplicate_replies = 0;    // late originals after a retry
  std::uint64_t proxy_forward_retries = 0;
  std::uint64_t proxy_stale_replies = 0;
  std::uint64_t rebuilds_completed = 0;   // full post-repair resyncs
  double rebuild_sec = 0.0;               // disk-seconds spent rebuilding
  std::uint64_t rebuild_bytes = 0;        // replica bytes re-read

  double hit_ratio() const {
    return buffer_references == 0
               ? 0.0
               : static_cast<double>(buffer_hits + buffer_attaches) /
                     static_cast<double>(buffer_references);
  }
  double shared_reference_ratio() const {
    return buffer_references == 0
               ? 0.0
               : static_cast<double>(shared_references) /
                     static_cast<double>(buffer_references);
  }
  // Fraction of proxy-tier traffic the origin cluster never saw
  // (hits + attaches); 0 when the proxy tier is off.
  double proxy_offload_ratio() const {
    return proxy_references == 0
               ? 0.0
               : 1.0 - static_cast<double>(proxy_forwards) /
                           static_cast<double>(proxy_references);
  }
  bool glitch_free() const { return glitches == 0; }
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_METRICS_H_
