#include "vod/table.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "hw/disk_params.h"
#include "sim/check.h"

namespace spiffi::vod {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  SPIFFI_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << "  ";
      out << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        out << ' ';
      }
    }
    out << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

std::string FmtInt(std::int64_t v) { return std::to_string(v); }

std::string FmtDouble(double v, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, v);
  return buffer;
}

std::string FmtPercent(double fraction, int precision) {
  return FmtDouble(fraction * 100.0, precision) + "%";
}

std::string FmtBytesPerSec(double bytes_per_sec) {
  return FmtDouble(bytes_per_sec / static_cast<double>(hw::kMiB), 1) +
         " MB/s";
}

std::string FmtMiB(std::int64_t bytes) {
  return std::to_string(bytes / hw::kMiB) + " MB";
}

}  // namespace spiffi::vod
