// Parallel experiment runner: fans independent (SimConfig, seed) runs
// across a pool of worker threads.
//
// Every Simulation owns its entire world (environment, calendar, RNG
// streams, metrics registry), so independent runs share no mutable state
// and are embarrassingly parallel. The runner exploits that: submitted
// runs execute on worker threads and results are collected in submission
// order, which keeps every aggregate computed from them bit-identical to
// a serial execution of the same configs — the job count changes only
// wall-clock time, never results (locked by tests/vod/runner_test.cc).
//
// Runs are cooperatively cancellable: Cancel() flips a flag the
// simulation checks between event slices (Simulation::Run(cancel, out)),
// so a capacity-search probe made moot by a finished sibling stops
// within a few percent of its runtime instead of running to completion.

#ifndef SPIFFI_VOD_RUNNER_H_
#define SPIFFI_VOD_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "vod/config.h"
#include "vod/metrics.h"

namespace spiffi::vod {

// Worker count used when a caller passes jobs <= 0: the SPIFFI_JOBS
// environment variable when it is a positive integer, otherwise
// std::thread::hardware_concurrency() (at least 1).
int DefaultJobs();

// Resolves a --jobs style request: n >= 1 is taken as-is, anything else
// maps to DefaultJobs().
int ResolveJobs(int jobs);

class ParallelRunner {
 public:
  // State of one submitted run. Owned jointly by the runner's queue and
  // the caller's handle; all fields are guarded by the runner's mutex
  // except `cancel`, which the executing simulation polls.
  struct Run {
    enum class State { kPending, kRunning, kDone, kCancelled };

    SimConfig config;
    std::atomic<bool> cancel{false};
    State state = State::kPending;
    SimMetrics metrics;          // valid when state == kDone
    double wall_seconds = 0.0;   // this run's execution wall time
  };
  using RunHandle = std::shared_ptr<Run>;

  struct Stats {
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    // Sum of per-run wall time over completed runs. Dividing by the
    // elapsed wall time of the batch gives the achieved parallelism.
    double run_wall_seconds = 0.0;
  };

  // jobs >= 1 sets the worker count; jobs <= 0 uses DefaultJobs().
  explicit ParallelRunner(int jobs = 0);
  // Cancels everything still pending or running, then joins the workers.
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int jobs() const { return jobs_; }

  // Enqueues one simulation run.
  RunHandle Submit(const SimConfig& config);

  // Requests cooperative cancellation: a pending run never starts, a
  // running one stops at its next slice boundary. Waiters are released
  // either way.
  void Cancel(const RunHandle& run);

  // Blocks until the run finished or was cancelled. Returns true and
  // fills `out` (and optionally `wall_seconds`) on completion, false on
  // cancellation.
  bool Wait(const RunHandle& run, SimMetrics* out,
            double* wall_seconds = nullptr);

  // Convenience barrier: runs every config and returns the metrics in
  // submission order. The caller must not cancel these runs.
  std::vector<SimMetrics> RunAll(const std::vector<SimConfig>& configs);

  Stats stats() const;

 private:
  void WorkerLoop();

  const int jobs_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable run_finished_;
  std::deque<RunHandle> queue_;
  bool shutdown_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_RUNNER_H_
