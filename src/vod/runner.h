// Parallel experiment runner: fans independent (SimConfig, seed) runs
// across a pool of worker threads.
//
// Every Simulation owns its entire world (environment, calendar, RNG
// streams, metrics registry), so independent runs share no mutable state
// and are embarrassingly parallel. The runner exploits that: submitted
// runs execute on worker threads and results are collected in submission
// order, which keeps every aggregate computed from them bit-identical to
// a serial execution of the same configs — the job count changes only
// wall-clock time, never results (locked by tests/vod/runner_test.cc).
//
// Runs are cooperatively cancellable: Cancel() flips a flag the
// simulation checks between event slices (Simulation::Run(cancel, out)),
// so a capacity-search probe made moot by a finished sibling stops
// within a few percent of its runtime instead of running to completion.

#ifndef SPIFFI_VOD_RUNNER_H_
#define SPIFFI_VOD_RUNNER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "vod/config.h"
#include "vod/metrics.h"
#include "vod/simulation.h"

namespace spiffi::vod {

// Worker count used when a caller passes jobs <= 0: the SPIFFI_JOBS
// environment variable when it is a positive integer, otherwise
// std::thread::hardware_concurrency() (at least 1).
int DefaultJobs();

// Resolves a --jobs style request: n >= 1 is taken as-is, anything else
// maps to DefaultJobs().
int ResolveJobs(int jobs);

// Worker count for a fleet of sharded runs: each run occupies `shards`
// cores, so the resolved jobs budget is divided by the shard count
// (floor, at least 1). With shards == 1 this is exactly ResolveJobs().
int BudgetedJobs(int jobs, int shards);

class ParallelRunner {
 public:
  // Runs on the executing worker after the Simulation is constructed and
  // before Run() starts — the one hook through which callers can attach
  // per-run observers (telemetry recorders, tracers) to runner-executed
  // simulations. Whatever it returns is kept alive until the run
  // finishes and destroyed before waiters are released, so a returned
  // recorder has flushed and closed its output by the time Wait()
  // returns.
  using SetupFn = std::function<std::shared_ptr<void>(Simulation&)>;

  // State of one submitted run. Owned jointly by the runner's queue and
  // the caller's handle; all fields are guarded by the runner's mutex
  // except `cancel`, which the executing simulation polls, and
  // `progress`, which has its own mutex (written at every slice
  // boundary — a global lock there would serialize the fleet).
  struct Run {
    enum class State { kPending, kRunning, kDone, kCancelled };

    SimConfig config;
    SetupFn setup;               // may be empty
    double sim_end_seconds = 0.0;  // warmup + measure; set at Submit
    std::atomic<bool> cancel{false};
    State state = State::kPending;
    SimMetrics metrics;          // valid when state == kDone
    double wall_seconds = 0.0;   // this run's execution wall time

    // Last slice-boundary snapshot from the executing simulation.
    mutable std::mutex progress_mutex;
    RunProgress progress;
  };
  using RunHandle = std::shared_ptr<Run>;

  struct Stats {
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    // Sum of per-run wall time over completed runs. Dividing by the
    // elapsed wall time of the batch gives the achieved parallelism.
    double run_wall_seconds = 0.0;
  };

  // Live snapshot of one run: its state plus the most recent progress
  // report (zeroed until the first slice boundary fires).
  struct RunSnapshot {
    Run::State state = Run::State::kPending;
    RunProgress progress;
  };

  // Aggregate progress across a runner's whole workload, the input to
  // fleet status lines and ETAs. `target_sim_seconds` counts every
  // non-cancelled submission; `done_sim_seconds` counts completed runs
  // in full plus running runs at their last reported sim-time, so
  // done/target is a faithful completion fraction.
  struct FleetProgress {
    std::uint64_t submitted = 0;
    std::uint64_t pending = 0;
    std::uint64_t running = 0;
    std::uint64_t completed = 0;
    std::uint64_t cancelled = 0;
    double target_sim_seconds = 0.0;
    double done_sim_seconds = 0.0;
    std::uint64_t events_fired = 0;  // completed + running runs
  };

  // jobs >= 1 sets the worker count; jobs <= 0 uses DefaultJobs().
  explicit ParallelRunner(int jobs = 0);
  // Cancels everything still pending or running, then joins the workers.
  ~ParallelRunner();

  ParallelRunner(const ParallelRunner&) = delete;
  ParallelRunner& operator=(const ParallelRunner&) = delete;

  int jobs() const { return jobs_; }

  // Enqueues one simulation run. `setup`, when non-empty, runs on the
  // worker thread right before the simulation starts (see SetupFn).
  RunHandle Submit(const SimConfig& config, SetupFn setup = nullptr);

  // Requests cooperative cancellation: a pending run never starts, a
  // running one stops at its next slice boundary. Waiters are released
  // either way.
  void Cancel(const RunHandle& run);

  // Blocks until the run finished or was cancelled. Returns true and
  // fills `out` (and optionally `wall_seconds`) on completion, false on
  // cancellation.
  bool Wait(const RunHandle& run, SimMetrics* out,
            double* wall_seconds = nullptr);

  // Convenience barrier: runs every config and returns the metrics in
  // submission order. The caller must not cancel these runs.
  std::vector<SimMetrics> RunAll(const std::vector<SimConfig>& configs);

  Stats stats() const;

  // --- Live introspection (all safe to call from any thread) ---

  // State + latest progress of one run.
  RunSnapshot SnapshotRun(const RunHandle& run) const;

  // Aggregate progress over everything this runner has been given.
  FleetProgress SnapshotProgress() const;

  // Aggregate over every live ParallelRunner in the process — the view a
  // --progress printer wants when the experiment code owns the runners.
  static FleetProgress SnapshotAllRunners();

 private:
  void WorkerLoop();

  const int jobs_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable run_finished_;
  std::deque<RunHandle> queue_;
  bool shutdown_ = false;
  Stats stats_;
  // Runs currently executing on workers (for fleet snapshots).
  std::vector<RunHandle> active_;
  std::uint64_t submitted_ = 0;
  double target_sim_seconds_ = 0.0;   // cancelled runs subtracted back out
  double done_sim_seconds_ = 0.0;     // completed runs only
  std::uint64_t events_completed_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_RUNNER_H_
