#include "vod/telemetry.h"

#include "sim/check.h"

namespace spiffi::vod {

TelemetryRecorder::TelemetryRecorder(Simulation* simulation,
                                     const TelemetryOptions& options)
    : simulation_(simulation) {
  SPIFFI_CHECK(simulation != nullptr);
  SPIFFI_CHECK(options.interval_sec > 0.0);
  series_.set_retention(options.retention);
  series_.StreamTo(options.jsonl);
  RegisterChannels();
  if (simulation_->sharded()) {
    simulation_->AddBarrierSampler(
        options.interval_sec,
        [this](sim::SimTime now) { series_.Sample(now); });
    simulation_->env().Spawn(TickPacer(options.interval_sec));
  } else {
    simulation_->env().Spawn(Sampler(options.interval_sec));
  }
}

void TelemetryRecorder::RegisterChannels() {
  Simulation* sim = simulation_;

  // --- Disks ---
  series_.AddGauge("disks.busy", [sim] {
    int busy = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      server::Node& node = server.node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        if (node.disk(d).busy()) ++busy;
      }
    }
    return static_cast<double>(busy);
  });
  series_.AddGauge("disks.total", [sim] {
    int total = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      total += server.node(n).num_disks();
    }
    return static_cast<double>(total);
  });
  series_.AddGauge("disks.queue_avg", [sim] {
    double queue_sum = 0.0;
    int total = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      server::Node& node = server.node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        queue_sum += static_cast<double>(node.disk(d).queue_length());
        ++total;
      }
    }
    return total > 0 ? queue_sum / total : 0.0;
  });
  series_.AddCounter("disks.reads", [sim] {
    std::uint64_t reads = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      server::Node& node = server.node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        reads += node.disk(d).requests_served();
      }
    }
    return static_cast<double>(reads);
  });

  // --- Node CPUs & buffer pools ---
  series_.AddGauge("cpus.busy", [sim] {
    int busy = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      if (server.node(n).cpu().resource().busy() > 0) ++busy;
    }
    return static_cast<double>(busy);
  });
  series_.AddGauge("pool.pages_in_use", [sim] {
    std::int64_t pages = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      pages += server.node(n).pool().pages_in_use();
    }
    return static_cast<double>(pages);
  });
  series_.AddCounter("pool.references", [sim] {
    std::uint64_t references = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      references += server.node(n).pool().stats().references;
    }
    return static_cast<double>(references);
  });
  series_.AddCounter("pool.hits", [sim] {
    std::uint64_t hits = 0;
    server::VideoServer& server = sim->server();
    for (int n = 0; n < server.num_nodes(); ++n) {
      hits += server.node(n).pool().stats().hits;
    }
    return static_cast<double>(hits);
  });

  // --- Network ---
  series_.AddCounter("network.bytes", [sim] {
    return static_cast<double>(sim->total_network_bytes());
  });

  // --- Terminals ---
  series_.AddCounter("terminals.glitches", [sim] {
    std::uint64_t glitches = 0;
    for (int t = 0; t < sim->num_terminals(); ++t) {
      glitches += sim->terminal(t).stats().glitches;
    }
    return static_cast<double>(glitches);
  });
  series_.AddCounter("terminals.frames", [sim] {
    std::uint64_t frames = 0;
    for (int t = 0; t < sim->num_terminals(); ++t) {
      frames += sim->terminal(t).stats().frames_displayed;
    }
    return static_cast<double>(frames);
  });
  series_.AddGauge("terminals.priming", [sim] {
    int priming = 0;
    for (int t = 0; t < sim->num_terminals(); ++t) {
      if (sim->terminal(t).state() == client::Terminal::State::kPriming) {
        ++priming;
      }
    }
    return static_cast<double>(priming);
  });
  series_.AddGauge("terminals.playing", [sim] {
    int playing = 0;
    for (int t = 0; t < sim->num_terminals(); ++t) {
      if (sim->terminal(t).state() == client::Terminal::State::kPlaying) {
        ++playing;
      }
    }
    return static_cast<double>(playing);
  });

  // --- Stream sharing (only when the manager exists, mirroring the
  // fault channels' lean-schema rule) ---
  if (sim->stream_share() != nullptr) {
    series_.AddGauge("share.open_groups", [sim] {
      return static_cast<double>(sim->stream_share()->open_group_count());
    });
    series_.AddCounter("share.followers", [sim] {
      return static_cast<double>(
          sim->stream_share()->stats().followers_attached);
    });
    series_.AddCounter("share.patches", [sim] {
      return static_cast<double>(
          sim->stream_share()->stats().patchers_attached);
    });
  }
  if (sim->config().prefix_cache_fraction > 0.0) {
    series_.AddGauge("pool.pinned_pages", [sim] {
      std::int64_t pages = 0;
      server::VideoServer& server = sim->server();
      for (int n = 0; n < server.num_nodes(); ++n) {
        pages += server.node(n).pool().pinned_pages();
      }
      return static_cast<double>(pages);
    });
    series_.AddCounter("pool.prefix_hits", [sim] {
      std::uint64_t hits = 0;
      server::VideoServer& server = sim->server();
      for (int n = 0; n < server.num_nodes(); ++n) {
        hits += server.node(n).pool().stats().prefix_hits;
      }
      return static_cast<double>(hits);
    });
  }

  // --- Proxy tier (only when proxies are configured) ---
  if (sim->num_proxies() > 0) {
    series_.AddCounter("proxy.references", [sim] {
      std::uint64_t sum = 0;
      for (int p = 0; p < sim->num_proxies(); ++p) {
        sum += sim->proxy_node(p).stats().references;
      }
      return static_cast<double>(sum);
    });
    series_.AddCounter("proxy.hits", [sim] {
      std::uint64_t sum = 0;
      for (int p = 0; p < sim->num_proxies(); ++p) {
        sum += sim->proxy_node(p).stats().hits;
      }
      return static_cast<double>(sum);
    });
    series_.AddCounter("proxy.forwards", [sim] {
      std::uint64_t sum = 0;
      for (int p = 0; p < sim->num_proxies(); ++p) {
        sum += sim->proxy_node(p).stats().forwards;
      }
      return static_cast<double>(sum);
    });
    series_.AddGauge("proxy.pages_in_use", [sim] {
      std::int64_t sum = 0;
      for (int p = 0; p < sim->num_proxies(); ++p) {
        sum += sim->proxy_node(p).cache().pages_in_use();
      }
      return static_cast<double>(sum);
    });
  }

  // --- Fault injector (only on runs with an active FaultPlan, so
  // healthy-run telemetry keeps the lean schema) ---
  if (sim->fault_state() != nullptr) {
    series_.AddGauge("fault.disks_down", [sim] {
      const fault::FaultState* state = sim->fault_state();
      int down = 0;
      for (int d = 0; d < state->total_disks(); ++d) {
        if (!state->disk_up(d)) ++down;
      }
      return static_cast<double>(down);
    });
    series_.AddGauge("fault.nodes_down", [sim] {
      const fault::FaultState* state = sim->fault_state();
      int down = 0;
      for (int n = 0; n < state->num_nodes(); ++n) {
        if (!state->node_up(n)) ++down;
      }
      return static_cast<double>(down);
    });
    series_.AddCounter("fault.faults_injected", [sim] {
      return static_cast<double>(
          sim->fault_state()->StatsAt(sim->env().now()).faults_injected);
    });
    if (sim->config().rebuild_mbps > 0.0) {
      series_.AddGauge("fault.disks_rebuilding", [sim] {
        return static_cast<double>(sim->fault_state()->disks_rebuilding());
      });
      series_.AddCounter("fault.rebuild_bytes", [sim] {
        return static_cast<double>(
            sim->fault_state()->StatsAt(sim->env().now()).rebuild_bytes);
      });
    }
  }

  // --- Admission control (only when a policy is active) ---
  if (sim->admission() != nullptr) {
    series_.AddGauge("admission.active_sessions", [sim] {
      return static_cast<double>(sim->admission()->active_sessions());
    });
    series_.AddGauge("admission.reserved_bytes_per_sec", [sim] {
      return sim->admission()->reserved_bytes_per_sec();
    });
    series_.AddCounter("admission.defers", [sim] {
      return static_cast<double>(sim->admission()->stats().defers);
    });
    series_.AddCounter("admission.rejects", [sim] {
      return static_cast<double>(sim->admission()->stats().rejects);
    });
  }

  // --- Request retry (only when a retry budget is configured) ---
  if (sim->config().request_retry_budget > 0) {
    series_.AddCounter("terminals.request_retries", [sim] {
      std::uint64_t sum = 0;
      for (int t = 0; t < sim->num_terminals(); ++t) {
        sum += sim->terminal(t).stats().request_retries;
      }
      return static_cast<double>(sum);
    });
    series_.AddCounter("terminals.session_failovers", [sim] {
      std::uint64_t sum = 0;
      for (int t = 0; t < sim->num_terminals(); ++t) {
        sum += sim->terminal(t).stats().session_failovers;
      }
      return static_cast<double>(sum);
    });
  }
}

sim::Process TelemetryRecorder::Sampler(double interval_sec) {
  sim::Environment* env = &simulation_->env();
  for (;;) {
    co_await env->Hold(interval_sec);
    series_.Sample(env->now());
  }
}

sim::Process TelemetryRecorder::TickPacer(double interval_sec) {
  sim::Environment* env = &simulation_->env();
  for (;;) {
    co_await env->Hold(interval_sec);
  }
}

}  // namespace spiffi::vod
