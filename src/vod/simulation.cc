#include "vod/simulation.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <string>
#include <utility>

#include "layout/nonstriped.h"
#include "layout/replicated.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "sim/check.h"
#include "vod/report.h"

namespace spiffi::vod {

namespace {

// Distinct child-stream tags for the master seed.
constexpr std::uint64_t kLibraryStream = 1;
constexpr std::uint64_t kPlacementStream = 2;
constexpr std::uint64_t kFaultStream = 3;
constexpr std::uint64_t kTerminalStreamBase = 1000;

// Process-wide observer registry. Guarded by ObserverMutex() so that
// simulations finishing on ParallelRunner worker threads can notify
// concurrently with (re)installation from the main thread.
std::mutex& ObserverMutex() {
  static std::mutex mutex;
  return mutex;
}

RunObserver& GlobalRunObserver() {
  static RunObserver observer;
  return observer;
}

// Snapshot under the lock; invoked outside it by the caller.
RunObserver CurrentRunObserver() {
  std::lock_guard<std::mutex> lock(ObserverMutex());
  return GlobalRunObserver();
}

}  // namespace

void SetRunObserver(RunObserver observer) {
  std::lock_guard<std::mutex> lock(ObserverMutex());
  GlobalRunObserver() = std::move(observer);
}

Simulation::Simulation(const SimConfig& config) : config_(config) {
  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "invalid SimConfig: %s\n", error.c_str());
  }
  SPIFFI_CHECK(error.empty());

  // One environment per shard (one total in the classic configuration).
  // Pre-size each event heap from the configured load so the calendars
  // never reallocate mid-run (storage_grows() stays 0 in steady state);
  // shards split the load, but partitions are uneven, so each shard
  // keeps a generous half of the single-calendar reservation.
  envs_.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    envs_.push_back(std::make_unique<sim::Environment>());
    envs_[s]->ReserveCalendar(config.shards == 1
                                  ? config.expected_peak_events()
                                  : config.expected_peak_events() / 2);
  }
  env_ = envs_[0].get();
  sim::Rng master(config.seed);

  // Videos and their popularity (z = 0 degenerates to uniform).
  mpeg::ZipfDistribution popularity(config.num_videos(), config.zipf_z);
  library_ = std::make_unique<mpeg::VideoLibrary>(
      config.num_videos(), config.video_seconds, config.mpeg, popularity,
      master.Child(kLibraryStream).NextU64());

  // Layout.
  if (config.placement == VideoPlacement::kStriped) {
    std::vector<std::int64_t> blocks(config.num_videos());
    for (int v = 0; v < config.num_videos(); ++v) {
      blocks[v] = library_->NumBlocks(v, config.stripe_bytes);
    }
    layout_ = std::make_unique<layout::StripedLayout>(
        config.num_nodes, config.disks_per_node, config.stripe_bytes,
        std::move(blocks));
  } else if (config.placement == VideoPlacement::kReplicatedStriped) {
    std::vector<std::int64_t> blocks(config.num_videos());
    for (int v = 0; v < config.num_videos(); ++v) {
      blocks[v] = library_->NumBlocks(v, config.stripe_bytes);
    }
    layout_ = std::make_unique<layout::ReplicatedStripedLayout>(
        config.num_nodes, config.disks_per_node, config.stripe_bytes,
        std::move(blocks), config.replica_count);
  } else {
    std::vector<std::int64_t> bytes(config.num_videos());
    for (int v = 0; v < config.num_videos(); ++v) {
      bytes[v] = library_->video(v).total_bytes();
    }
    layout_ = std::make_unique<layout::NonStripedLayout>(
        config.num_nodes, config.disks_per_node, config.stripe_bytes,
        std::move(bytes), master.Child(kPlacementStream).NextU64());
  }

  // One network instance per shard, all with identical parameters: the
  // bus has no shared queueing state, so per-shard accounting plus an
  // exact bucket-history merge reproduces the single-instance stats.
  networks_.reserve(envs_.size());
  for (auto& env : envs_) {
    networks_.push_back(
        std::make_unique<hw::Network>(env.get(), config.network));
  }
  network_ = networks_[0].get();
  if (config.shards > 1) {
    std::vector<sim::Environment*> shard_envs;
    shard_envs.reserve(envs_.size());
    for (auto& env : envs_) shard_envs.push_back(env.get());
    // The base wire delay is the guaranteed minimum cross-shard latency
    // — SPIFFI's bus charges it on every message — and thus the
    // conservative lookahead.
    group_ = std::make_unique<sim::ShardGroup>(
        std::move(shard_envs), config.network.wire_delay_base_sec);
    for (int s = 0; s < config.shards; ++s) {
      networks_[s]->AttachShard(group_.get(), s);
    }
  }

  // Fault subsystem: built only for an enabled FaultPlan, so the empty
  // default leaves every fault_ pointer null and the run bit-identical
  // to a build without the subsystem.
  if (config.fault_plan.enabled()) {
    fault_state_ = std::make_unique<fault::FaultState>(
        config.num_nodes, config.disks_per_node);
    fault_injector_ = std::make_unique<fault::FaultInjector>(
        env_, config.fault_plan, fault_state_.get(),
        master.Child(kFaultStream));
  }

  // Server nodes.
  server::NodeConfig node_config;
  node_config.disks_per_node = config.disks_per_node;
  node_config.cpu_mips = config.cpu_mips;
  node_config.costs = config.cpu_costs;
  node_config.disk = config.disk;
  node_config.sched.policy = config.disk_sched;
  node_config.sched.cylinder_bytes = config.disk.cylinder_bytes;
  node_config.sched.gss_groups = config.gss_groups;
  node_config.sched.realtime_classes = config.realtime_classes;
  node_config.sched.realtime_spacing_sec = config.realtime_spacing_sec;
  node_config.pool_pages = config.pool_pages_per_node();
  node_config.replacement = config.replacement;
  node_config.prefetch = config.prefetch;
  node_config.prefetch_trigger = config.effective_prefetch_trigger();
  node_config.prefetch_workers = config.effective_prefetch_workers();
  node_config.max_advance_prefetch_sec = config.max_advance_prefetch_sec;
  node_config.block_bytes = config.stripe_bytes;
  node_config.fault_hop_budget = config.fault_plan.reroute_hop_budget;
  node_config.fault_recheck_sec = config.fault_plan.recheck_sec;
  node_config.prefix_cache_fraction = config.prefix_cache_fraction;
  node_config.prefix_recompute_sec = config.prefix_recompute_sec;
  node_config.num_nodes = config.num_nodes;
  // Node n runs on shard n % shards (its shard's environment + network
  // instance); with one shard every entry is the primary pair and this
  // is exactly the classic construction.
  std::vector<sim::Environment*> node_envs(
      static_cast<std::size_t>(config.num_nodes));
  std::vector<hw::Network*> node_networks(
      static_cast<std::size_t>(config.num_nodes));
  for (int n = 0; n < config.num_nodes; ++n) {
    node_envs[n] = envs_[ShardOfNode(n)].get();
    node_networks[n] = networks_[ShardOfNode(n)].get();
  }
  server_ = std::make_unique<server::VideoServer>(
      node_envs, node_networks, node_config, library_.get(), layout_.get(),
      fault_state_.get());

  // Admission control: built only when a policy is selected, so the
  // default `off` run never consults it and stays bit-identical.
  if (config.admission_policy != AdmissionPolicy::kOff) {
    AdmissionParams admission_params;
    admission_params.policy = config.admission_policy;
    admission_params.num_nodes = config.num_nodes;
    // A node's deliverable disk bandwidth is the media transfer rate
    // summed over its disks; the headroom fraction discounts the seek
    // and rotation overhead a real stream mix pays on top of transfer.
    admission_params.node_bytes_per_sec =
        config.disks_per_node * config.disk.transfer_rate_bytes_per_sec;
    admission_params.stream_bytes_per_sec = config.mpeg.bytes_per_second();
    admission_params.headroom_fraction = config.admission_headroom;
    admission_params.max_defers_before_reject = config.admission_max_defers;
    admission_ = std::make_unique<AdmissionController>(admission_params);
    if (config.admission_policy == AdmissionPolicy::kMeasuredHeadroom) {
      admission_->set_utilization_probe([this] {
        double sum = 0.0;
        int count = 0;
        sim::SimTime now = env_->now();
        for (int n = 0; n < server_->num_nodes(); ++n) {
          const server::Node& node = server_->node(n);
          for (int d = 0; d < node.num_disks(); ++d) {
            sum += node.disk(d).AverageUtilization(now);
            ++count;
          }
        }
        return sum / count;
      });
    }
  }

  if (fault_injector_ != nullptr) {
    // Physical consequences of fault transitions. Disk availability is
    // recomputed as !(node up && disk up) so overlapping disk and node
    // outages compose idempotently: a disk stays down until both its own
    // fault and its node's crash have been repaired.
    fault_injector_->set_effect_handler([this](
        const fault::FaultEvent& event) {
      auto apply_disk = [this](int disk_global) {
        int node = disk_global / config_.disks_per_node;
        int local = disk_global % config_.disks_per_node;
        hw::Disk& disk = server_->node(node).disk(local);
        disk.SetFailed(!(fault_state_->node_up(node) &&
                         fault_state_->disk_up(disk_global)));
        disk.SetServiceTimeScale(fault_state_->disk_slow_factor(disk_global));
      };
      // Post-repair rebuild: a disk that just became serviceable again
      // re-reads its stripe regions from replica peers at a throttled
      // rate. Only spawned when rebuild is configured, the layout has
      // replicas to read from, and no rebuild is already running for
      // the disk (a rebuild that outlived a brief re-failure keeps its
      // flag and simply continues).
      auto maybe_rebuild = [this](int disk_global) {
        if (config_.rebuild_mbps <= 0.0 || layout_->replica_count() < 2) {
          return;
        }
        int node = disk_global / config_.disks_per_node;
        if (!fault_state_->node_up(node) ||
            !fault_state_->disk_up(disk_global)) {
          return;
        }
        if (!fault_state_->BeginRebuild(disk_global, env_->now())) return;
        env_->Spawn(RebuildDisk(disk_global));
      };
      switch (event.kind) {
        case fault::FaultKind::kDiskFail:
        case fault::FaultKind::kDiskRecover:
        case fault::FaultKind::kDiskLimpBegin:
        case fault::FaultKind::kDiskLimpEnd:
          apply_disk(event.target);
          if (event.kind == fault::FaultKind::kDiskRecover &&
              event.applied) {
            maybe_rebuild(event.target);
          }
          break;
        case fault::FaultKind::kNodeFail:
        case fault::FaultKind::kNodeRecover:
          for (int d = 0; d < config_.disks_per_node; ++d) {
            apply_disk(event.target * config_.disks_per_node + d);
          }
          if (event.applied && admission_ != nullptr) {
            if (event.kind == fault::FaultKind::kNodeFail) {
              admission_->OnNodeDown(event.target);
            } else {
              admission_->OnNodeUp(event.target);
            }
          }
          if (event.kind == fault::FaultKind::kNodeRecover &&
              event.applied) {
            for (int d = 0; d < config_.disks_per_node; ++d) {
              maybe_rebuild(event.target * config_.disks_per_node + d);
            }
          }
          break;
      }
    });
    fault_injector_->Start();
  }

  if (config.stream_sharing_enabled()) {
    share_ = std::make_unique<client::StreamShareManager>(
        env_, config.piggyback_window_sec, config.patch_window_sec);
  }

  // Tier routing is always resolvable (proxy hop == -1 when the tier is
  // off); proxy nodes themselves exist only when configured, so a
  // zero-proxy run schedules no proxy events and stays bit-identical to
  // the flat topology.
  router_ =
      std::make_unique<layout::TierRouter>(layout_.get(), config.proxy_nodes);
  if (config.proxy_nodes > 0) {
    proxies_.reserve(config.proxy_nodes);
    for (int p = 0; p < config.proxy_nodes; ++p) {
      proxy::ProxyParams proxy_params;
      proxy_params.id = p;
      proxy_params.cache_pages = config.proxy_cache_pages;
      proxy_params.policy = config.proxy_policy;
      proxy_params.recompute_sec = config.proxy_recompute_sec;
      proxy_params.block_bytes = config.stripe_bytes;
      proxy_params.retry_budget = config.request_retry_budget;
      proxy_params.retry_min_timeout_sec = config.retry_min_timeout_sec;
      proxy_params.retry_backoff_base_sec = config.retry_backoff_base_sec;
      proxies_.push_back(std::make_unique<proxy::ProxyNode>(
          envs_[ShardOfProxy(p)].get(), proxy_params,
          networks_[ShardOfProxy(p)].get(), server_.get(), router_.get(),
          library_.get(), fault_state_.get()));
    }
  }

  // Terminals, with staggered starts.
  client::TerminalParams terminal_params;
  terminal_params.memory_bytes = config.terminal_memory_bytes;
  terminal_params.block_bytes = config.stripe_bytes;
  terminal_params.pause_enabled = config.pause_enabled;
  terminal_params.pauses_per_video_mean = config.pauses_per_video_mean;
  terminal_params.pause_duration_mean_sec = config.pause_duration_mean_sec;
  terminal_params.search_enabled = config.search_enabled;
  terminal_params.searches_per_video_mean = config.searches_per_video_mean;
  terminal_params.search_duration_mean_sec =
      config.search_duration_mean_sec;
  terminal_params.search_show_sec = config.search_show_sec;
  terminal_params.search_skip_sec = config.search_skip_sec;
  terminal_params.random_initial_position =
      config.random_initial_position && !config.stream_sharing_enabled();
  terminal_params.retry_budget = config.request_retry_budget;
  terminal_params.retry_min_timeout_sec = config.retry_min_timeout_sec;
  terminal_params.retry_backoff_base_sec = config.retry_backoff_base_sec;
  terminal_params.admission_defer_sec = config.admission_defer_sec;
  terminals_.reserve(config.terminals);
  for (int t = 0; t < config.terminals; ++t) {
    sim::Rng rng = master.Child(kTerminalStreamBase + t);
    sim::SimTime start = rng.Uniform(0.0, config.start_window_sec);
    server::MessageSink* ingress =
        proxies_.empty() ? nullptr
                         : proxies_[router_->ProxyForTerminal(t)].get();
    const int shard = ShardOfTerminal(t);
    terminals_.push_back(std::make_unique<client::Terminal>(
        envs_[shard].get(), t, terminal_params, networks_[shard].get(),
        server_.get(), library_.get(), layout_.get(), rng, start,
        share_.get(), fault_state_.get(), ingress, admission_.get()));
  }

  // Cross-shard endpoint directory: everything PostMessage can address
  // (node sinks, proxies, terminals via reply_to) registers its shard.
  if (group_ != nullptr) {
    for (int n = 0; n < config.num_nodes; ++n) {
      group_->RegisterEndpoint(server_->node_sink(n), ShardOfNode(n));
    }
    for (int p = 0; p < static_cast<int>(proxies_.size()); ++p) {
      group_->RegisterEndpoint(
          static_cast<server::MessageSink*>(proxies_[p].get()),
          ShardOfProxy(p));
    }
    for (int t = 0; t < config.terminals; ++t) {
      group_->RegisterEndpoint(
          static_cast<server::MessageSink*>(terminals_[t].get()),
          ShardOfTerminal(t));
    }
  }

  RegisterMetrics();
}

Simulation::~Simulation() = default;

void Simulation::RebuildSink::OnMessage(const server::Message& message) {
  (void)message;
  ++replies;
}

sim::Process Simulation::RebuildDisk(int disk_global) {
  const int node = disk_global / config_.disks_per_node;
  const double rate = config_.rebuild_mbps * 1e6 / 8.0;  // bytes/sec
  // Keyed by disk: a node recovery runs one rebuild per disk, and their
  // envelope discounts must accumulate (and clear independently).
  if (admission_ != nullptr) admission_->SetRebuildLoad(disk_global, rate);
  std::uint64_t bytes_read = 0;
  bool completed = true;
  for (int v = 0; v < config_.num_videos() && completed; ++v) {
    const std::int64_t blocks =
        library_->NumBlocks(v, config_.stripe_bytes);
    const std::int64_t total = library_->video(v).total_bytes();
    for (std::int64_t b = 0; b < blocks; ++b) {
      if (!fault_state_->node_up(node) ||
          !fault_state_->disk_up(disk_global)) {
        // Re-failed mid-rebuild: abort without counting a completion;
        // the next recovery starts a fresh pass.
        completed = false;
        break;
      }
      const std::vector<layout::BlockLocation> replicas =
          layout_->Replicas(v, b);
      bool owned = false;
      const layout::BlockLocation* peer = nullptr;
      for (const layout::BlockLocation& loc : replicas) {
        if (loc.disk_global == disk_global) {
          owned = true;
        } else if (peer == nullptr && loc.node != node &&
                   fault_state_->LocationUp(loc)) {
          peer = &loc;
        }
      }
      if (!owned) continue;
      const std::int64_t bytes = std::min<std::int64_t>(
          config_.stripe_bytes, total - b * config_.stripe_bytes);
      if (peer != nullptr) {
        server::Message request;
        request.kind = server::Message::Kind::kReadRequest;
        request.terminal = -1;  // background resync, like prefetch tasks
        request.video = v;
        request.block = b;
        request.bytes = bytes;
        request.deadline = sim::kSimTimeMax;
        request.reply_to = &rebuild_sink_;
        server::PostMessage(env_, network_, server::kControlMessageBytes,
                            server_->node_sink(peer->node), request);
        bytes_read += static_cast<std::uint64_t>(bytes);
      }
      // Throttle: the pass sweeps the disk at rebuild_mbps whether or
      // not a peer was reachable for this particular block.
      co_await env_->Hold(static_cast<double>(bytes) / rate);
    }
  }
  if (admission_ != nullptr) admission_->SetRebuildLoad(disk_global, 0.0);
  fault_state_->EndRebuild(disk_global, env_->now(), bytes_read, completed);
}

int Simulation::ShardOfTerminal(int terminal) const {
  if (!proxies_.empty()) {
    return ShardOfProxy(router_->ProxyForTerminal(terminal));
  }
  return terminal % config_.shards;
}

void Simulation::AddBarrierSampler(double interval_sec,
                                   std::function<void(sim::SimTime)> sample) {
  SPIFFI_CHECK(interval_sec > 0.0);
  BarrierSampler sampler;
  sampler.interval = interval_sec;
  sampler.next = env_->now() + interval_sec;
  sampler.sample = std::move(sample);
  samplers_.push_back(std::move(sampler));
}

void Simulation::AdvanceTo(sim::SimTime end) {
  if (group_ == nullptr) {
    env_->RunUntil(end);
    return;
  }
  // Stop the whole group at each barrier-sample tick at or before
  // `end`: after group_->AdvanceTo(t) every shard has fired all events
  // up to exactly t, so a sampler reads a globally consistent state.
  // The tick chain next = now + interval, iterated in double
  // arithmetic, matches the single-shard sampler process's Hold chain
  // exactly, keeping sample times bit-identical across shard counts.
  for (;;) {
    sim::SimTime next_tick = sim::kSimTimeMax;
    for (const BarrierSampler& s : samplers_) {
      next_tick = std::min(next_tick, s.next);
    }
    if (next_tick > end) break;
    if (next_tick > env_->now()) group_->AdvanceTo(next_tick);
    for (BarrierSampler& s : samplers_) {
      if (s.next == next_tick) {
        s.sample(next_tick);
        s.next = next_tick + s.interval;
      }
    }
  }
  if (end > env_->now()) group_->AdvanceTo(end);
}

std::uint64_t Simulation::total_events_fired() const {
  std::uint64_t sum = 0;
  for (const auto& env : envs_) sum += env->events_fired();
  return sum;
}

std::uint64_t Simulation::total_network_bytes() const {
  std::uint64_t sum = 0;
  for (const auto& network : networks_) sum += network->total_bytes();
  return sum;
}

std::uint64_t Simulation::MergedPeakBucketBytes() const {
  // Align the shards' bucket histories on absolute bucket ids and take
  // the max of the per-bucket sums. Order-independent, so the merged
  // peak is exact — and with one shard it is that instance's own peak.
  std::int64_t lo = 0;
  std::size_t length = 0;
  bool any = false;
  for (const auto& network : networks_) {
    if (network->first_bucket() < 0) continue;
    if (!any || network->first_bucket() < lo) {
      any = true;
      lo = network->first_bucket();
    }
  }
  if (!any) return 0;
  for (const auto& network : networks_) {
    if (network->first_bucket() < 0) continue;
    length = std::max(
        length, static_cast<std::size_t>(network->first_bucket() - lo) +
                    network->bucket_bytes().size());
  }
  std::uint64_t peak = 0;
  for (std::size_t i = 0; i < length; ++i) {
    std::uint64_t bucket_sum = 0;
    for (const auto& network : networks_) {
      if (network->first_bucket() < 0) continue;
      const std::size_t offset =
          static_cast<std::size_t>(network->first_bucket() - lo);
      if (i >= offset && i - offset < network->bucket_bytes().size()) {
        bucket_sum += network->bucket_bytes()[i - offset];
      }
    }
    peak = std::max(peak, bucket_sum);
  }
  return peak;
}

double Simulation::MergedAverageBandwidth(sim::SimTime now) const {
  // Every shard network resets together, so any stats_start works; the
  // computation with one shard is Network::AverageBandwidth verbatim.
  const double window = now - network_->stats_start();
  if (window <= 0.0) return 0.0;
  return static_cast<double>(total_network_bytes()) / window;
}

void Simulation::RunWarmup() { AdvanceTo(config_.warmup_seconds); }

void Simulation::ResetAllStats() {
  sim::SimTime now = env_->now();
  server_->ResetStats(now);
  for (auto& network : networks_) network->ResetStats();
  for (auto& terminal : terminals_) terminal->ResetStats();
  if (share_ != nullptr) share_->ResetStats();
  for (auto& proxy : proxies_) proxy->ResetStats();
  if (fault_state_ != nullptr) fault_state_->ResetStats(now);
  if (admission_ != nullptr) admission_->ResetStats();
  metrics_.Reset();  // owned instruments; probes read the state above
  measure_start_ = now;
}

void Simulation::RunMeasurement() {
  AdvanceTo(measure_start_ + config_.measure_seconds);
}

SimMetrics Simulation::CollectDirect() const {
  SimMetrics m;
  m.terminals = config_.terminals;
  sim::SimTime now = env_->now();
  m.measured_seconds = now - measure_start_;

  obs::QuantileSketch response_sketch;
  for (const auto& terminal : terminals_) {
    const auto& stats = terminal->stats();
    m.glitches += stats.glitches;
    if (stats.glitches > 0) ++m.terminals_with_glitches;
    m.frames_displayed += stats.frames_displayed;
    m.videos_completed += stats.videos_completed;
    // Sum first; normalized to a mean after the loop.
    m.avg_response_ms += stats.response_time.sum();
    response_sketch.Merge(stats.response_sketch);
  }
  m.p50_response_ms = response_sketch.Quantile(0.5) * 1e3;
  m.p99_response_ms = response_sketch.Quantile(0.99) * 1e3;
  std::uint64_t total_blocks = 0;
  for (const auto& terminal : terminals_) {
    total_blocks += terminal->stats().blocks_received;
  }
  m.avg_response_ms =
      total_blocks == 0 ? 0.0 : m.avg_response_ms / total_blocks * 1e3;

  double disk_util_sum = 0.0;
  double disk_util_min = 1.0;
  double disk_util_max = 0.0;
  double service_sum = 0.0;
  double seek_sum = 0.0;
  std::uint64_t service_count = 0;
  double cpu_util_sum = 0.0;
  int total_disks = 0;

  for (int n = 0; n < server_->num_nodes(); ++n) {
    const server::Node& node = server_->node(n);
    cpu_util_sum += node.cpu().AverageUtilization(now);
    const auto& pool_stats = node.pool().stats();
    m.buffer_references += pool_stats.references;
    m.buffer_hits += pool_stats.hits;
    m.buffer_attaches += pool_stats.attaches;
    m.buffer_misses += pool_stats.misses;
    m.shared_references += pool_stats.shared_refs;
    m.wasted_prefetches += pool_stats.wasted_prefetches;
    m.prefix_hits += pool_stats.prefix_hits;
    m.prefix_pinned_pages += node.pool().pinned_pages();
    for (int d = 0; d < node.num_disks(); ++d) {
      const hw::Disk& disk = node.disk(d);
      double util = disk.AverageUtilization(now);
      disk_util_sum += util;
      disk_util_min = std::min(disk_util_min, util);
      disk_util_max = std::max(disk_util_max, util);
      m.disk_reads += disk.requests_served();
      service_sum += disk.service_tally().sum();
      seek_sum += disk.seek_distance_tally().sum();
      service_count += disk.service_tally().count();
      ++total_disks;
    }
    for (int d = 0; d < node.num_disks(); ++d) {
      m.prefetches_issued += node.prefetcher(d).stats().issued;
    }
  }
  m.avg_disk_utilization = disk_util_sum / total_disks;
  m.min_disk_utilization = disk_util_min;
  m.max_disk_utilization = disk_util_max;
  m.avg_cpu_utilization = cpu_util_sum / server_->num_nodes();
  if (service_count > 0) {
    m.avg_disk_service_ms = service_sum / service_count * 1e3;
    m.avg_seek_cylinders = seek_sum / static_cast<double>(service_count);
  }

  m.peak_network_bytes_per_sec =
      static_cast<double>(MergedPeakBucketBytes()) /
      config_.network.bandwidth_bucket_sec;
  m.avg_network_bytes_per_sec = MergedAverageBandwidth(now);
  m.events_simulated = total_events_fired();

  // Stream sharing: all zero when no manager was constructed.
  if (share_ != nullptr) {
    const auto& share_stats = share_->stats();
    m.share_groups = share_stats.groups_formed;
    m.share_followers = share_stats.followers_attached;
    m.share_patches = share_stats.patchers_attached;
    m.share_patch_seconds = share_stats.patch_seconds_total;
    m.share_handoffs = share_stats.leader_handoffs;
  }

  // Proxy tier: all zero when no proxies are configured.
  double proxy_forward_sum = 0.0;
  std::uint64_t proxy_forward_count = 0;
  for (const auto& proxy : proxies_) {
    const auto& proxy_stats = proxy->stats();
    m.proxy_references += proxy_stats.references;
    m.proxy_hits += proxy_stats.hits;
    m.proxy_attaches += proxy_stats.attaches;
    m.proxy_forwards += proxy_stats.forwards;
    m.proxy_bytes_from_cache += proxy_stats.bytes_from_cache;
    proxy_forward_sum += proxy_stats.forward_latency.sum();
    proxy_forward_count += proxy_stats.forward_latency.count();
  }
  m.avg_proxy_forward_ms =
      proxy_forward_count == 0
          ? 0.0
          : proxy_forward_sum / proxy_forward_count * 1e3;

  // Availability: all zero on healthy runs (no FaultState).
  if (fault_state_ != nullptr) {
    fault::FaultState::Stats fstats = fault_state_->StatsAt(now);
    m.faults_injected = fstats.faults_injected;
    m.repairs_completed = fstats.repairs_completed;
    m.mttr_sec = fault_state_->MttrSec();
    m.fault_downtime_sec = fstats.downtime_sec;
    m.rebuilds_completed = fstats.rebuilds_completed;
    m.rebuild_sec = fstats.rebuild_sec;
    m.rebuild_bytes = fstats.rebuild_bytes;
  }
  for (int n = 0; n < server_->num_nodes(); ++n) {
    const server::Node& node = server_->node(n);
    const auto& fstats = node.fault_stats();
    m.rerouted_requests += fstats.rerouted_requests;
    m.degraded_waits += fstats.degraded_waits;
    m.prefetches_skipped_dead += fstats.prefetches_skipped_dead;
    for (int d = 0; d < node.num_disks(); ++d) {
      m.prefetches_skipped_dead +=
          node.prefetcher(d).stats().dropped_disk_down;
    }
  }
  for (const auto& terminal : terminals_) {
    m.requests_redirected += terminal->stats().requests_redirected;
    m.blocks_rerouted += terminal->stats().blocks_rerouted;
  }

  // Resilience layer: all zero when admission control, request retry,
  // and rebuild are off.
  if (admission_ != nullptr) {
    const auto& astats = admission_->stats();
    m.admission_admits = static_cast<std::uint64_t>(astats.admits);
    m.admission_rejects = static_cast<std::uint64_t>(astats.rejects);
    m.admission_defers = static_cast<std::uint64_t>(astats.defers);
    m.failover_readmissions =
        static_cast<std::uint64_t>(astats.failover_readmissions);
  }
  for (const auto& terminal : terminals_) {
    const auto& tstats = terminal->stats();
    m.request_retries += tstats.request_retries;
    m.retries_exhausted += tstats.retries_exhausted;
    m.session_failovers += tstats.session_failovers;
    m.duplicate_replies += tstats.duplicate_replies;
  }
  for (const auto& proxy : proxies_) {
    m.proxy_forward_retries += proxy->stats().forward_retries;
    m.proxy_stale_replies += proxy->stats().stale_replies;
  }
  return m;
}

SimMetrics Simulation::Collect() const {
  SimMetrics m;
  m.terminals = config_.terminals;
  m.measured_seconds = metrics_.Value("sim.measured_seconds");

  m.glitches =
      static_cast<std::uint64_t>(metrics_.Value("terminal.glitches"));
  m.terminals_with_glitches =
      static_cast<int>(metrics_.Value("terminal.glitched_terminals"));
  m.frames_displayed = static_cast<std::uint64_t>(
      metrics_.Value("terminal.frames_displayed"));
  m.videos_completed = static_cast<std::uint64_t>(
      metrics_.Value("terminal.videos_completed"));
  m.avg_response_ms = metrics_.Value("terminal.response_ms.avg");
  obs::QuantileSketch response =
      metrics_.GetSketch("terminal.response_sec_sketch");
  m.p50_response_ms = response.Quantile(0.5) * 1e3;
  m.p99_response_ms = response.Quantile(0.99) * 1e3;

  m.buffer_references =
      static_cast<std::uint64_t>(metrics_.Value("pool.references"));
  m.buffer_hits = static_cast<std::uint64_t>(metrics_.Value("pool.hits"));
  m.buffer_attaches =
      static_cast<std::uint64_t>(metrics_.Value("pool.attaches"));
  m.buffer_misses =
      static_cast<std::uint64_t>(metrics_.Value("pool.misses"));
  m.shared_references =
      static_cast<std::uint64_t>(metrics_.Value("pool.shared_refs"));
  m.wasted_prefetches =
      static_cast<std::uint64_t>(metrics_.Value("pool.wasted_prefetches"));
  m.prefetches_issued =
      static_cast<std::uint64_t>(metrics_.Value("prefetch.issued"));

  m.disk_reads = static_cast<std::uint64_t>(metrics_.Value("disk.reads"));
  m.avg_disk_utilization = metrics_.Value("disk.utilization.avg");
  m.min_disk_utilization = metrics_.Value("disk.utilization.min");
  m.max_disk_utilization = metrics_.Value("disk.utilization.max");
  m.avg_cpu_utilization = metrics_.Value("cpu.utilization.avg");
  m.avg_disk_service_ms = metrics_.Value("disk.service_ms.avg");
  m.avg_seek_cylinders = metrics_.Value("disk.seek_cylinders.avg");

  m.peak_network_bytes_per_sec =
      metrics_.Value("network.peak_bytes_per_sec");
  m.avg_network_bytes_per_sec = metrics_.Value("network.avg_bytes_per_sec");
  m.events_simulated =
      static_cast<std::uint64_t>(metrics_.Value("kernel.events_fired"));

  m.share_groups =
      static_cast<std::uint64_t>(metrics_.Value("share.groups_formed"));
  m.share_followers =
      static_cast<std::uint64_t>(metrics_.Value("share.followers"));
  m.share_patches =
      static_cast<std::uint64_t>(metrics_.Value("share.patches"));
  m.share_patch_seconds = metrics_.Value("share.patch_seconds");
  m.share_handoffs =
      static_cast<std::uint64_t>(metrics_.Value("share.handoffs"));
  m.prefix_hits =
      static_cast<std::uint64_t>(metrics_.Value("pool.prefix_hits"));
  m.prefix_pinned_pages =
      static_cast<std::int64_t>(metrics_.Value("pool.pinned_pages"));

  m.proxy_references =
      static_cast<std::uint64_t>(metrics_.Value("proxy.references"));
  m.proxy_hits = static_cast<std::uint64_t>(metrics_.Value("proxy.hits"));
  m.proxy_attaches =
      static_cast<std::uint64_t>(metrics_.Value("proxy.attaches"));
  m.proxy_forwards =
      static_cast<std::uint64_t>(metrics_.Value("proxy.forwards"));
  m.proxy_bytes_from_cache = static_cast<std::uint64_t>(
      metrics_.Value("proxy.bytes_from_cache"));
  m.avg_proxy_forward_ms = metrics_.Value("proxy.forward_ms.avg");

  m.faults_injected =
      static_cast<std::uint64_t>(metrics_.Value("fault.faults_injected"));
  m.repairs_completed =
      static_cast<std::uint64_t>(metrics_.Value("fault.repairs_completed"));
  m.mttr_sec = metrics_.Value("fault.mttr_sec");
  m.fault_downtime_sec = metrics_.Value("fault.downtime_sec");
  m.rerouted_requests =
      static_cast<std::uint64_t>(metrics_.Value("fault.rerouted_requests"));
  m.degraded_waits =
      static_cast<std::uint64_t>(metrics_.Value("fault.degraded_waits"));
  m.prefetches_skipped_dead = static_cast<std::uint64_t>(
      metrics_.Value("fault.prefetches_skipped_dead"));
  m.requests_redirected = static_cast<std::uint64_t>(
      metrics_.Value("fault.requests_redirected"));
  m.blocks_rerouted =
      static_cast<std::uint64_t>(metrics_.Value("fault.blocks_rerouted"));

  m.admission_admits =
      static_cast<std::uint64_t>(metrics_.Value("admission.admits"));
  m.admission_rejects =
      static_cast<std::uint64_t>(metrics_.Value("admission.rejects"));
  m.admission_defers =
      static_cast<std::uint64_t>(metrics_.Value("admission.defers"));
  m.failover_readmissions = static_cast<std::uint64_t>(
      metrics_.Value("admission.failover_readmissions"));
  m.request_retries = static_cast<std::uint64_t>(
      metrics_.Value("terminal.request_retries"));
  m.retries_exhausted = static_cast<std::uint64_t>(
      metrics_.Value("terminal.retries_exhausted"));
  m.session_failovers = static_cast<std::uint64_t>(
      metrics_.Value("terminal.session_failovers"));
  m.duplicate_replies = static_cast<std::uint64_t>(
      metrics_.Value("terminal.duplicate_replies"));
  m.proxy_forward_retries = static_cast<std::uint64_t>(
      metrics_.Value("proxy.forward_retries"));
  m.proxy_stale_replies =
      static_cast<std::uint64_t>(metrics_.Value("proxy.stale_replies"));
  m.rebuilds_completed = static_cast<std::uint64_t>(
      metrics_.Value("fault.rebuilds_completed"));
  m.rebuild_sec = metrics_.Value("fault.rebuild_sec");
  m.rebuild_bytes =
      static_cast<std::uint64_t>(metrics_.Value("fault.rebuild_bytes"));
  return m;
}

void Simulation::RegisterMetrics() {
  // Every probe below replicates the corresponding CollectDirect()
  // computation exactly — same loops, same accumulation order — so the
  // registry path is bit-identical to the direct path (enforced by
  // tests/vod/metrics_regression_test.cc). Change both together.
  metrics_.AddProbe("sim.measured_seconds",
                    [this] { return env_->now() - measure_start_; });

  // --- Terminal experience ---
  auto sum_terminals = [this](auto field) {
    std::uint64_t sum = 0;
    for (const auto& terminal : terminals_) {
      sum += field(terminal->stats());
    }
    return static_cast<double>(sum);
  };
  metrics_.AddProbe("terminal.glitches", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.glitches; });
  });
  metrics_.AddProbe("terminal.glitched_terminals", [this] {
    int count = 0;
    for (const auto& terminal : terminals_) {
      if (terminal->stats().glitches > 0) ++count;
    }
    return static_cast<double>(count);
  });
  metrics_.AddProbe("terminal.frames_displayed", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.frames_displayed; });
  });
  metrics_.AddProbe("terminal.videos_completed", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.videos_completed; });
  });
  metrics_.AddProbe("terminal.blocks_received", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.blocks_received; });
  });
  metrics_.AddProbe("terminal.requests_sent", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.requests_sent; });
  });
  metrics_.AddProbe("terminal.stale_replies", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.stale_replies; });
  });
  metrics_.AddProbe("terminal.response_ms.avg", [this] {
    double sum = 0.0;
    for (const auto& terminal : terminals_) {
      sum += terminal->stats().response_time.sum();
    }
    std::uint64_t total_blocks = 0;
    for (const auto& terminal : terminals_) {
      total_blocks += terminal->stats().blocks_received;
    }
    return total_blocks == 0 ? 0.0 : sum / total_blocks * 1e3;
  });
  metrics_.AddHistogramProbe(
      "terminal.response_sec", [this](sim::Histogram& h) {
        for (const auto& terminal : terminals_) {
          h.Merge(terminal->stats().response_histogram);
        }
      });
  // The sketch carries the same samples at <=1% relative error; the
  // SimMetrics percentiles come from here, the coarse histogram above is
  // the regression reference.
  metrics_.AddSketchProbe(
      "terminal.response_sec_sketch", [this](obs::QuantileSketch& s) {
        for (const auto& terminal : terminals_) {
          s.Merge(terminal->stats().response_sketch);
        }
      });

  // --- Deadline slack & glitch attribution (derived; registry-only) ---
  metrics_.AddProbe("terminal.deadline_slack_ms.avg", [this] {
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto& terminal : terminals_) {
      sum += terminal->stats().deadline_slack.sum();
      count += terminal->stats().deadline_slack.count();
    }
    return count == 0 ? 0.0 : sum / count * 1e3;
  });
  metrics_.AddHistogramProbe(
      "terminal.deadline_slack_sec", [this](sim::Histogram& h) {
        for (const auto& terminal : terminals_) {
          h.Merge(terminal->stats().slack_histogram);
        }
      });
  metrics_.AddSketchProbe(
      "terminal.deadline_slack_sec_sketch", [this](obs::QuantileSketch& s) {
        for (const auto& terminal : terminals_) {
          s.Merge(terminal->stats().slack_sketch);
        }
      });
  metrics_.AddProbe("terminal.late_blocks", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.late_blocks; });
  });
  metrics_.AddProbe("terminal.late_attrib.network", [sum_terminals] {
    return sum_terminals(
        [](const auto& s) { return s.late_attrib_network; });
  });
  metrics_.AddProbe("terminal.late_attrib.server_cpu", [sum_terminals] {
    return sum_terminals(
        [](const auto& s) { return s.late_attrib_server_cpu; });
  });
  metrics_.AddProbe("terminal.late_attrib.disk_queue", [sum_terminals] {
    return sum_terminals(
        [](const auto& s) { return s.late_attrib_disk_queue; });
  });
  metrics_.AddProbe("terminal.late_attrib.disk_service", [sum_terminals] {
    return sum_terminals(
        [](const auto& s) { return s.late_attrib_disk_service; });
  });
  metrics_.AddProbe("terminal.late_attrib.fault", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.late_attrib_fault; });
  });

  // --- Availability (registered unconditionally; every probe reads zero
  // on healthy runs so exports have a stable schema) ---
  metrics_.AddProbe("fault.faults_injected", [this] {
    return fault_state_ == nullptr
               ? 0.0
               : static_cast<double>(
                     fault_state_->StatsAt(env_->now()).faults_injected);
  });
  metrics_.AddProbe("fault.repairs_completed", [this] {
    return fault_state_ == nullptr
               ? 0.0
               : static_cast<double>(
                     fault_state_->StatsAt(env_->now()).repairs_completed);
  });
  metrics_.AddProbe("fault.mttr_sec", [this] {
    return fault_state_ == nullptr ? 0.0 : fault_state_->MttrSec();
  });
  metrics_.AddProbe("fault.downtime_sec", [this] {
    return fault_state_ == nullptr
               ? 0.0
               : fault_state_->StatsAt(env_->now()).downtime_sec;
  });
  auto sum_node_fault = [this](auto field) {
    std::uint64_t sum = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      sum += field(server_->node(n).fault_stats());
    }
    return static_cast<double>(sum);
  };
  metrics_.AddProbe("fault.rerouted_requests", [sum_node_fault] {
    return sum_node_fault(
        [](const auto& s) { return s.rerouted_requests; });
  });
  metrics_.AddProbe("fault.degraded_waits", [sum_node_fault] {
    return sum_node_fault([](const auto& s) { return s.degraded_waits; });
  });
  metrics_.AddProbe("fault.prefetches_skipped_dead", [this] {
    std::uint64_t sum = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      sum += node.fault_stats().prefetches_skipped_dead;
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += node.prefetcher(d).stats().dropped_disk_down;
      }
    }
    return static_cast<double>(sum);
  });
  metrics_.AddProbe("fault.requests_redirected", [sum_terminals] {
    return sum_terminals(
        [](const auto& s) { return s.requests_redirected; });
  });
  metrics_.AddProbe("fault.blocks_rerouted", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.blocks_rerouted; });
  });
  metrics_.AddProbe("fault.rebuilds_completed", [this] {
    return fault_state_ == nullptr
               ? 0.0
               : static_cast<double>(
                     fault_state_->StatsAt(env_->now()).rebuilds_completed);
  });
  metrics_.AddProbe("fault.rebuild_sec", [this] {
    return fault_state_ == nullptr
               ? 0.0
               : fault_state_->StatsAt(env_->now()).rebuild_sec;
  });
  metrics_.AddProbe("fault.rebuild_bytes", [this] {
    return fault_state_ == nullptr
               ? 0.0
               : static_cast<double>(
                     fault_state_->StatsAt(env_->now()).rebuild_bytes);
  });

  // --- Resilience (unconditional; every probe reads zero when admission
  // control and request retry are off) ---
  metrics_.AddProbe("admission.admits", [this] {
    return admission_ == nullptr
               ? 0.0
               : static_cast<double>(admission_->stats().admits);
  });
  metrics_.AddProbe("admission.rejects", [this] {
    return admission_ == nullptr
               ? 0.0
               : static_cast<double>(admission_->stats().rejects);
  });
  metrics_.AddProbe("admission.defers", [this] {
    return admission_ == nullptr
               ? 0.0
               : static_cast<double>(admission_->stats().defers);
  });
  metrics_.AddProbe("admission.failover_readmissions", [this] {
    return admission_ == nullptr
               ? 0.0
               : static_cast<double>(
                     admission_->stats().failover_readmissions);
  });
  // Registry-only: live reservation state at collection time.
  metrics_.AddProbe("admission.active_sessions", [this] {
    return admission_ == nullptr
               ? 0.0
               : static_cast<double>(admission_->active_sessions());
  });
  metrics_.AddProbe("terminal.request_retries", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.request_retries; });
  });
  metrics_.AddProbe("terminal.retries_exhausted", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.retries_exhausted; });
  });
  metrics_.AddProbe("terminal.session_failovers", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.session_failovers; });
  });
  metrics_.AddProbe("terminal.duplicate_replies", [sum_terminals] {
    return sum_terminals([](const auto& s) { return s.duplicate_replies; });
  });

  // --- Buffer pool & prefetch (summed over nodes) ---
  auto sum_pool = [this](auto field) {
    std::uint64_t sum = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      sum += field(server_->node(n).pool().stats());
    }
    return static_cast<double>(sum);
  };
  metrics_.AddProbe("pool.references", [sum_pool] {
    return sum_pool([](const auto& s) { return s.references; });
  });
  metrics_.AddProbe("pool.hits", [sum_pool] {
    return sum_pool([](const auto& s) { return s.hits; });
  });
  metrics_.AddProbe("pool.attaches", [sum_pool] {
    return sum_pool([](const auto& s) { return s.attaches; });
  });
  metrics_.AddProbe("pool.misses", [sum_pool] {
    return sum_pool([](const auto& s) { return s.misses; });
  });
  metrics_.AddProbe("pool.shared_refs", [sum_pool] {
    return sum_pool([](const auto& s) { return s.shared_refs; });
  });
  metrics_.AddProbe("pool.evictions", [sum_pool] {
    return sum_pool([](const auto& s) { return s.evictions; });
  });
  metrics_.AddProbe("pool.wasted_prefetches", [sum_pool] {
    return sum_pool([](const auto& s) { return s.wasted_prefetches; });
  });
  metrics_.AddProbe("pool.allocation_stalls", [sum_pool] {
    return sum_pool([](const auto& s) { return s.allocation_stalls; });
  });
  metrics_.AddProbe("pool.prefix_hits", [sum_pool] {
    return sum_pool([](const auto& s) { return s.prefix_hits; });
  });
  metrics_.AddProbe("pool.pinned_pages", [this] {
    std::int64_t sum = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      sum += server_->node(n).pool().pinned_pages();
    }
    return static_cast<double>(sum);
  });

  // --- Stream sharing (all zero when no manager is constructed) ---
  metrics_.AddProbe("share.groups_formed", [this] {
    return share_ == nullptr
               ? 0.0
               : static_cast<double>(share_->stats().groups_formed);
  });
  metrics_.AddProbe("share.followers", [this] {
    return share_ == nullptr
               ? 0.0
               : static_cast<double>(share_->stats().followers_attached);
  });
  metrics_.AddProbe("share.patches", [this] {
    return share_ == nullptr
               ? 0.0
               : static_cast<double>(share_->stats().patchers_attached);
  });
  metrics_.AddProbe("share.patch_seconds", [this] {
    return share_ == nullptr ? 0.0 : share_->stats().patch_seconds_total;
  });
  metrics_.AddProbe("share.handoffs", [this] {
    return share_ == nullptr
               ? 0.0
               : static_cast<double>(share_->stats().leader_handoffs);
  });
  // --- Proxy tier (registered unconditionally; the loops read zero when
  // no proxies exist so exports keep a stable schema) ---
  auto sum_proxy = [this](auto field) {
    std::uint64_t sum = 0;
    for (const auto& proxy : proxies_) {
      sum += field(proxy->stats());
    }
    return static_cast<double>(sum);
  };
  metrics_.AddProbe("proxy.references", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.references; });
  });
  metrics_.AddProbe("proxy.hits", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.hits; });
  });
  metrics_.AddProbe("proxy.attaches", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.attaches; });
  });
  metrics_.AddProbe("proxy.forwards", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.forwards; });
  });
  metrics_.AddProbe("proxy.bytes_from_cache", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.bytes_from_cache; });
  });
  metrics_.AddProbe("proxy.forward_ms.avg", [this] {
    double sum = 0.0;
    std::uint64_t count = 0;
    for (const auto& proxy : proxies_) {
      sum += proxy->stats().forward_latency.sum();
      count += proxy->stats().forward_latency.count();
    }
    return count == 0 ? 0.0 : sum / count * 1e3;
  });
  metrics_.AddProbe("proxy.forward_retries", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.forward_retries; });
  });
  metrics_.AddProbe("proxy.stale_replies", [sum_proxy] {
    return sum_proxy([](const auto& s) { return s.stale_replies; });
  });
  // Registry-only: cache occupancy across the tier at collection time.
  metrics_.AddProbe("proxy.pages_in_use", [this] {
    std::int64_t sum = 0;
    for (const auto& proxy : proxies_) {
      sum += proxy->cache().pages_in_use();
    }
    return static_cast<double>(sum);
  });

  auto sum_prefetch = [this](auto field) {
    std::uint64_t sum = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += field(node.prefetcher(d).stats());
      }
    }
    return static_cast<double>(sum);
  };
  metrics_.AddProbe("prefetch.issued", [sum_prefetch] {
    return sum_prefetch([](const auto& s) { return s.issued; });
  });
  metrics_.AddProbe("prefetch.enqueued", [sum_prefetch] {
    return sum_prefetch([](const auto& s) { return s.enqueued; });
  });
  metrics_.AddProbe("prefetch.duplicates_dropped", [sum_prefetch] {
    return sum_prefetch(
        [](const auto& s) { return s.duplicates_dropped; });
  });
  metrics_.AddProbe("prefetch.already_cached", [sum_prefetch] {
    return sum_prefetch([](const auto& s) { return s.already_cached; });
  });

  // --- Disks & CPU ---
  metrics_.AddProbe("disk.reads", [this] {
    std::uint64_t sum = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += node.disk(d).requests_served();
      }
    }
    return static_cast<double>(sum);
  });
  metrics_.AddProbe("disk.utilization.avg", [this] {
    double sum = 0.0;
    int total_disks = 0;
    sim::SimTime now = env_->now();
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += node.disk(d).AverageUtilization(now);
        ++total_disks;
      }
    }
    return sum / total_disks;
  });
  metrics_.AddProbe("disk.utilization.min", [this] {
    double min = 1.0;
    sim::SimTime now = env_->now();
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        min = std::min(min, node.disk(d).AverageUtilization(now));
      }
    }
    return min;
  });
  metrics_.AddProbe("disk.utilization.max", [this] {
    double max = 0.0;
    sim::SimTime now = env_->now();
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        max = std::max(max, node.disk(d).AverageUtilization(now));
      }
    }
    return max;
  });
  metrics_.AddProbe("cpu.utilization.avg", [this] {
    double sum = 0.0;
    sim::SimTime now = env_->now();
    for (int n = 0; n < server_->num_nodes(); ++n) {
      sum += server_->node(n).cpu().AverageUtilization(now);
    }
    return sum / server_->num_nodes();
  });
  metrics_.AddProbe("disk.service_ms.avg", [this] {
    double sum = 0.0;
    std::uint64_t count = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += node.disk(d).service_tally().sum();
        count += node.disk(d).service_tally().count();
      }
    }
    return count == 0 ? 0.0 : sum / count * 1e3;
  });
  metrics_.AddProbe("disk.seek_cylinders.avg", [this] {
    double sum = 0.0;
    std::uint64_t count = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += node.disk(d).seek_distance_tally().sum();
        count += node.disk(d).service_tally().count();
      }
    }
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  });
  // Queue-wait vs service breakdown: service_ms.avg above is the
  // mechanical half; this is the time requests spent waiting for the
  // head before being picked by the scheduler.
  metrics_.AddProbe("disk.queue_wait_ms.avg", [this] {
    double sum = 0.0;
    std::uint64_t count = 0;
    for (int n = 0; n < server_->num_nodes(); ++n) {
      const server::Node& node = server_->node(n);
      for (int d = 0; d < node.num_disks(); ++d) {
        sum += node.disk(d).queue_wait_tally().sum();
        count += node.disk(d).queue_wait_tally().count();
      }
    }
    return count == 0 ? 0.0 : sum / count * 1e3;
  });

  // --- Network (merged across shard instances; with one shard the
  // merge reads the single instance bit-for-bit) ---
  metrics_.AddProbe("network.peak_bytes_per_sec", [this] {
    return static_cast<double>(MergedPeakBucketBytes()) /
           config_.network.bandwidth_bucket_sec;
  });
  metrics_.AddProbe("network.avg_bytes_per_sec", [this] {
    return MergedAverageBandwidth(env_->now());
  });

  // --- Kernel self-profile (summed over shard environments) ---
  metrics_.AddProbe("kernel.events_fired", [this] {
    return static_cast<double>(total_events_fired());
  });
  metrics_.AddProbe("kernel.peak_calendar_size", [this] {
    std::size_t sum = 0;
    for (const auto& env : envs_) sum += env->peak_calendar_size();
    return static_cast<double>(sum);
  });
  metrics_.AddProbe("kernel.calendar_grows", [this] {
    std::uint64_t sum = 0;
    for (const auto& env : envs_) sum += env->calendar_storage_grows();
    return static_cast<double>(sum);
  });
  metrics_.AddProbe("kernel.peak_processes", [this] {
    std::size_t sum = 0;
    for (const auto& env : envs_) sum += env->peak_processes();
    return static_cast<double>(sum);
  });
}

obs::Tracer& Simulation::EnableTracing(std::size_t ring_capacity) {
  obs::Tracer& tracer = env_->EnableTracing(ring_capacity);
  tracer.SetProcessName(obs::Tracer::kTerminalsPid, "terminals");
  tracer.SetProcessName(obs::Tracer::kNetworkPid, "network");
  if (fault_state_ != nullptr) {
    tracer.SetProcessName(obs::Tracer::kFaultPid, "faults");
    int total_disks = config_.total_disks();
    for (int g = 0; g < total_disks; ++g) {
      tracer.SetThreadName(obs::Tracer::kFaultPid, g,
                           "disk " + std::to_string(g / config_.disks_per_node) +
                               "." + std::to_string(g % config_.disks_per_node));
    }
    for (int n = 0; n < config_.num_nodes; ++n) {
      tracer.SetThreadName(obs::Tracer::kFaultPid, total_disks + n,
                           "node " + std::to_string(n));
    }
  }
  for (int p = 0; p < num_proxies(); ++p) {
    std::int32_t pid = obs::Tracer::kProxyPidBase + p;
    tracer.SetProcessName(pid, "proxy " + std::to_string(p));
    tracer.SetThreadName(pid, obs::Tracer::kCpuTid, "cache");
  }
  for (int n = 0; n < server_->num_nodes(); ++n) {
    std::int32_t pid = obs::Tracer::kNodePidBase + n;
    tracer.SetProcessName(pid, "node " + std::to_string(n));
    tracer.SetThreadName(pid, obs::Tracer::kCpuTid, "cpu");
    tracer.SetThreadName(pid, obs::Tracer::kPoolTid, "buffer pool");
    for (int d = 0; d < config_.disks_per_node; ++d) {
      tracer.SetThreadName(pid, obs::Tracer::kDiskTidBase + d,
                           "disk " + std::to_string(d));
    }
  }
  return tracer;
}

SimMetrics Simulation::Run() {
  static const std::atomic<bool> never_cancelled{false};
  SimMetrics metrics;
  bool completed = Run(never_cancelled, &metrics);
  SPIFFI_CHECK(completed);
  return metrics;
}

bool Simulation::Run(const std::atomic<bool>& cancel, SimMetrics* out) {
  return Run(cancel, out, ProgressFn());
}

bool Simulation::Run(const std::atomic<bool>& cancel, SimMetrics* out,
                     const ProgressFn& progress) {
  SPIFFI_CHECK(out != nullptr);
  // Slice count per phase: fine enough that a moot capacity probe stops
  // within ~2% of its runtime, coarse enough to keep RunUntil overhead
  // invisible. Intermediate slice boundaries fire the same events in the
  // same order as one big RunUntil, and the final boundary is the exact
  // phase end, so results do not depend on the slicing.
  constexpr int kSlicesPerPhase = 50;
  auto wall_start = std::chrono::steady_clock::now();
  const double sim_end = config_.warmup_seconds + config_.measure_seconds;
  auto report_progress = [&](bool in_measurement) {
    if (!progress) return;
    RunProgress p;
    p.sim_now_seconds = env_->now();
    p.sim_end_seconds = sim_end;
    p.events_fired = total_events_fired();
    p.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    p.in_measurement = in_measurement;
    progress(p);
  };

  for (int i = 1; i <= kSlicesPerPhase; ++i) {
    if (cancel.load(std::memory_order_relaxed)) return false;
    sim::SimTime end = i == kSlicesPerPhase
                           ? config_.warmup_seconds
                           : config_.warmup_seconds * i / kSlicesPerPhase;
    AdvanceTo(end);
    report_progress(false);
  }
  ResetAllStats();
  for (int i = 1; i <= kSlicesPerPhase; ++i) {
    if (cancel.load(std::memory_order_relaxed)) return false;
    sim::SimTime end =
        i == kSlicesPerPhase
            ? measure_start_ + config_.measure_seconds
            : measure_start_ + config_.measure_seconds * i / kSlicesPerPhase;
    AdvanceTo(end);
    report_progress(true);
  }

  *out = Collect();
  if (RunObserver observer = CurrentRunObserver()) {
    RunProfile profile;
    profile.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    profile.terminals = config_.terminals;
    profile.sim_seconds = sim_end;
    profile.seed = config_.seed;
    profile.config_digest = ConfigDigest(config_);
    profile.config_summary = config_.Describe();
    profile.metrics = *out;
    profile.kernel = obs::CaptureKernelProfile(*env_);
    // Sharded runs: fold the other shards' kernels into one profile so
    // events/sec and peak sizes describe the whole simulation.
    for (std::size_t s = 1; s < envs_.size(); ++s) {
      const obs::KernelProfile shard = obs::CaptureKernelProfile(*envs_[s]);
      profile.kernel.events_fired += shard.events_fired;
      profile.kernel.calendar_size += shard.calendar_size;
      profile.kernel.peak_calendar_size += shard.peak_calendar_size;
      profile.kernel.calendar_grows += shard.calendar_grows;
      profile.kernel.live_processes += shard.live_processes;
      profile.kernel.peak_processes += shard.peak_processes;
      profile.kernel.resume_slots += shard.resume_slots;
    }
    observer(profile);
  }
  return true;
}

SimMetrics RunSimulation(const SimConfig& config) {
  Simulation simulation(config);
  return simulation.Run();
}

}  // namespace spiffi::vod
