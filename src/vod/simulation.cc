#include "vod/simulation.h"

#include <algorithm>

#include "layout/nonstriped.h"
#include "layout/striping.h"
#include "mpeg/zipf.h"
#include "sim/check.h"

namespace spiffi::vod {

namespace {

// Distinct child-stream tags for the master seed.
constexpr std::uint64_t kLibraryStream = 1;
constexpr std::uint64_t kPlacementStream = 2;
constexpr std::uint64_t kTerminalStreamBase = 1000;

}  // namespace

Simulation::Simulation(const SimConfig& config) : config_(config) {
  std::string error = config.Validate();
  if (!error.empty()) {
    std::fprintf(stderr, "invalid SimConfig: %s\n", error.c_str());
  }
  SPIFFI_CHECK(error.empty());

  env_ = std::make_unique<sim::Environment>();
  sim::Rng master(config.seed);

  // Videos and their popularity (z = 0 degenerates to uniform).
  mpeg::ZipfDistribution popularity(config.num_videos(), config.zipf_z);
  library_ = std::make_unique<mpeg::VideoLibrary>(
      config.num_videos(), config.video_seconds, config.mpeg, popularity,
      master.Child(kLibraryStream).NextU64());

  // Layout.
  if (config.placement == VideoPlacement::kStriped) {
    std::vector<std::int64_t> blocks(config.num_videos());
    for (int v = 0; v < config.num_videos(); ++v) {
      blocks[v] = library_->NumBlocks(v, config.stripe_bytes);
    }
    layout_ = std::make_unique<layout::StripedLayout>(
        config.num_nodes, config.disks_per_node, config.stripe_bytes,
        std::move(blocks));
  } else {
    std::vector<std::int64_t> bytes(config.num_videos());
    for (int v = 0; v < config.num_videos(); ++v) {
      bytes[v] = library_->video(v).total_bytes();
    }
    layout_ = std::make_unique<layout::NonStripedLayout>(
        config.num_nodes, config.disks_per_node, config.stripe_bytes,
        std::move(bytes), master.Child(kPlacementStream).NextU64());
  }

  network_ = std::make_unique<hw::Network>(env_.get(), config.network);

  // Server nodes.
  server::NodeConfig node_config;
  node_config.disks_per_node = config.disks_per_node;
  node_config.cpu_mips = config.cpu_mips;
  node_config.costs = config.cpu_costs;
  node_config.disk = config.disk;
  node_config.sched.policy = config.disk_sched;
  node_config.sched.cylinder_bytes = config.disk.cylinder_bytes;
  node_config.sched.gss_groups = config.gss_groups;
  node_config.sched.realtime_classes = config.realtime_classes;
  node_config.sched.realtime_spacing_sec = config.realtime_spacing_sec;
  node_config.pool_pages = config.pool_pages_per_node();
  node_config.replacement = config.replacement;
  node_config.prefetch = config.prefetch;
  node_config.prefetch_trigger = config.effective_prefetch_trigger();
  node_config.prefetch_workers = config.effective_prefetch_workers();
  node_config.max_advance_prefetch_sec = config.max_advance_prefetch_sec;
  node_config.block_bytes = config.stripe_bytes;
  server_ = std::make_unique<server::VideoServer>(
      env_.get(), config.num_nodes, node_config, network_.get(),
      library_.get(), layout_.get());

  if (config.piggyback_window_sec > 0.0) {
    piggyback_ = std::make_unique<client::PiggybackManager>(
        env_.get(), config.piggyback_window_sec);
  }

  // Terminals, with staggered starts.
  client::TerminalParams terminal_params;
  terminal_params.memory_bytes = config.terminal_memory_bytes;
  terminal_params.block_bytes = config.stripe_bytes;
  terminal_params.pause_enabled = config.pause_enabled;
  terminal_params.pauses_per_video_mean = config.pauses_per_video_mean;
  terminal_params.pause_duration_mean_sec = config.pause_duration_mean_sec;
  terminal_params.search_enabled = config.search_enabled;
  terminal_params.searches_per_video_mean = config.searches_per_video_mean;
  terminal_params.search_duration_mean_sec =
      config.search_duration_mean_sec;
  terminal_params.search_show_sec = config.search_show_sec;
  terminal_params.search_skip_sec = config.search_skip_sec;
  terminal_params.random_initial_position =
      config.random_initial_position && config.piggyback_window_sec <= 0.0;
  terminals_.reserve(config.terminals);
  for (int t = 0; t < config.terminals; ++t) {
    sim::Rng rng = master.Child(kTerminalStreamBase + t);
    sim::SimTime start = rng.Uniform(0.0, config.start_window_sec);
    terminals_.push_back(std::make_unique<client::Terminal>(
        env_.get(), t, terminal_params, network_.get(), server_.get(),
        library_.get(), layout_.get(), rng, start, piggyback_.get()));
  }
}

Simulation::~Simulation() = default;

void Simulation::RunWarmup() { env_->RunUntil(config_.warmup_seconds); }

void Simulation::ResetAllStats() {
  sim::SimTime now = env_->now();
  server_->ResetStats(now);
  network_->ResetStats();
  for (auto& terminal : terminals_) terminal->ResetStats();
  if (piggyback_ != nullptr) piggyback_->ResetStats();
  measure_start_ = now;
}

void Simulation::RunMeasurement() {
  env_->RunUntil(measure_start_ + config_.measure_seconds);
}

SimMetrics Simulation::Collect() const {
  SimMetrics m;
  m.terminals = config_.terminals;
  sim::SimTime now = env_->now();
  m.measured_seconds = now - measure_start_;

  sim::Histogram response_histogram;
  for (const auto& terminal : terminals_) {
    const auto& stats = terminal->stats();
    m.glitches += stats.glitches;
    if (stats.glitches > 0) ++m.terminals_with_glitches;
    m.frames_displayed += stats.frames_displayed;
    m.videos_completed += stats.videos_completed;
    // Sum first; normalized to a mean after the loop.
    m.avg_response_ms += stats.response_time.sum();
    response_histogram.Merge(stats.response_histogram);
  }
  m.p50_response_ms = response_histogram.Percentile(0.5) * 1e3;
  m.p99_response_ms = response_histogram.Percentile(0.99) * 1e3;
  std::uint64_t total_blocks = 0;
  for (const auto& terminal : terminals_) {
    total_blocks += terminal->stats().blocks_received;
  }
  m.avg_response_ms =
      total_blocks == 0 ? 0.0 : m.avg_response_ms / total_blocks * 1e3;

  double disk_util_sum = 0.0;
  double disk_util_min = 1.0;
  double disk_util_max = 0.0;
  double service_sum = 0.0;
  double seek_sum = 0.0;
  std::uint64_t service_count = 0;
  double cpu_util_sum = 0.0;
  int total_disks = 0;

  for (int n = 0; n < server_->num_nodes(); ++n) {
    const server::Node& node = server_->node(n);
    cpu_util_sum += node.cpu().AverageUtilization(now);
    const auto& pool_stats = node.pool().stats();
    m.buffer_references += pool_stats.references;
    m.buffer_hits += pool_stats.hits;
    m.buffer_attaches += pool_stats.attaches;
    m.buffer_misses += pool_stats.misses;
    m.shared_references += pool_stats.shared_refs;
    m.wasted_prefetches += pool_stats.wasted_prefetches;
    for (int d = 0; d < node.num_disks(); ++d) {
      const hw::Disk& disk = node.disk(d);
      double util = disk.AverageUtilization(now);
      disk_util_sum += util;
      disk_util_min = std::min(disk_util_min, util);
      disk_util_max = std::max(disk_util_max, util);
      m.disk_reads += disk.requests_served();
      service_sum += disk.service_tally().sum();
      seek_sum += disk.seek_distance_tally().sum();
      service_count += disk.service_tally().count();
      ++total_disks;
    }
    for (int d = 0; d < node.num_disks(); ++d) {
      m.prefetches_issued += node.prefetcher(d).stats().issued;
    }
  }
  m.avg_disk_utilization = disk_util_sum / total_disks;
  m.min_disk_utilization = disk_util_min;
  m.max_disk_utilization = disk_util_max;
  m.avg_cpu_utilization = cpu_util_sum / server_->num_nodes();
  if (service_count > 0) {
    m.avg_disk_service_ms = service_sum / service_count * 1e3;
    m.avg_seek_cylinders = seek_sum / static_cast<double>(service_count);
  }

  m.peak_network_bytes_per_sec =
      static_cast<double>(network_->peak_bytes_per_bucket()) /
      config_.network.bandwidth_bucket_sec;
  m.avg_network_bytes_per_sec = network_->AverageBandwidth(now);
  m.events_simulated = env_->events_fired();
  return m;
}

SimMetrics Simulation::Run() {
  RunWarmup();
  ResetAllStats();
  RunMeasurement();
  return Collect();
}

SimMetrics RunSimulation(const SimConfig& config) {
  Simulation simulation(config);
  return simulation.Run();
}

}  // namespace spiffi::vod
