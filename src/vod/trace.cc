#include "vod/trace.h"

#include "sim/check.h"

namespace spiffi::vod {

TraceRecorder::TraceRecorder(Simulation* simulation, double interval_sec)
    : simulation_(simulation) {
  SPIFFI_CHECK(simulation != nullptr);
  SPIFFI_CHECK(interval_sec > 0.0);
  simulation_->env().Spawn(Sampler(interval_sec));
}

TraceSample TraceRecorder::Capture() {
  TraceSample sample;
  sample.time = simulation_->env().now();

  server::VideoServer& server = simulation_->server();
  double queue_sum = 0.0;
  for (int n = 0; n < server.num_nodes(); ++n) {
    server::Node& node = server.node(n);
    if (node.cpu().resource().busy() > 0) ++sample.cpus_busy;
    sample.pool_pages_in_use += node.pool().pages_in_use();
    for (int d = 0; d < node.num_disks(); ++d) {
      ++sample.total_disks;
      const hw::Disk& disk = node.disk(d);
      if (disk.busy()) ++sample.disks_busy;
      queue_sum += static_cast<double>(disk.queue_length());
    }
  }
  sample.disk_queue_avg =
      sample.total_disks > 0 ? queue_sum / sample.total_disks : 0.0;

  for (int t = 0; t < simulation_->num_terminals(); ++t) {
    const client::Terminal& terminal = simulation_->terminal(t);
    sample.glitches += terminal.stats().glitches;
    switch (terminal.state()) {
      case client::Terminal::State::kPriming:
        ++sample.terminals_priming;
        break;
      case client::Terminal::State::kPlaying:
        ++sample.terminals_playing;
        break;
      default:
        break;
    }
  }

  std::uint64_t total = simulation_->network().total_bytes();
  sample.network_bytes =
      total >= last_network_bytes_ ? total - last_network_bytes_ : total;
  last_network_bytes_ = total;
  return sample;
}

sim::Process TraceRecorder::Sampler(double interval_sec) {
  sim::Environment* env = &simulation_->env();
  for (;;) {
    co_await env->Hold(interval_sec);
    samples_.push_back(Capture());
  }
}

void TraceRecorder::WriteCsv(std::ostream& out) const {
  out << "time,disks_busy,disk_queue_avg,cpus_busy,glitches,"
         "terminals_priming,terminals_playing,pool_pages_in_use,"
         "network_bytes\n";
  for (const TraceSample& s : samples_) {
    out << s.time << ',' << s.disks_busy << ',' << s.disk_queue_avg << ','
        << s.cpus_busy << ',' << s.glitches << ',' << s.terminals_priming
        << ',' << s.terminals_playing << ',' << s.pool_pages_in_use << ','
        << s.network_bytes << '\n';
  }
}

}  // namespace spiffi::vod
