#include "vod/trace.h"

#include "sim/check.h"

namespace spiffi::vod {

namespace {

TelemetryOptions LegacyOptions(double interval_sec) {
  TelemetryOptions options;
  options.interval_sec = interval_sec;
  return options;  // keep every snapshot; no streaming
}

}  // namespace

TraceRecorder::TraceRecorder(Simulation* simulation, double interval_sec)
    : telemetry_(simulation, LegacyOptions(interval_sec)) {}

std::vector<TraceSample> TraceRecorder::samples() const {
  const obs::TimeSeries& series = telemetry_.series();
  const std::size_t disks_busy = series.ColumnIndex("disks.busy");
  const std::size_t disks_total = series.ColumnIndex("disks.total");
  const std::size_t queue_avg = series.ColumnIndex("disks.queue_avg");
  const std::size_t cpus_busy = series.ColumnIndex("cpus.busy");
  const std::size_t glitches_total =
      series.ColumnIndex("terminals.glitches_total");
  const std::size_t glitches_delta =
      series.ColumnIndex("terminals.glitches_delta");
  const std::size_t priming = series.ColumnIndex("terminals.priming");
  const std::size_t playing = series.ColumnIndex("terminals.playing");
  const std::size_t pages = series.ColumnIndex("pool.pages_in_use");
  const std::size_t net_total = series.ColumnIndex("network.bytes_total");
  const std::size_t net_delta = series.ColumnIndex("network.bytes_delta");

  std::vector<TraceSample> samples;
  samples.reserve(series.size());
  for (std::size_t row = 0; row < series.size(); ++row) {
    TraceSample s;
    s.time = series.time(row);
    s.disks_busy = static_cast<int>(series.value(row, disks_busy));
    s.total_disks = static_cast<int>(series.value(row, disks_total));
    s.disk_queue_avg = series.value(row, queue_avg);
    s.cpus_busy = static_cast<int>(series.value(row, cpus_busy));
    s.glitches_total =
        static_cast<std::uint64_t>(series.value(row, glitches_total));
    s.glitches_delta =
        static_cast<std::uint64_t>(series.value(row, glitches_delta));
    s.terminals_priming = static_cast<int>(series.value(row, priming));
    s.terminals_playing = static_cast<int>(series.value(row, playing));
    s.pool_pages_in_use =
        static_cast<std::int64_t>(series.value(row, pages));
    s.network_bytes_total =
        static_cast<std::uint64_t>(series.value(row, net_total));
    s.network_bytes_delta =
        static_cast<std::uint64_t>(series.value(row, net_delta));
    samples.push_back(s);
  }
  return samples;
}

void TraceRecorder::WriteCsv(std::ostream& out) const {
  out << "time,disks_busy,disk_queue_avg,cpus_busy,glitches_total,"
         "glitches_delta,terminals_priming,terminals_playing,"
         "pool_pages_in_use,network_bytes_total,network_bytes_delta\n";
  for (const TraceSample& s : samples()) {
    out << s.time << ',' << s.disks_busy << ',' << s.disk_queue_avg << ','
        << s.cpus_busy << ',' << s.glitches_total << ','
        << s.glitches_delta << ',' << s.terminals_priming << ','
        << s.terminals_playing << ',' << s.pool_pages_in_use << ','
        << s.network_bytes_total << ',' << s.network_bytes_delta << '\n';
  }
}

}  // namespace spiffi::vod
