// Streaming run telemetry: wires a Simulation's components into an
// obs::TimeSeries and samples them at a fixed simulated-time interval.
//
//   vod::Simulation sim(config);
//   vod::TelemetryOptions options;
//   options.interval_sec = 1.0;
//   options.jsonl = &jsonl_file;        // stream snapshots as taken
//   options.retention = 600;            // keep 10 min in memory
//   vod::TelemetryRecorder telemetry(&sim, options);
//   sim.Run();
//   telemetry.series().WriteCsv(std::cout);
//
// The recorder registers one channel per component family — disks,
// CPUs, buffer pools, network, terminals, and (when a FaultPlan is
// active) the fault injector — and spawns a sampler process into the
// simulation's environment, so sampling happens in simulated time and
// is deterministic for a given (config, seed): the emitted JSONL is
// byte-identical at any --jobs count (locked by
// tests/vod/telemetry_test.cc).
//
// On sharded runs (config.shards > 1) a free-running sampler process on
// one shard would observe the other shards mid-flight, so the recorder
// instead samples through Simulation::AddBarrierSampler — the sample
// fires when every shard has advanced to exactly the tick instant. A
// pacer process still holds through the same tick chain on shard 0 so
// the kernel event count (and thus SimMetrics::events_simulated) is
// identical to the single-shard sampler's.
//
// Construct after the Simulation, before running it. TraceRecorder
// (vod/trace.h) is the legacy 9-column-CSV view built on top of this.

#ifndef SPIFFI_VOD_TELEMETRY_H_
#define SPIFFI_VOD_TELEMETRY_H_

#include <cstddef>
#include <ostream>

#include "obs/time_series.h"
#include "sim/process.h"
#include "vod/simulation.h"

namespace spiffi::vod {

struct TelemetryOptions {
  // Simulated seconds between snapshots (> 0).
  double interval_sec = 1.0;
  // In-memory flight-recorder ring: most recent N snapshots
  // (0 = keep every snapshot).
  std::size_t retention = 0;
  // Optional stream that receives each snapshot as a JSONL line the
  // moment it is taken; must outlive the simulation run.
  std::ostream* jsonl = nullptr;
};

class TelemetryRecorder {
 public:
  TelemetryRecorder(Simulation* simulation, const TelemetryOptions& options);

  TelemetryRecorder(const TelemetryRecorder&) = delete;
  TelemetryRecorder& operator=(const TelemetryRecorder&) = delete;

  obs::TimeSeries& series() { return series_; }
  const obs::TimeSeries& series() const { return series_; }

 private:
  void RegisterChannels();
  sim::Process Sampler(double interval_sec);
  // Sharded runs: fires the same Hold chain as Sampler but takes no
  // samples (the barrier sampler does), keeping event counts identical.
  sim::Process TickPacer(double interval_sec);

  Simulation* simulation_;
  obs::TimeSeries series_;
};

}  // namespace spiffi::vod

#endif  // SPIFFI_VOD_TELEMETRY_H_
