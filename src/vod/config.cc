#include "vod/config.h"

#include <sstream>

namespace spiffi::vod {

std::string SimConfig::Validate() const {
  if (num_nodes <= 0) return "num_nodes must be positive";
  if (disks_per_node <= 0) return "disks_per_node must be positive";
  if (cpu_mips <= 0.0) return "cpu_mips must be positive";
  if (video_seconds <= 0.0) return "video_seconds must be positive";
  if (videos_per_disk <= 0) return "videos_per_disk must be positive";
  if (zipf_z < 0.0) return "zipf_z must be non-negative";
  if (stripe_bytes <= 0) return "stripe_bytes must be positive";
  if (terminals <= 0) return "terminals must be positive";
  if (terminal_memory_bytes < stripe_bytes) {
    return "terminal memory must hold at least one stripe block";
  }
  if (pool_pages_per_node() < 2) {
    return "server memory must hold at least two pages per node";
  }
  if (gss_groups <= 0) return "gss_groups must be positive";
  if (realtime_classes <= 0) return "realtime_classes must be positive";
  if (realtime_spacing_sec <= 0.0) {
    return "realtime_spacing_sec must be positive";
  }
  if (prefetch == server::PrefetchPolicy::kDelayed &&
      max_advance_prefetch_sec <= 0.0) {
    return "max_advance_prefetch_sec must be positive for delayed "
           "prefetching";
  }
  if (placement == VideoPlacement::kNonStriped &&
      num_videos() % total_disks() != 0) {
    return "non-striped placement needs videos divisible by disks";
  }
  if (placement == VideoPlacement::kReplicatedStriped) {
    if (replica_count < 2) {
      return "replicated placement needs replica_count >= 2";
    }
    if (replica_count > num_nodes) {
      return "replica_count cannot exceed num_nodes (copies of a block "
             "must land on distinct nodes)";
    }
  }
  if (piggyback_window_sec < 0.0) {
    return "piggyback_window_sec must be non-negative";
  }
  if (patch_window_sec < 0.0) {
    return "patch_window_sec must be non-negative";
  }
  if (patch_window_sec >= video_seconds) {
    return "patch_window_sec must be shorter than the video";
  }
  if (prefix_cache_fraction < 0.0 || prefix_cache_fraction > 0.5) {
    return "prefix_cache_fraction must be in [0, 0.5] (pinned pages must "
           "leave the pool eviction headroom)";
  }
  if (prefix_cache_fraction > 0.0 && prefix_recompute_sec <= 0.0) {
    return "prefix_recompute_sec must be positive when the prefix cache "
           "is enabled";
  }
  if (proxy_nodes < 0) return "proxy_nodes must be non-negative";
  if (proxy_nodes > 0) {
    if (proxy_cache_pages <= 0) {
      return "proxy_cache_pages must be positive when the proxy tier is "
             "enabled";
    }
    if (proxy_policy != proxy::ProxyPolicy::kLru &&
        proxy_recompute_sec <= 0.0) {
      return "proxy_recompute_sec must be positive for popularity-aware "
             "proxy policies";
    }
  }
  if (admission_policy != AdmissionPolicy::kOff) {
    if (admission_headroom <= 0.0 || admission_headroom > 1.0) {
      return "admission_headroom must be in (0, 1]";
    }
    if (admission_defer_sec <= 0.0) {
      return "admission_defer_sec must be positive when admission "
             "control is enabled";
    }
    if (admission_max_defers < 0) {
      return "admission_max_defers must be non-negative";
    }
  }
  if (request_retry_budget < 0) {
    return "request_retry_budget must be non-negative";
  }
  if (request_retry_budget > 0) {
    if (retry_min_timeout_sec <= 0.0) {
      return "retry_min_timeout_sec must be positive when retries are "
             "enabled";
    }
    if (retry_backoff_base_sec <= 0.0) {
      return "retry_backoff_base_sec must be positive when retries are "
             "enabled";
    }
  }
  if (rebuild_mbps < 0.0) return "rebuild_mbps must be non-negative";
  if (shards < 1) return "shards must be >= 1";
  if (shards > 1) {
    if (num_nodes < shards) {
      return "shards cannot exceed num_nodes (each shard owns at least "
             "one server node)";
    }
    if (stream_sharing_enabled()) {
      return "stream sharing requires shards=1 (the share manager "
             "couples terminals across nodes outside the message layer)";
    }
    if (admission_policy != AdmissionPolicy::kOff) {
      return "admission control requires shards=1 (the controller is "
             "shared mutable state across nodes)";
    }
    if (fault_plan.enabled()) {
      return "fault injection requires shards=1 (fault effects mutate "
             "disks across nodes outside the message layer)";
    }
  }
  if (warmup_seconds < start_window_sec) {
    return "warmup must cover the terminal start window";
  }
  if (measure_seconds <= 0.0) return "measure_seconds must be positive";
  std::string fault_error =
      fault_plan.Validate(num_nodes, total_disks());
  if (!fault_error.empty()) return fault_error;
  return "";
}

std::string SimConfig::Describe() const {
  std::ostringstream out;
  out << total_disks() << " disks, "
      << server_memory_bytes / hw::kMiB << " MB server, "
      << terminal_memory_bytes / hw::kMiB << " MB/terminal, stripe "
      << stripe_bytes / hw::kKiB << " KB, "
      << server::DiskSchedPolicyName(disk_sched);
  if (disk_sched == server::DiskSchedPolicy::kGss) {
    out << "(" << gss_groups << ")";
  }
  if (disk_sched == server::DiskSchedPolicy::kRealTime) {
    out << "(" << realtime_classes << " classes, " << realtime_spacing_sec
        << " s)";
  }
  out << ", "
      << (replacement == server::ReplacementPolicy::kGlobalLru
              ? "global-lru"
              : "love-prefetch")
      << ", prefetch " << server::PrefetchPolicyName(prefetch);
  if (prefetch == server::PrefetchPolicy::kDelayed) {
    out << "(" << max_advance_prefetch_sec << " s)";
  }
  out << ", ";
  switch (placement) {
    case VideoPlacement::kStriped: out << "striped"; break;
    case VideoPlacement::kNonStriped: out << "non-striped"; break;
    case VideoPlacement::kReplicatedStriped:
      out << "replicated(x" << replica_count << ")";
      break;
  }
  out << ", z=" << zipf_z;
  if (piggyback_window_sec > 0.0) {
    out << ", batch " << piggyback_window_sec << " s";
  }
  if (patch_window_sec > 0.0) out << ", patch " << patch_window_sec << " s";
  if (prefix_cache_fraction > 0.0) {
    out << ", prefix " << prefix_cache_fraction;
  }
  if (proxy_nodes > 0) {
    out << ", proxy " << proxy_nodes << "x" << proxy_cache_pages << " "
        << proxy::ProxyPolicyName(proxy_policy);
  }
  if (admission_policy != AdmissionPolicy::kOff) {
    out << ", admission " << AdmissionPolicyName(admission_policy) << "@"
        << admission_headroom;
  }
  if (request_retry_budget > 0) {
    out << ", retry x" << request_retry_budget;
  }
  if (rebuild_mbps > 0.0) out << ", rebuild " << rebuild_mbps << " Mbps";
  if (shards > 1) out << ", shards " << shards;
  if (fault_plan.enabled()) out << ", faults: " << fault_plan.Describe();
  return out.str();
}

}  // namespace spiffi::vod
