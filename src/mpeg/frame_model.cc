#include "mpeg/frame_model.h"

#include <cmath>

#include "sim/check.h"
#include "sim/random.h"

namespace spiffi::mpeg {

FrameModel::FrameModel(const MpegParams& params) : params_(params) {
  SPIFFI_CHECK(params.gop_frames() > 0);
  double gop_weight =
      static_cast<double>(params.i_per_gop * params.i_size_weight +
                          params.p_per_gop * params.p_size_weight +
                          params.b_per_gop * params.b_size_weight);
  SPIFFI_CHECK(gop_weight > 0);
  // One GOP lasts gop_frames / fps seconds and must carry
  // bytes_per_second * that many seconds.
  double gop_bytes = params.bytes_per_second() *
                     static_cast<double>(params.gop_frames()) /
                     params.frames_per_second;
  unit_bytes_ = gop_bytes / gop_weight;
}

FrameType FrameModel::TypeOf(std::int64_t index) const {
  // Pattern: I at GOP start, P every third frame thereafter, B otherwise
  // (I B B P B B P B B P B B P B B for the default 1:4:10 ratio).
  int pos = static_cast<int>(index % params_.gop_frames());
  if (pos == 0) return FrameType::kI;
  if (pos % 3 == 0) return FrameType::kP;
  return FrameType::kB;
}

double FrameModel::MeanBytes(FrameType type) const {
  switch (type) {
    case FrameType::kI:
      return unit_bytes_ * params_.i_size_weight;
    case FrameType::kP:
      return unit_bytes_ * params_.p_size_weight;
    case FrameType::kB:
      return unit_bytes_ * params_.b_size_weight;
  }
  return 0.0;  // unreachable
}

std::int64_t FrameModel::FrameBytes(std::uint64_t seed,
                                    std::int64_t index) const {
  double mean = MeanBytes(TypeOf(index));
  double size = sim::ExponentialAt(seed, static_cast<std::uint64_t>(index),
                                   mean);
  auto bytes = static_cast<std::int64_t>(std::ceil(size));
  return bytes < 1 ? 1 : bytes;
}

}  // namespace spiffi::mpeg
