#include "mpeg/video.h"

#include <algorithm>
#include <cmath>

#include "sim/check.h"

namespace spiffi::mpeg {

Video::Video(int id, std::uint64_t seed, const FrameModel* model,
             double duration_seconds)
    : id_(id), seed_(seed), model_(model),
      duration_seconds_(duration_seconds) {
  SPIFFI_CHECK(model != nullptr);
  SPIFFI_CHECK(duration_seconds > 0.0);
  const MpegParams& params = model->params();
  frame_count_ = static_cast<std::int64_t>(
      std::llround(duration_seconds * params.frames_per_second));
  // Round to whole GOPs for a clean pattern (at most half a second off).
  int gop = params.gop_frames();
  frame_count_ = std::max<std::int64_t>(gop, (frame_count_ / gop) * gop);

  std::int64_t num_gops = frame_count_ / gop;
  gop_prefix_.reserve(num_gops + 1);
  gop_prefix_.push_back(0);
  std::int64_t cumulative = 0;
  for (std::int64_t f = 0; f < frame_count_; ++f) {
    cumulative += model_->FrameBytes(seed_, f);
    if ((f + 1) % gop == 0) gop_prefix_.push_back(cumulative);
  }
  total_bytes_ = cumulative;
}

std::int64_t Video::CumulativeBytesAtFrame(std::int64_t index) const {
  SPIFFI_DCHECK(index >= 0 && index <= frame_count_);
  int gop = model_->params().gop_frames();
  std::int64_t g = index / gop;
  std::int64_t bytes = gop_prefix_[g];
  for (std::int64_t f = g * gop; f < index; ++f) {
    bytes += model_->FrameBytes(seed_, f);
  }
  return bytes;
}

std::int64_t Video::FrameOfByte(std::int64_t byte) const {
  if (byte >= total_bytes_) return frame_count_;
  SPIFFI_DCHECK(byte >= 0);
  // Find the GOP containing the byte, then walk its frames.
  auto it = std::upper_bound(gop_prefix_.begin(), gop_prefix_.end(), byte);
  std::int64_t g = (it - gop_prefix_.begin()) - 1;
  int gop = model_->params().gop_frames();
  std::int64_t cumulative = gop_prefix_[g];
  for (std::int64_t f = g * gop;; ++f) {
    std::int64_t next = cumulative + model_->FrameBytes(seed_, f);
    if (byte < next) return f;
    cumulative = next;
  }
}

double Video::PlaybackTimeOfByte(std::int64_t byte) const {
  std::int64_t frame = FrameOfByte(byte);
  if (frame >= frame_count_) return duration_seconds_;
  return static_cast<double>(frame) / model_->params().frames_per_second;
}

VideoLibrary::VideoLibrary(int count, double duration_seconds,
                           const MpegParams& params,
                           const ZipfDistribution& popularity,
                           std::uint64_t seed)
    : model_(params), popularity_(popularity) {
  SPIFFI_CHECK(count > 0);
  SPIFFI_CHECK(popularity.n() == count);
  videos_.reserve(count);
  for (int id = 0; id < count; ++id) {
    videos_.push_back(std::make_unique<Video>(
        id, sim::Hash64(seed, static_cast<std::uint64_t>(id)), &model_,
        duration_seconds));
  }
}

std::int64_t VideoLibrary::NumBlocks(int id,
                                     std::int64_t block_bytes) const {
  std::int64_t total = video(id).total_bytes();
  return (total + block_bytes - 1) / block_bytes;
}

double VideoLibrary::BlockPlaybackTime(int id, std::int64_t block,
                                       std::int64_t block_bytes) const {
  return video(id).PlaybackTimeOfByte(block * block_bytes);
}

}  // namespace spiffi::mpeg
