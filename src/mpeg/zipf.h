// Zipfian popularity distribution (paper Fig 8).
//
// Rank r (1-based) is selected with probability proportional to 1/r^z.
// z = 0 degenerates to the uniform distribution; the paper uses z in
// {0.5, 1.0, 1.5} with 1.0 as the default.

#ifndef SPIFFI_MPEG_ZIPF_H_
#define SPIFFI_MPEG_ZIPF_H_

#include <vector>

#include "sim/random.h"

namespace spiffi::mpeg {

class ZipfDistribution {
 public:
  ZipfDistribution(int n, double z);

  int n() const { return static_cast<int>(cdf_.size()); }
  double z() const { return z_; }

  // Probability of rank `r` (0-based; rank 0 is the most popular item).
  double Probability(int r) const;

  // Draws a 0-based rank.
  int Sample(sim::Rng* rng) const;

 private:
  double z_;
  std::vector<double> cdf_;  // cumulative probabilities, cdf_[n-1] == 1
};

}  // namespace spiffi::mpeg

#endif  // SPIFFI_MPEG_ZIPF_H_
