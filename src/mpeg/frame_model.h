// MPEG frame model (paper §6.1).
//
// A compressed MPEG stream is a repeating group-of-pictures containing
// intra (I), predicted (P), and bidirectional (B) frames. This study uses
// the paper's parameters: I:P:B frequency ratio 1:4:10 (a 15-frame GOP),
// size ratio 10:5:2, an overall rate of 4 Mbits/second at 30 frames/second
// (NTSC), and per-frame sizes that are exponentially distributed around
// the type mean.

#ifndef SPIFFI_MPEG_FRAME_MODEL_H_
#define SPIFFI_MPEG_FRAME_MODEL_H_

#include <cstdint>

namespace spiffi::mpeg {

enum class FrameType { kI, kP, kB };

struct MpegParams {
  double frames_per_second = 30.0;
  double bits_per_second = 4.0 * 1024 * 1024;  // 4 Mbits/s broadcast quality

  // Frequencies within one GOP (1:4:10 => 15-frame GOP).
  int i_per_gop = 1;
  int p_per_gop = 4;
  int b_per_gop = 10;

  // Relative mean sizes (10:5:2).
  int i_size_weight = 10;
  int p_size_weight = 5;
  int b_size_weight = 2;

  int gop_frames() const { return i_per_gop + p_per_gop + b_per_gop; }
  double bytes_per_second() const { return bits_per_second / 8.0; }
  double mean_frame_bytes() const {
    return bytes_per_second() / frames_per_second;
  }
};

// Deterministic frame-sequence generator: the frame type and size at any
// index are pure functions of (stream seed, index), so "each time the same
// video is played, the same sequence of frames and frame sizes is
// repeated" without storing the stream.
class FrameModel {
 public:
  explicit FrameModel(const MpegParams& params);

  const MpegParams& params() const { return params_; }

  // Type of the frame at `index` within the fixed GOP pattern
  // (I B B P B B P B B P B B P B B, repeating).
  FrameType TypeOf(std::int64_t index) const;

  // Mean compressed size for a frame of the given type, chosen so the
  // long-run rate equals params.bits_per_second.
  double MeanBytes(FrameType type) const;

  // Exponentially distributed size of the frame at `index` of the stream
  // identified by `seed` (deterministic; at least 1 byte).
  std::int64_t FrameBytes(std::uint64_t seed, std::int64_t index) const;

 private:
  MpegParams params_;
  double unit_bytes_;  // bytes represented by one size weight unit
};

}  // namespace spiffi::mpeg

#endif  // SPIFFI_MPEG_FRAME_MODEL_H_
