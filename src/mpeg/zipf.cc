#include "mpeg/zipf.h"

#include <algorithm>
#include <cmath>

#include "sim/check.h"

namespace spiffi::mpeg {

ZipfDistribution::ZipfDistribution(int n, double z) : z_(z) {
  SPIFFI_CHECK(n > 0);
  SPIFFI_CHECK(z >= 0.0);
  cdf_.resize(n);
  double sum = 0.0;
  for (int r = 0; r < n; ++r) {
    sum += 1.0 / std::pow(static_cast<double>(r + 1), z);
    cdf_[r] = sum;
  }
  for (int r = 0; r < n; ++r) cdf_[r] /= sum;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

double ZipfDistribution::Probability(int r) const {
  SPIFFI_DCHECK(r >= 0 && r < n());
  return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

int ZipfDistribution::Sample(sim::Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<int>(it - cdf_.begin());
}

}  // namespace spiffi::mpeg
