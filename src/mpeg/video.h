// A simulated video: a deterministic sequence of MPEG frames with helpers
// for mapping byte positions to playback times (used for deadlines).

#ifndef SPIFFI_MPEG_VIDEO_H_
#define SPIFFI_MPEG_VIDEO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "mpeg/frame_model.h"
#include "mpeg/zipf.h"
#include "sim/random.h"

namespace spiffi::mpeg {

class Video {
 public:
  // `seed` fixes the frame sequence; replaying the video repeats it.
  Video(int id, std::uint64_t seed, const FrameModel* model,
        double duration_seconds);

  int id() const { return id_; }
  std::int64_t frame_count() const { return frame_count_; }
  std::int64_t total_bytes() const { return total_bytes_; }
  double duration_seconds() const { return duration_seconds_; }

  // Compressed size of frame `index` (0-based).
  std::int64_t FrameBytes(std::int64_t index) const {
    return model_->FrameBytes(seed_, index);
  }

  // Bytes of all frames before `index` (== total_bytes at frame_count).
  std::int64_t CumulativeBytesAtFrame(std::int64_t index) const;

  // Playback time (seconds from the start of the video) at which `byte`
  // is consumed, i.e. the display time of the frame containing it.
  // Bytes at or past the end map to the video duration.
  double PlaybackTimeOfByte(std::int64_t byte) const;

  // Index of the frame containing `byte` (frame_count for EOF).
  std::int64_t FrameOfByte(std::int64_t byte) const;

 private:
  int id_;
  std::uint64_t seed_;
  const FrameModel* model_;
  double duration_seconds_;
  std::int64_t frame_count_;
  std::int64_t total_bytes_;
  // Cumulative bytes at each GOP boundary: gop_prefix_[g] = bytes of all
  // frames before GOP g. Size = num_gops + 1. Keeps per-video memory tiny
  // (one entry per half-second) while byte->time queries stay O(log).
  std::vector<std::int64_t> gop_prefix_;
};

// The library of videos offered by the server plus the popularity
// distribution terminals draw from.
class VideoLibrary {
 public:
  // Creates `count` videos of `duration_seconds` each; popularity follows
  // `popularity` (video 0 is the most popular rank).
  VideoLibrary(int count, double duration_seconds, const MpegParams& params,
               const ZipfDistribution& popularity, std::uint64_t seed);

  int count() const { return static_cast<int>(videos_.size()); }
  const Video& video(int id) const { return *videos_[id]; }
  const FrameModel& frame_model() const { return model_; }

  // Draws a video id according to the popularity distribution.
  int Select(sim::Rng* rng) const { return popularity_.Sample(rng); }

  // Number of read blocks of `block_bytes` needed to cover the video.
  std::int64_t NumBlocks(int id, std::int64_t block_bytes) const;

  // Playback time at which the first byte of `block` is consumed.
  double BlockPlaybackTime(int id, std::int64_t block,
                           std::int64_t block_bytes) const;

 private:
  FrameModel model_;
  std::vector<std::unique_ptr<Video>> videos_;
  ZipfDistribution popularity_;
};

}  // namespace spiffi::mpeg

#endif  // SPIFFI_MPEG_VIDEO_H_
