#include "hw/disk.h"

#include <algorithm>
#include <cmath>

#include "obs/trace.h"
#include "sim/check.h"

namespace spiffi::hw {

Disk::Disk(sim::Environment* env, const DiskParams& params,
           std::unique_ptr<DiskScheduler> scheduler, int id,
           DiskCompletionListener* listener)
    : env_(env),
      params_(params),
      scheduler_(std::move(scheduler)),
      id_(id),
      listener_(listener),
      pending_(env, 0),
      recovered_(env) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(scheduler_ != nullptr);
  SPIFFI_CHECK(listener != nullptr);
  trace_tid_ = obs::Tracer::kDiskTidBase + id;
  env_->Spawn(ServiceLoop());
}

void Disk::Submit(DiskRequest* request) {
  SPIFFI_DCHECK(request != nullptr);
  SPIFFI_DCHECK(request->bytes > 0);
  SPIFFI_DCHECK(request->disk_offset >= 0);
  request->seq = next_seq_++;
  request->submit_time = env_->now();
  request->trace_id = obs::TraceAsyncBegin(
      env_, obs::TraceCategory::kDisk, "disk_queue", trace_pid_,
      {{"block", static_cast<double>(request->block)},
       {"prefetch", request->is_prefetch ? 1.0 : 0.0}});
  scheduler_->Push(request);
  obs::TraceCounter(env_, obs::TraceCategory::kDisk, "disk_queue_len",
                    trace_pid_, trace_tid_,
                    static_cast<double>(scheduler_->size()));
  pending_.Release();
}

std::int64_t Disk::ReadAheadBytes(const DiskRequest& request,
                                  sim::SimTime now) const {
  if (request.video != last_video_ ||
      request.disk_offset != last_end_offset_) {
    return 0;  // not a sequential continuation of the last stream
  }
  double idle = now - last_service_end_;
  if (idle <= 0.0) return 0;
  auto ahead = static_cast<std::int64_t>(
      idle * params_.transfer_rate_bytes_per_sec);
  ahead = std::min(ahead, params_.cache_context_bytes);
  return std::min(ahead, request.bytes);
}

double Disk::ServiceTimeFrom(std::int64_t head_cylinder, sim::SimTime start,
                             std::int64_t offset, std::int64_t bytes,
                             std::int64_t cached_bytes) const {
  const double rotation = params_.rotation_time_ms * 1e-3;
  const std::int64_t cyl_bytes = params_.cylinder_bytes;

  // Cached bytes still cross the SCSI bus; charge them at the media rate
  // (a mild overestimate) but skip all mechanical positioning for them.
  double time = static_cast<double>(cached_bytes) /
                params_.transfer_rate_bytes_per_sec;

  std::int64_t mech_bytes = bytes - cached_bytes;
  if (mech_bytes <= 0) return time;

  std::int64_t mech_offset = offset + cached_bytes;
  std::int64_t target_cylinder = mech_offset / cyl_bytes;

  // Seek.
  std::int64_t distance = std::llabs(target_cylinder - head_cylinder);
  time += params_.SeekTimeSeconds(distance);

  // Rotation: the platter never stops; wait for the target angle to come
  // under the head. The angular position of a byte is its fractional
  // offset within its cylinder.
  double head_angle = std::fmod(start + time, rotation) / rotation;
  double target_angle =
      static_cast<double>(mech_offset % cyl_bytes) /
      static_cast<double>(cyl_bytes);
  double wait_frac = target_angle - head_angle;
  if (wait_frac < 0.0) wait_frac += 1.0;
  time += wait_frac * rotation;

  // Transfer, plus one head-settle per cylinder boundary crossed.
  time += static_cast<double>(mech_bytes) /
          params_.transfer_rate_bytes_per_sec;
  std::int64_t end_cylinder = (mech_offset + mech_bytes - 1) / cyl_bytes;
  time += static_cast<double>(end_cylinder - target_cylinder) *
          params_.settle_time_ms * 1e-3;
  return time;
}

void Disk::SetFailed(bool failed) {
  if (failed_ == failed) return;
  failed_ = failed;
  if (!failed_) recovered_.NotifyAll();
}

void Disk::SetServiceTimeScale(double scale) {
  SPIFFI_CHECK(scale >= 1.0);
  service_scale_ = scale;
}

sim::Process Disk::ServiceLoop() {
  for (;;) {
    co_await pending_.Acquire();
    // A failed disk holds its queue: the request already acquired is
    // serviced first thing after recovery.
    while (failed_) (void)co_await recovered_.Wait();
    SPIFFI_CHECK(!scheduler_->empty());
    sim::SimTime now = env_->now();
    DiskRequest* request = scheduler_->Pop(head_cylinder_, now);
    SPIFFI_CHECK(request != nullptr);
    request->queue_wait_sec = now - request->submit_time;
    queue_wait_tally_.Add(request->queue_wait_sec);
    obs::TraceAsyncEnd(env_, obs::TraceCategory::kDisk, "disk_queue",
                       trace_pid_, request->trace_id);
    obs::TraceCounter(env_, obs::TraceCategory::kDisk, "disk_queue_len",
                      trace_pid_, trace_tid_,
                      static_cast<double>(scheduler_->size()));

    std::int64_t cached = ReadAheadBytes(*request, now);
    // service_scale_ is exactly 1.0 outside limp episodes, keeping the
    // healthy timing bit-identical.
    double service =
        ServiceTimeFrom(head_cylinder_, now, request->disk_offset,
                        request->bytes, cached) *
        service_scale_;
    request->service_sec = service;

    std::int64_t target_cylinder =
        (request->disk_offset + cached) / params_.cylinder_bytes;
    double seek_cylinders =
        static_cast<double>(std::llabs(target_cylinder - head_cylinder_));
    seek_tally_.Add(seek_cylinders);

    busy_.SetBusy(1, now);
    {
      obs::ScopedSpan span(env_, obs::TraceCategory::kDisk, "disk_read",
                           trace_pid_, trace_tid_);
      co_await env_->Hold(service);
    }
    obs::TraceInstant(env_, obs::TraceCategory::kDisk, "read_done",
                      trace_pid_, trace_tid_,
                      {{"seek_cylinders", seek_cylinders},
                       {"cached_bytes", static_cast<double>(cached)},
                       {"queue_wait_ms", request->queue_wait_sec * 1e3}});

    // Mechanism state after the read.
    head_cylinder_ = (request->disk_offset + request->bytes - 1) /
                     params_.cylinder_bytes;
    last_video_ = request->video;
    last_end_offset_ = request->disk_offset + request->bytes;
    last_service_end_ = env_->now();

    busy_.SetBusy(0, env_->now());
    service_tally_.Add(service);
    cache_hit_bytes_ += static_cast<std::uint64_t>(cached);
    ++served_;

    listener_->OnDiskComplete(request);
  }
}

void Disk::ResetStats(sim::SimTime now) {
  busy_.Reset(now);
  service_tally_.Reset();
  seek_tally_.Reset();
  queue_wait_tally_.Reset();
  served_ = 0;
  cache_hit_bytes_ = 0;
}

}  // namespace spiffi::hw
