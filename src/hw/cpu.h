// CPU model: an FCFS instruction server (paper Table 1: 40 MIPS, FCFS).
//
// All operating-system work at a server node — receiving a message,
// starting an I/O, sending a reply — queues here and consumes simulated
// time proportional to an instruction budget.

#ifndef SPIFFI_HW_CPU_H_
#define SPIFFI_HW_CPU_H_

#include <cstdint>
#include <string>

#include "sim/environment.h"
#include "sim/resource.h"

namespace spiffi::hw {

// Instruction costs from Table 1 (measured on the Intel Paragon).
struct CpuCosts {
  std::int64_t start_io_instructions = 20000;
  std::int64_t send_message_instructions = 6800;
  std::int64_t receive_message_instructions = 2200;
};

class Cpu {
 public:
  Cpu(sim::Environment* env, double mips, std::string name)
      : mips_(mips), resource_(env, 1, std::move(name)) {}

  // co_await cpu.Execute(n): queues FCFS and burns n instructions.
  sim::Resource::UseAwaiter Execute(std::int64_t instructions) {
    return resource_.Use(static_cast<double>(instructions) /
                         (mips_ * 1e6));
  }

  double mips() const { return mips_; }
  double AverageUtilization(sim::SimTime now) const {
    return resource_.AverageUtilization(now);
  }
  void ResetStats(sim::SimTime now) { resource_.ResetStats(now); }
  const sim::Resource& resource() const { return resource_; }

 private:
  double mips_;
  sim::Resource resource_;
};

}  // namespace spiffi::hw

#endif  // SPIFFI_HW_CPU_H_
