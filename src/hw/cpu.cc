#include "hw/cpu.h"

// Cpu is header-only today; this translation unit anchors the target and
// leaves room for future out-of-line additions (e.g., scheduling classes).
