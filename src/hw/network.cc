#include "hw/network.h"

#include <algorithm>
#include <cmath>

#include "sim/check.h"

namespace spiffi::hw {

Network::Network(sim::Environment* env, const NetworkParams& params)
    : env_(env), params_(params) {
  SPIFFI_CHECK(env != nullptr);
}

void Network::Send(std::int64_t bytes, sim::EventHandler* destination,
                   std::uint64_t token) {
  SPIFFI_DCHECK(bytes >= 0);
  Account(bytes);
  env_->ScheduleAfter(WireDelay(bytes), destination, token);
}

void Network::Account(std::int64_t bytes) {
  total_bytes_ += static_cast<std::uint64_t>(bytes);
  ++total_messages_;
  auto bucket = static_cast<std::int64_t>(
      std::floor(env_->now() / params_.bandwidth_bucket_sec));
  if (first_bucket_ < 0) first_bucket_ = bucket;
  // Simulated time is monotone within an environment, so the bucket
  // index never moves backwards; empty buckets stay zero.
  auto index = static_cast<std::size_t>(bucket - first_bucket_);
  if (index >= bucket_bytes_.size()) bucket_bytes_.resize(index + 1, 0);
  bucket_bytes_[index] += static_cast<std::uint64_t>(bytes);
}

void Network::ResetStats() {
  total_bytes_ = 0;
  total_messages_ = 0;
  first_bucket_ = -1;
  bucket_bytes_.clear();
  stats_start_ = env_->now();
}

std::uint64_t Network::peak_bytes_per_bucket() const {
  std::uint64_t peak = 0;
  for (std::uint64_t b : bucket_bytes_) peak = std::max(peak, b);
  return peak;
}

double Network::AverageBandwidth(sim::SimTime now) const {
  double window = now - stats_start_;
  if (window <= 0.0) return 0.0;
  return static_cast<double>(total_bytes_) / window;
}

}  // namespace spiffi::hw
