// Interconnection network model.
//
// Per §6.2 the network is "a bus with unlimited aggregate bandwidth and
// constant latency regardless of which terminal and node are
// communicating": a message of b bytes is delivered
// wire_delay_base + wire_delay_per_byte * b seconds after it is sent, with
// no queueing. CPU costs for send/receive are charged by the endpoints
// (terminals have dedicated hardware and charge nothing; server nodes
// charge CpuCosts against their Cpu).
//
// The network also measures aggregate traffic in fixed one-second buckets
// so experiments can report the peak bandwidth demand (Fig 18).

#ifndef SPIFFI_HW_NETWORK_H_
#define SPIFFI_HW_NETWORK_H_

#include <cstdint>
#include <vector>

#include "sim/calendar.h"
#include "sim/environment.h"

namespace spiffi::sim {
class ShardGroup;
}  // namespace spiffi::sim

namespace spiffi::hw {

struct NetworkParams {
  double wire_delay_base_sec = 5e-6;        // 5 microseconds
  double wire_delay_per_byte_sec = 0.04e-6; // 0.04 microseconds/byte
  double bandwidth_bucket_sec = 1.0;        // peak-measurement granularity
};

class Network final {
 public:
  Network(sim::Environment* env, const NetworkParams& params);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // Delivers `token` to `destination->OnEvent(token)` after the wire
  // delay for a message of `bytes` bytes. The destination must outlive
  // the delivery; one-shot destinations come from the environment's
  // one-shot arena (Environment::NewOneShot), whose storage outlives
  // every pending delivery by construction.
  void Send(std::int64_t bytes, sim::EventHandler* destination,
            std::uint64_t token);

  double WireDelay(std::int64_t bytes) const {
    return params_.wire_delay_base_sec +
           params_.wire_delay_per_byte_sec * static_cast<double>(bytes);
  }

  // --- Sharded routing (see sim/shard.h) ---
  //
  // In a sharded run each shard owns one Network instance bound to its
  // environment. AttachShard tells this instance which shard it is;
  // PostMessage consults it to decide between the local calendar path
  // and the group's cross-shard mailboxes.
  void AttachShard(sim::ShardGroup* group, int shard) {
    shard_group_ = group;
    shard_index_ = shard;
  }
  sim::ShardGroup* shard_group() const { return shard_group_; }
  int shard_index() const { return shard_index_; }

  // Stats-only entry for messages whose delivery is scheduled elsewhere:
  // a cross-shard send is charged on the sending shard's network at send
  // time, exactly where the single-shard path charges it.
  void AccountMessage(std::int64_t bytes) { Account(bytes); }

  void ResetStats();

  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t total_messages() const { return total_messages_; }
  // Highest one-second-bucket byte count observed since the last reset
  // (includes the still-open bucket).
  std::uint64_t peak_bytes_per_bucket() const;
  double AverageBandwidth(sim::SimTime now) const;
  sim::SimTime stats_start() const { return stats_start_; }

  // Exact per-bucket history since the last reset, for cross-shard
  // merging: bucket_bytes()[i] is the byte count of absolute bucket
  // first_bucket() + i. first_bucket() is -1 before any traffic. The
  // aggregate peak across shards is the max over absolute bucket ids of
  // the per-shard sums — order-independent, so it merges exactly.
  std::int64_t first_bucket() const { return first_bucket_; }
  const std::vector<std::uint64_t>& bucket_bytes() const {
    return bucket_bytes_;
  }

 private:
  void Account(std::int64_t bytes);

  sim::Environment* env_;
  NetworkParams params_;
  sim::ShardGroup* shard_group_ = nullptr;
  int shard_index_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t total_messages_ = 0;
  std::int64_t first_bucket_ = -1;
  std::vector<std::uint64_t> bucket_bytes_;
  sim::SimTime stats_start_ = 0.0;
};

}  // namespace spiffi::hw

#endif  // SPIFFI_HW_NETWORK_H_
