// Disk parameter block, defaulted to the paper's Table 1 values
// (modeled on the Seagate ST15150N SCSI-2 drive).

#ifndef SPIFFI_HW_DISK_PARAMS_H_
#define SPIFFI_HW_DISK_PARAMS_H_

#include <cmath>
#include <cstdint>

namespace spiffi::hw {

inline constexpr std::int64_t kKiB = 1024;
inline constexpr std::int64_t kMiB = 1024 * kKiB;
inline constexpr std::int64_t kGiB = 1024 * kMiB;

struct DiskParams {
  // Seek time for a d-cylinder move is
  //   settle_time + seek_factor * sqrt(d)   (milliseconds, d > 0)
  // and zero for d == 0. With the defaults this gives ~1 ms single-cylinder
  // and ~22 ms full-stroke seeks, matching the ST15150N data sheet.
  double seek_factor_ms = 0.283;
  double settle_time_ms = 0.75;

  // Full platter revolution (7200 RPM).
  double rotation_time_ms = 8.333;

  // Media transfer rate in bytes/second.
  double transfer_rate_bytes_per_sec = 7.4 * static_cast<double>(kMiB);

  // Constant cylinder capacity (the paper assumes constant-size cylinders).
  std::int64_t cylinder_bytes = kMiB + 256 * kKiB;  // 1.25 MB

  // On-drive read-ahead cache: `cache_contexts` independent sequential
  // streams of `cache_context_bytes` each.
  std::int64_t cache_context_bytes = 128 * kKiB;
  int cache_contexts = 8;

  // Drive capacity; bounds the cylinder range used by layouts.
  std::int64_t capacity_bytes = 9 * kGiB;

  double SeekTimeSeconds(std::int64_t cylinder_distance) const {
    if (cylinder_distance <= 0) return 0.0;
    return (settle_time_ms +
            seek_factor_ms * std::sqrt(static_cast<double>(cylinder_distance))) *
           1e-3;
  }

  std::int64_t num_cylinders() const {
    return capacity_bytes / cylinder_bytes;
  }
};

}  // namespace spiffi::hw

#endif  // SPIFFI_HW_DISK_PARAMS_H_
