// Disk mechanism model: seek + settle + rotation + transfer, with a
// per-stream read-ahead cache, driven by a pluggable scheduling policy.
//
// The disk runs a service-loop process: whenever requests are pending it
// asks the scheduler policy for the next one, computes its mechanical
// service time from the current head position and platter angle, holds for
// that long, and fires the request's completion listener.
//
// Timing model
//   seek      settle + factor * sqrt(cylinder distance)  (0 for distance 0)
//   rotation  the platter spins continuously; the angular position of a
//             byte is its fractional offset within its cylinder, and the
//             delay is the angle still to travel when the seek completes
//   transfer  bytes / media rate, plus one settle per cylinder crossed
//   cache     if the disk was idle immediately before this request and the
//             request sequentially extends the most recently serviced
//             stream, the idle time is credited as read-ahead: up to one
//             cache context (128 KB) of the leading bytes skip the
//             mechanical path entirely. A busy disk gets no cache benefit,
//             matching real drives whose read-ahead only proceeds while
//             the mechanism is otherwise unused.

#ifndef SPIFFI_HW_DISK_H_
#define SPIFFI_HW_DISK_H_

#include <cstdint>
#include <memory>
#include <string>

#include "hw/disk_params.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/semaphore.h"
#include "sim/stats.h"
#include "sim/wait_list.h"

namespace spiffi::hw {

// One outstanding disk read. Owned by the issuing layer (server node or
// prefetcher); the pointer must stay valid until OnDiskComplete fires.
struct DiskRequest {
  // Identity of the stripe block being read (for cache-stream matching
  // and debugging).
  std::int64_t video = -1;
  std::int64_t block = -1;

  // Physical location and size of the read on this disk.
  std::int64_t disk_offset = 0;
  std::int64_t bytes = 0;

  // Absolute simulated time by which the data is needed; kSimTimeMax for
  // requests without a deadline. Consumed by deadline-aware schedulers.
  sim::SimTime deadline = sim::kSimTimeMax;

  // True for background prefetch requests. Non-real-time schedulers treat
  // them like any other request (the paper's point); the real-time
  // scheduler ranks them purely by deadline.
  bool is_prefetch = false;

  // Terminal on whose behalf this read is issued (grouping key for GSS
  // and round-robin scheduling).
  int terminal = -1;

  // Arrival sequence number, assigned by Disk::Submit; schedulers use it
  // for FIFO tie-breaking.
  std::uint64_t seq = 0;

  // Filled in by the disk for observability: when the request entered
  // the queue, how long it waited for the head, and how long the
  // mechanical service took. Read back by the issuer after completion
  // (server nodes forward them to the terminal for glitch attribution).
  sim::SimTime submit_time = 0.0;
  double queue_wait_sec = 0.0;
  double service_sec = 0.0;
  std::uint64_t trace_id = 0;  // async-span id for the queue-wait span

  // Opaque issuer context (the server stores the buffer-pool page being
  // filled here); passed back untouched at completion.
  void* context = nullptr;

  std::int64_t start_cylinder(std::int64_t cylinder_bytes) const {
    return disk_offset / cylinder_bytes;
  }
};

// Completion callback interface.
class DiskCompletionListener {
 public:
  virtual void OnDiskComplete(DiskRequest* request) = 0;

 protected:
  ~DiskCompletionListener() = default;
};

// Scheduling policy hook. Implementations live in server/disk_sched.h.
// The disk guarantees Pop is only called when !empty().
class DiskScheduler {
 public:
  virtual ~DiskScheduler() = default;

  virtual void Push(DiskRequest* request) = 0;

  // Selects and removes the next request to service. `head_cylinder` is
  // the current head position; `now` the current simulated time (for
  // deadline-based priorities).
  virtual DiskRequest* Pop(std::int64_t head_cylinder, sim::SimTime now) = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;

  // Human-readable policy name for reports.
  virtual std::string name() const = 0;
};

class Disk {
 public:
  Disk(sim::Environment* env, const DiskParams& params,
       std::unique_ptr<DiskScheduler> scheduler, int id,
       DiskCompletionListener* listener);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  // Hands a request to the scheduling policy and wakes the service loop.
  void Submit(DiskRequest* request);

  // Pure service-time query for a request starting from the given head
  // state; exposed for unit tests. Does not mutate the disk.
  double ServiceTimeFrom(std::int64_t head_cylinder, sim::SimTime start,
                         std::int64_t offset, std::int64_t bytes,
                         std::int64_t cached_bytes) const;

  void ResetStats(sim::SimTime now);

  // --- Fault hooks (driven by the fault-injection effect handler) ---

  // A failed disk stops picking requests: whatever is queued (and
  // whatever is submitted while down) waits until recovery; the read in
  // service when the failure hits still completes. Issuers are expected
  // to consult fault::FaultState before submitting, so parking rather
  // than erroring models the "requests never vanish" invariant the
  // terminals rely on.
  void SetFailed(bool failed);
  bool failed() const { return failed_; }

  // Service-time multiplier for transient "limp" degradation (>= 1;
  // exactly 1.0 restores bit-identical healthy timing).
  void SetServiceTimeScale(double scale);
  double service_time_scale() const { return service_scale_; }

  int id() const { return id_; }
  const DiskParams& params() const { return params_; }
  const DiskScheduler& scheduler() const { return *scheduler_; }
  std::int64_t head_cylinder() const { return head_cylinder_; }
  bool busy() const { return busy_.busy() > 0; }
  std::size_t queue_length() const { return scheduler_->size(); }
  std::uint64_t requests_served() const { return served_; }
  std::uint64_t cache_hit_bytes() const { return cache_hit_bytes_; }
  double AverageUtilization(sim::SimTime now) const {
    return busy_.Average(now);
  }
  const sim::Tally& service_tally() const { return service_tally_; }
  const sim::Tally& seek_distance_tally() const { return seek_tally_; }
  // Queue wait: Submit -> scheduler pick, per request (seconds).
  const sim::Tally& queue_wait_tally() const { return queue_wait_tally_; }

  // Perfetto track this disk's events render on (set by the owning
  // node; defaults keep stand-alone disks on their own track).
  void SetTraceTrack(std::int32_t pid, std::int32_t tid) {
    trace_pid_ = pid;
    trace_tid_ = tid;
  }

 private:
  sim::Process ServiceLoop();

  // Read-ahead credit for `request` given the disk has been idle since
  // `idle_since` (0 credit when the stream does not continue).
  std::int64_t ReadAheadBytes(const DiskRequest& request,
                              sim::SimTime now) const;

  sim::Environment* env_;
  DiskParams params_;
  std::unique_ptr<DiskScheduler> scheduler_;
  int id_;
  DiskCompletionListener* listener_;

  sim::Semaphore pending_;  // counts queued requests; service loop waits
  sim::WaitList recovered_;  // service loop parks here while failed

  // Fault state.
  bool failed_ = false;
  double service_scale_ = 1.0;

  // Mechanism state.
  std::int64_t head_cylinder_ = 0;

  // Read-ahead stream state: the stream serviced most recently.
  std::int64_t last_video_ = -1;
  std::int64_t last_end_offset_ = -1;
  sim::SimTime last_service_end_ = 0.0;

  // Statistics.
  sim::Utilization busy_{1};
  sim::Tally service_tally_;
  sim::Tally seek_tally_;
  sim::Tally queue_wait_tally_;
  std::int32_t trace_pid_ = 0;
  std::int32_t trace_tid_ = 0;
  std::uint64_t served_ = 0;
  std::uint64_t cache_hit_bytes_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace spiffi::hw

#endif  // SPIFFI_HW_DISK_H_
