// Flight-recorder time series: a registry of named telemetry channels
// sampled at fixed intervals into snapshot rows.
//
// Components register channels once, before the first sample:
//
//  * Gauge    — a point-in-time reading (queue length, pages in use).
//               One column, named after the channel.
//  * Counter  — a monotonically non-decreasing cumulative total (bytes
//               sent, glitches). Two columns per snapshot: explicit
//               `<name>_total` (the cumulative reading) and
//               `<name>_delta` (change since the previous snapshot) —
//               the sampler tracks the previous reading itself, so
//               deltas stay correct even when old snapshots have been
//               evicted by the retention ring.
//
// Sample(now) polls every channel and appends one snapshot row. Memory
// is bounded two ways: set_retention(N) keeps only the most recent N
// rows (a flight-recorder ring; total_samples() still counts everything
// ever sampled), and StreamTo(out) appends each snapshot as a JSONL line
// the moment it is taken, so a long run can stream to disk while keeping
// only a small ring in memory.
//
// Exports (WriteJsonl / WriteCsv) cover the retained rows. All number
// formatting goes through one "%.17g" path, so exports of equal samples
// are byte-identical — the property the cross---jobs determinism tests
// lock for whole-run telemetry.
//
// The class is single-threaded, like the simulation environment whose
// sampler process drives it.

#ifndef SPIFFI_OBS_TIME_SERIES_H_
#define SPIFFI_OBS_TIME_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

namespace spiffi::obs {

class TimeSeries {
 public:
  using SampleFn = std::function<double()>;

  TimeSeries() = default;
  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  // --- Channel registration (before the first Sample(); CHECKed) ---

  void AddGauge(const std::string& name, SampleFn fn);
  // `fn` returns the channel's cumulative total.
  void AddCounter(const std::string& name, SampleFn fn);

  // --- Memory & streaming ---

  // Keeps only the most recent `max_snapshots` rows in memory
  // (0 = unlimited, the default).
  void set_retention(std::size_t max_snapshots) {
    retention_ = max_snapshots;
    TrimToRetention();
  }
  // Streams every subsequent snapshot to `out` as one JSONL line
  // (nullptr detaches). Orthogonal to in-memory retention.
  void StreamTo(std::ostream* out) { stream_ = out; }

  // --- Sampling ---

  // Polls every channel and appends one snapshot row at time `now`.
  void Sample(double now);

  // --- Access (retained rows) ---

  std::size_t num_channels() const { return channels_.size(); }
  // One name per column: gauges contribute `<name>`, counters
  // `<name>_total` and `<name>_delta`, in registration order.
  const std::vector<std::string>& columns() const { return columns_; }
  std::size_t size() const { return rows_.size(); }
  // Snapshots ever taken, including rows the retention ring dropped.
  std::uint64_t total_samples() const { return total_samples_; }

  double time(std::size_t row) const { return rows_[row].time; }
  double value(std::size_t row, std::size_t column) const {
    return rows_[row].values[column];
  }
  // Column index for `column_name` (CHECKs when absent).
  std::size_t ColumnIndex(const std::string& column_name) const;

  // --- Export ---

  // One JSON object per retained row: {"t":...,"col":...,...}.
  void WriteJsonl(std::ostream& out) const;
  // Header row ("time,col,...") then one line per retained row.
  void WriteCsv(std::ostream& out) const;

 private:
  struct Channel {
    std::string name;
    bool counter = false;
    SampleFn fn;
    double last_total = 0.0;  // counters: previous cumulative reading
  };
  struct Row {
    double time = 0.0;
    std::vector<double> values;
  };

  void AddChannel(const std::string& name, bool counter, SampleFn fn);
  void TrimToRetention();
  void WriteRowJsonl(std::ostream& out, const Row& row) const;

  std::vector<Channel> channels_;
  std::vector<std::string> columns_;
  std::deque<Row> rows_;
  std::size_t retention_ = 0;
  std::uint64_t total_samples_ = 0;
  std::ostream* stream_ = nullptr;
};

}  // namespace spiffi::obs

#endif  // SPIFFI_OBS_TIME_SERIES_H_
