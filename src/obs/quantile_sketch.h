// DDSketch-style quantile sketch with a relative-error guarantee.
//
// Values are assigned to logarithmically spaced buckets: with relative
// accuracy alpha (default 1%), bucket i covers (gamma^(i-1), gamma^i]
// where gamma = (1 + alpha) / (1 - alpha), and the bucket's midpoint
// estimate 2 * gamma^i / (gamma + 1) is within alpha of every value in
// the bucket. Quantile(q) therefore answers rank-based quantile queries
// with relative error <= alpha for any value whose magnitude exceeds the
// tracking floor (1 ns) — a much tighter bound than sim::Histogram's
// ~19% bucket width, at a comparable O(buckets) memory cost.
//
// The sketch is:
//  * signed — negative observations (deadline slack of late blocks) go
//    to a mirrored negative store; values within the floor count as zero;
//  * mergeable — Merge() adds bucket counts, so merging is exact,
//    associative, and commutative: a sketch merged from per-terminal (or
//    per-shard) sketches is bit-identical to one fed every observation
//    directly, in any merge order;
//  * deterministic — buckets live in ordered maps and all arithmetic is
//    a pure function of the inserted values, so equal inputs produce
//    equal sketches and equal quantile answers on every run and at any
//    --jobs count.
//
// sim::Histogram remains beside this class as the fixed-memory
// regression reference; tests/obs/quantile_sketch_test.cc locks the
// sketch's error bound against exact sorted-sample quantiles.

#ifndef SPIFFI_OBS_QUANTILE_SKETCH_H_
#define SPIFFI_OBS_QUANTILE_SKETCH_H_

#include <cstdint>
#include <map>

namespace spiffi::obs {

class QuantileSketch {
 public:
  // Default relative accuracy: 1%.
  static constexpr double kDefaultRelativeAccuracy = 0.01;
  // Magnitudes at or below the floor are counted as exact zeros. One
  // nanosecond is far below any latency or slack the simulator produces.
  static constexpr double kMinTrackable = 1e-9;

  explicit QuantileSketch(
      double relative_accuracy = kDefaultRelativeAccuracy);

  void Add(double value);
  // Accumulates another sketch (same relative accuracy; CHECKed).
  void Merge(const QuantileSketch& other);
  void Reset();

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double relative_accuracy() const { return alpha_; }
  // Total buckets currently occupied (memory footprint proxy).
  std::size_t num_buckets() const {
    return positive_.size() + negative_.size() + (zero_count_ > 0 ? 1 : 0);
  }

  // Value at quantile q in [0, 1] (clamped), using the same rank
  // convention as sim::Histogram::Percentile: rank = floor(q * (n - 1)).
  // Exact at q = 0 / q = 1; within `relative_accuracy` of the exact
  // sorted-sample quantile everywhere else (for values beyond the floor).
  double Quantile(double q) const;

 private:
  // Log-bucket index such that gamma^(i-1) < magnitude <= gamma^i.
  std::int32_t BucketFor(double magnitude) const;
  // Midpoint estimate of bucket i: 2 * gamma^i / (gamma + 1).
  double BucketValue(std::int32_t index) const;

  double alpha_;
  double gamma_;
  double inv_log_gamma_;

  // Bucket index -> count. Ordered so quantile walks and exports are
  // deterministic. negative_ is keyed by the magnitude's bucket.
  std::map<std::int32_t, std::uint64_t> positive_;
  std::map<std::int32_t, std::uint64_t> negative_;
  std::uint64_t zero_count_ = 0;

  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace spiffi::obs

#endif  // SPIFFI_OBS_QUANTILE_SKETCH_H_
