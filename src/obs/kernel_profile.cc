#include "obs/kernel_profile.h"

#include <cstdio>

namespace spiffi::obs {

KernelProfile CaptureKernelProfile(const sim::Environment& env) {
  KernelProfile profile;
  profile.events_fired = env.events_fired();
  profile.calendar_size = env.calendar_size();
  profile.peak_calendar_size = env.peak_calendar_size();
  profile.calendar_grows = env.calendar_storage_grows();
  profile.live_processes = env.live_processes();
  profile.peak_processes = env.peak_processes();
  profile.resume_slots = env.resume_slots();
  return profile;
}

void WriteKernelProfileJson(std::ostream& out, const std::string& name,
                            const KernelProfile& profile,
                            double wall_seconds) {
  double events_per_sec =
      wall_seconds > 0.0
          ? static_cast<double>(profile.events_fired) / wall_seconds
          : 0.0;
  char buf[64];
  out << "{\n  \"name\": \"" << name << "\",\n";
  out << "  \"events_fired\": " << profile.events_fired << ",\n";
  std::snprintf(buf, sizeof(buf), "%.6f", wall_seconds);
  out << "  \"wall_seconds\": " << buf << ",\n";
  std::snprintf(buf, sizeof(buf), "%.1f", events_per_sec);
  out << "  \"events_per_sec\": " << buf << ",\n";
  out << "  \"calendar_size\": " << profile.calendar_size << ",\n";
  out << "  \"peak_calendar_size\": " << profile.peak_calendar_size
      << ",\n";
  out << "  \"calendar_grows\": " << profile.calendar_grows << ",\n";
  out << "  \"live_processes\": " << profile.live_processes << ",\n";
  out << "  \"peak_processes\": " << profile.peak_processes << ",\n";
  out << "  \"resume_slots\": " << profile.resume_slots << "\n}\n";
}

}  // namespace spiffi::obs
