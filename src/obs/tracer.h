// Low-overhead event tracing for the simulator (observability layer).
//
// A Tracer records structured events — instants, complete spans, async
// (begin/end) spans, and counters — into a fixed-capacity ring buffer.
// Each event is stamped with the simulated time it describes and the
// wall-clock time at which it was recorded, so a trace shows both where
// simulated time went and where the kernel spent real time producing it.
// When the ring fills, the oldest events are overwritten (the dropped
// count is kept), so tracing a long run keeps the most recent window.
//
// Traces export as Chrome trace_event JSON (WriteChromeJson), loadable
// in Perfetto / chrome://tracing. Track mapping convention used by the
// VoD instrumentation:
//
//   pid kTerminalsPid    "terminals"  — tid = terminal id
//   pid kNetworkPid      "network"    — async message-transit spans
//   pid kNodePidBase + n "node n"     — tid 0 = cpu, kDiskTidBase + d =
//                                       local disk d, kPoolTid = pool
//
// Event names must be string literals (or otherwise outlive the Tracer):
// the ring stores only the pointer.
//
// Instrumentation call sites should go through the helpers in
// obs/trace.h, which compile to nothing when SPIFFI_TRACING is off; this
// class itself is always available (tests, tools).

#ifndef SPIFFI_OBS_TRACER_H_
#define SPIFFI_OBS_TRACER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace spiffi::obs {

// Event categories; exported as the Chrome "cat" field. Fixed so the
// ring entry is one byte and export needs no string table.
enum class TraceCategory : std::uint8_t {
  kTerminal,
  kServer,
  kDisk,
  kNetwork,
  kBuffer,
  kPrefetch,
  kKernel,
  kFault,
  kProxy,
};
inline constexpr int kNumTraceCategories = 9;
const char* TraceCategoryName(TraceCategory category);

// One optional key/value annotation on an event. Keys must be string
// literals, like event names.
struct TraceArg {
  const char* key = nullptr;
  double value = 0.0;
};

struct TraceEvent {
  sim::SimTime ts = 0.0;      // simulated seconds (span start for kSpan)
  sim::SimTime end_ts = 0.0;  // simulated seconds (kSpan only)
  double wall_us = 0.0;       // wall microseconds since tracer creation
  std::uint64_t id = 0;       // async-span correlation id
  std::int32_t pid = 0;
  std::int32_t tid = 0;
  const char* name = nullptr;
  TraceCategory category = TraceCategory::kKernel;
  char phase = 'i';  // 'i' instant, 'X' span, 'b'/'e' async, 'C' counter
  std::uint8_t num_args = 0;
  std::array<TraceArg, 3> args{};
};

class Tracer {
 public:
  // Track-id convention used by the simulation instrumentation.
  static constexpr std::int32_t kTerminalsPid = 1;
  static constexpr std::int32_t kNetworkPid = 2;
  static constexpr std::int32_t kFaultPid = 3;
  static constexpr std::int32_t kNodePidBase = 10;
  static constexpr std::int32_t kProxyPidBase = 500;
  static constexpr std::int32_t kCpuTid = 0;
  static constexpr std::int32_t kDiskTidBase = 1;
  static constexpr std::int32_t kPoolTid = 99;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Runtime switch; recording while disabled is a no-op.
  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  // --- Recording (ts values are simulated seconds) ---

  void Instant(TraceCategory category, const char* name, std::int32_t pid,
               std::int32_t tid, sim::SimTime ts,
               std::initializer_list<TraceArg> args = {});
  // Complete span [start_ts, end_ts] on one serial track. Spans on the
  // same (pid, tid) must nest; use async spans for overlapping work.
  void Span(TraceCategory category, const char* name, std::int32_t pid,
            std::int32_t tid, sim::SimTime start_ts, sim::SimTime end_ts,
            std::initializer_list<TraceArg> args = {});
  // Async span half; begin/end pairs are correlated by (category, id).
  void AsyncBegin(TraceCategory category, const char* name,
                  std::int32_t pid, std::uint64_t id, sim::SimTime ts,
                  std::initializer_list<TraceArg> args = {});
  void AsyncEnd(TraceCategory category, const char* name, std::int32_t pid,
                std::uint64_t id, sim::SimTime ts,
                std::initializer_list<TraceArg> args = {});
  void Counter(TraceCategory category, const char* name, std::int32_t pid,
               std::int32_t tid, sim::SimTime ts, double value);

  // Fresh correlation id for an async span pair.
  std::uint64_t NextAsyncId() { return next_async_id_++; }

  // --- Track naming (exported as Chrome metadata events) ---

  void SetProcessName(std::int32_t pid, std::string name);
  void SetThreadName(std::int32_t pid, std::int32_t tid, std::string name);

  // --- Inspection ---

  std::size_t capacity() const { return capacity_; }
  // Events currently held (<= capacity).
  std::size_t size() const;
  // Events overwritten because the ring was full.
  std::uint64_t dropped() const;
  std::uint64_t total_recorded() const { return total_recorded_; }
  // i = 0 is the oldest retained event.
  const TraceEvent& event(std::size_t i) const;

  // Writes the whole buffer (plus track-name metadata) as Chrome
  // trace_event JSON. Timestamps are exported in microseconds of
  // simulated time; the wall-clock stamp rides along as an arg.
  void WriteChromeJson(std::ostream& out) const;

 private:
  static constexpr std::size_t kDefaultCapacity = 256 * 1024;

  TraceEvent* Append();
  double WallMicrosNow() const;
  void WriteEventJson(std::ostream& out, const TraceEvent& event) const;

  bool enabled_ = true;
  std::size_t capacity_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // ring slot for the next event
  std::uint64_t total_recorded_ = 0;
  std::uint64_t next_async_id_ = 1;
  std::chrono::steady_clock::time_point epoch_;
  std::map<std::int32_t, std::string> process_names_;
  std::map<std::pair<std::int32_t, std::int32_t>, std::string>
      thread_names_;
};

}  // namespace spiffi::obs

#endif  // SPIFFI_OBS_TRACER_H_
