#include "obs/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "sim/check.h"

namespace spiffi::obs {

QuantileSketch::QuantileSketch(double relative_accuracy)
    : alpha_(relative_accuracy) {
  SPIFFI_CHECK(relative_accuracy > 0.0 && relative_accuracy < 1.0);
  gamma_ = (1.0 + alpha_) / (1.0 - alpha_);
  inv_log_gamma_ = 1.0 / std::log(gamma_);
}

std::int32_t QuantileSketch::BucketFor(double magnitude) const {
  // ceil(log_gamma(m)): the smallest i with gamma^i >= m. Computed via
  // floor + correction so values exactly on a bucket bound stay in the
  // lower bucket (matching the (lo, hi] bucket definition).
  double raw = std::log(magnitude) * inv_log_gamma_;
  auto index = static_cast<std::int32_t>(std::ceil(raw));
  // Guard against floating-point overshoot: gamma^(index-1) must be
  // strictly below the magnitude.
  if (std::pow(gamma_, index - 1) >= magnitude) --index;
  return index;
}

double QuantileSketch::BucketValue(std::int32_t index) const {
  return 2.0 * std::pow(gamma_, index) / (gamma_ + 1.0);
}

void QuantileSketch::Add(double value) {
  if (value > kMinTrackable) {
    ++positive_[BucketFor(value)];
  } else if (value < -kMinTrackable) {
    ++negative_[BucketFor(-value)];
  } else {
    ++zero_count_;
  }
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void QuantileSketch::Merge(const QuantileSketch& other) {
  SPIFFI_CHECK(alpha_ == other.alpha_);
  if (other.count_ == 0) return;
  for (const auto& [index, n] : other.positive_) positive_[index] += n;
  for (const auto& [index, n] : other.negative_) negative_[index] += n;
  zero_count_ += other.zero_count_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void QuantileSketch::Reset() {
  positive_.clear();
  negative_.clear();
  zero_count_ = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

double QuantileSketch::Quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  auto rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));

  // Walk buckets in ascending value order: most-negative first (the
  // negative store's highest magnitude bucket), then zero, then the
  // positive store ascending.
  std::uint64_t seen = 0;
  for (auto it = negative_.rbegin(); it != negative_.rend(); ++it) {
    seen += it->second;
    if (seen > rank) {
      return std::clamp(-BucketValue(it->first), min_, max_);
    }
  }
  seen += zero_count_;
  if (seen > rank) return std::clamp(0.0, min_, max_);
  for (const auto& [index, n] : positive_) {
    seen += n;
    if (seen > rank) {
      return std::clamp(BucketValue(index), min_, max_);
    }
  }
  return max_;
}

}  // namespace spiffi::obs
