#include "obs/time_series.h"

#include <cmath>
#include <cstdio>

#include "sim/check.h"

namespace spiffi::obs {

namespace {

// One formatting path for every exported number, so equal samples yield
// byte-identical exports (the determinism bar for telemetry files).
void WriteNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

void TimeSeries::AddChannel(const std::string& name, bool counter,
                            SampleFn fn) {
  SPIFFI_CHECK(!name.empty());
  SPIFFI_CHECK(fn != nullptr);
  // The column schema is frozen by the first sample; registering later
  // would leave earlier rows short.
  SPIFFI_CHECK(total_samples_ == 0);
  for (const Channel& channel : channels_) {
    SPIFFI_CHECK(channel.name != name);
  }
  Channel channel;
  channel.name = name;
  channel.counter = counter;
  channel.fn = std::move(fn);
  channels_.push_back(std::move(channel));
  if (counter) {
    columns_.push_back(name + "_total");
    columns_.push_back(name + "_delta");
  } else {
    columns_.push_back(name);
  }
}

void TimeSeries::AddGauge(const std::string& name, SampleFn fn) {
  AddChannel(name, /*counter=*/false, std::move(fn));
}

void TimeSeries::AddCounter(const std::string& name, SampleFn fn) {
  AddChannel(name, /*counter=*/true, std::move(fn));
}

void TimeSeries::Sample(double now) {
  Row row;
  row.time = now;
  row.values.reserve(columns_.size());
  for (Channel& channel : channels_) {
    double value = channel.fn();
    if (channel.counter) {
      row.values.push_back(value);  // <name>_total
      // A total falling below the previous reading means the component
      // was reset (the measurement window opened); re-base the delta on
      // the new total rather than emitting a negative spike.
      double delta =
          value >= channel.last_total ? value - channel.last_total : value;
      row.values.push_back(delta);  // <name>_delta
      channel.last_total = value;
    } else {
      row.values.push_back(value);
    }
  }
  ++total_samples_;
  if (stream_ != nullptr) WriteRowJsonl(*stream_, row);
  rows_.push_back(std::move(row));
  TrimToRetention();
}

void TimeSeries::TrimToRetention() {
  if (retention_ == 0) return;
  while (rows_.size() > retention_) rows_.pop_front();
}

std::size_t TimeSeries::ColumnIndex(const std::string& column_name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == column_name) return i;
  }
  std::fprintf(stderr, "unknown telemetry column: %s\n",
               column_name.c_str());
  SPIFFI_CHECK(false);
  return 0;
}

void TimeSeries::WriteRowJsonl(std::ostream& out, const Row& row) const {
  out << "{\"t\":";
  WriteNumber(out, row.time);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out << ",\"" << columns_[c] << "\":";
    WriteNumber(out, row.values[c]);
  }
  out << "}\n";
}

void TimeSeries::WriteJsonl(std::ostream& out) const {
  for (const Row& row : rows_) WriteRowJsonl(out, row);
}

void TimeSeries::WriteCsv(std::ostream& out) const {
  out << "time";
  for (const std::string& column : columns_) out << ',' << column;
  out << '\n';
  for (const Row& row : rows_) {
    WriteNumber(out, row.time);
    for (double value : row.values) {
      out << ',';
      WriteNumber(out, value);
    }
    out << '\n';
  }
}

}  // namespace spiffi::obs
