// Instrumentation entry points for model code.
//
// These helpers are how hot paths emit trace events. They read the
// Tracer owned by the simulation Environment (null until
// Environment::EnableTracing is called) and compile to nothing when the
// build-time SPIFFI_TRACING toggle is off, so an untraced build pays
// zero cost and a traced build pays one pointer test per call site while
// no tracer is installed.
//
//   obs::TraceInstant(env, obs::TraceCategory::kBuffer, "hit", pid, tid);
//
//   {
//     obs::ScopedSpan span(env, obs::TraceCategory::kDisk, "service",
//                          pid, tid);
//     co_await env->Hold(service_time);   // span covers the suspension
//   }
//
// ScopedSpan records the simulated-time interval between its
// construction and destruction on a serial (pid, tid) track; it works
// inside coroutines because the object lives in the coroutine frame
// across suspensions. Overlapping work (per-request lifecycles) should
// use TraceAsyncBegin/End with an id from TraceNextAsyncId.

#ifndef SPIFFI_OBS_TRACE_H_
#define SPIFFI_OBS_TRACE_H_

#include "obs/tracer.h"
#include "sim/environment.h"

#ifndef SPIFFI_TRACING
#define SPIFFI_TRACING 1
#endif

namespace spiffi::obs {

#if SPIFFI_TRACING

inline void TraceInstant(sim::Environment* env, TraceCategory category,
                         const char* name, std::int32_t pid,
                         std::int32_t tid,
                         std::initializer_list<TraceArg> args = {}) {
  if (Tracer* tracer = env->tracer()) {
    tracer->Instant(category, name, pid, tid, env->now(), args);
  }
}

inline void TraceCounter(sim::Environment* env, TraceCategory category,
                         const char* name, std::int32_t pid,
                         std::int32_t tid, double value) {
  if (Tracer* tracer = env->tracer()) {
    tracer->Counter(category, name, pid, tid, env->now(), value);
  }
}

// Complete span from an explicitly remembered start time to now; for
// event-driven (non-coroutine) code where ScopedSpan has no scope to
// live in.
inline void TraceSpan(sim::Environment* env, TraceCategory category,
                      const char* name, std::int32_t pid, std::int32_t tid,
                      sim::SimTime start_ts,
                      std::initializer_list<TraceArg> args = {}) {
  if (Tracer* tracer = env->tracer()) {
    tracer->Span(category, name, pid, tid, start_ts, env->now(), args);
  }
}

// Returns 0 when tracing is inactive; 0 is never a valid async id, so
// paired-end helpers treat it as "no span open".
inline std::uint64_t TraceAsyncBegin(
    sim::Environment* env, TraceCategory category, const char* name,
    std::int32_t pid, std::initializer_list<TraceArg> args = {}) {
  Tracer* tracer = env->tracer();
  if (tracer == nullptr || !tracer->enabled()) return 0;
  std::uint64_t id = tracer->NextAsyncId();
  tracer->AsyncBegin(category, name, pid, id, env->now(), args);
  return id;
}

inline void TraceAsyncEnd(sim::Environment* env, TraceCategory category,
                          const char* name, std::int32_t pid,
                          std::uint64_t id,
                          std::initializer_list<TraceArg> args = {}) {
  if (id == 0) return;
  if (Tracer* tracer = env->tracer()) {
    tracer->AsyncEnd(category, name, pid, id, env->now(), args);
  }
}

class ScopedSpan {
 public:
  ScopedSpan(sim::Environment* env, TraceCategory category,
             const char* name, std::int32_t pid, std::int32_t tid)
      : env_(env),
        category_(category),
        name_(name),
        pid_(pid),
        tid_(tid),
        start_(env->now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (Tracer* tracer = env_->tracer()) {
      tracer->Span(category_, name_, pid_, tid_, start_, env_->now());
    }
  }

 private:
  sim::Environment* env_;
  TraceCategory category_;
  const char* name_;
  std::int32_t pid_;
  std::int32_t tid_;
  sim::SimTime start_;
};

#else  // !SPIFFI_TRACING

inline void TraceInstant(sim::Environment*, TraceCategory, const char*,
                         std::int32_t, std::int32_t,
                         std::initializer_list<TraceArg> = {}) {}
inline void TraceCounter(sim::Environment*, TraceCategory, const char*,
                         std::int32_t, std::int32_t, double) {}
inline void TraceSpan(sim::Environment*, TraceCategory, const char*,
                      std::int32_t, std::int32_t, sim::SimTime,
                      std::initializer_list<TraceArg> = {}) {}
inline std::uint64_t TraceAsyncBegin(sim::Environment*, TraceCategory,
                                     const char*, std::int32_t,
                                     std::initializer_list<TraceArg> = {}) {
  return 0;
}
inline void TraceAsyncEnd(sim::Environment*, TraceCategory, const char*,
                          std::int32_t, std::uint64_t,
                          std::initializer_list<TraceArg> = {}) {}

class ScopedSpan {
 public:
  ScopedSpan(sim::Environment*, TraceCategory, const char*, std::int32_t,
             std::int32_t) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
};

#endif  // SPIFFI_TRACING

}  // namespace spiffi::obs

#endif  // SPIFFI_OBS_TRACE_H_
