#include "obs/tracer.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "sim/check.h"

namespace spiffi::obs {

const char* TraceCategoryName(TraceCategory category) {
  switch (category) {
    case TraceCategory::kTerminal: return "terminal";
    case TraceCategory::kServer: return "server";
    case TraceCategory::kDisk: return "disk";
    case TraceCategory::kNetwork: return "network";
    case TraceCategory::kBuffer: return "buffer";
    case TraceCategory::kPrefetch: return "prefetch";
    case TraceCategory::kKernel: return "kernel";
    case TraceCategory::kFault: return "fault";
    case TraceCategory::kProxy: return "proxy";
  }
  return "unknown";
}

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  SPIFFI_CHECK(capacity > 0);
  ring_.reserve(std::min<std::size_t>(capacity, 4096));
}

double Tracer::WallMicrosNow() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceEvent* Tracer::Append() {
  ++total_recorded_;
  if (ring_.size() < capacity_) {
    ring_.emplace_back();
    return &ring_.back();
  }
  TraceEvent* slot = &ring_[next_];
  next_ = (next_ + 1) % capacity_;
  return slot;
}

std::size_t Tracer::size() const { return ring_.size(); }

std::uint64_t Tracer::dropped() const { return total_recorded_ - ring_.size(); }

const TraceEvent& Tracer::event(std::size_t i) const {
  SPIFFI_CHECK(i < ring_.size());
  // Once the ring has wrapped, next_ points at the oldest entry.
  return ring_[(next_ + i) % ring_.size()];
}

namespace {

void CopyArgs(TraceEvent* event, std::initializer_list<TraceArg> args) {
  event->num_args = 0;
  for (const TraceArg& arg : args) {
    if (event->num_args == event->args.size()) break;
    event->args[event->num_args++] = arg;
  }
}

}  // namespace

void Tracer::Instant(TraceCategory category, const char* name,
                     std::int32_t pid, std::int32_t tid, sim::SimTime ts,
                     std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent* event = Append();
  *event = TraceEvent{};
  event->ts = ts;
  event->wall_us = WallMicrosNow();
  event->pid = pid;
  event->tid = tid;
  event->name = name;
  event->category = category;
  event->phase = 'i';
  CopyArgs(event, args);
}

void Tracer::Span(TraceCategory category, const char* name,
                  std::int32_t pid, std::int32_t tid, sim::SimTime start_ts,
                  sim::SimTime end_ts,
                  std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  SPIFFI_DCHECK(end_ts >= start_ts);
  TraceEvent* event = Append();
  *event = TraceEvent{};
  event->ts = start_ts;
  event->end_ts = end_ts;
  event->wall_us = WallMicrosNow();
  event->pid = pid;
  event->tid = tid;
  event->name = name;
  event->category = category;
  event->phase = 'X';
  CopyArgs(event, args);
}

void Tracer::AsyncBegin(TraceCategory category, const char* name,
                        std::int32_t pid, std::uint64_t id, sim::SimTime ts,
                        std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent* event = Append();
  *event = TraceEvent{};
  event->ts = ts;
  event->wall_us = WallMicrosNow();
  event->id = id;
  event->pid = pid;
  event->name = name;
  event->category = category;
  event->phase = 'b';
  CopyArgs(event, args);
}

void Tracer::AsyncEnd(TraceCategory category, const char* name,
                      std::int32_t pid, std::uint64_t id, sim::SimTime ts,
                      std::initializer_list<TraceArg> args) {
  if (!enabled_) return;
  TraceEvent* event = Append();
  *event = TraceEvent{};
  event->ts = ts;
  event->wall_us = WallMicrosNow();
  event->id = id;
  event->pid = pid;
  event->name = name;
  event->category = category;
  event->phase = 'e';
  CopyArgs(event, args);
}

void Tracer::Counter(TraceCategory category, const char* name,
                     std::int32_t pid, std::int32_t tid, sim::SimTime ts,
                     double value) {
  if (!enabled_) return;
  TraceEvent* event = Append();
  *event = TraceEvent{};
  event->ts = ts;
  event->wall_us = WallMicrosNow();
  event->pid = pid;
  event->tid = tid;
  event->name = name;
  event->category = category;
  event->phase = 'C';
  event->num_args = 1;
  event->args[0] = TraceArg{name, value};
}

void Tracer::SetProcessName(std::int32_t pid, std::string name) {
  process_names_[pid] = std::move(name);
}

void Tracer::SetThreadName(std::int32_t pid, std::int32_t tid,
                           std::string name) {
  thread_names_[{pid, tid}] = std::move(name);
}

namespace {

// Event names and track names are ASCII identifiers in practice; escape
// defensively anyway so the output is always valid JSON.
void WriteJsonString(std::ostream& out, const char* s) {
  out << '"';
  for (; *s != '\0'; ++s) {
    char c = *s;
    if (c == '"' || c == '\\') {
      out << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out << buf;
    } else {
      out << c;
    }
  }
  out << '"';
}

// Doubles are written with %.17g (round-trip exact); non-finite values
// have no JSON representation and become 0.
void WriteJsonNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

}  // namespace

void Tracer::WriteEventJson(std::ostream& out,
                            const TraceEvent& event) const {
  out << "{\"name\":";
  WriteJsonString(out, event.name != nullptr ? event.name : "?");
  out << ",\"cat\":\"" << TraceCategoryName(event.category) << '"';
  out << ",\"ph\":\"" << event.phase << '"';
  out << ",\"ts\":";
  WriteJsonNumber(out, event.ts * 1e6);
  if (event.phase == 'X') {
    out << ",\"dur\":";
    WriteJsonNumber(out, (event.end_ts - event.ts) * 1e6);
  }
  out << ",\"pid\":" << event.pid << ",\"tid\":" << event.tid;
  if (event.phase == 'b' || event.phase == 'e') {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%" PRIx64, event.id);
    out << ",\"id\":\"" << buf << '"';
  }
  out << ",\"args\":{\"wall_us\":";
  WriteJsonNumber(out, event.wall_us);
  for (int a = 0; a < event.num_args; ++a) {
    out << ',';
    WriteJsonString(out, event.args[a].key);
    out << ':';
    WriteJsonNumber(out, event.args[a].value);
  }
  out << "}}";
}

void Tracer::WriteChromeJson(std::ostream& out) const {
  out << "{\"traceEvents\":[";
  bool first = true;
  auto separator = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    separator();
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"args\":{\"name\":";
    WriteJsonString(out, name.c_str());
    out << "}}";
  }
  for (const auto& [track, name] : thread_names_) {
    separator();
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << track.first
        << ",\"tid\":" << track.second << ",\"args\":{\"name\":";
    WriteJsonString(out, name.c_str());
    out << "}}";
  }
  for (std::size_t i = 0; i < size(); ++i) {
    separator();
    WriteEventJson(out, event(i));
  }
  out << "],\n\"displayTimeUnit\":\"ms\",\"otherData\":{"
      << "\"clock\":\"simulated\",\"dropped_events\":" << dropped()
      << "}}\n";
}

}  // namespace spiffi::obs
