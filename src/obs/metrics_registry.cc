#include "obs/metrics_registry.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "sim/check.h"

namespace spiffi::obs {

MetricsRegistry::Entry& MetricsRegistry::Register(const std::string& name,
                                                  Kind kind) {
  SPIFFI_CHECK(!name.empty());
  auto [it, inserted] = entries_.try_emplace(name);
  if (!inserted) {
    std::fprintf(stderr, "duplicate metric registered: %s\n",
                 name.c_str());
  }
  SPIFFI_CHECK(inserted);
  it->second.kind = kind;
  return it->second;
}

const MetricsRegistry::Entry& MetricsRegistry::Find(
    const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    std::fprintf(stderr, "unknown metric: %s\n", name.c_str());
  }
  SPIFFI_CHECK(it != entries_.end());
  return it->second;
}

MetricsRegistry::Counter* MetricsRegistry::AddCounter(
    const std::string& name) {
  Entry& entry = Register(name, Kind::kCounter);
  entry.counter = std::make_unique<Counter>(0);
  return entry.counter.get();
}

MetricsRegistry::Gauge* MetricsRegistry::AddGauge(const std::string& name) {
  Entry& entry = Register(name, Kind::kGauge);
  entry.gauge = std::make_unique<Gauge>(0.0);
  return entry.gauge.get();
}

sim::Tally* MetricsRegistry::AddTally(const std::string& name) {
  Entry& entry = Register(name, Kind::kTally);
  entry.tally = std::make_unique<sim::Tally>();
  return entry.tally.get();
}

sim::Histogram* MetricsRegistry::AddHistogram(const std::string& name) {
  Entry& entry = Register(name, Kind::kHistogram);
  entry.histogram = std::make_unique<sim::Histogram>();
  return entry.histogram.get();
}

void MetricsRegistry::AddProbe(const std::string& name, ProbeFn probe) {
  SPIFFI_CHECK(probe != nullptr);
  Register(name, Kind::kProbe).probe = std::move(probe);
}

void MetricsRegistry::AddHistogramProbe(const std::string& name,
                                        HistogramProbeFn probe) {
  SPIFFI_CHECK(probe != nullptr);
  Register(name, Kind::kHistogramProbe).histogram_probe = std::move(probe);
}

void MetricsRegistry::AddSketchProbe(const std::string& name,
                                     SketchProbeFn probe) {
  SPIFFI_CHECK(probe != nullptr);
  Register(name, Kind::kSketchProbe).sketch_probe = std::move(probe);
}

bool MetricsRegistry::Has(const std::string& name) const {
  return entries_.find(name) != entries_.end();
}

double MetricsRegistry::Value(const std::string& name) const {
  const Entry& entry = Find(name);
  switch (entry.kind) {
    case Kind::kCounter:
      return static_cast<double>(*entry.counter);
    case Kind::kGauge:
      return *entry.gauge;
    case Kind::kProbe:
      return entry.probe();
    default:
      break;
  }
  SPIFFI_CHECK(false && "Value() requires a counter, gauge, or probe");
  return 0.0;
}

const sim::Tally& MetricsRegistry::GetTally(const std::string& name) const {
  const Entry& entry = Find(name);
  SPIFFI_CHECK(entry.kind == Kind::kTally);
  return *entry.tally;
}

sim::Histogram MetricsRegistry::GetHistogram(
    const std::string& name) const {
  const Entry& entry = Find(name);
  if (entry.kind == Kind::kHistogram) return *entry.histogram;
  SPIFFI_CHECK(entry.kind == Kind::kHistogramProbe);
  sim::Histogram merged;
  entry.histogram_probe(merged);
  return merged;
}

QuantileSketch MetricsRegistry::GetSketch(const std::string& name) const {
  const Entry& entry = Find(name);
  SPIFFI_CHECK(entry.kind == Kind::kSketchProbe);
  QuantileSketch merged;
  entry.sketch_probe(merged);
  return merged;
}

void MetricsRegistry::Reset() {
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        *entry.counter = 0;
        break;
      case Kind::kGauge:
        *entry.gauge = 0.0;
        break;
      case Kind::kTally:
        entry.tally->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
      case Kind::kProbe:
      case Kind::kHistogramProbe:
      case Kind::kSketchProbe:
        break;  // views onto component state; the component resets it
    }
  }
}

namespace {

void WriteNumber(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out << buf;
}

void WriteTallyJson(std::ostream& out, const sim::Tally& tally) {
  out << "{\"count\":" << tally.count() << ",\"sum\":";
  WriteNumber(out, tally.sum());
  out << ",\"mean\":";
  WriteNumber(out, tally.mean());
  out << ",\"min\":";
  WriteNumber(out, tally.count() == 0 ? 0.0 : tally.min());
  out << ",\"max\":";
  WriteNumber(out, tally.count() == 0 ? 0.0 : tally.max());
  out << ",\"stddev\":";
  WriteNumber(out, tally.count() < 2 ? 0.0 : tally.stddev());
  out << '}';
}

void WriteSketchJson(std::ostream& out, const QuantileSketch& s) {
  out << "{\"count\":" << s.count() << ",\"mean\":";
  WriteNumber(out, s.mean());
  out << ",\"min\":";
  WriteNumber(out, s.count() == 0 ? 0.0 : s.min());
  out << ",\"max\":";
  WriteNumber(out, s.count() == 0 ? 0.0 : s.max());
  out << ",\"p50\":";
  WriteNumber(out, s.Quantile(0.5));
  out << ",\"p90\":";
  WriteNumber(out, s.Quantile(0.9));
  out << ",\"p99\":";
  WriteNumber(out, s.Quantile(0.99));
  out << '}';
}

void WriteHistogramJson(std::ostream& out, const sim::Histogram& h) {
  out << "{\"count\":" << h.count() << ",\"mean\":";
  WriteNumber(out, h.mean());
  out << ",\"min\":";
  WriteNumber(out, h.min());
  out << ",\"max\":";
  WriteNumber(out, h.max());
  out << ",\"p50\":";
  WriteNumber(out, h.Percentile(0.5));
  out << ",\"p90\":";
  WriteNumber(out, h.Percentile(0.9));
  out << ",\"p99\":";
  WriteNumber(out, h.Percentile(0.99));
  out << ",\"buckets\":[";
  bool first = true;
  for (int b = 0; b < sim::Histogram::kBuckets; ++b) {
    if (h.bucket(b) == 0) continue;
    if (!first) out << ',';
    first = false;
    out << "{\"le\":";
    WriteNumber(out, sim::Histogram::BucketBound(b));
    out << ",\"n\":" << h.bucket(b) << '}';
  }
  out << "]}";
}

}  // namespace

void MetricsRegistry::WriteJson(std::ostream& out) const {
  out << "{\n";
  bool first = true;
  for (const auto& [name, entry] : entries_) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"" << name << "\":";
    switch (entry.kind) {
      case Kind::kCounter:
        out << *entry.counter;
        break;
      case Kind::kGauge:
        WriteNumber(out, *entry.gauge);
        break;
      case Kind::kProbe:
        WriteNumber(out, entry.probe());
        break;
      case Kind::kTally:
        WriteTallyJson(out, *entry.tally);
        break;
      case Kind::kHistogram:
        WriteHistogramJson(out, *entry.histogram);
        break;
      case Kind::kHistogramProbe: {
        sim::Histogram merged;
        entry.histogram_probe(merged);
        WriteHistogramJson(out, merged);
        break;
      }
      case Kind::kSketchProbe: {
        QuantileSketch merged;
        entry.sketch_probe(merged);
        WriteSketchJson(out, merged);
        break;
      }
    }
  }
  out << "\n}\n";
}

void MetricsRegistry::WriteCsv(std::ostream& out) const {
  out << "metric,value\n";
  auto row = [&out](const std::string& name, double value) {
    out << name << ',';
    WriteNumber(out, value);
    out << '\n';
  };
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        row(name, static_cast<double>(*entry.counter));
        break;
      case Kind::kGauge:
        row(name, *entry.gauge);
        break;
      case Kind::kProbe:
        row(name, entry.probe());
        break;
      case Kind::kTally: {
        const sim::Tally& tally = *entry.tally;
        row(name + ".count", static_cast<double>(tally.count()));
        row(name + ".mean", tally.mean());
        row(name + ".min", tally.count() == 0 ? 0.0 : tally.min());
        row(name + ".max", tally.count() == 0 ? 0.0 : tally.max());
        break;
      }
      case Kind::kHistogram:
      case Kind::kHistogramProbe: {
        sim::Histogram h;
        if (entry.kind == Kind::kHistogram) {
          h = *entry.histogram;
        } else {
          entry.histogram_probe(h);
        }
        row(name + ".count", static_cast<double>(h.count()));
        row(name + ".mean", h.mean());
        row(name + ".p50", h.Percentile(0.5));
        row(name + ".p99", h.Percentile(0.99));
        break;
      }
      case Kind::kSketchProbe: {
        QuantileSketch s;
        entry.sketch_probe(s);
        row(name + ".count", static_cast<double>(s.count()));
        row(name + ".mean", s.mean());
        row(name + ".p50", s.Quantile(0.5));
        row(name + ".p99", s.Quantile(0.99));
        break;
      }
    }
  }
}

}  // namespace spiffi::obs
