// Central registry of named metrics (observability layer).
//
// Components register instruments at construction time under unique
// dotted names ("pool.hits", "disk.queue_wait_s", ...). Two kinds of
// entries exist:
//
//  * Owned instruments — Counter, Gauge, Tally, Histogram — allocated by
//    the registry and written by the component through the returned
//    pointer. Reset() (called when the measurement window opens) zeroes
//    all of these, mirroring Simulation::ResetAllStats().
//  * Probes — callbacks that read state the component already keeps
//    (its legacy Stats struct, a utilization integrator, ...). Probes
//    are polled at read/export time and are NOT touched by Reset(); the
//    owning component resets the underlying state itself.
//
// Duplicate registration of a name is a programming error and CHECKs.
// Export: WriteJson emits every entry (histograms with their non-empty
// buckets); WriteCsv emits one name,value row per scalar facet.

#ifndef SPIFFI_OBS_METRICS_REGISTRY_H_
#define SPIFFI_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "obs/quantile_sketch.h"
#include "sim/histogram.h"
#include "sim/stats.h"

namespace spiffi::obs {

class MetricsRegistry {
 public:
  using Counter = std::uint64_t;
  using Gauge = double;
  using ProbeFn = std::function<double()>;
  // Merges the component's histogram into the accumulator passed in.
  using HistogramProbeFn = std::function<void(sim::Histogram&)>;
  // Merges the component's quantile sketch into the accumulator.
  using SketchProbeFn = std::function<void(QuantileSketch&)>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Registration (CHECKs on duplicate names) ---

  Counter* AddCounter(const std::string& name);
  Gauge* AddGauge(const std::string& name);
  sim::Tally* AddTally(const std::string& name);
  sim::Histogram* AddHistogram(const std::string& name);
  void AddProbe(const std::string& name, ProbeFn probe);
  void AddHistogramProbe(const std::string& name, HistogramProbeFn probe);
  void AddSketchProbe(const std::string& name, SketchProbeFn probe);

  // --- Reads ---

  bool Has(const std::string& name) const;
  std::size_t size() const { return entries_.size(); }

  // Scalar value of a counter, gauge, or probe (CHECKs on other kinds
  // and on unknown names).
  double Value(const std::string& name) const;
  // Tally access (CHECKs unless `name` is a tally).
  const sim::Tally& GetTally(const std::string& name) const;
  // Snapshot of a histogram or histogram probe (CHECKs otherwise).
  sim::Histogram GetHistogram(const std::string& name) const;
  // Snapshot of a sketch probe (CHECKs otherwise).
  QuantileSketch GetSketch(const std::string& name) const;

  // --- Lifecycle & export ---

  // Zeroes all owned instruments; probes are left alone (their backing
  // state belongs to the component).
  void Reset();

  void WriteJson(std::ostream& out) const;
  void WriteCsv(std::ostream& out) const;

 private:
  enum class Kind { kCounter, kGauge, kTally, kHistogram, kProbe,
                    kHistogramProbe, kSketchProbe };

  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<sim::Tally> tally;
    std::unique_ptr<sim::Histogram> histogram;
    ProbeFn probe;
    HistogramProbeFn histogram_probe;
    SketchProbeFn sketch_probe;
  };

  Entry& Register(const std::string& name, Kind kind);
  const Entry& Find(const std::string& name) const;

  // Ordered map: exports are deterministic and diff-friendly.
  std::map<std::string, Entry> entries_;
};

}  // namespace spiffi::obs

#endif  // SPIFFI_OBS_METRICS_REGISTRY_H_
