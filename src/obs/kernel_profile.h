// Simulation-kernel self-profiling (observability layer).
//
// Captures the event loop's own health counters — events dispatched,
// calendar occupancy and storage growth, process population — from an
// Environment, and writes them (plus wall-clock throughput measured by
// the caller) as a small machine-readable JSON report. Benchmark
// harnesses use this for their --profile mode, producing the
// bench_profile.json datapoints that track kernel performance across
// commits.

#ifndef SPIFFI_OBS_KERNEL_PROFILE_H_
#define SPIFFI_OBS_KERNEL_PROFILE_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "sim/environment.h"

namespace spiffi::obs {

struct KernelProfile {
  std::uint64_t events_fired = 0;       // since Environment construction
  std::size_t calendar_size = 0;        // pending entries right now
  std::size_t peak_calendar_size = 0;   // high-water mark
  std::uint64_t calendar_grows = 0;     // heap storage reallocations
  std::size_t live_processes = 0;
  std::size_t peak_processes = 0;
  std::size_t resume_slots = 0;         // pooled coroutine-resume slots
};

KernelProfile CaptureKernelProfile(const sim::Environment& env);

// One self-describing JSON object. `wall_seconds` is the caller-measured
// wall time over which `events_fired` events were dispatched (pass the
// profile of the same Environment); events/sec is derived from the two.
void WriteKernelProfileJson(std::ostream& out, const std::string& name,
                            const KernelProfile& profile,
                            double wall_seconds);

}  // namespace spiffi::obs

#endif  // SPIFFI_OBS_KERNEL_PROFILE_H_
