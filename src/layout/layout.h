// Storage layout interface: maps (video, block) to a physical location.
//
// A "block" here is one read unit (the stripe size for striped layouts;
// the configured read size for the non-striped baseline). Each block maps
// to exactly one disk — the paper's terminals align reads to stripe blocks
// so every request is serviced by a single drive.

#ifndef SPIFFI_LAYOUT_LAYOUT_H_
#define SPIFFI_LAYOUT_LAYOUT_H_

#include <cstdint>
#include <vector>

namespace spiffi::layout {

struct BlockLocation {
  int node = 0;         // server node owning the disk
  int disk_local = 0;   // disk index within the node
  int disk_global = 0;  // node * disks_per_node + disk_local
  std::int64_t offset = 0;  // byte offset on the disk

  bool operator==(const BlockLocation&) const = default;
};

class Layout {
 public:
  virtual ~Layout() = default;

  virtual BlockLocation Locate(int video, std::int64_t block) const = 0;

  // Block index of the next block of `video` stored on the same disk as
  // `block`, or -1 if none; drives the "prefetch the next stripe block at
  // the same disk" rule (§5.2.3).
  virtual std::int64_t NextBlockOnSameDisk(int video,
                                           std::int64_t block) const = 0;

  // Every physical copy of the block, primary first. Locate() always
  // returns the primary — element 0 — so non-replicated layouts keep
  // their behaviour through the default. Replicated layouts override
  // this to expose the surviving copies the degraded-read path can fall
  // back on when the primary's disk or node is down.
  virtual std::vector<BlockLocation> Replicas(int video,
                                              std::int64_t block) const {
    return {Locate(video, block)};
  }

  // Number of copies Replicas() reports for every block (1 unless the
  // layout replicates).
  virtual int replica_count() const { return 1; }

  virtual int num_nodes() const = 0;
  virtual int disks_per_node() const = 0;
  int total_disks() const { return num_nodes() * disks_per_node(); }
};

}  // namespace spiffi::layout

#endif  // SPIFFI_LAYOUT_LAYOUT_H_
