// Non-striped baseline layout (paper §7.4): each video is stored in its
// entirety on a single randomly chosen disk, with exactly
// videos/total_disks videos per disk.

#ifndef SPIFFI_LAYOUT_NONSTRIPED_H_
#define SPIFFI_LAYOUT_NONSTRIPED_H_

#include <cstdint>
#include <vector>

#include "layout/layout.h"
#include "sim/random.h"

namespace spiffi::layout {

class NonStripedLayout final : public Layout {
 public:
  // `video_bytes[v]` is the size of video v; reads are `read_bytes` units.
  // The assignment of videos to disks is a seeded random permutation.
  NonStripedLayout(int num_nodes, int disks_per_node,
                   std::int64_t read_bytes,
                   std::vector<std::int64_t> video_bytes,
                   std::uint64_t seed);

  BlockLocation Locate(int video, std::int64_t block) const override;
  std::int64_t NextBlockOnSameDisk(int video,
                                   std::int64_t block) const override;

  int num_nodes() const override { return num_nodes_; }
  int disks_per_node() const override { return disks_per_node_; }

  int DiskOfVideo(int video) const { return disk_of_video_[video]; }

 private:
  int num_nodes_;
  int disks_per_node_;
  std::int64_t read_bytes_;
  std::vector<std::int64_t> video_bytes_;
  std::vector<int> disk_of_video_;
  std::vector<std::int64_t> base_offset_;  // per video, on its disk
};

}  // namespace spiffi::layout

#endif  // SPIFFI_LAYOUT_NONSTRIPED_H_
