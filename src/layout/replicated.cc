#include "layout/replicated.h"

#include <utility>

#include "sim/check.h"

namespace spiffi::layout {

ReplicatedStripedLayout::ReplicatedStripedLayout(
    int num_nodes, int disks_per_node, std::int64_t stripe_bytes,
    std::vector<std::int64_t> video_blocks, int replicas)
    : primary_(num_nodes, disks_per_node, stripe_bytes,
               std::move(video_blocks)),
      replicas_(replicas),
      region_bytes_(primary_.MaxBytesOnAnyDisk()) {
  SPIFFI_CHECK(replicas >= 2);
  SPIFFI_CHECK(replicas <= num_nodes);
}

BlockLocation ReplicatedStripedLayout::Locate(int video,
                                              std::int64_t block) const {
  return primary_.Locate(video, block);
}

std::int64_t ReplicatedStripedLayout::NextBlockOnSameDisk(
    int video, std::int64_t block) const {
  // Copy c of block b lives on the same disk as copy c of block
  // b + total_disks (chained declustering shifts whole fragments, not
  // individual blocks), so the primary's answer is correct for every
  // replica chain.
  return primary_.NextBlockOnSameDisk(video, block);
}

BlockLocation ReplicatedStripedLayout::LocateCopy(int video,
                                                  std::int64_t block,
                                                  int copy) const {
  SPIFFI_DCHECK(copy >= 0 && copy < replicas_);
  BlockLocation loc = primary_.Locate(video, block);
  if (copy == 0) return loc;
  loc.node = (loc.node + copy) % num_nodes();
  loc.disk_global = loc.node * disks_per_node() + loc.disk_local;
  loc.offset += static_cast<std::int64_t>(copy) * region_bytes_;
  return loc;
}

std::vector<BlockLocation> ReplicatedStripedLayout::Replicas(
    int video, std::int64_t block) const {
  std::vector<BlockLocation> copies;
  copies.reserve(static_cast<std::size_t>(replicas_));
  for (int c = 0; c < replicas_; ++c) {
    copies.push_back(LocateCopy(video, block, c));
  }
  return copies;
}

std::int64_t ReplicatedStripedLayout::MaxBytesOnAnyDisk() const {
  return static_cast<std::int64_t>(replicas_) * region_bytes_;
}

}  // namespace spiffi::layout
