// SPIFFI striping (paper Fig 3): stripe blocks alternate first between
// nodes and then between the disks at each node, so block i of any video
// lives on node (i mod N), local disk ((i div N) mod D). The portion of a
// video on one disk (every N*D-th block) is its "fragment" and is laid out
// contiguously; fragments of successive videos are stored back to back.

#ifndef SPIFFI_LAYOUT_STRIPING_H_
#define SPIFFI_LAYOUT_STRIPING_H_

#include <cstdint>
#include <vector>

#include "layout/layout.h"

namespace spiffi::layout {

class StripedLayout final : public Layout {
 public:
  // `video_blocks[v]` is the number of stripe blocks in video v;
  // `stripe_bytes` the size of each block.
  StripedLayout(int num_nodes, int disks_per_node,
                std::int64_t stripe_bytes,
                std::vector<std::int64_t> video_blocks);

  BlockLocation Locate(int video, std::int64_t block) const override;
  std::int64_t NextBlockOnSameDisk(int video,
                                   std::int64_t block) const override;

  int num_nodes() const override { return num_nodes_; }
  int disks_per_node() const override { return disks_per_node_; }

  // Bytes stored on each disk (uniform by construction modulo one block);
  // exposed so configurations can be validated against drive capacity.
  std::int64_t MaxBytesOnAnyDisk() const;

 private:
  int num_nodes_;
  int disks_per_node_;
  std::int64_t stripe_bytes_;
  std::vector<std::int64_t> video_blocks_;
  // fragment_base_[v * total_disks + d] = byte offset on disk d where
  // video v's fragment begins.
  std::vector<std::int64_t> fragment_base_;
  // Blocks of video v on disk d.
  std::int64_t FragmentBlocks(int video, int disk_global) const;
};

}  // namespace spiffi::layout

#endif  // SPIFFI_LAYOUT_STRIPING_H_
