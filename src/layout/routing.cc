#include "layout/routing.h"

#include "sim/check.h"

namespace spiffi::layout {

TierRouter::TierRouter(const Layout* layout, int proxy_nodes)
    : layout_(layout), proxy_nodes_(proxy_nodes) {
  SPIFFI_CHECK(layout != nullptr);
  SPIFFI_CHECK(proxy_nodes >= 0);
}

TierRoute TierRouter::RouteForBlock(int terminal, int video,
                                    std::int64_t block) const {
  TierRoute route;
  route.proxy = ProxyForTerminal(terminal);
  route.origin = layout_->Replicas(video, block);
  return route;
}

}  // namespace spiffi::layout
