#include "layout/nonstriped.h"

#include <numeric>

#include "sim/check.h"

namespace spiffi::layout {

NonStripedLayout::NonStripedLayout(int num_nodes, int disks_per_node,
                                   std::int64_t read_bytes,
                                   std::vector<std::int64_t> video_bytes,
                                   std::uint64_t seed)
    : num_nodes_(num_nodes),
      disks_per_node_(disks_per_node),
      read_bytes_(read_bytes),
      video_bytes_(std::move(video_bytes)) {
  SPIFFI_CHECK(num_nodes > 0);
  SPIFFI_CHECK(disks_per_node > 0);
  SPIFFI_CHECK(read_bytes > 0);
  int disks = total_disks();
  int videos = static_cast<int>(video_bytes_.size());
  SPIFFI_CHECK(videos % disks == 0);  // "each disk held exactly 4 videos"

  // Fisher-Yates shuffle of video ids, then deal them to disks in rounds
  // so every disk receives exactly videos/disks of them.
  std::vector<int> order(videos);
  std::iota(order.begin(), order.end(), 0);
  sim::Rng rng(seed);
  for (int i = videos - 1; i > 0; --i) {
    int j = static_cast<int>(rng.UniformInt(static_cast<std::uint64_t>(i) + 1));
    std::swap(order[i], order[j]);
  }

  disk_of_video_.assign(videos, 0);
  base_offset_.assign(videos, 0);
  std::vector<std::int64_t> next_free(disks, 0);
  for (int slot = 0; slot < videos; ++slot) {
    int video = order[slot];
    int disk = slot % disks;
    disk_of_video_[video] = disk;
    base_offset_[video] = next_free[disk];
    std::int64_t blocks =
        (video_bytes_[video] + read_bytes_ - 1) / read_bytes_;
    next_free[disk] += blocks * read_bytes_;
  }
}

BlockLocation NonStripedLayout::Locate(int video,
                                       std::int64_t block) const {
  SPIFFI_DCHECK(video >= 0 &&
                video < static_cast<int>(video_bytes_.size()));
  BlockLocation loc;
  loc.disk_global = disk_of_video_[video];
  loc.node = loc.disk_global / disks_per_node_;
  loc.disk_local = loc.disk_global % disks_per_node_;
  loc.offset = base_offset_[video] + block * read_bytes_;
  return loc;
}

std::int64_t NonStripedLayout::NextBlockOnSameDisk(
    int video, std::int64_t block) const {
  std::int64_t blocks =
      (video_bytes_[video] + read_bytes_ - 1) / read_bytes_;
  std::int64_t next = block + 1;
  return next < blocks ? next : -1;
}

}  // namespace spiffi::layout
