#include "layout/striping.h"

#include <algorithm>

#include "sim/check.h"

namespace spiffi::layout {

StripedLayout::StripedLayout(int num_nodes, int disks_per_node,
                             std::int64_t stripe_bytes,
                             std::vector<std::int64_t> video_blocks)
    : num_nodes_(num_nodes),
      disks_per_node_(disks_per_node),
      stripe_bytes_(stripe_bytes),
      video_blocks_(std::move(video_blocks)) {
  SPIFFI_CHECK(num_nodes > 0);
  SPIFFI_CHECK(disks_per_node > 0);
  SPIFFI_CHECK(stripe_bytes > 0);
  int disks = total_disks();
  int videos = static_cast<int>(video_blocks_.size());
  fragment_base_.assign(static_cast<std::size_t>(videos) * disks, 0);
  // Fragments of successive videos are stacked contiguously on each disk.
  std::vector<std::int64_t> next_free(disks, 0);
  for (int v = 0; v < videos; ++v) {
    for (int d = 0; d < disks; ++d) {
      fragment_base_[static_cast<std::size_t>(v) * disks + d] =
          next_free[d];
      next_free[d] += FragmentBlocks(v, d) * stripe_bytes_;
    }
  }
}

std::int64_t StripedLayout::FragmentBlocks(int video,
                                           int disk_global) const {
  // Blocks i of this video with disk(i) == disk_global. The cycle over
  // disks has period W = total_disks, and disk_global is hit exactly once
  // per period, at cycle position p.
  std::int64_t blocks = video_blocks_[video];
  int w = total_disks();
  int node = disk_global / disks_per_node_;
  int local = disk_global % disks_per_node_;
  std::int64_t p = static_cast<std::int64_t>(local) * num_nodes_ + node;
  if (p >= blocks) return 0;
  return (blocks - p - 1) / w + 1;
}

BlockLocation StripedLayout::Locate(int video, std::int64_t block) const {
  SPIFFI_DCHECK(video >= 0 &&
                video < static_cast<int>(video_blocks_.size()));
  SPIFFI_DCHECK(block >= 0 && block < video_blocks_[video]);
  BlockLocation loc;
  loc.node = static_cast<int>(block % num_nodes_);
  loc.disk_local =
      static_cast<int>((block / num_nodes_) % disks_per_node_);
  loc.disk_global = loc.node * disks_per_node_ + loc.disk_local;
  std::int64_t fragment_index = block / total_disks();
  loc.offset = fragment_base_[static_cast<std::size_t>(video) *
                                  total_disks() +
                              loc.disk_global] +
               fragment_index * stripe_bytes_;
  return loc;
}

std::int64_t StripedLayout::NextBlockOnSameDisk(int video,
                                                std::int64_t block) const {
  std::int64_t next = block + total_disks();
  return next < video_blocks_[video] ? next : -1;
}

std::int64_t StripedLayout::MaxBytesOnAnyDisk() const {
  int disks = total_disks();
  std::int64_t max_bytes = 0;
  for (int d = 0; d < disks; ++d) {
    std::int64_t bytes = 0;
    for (int v = 0; v < static_cast<int>(video_blocks_.size()); ++v) {
      bytes += FragmentBlocks(v, d) * stripe_bytes_;
    }
    max_bytes = std::max(max_bytes, bytes);
  }
  return max_bytes;
}

}  // namespace spiffi::layout
