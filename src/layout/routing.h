// Multi-tier request routing: generalizes Layout::Replicas() into a
// topology-aware resolver.
//
// The flat cluster routes a block request straight to the origin node
// owning its stripe (Layout::Locate). With a proxy tier configured, the
// request first hops to the terminal's assigned proxy cache; the proxy
// serves hits locally and forwards misses to the origin. TierRouter is
// the one place that resolves both hops:
//
//   * the proxy hop — a static, deterministic terminal -> proxy
//     assignment (terminal % proxy_nodes), and
//   * the origin hop — every physical copy of the block, primary first,
//     exactly as Layout::Replicas() reports it, so the degraded-read
//     fallback order is identical to the flat topology's.
//
// RouteForBlock is a pure function of (terminal, video, block): no
// state, no randomness, so routing is bit-identical at any --jobs N and
// a zero-proxy router degenerates to the flat topology (proxy == -1).

#ifndef SPIFFI_LAYOUT_ROUTING_H_
#define SPIFFI_LAYOUT_ROUTING_H_

#include <cstdint>
#include <vector>

#include "layout/layout.h"

namespace spiffi::layout {

// Resolved route for one block request: the proxy-tier hop (if any)
// plus every origin copy, primary first (origin[0] == Locate()).
struct TierRoute {
  int proxy = -1;                     // -1: no proxy tier
  std::vector<BlockLocation> origin;  // Layout::Replicas(), primary first
};

class TierRouter {
 public:
  // `proxy_nodes` == 0 builds a flat (single-tier) router.
  TierRouter(const Layout* layout, int proxy_nodes);

  int proxy_nodes() const { return proxy_nodes_; }
  const Layout* layout() const { return layout_; }

  // Static terminal -> proxy assignment; -1 when the proxy tier is
  // empty.
  int ProxyForTerminal(int terminal) const {
    return proxy_nodes_ == 0 ? -1 : terminal % proxy_nodes_;
  }

  // Full route for `terminal`'s request for (video, block).
  TierRoute RouteForBlock(int terminal, int video,
                          std::int64_t block) const;

 private:
  const Layout* layout_;
  int proxy_nodes_;
};

}  // namespace spiffi::layout

#endif  // SPIFFI_LAYOUT_ROUTING_H_
