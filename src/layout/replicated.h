// Chained-declustered replication over SPIFFI striping (Hsiao & DeWitt
// style): copy c of a stripe block whose primary lives on node n is
// stored on node (n + c) mod N, on the *same local disk index*, in a
// per-copy region stacked above the primary fragments. Because the
// copies of everything primary-resident on disk (n, d) land together on
// disk ((n+c) mod N, d), the "next block on the same disk" prefetch
// rule holds verbatim on every replica chain, and losing one node
// spreads its read load over its chain successors instead of one
// mirror.

#ifndef SPIFFI_LAYOUT_REPLICATED_H_
#define SPIFFI_LAYOUT_REPLICATED_H_

#include <cstdint>
#include <vector>

#include "layout/striping.h"

namespace spiffi::layout {

class ReplicatedStripedLayout final : public Layout {
 public:
  // Stores `replicas` physical copies of every block (primary + the
  // chained copies); requires 2 <= replicas <= num_nodes so the copies
  // of one block land on distinct nodes.
  ReplicatedStripedLayout(int num_nodes, int disks_per_node,
                          std::int64_t stripe_bytes,
                          std::vector<std::int64_t> video_blocks,
                          int replicas);

  // Primary copy — identical to plain SPIFFI striping, so a replicated
  // system under no faults issues the same request stream as a striped
  // one (modulo on-disk offsets).
  BlockLocation Locate(int video, std::int64_t block) const override;
  std::int64_t NextBlockOnSameDisk(int video,
                                   std::int64_t block) const override;

  std::vector<BlockLocation> Replicas(int video,
                                      std::int64_t block) const override;
  int replica_count() const override { return replicas_; }

  int num_nodes() const override { return primary_.num_nodes(); }
  int disks_per_node() const override { return primary_.disks_per_node(); }

  // Bytes on the fullest disk including replica regions.
  std::int64_t MaxBytesOnAnyDisk() const;

  // Location of copy `copy` (0 = primary).
  BlockLocation LocateCopy(int video, std::int64_t block, int copy) const;

 private:
  StripedLayout primary_;
  int replicas_;
  // Copy c occupies byte range [c * region_bytes_, (c+1) * region_bytes_)
  // on each disk. Uniform across disks so regions never collide: every
  // primary offset is < region_bytes_ by construction.
  std::int64_t region_bytes_;
};

}  // namespace spiffi::layout

#endif  // SPIFFI_LAYOUT_REPLICATED_H_
