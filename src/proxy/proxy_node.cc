#include "proxy/proxy_node.h"

#include <algorithm>

#include "obs/trace.h"
#include "obs/tracer.h"
#include "sim/check.h"

namespace spiffi::proxy {

ProxyNode::ProxyNode(sim::Environment* env, const ProxyParams& params,
                     hw::Network* network, server::NodeDirectory* origin,
                     const layout::TierRouter* router,
                     const mpeg::VideoLibrary* library,
                     const fault::FaultState* fault)
    : env_(env),
      params_(params),
      network_(network),
      origin_(origin),
      router_(router),
      fault_(fault),
      cache_(params.cache_pages, params.policy,
             [&] {
               std::vector<std::int64_t> blocks(library->count());
               for (int v = 0; v < library->count(); ++v) {
                 blocks[v] = library->NumBlocks(v, params.block_bytes);
               }
               return blocks;
             }()),
      trace_pid_(obs::Tracer::kProxyPidBase + params.id) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(network != nullptr);
  SPIFFI_CHECK(origin != nullptr);
  SPIFFI_CHECK(router != nullptr);
  if (params_.policy != ProxyPolicy::kLru && params_.recompute_sec > 0.0) {
    env_->Spawn(RecomputeLoop());
  }
}

void ProxyNode::OnMessage(const server::Message& message) {
  switch (message.kind) {
    case server::Message::Kind::kReadRequest:
      HandleRequest(message);
      return;
    case server::Message::Kind::kReadReply:
      HandleReply(message);
      return;
  }
}

void ProxyNode::HandleRequest(const server::Message& message) {
  cache_.RecordReference(message.video);
  ++stats_.references;

  const server::PageKey key{message.video, message.block};
  if (cache_.Contains(message.video, message.block)) {
    // Hit: answer from the proxy, never touching the origin tier. The
    // proxy charges no node time (dedicated hardware, see the header).
    cache_.Touch(message.video, message.block);
    ++stats_.hits;
    stats_.bytes_from_cache += static_cast<std::uint64_t>(message.bytes);
    server::Message reply = message;
    reply.kind = server::Message::Kind::kReadReply;
    reply.reply_to = nullptr;
    reply.timing.node_received = env_->now();
    reply.timing.reply_sent = env_->now();
    reply.timing.path = server::ReadTiming::Path::kHit;
    obs::TraceInstant(env_, obs::TraceCategory::kProxy, "hit", trace_pid_,
                      obs::Tracer::kCpuTid);
    server::PostMessage(env_, network_, reply.bytes, message.reply_to, reply);
    return;
  }

  auto pending = pending_.find(key);
  if (pending != pending_.end()) {
    // A forward for this block is already in flight: attach to it.
    ++stats_.attaches;
    pending->second.waiters.push_back(
        Waiter{message.reply_to, message.terminal, message.cookie});
    obs::TraceInstant(env_, obs::TraceCategory::kProxy, "attach", trace_pid_,
                      obs::Tracer::kCpuTid);
    return;
  }

  // Miss: forward to the first live origin copy, primary first — the
  // same failover order terminals use in the flat topology.
  ++stats_.forwards;
  PendingForward& forward = pending_[key];
  forward.forward_time = env_->now();
  forward.generation = ++forward_gen_;
  forward.waiters.push_back(
      Waiter{message.reply_to, message.terminal, message.cookie});

  const int target_node =
      PickOriginNode(message.terminal, message.video, message.block, -1);

  server::Message fwd = message;
  fwd.reply_to = this;
  forward.request = fwd;
  forward.last_node = target_node;
  obs::TraceInstant(env_, obs::TraceCategory::kProxy, "forward", trace_pid_,
                    obs::Tracer::kCpuTid);
  server::PostMessage(env_, network_, server::kControlMessageBytes,
                      origin_->node_sink(target_node), fwd);
  if (params_.retry_budget > 0) {
    env_->Spawn(ForwardWatchdog(key, forward.generation));
  }
}

int ProxyNode::PickOriginNode(int terminal, int video, std::int64_t block,
                              int avoid_node) const {
  const layout::TierRoute route =
      router_->RouteForBlock(terminal, video, block);
  const int primary = route.origin.front().node;
  if (fault_ == nullptr) return primary;
  int first_live = -1;
  for (const layout::BlockLocation& loc : route.origin) {
    if (!fault_->LocationUp(loc)) continue;
    if (first_live < 0) first_live = loc.node;
    if (loc.node != avoid_node) return loc.node;
  }
  // Only the avoided node is live: better a retry there than nowhere.
  if (first_live >= 0) return first_live;
  // All copies down: fall through to the primary; the origin's own
  // degraded-read machinery parks the request until a copy returns.
  return primary;
}

void ProxyNode::HandleReply(const server::Message& message) {
  const server::PageKey key{message.video, message.block};
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    // Late duplicate: a watchdog re-forward and the original both got
    // answered, and the first reply already fanned out to the waiters.
    ++stats_.stale_replies;
    cache_.Insert(message.video, message.block);
    return;
  }
  stats_.forward_latency.Add(env_->now() - it->second.forward_time);
  cache_.Insert(message.video, message.block);
  obs::TraceCounter(env_, obs::TraceCategory::kProxy, "cached_pages",
                    trace_pid_, obs::Tracer::kCpuTid,
                    static_cast<double>(cache_.pages_in_use()));
  // Fan the origin reply out to every waiter, re-addressed per terminal.
  // The vector is moved out first: PostMessage delivery is deferred, but
  // erase invalidates the PendingForward either way.
  std::vector<Waiter> waiters = std::move(it->second.waiters);
  pending_.erase(it);
  for (const Waiter& waiter : waiters) {
    server::Message reply = message;
    reply.terminal = waiter.terminal;
    reply.cookie = waiter.cookie;
    reply.reply_to = nullptr;
    server::PostMessage(env_, network_, reply.bytes, waiter.sink, reply);
  }
}

void ProxyNode::ResetStats() {
  stats_ = Stats();
  cache_.ResetStats();
}

sim::Process ProxyNode::RecomputeLoop() {
  for (;;) {
    co_await env_->Hold(params_.recompute_sec);
    cache_.Recompute();
  }
}

sim::Process ProxyNode::ForwardWatchdog(server::PageKey key,
                                        std::uint64_t generation) {
  double timeout = params_.retry_min_timeout_sec;
  for (;;) {
    co_await env_->Hold(timeout);
    auto it = pending_.find(key);
    if (it == pending_.end()) co_return;  // a reply resolved the forward
    if (it->second.generation != generation) {
      // Our forward resolved and the key missed again (cache eviction in
      // between): the new forward has its own watchdog — leave it alone.
      co_return;
    }
    PendingForward& forward = it->second;
    if (forward.attempts >= params_.retry_budget) co_return;
    ++forward.attempts;
    ++stats_.forward_retries;
    const int target = PickOriginNode(forward.request.terminal, key.video,
                                      key.block, forward.last_node);
    forward.last_node = target;
    obs::TraceInstant(env_, obs::TraceCategory::kProxy, "forward_retry",
                      trace_pid_, obs::Tracer::kCpuTid);
    server::PostMessage(env_, network_, server::kControlMessageBytes,
                        origin_->node_sink(target), forward.request);
    timeout = params_.retry_backoff_base_sec *
              static_cast<double>(1 << std::min(forward.attempts - 1, 6));
  }
}

}  // namespace spiffi::proxy
