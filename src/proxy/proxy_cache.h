// Bounded block cache of one proxy node, with popularity-aware
// replacement.
//
// Unlike the origin buffer pool (server/buffer_pool.h), proxy cache
// entries carry no data, pins, or I/O state — the proxy is a pure
// membership cache over (video, block) keys sized in stripe blocks.
// Three replacement families:
//
//  * kLru — a single global LRU chain; the baseline.
//  * kRankZipf — rank-based Zipf-aware replacement (Nair/Jayarekha,
//    "A Rank Based Replacement Policy for Multimedia Server Cache Using
//    Zipf-Like Law"). Every video gets a popularity rank from measured
//    reference counts, re-ranked every Recompute(); eviction always
//    takes from the worst-ranked (least popular) video currently in
//    cache, LRU within that video. Until the first Recompute() the rank
//    is the library order (video id), which under a Zipf library is the
//    a-priori popularity order.
//  * kAdaptivePrefix — adaptive popularity-aware prefix replacement
//    (Jayarekha/Nair, "An Adaptive Dynamic Replacement Approach for a
//    Multicast based Popularity Aware Prefix Cache"). Each video gets a
//    prefix quota proportional to its measured reference share; blocks
//    inside their video's quota live on a protected chain that is only
//    eviction-scanned after the unprotected chain is empty. Quotas are
//    re-sized every Recompute(); before the first one the cache
//    degenerates to plain LRU.
//
// Reference counts accumulate over the whole run (popularity is a
// measurement, not a windowed statistic — same convention as the origin
// prefix cache), so ResetStats() leaves them alone.
//
// Everything here is deterministic: ties in the popularity sort break
// by video id, and no container iteration order leaks into decisions.

#ifndef SPIFFI_PROXY_PROXY_CACHE_H_
#define SPIFFI_PROXY_PROXY_CACHE_H_

#include <cstdint>
#include <deque>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "server/buffer_pool.h"
#include "server/intrusive_chain.h"

namespace spiffi::proxy {

enum class ProxyPolicy { kLru, kRankZipf, kAdaptivePrefix };

const char* ProxyPolicyName(ProxyPolicy policy);

class ProxyCache {
 public:
  struct Stats {
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
  };

  // `video_blocks[v]` is video v's block count; it clamps adaptive
  // prefix quotas (a quota beyond the video's end is wasted budget).
  ProxyCache(std::int64_t num_pages, ProxyPolicy policy,
             std::vector<std::int64_t> video_blocks);

  ProxyCache(const ProxyCache&) = delete;
  ProxyCache& operator=(const ProxyCache&) = delete;

  bool Contains(int video, std::int64_t block) const;
  // Counts a terminal reference against `video`'s popularity (cumulative
  // over the run; survives ResetStats).
  void RecordReference(int video);
  // Marks a cache hit for replacement purposes (moves the entry to its
  // chain's MRU end). The entry must be present.
  void Touch(int video, std::int64_t block);
  // Caches the block, evicting per policy when full. No-op if present.
  void Insert(int video, std::int64_t block);
  // Periodic popularity digestion: re-ranks videos (kRankZipf) or
  // re-sizes prefix quotas (kAdaptivePrefix). No-op for kLru.
  void Recompute();

  // Introspection (tests, telemetry).
  int video_rank(int video) const { return rank_[video]; }
  std::int64_t prefix_quota(int video) const { return quota_[video]; }
  std::uint64_t video_refs(int video) const { return refs_[video]; }
  std::int64_t pages_in_use() const {
    return num_pages_ - static_cast<std::int64_t>(free_.size());
  }
  std::int64_t num_pages() const { return num_pages_; }
  ProxyPolicy policy() const { return policy_; }

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

 private:
  struct Entry {
    server::PageKey key;
    bool in_quota = false;  // kAdaptivePrefix: on the protected chain
    Entry* lru_prev = nullptr;
    Entry* lru_next = nullptr;
  };

  // Whether (video, block) falls inside the video's current quota.
  bool InQuota(const server::PageKey& key) const {
    return quotas_valid_ && key.block < quota_[key.video];
  }
  // Links `entry` at the MRU end of the chain its policy assigns.
  void AppendFor(Entry* entry);
  // Unlinks `entry` from whichever chain holds it.
  void RemoveFor(Entry* entry);
  // Evicts the policy's victim and returns its recycled entry.
  Entry* EvictOne();

  std::int64_t num_pages_;
  ProxyPolicy policy_;
  std::vector<std::int64_t> video_blocks_;

  // deque: stable addresses for the intrusive links.
  std::deque<Entry> slab_;
  std::vector<Entry*> free_;
  std::unordered_map<server::PageKey, Entry*, server::PageKeyHash> table_;

  // Popularity measurement (all policies; cumulative over the run).
  std::vector<std::uint64_t> refs_;

  // kLru: the single chain. kAdaptivePrefix reuses it as the
  // unprotected chain.
  server::IntrusiveChain<Entry> lru_;

  // kRankZipf: rank per video (0 = most popular), one LRU chain per
  // video, and the set of non-empty videos ordered by (rank, video) so
  // the worst-ranked cached video is O(log V) to find.
  std::vector<int> rank_;
  std::vector<server::IntrusiveChain<Entry>> video_chain_;
  std::set<std::pair<int, int>> nonempty_;

  // kAdaptivePrefix: per-video prefix quotas and the protected chain.
  // quotas_valid_ flips at the first Recompute(); until then every
  // entry is unprotected (plain LRU).
  bool quotas_valid_ = false;
  std::vector<std::int64_t> quota_;
  server::IntrusiveChain<Entry> protected_;

  Stats stats_;
};

}  // namespace spiffi::proxy

#endif  // SPIFFI_PROXY_PROXY_CACHE_H_
