// A proxy cache node: the middle tier between terminals and origin
// nodes.
//
// Terminals assigned to this proxy send every block request here
// instead of to the owning origin node. The proxy keeps a bounded
// membership cache of recently served blocks (proxy/proxy_cache.h):
//
//   hit      reply to the terminal immediately — the block is resident
//            at the proxy, so neither the origin node nor the backbone
//            between them is touched.
//   attach   a forward for the same block is already in flight to the
//            origin; the request joins its waiter list and is answered
//            by the same origin reply (the proxy-tier analogue of the
//            buffer pool's I/O attach).
//   miss     the request is forwarded to the origin located through the
//            tier router (first live copy, primary first — the same
//            failover order terminals use in the flat topology); the
//            reply fills the cache and fans out to every waiter.
//
// The proxy charges no CPU (like terminals, it is modelled as dedicated
// switching hardware per §5.1); its cost model is purely the extra wire
// hops, and its benefit is every origin round trip a hit avoids.
// Popularity-aware policies digest measured reference counts on a
// periodic recompute process. All state is per-proxy and message
// handling is single-threaded coroutine-free code, so runs are
// bit-identical at any --jobs N.

#ifndef SPIFFI_PROXY_PROXY_NODE_H_
#define SPIFFI_PROXY_PROXY_NODE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "fault/state.h"
#include "hw/network.h"
#include "layout/routing.h"
#include "mpeg/video.h"
#include "proxy/proxy_cache.h"
#include "server/message.h"
#include "server/server.h"
#include "sim/environment.h"
#include "sim/process.h"
#include "sim/stats.h"

namespace spiffi::proxy {

struct ProxyParams {
  int id = 0;
  std::int64_t cache_pages = 256;  // in stripe blocks
  ProxyPolicy policy = ProxyPolicy::kLru;
  double recompute_sec = 30.0;  // re-rank / re-quota period
  std::int64_t block_bytes = 512 * 1024;
  // Forward retry (0 = off). When on, each miss forward is covered by a
  // watchdog that re-forwards to the next live origin copy after a
  // timeout, with bounded exponential backoff between attempts.
  int retry_budget = 0;
  double retry_min_timeout_sec = 0.25;
  double retry_backoff_base_sec = 0.25;
};

class ProxyNode final : public server::MessageSink {
 public:
  struct Stats {
    std::uint64_t references = 0;  // terminal requests received
    std::uint64_t hits = 0;        // served from the proxy cache
    std::uint64_t attaches = 0;    // joined an in-flight forward
    std::uint64_t forwards = 0;    // misses forwarded to an origin node
    std::uint64_t bytes_from_cache = 0;  // payload bytes hits saved
    std::uint64_t forward_retries = 0;  // watchdog re-forwards
    std::uint64_t stale_replies = 0;    // late duplicates after a retry
    sim::Tally forward_latency;    // forward -> origin reply (seconds)
  };

  // `origin` (usually the VideoServer) resolves origin node sinks;
  // `fault` may be nullptr (forwards always target the primary copy).
  ProxyNode(sim::Environment* env, const ProxyParams& params,
            hw::Network* network, server::NodeDirectory* origin,
            const layout::TierRouter* router,
            const mpeg::VideoLibrary* library,
            const fault::FaultState* fault = nullptr);

  ProxyNode(const ProxyNode&) = delete;
  ProxyNode& operator=(const ProxyNode&) = delete;

  // Terminal requests and origin replies both arrive here.
  void OnMessage(const server::Message& message) override;

  int id() const { return params_.id; }
  ProxyCache& cache() { return cache_; }
  const ProxyCache& cache() const { return cache_; }
  const Stats& stats() const { return stats_; }
  // Popularity counts live in the cache and persist (measurement, not
  // windowed statistic); only the counters reset.
  void ResetStats();

 private:
  void HandleRequest(const server::Message& message);
  void HandleReply(const server::Message& message);
  // First live origin copy for the block (primary first), preferring a
  // node other than `avoid_node` so a retry lands on a fresh replica.
  int PickOriginNode(int terminal, int video, std::int64_t block,
                     int avoid_node) const;
  // Periodic popularity digestion for the rank/quota policies.
  sim::Process RecomputeLoop();
  // Re-forwards `key` while it stays pending, up to the retry budget.
  // `generation` pins the watchdog to the PendingForward it was spawned
  // for: if that forward resolves and the same key misses again before
  // the next wake, the stale watchdog exits instead of prematurely
  // retrying the new forward (which has a watchdog of its own).
  sim::Process ForwardWatchdog(server::PageKey key,
                               std::uint64_t generation);

  // One terminal waiting on an in-flight forward.
  struct Waiter {
    server::MessageSink* sink = nullptr;
    int terminal = -1;
    std::uint64_t cookie = 0;
  };
  struct PendingForward {
    sim::SimTime forward_time = 0.0;
    std::vector<Waiter> waiters;  // arrival order
    server::Message request;      // the forwarded message, for retries
    int last_node = -1;           // origin node of the latest attempt
    int attempts = 0;             // retries so far (first send is free)
    std::uint64_t generation = 0; // distinguishes re-misses of one key
  };

  sim::Environment* env_;
  ProxyParams params_;
  hw::Network* network_;
  server::NodeDirectory* origin_;
  const layout::TierRouter* router_;
  const fault::FaultState* fault_;

  ProxyCache cache_;
  std::unordered_map<server::PageKey, PendingForward, server::PageKeyHash>
      pending_;
  std::uint64_t forward_gen_ = 0;  // generation of the latest forward
  Stats stats_;
  std::int32_t trace_pid_;
};

}  // namespace spiffi::proxy

#endif  // SPIFFI_PROXY_PROXY_NODE_H_
