#include "proxy/proxy_cache.h"

#include <algorithm>
#include <numeric>

#include "sim/check.h"

namespace spiffi::proxy {

const char* ProxyPolicyName(ProxyPolicy policy) {
  switch (policy) {
    case ProxyPolicy::kLru: return "lru";
    case ProxyPolicy::kRankZipf: return "rank-zipf";
    case ProxyPolicy::kAdaptivePrefix: return "adaptive-prefix";
  }
  return "?";
}

ProxyCache::ProxyCache(std::int64_t num_pages, ProxyPolicy policy,
                       std::vector<std::int64_t> video_blocks)
    : num_pages_(num_pages),
      policy_(policy),
      video_blocks_(std::move(video_blocks)) {
  SPIFFI_CHECK(num_pages > 0);
  SPIFFI_CHECK(!video_blocks_.empty());
  const auto num_videos = video_blocks_.size();
  refs_.assign(num_videos, 0);
  quota_.assign(num_videos, 0);
  // Before any measurement the rank is the library order: under a Zipf
  // library, video 0 is the a-priori most popular.
  rank_.resize(num_videos);
  std::iota(rank_.begin(), rank_.end(), 0);
  if (policy_ == ProxyPolicy::kRankZipf) {
    video_chain_.resize(num_videos);
  }
  free_.reserve(static_cast<std::size_t>(num_pages));
  for (std::int64_t i = 0; i < num_pages; ++i) {
    free_.push_back(&slab_.emplace_back());
  }
  table_.reserve(static_cast<std::size_t>(num_pages) * 2);
}

bool ProxyCache::Contains(int video, std::int64_t block) const {
  return table_.find(server::PageKey{video, block}) != table_.end();
}

void ProxyCache::RecordReference(int video) { ++refs_[video]; }

void ProxyCache::AppendFor(Entry* entry) {
  switch (policy_) {
    case ProxyPolicy::kLru:
      lru_.Append(entry);
      break;
    case ProxyPolicy::kRankZipf: {
      auto& chain = video_chain_[entry->key.video];
      if (chain.empty()) {
        nonempty_.insert({rank_[entry->key.video], entry->key.video});
      }
      chain.Append(entry);
      break;
    }
    case ProxyPolicy::kAdaptivePrefix:
      entry->in_quota = InQuota(entry->key);
      (entry->in_quota ? protected_ : lru_).Append(entry);
      break;
  }
}

void ProxyCache::RemoveFor(Entry* entry) {
  switch (policy_) {
    case ProxyPolicy::kLru:
      lru_.Remove(entry);
      break;
    case ProxyPolicy::kRankZipf: {
      auto& chain = video_chain_[entry->key.video];
      chain.Remove(entry);
      if (chain.empty()) {
        nonempty_.erase({rank_[entry->key.video], entry->key.video});
      }
      break;
    }
    case ProxyPolicy::kAdaptivePrefix:
      (entry->in_quota ? protected_ : lru_).Remove(entry);
      break;
  }
}

void ProxyCache::Touch(int video, std::int64_t block) {
  auto it = table_.find(server::PageKey{video, block});
  SPIFFI_DCHECK(it != table_.end());
  Entry* entry = it->second;
  RemoveFor(entry);
  AppendFor(entry);
}

ProxyCache::Entry* ProxyCache::EvictOne() {
  Entry* victim = nullptr;
  switch (policy_) {
    case ProxyPolicy::kLru:
      victim = lru_.head();
      break;
    case ProxyPolicy::kRankZipf: {
      // The worst-ranked (least popular) video currently in cache gives
      // up its least-recently-used block.
      SPIFFI_DCHECK(!nonempty_.empty());
      victim = video_chain_[std::prev(nonempty_.end())->second].head();
      break;
    }
    case ProxyPolicy::kAdaptivePrefix:
      victim = lru_.empty() ? protected_.head() : lru_.head();
      break;
  }
  SPIFFI_CHECK(victim != nullptr);
  RemoveFor(victim);
  table_.erase(victim->key);
  ++stats_.evictions;
  return victim;
}

void ProxyCache::Insert(int video, std::int64_t block) {
  server::PageKey key{video, block};
  if (table_.find(key) != table_.end()) return;
  Entry* entry;
  if (!free_.empty()) {
    entry = free_.back();
    free_.pop_back();
  } else {
    entry = EvictOne();
  }
  entry->key = key;
  table_.emplace(key, entry);
  ++stats_.inserts;
  AppendFor(entry);
}

void ProxyCache::Recompute() {
  switch (policy_) {
    case ProxyPolicy::kLru:
      return;
    case ProxyPolicy::kRankZipf: {
      // Sort videos by measured references, descending; ties break by
      // id (the a-priori order) so the ranking is deterministic.
      std::vector<int> order(refs_.size());
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [this](int a, int b) {
        if (refs_[a] != refs_[b]) return refs_[a] > refs_[b];
        return a < b;
      });
      for (std::size_t pos = 0; pos < order.size(); ++pos) {
        rank_[order[pos]] = static_cast<int>(pos);
      }
      nonempty_.clear();
      for (std::size_t v = 0; v < video_chain_.size(); ++v) {
        if (!video_chain_[v].empty()) {
          nonempty_.insert({rank_[v], static_cast<int>(v)});
        }
      }
      return;
    }
    case ProxyPolicy::kAdaptivePrefix: {
      std::uint64_t total = 0;
      for (std::uint64_t r : refs_) total += r;
      if (total == 0) return;  // nothing measured yet: stay plain LRU
      // Quota proportional to the video's reference share, clamped to
      // its length (integer arithmetic: refs * pages fits u64 by far).
      for (std::size_t v = 0; v < refs_.size(); ++v) {
        auto share = static_cast<std::int64_t>(
            refs_[v] * static_cast<std::uint64_t>(num_pages_) / total);
        quota_[v] = std::min(share, video_blocks_[v]);
      }
      quotas_valid_ = true;
      // Reclassify resident entries against the new quotas. Demotions
      // first; the promotion walk then skips them (still out of quota).
      for (Entry* e = protected_.head(); e != nullptr;) {
        Entry* next = e->lru_next;
        if (!InQuota(e->key)) {
          protected_.Remove(e);
          e->in_quota = false;
          lru_.Append(e);
        }
        e = next;
      }
      for (Entry* e = lru_.head(); e != nullptr;) {
        Entry* next = e->lru_next;
        if (InQuota(e->key)) {
          lru_.Remove(e);
          e->in_quota = true;
          protected_.Append(e);
        }
        e = next;
      }
      return;
    }
  }
}

}  // namespace spiffi::proxy
