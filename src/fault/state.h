// Live fault state of the cluster, shared read-mostly by the server and
// client layers.
//
// The FaultInjector writes transitions here; everything on the read
// path (terminal routing, Node degraded reads, prefetch admission) asks
// LocationUp() before touching a disk. The state also keeps the
// availability accounting — outage counts, component downtime, and the
// repair durations behind the MTTR metric — scoped to the measurement
// window via ResetStats(), mirroring how sim::Utilization windows are
// reset.

#ifndef SPIFFI_FAULT_STATE_H_
#define SPIFFI_FAULT_STATE_H_

#include <cstdint>
#include <vector>

#include "layout/layout.h"

namespace spiffi::fault {

class FaultState {
 public:
  FaultState(int num_nodes, int disks_per_node);

  int num_nodes() const { return num_nodes_; }
  int disks_per_node() const { return disks_per_node_; }
  int total_disks() const { return num_nodes_ * disks_per_node_; }

  bool node_up(int node) const { return node_up_[node] != 0; }
  // The disk itself (a disk on a crashed node may report up here).
  bool disk_up(int disk_global) const { return disk_up_[disk_global] != 0; }
  // Can this location serve a read right now?
  bool LocationUp(const layout::BlockLocation& loc) const {
    return node_up_[loc.node] != 0 && disk_up_[loc.disk_global] != 0;
  }
  // Service-time multiplier for a limping disk (1.0 when healthy).
  double disk_slow_factor(int disk_global) const {
    return disk_slow_[disk_global];
  }

  // When the component went down (meaningless while it is up).
  double disk_down_since(int disk_global) const {
    return disk_down_since_[disk_global];
  }
  double node_down_since(int node) const { return node_down_since_[node]; }

  // Transitions. Idempotent: return false (and change nothing) when the
  // component is already in the requested state, so scripted and
  // stochastic faults can overlap safely.
  bool FailDisk(int disk_global, double now);
  bool RecoverDisk(int disk_global, double now);
  bool FailNode(int node, double now);
  bool RecoverNode(int node, double now);
  bool BeginLimp(int disk_global, double factor, double now);
  bool EndLimp(int disk_global, double now);

  // --- Post-repair rebuild phase (ISSUE 9) ---
  //
  // A repaired disk may enter a `rebuilding` phase while a throttled
  // rebuild process re-reads its stripe regions from replica peers. The
  // disk serves reads normally while rebuilding (it is up); the phase
  // exists so MTTR-style accounting can separate "back up" from "fully
  // restored" and so admission control can discount the rebuild load.
  // BeginRebuild is idempotent like the other transitions; EndRebuild
  // closes the window, charging its duration and the bytes re-read, and
  // counts a completed rebuild only when `completed` is true (a rebuild
  // aborted by a re-failure closes without counting).
  bool BeginRebuild(int disk_global, double now);
  bool EndRebuild(int disk_global, double now, std::uint64_t bytes,
                  bool completed);
  bool disk_rebuilding(int disk_global) const {
    return disk_rebuilding_[disk_global] != 0;
  }
  int disks_rebuilding() const;

  struct Stats {
    std::uint64_t faults_injected = 0;    // disk + node fail transitions
    std::uint64_t repairs_completed = 0;  // disk + node recoveries
    std::uint64_t limp_episodes = 0;
    // Component-seconds spent down; closed outages plus, via StatsAt(),
    // the open ones measured up to the query time.
    double downtime_sec = 0.0;
    // Summed duration of completed repairs; MTTR = this / repairs.
    double repair_total_sec = 0.0;
    // Rebuild accounting: full resyncs completed, disk-seconds spent in
    // the rebuilding phase (open windows included via StatsAt), and
    // replica bytes re-read.
    std::uint64_t rebuilds_completed = 0;
    double rebuild_sec = 0.0;
    std::uint64_t rebuild_bytes = 0;
  };

  // Counters with still-open outages charged up to `now`.
  Stats StatsAt(double now) const;
  // Mean time to repair over completed repairs (0 when none completed).
  double MttrSec() const;

  // Starts a fresh accounting window: zeroes the counters and re-bases
  // the outage clocks of currently-down components to `now`, so
  // pre-window downtime is not charged to the window.
  void ResetStats(double now);

 private:
  int num_nodes_;
  int disks_per_node_;
  std::vector<char> node_up_;
  std::vector<char> disk_up_;
  std::vector<double> node_down_since_;
  std::vector<double> disk_down_since_;
  std::vector<double> disk_slow_;
  std::vector<char> disk_rebuilding_;
  std::vector<double> rebuild_since_;
  Stats stats_;
};

}  // namespace spiffi::fault

#endif  // SPIFFI_FAULT_STATE_H_
