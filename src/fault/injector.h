// Deterministic fault injector.
//
// A FaultInjector interprets a FaultPlan against one simulation
// Environment: scripted actions are scheduled at their absolute times,
// and each component with a stochastic fault process (disk failures,
// node crashes, limp episodes) cycles fail -> repair -> fail with
// exponential times drawn from its own child RNG stream. Per-component
// streams mean adding a disk or raising --jobs never perturbs another
// component's fault times, so a FaultPlan replays bit-identically at
// any parallelism.
//
// The injector only flips FaultState and emits fault-track trace
// events; the physical consequences (pausing hw::Disk service, scaling
// service times) are applied by the effect handler the simulation
// installs, which keeps fault/ free of server dependencies.

#ifndef SPIFFI_FAULT_INJECTOR_H_
#define SPIFFI_FAULT_INJECTOR_H_

#include <functional>
#include <vector>

#include "fault/plan.h"
#include "fault/state.h"
#include "sim/environment.h"
#include "sim/random.h"

namespace spiffi::fault {

// One applied (or attempted) transition, as seen by the effect handler.
struct FaultEvent {
  FaultKind kind = FaultKind::kDiskFail;
  int target = 0;
  double factor = 1.0;
  double time = 0.0;
  // False when the component was already in the requested state (e.g. a
  // stochastic failure hitting a scripted outage); no state changed.
  bool applied = false;
};

class FaultInjector final : public sim::EventHandler {
 public:
  using EffectHandler = std::function<void(const FaultEvent&)>;

  // `rng` should be a dedicated child stream of the run's master seed.
  FaultInjector(sim::Environment* env, const FaultPlan& plan,
                FaultState* state, sim::Rng rng);

  // Invoked after every transition attempt (applied or not), with the
  // FaultState already updated.
  void set_effect_handler(EffectHandler handler) {
    effect_handler_ = std::move(handler);
  }

  // Schedules the scripted actions and the first stochastic episodes.
  // Call exactly once, before the environment runs.
  void Start();

  void OnEvent(std::uint64_t token) override;

  std::uint64_t events_fired() const { return events_fired_; }

 private:
  void Fire(FaultKind kind, int target, double factor);
  void TraceEventMark(FaultKind kind, int target, double factor,
                      bool applied, double since);

  sim::Environment* env_;
  FaultPlan plan_;
  FaultState* state_;
  sim::Rng rng_;
  EffectHandler effect_handler_;
  std::uint64_t events_fired_ = 0;

  // One independent stream per component and process.
  std::vector<sim::Rng> disk_rng_;
  std::vector<sim::Rng> node_rng_;
  std::vector<sim::Rng> limp_rng_;
  // Limp episode start times, for the trace span at episode end.
  std::vector<double> limp_since_;
};

}  // namespace spiffi::fault

#endif  // SPIFFI_FAULT_INJECTOR_H_
