#include "fault/injector.h"

#include <algorithm>
#include <utility>

#include "obs/trace.h"
#include "sim/check.h"

namespace spiffi::fault {
namespace {

// Calendar token layout: op code in the high bits, target (or script
// index) in the low 32.
enum TokenOp : std::uint64_t {
  kScripted = 0,
  kStochDiskFail = 1,
  kStochDiskRecover = 2,
  kStochNodeFail = 3,
  kStochNodeRecover = 4,
  kStochLimpBegin = 5,
  kStochLimpEnd = 6,
};

constexpr std::uint64_t MakeToken(TokenOp op, std::uint64_t index) {
  return (static_cast<std::uint64_t>(op) << 32) | index;
}

// Child-stream namespaces within the injector's RNG. Disjoint from each
// other for any realistic component count.
constexpr std::uint64_t kDiskStreamBase = 0x10000;
constexpr std::uint64_t kNodeStreamBase = 0x20000;
constexpr std::uint64_t kLimpStreamBase = 0x30000;

}  // namespace

FaultInjector::FaultInjector(sim::Environment* env, const FaultPlan& plan,
                             FaultState* state, sim::Rng rng)
    : env_(env), plan_(plan), state_(state), rng_(rng) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(state != nullptr);
}

void FaultInjector::Start() {
  for (std::size_t i = 0; i < plan_.script.size(); ++i) {
    env_->Schedule(std::max(plan_.script[i].time, env_->now()), this,
                   MakeToken(kScripted, i));
  }
  int disks = state_->total_disks();
  int nodes = state_->num_nodes();
  if (plan_.disk_mtbf_sec > 0.0) {
    disk_rng_.reserve(static_cast<std::size_t>(disks));
    for (int d = 0; d < disks; ++d) {
      disk_rng_.push_back(rng_.Child(kDiskStreamBase + d));
      env_->ScheduleAfter(disk_rng_[d].Exponential(plan_.disk_mtbf_sec),
                          this, MakeToken(kStochDiskFail, d));
    }
  }
  if (plan_.node_mtbf_sec > 0.0) {
    node_rng_.reserve(static_cast<std::size_t>(nodes));
    for (int n = 0; n < nodes; ++n) {
      node_rng_.push_back(rng_.Child(kNodeStreamBase + n));
      env_->ScheduleAfter(node_rng_[n].Exponential(plan_.node_mtbf_sec),
                          this, MakeToken(kStochNodeFail, n));
    }
  }
  if (plan_.limp_mtbf_sec > 0.0) {
    limp_rng_.reserve(static_cast<std::size_t>(disks));
    for (int d = 0; d < disks; ++d) {
      limp_rng_.push_back(rng_.Child(kLimpStreamBase + d));
      env_->ScheduleAfter(limp_rng_[d].Exponential(plan_.limp_mtbf_sec),
                          this, MakeToken(kStochLimpBegin, d));
    }
  }
  limp_since_.assign(static_cast<std::size_t>(disks), 0.0);
}

void FaultInjector::OnEvent(std::uint64_t token) {
  TokenOp op = static_cast<TokenOp>(token >> 32);
  int index = static_cast<int>(token & 0xffffffffULL);
  switch (op) {
    case kScripted: {
      const FaultAction& action =
          plan_.script[static_cast<std::size_t>(index)];
      Fire(action.kind, action.target, action.factor);
      break;
    }
    case kStochDiskFail:
      Fire(FaultKind::kDiskFail, index, 1.0);
      env_->ScheduleAfter(
          disk_rng_[index].Exponential(plan_.disk_repair_mean_sec), this,
          MakeToken(kStochDiskRecover, index));
      break;
    case kStochDiskRecover:
      Fire(FaultKind::kDiskRecover, index, 1.0);
      env_->ScheduleAfter(
          disk_rng_[index].Exponential(plan_.disk_mtbf_sec), this,
          MakeToken(kStochDiskFail, index));
      break;
    case kStochNodeFail:
      Fire(FaultKind::kNodeFail, index, 1.0);
      env_->ScheduleAfter(
          node_rng_[index].Exponential(plan_.node_repair_mean_sec), this,
          MakeToken(kStochNodeRecover, index));
      break;
    case kStochNodeRecover:
      Fire(FaultKind::kNodeRecover, index, 1.0);
      env_->ScheduleAfter(
          node_rng_[index].Exponential(plan_.node_mtbf_sec), this,
          MakeToken(kStochNodeFail, index));
      break;
    case kStochLimpBegin:
      Fire(FaultKind::kDiskLimpBegin, index, plan_.limp_factor);
      env_->ScheduleAfter(
          limp_rng_[index].Exponential(plan_.limp_duration_mean_sec), this,
          MakeToken(kStochLimpEnd, index));
      break;
    case kStochLimpEnd:
      Fire(FaultKind::kDiskLimpEnd, index, 1.0);
      env_->ScheduleAfter(
          limp_rng_[index].Exponential(plan_.limp_mtbf_sec), this,
          MakeToken(kStochLimpBegin, index));
      break;
  }
}

void FaultInjector::Fire(FaultKind kind, int target, double factor) {
  double now = env_->now();
  bool applied = false;
  // Interval start for the span emitted when an outage/episode closes;
  // must be read before the transition overwrites it.
  double since = now;
  switch (kind) {
    case FaultKind::kDiskFail:
      applied = state_->FailDisk(target, now);
      break;
    case FaultKind::kDiskRecover:
      since = state_->disk_down_since(target);
      applied = state_->RecoverDisk(target, now);
      break;
    case FaultKind::kNodeFail:
      applied = state_->FailNode(target, now);
      break;
    case FaultKind::kNodeRecover:
      since = state_->node_down_since(target);
      applied = state_->RecoverNode(target, now);
      break;
    case FaultKind::kDiskLimpBegin:
      applied = state_->BeginLimp(target, factor, now);
      if (applied) limp_since_[target] = now;
      break;
    case FaultKind::kDiskLimpEnd:
      since = limp_since_[target];
      applied = state_->EndLimp(target, now);
      break;
  }
  ++events_fired_;
  TraceEventMark(kind, target, factor, applied, since);
  if (effect_handler_) {
    FaultEvent event;
    event.kind = kind;
    event.target = target;
    event.factor = factor;
    event.time = now;
    event.applied = applied;
    effect_handler_(event);
  }
}

void FaultInjector::TraceEventMark(FaultKind kind, int target,
                                   double factor, bool applied,
                                   double since) {
#if SPIFFI_TRACING
  if (env_->tracer() == nullptr) return;
  // Track convention: tid = global disk id for disk events, tid =
  // total_disks + node for node events, so every component gets its own
  // row on the fault track.
  int disks_per_node = state_->disks_per_node();
  switch (kind) {
    case FaultKind::kDiskFail:
    case FaultKind::kDiskRecover:
    case FaultKind::kDiskLimpEnd:
      obs::TraceInstant(
          env_, obs::TraceCategory::kFault, FaultKindName(kind),
          obs::Tracer::kFaultPid, target,
          {{"disk", static_cast<double>(target)},
           {"node", static_cast<double>(target / disks_per_node)}});
      break;
    case FaultKind::kDiskLimpBegin:
      obs::TraceInstant(env_, obs::TraceCategory::kFault,
                        FaultKindName(kind), obs::Tracer::kFaultPid, target,
                        {{"disk", static_cast<double>(target)},
                         {"factor", factor}});
      break;
    case FaultKind::kNodeFail:
    case FaultKind::kNodeRecover:
      obs::TraceInstant(env_, obs::TraceCategory::kFault,
                        FaultKindName(kind), obs::Tracer::kFaultPid,
                        state_->total_disks() + target,
                        {{"node", static_cast<double>(target)}});
      break;
  }
  if (!applied) return;
  // Closed outages and limp episodes also export as spans so the down
  // interval is visible as a block on the fault track.
  switch (kind) {
    case FaultKind::kDiskRecover:
      obs::TraceSpan(env_, obs::TraceCategory::kFault, "disk_down",
                     obs::Tracer::kFaultPid, target, since,
                     {{"disk", static_cast<double>(target)}});
      break;
    case FaultKind::kNodeRecover:
      obs::TraceSpan(env_, obs::TraceCategory::kFault, "node_down",
                     obs::Tracer::kFaultPid,
                     state_->total_disks() + target, since,
                     {{"node", static_cast<double>(target)}});
      break;
    case FaultKind::kDiskLimpEnd:
      obs::TraceSpan(env_, obs::TraceCategory::kFault, "disk_limp",
                     obs::Tracer::kFaultPid, target, since,
                     {{"disk", static_cast<double>(target)}});
      break;
    default:
      break;
  }
#else
  (void)kind;
  (void)target;
  (void)factor;
  (void)applied;
  (void)since;
#endif
}

}  // namespace spiffi::fault
