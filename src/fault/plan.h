// Fault scenario configuration.
//
// A FaultPlan describes what goes wrong during a run: a deterministic
// script of timed actions (disk fail/recover, node crash/restart,
// slow-disk "limp" episodes) plus optional stochastic fault processes
// whose inter-arrival and repair times are exponential. The plan is
// plain data — it lives inside vod::SimConfig so the parallel runner
// can replicate fault scenarios across seeds — and is interpreted by
// fault::FaultInjector. An empty plan (the default) disables the fault
// subsystem entirely; runs are then bit-identical to a build without
// it.

#ifndef SPIFFI_FAULT_PLAN_H_
#define SPIFFI_FAULT_PLAN_H_

#include <string>
#include <vector>

namespace spiffi::fault {

enum class FaultKind {
  kDiskFail,       // target = global disk id
  kDiskRecover,    // target = global disk id
  kNodeFail,       // target = node id (pauses every disk on the node)
  kNodeRecover,    // target = node id
  kDiskLimpBegin,  // target = global disk id; factor = service-time scale
  kDiskLimpEnd,    // target = global disk id
};

const char* FaultKindName(FaultKind kind);

// One scripted transition at an absolute simulated time.
struct FaultAction {
  double time = 0.0;
  FaultKind kind = FaultKind::kDiskFail;
  int target = 0;
  double factor = 1.0;  // kDiskLimpBegin only: service-time multiplier
};

struct FaultPlan {
  std::vector<FaultAction> script;

  // Stochastic fault processes, all disabled at 0. MTBF values are per
  // component (each disk / node draws from its own stream, so adding a
  // disk never perturbs another disk's fault times).
  double disk_mtbf_sec = 0.0;
  double disk_repair_mean_sec = 60.0;
  double node_mtbf_sec = 0.0;
  double node_repair_mean_sec = 120.0;
  double limp_mtbf_sec = 0.0;
  double limp_duration_mean_sec = 30.0;
  double limp_factor = 4.0;

  // Degraded-read tuning consumed by server::Node. A request whose
  // local copy is down is forwarded to a surviving replica at most
  // `reroute_hop_budget` times; with no live replica it re-checks for
  // recovery every `recheck_sec` (sooner when its deadline is nearer).
  int reroute_hop_budget = 2;
  double recheck_sec = 0.25;

  // True if the plan injects any fault at all; when false the
  // simulation builds no fault state and the run is untouched.
  bool enabled() const {
    return !script.empty() || disk_mtbf_sec > 0.0 || node_mtbf_sec > 0.0 ||
           limp_mtbf_sec > 0.0;
  }

  // Empty string if valid, else a description of the first problem.
  // Targets are checked against the given topology.
  std::string Validate(int num_nodes, int total_disks) const;

  // One-line human summary ("2 scripted actions, disk MTBF 300s, ...").
  std::string Describe() const;
};

}  // namespace spiffi::fault

#endif  // SPIFFI_FAULT_PLAN_H_
