#include "fault/plan.h"

#include <sstream>

namespace spiffi::fault {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskFail: return "disk_fail";
    case FaultKind::kDiskRecover: return "disk_recover";
    case FaultKind::kNodeFail: return "node_fail";
    case FaultKind::kNodeRecover: return "node_recover";
    case FaultKind::kDiskLimpBegin: return "disk_limp_begin";
    case FaultKind::kDiskLimpEnd: return "disk_limp_end";
  }
  return "unknown";
}

namespace {

bool TargetsDisk(FaultKind kind) {
  return kind == FaultKind::kDiskFail || kind == FaultKind::kDiskRecover ||
         kind == FaultKind::kDiskLimpBegin ||
         kind == FaultKind::kDiskLimpEnd;
}

}  // namespace

std::string FaultPlan::Validate(int num_nodes, int total_disks) const {
  for (std::size_t i = 0; i < script.size(); ++i) {
    const FaultAction& action = script[i];
    std::ostringstream where;
    where << "fault_plan.script[" << i << "]: ";
    if (action.time < 0.0) {
      return where.str() + "time must be >= 0";
    }
    int limit = TargetsDisk(action.kind) ? total_disks : num_nodes;
    if (action.target < 0 || action.target >= limit) {
      std::ostringstream out;
      out << where.str() << "target " << action.target << " out of range [0, "
          << limit << ")";
      return out.str();
    }
    if (action.kind == FaultKind::kDiskLimpBegin && action.factor < 1.0) {
      return where.str() + "limp factor must be >= 1";
    }
  }
  if (disk_mtbf_sec < 0.0 || node_mtbf_sec < 0.0 || limp_mtbf_sec < 0.0) {
    return "fault_plan: MTBF values must be >= 0";
  }
  if (disk_mtbf_sec > 0.0 && disk_repair_mean_sec <= 0.0) {
    return "fault_plan: disk_repair_mean_sec must be > 0";
  }
  if (node_mtbf_sec > 0.0 && node_repair_mean_sec <= 0.0) {
    return "fault_plan: node_repair_mean_sec must be > 0";
  }
  if (limp_mtbf_sec > 0.0) {
    if (limp_duration_mean_sec <= 0.0) {
      return "fault_plan: limp_duration_mean_sec must be > 0";
    }
    if (limp_factor < 1.0) {
      return "fault_plan: limp_factor must be >= 1";
    }
  }
  if (reroute_hop_budget < 0) {
    return "fault_plan: reroute_hop_budget must be >= 0";
  }
  if (recheck_sec <= 0.0) {
    return "fault_plan: recheck_sec must be > 0";
  }
  return "";
}

std::string FaultPlan::Describe() const {
  if (!enabled()) return "none";
  std::ostringstream out;
  bool first = true;
  auto sep = [&]() {
    if (!first) out << ", ";
    first = false;
  };
  if (!script.empty()) {
    sep();
    out << script.size() << " scripted action"
        << (script.size() == 1 ? "" : "s");
  }
  if (disk_mtbf_sec > 0.0) {
    sep();
    out << "disk MTBF " << disk_mtbf_sec << "s/repair "
        << disk_repair_mean_sec << "s";
  }
  if (node_mtbf_sec > 0.0) {
    sep();
    out << "node MTBF " << node_mtbf_sec << "s/repair "
        << node_repair_mean_sec << "s";
  }
  if (limp_mtbf_sec > 0.0) {
    sep();
    out << "limp MTBF " << limp_mtbf_sec << "s x" << limp_factor;
  }
  return out.str();
}

}  // namespace spiffi::fault
