#include "fault/state.h"

#include "sim/check.h"

namespace spiffi::fault {

FaultState::FaultState(int num_nodes, int disks_per_node)
    : num_nodes_(num_nodes), disks_per_node_(disks_per_node) {
  SPIFFI_CHECK(num_nodes > 0);
  SPIFFI_CHECK(disks_per_node > 0);
  node_up_.assign(static_cast<std::size_t>(num_nodes), 1);
  disk_up_.assign(static_cast<std::size_t>(total_disks()), 1);
  node_down_since_.assign(static_cast<std::size_t>(num_nodes), 0.0);
  disk_down_since_.assign(static_cast<std::size_t>(total_disks()), 0.0);
  disk_slow_.assign(static_cast<std::size_t>(total_disks()), 1.0);
  disk_rebuilding_.assign(static_cast<std::size_t>(total_disks()), 0);
  rebuild_since_.assign(static_cast<std::size_t>(total_disks()), 0.0);
}

bool FaultState::FailDisk(int disk_global, double now) {
  SPIFFI_CHECK(disk_global >= 0 && disk_global < total_disks());
  if (disk_up_[disk_global] == 0) return false;
  disk_up_[disk_global] = 0;
  disk_down_since_[disk_global] = now;
  ++stats_.faults_injected;
  return true;
}

bool FaultState::RecoverDisk(int disk_global, double now) {
  SPIFFI_CHECK(disk_global >= 0 && disk_global < total_disks());
  if (disk_up_[disk_global] != 0) return false;
  disk_up_[disk_global] = 1;
  double duration = now - disk_down_since_[disk_global];
  stats_.downtime_sec += duration;
  stats_.repair_total_sec += duration;
  ++stats_.repairs_completed;
  return true;
}

bool FaultState::FailNode(int node, double now) {
  SPIFFI_CHECK(node >= 0 && node < num_nodes_);
  if (node_up_[node] == 0) return false;
  node_up_[node] = 0;
  node_down_since_[node] = now;
  ++stats_.faults_injected;
  return true;
}

bool FaultState::RecoverNode(int node, double now) {
  SPIFFI_CHECK(node >= 0 && node < num_nodes_);
  if (node_up_[node] != 0) return false;
  node_up_[node] = 1;
  double duration = now - node_down_since_[node];
  stats_.downtime_sec += duration;
  stats_.repair_total_sec += duration;
  ++stats_.repairs_completed;
  return true;
}

bool FaultState::BeginLimp(int disk_global, double factor, double now) {
  SPIFFI_CHECK(disk_global >= 0 && disk_global < total_disks());
  SPIFFI_CHECK(factor >= 1.0);
  (void)now;
  if (disk_slow_[disk_global] != 1.0) return false;
  disk_slow_[disk_global] = factor;
  ++stats_.limp_episodes;
  return true;
}

bool FaultState::EndLimp(int disk_global, double now) {
  SPIFFI_CHECK(disk_global >= 0 && disk_global < total_disks());
  (void)now;
  if (disk_slow_[disk_global] == 1.0) return false;
  disk_slow_[disk_global] = 1.0;
  return true;
}

bool FaultState::BeginRebuild(int disk_global, double now) {
  SPIFFI_CHECK(disk_global >= 0 && disk_global < total_disks());
  if (disk_rebuilding_[disk_global] != 0) return false;
  disk_rebuilding_[disk_global] = 1;
  rebuild_since_[disk_global] = now;
  return true;
}

bool FaultState::EndRebuild(int disk_global, double now,
                            std::uint64_t bytes, bool completed) {
  SPIFFI_CHECK(disk_global >= 0 && disk_global < total_disks());
  if (disk_rebuilding_[disk_global] == 0) return false;
  disk_rebuilding_[disk_global] = 0;
  stats_.rebuild_sec += now - rebuild_since_[disk_global];
  stats_.rebuild_bytes += bytes;
  if (completed) ++stats_.rebuilds_completed;
  return true;
}

int FaultState::disks_rebuilding() const {
  int count = 0;
  for (char flag : disk_rebuilding_) count += flag != 0;
  return count;
}

FaultState::Stats FaultState::StatsAt(double now) const {
  Stats stats = stats_;
  for (int d = 0; d < total_disks(); ++d) {
    if (disk_up_[d] == 0) stats.downtime_sec += now - disk_down_since_[d];
    if (disk_rebuilding_[d] != 0) {
      stats.rebuild_sec += now - rebuild_since_[d];
    }
  }
  for (int n = 0; n < num_nodes_; ++n) {
    if (node_up_[n] == 0) stats.downtime_sec += now - node_down_since_[n];
  }
  return stats;
}

double FaultState::MttrSec() const {
  if (stats_.repairs_completed == 0) return 0.0;
  return stats_.repair_total_sec /
         static_cast<double>(stats_.repairs_completed);
}

void FaultState::ResetStats(double now) {
  stats_ = Stats{};
  for (int d = 0; d < total_disks(); ++d) {
    if (disk_up_[d] == 0) disk_down_since_[d] = now;
    if (disk_rebuilding_[d] != 0) rebuild_since_[d] = now;
  }
  for (int n = 0; n < num_nodes_; ++n) {
    if (node_up_[n] == 0) node_down_since_[n] = now;
  }
}

}  // namespace spiffi::fault
