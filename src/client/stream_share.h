// Stream sharing between terminals watching the same movie.
//
// Generalizes the paper's §8.2 piggybacking stub into a service tier
// with three cooperating mechanisms:
//
//  * Batching: when a terminal asks to start a video, the manager may
//    delay the start by up to `window_sec` (the subscriber watches
//    commercials). Other terminals requesting the same video before the
//    delayed start join the group as followers: they are fed from the
//    leader's stream and place no load of their own on the server.
//
//  * Patching: a terminal arriving up to `patch_window_sec` AFTER the
//    group's stream has started joins anyway. It starts displaying
//    immediately, fetching only the prefix it missed over a short
//    unicast catch-up stream; once its display reaches the join offset
//    the unicast stream ends and the terminal rides the shared stream
//    (buffering it from the join point on). Its display timeline stays
//    shifted by the join offset, so it finishes that much later than
//    the group.
//
//  * Leader handoff: a group records its members in join order. When
//    the leader departs (pause, jump, visual search), leadership passes
//    deterministically to the first exact-mirror follower, which starts
//    a real stream at the current group position; the rest of the group
//    keeps following. With no mirror left the group disbands and every
//    remaining member converts to a private stream at its own position.
//
// Groups carry deterministic ids (a per-manager counter), so shared
// runs replay bit-identically at any worker count. One group per video
// is tracked — the latest; a still-streaming group displaced by a newer
// one simply finishes without handoff coverage (its followers complete
// on schedule), which only forgoes some promotion load.
//
// Simplification vs. a real implementation: followers mirror the shared
// display exactly and are assumed glitch-free whenever the leader is —
// their bytes travel the network bus, whose bandwidth the paper
// declares unlimited. A patcher's post-sync buffering of the shared
// stream (up to patch_window_sec of video) is likewise not charged
// against its terminal memory.

#ifndef SPIFFI_CLIENT_STREAM_SHARE_H_
#define SPIFFI_CLIENT_STREAM_SHARE_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/environment.h"

namespace spiffi::client {

// Callback surface a terminal registers when joining a group. Calls
// arrive synchronously from inside the departing leader's event.
class StreamShareMember {
 public:
  virtual ~StreamShareMember() = default;
  // This member is now the group's leader: start a real stream at the
  // group's current position and keep serving the remaining followers.
  virtual void OnPromotedToLeader(int video) = 0;
  // The group lost its stream with no mirror to promote: continue as a
  // private stream from the member's own position.
  virtual void OnShareGroupDisbanded(int video) = 0;
};

class StreamShareManager {
 public:
  enum class Role { kLeader, kFollower, kPatcher };

  struct Arrangement {
    Role role = Role::kLeader;
    sim::SimTime start_time = 0.0;  // when the SHARED display begins
    std::uint64_t group_id = 0;     // 0 when batching is disabled
    double patch_seconds = 0.0;     // patcher: prefix length to unicast
  };

  struct Stats {
    std::uint64_t groups_formed = 0;
    std::uint64_t followers_attached = 0;
    std::uint64_t patchers_attached = 0;
    double patch_seconds_total = 0.0;  // sum of unicast prefix lengths
    std::uint64_t leader_handoffs = 0;
    std::uint64_t groups_disbanded = 0;
    std::uint64_t groups_pruned = 0;
  };

  // `window_sec` == 0 disables batching (every caller leads
  // immediately); `patch_window_sec` == 0 disables patching. With
  // batching off but patching on, groups still form — they just start
  // with no delay.
  StreamShareManager(sim::Environment* env, double window_sec,
                     double patch_window_sec = 0.0)
      : env_(env),
        window_sec_(window_sec),
        patch_window_sec_(patch_window_sec) {}

  // Called by a terminal that wants to start `video` now. The full form
  // registers the caller for handoff; `duration_sec` bounds the group's
  // lifetime (and the patch-join horizon). The anonymous form keeps the
  // legacy piggyback semantics: no membership, no handoff.
  Arrangement Arrange(int video) { return Arrange(video, -1, 0.0, nullptr); }
  Arrangement Arrange(int video, int terminal, double duration_sec,
                      StreamShareMember* member);

  // The leader of (`video`, `group_id`) is abandoning the shared
  // stream: promote the first exact-mirror follower, or disband. A
  // stale group id (group already displaced or pruned) is a no-op.
  void LeaderDeparting(int video, std::uint64_t group_id, int terminal);
  // A follower/patcher is leaving the group (e.g. a patcher pausing its
  // catch-up stream): drop its membership record.
  void MemberDeparting(int video, std::uint64_t group_id, int terminal);

  // Erases every group that can neither be joined nor needs handoff
  // bookkeeping any more; returns how many were dropped. Runs
  // automatically on touch and amortized every few arrangements — the
  // fix for the unbounded `open_groups_` growth of the old manager.
  std::size_t PruneExpired();
  std::size_t open_group_count() const { return groups_.size(); }

  const Stats& stats() const { return stats_; }
  std::uint64_t groups_formed() const { return stats_.groups_formed; }
  std::uint64_t followers_attached() const {
    return stats_.followers_attached;
  }
  void ResetStats() { stats_ = Stats(); }

 private:
  struct Member {
    int terminal = -1;
    double offset_sec = 0.0;  // 0 = exact mirror; >0 = patched join
    StreamShareMember* callback = nullptr;
  };
  struct Group {
    std::uint64_t id = 0;
    sim::SimTime start_time = 0.0;
    sim::SimTime end_time = 0.0;  // shared stream end (start + duration)
    int leader = -1;
    std::vector<Member> members;  // join order; excludes the leader
  };

  // No longer joinable and no member could still need a handoff signal.
  bool Expired(const Group& group, sim::SimTime now) const;

  sim::Environment* env_;
  double window_sec_;
  double patch_window_sec_;
  std::unordered_map<int, Group> groups_;  // latest group per video
  std::uint64_t next_group_id_ = 1;
  std::uint64_t arranges_ = 0;  // drives the amortized sweep
  Stats stats_;
};

}  // namespace spiffi::client

#endif  // SPIFFI_CLIENT_STREAM_SHARE_H_
