#include "client/terminal.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/trace.h"
#include "sim/check.h"

namespace spiffi::client {

using server::Message;

Terminal::Terminal(sim::Environment* env, int id,
                   const TerminalParams& params, hw::Network* network,
                   server::NodeDirectory* server,
                   const mpeg::VideoLibrary* library,
                   const layout::Layout* layout, sim::Rng rng,
                   sim::SimTime start_time, PiggybackManager* piggyback,
                   const fault::FaultState* fault)
    : env_(env),
      id_(id),
      params_(params),
      network_(network),
      server_(server),
      library_(library),
      layout_(layout),
      rng_(rng),
      piggyback_(piggyback),
      fault_(fault) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(params.memory_bytes >= params.block_bytes);
  env_->Schedule(start_time, this, kStartToken);
}

double Terminal::FramesPerSecond() const {
  return library_->frame_model().params().frames_per_second;
}

double Terminal::ConsumedPlaybackTime() const {
  return static_cast<double>(next_frame_) / FramesPerSecond();
}

std::int64_t Terminal::BlockBytesAt(std::int64_t block) const {
  std::int64_t start = block * params_.block_bytes;
  return std::min(params_.block_bytes, video_bytes_ - start);
}

std::int64_t Terminal::ContiguousBytes() const {
  return std::min((first_block_ + contiguous_blocks_) * params_.block_bytes,
                  video_bytes_);
}

sim::SimTime Terminal::DeadlineForBlock(std::int64_t block) const {
  // The first byte of the block that will actually be consumed (the
  // starting block is consumed from the starting position, not byte 0).
  double block_time = vid_->PlaybackTimeOfByte(
      std::max(block * params_.block_bytes, start_byte_));
  switch (state_) {
    case State::kPlaying:
      return anchor_ + block_time;
    case State::kPaused:
      // Display resumes at pause_end_; the clock then runs from the
      // current consumption point.
      return pause_end_ + (block_time - ConsumedPlaybackTime());
    default:
      // Priming: assume display could start immediately (conservative).
      return env_->now() + (block_time - ConsumedPlaybackTime());
  }
}

void Terminal::OnEvent(std::uint64_t token) {
  switch (token) {
    case kStartToken:
      if (pending_video_ >= 0) {
        StartVideo(pending_video_, 0);
      } else {
        ChooseNextVideo();
      }
      break;
    case kFrameToken:
      if (state_ == State::kPlaying) DisplayFrame();
      break;
    case kPauseEndToken:
      if (state_ == State::kPaused) {
        state_ = State::kPlaying;
        anchor_ = env_->now() - ConsumedPlaybackTime();
        env_->Schedule(env_->now(), this, kFrameToken);
      }
      break;
    case kFollowEndToken:
      if (state_ == State::kFollowing) {
        ++stats_.videos_completed;
        state_ = State::kIdle;
        ChooseNextVideo();
      }
      break;
    case kSearchFrameToken:
      if (state_ == State::kSearching) DisplaySearchFrame();
      break;
    default:
      SPIFFI_CHECK(false);
  }
}

void Terminal::ChooseNextVideo() {
  int video = library_->Select(&rng_);
  // Only the very first video starts mid-stream (steady-state warmup);
  // later selections play from the beginning.
  std::int64_t start_frame = 0;
  if (first_video_) {
    first_video_ = false;
    if (params_.random_initial_position) {
      start_frame = static_cast<std::int64_t>(rng_.UniformInt(
          static_cast<std::uint64_t>(library_->video(video).frame_count())));
    }
  }
  if (piggyback_ == nullptr) {
    StartVideo(video, start_frame);
    return;
  }
  // Piggyback groups always watch from the beginning (the batching
  // window replaces the steady-state position spread).
  PiggybackManager::Arrangement arrangement = piggyback_->Arrange(video);
  pending_video_ = video;
  if (arrangement.role == PiggybackManager::Role::kFollower) {
    state_ = State::kFollowing;
    env_->Schedule(
        arrangement.start_time + library_->video(video).duration_seconds(),
        this, kFollowEndToken);
    return;
  }
  state_ = State::kWaitingStart;
  env_->Schedule(arrangement.start_time, this, kStartToken);
}

void Terminal::ResetStreamAt(std::int64_t frame) {
  ++epoch_;  // replies to everything issued so far become stale
  next_frame_ = frame;
  start_byte_ = vid_->CumulativeBytesAtFrame(frame);
  consumed_bytes_ = start_byte_;
  first_block_ = start_byte_ / params_.block_bytes;
  next_request_block_ = first_block_;
  contiguous_blocks_ = 0;
  arrived_out_of_order_.clear();
  issue_time_.clear();
  search_blocks_pending_.clear();
  occupied_bytes_ = 0;
  inflight_bytes_ = 0;
}

void Terminal::StartVideo(int video, std::int64_t start_frame) {
  SPIFFI_CHECK(inflight_bytes_ == 0);
  video_ = video;
  pending_video_ = -1;
  vid_ = &library_->video(video);
  video_bytes_ = vid_->total_bytes();
  num_blocks_ = library_->NumBlocks(video, params_.block_bytes);

  ResetStreamAt(start_frame);

  pause_at_.clear();
  if (params_.pause_enabled) {
    // Poisson-distributed pause count (mean pauses_per_video_mean) at
    // uniform playback positions after the starting point.
    double l = std::exp(-params_.pauses_per_video_mean);
    int count = 0;
    for (double p = rng_.NextDouble(); p > l; p *= rng_.NextDouble()) {
      ++count;
    }
    for (int i = 0; i < count; ++i) {
      double at = rng_.Uniform(ConsumedPlaybackTime(),
                               vid_->duration_seconds());
      pause_at_.push_back(at);
    }
    std::sort(pause_at_.begin(), pause_at_.end(), std::greater<double>());
  }

  search_at_.clear();
  if (params_.search_enabled) {
    double l = std::exp(-params_.searches_per_video_mean);
    int count = 0;
    for (double p = rng_.NextDouble(); p > l; p *= rng_.NextDouble()) {
      ++count;
    }
    for (int i = 0; i < count; ++i) {
      search_at_.push_back(rng_.Uniform(ConsumedPlaybackTime(),
                                        vid_->duration_seconds()));
    }
    std::sort(search_at_.begin(), search_at_.end(),
              std::greater<double>());
  }

  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "video_start",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video)},
                     {"start_frame", static_cast<double>(start_frame)}});
  IssueRequests();
}

void Terminal::IssueRequests() {
  if (state_ != State::kPriming && state_ != State::kPlaying &&
      state_ != State::kPaused) {
    return;
  }
  while (next_request_block_ < num_blocks_) {
    std::int64_t bytes = BlockBytesAt(next_request_block_);
    if (occupied_bytes_ + inflight_bytes_ + bytes > params_.memory_bytes) {
      break;  // no room to buffer another block
    }
    layout::BlockLocation loc = RouteForBlock(next_request_block_);

    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = id_;
    request.video = video_;
    request.block = next_request_block_;
    request.bytes = bytes;
    request.deadline = DeadlineForBlock(next_request_block_);
    request.reply_to = this;
    request.cookie = epoch_;
    std::uint64_t trace_id = obs::TraceAsyncBegin(
        env_, obs::TraceCategory::kTerminal, "block_request",
        obs::Tracer::kTerminalsPid,
        {{"terminal", static_cast<double>(id_)},
         {"block", static_cast<double>(next_request_block_)}});
    server::PostMessage(env_, network_, server::kControlMessageBytes,
                        server_->node_sink(loc.node), request);

    inflight_bytes_ += bytes;
    issue_time_[next_request_block_] =
        PendingRequest{env_->now(), request.deadline, trace_id};
    ++stats_.requests_sent;
    ++next_request_block_;
  }
}

void Terminal::OnMessage(const Message& message) {
  SPIFFI_DCHECK(message.kind == Message::Kind::kReadReply);
  if (message.cookie != epoch_) {
    // Reply to a stream abandoned by a video change, jump, or search.
    ++stats_.stale_replies;
    return;
  }
  if (state_ == State::kSearching) {
    OnSearchBlock(message);
    return;
  }

  inflight_bytes_ -= message.bytes;
  occupied_bytes_ += message.bytes;
  if (message.block == first_block_) {
    // The part of the starting block before the starting position is
    // never displayed; do not let it occupy buffer space forever.
    occupied_bytes_ -= start_byte_ - first_block_ * params_.block_bytes;
  }
  ++stats_.blocks_received;
  RecordArrival(message);

  if (message.block == first_block_ + contiguous_blocks_) {
    ++contiguous_blocks_;
    auto next = arrived_out_of_order_.begin();
    while (next != arrived_out_of_order_.end() &&
           *next == first_block_ + contiguous_blocks_) {
      ++contiguous_blocks_;
      next = arrived_out_of_order_.erase(next);
    }
  } else {
    arrived_out_of_order_.insert(message.block);
  }

  if (state_ == State::kPriming) CheckPrimeComplete();
}

layout::BlockLocation Terminal::RouteForBlock(std::int64_t block) {
  layout::BlockLocation loc = layout_->Locate(video_, block);
  if (fault_ != nullptr && !fault_->LocationUp(loc)) {
    for (const layout::BlockLocation& copy :
         layout_->Replicas(video_, block)) {
      if (fault_->LocationUp(copy)) {
        ++stats_.requests_redirected;
        return copy;
      }
    }
    // Every copy is down: send to the primary, whose node will park the
    // request until a repair.
  }
  return loc;
}

void Terminal::RecordArrival(const Message& message) {
  auto it = issue_time_.find(message.block);
  if (it == issue_time_.end()) return;
  const PendingRequest& pending = it->second;
  if (message.hops > 0) ++stats_.blocks_rerouted;
  double response = env_->now() - pending.issue_time;
  stats_.response_time.Add(response);
  stats_.response_histogram.Add(response);
  stats_.response_sketch.Add(response);
  double slack = pending.deadline - env_->now();
  stats_.deadline_slack.Add(slack);
  stats_.slack_histogram.Add(slack);
  stats_.slack_sketch.Add(slack);
  if (slack < 0.0) AttributeLateBlock(message, response);
  obs::TraceAsyncEnd(env_, obs::TraceCategory::kTerminal, "block_request",
                     obs::Tracer::kTerminalsPid, pending.trace_id,
                     {{"response_ms", response * 1e3},
                      {"slack_ms", slack * 1e3}});
  issue_time_.erase(it);
}

void Terminal::AttributeLateBlock(const Message& message, double response) {
  ++stats_.late_blocks;
  const server::ReadTiming& timing = message.timing;
  // Stage shares of the response time: wire transit (both directions),
  // server CPU + pool stalls, disk queueing, disk mechanism, and
  // degraded-mode delay (time parked on or hopping between nodes whose
  // copy was down; always 0 on healthy runs). The stage with the
  // largest share takes the blame for the missed deadline.
  double network = response - timing.ServerSeconds();
  double stages[] = {network, timing.ServerOverheadSeconds(),
                     timing.disk_queue_sec, timing.disk_service_sec,
                     timing.fault_wait_sec};
  int worst = 0;
  for (int i = 1; i < 5; ++i) {
    if (stages[i] > stages[worst]) worst = i;
  }
  switch (worst) {
    case 0: ++stats_.late_attrib_network; break;
    case 1: ++stats_.late_attrib_server_cpu; break;
    case 2: ++stats_.late_attrib_disk_queue; break;
    case 3: ++stats_.late_attrib_disk_service; break;
    case 4: ++stats_.late_attrib_fault; break;
  }
}

void Terminal::CheckPrimeComplete() {
  if (inflight_bytes_ != 0) return;
  bool exhausted = next_request_block_ >= num_blocks_;
  bool full = !exhausted &&
              occupied_bytes_ + BlockBytesAt(next_request_block_) >
                  params_.memory_bytes;
  if (exhausted || full) BeginDisplay();
}

void Terminal::BeginDisplay() {
  SPIFFI_DCHECK(state_ == State::kPriming);
  obs::TraceSpan(env_, obs::TraceCategory::kTerminal, "prime",
                 obs::Tracer::kTerminalsPid, id_, prime_start_,
                 {{"video", static_cast<double>(video_)}});
  state_ = State::kPlaying;
  anchor_ = env_->now() - ConsumedPlaybackTime();
  env_->Schedule(env_->now(), this, kFrameToken);
}

void Terminal::DisplayFrame() {
  // A pending pause takes effect before the frame at its position.
  if (!pause_at_.empty() && ConsumedPlaybackTime() >= pause_at_.back()) {
    pause_at_.pop_back();
    EnterPause();
    return;
  }
  // Likewise a pending visual search (mostly fast-forward).
  if (!search_at_.empty() && ConsumedPlaybackTime() >= search_at_.back()) {
    search_at_.pop_back();
    bool forward = rng_.NextDouble() < 0.7;
    double duration =
        rng_.Exponential(params_.search_duration_mean_sec);
    BeginVisualSearch(forward, params_.search_show_sec,
                      params_.search_skip_sec, duration);
    return;
  }

  std::int64_t frame_bytes = vid_->FrameBytes(next_frame_);
  if (consumed_bytes_ + frame_bytes > ContiguousBytes()) {
    HandleGlitch();
    return;
  }

  consumed_bytes_ += frame_bytes;
  occupied_bytes_ -= frame_bytes;
  ++next_frame_;
  ++stats_.frames_displayed;
  IssueRequests();  // consumption freed buffer space

  if (next_frame_ >= vid_->frame_count()) {
    FinishVideo();
    return;
  }
  env_->Schedule(anchor_ + static_cast<double>(next_frame_) /
                               FramesPerSecond(),
                 this, kFrameToken);
}

void Terminal::HandleGlitch() {
  ++stats_.glitches;
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "glitch",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video_)},
                     {"position_sec", ConsumedPlaybackTime()}});
  // Stop the display and fully re-prime before restarting (§5.1).
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  IssueRequests();
  // A full, fully-arrived buffer whose next frame still does not fit can
  // never make progress (the terminal memory is smaller than one frame) —
  // fail fast instead of glitching in a zero-time loop.
  SPIFFI_CHECK(!(inflight_bytes_ == 0 &&
                 next_request_block_ < num_blocks_ &&
                 occupied_bytes_ + BlockBytesAt(next_request_block_) >
                     params_.memory_bytes));
  CheckPrimeComplete();  // everything may already have arrived
}

void Terminal::EnterPause() {
  state_ = State::kPaused;
  ++stats_.pauses;
  pause_end_ =
      env_->now() + rng_.Exponential(params_.pause_duration_mean_sec);
  env_->Schedule(pause_end_, this, kPauseEndToken);
}

void Terminal::JumpTo(double playback_seconds) {
  SPIFFI_CHECK(vid_ != nullptr);
  SPIFFI_CHECK(state_ == State::kPlaying || state_ == State::kPaused ||
               state_ == State::kSearching || state_ == State::kPriming);
  auto frame = static_cast<std::int64_t>(
      std::llround(playback_seconds * FramesPerSecond()));
  frame = std::clamp<std::int64_t>(frame, 0, vid_->frame_count() - 1);
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  ResetStreamAt(frame);
  IssueRequests();
}

void Terminal::BeginVisualSearch(bool forward, double show_sec,
                                 double skip_sec, double duration_sec) {
  SPIFFI_CHECK(vid_ != nullptr);
  SPIFFI_CHECK(state_ == State::kPlaying || state_ == State::kPaused);
  SPIFFI_CHECK(show_sec > 0.0);
  SPIFFI_CHECK(skip_sec >= 0.0);
  ++stats_.searches;
  state_ = State::kSearching;
  search_forward_ = forward;
  search_show_sec_ = show_sec;
  search_skip_sec_ = skip_sec;
  search_end_time_ = env_->now() + duration_sec;
  search_segment_start_ = next_frame_;
  // Buffered normal-playback data is abandoned; its replies go stale.
  ResetStreamAt(next_frame_);
  state_ = State::kSearching;  // ResetStreamAt does not touch state
  StartSearchSegment();
}

void Terminal::StartSearchSegment() {
  SPIFFI_DCHECK(state_ == State::kSearching);
  if (env_->now() >= search_end_time_ ||
      search_segment_start_ < 0 ||
      search_segment_start_ >= vid_->frame_count()) {
    EndVisualSearch();
    return;
  }
  auto show_frames = static_cast<std::int64_t>(
      std::llround(search_show_sec_ * FramesPerSecond()));
  if (show_frames < 1) show_frames = 1;
  search_segment_end_ = std::min(search_segment_start_ + show_frames,
                                 vid_->frame_count());
  search_cursor_ = search_segment_start_;

  // Request exactly the blocks covering the shown segment — the skipped
  // video is never read, so searching adds little server load (§8.1).
  std::int64_t first_byte =
      vid_->CumulativeBytesAtFrame(search_segment_start_);
  std::int64_t last_byte =
      vid_->CumulativeBytesAtFrame(search_segment_end_) - 1;
  std::int64_t b0 = first_byte / params_.block_bytes;
  std::int64_t b1 = last_byte / params_.block_bytes;
  SPIFFI_DCHECK(search_blocks_pending_.empty());
  for (std::int64_t b = b0; b <= b1; ++b) {
    search_blocks_pending_.insert(b);
  }
  for (std::int64_t b = b0; b <= b1; ++b) {
    layout::BlockLocation loc = RouteForBlock(b);
    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = id_;
    request.video = video_;
    request.block = b;
    request.bytes = BlockBytesAt(b);
    // Best effort: the picture is choppy by design, so the deadline is
    // one show+skip period out.
    request.deadline =
        env_->now() + search_show_sec_ + search_skip_sec_;
    request.reply_to = this;
    request.cookie = epoch_;
    server::PostMessage(env_, network_, server::kControlMessageBytes,
                        server_->node_sink(loc.node), request);
    ++stats_.requests_sent;
  }
}

void Terminal::OnSearchBlock(const server::Message& message) {
  search_blocks_pending_.erase(message.block);
  ++stats_.blocks_received;
  if (search_blocks_pending_.empty()) {
    ++stats_.search_segments;
    env_->Schedule(env_->now(), this, kSearchFrameToken);
  }
}

void Terminal::DisplaySearchFrame() {
  ++stats_.search_frames;
  ++search_cursor_;
  if (search_cursor_ < search_segment_end_) {
    env_->ScheduleAfter(1.0 / FramesPerSecond(), this, kSearchFrameToken);
    return;
  }
  // Segment done: hop over the skipped span (or back for rewind).
  auto hop = static_cast<std::int64_t>(std::llround(
      (search_show_sec_ + search_skip_sec_) * FramesPerSecond()));
  search_segment_start_ += search_forward_ ? hop : -hop;
  if (search_forward_ &&
      search_segment_start_ >= vid_->frame_count()) {
    // Fast-forwarded off the end of the movie.
    ResetStreamAt(vid_->frame_count());
    FinishVideo();
    return;
  }
  StartSearchSegment();
}

void Terminal::EndVisualSearch() {
  std::int64_t resume = std::clamp<std::int64_t>(
      search_segment_start_, 0, vid_->frame_count() - 1);
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  ResetStreamAt(resume);
  IssueRequests();
}

void Terminal::FinishVideo() {
  ++stats_.videos_completed;
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "video_complete",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video_)}});
  SPIFFI_DCHECK(occupied_bytes_ == 0);
  state_ = State::kIdle;
  video_ = -1;
  vid_ = nullptr;
  // "When a terminal finishes one movie, it randomly selects a new video
  // and immediately begins playing it." (§6)
  ChooseNextVideo();
}

}  // namespace spiffi::client
