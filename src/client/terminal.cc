#include "client/terminal.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/trace.h"
#include "sim/check.h"
#include "vod/admission.h"

namespace spiffi::client {

using server::Message;

Terminal::Terminal(sim::Environment* env, int id,
                   const TerminalParams& params, hw::Network* network,
                   server::NodeDirectory* server,
                   const mpeg::VideoLibrary* library,
                   const layout::Layout* layout, sim::Rng rng,
                   sim::SimTime start_time, StreamShareManager* share,
                   const fault::FaultState* fault,
                   server::MessageSink* ingress,
                   vod::AdmissionController* admission)
    : env_(env),
      id_(id),
      params_(params),
      network_(network),
      server_(server),
      library_(library),
      layout_(layout),
      rng_(rng),
      share_(share),
      fault_(fault),
      ingress_(ingress),
      admission_(admission) {
  SPIFFI_CHECK(env != nullptr);
  SPIFFI_CHECK(params.memory_bytes >= params.block_bytes);
  env_->Schedule(start_time, this, kStartToken);
}

double Terminal::FramesPerSecond() const {
  return library_->frame_model().params().frames_per_second;
}

double Terminal::ConsumedPlaybackTime() const {
  return static_cast<double>(next_frame_) / FramesPerSecond();
}

std::int64_t Terminal::BlockBytesAt(std::int64_t block) const {
  std::int64_t start = block * params_.block_bytes;
  return std::min(params_.block_bytes, video_bytes_ - start);
}

std::int64_t Terminal::ContiguousBytes() const {
  return std::min((first_block_ + contiguous_blocks_) * params_.block_bytes,
                  video_bytes_);
}

sim::SimTime Terminal::DeadlineForBlock(std::int64_t block) const {
  // The first byte of the block that will actually be consumed (the
  // starting block is consumed from the starting position, not byte 0).
  double block_time = vid_->PlaybackTimeOfByte(
      std::max(block * params_.block_bytes, start_byte_));
  switch (state_) {
    case State::kPlaying:
      return anchor_ + block_time;
    case State::kPaused:
      // Display resumes at pause_end_; the clock then runs from the
      // current consumption point.
      return pause_end_ + (block_time - ConsumedPlaybackTime());
    default:
      // Priming: assume display could start immediately (conservative).
      return env_->now() + (block_time - ConsumedPlaybackTime());
  }
}

void Terminal::OnEvent(std::uint64_t token) {
  if ((token & kTokenMask) == kFollowEndToken) {
    // The generation guards against follow-end events scheduled for a
    // stream this terminal already left via promotion or disband.
    if (state_ == State::kFollowing &&
        (token >> kTokenBits) == follow_gen_) {
      ++stats_.videos_completed;
      share_role_ = ShareRole::kNone;
      state_ = State::kIdle;
      // The followed session is fully over; the video it mirrored must
      // not leak into the next kStartToken (a deferred admission retry
      // would otherwise replay it, bypassing the gate).
      pending_video_ = -1;
      if (admission_ != nullptr) admission_->Release(id_);
      ChooseNextVideo();
    }
    return;
  }
  if ((token & kTokenMask) == kRetryToken) {
    OnRetryTimeout(static_cast<std::int64_t>(token >> kTokenBits));
    return;
  }
  switch (token) {
    case kStartToken:
      if (pending_video_ >= 0) {
        StartVideo(pending_video_, 0);
      } else {
        ChooseNextVideo();
      }
      break;
    case kFrameToken:
      if (state_ == State::kPlaying) DisplayFrame();
      break;
    case kPauseEndToken:
      if (state_ == State::kPaused) {
        state_ = State::kPlaying;
        anchor_ = env_->now() - ConsumedPlaybackTime();
        env_->Schedule(env_->now(), this, kFrameToken);
      }
      break;
    case kSearchFrameToken:
      if (state_ == State::kSearching) DisplaySearchFrame();
      break;
    case kAdmissionRetryToken:
      // Deferred admission retry: always back through the gate and the
      // popularity draw — never a direct StartVideo.
      ChooseNextVideo();
      break;
    default:
      SPIFFI_CHECK(false);
  }
}

void Terminal::ChooseNextVideo() {
  if (admission_ != nullptr) {
    // The gate comes before the popularity draw so admission-off runs
    // keep an identical RNG sequence. A deferred session retries after
    // a bounded-exponential delay; a rejection waits the full cooldown.
    vod::AdmissionController::Decision decision = admission_->TryAdmit(id_);
    if (decision != vod::AdmissionController::Decision::kAdmit) {
      double factor =
          decision == vod::AdmissionController::Decision::kReject
              ? 16.0
              : static_cast<double>(
                    1 << std::min(admission_defer_streak_, 4));
      ++admission_defer_streak_;
      env_->ScheduleAfter(params_.admission_defer_sec * factor, this,
                          kAdmissionRetryToken);
      return;
    }
    admission_defer_streak_ = 0;
  }
  int video = library_->Select(&rng_);
  // Only the very first video starts mid-stream (steady-state warmup);
  // later selections play from the beginning.
  std::int64_t start_frame = 0;
  if (first_video_) {
    first_video_ = false;
    if (params_.random_initial_position) {
      start_frame = static_cast<std::int64_t>(rng_.UniformInt(
          static_cast<std::uint64_t>(library_->video(video).frame_count())));
    }
  }
  if (share_ == nullptr) {
    StartVideo(video, start_frame);
    return;
  }
  // Share groups always watch from the beginning (the batching window
  // replaces the steady-state position spread).
  double duration = library_->video(video).duration_seconds();
  StreamShareManager::Arrangement arrangement =
      share_->Arrange(video, id_, duration, this);
  pending_video_ = video;
  share_video_ = video;
  share_group_ = arrangement.group_id;
  switch (arrangement.role) {
    case StreamShareManager::Role::kFollower:
      // Exact mirror of the shared stream from its (possibly still
      // pending) start to its end.
      share_role_ = ShareRole::kFollower;
      BeginFollowing(arrangement.start_time,
                     arrangement.start_time + duration);
      return;
    case StreamShareManager::Role::kPatcher:
      // Start right away; StartVideo caps the stream at the missed
      // prefix and the display syncs onto the shared stream after it.
      share_role_ = ShareRole::kPatcher;
      pending_patch_seconds_ = arrangement.patch_seconds;
      StartVideo(video, 0);
      return;
    case StreamShareManager::Role::kLeader:
      share_role_ = ShareRole::kLeader;
      state_ = State::kWaitingStart;
      env_->Schedule(arrangement.start_time, this, kStartToken);
      return;
  }
}

void Terminal::BeginFollowing(sim::SimTime display_anchor,
                              sim::SimTime end_time) {
  state_ = State::kFollowing;
  follow_anchor_ = display_anchor;
  ++follow_gen_;
  env_->Schedule(end_time, this,
                 kFollowEndToken | (follow_gen_ << kTokenBits));
}

std::int64_t Terminal::FollowFrameNow(int video) const {
  double position = env_->now() - follow_anchor_;
  auto frame = static_cast<std::int64_t>(
      std::llround(position * FramesPerSecond()));
  return std::clamp<std::int64_t>(
      frame, 0, library_->video(video).frame_count() - 1);
}

void Terminal::OnPromotedToLeader(int video) {
  if (state_ != State::kFollowing || pending_video_ != video) return;
  ++stats_.share_promotions;
  ++follow_gen_;  // the scheduled follow-end no longer applies
  share_role_ = ShareRole::kLeader;
  std::int64_t frame = FollowFrameNow(video);
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "share_promote",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video)},
                     {"start_frame", static_cast<double>(frame)}});
  StartVideo(video, frame);
}

void Terminal::OnShareGroupDisbanded(int video) {
  if (share_role_ == ShareRole::kPatcher && video_ == video &&
      state_ != State::kFollowing) {
    // Mid-patch: keep the running unicast stream, just remove its cap —
    // the rest of the video must now be fetched privately too.
    ++stats_.share_disbands;
    share_role_ = ShareRole::kNone;
    patch_limit_frame_ = -1;
    IssueRequests();
    return;
  }
  if (state_ != State::kFollowing || pending_video_ != video) return;
  ++stats_.share_disbands;
  ++follow_gen_;
  share_role_ = ShareRole::kNone;
  StartVideo(video, FollowFrameNow(video));
}

void Terminal::DepartSharedGroup() {
  if (share_ == nullptr || share_role_ == ShareRole::kNone) return;
  if (share_role_ == ShareRole::kLeader) {
    share_->LeaderDeparting(share_video_, share_group_, id_);
  } else {
    // Only a patcher can get here — a plain follower has no display
    // events from which to act. Its stream turns private.
    share_->MemberDeparting(share_video_, share_group_, id_);
    patch_limit_frame_ = -1;
  }
  share_role_ = ShareRole::kNone;
}

void Terminal::SyncToSharedStream() {
  SPIFFI_DCHECK(share_role_ == ShareRole::kPatcher);
  ++stats_.patch_syncs;
  // The unicast catch-up stream ends here: from this point the terminal
  // consumes the shared stream it has been buffering since the join.
  // Anything buffered or in flight past the join offset duplicates the
  // shared stream and is dropped (replies go stale via the epoch bump).
  std::int64_t frame = next_frame_;
  ResetStreamAt(frame);
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "patch_sync",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video_)},
                     {"position_sec", ConsumedPlaybackTime()}});
  share_role_ = ShareRole::kFollower;
  sim::SimTime end_time = anchor_ + vid_->duration_seconds();
  pending_video_ = video_;
  video_ = -1;
  vid_ = nullptr;
  BeginFollowing(anchor_, end_time);
}

void Terminal::ResetStreamAt(std::int64_t frame) {
  ++epoch_;  // replies to everything issued so far become stale
  CancelRetryTimers();
  next_frame_ = frame;
  start_byte_ = vid_->CumulativeBytesAtFrame(frame);
  consumed_bytes_ = start_byte_;
  first_block_ = start_byte_ / params_.block_bytes;
  next_request_block_ = first_block_;
  contiguous_blocks_ = 0;
  arrived_out_of_order_.clear();
  issue_time_.clear();
  search_blocks_pending_.clear();
  occupied_bytes_ = 0;
  inflight_bytes_ = 0;
  patch_limit_frame_ = -1;
  resume_paused_ = false;
}

void Terminal::StartVideo(int video, std::int64_t start_frame) {
  SPIFFI_CHECK(inflight_bytes_ == 0);
  video_ = video;
  pending_video_ = -1;
  vid_ = &library_->video(video);
  video_bytes_ = vid_->total_bytes();
  num_blocks_ = library_->NumBlocks(video, params_.block_bytes);

  ResetStreamAt(start_frame);

  if (pending_patch_seconds_ > 0.0 && start_frame == 0) {
    // Unicast catch-up stream: fetch and display only the frames the
    // shared stream has already passed, then sync onto it.
    auto frames = static_cast<std::int64_t>(
        std::ceil(pending_patch_seconds_ * FramesPerSecond() - 1e-9));
    patch_limit_frame_ =
        std::clamp<std::int64_t>(frames, 1, vid_->frame_count());
    std::int64_t last_byte =
        vid_->CumulativeBytesAtFrame(patch_limit_frame_) - 1;
    patch_limit_block_ = last_byte / params_.block_bytes + 1;
    ++stats_.patches_started;
  }
  pending_patch_seconds_ = 0.0;

  pause_at_.clear();
  if (params_.pause_enabled) {
    // Poisson-distributed pause count (mean pauses_per_video_mean) at
    // uniform playback positions after the starting point.
    double l = std::exp(-params_.pauses_per_video_mean);
    int count = 0;
    for (double p = rng_.NextDouble(); p > l; p *= rng_.NextDouble()) {
      ++count;
    }
    for (int i = 0; i < count; ++i) {
      double at = rng_.Uniform(ConsumedPlaybackTime(),
                               vid_->duration_seconds());
      pause_at_.push_back(at);
    }
    std::sort(pause_at_.begin(), pause_at_.end(), std::greater<double>());
  }

  search_at_.clear();
  if (params_.search_enabled) {
    double l = std::exp(-params_.searches_per_video_mean);
    int count = 0;
    for (double p = rng_.NextDouble(); p > l; p *= rng_.NextDouble()) {
      ++count;
    }
    for (int i = 0; i < count; ++i) {
      search_at_.push_back(rng_.Uniform(ConsumedPlaybackTime(),
                                        vid_->duration_seconds()));
    }
    std::sort(search_at_.begin(), search_at_.end(),
              std::greater<double>());
  }

  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "video_start",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video)},
                     {"start_frame", static_cast<double>(start_frame)}});
  IssueRequests();
}

void Terminal::IssueRequests() {
  if (state_ != State::kPriming && state_ != State::kPlaying &&
      state_ != State::kPaused) {
    return;
  }
  while (next_request_block_ < RequestableBlocks()) {
    std::int64_t bytes = BlockBytesAt(next_request_block_);
    if (occupied_bytes_ + inflight_bytes_ + bytes > params_.memory_bytes) {
      break;  // no room to buffer another block
    }
    server::MessageSink* sink = ingress_;
    int target_node = -1;
    if (sink == nullptr) {
      layout::BlockLocation loc = RouteForBlock(next_request_block_);
      sink = server_->node_sink(loc.node);
      target_node = loc.node;
    }

    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = id_;
    request.video = video_;
    request.block = next_request_block_;
    request.bytes = bytes;
    request.deadline = DeadlineForBlock(next_request_block_);
    request.reply_to = this;
    request.cookie = epoch_;
    std::uint64_t trace_id = obs::TraceAsyncBegin(
        env_, obs::TraceCategory::kTerminal, "block_request",
        obs::Tracer::kTerminalsPid,
        {{"terminal", static_cast<double>(id_)},
         {"block", static_cast<double>(next_request_block_)}});
    server::PostMessage(env_, network_, server::kControlMessageBytes, sink,
                        request);

    inflight_bytes_ += bytes;
    PendingRequest& pending = issue_time_[next_request_block_];
    pending = PendingRequest{env_->now(), request.deadline, trace_id};
    pending.node = target_node;
    pending.last_send_time = env_->now();
    if (params_.retry_budget > 0) {
      ArmRetryTimer(next_request_block_,
                    FirstRetryFireTime(request.deadline));
    }
    ++stats_.requests_sent;
    ++next_request_block_;
  }
}

void Terminal::OnMessage(const Message& message) {
  SPIFFI_DCHECK(message.kind == Message::Kind::kReadReply);
  if (message.cookie != epoch_) {
    // Reply to a stream abandoned by a video change, jump, or search.
    ++stats_.stale_replies;
    return;
  }
  if (state_ == State::kSearching) {
    OnSearchBlock(message);
    return;
  }
  if (issue_time_.find(message.block) == issue_time_.end()) {
    // Duplicate delivery: a retried request and the original both
    // completed. The first reply was accounted; drop the straggler
    // before it corrupts the buffer bookkeeping. Unreachable when
    // retry_budget == 0 (every live-epoch block has a pending record).
    ++stats_.duplicate_replies;
    return;
  }

  inflight_bytes_ -= message.bytes;
  occupied_bytes_ += message.bytes;
  if (message.block == first_block_) {
    // The part of the starting block before the starting position is
    // never displayed; do not let it occupy buffer space forever.
    occupied_bytes_ -= start_byte_ - first_block_ * params_.block_bytes;
  }
  ++stats_.blocks_received;
  RecordArrival(message);

  if (message.block == first_block_ + contiguous_blocks_) {
    ++contiguous_blocks_;
    auto next = arrived_out_of_order_.begin();
    while (next != arrived_out_of_order_.end() &&
           *next == first_block_ + contiguous_blocks_) {
      ++contiguous_blocks_;
      next = arrived_out_of_order_.erase(next);
    }
  } else {
    arrived_out_of_order_.insert(message.block);
  }

  if (state_ == State::kPriming) CheckPrimeComplete();
}

layout::BlockLocation Terminal::RouteForBlock(std::int64_t block) {
  layout::BlockLocation loc = layout_->Locate(video_, block);
  if (fault_ != nullptr && !fault_->LocationUp(loc)) {
    for (const layout::BlockLocation& copy :
         layout_->Replicas(video_, block)) {
      if (fault_->LocationUp(copy)) {
        ++stats_.requests_redirected;
        return copy;
      }
    }
    // Every copy is down: send to the primary, whose node will park the
    // request until a repair.
  }
  return loc;
}

void Terminal::RecordArrival(const Message& message) {
  auto it = issue_time_.find(message.block);
  if (it == issue_time_.end()) return;
  const PendingRequest& pending = it->second;
  if (pending.retry_timer != 0) env_->Cancel(pending.retry_timer);
  if (message.hops > 0) ++stats_.blocks_rerouted;
  double response = env_->now() - pending.issue_time;
  stats_.response_time.Add(response);
  stats_.response_histogram.Add(response);
  stats_.response_sketch.Add(response);
  double slack = pending.deadline - env_->now();
  stats_.deadline_slack.Add(slack);
  stats_.slack_histogram.Add(slack);
  stats_.slack_sketch.Add(slack);
  if (slack < 0.0) {
    AttributeLateBlock(message, response,
                       pending.attempts > 0
                           ? pending.last_send_time - pending.issue_time
                           : 0.0);
  }
  obs::TraceAsyncEnd(env_, obs::TraceCategory::kTerminal, "block_request",
                     obs::Tracer::kTerminalsPid, pending.trace_id,
                     {{"response_ms", response * 1e3},
                      {"slack_ms", slack * 1e3}});
  issue_time_.erase(it);
}

void Terminal::AttributeLateBlock(const Message& message, double response,
                                  double retry_wait) {
  ++stats_.late_blocks;
  const server::ReadTiming& timing = message.timing;
  // Stage shares of the response time: wire transit (both directions),
  // server CPU + pool stalls, disk queueing, disk mechanism, and
  // degraded-mode delay (time parked on or hopping between nodes whose
  // copy was down, plus time waiting out retry timeouts; always 0 on
  // healthy runs). The stage with the largest share takes the blame for
  // the missed deadline.
  double network = response - retry_wait - timing.ServerSeconds();
  double stages[] = {network, timing.ServerOverheadSeconds(),
                     timing.disk_queue_sec, timing.disk_service_sec,
                     timing.fault_wait_sec + retry_wait};
  int worst = 0;
  for (int i = 1; i < 5; ++i) {
    if (stages[i] > stages[worst]) worst = i;
  }
  switch (worst) {
    case 0: ++stats_.late_attrib_network; break;
    case 1: ++stats_.late_attrib_server_cpu; break;
    case 2: ++stats_.late_attrib_disk_queue; break;
    case 3: ++stats_.late_attrib_disk_service; break;
    case 4: ++stats_.late_attrib_fault; break;
  }
}

void Terminal::CheckPrimeComplete() {
  if (inflight_bytes_ != 0) return;
  bool exhausted = next_request_block_ >= RequestableBlocks();
  bool full = !exhausted &&
              occupied_bytes_ + BlockBytesAt(next_request_block_) >
                  params_.memory_bytes;
  if (exhausted || full) BeginDisplay();
}

void Terminal::BeginDisplay() {
  SPIFFI_DCHECK(state_ == State::kPriming);
  obs::TraceSpan(env_, obs::TraceCategory::kTerminal, "prime",
                 obs::Tracer::kTerminalsPid, id_, prime_start_,
                 {{"video", static_cast<double>(video_)}});
  if (resume_paused_) {
    resume_paused_ = false;
    if (pause_end_ > env_->now()) {
      // A failover interrupted a pause: sit out the remainder. The
      // original kPauseEndToken is still scheduled and restarts the
      // display at pause_end_.
      state_ = State::kPaused;
      return;
    }
    // The pause expired while re-priming (its end token no-op'd); start
    // playback now.
  }
  state_ = State::kPlaying;
  anchor_ = env_->now() - ConsumedPlaybackTime();
  env_->Schedule(env_->now(), this, kFrameToken);
}

void Terminal::DisplayFrame() {
  // A pending pause takes effect before the frame at its position.
  if (!pause_at_.empty() && ConsumedPlaybackTime() >= pause_at_.back()) {
    pause_at_.pop_back();
    EnterPause();
    return;
  }
  // Likewise a pending visual search (mostly fast-forward).
  if (!search_at_.empty() && ConsumedPlaybackTime() >= search_at_.back()) {
    search_at_.pop_back();
    bool forward = rng_.NextDouble() < 0.7;
    double duration =
        rng_.Exponential(params_.search_duration_mean_sec);
    BeginVisualSearch(forward, params_.search_show_sec,
                      params_.search_skip_sec, duration);
    return;
  }

  std::int64_t frame_bytes = vid_->FrameBytes(next_frame_);
  if (consumed_bytes_ + frame_bytes > ContiguousBytes()) {
    HandleGlitch();
    return;
  }

  consumed_bytes_ += frame_bytes;
  occupied_bytes_ -= frame_bytes;
  ++next_frame_;
  ++stats_.frames_displayed;
  IssueRequests();  // consumption freed buffer space

  if (patch_limit_frame_ >= 0 && next_frame_ >= patch_limit_frame_) {
    SyncToSharedStream();
    return;
  }
  if (next_frame_ >= vid_->frame_count()) {
    FinishVideo();
    return;
  }
  env_->Schedule(anchor_ + static_cast<double>(next_frame_) /
                               FramesPerSecond(),
                 this, kFrameToken);
}

void Terminal::HandleGlitch() {
  ++stats_.glitches;
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "glitch",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video_)},
                     {"position_sec", ConsumedPlaybackTime()}});
  // Stop the display and fully re-prime before restarting (§5.1).
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  IssueRequests();
  // A full, fully-arrived buffer whose next frame still does not fit can
  // never make progress (the terminal memory is smaller than one frame) —
  // fail fast instead of glitching in a zero-time loop.
  SPIFFI_CHECK(!(inflight_bytes_ == 0 &&
                 next_request_block_ < RequestableBlocks() &&
                 occupied_bytes_ + BlockBytesAt(next_request_block_) >
                     params_.memory_bytes));
  CheckPrimeComplete();  // everything may already have arrived
}

void Terminal::EnterPause() {
  DepartSharedGroup();
  state_ = State::kPaused;
  ++stats_.pauses;
  pause_end_ =
      env_->now() + rng_.Exponential(params_.pause_duration_mean_sec);
  env_->Schedule(pause_end_, this, kPauseEndToken);
}

void Terminal::JumpTo(double playback_seconds) {
  SPIFFI_CHECK(vid_ != nullptr);
  SPIFFI_CHECK(state_ == State::kPlaying || state_ == State::kPaused ||
               state_ == State::kSearching || state_ == State::kPriming);
  DepartSharedGroup();
  auto frame = static_cast<std::int64_t>(
      std::llround(playback_seconds * FramesPerSecond()));
  frame = std::clamp<std::int64_t>(frame, 0, vid_->frame_count() - 1);
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  ResetStreamAt(frame);
  IssueRequests();
}

void Terminal::BeginVisualSearch(bool forward, double show_sec,
                                 double skip_sec, double duration_sec) {
  SPIFFI_CHECK(vid_ != nullptr);
  SPIFFI_CHECK(state_ == State::kPlaying || state_ == State::kPaused);
  SPIFFI_CHECK(show_sec > 0.0);
  SPIFFI_CHECK(skip_sec >= 0.0);
  DepartSharedGroup();
  ++stats_.searches;
  state_ = State::kSearching;
  search_forward_ = forward;
  search_show_sec_ = show_sec;
  search_skip_sec_ = skip_sec;
  search_end_time_ = env_->now() + duration_sec;
  search_segment_start_ = next_frame_;
  // Buffered normal-playback data is abandoned; its replies go stale.
  ResetStreamAt(next_frame_);
  state_ = State::kSearching;  // ResetStreamAt does not touch state
  StartSearchSegment();
}

void Terminal::StartSearchSegment() {
  SPIFFI_DCHECK(state_ == State::kSearching);
  if (env_->now() >= search_end_time_ ||
      search_segment_start_ < 0 ||
      search_segment_start_ >= vid_->frame_count()) {
    EndVisualSearch();
    return;
  }
  auto show_frames = static_cast<std::int64_t>(
      std::llround(search_show_sec_ * FramesPerSecond()));
  if (show_frames < 1) show_frames = 1;
  search_segment_end_ = std::min(search_segment_start_ + show_frames,
                                 vid_->frame_count());
  search_cursor_ = search_segment_start_;

  // Request exactly the blocks covering the shown segment — the skipped
  // video is never read, so searching adds little server load (§8.1).
  std::int64_t first_byte =
      vid_->CumulativeBytesAtFrame(search_segment_start_);
  std::int64_t last_byte =
      vid_->CumulativeBytesAtFrame(search_segment_end_) - 1;
  std::int64_t b0 = first_byte / params_.block_bytes;
  std::int64_t b1 = last_byte / params_.block_bytes;
  SPIFFI_DCHECK(search_blocks_pending_.empty());
  for (std::int64_t b = b0; b <= b1; ++b) {
    search_blocks_pending_.insert(b);
  }
  for (std::int64_t b = b0; b <= b1; ++b) {
    server::MessageSink* sink = ingress_;
    if (sink == nullptr) {
      layout::BlockLocation loc = RouteForBlock(b);
      sink = server_->node_sink(loc.node);
    }
    Message request;
    request.kind = Message::Kind::kReadRequest;
    request.terminal = id_;
    request.video = video_;
    request.block = b;
    request.bytes = BlockBytesAt(b);
    // Best effort: the picture is choppy by design, so the deadline is
    // one show+skip period out.
    request.deadline =
        env_->now() + search_show_sec_ + search_skip_sec_;
    request.reply_to = this;
    request.cookie = epoch_;
    server::PostMessage(env_, network_, server::kControlMessageBytes, sink,
                        request);
    ++stats_.requests_sent;
  }
}

void Terminal::OnSearchBlock(const server::Message& message) {
  search_blocks_pending_.erase(message.block);
  ++stats_.blocks_received;
  if (search_blocks_pending_.empty()) {
    ++stats_.search_segments;
    env_->Schedule(env_->now(), this, kSearchFrameToken);
  }
}

void Terminal::DisplaySearchFrame() {
  ++stats_.search_frames;
  ++search_cursor_;
  if (search_cursor_ < search_segment_end_) {
    env_->ScheduleAfter(1.0 / FramesPerSecond(), this, kSearchFrameToken);
    return;
  }
  // Segment done: hop over the skipped span (or back for rewind).
  auto hop = static_cast<std::int64_t>(std::llround(
      (search_show_sec_ + search_skip_sec_) * FramesPerSecond()));
  search_segment_start_ += search_forward_ ? hop : -hop;
  if (search_forward_ &&
      search_segment_start_ >= vid_->frame_count()) {
    // Fast-forwarded off the end of the movie.
    ResetStreamAt(vid_->frame_count());
    FinishVideo();
    return;
  }
  StartSearchSegment();
}

void Terminal::EndVisualSearch() {
  std::int64_t resume = std::clamp<std::int64_t>(
      search_segment_start_, 0, vid_->frame_count() - 1);
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  ResetStreamAt(resume);
  IssueRequests();
}

void Terminal::FinishVideo() {
  ++stats_.videos_completed;
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "video_complete",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video_)}});
  SPIFFI_DCHECK(occupied_bytes_ == 0);
  // A leader that plays to the end leaves its group to expire naturally
  // (no handoff needed: mirrors end at the same instant, patchers drain
  // their buffered tail).
  share_role_ = ShareRole::kNone;
  state_ = State::kIdle;
  video_ = -1;
  vid_ = nullptr;
  if (admission_ != nullptr) admission_->Release(id_);
  // "When a terminal finishes one movie, it randomly selects a new video
  // and immediately begins playing it." (§6)
  ChooseNextVideo();
}

// --- Request timeout/retry/failover (ISSUE 9) ---

sim::SimTime Terminal::FirstRetryFireTime(sim::SimTime deadline) const {
  // Deadline-derived: fire shortly before the block's consumption point
  // (replacing the silent wait-until-glitch), but never sooner than the
  // minimum timeout after the send — a healthy round trip must have a
  // chance to complete first.
  return std::max(deadline - params_.retry_min_timeout_sec,
                  env_->now() + params_.retry_min_timeout_sec);
}

void Terminal::ArmRetryTimer(std::int64_t block, sim::SimTime fire_time) {
  auto it = issue_time_.find(block);
  SPIFFI_DCHECK(it != issue_time_.end());
  it->second.retry_timer = env_->Schedule(
      fire_time, this,
      kRetryToken | (static_cast<std::uint64_t>(block) << kTokenBits));
}

void Terminal::CancelRetryTimers() {
  for (auto& [block, pending] : issue_time_) {
    if (pending.retry_timer != 0) {
      env_->Cancel(pending.retry_timer);
      pending.retry_timer = 0;
    }
  }
}

void Terminal::OnRetryTimeout(std::int64_t block) {
  auto it = issue_time_.find(block);
  if (it == issue_time_.end()) return;  // reply won a same-tick race
  PendingRequest& pending = it->second;
  pending.retry_timer = 0;
  // A timeout whose target node has died is not a lost message — the
  // whole stream's routing is stale. Migrate the session once instead
  // of re-sending block by block.
  if (fault_ != nullptr && pending.node >= 0 &&
      !fault_->node_up(pending.node)) {
    SessionFailover();
    return;
  }
  if (pending.attempts >= params_.retry_budget) {
    // Budget spent: leave the request outstanding — the degraded-read
    // path (park + reroute) still delivers it eventually.
    ++stats_.retries_exhausted;
    return;
  }
  ++pending.attempts;
  ++stats_.request_retries;
  // Re-send against the first live replica (possibly a different node
  // than the original pick). The duplicate carries the same epoch
  // cookie and deadline; whichever reply lands first wins and the
  // straggler is dropped as a duplicate.
  server::MessageSink* sink = ingress_;
  int target_node = -1;
  if (sink == nullptr) {
    layout::BlockLocation loc = RouteForBlock(block);
    sink = server_->node_sink(loc.node);
    target_node = loc.node;
  }
  pending.node = target_node;
  pending.last_send_time = env_->now();

  Message request;
  request.kind = Message::Kind::kReadRequest;
  request.terminal = id_;
  request.video = video_;
  request.block = block;
  request.bytes = BlockBytesAt(block);
  request.deadline = pending.deadline;
  request.reply_to = this;
  request.cookie = epoch_;
  server::PostMessage(env_, network_, server::kControlMessageBytes, sink,
                      request);

  // Bounded exponential backoff before the next attempt.
  double backoff = params_.retry_backoff_base_sec *
                   static_cast<double>(1 << std::min(pending.attempts - 1, 6));
  ArmRetryTimer(block, env_->now() + backoff);
}

void Terminal::SessionFailover() {
  ++stats_.session_failovers;
  if (admission_ != nullptr) admission_->Readmit(id_);
  obs::TraceInstant(env_, obs::TraceCategory::kTerminal, "session_failover",
                    obs::Tracer::kTerminalsPid, id_,
                    {{"video", static_cast<double>(video_)},
                     {"position_sec", ConsumedPlaybackTime()}});
  // Abandon every outstanding request (their replies go stale via the
  // epoch bump) and re-prime the whole stream from the consumption
  // point; the fresh requests route to surviving replicas. A leader's
  // share group migrates implicitly — followers mirror the leader's
  // stream and never issue I/O of their own. A mid-patch catch-up
  // stream turns private (its sync point dies with the reset). A
  // session caught mid-pause returns to the pause once re-primed.
  const bool was_paused = state_ == State::kPaused;
  if (share_role_ == ShareRole::kPatcher) DepartSharedGroup();
  state_ = State::kPriming;
  ++stats_.primes;
  prime_start_ = env_->now();
  ResetStreamAt(next_frame_);
  resume_paused_ = was_paused;
  IssueRequests();
}

}  // namespace spiffi::client
