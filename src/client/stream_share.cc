#include "client/stream_share.h"

#include <utility>

namespace spiffi::client {

bool StreamShareManager::Expired(const Group& group,
                                 sim::SimTime now) const {
  // Joinable as a follower until start_time, as a patcher until
  // start_time + patch window. After that the record only matters while
  // a member could still need a handoff signal, i.e. while the shared
  // stream is running. (Patchers outlive end_time by their join offset,
  // but past end_time they are draining already-buffered data and no
  // longer depend on the stream.)
  if (now <= group.start_time + patch_window_sec_) return false;
  return group.members.empty() || now >= group.end_time;
}

std::size_t StreamShareManager::PruneExpired() {
  sim::SimTime now = env_->now();
  std::size_t pruned = 0;
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (Expired(it->second, now)) {
      it = groups_.erase(it);
      ++pruned;
    } else {
      ++it;
    }
  }
  stats_.groups_pruned += pruned;
  return pruned;
}

StreamShareManager::Arrangement StreamShareManager::Arrange(
    int video, int terminal, double duration_sec,
    StreamShareMember* member) {
  sim::SimTime now = env_->now();
  if (window_sec_ <= 0.0 && patch_window_sec_ <= 0.0) {
    return Arrangement{Role::kLeader, now, 0, 0.0};
  }
  // Amortized sweep: the touched entry is pruned below regardless, this
  // keeps entries for videos nobody requests again from lingering.
  if ((++arranges_ & 63) == 0) PruneExpired();

  auto it = groups_.find(video);
  if (it != groups_.end()) {
    Group& group = it->second;
    if (now <= group.start_time) {
      ++stats_.followers_attached;
      if (member != nullptr) {
        group.members.push_back(Member{terminal, 0.0, member});
      }
      return Arrangement{Role::kFollower, group.start_time, group.id, 0.0};
    }
    double offset = now - group.start_time;
    if (patch_window_sec_ > 0.0 && offset <= patch_window_sec_ &&
        now < group.end_time) {
      ++stats_.patchers_attached;
      stats_.patch_seconds_total += offset;
      if (member != nullptr) {
        group.members.push_back(Member{terminal, offset, member});
      }
      return Arrangement{Role::kPatcher, group.start_time, group.id,
                         offset};
    }
    // Too late to join: the old group streams on (or already finished)
    // without further bookkeeping; a fresh group takes its slot.
    ++stats_.groups_pruned;
    groups_.erase(it);
  }

  Group group;
  group.id = next_group_id_++;
  group.start_time = now + window_sec_;
  group.end_time = group.start_time +
                   (duration_sec > 0.0 ? duration_sec : patch_window_sec_);
  group.leader = terminal;
  Arrangement arrangement{Role::kLeader, group.start_time, group.id, 0.0};
  groups_.emplace(video, std::move(group));
  ++stats_.groups_formed;
  return arrangement;
}

void StreamShareManager::LeaderDeparting(int video, std::uint64_t group_id,
                                         int terminal) {
  auto it = groups_.find(video);
  if (it == groups_.end() || it->second.id != group_id ||
      it->second.leader != terminal) {
    return;  // group displaced or pruned since this leader joined
  }
  Group& group = it->second;
  for (auto member_it = group.members.begin();
       member_it != group.members.end(); ++member_it) {
    if (member_it->offset_sec == 0.0 && member_it->callback != nullptr) {
      Member promoted = *member_it;
      group.members.erase(member_it);
      group.leader = promoted.terminal;
      ++stats_.leader_handoffs;
      promoted.callback->OnPromotedToLeader(video);
      return;
    }
  }
  // No exact mirror to promote: disband. Erase the group before the
  // callbacks run — they start private streams and must not observe it.
  std::vector<Member> members = std::move(group.members);
  groups_.erase(it);
  ++stats_.groups_disbanded;
  for (const Member& m : members) {
    if (m.callback != nullptr) m.callback->OnShareGroupDisbanded(video);
  }
}

void StreamShareManager::MemberDeparting(int video, std::uint64_t group_id,
                                         int terminal) {
  auto it = groups_.find(video);
  if (it == groups_.end() || it->second.id != group_id) return;
  std::vector<Member>& members = it->second.members;
  for (auto member_it = members.begin(); member_it != members.end();
       ++member_it) {
    if (member_it->terminal == terminal) {
      members.erase(member_it);
      return;
    }
  }
}

}  // namespace spiffi::client
