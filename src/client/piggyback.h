// Compatibility alias: the §8.2 piggybacking stub grew into the
// stream-sharing service tier. Batching-only callers (window, no patch
// window, anonymous Arrange) get exactly the old piggyback semantics.

#ifndef SPIFFI_CLIENT_PIGGYBACK_H_
#define SPIFFI_CLIENT_PIGGYBACK_H_

#include "client/stream_share.h"

namespace spiffi::client {

using PiggybackManager = StreamShareManager;

}  // namespace spiffi::client

#endif  // SPIFFI_CLIENT_PIGGYBACK_H_
