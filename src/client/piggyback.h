// Piggybacking of terminals watching the same movie (paper §8.2).
//
// When a terminal asks to start a video, the manager may delay the start
// by up to `window` seconds (the subscriber watches commercials). Other
// terminals requesting the same video inside that window join the group
// as followers: they are fed from the leader's stream and place no load
// of their own on the video server. The group closes when the leader's
// (delayed) start time arrives.
//
// Simplification vs. a real implementation: followers mirror the leader's
// display exactly and are assumed glitch-free whenever the leader is —
// their bytes travel the network bus, whose bandwidth the paper declares
// unlimited, so only server load matters here.

#ifndef SPIFFI_CLIENT_PIGGYBACK_H_
#define SPIFFI_CLIENT_PIGGYBACK_H_

#include <cstdint>
#include <unordered_map>

#include "sim/environment.h"

namespace spiffi::client {

class PiggybackManager {
 public:
  enum class Role { kLeader, kFollower };

  struct Arrangement {
    Role role = Role::kLeader;
    sim::SimTime start_time = 0.0;  // when display will begin
  };

  // `window_sec` == 0 disables batching (every caller leads immediately).
  PiggybackManager(sim::Environment* env, double window_sec)
      : env_(env), window_sec_(window_sec) {}

  // Called by a terminal that wants to start `video` now.
  Arrangement Arrange(int video);

  std::uint64_t groups_formed() const { return groups_formed_; }
  std::uint64_t followers_attached() const { return followers_attached_; }
  void ResetStats() {
    groups_formed_ = 0;
    followers_attached_ = 0;
  }

 private:
  sim::Environment* env_;
  double window_sec_;
  // Per video: start time of the currently open group (if still in the
  // future or now).
  std::unordered_map<int, sim::SimTime> open_groups_;
  std::uint64_t groups_formed_ = 0;
  std::uint64_t followers_attached_ = 0;
};

}  // namespace spiffi::client

#endif  // SPIFFI_CLIENT_PIGGYBACK_H_
